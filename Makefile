GO ?= go

.PHONY: all build test race vet fmt bench bench-micro bench-smoke alloc-gate profile fuzz-smoke trace-demo slo-demo verify

all: build test

build:
	$(GO) build ./...

# -shuffle=on randomises test order every run, so inter-test state
# dependencies can't hide behind source order.
test:
	$(GO) test -shuffle=on ./...

# Race-detector pass over the concurrency-heavy packages (the pipelined
# campaign scheduler, the substrate it fans out over, the serving
# layer's shared cache/pool/cooldown state, the pooled wire codec and
# its decode-scratch intern table, the telemetry registry every worker
# increments, the sharded dataset store the pipeline commits into, and
# the workload engine driving fleets inside the pipelined day replicas).
race:
	$(GO) test -race ./internal/scanner ./internal/simnet ./internal/core ./internal/transport ./internal/dnswire ./internal/obs ./internal/dataset ./internal/workload

# Tier-1 verify as the roadmap defines it.
verify: build test

vet:
	$(GO) vet ./...
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed:"; echo "$$unformatted"; exit 1; \
	fi

fmt:
	gofmt -w .

# Campaign pipelining benchmark: times the same multi-week campaign serial
# vs pipelined, checks the stores match, gates the speedup against the
# committed baseline (>20% regression fails on a comparable host), and
# records the new speedup in BENCH_campaign.json so the perf trajectory is
# tracked from PR 2 on. The campaign runs through a mixed-protocol fleet
# under the happy-eyeballs race strategy, so the report is tagged with
# the serving-layer shape (frontends/mix/strategy) and the gate only
# compares equally-tagged runs.
BENCH_FLEET = -frontends 4 -mix mixed -strategy race
bench:
	$(GO) run ./cmd/benchcampaign $(BENCH_FLEET) -hourly -loadbench -baseline BENCH_campaign.json -maxregress 20 -out BENCH_campaign.json

# CI-sized single-iteration bench smoke: verifies serial/pipelined store
# equality (through the same mixed fleet + race strategy as the full
# bench, so the strategy determinism contract is re-proven on every CI
# run) and runs the speedup regression gate informationally without
# overwriting the committed baseline (the tool downgrades speedup
# comparisons to warnings whenever GOMAXPROCS or the campaign shape
# differs from the baseline's — which smoke's shrunken campaign does).
bench-smoke:
	$(GO) run ./cmd/benchcampaign -smoke $(BENCH_FLEET) -hourly -loadbench -baseline BENCH_campaign.json -maxregress 20 -out -  > /dev/null

# Allocation-budget gate, warn-only by design: runs the exchange-path
# allocation benchmark and compares allocs/op against the committed
# budgets (cached ≤ 2, uncached ≤ 10 — keep in sync with the
# allocBudget* constants in cmd/benchcampaign). A budget miss prints a
# WARNING into the CI log but never fails the build: allocation counts
# are deterministic, but a perf regression should not block an
# unrelated change — it should be loud and tracked.
alloc-gate:
	@$(GO) test -run xxx -bench 'BenchmarkExchangeAllocs' -benchtime 2000x . | \
	awk '/^BenchmarkExchangeAllocs\/cached/   { print; if ($$7+0 > 2)  print "WARNING: cached-path " $$7 " allocs/op exceeds the committed budget of 2" } \
	     /^BenchmarkExchangeAllocs\/stale/    { print; if ($$7+0 > 2)  print "WARNING: stale-path " $$7 " allocs/op exceeds the committed budget of 2" } \
	     /^BenchmarkExchangeAllocs\/uncached/ { print; if ($$7+0 > 10) print "WARNING: uncached-path " $$7 " allocs/op exceeds the committed budget of 10" }'

# CPU + heap profiles of the campaign benchmark (pipelined runs, the
# workload engine, and the alloc section) for `go tool pprof`:
#
#	go tool pprof cpu.pprof
#	go tool pprof -alloc_objects mem.pprof
profile:
	$(GO) run ./cmd/benchcampaign $(BENCH_FLEET) -loadbench -cpuprofile cpu.pprof -memprofile mem.pprof -out - > /dev/null

# Short fuzz pass over the wire-format decoders, seeded with
# workload-shaped queries and hand-mangled frames. Ten seconds per
# target is a smoke test, not a campaign: it proves the targets build,
# the corpus parses, and no quick-to-find panic has crept into Unpack
# or the RFC 1035 TCP framing.
fuzz-smoke:
	$(GO) test ./internal/dnswire -fuzz 'FuzzUnpack$$' -fuzztime 10s -run xxx
	$(GO) test ./internal/dnswire -fuzz FuzzUnpackInto -fuzztime 10s -run xxx
	$(GO) test ./internal/dnswire -fuzz FuzzReadTCP -fuzztime 10s -run xxx

# Traced-exchange demo: a mixed-protocol fleet under the race strategy
# with every exchange traced, dumping the five slowest span trees —
# frontend receive, each dial attempt with its race role, the upstream
# answer, and the commit, all on virtual-time offsets.
trace-demo:
	$(GO) run ./cmd/dohserve -size 800 -frontends 4 -proto mixed -strategy race -queries 600 -hot 200 -kill 0 -trace 5

# Anomaly-capture demo: a CI-sized campaign with the anomaly tier on
# (flight recorder, tail-sampled traces, per-day SLO verdicts), printing
# the per-day capture table. The captures are identical for any
# -dayworkers value — the determinism contract the tier is built on.
slo-demo:
	$(GO) run ./cmd/reproduce -size 2000 -exp slo -q

# Fast benchmark subset: substrate + serving-layer hot paths (skips the
# campaign-backed table/figure benchmarks, which rebuild a world).
bench-micro:
	$(GO) test -run xxx -bench 'BenchmarkDoH|BenchmarkTransport|BenchmarkDNSWire|BenchmarkResolveHTTPS|BenchmarkECHSealOpen|BenchmarkRRSIGSignVerify' -benchtime 100x .

GO ?= go

.PHONY: all build test vet fmt bench verify

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 verify as the roadmap defines it.
verify: build test

vet:
	$(GO) vet ./...
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed:"; echo "$$unformatted"; exit 1; \
	fi

fmt:
	gofmt -w .

# Fast benchmark subset: substrate + serving-layer hot paths (skips the
# campaign-backed table/figure benchmarks, which rebuild a world).
bench:
	$(GO) test -run xxx -bench 'BenchmarkDoH|BenchmarkDNSWire|BenchmarkResolveHTTPS|BenchmarkECHSealOpen|BenchmarkRRSIGSignVerify' -benchtime 100x .

GO ?= go

.PHONY: all build test race vet fmt bench bench-micro bench-smoke fuzz-smoke trace-demo slo-demo verify

all: build test

build:
	$(GO) build ./...

# -shuffle=on randomises test order every run, so inter-test state
# dependencies can't hide behind source order.
test:
	$(GO) test -shuffle=on ./...

# Race-detector pass over the concurrency-heavy packages (the pipelined
# campaign scheduler, the substrate it fans out over, the serving
# layer's shared cache/pool/cooldown state, the telemetry registry
# every worker increments, the sharded dataset store the pipeline
# commits into, and the workload engine driving fleets inside the
# pipelined day replicas).
race:
	$(GO) test -race ./internal/scanner ./internal/simnet ./internal/core ./internal/transport ./internal/obs ./internal/dataset ./internal/workload

# Tier-1 verify as the roadmap defines it.
verify: build test

vet:
	$(GO) vet ./...
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed:"; echo "$$unformatted"; exit 1; \
	fi

fmt:
	gofmt -w .

# Campaign pipelining benchmark: times the same multi-week campaign serial
# vs pipelined, checks the stores match, gates the speedup against the
# committed baseline (>20% regression fails on a comparable host), and
# records the new speedup in BENCH_campaign.json so the perf trajectory is
# tracked from PR 2 on. The campaign runs through a mixed-protocol fleet
# under the happy-eyeballs race strategy, so the report is tagged with
# the serving-layer shape (frontends/mix/strategy) and the gate only
# compares equally-tagged runs.
BENCH_FLEET = -frontends 4 -mix mixed -strategy race
bench:
	$(GO) run ./cmd/benchcampaign $(BENCH_FLEET) -hourly -loadbench -baseline BENCH_campaign.json -maxregress 20 -out BENCH_campaign.json

# CI-sized single-iteration bench smoke: verifies serial/pipelined store
# equality (through the same mixed fleet + race strategy as the full
# bench, so the strategy determinism contract is re-proven on every CI
# run) and runs the speedup regression gate informationally without
# overwriting the committed baseline (the tool downgrades speedup
# comparisons to warnings whenever GOMAXPROCS or the campaign shape
# differs from the baseline's — which smoke's shrunken campaign does).
bench-smoke:
	$(GO) run ./cmd/benchcampaign -smoke $(BENCH_FLEET) -hourly -loadbench -baseline BENCH_campaign.json -maxregress 20 -out -  > /dev/null

# Short fuzz pass over the wire-format decoders, seeded with
# workload-shaped queries and hand-mangled frames. Ten seconds per
# target is a smoke test, not a campaign: it proves the targets build,
# the corpus parses, and no quick-to-find panic has crept into Unpack
# or the RFC 1035 TCP framing.
fuzz-smoke:
	$(GO) test ./internal/dnswire -fuzz FuzzUnpack -fuzztime 10s -run xxx
	$(GO) test ./internal/dnswire -fuzz FuzzReadTCP -fuzztime 10s -run xxx

# Traced-exchange demo: a mixed-protocol fleet under the race strategy
# with every exchange traced, dumping the five slowest span trees —
# frontend receive, each dial attempt with its race role, the upstream
# answer, and the commit, all on virtual-time offsets.
trace-demo:
	$(GO) run ./cmd/dohserve -size 800 -frontends 4 -proto mixed -strategy race -queries 600 -hot 200 -kill 0 -trace 5

# Anomaly-capture demo: a CI-sized campaign with the anomaly tier on
# (flight recorder, tail-sampled traces, per-day SLO verdicts), printing
# the per-day capture table. The captures are identical for any
# -dayworkers value — the determinism contract the tier is built on.
slo-demo:
	$(GO) run ./cmd/reproduce -size 2000 -exp slo -q

# Fast benchmark subset: substrate + serving-layer hot paths (skips the
# campaign-backed table/figure benchmarks, which rebuild a world).
bench-micro:
	$(GO) test -run xxx -bench 'BenchmarkDoH|BenchmarkTransport|BenchmarkDNSWire|BenchmarkResolveHTTPS|BenchmarkECHSealOpen|BenchmarkRRSIGSignVerify' -benchtime 100x .

GO ?= go

.PHONY: all build test race vet fmt bench bench-micro bench-smoke trace-demo verify

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrency-heavy packages (the pipelined
# campaign scheduler, the substrate it fans out over, the serving
# layer's shared cache/pool/cooldown state, the telemetry registry
# every worker increments, and the sharded dataset store the pipeline
# commits into).
race:
	$(GO) test -race ./internal/scanner ./internal/simnet ./internal/core ./internal/transport ./internal/obs ./internal/dataset

# Tier-1 verify as the roadmap defines it.
verify: build test

vet:
	$(GO) vet ./...
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed:"; echo "$$unformatted"; exit 1; \
	fi

fmt:
	gofmt -w .

# Campaign pipelining benchmark: times the same multi-week campaign serial
# vs pipelined, checks the stores match, gates the speedup against the
# committed baseline (>20% regression fails on a comparable host), and
# records the new speedup in BENCH_campaign.json so the perf trajectory is
# tracked from PR 2 on. The campaign runs through a mixed-protocol fleet
# under the happy-eyeballs race strategy, so the report is tagged with
# the serving-layer shape (frontends/mix/strategy) and the gate only
# compares equally-tagged runs.
BENCH_FLEET = -frontends 4 -mix mixed -strategy race
bench:
	$(GO) run ./cmd/benchcampaign $(BENCH_FLEET) -hourly -baseline BENCH_campaign.json -maxregress 20 -out BENCH_campaign.json

# CI-sized single-iteration bench smoke: verifies serial/pipelined store
# equality (through the same mixed fleet + race strategy as the full
# bench, so the strategy determinism contract is re-proven on every CI
# run) and runs the speedup regression gate informationally without
# overwriting the committed baseline (the tool downgrades speedup
# comparisons to warnings whenever GOMAXPROCS or the campaign shape
# differs from the baseline's — which smoke's shrunken campaign does).
bench-smoke:
	$(GO) run ./cmd/benchcampaign -smoke $(BENCH_FLEET) -hourly -baseline BENCH_campaign.json -maxregress 20 -out -  > /dev/null

# Traced-exchange demo: a mixed-protocol fleet under the race strategy
# with every exchange traced, dumping the five slowest span trees —
# frontend receive, each dial attempt with its race role, the upstream
# answer, and the commit, all on virtual-time offsets.
trace-demo:
	$(GO) run ./cmd/dohserve -size 800 -frontends 4 -proto mixed -strategy race -queries 600 -hot 200 -kill 0 -trace 5

# Fast benchmark subset: substrate + serving-layer hot paths (skips the
# campaign-backed table/figure benchmarks, which rebuild a world).
bench-micro:
	$(GO) test -run xxx -bench 'BenchmarkDoH|BenchmarkTransport|BenchmarkDNSWire|BenchmarkResolveHTTPS|BenchmarkECHSealOpen|BenchmarkRRSIGSignVerify' -benchtime 100x .

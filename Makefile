GO ?= go

.PHONY: all build test race vet fmt bench bench-micro bench-smoke verify

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrency-heavy packages (the pipelined
# campaign scheduler and the substrate it fans out over).
race:
	$(GO) test -race ./internal/scanner ./internal/simnet ./internal/core

# Tier-1 verify as the roadmap defines it.
verify: build test

vet:
	$(GO) vet ./...
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed:"; echo "$$unformatted"; exit 1; \
	fi

fmt:
	gofmt -w .

# Campaign pipelining benchmark: times the same multi-week campaign serial
# vs pipelined, checks the stores match, and records the speedup in
# BENCH_campaign.json so the perf trajectory is tracked from PR 2 on.
bench:
	$(GO) run ./cmd/benchcampaign -out BENCH_campaign.json

# CI-sized single-iteration bench smoke (no timing claims, still verifies
# serial/pipelined store equality).
bench-smoke:
	$(GO) run ./cmd/benchcampaign -smoke -out BENCH_campaign.json

# Fast benchmark subset: substrate + serving-layer hot paths (skips the
# campaign-backed table/figure benchmarks, which rebuild a world).
bench-micro:
	$(GO) test -run xxx -bench 'BenchmarkDoH|BenchmarkDNSWire|BenchmarkResolveHTTPS|BenchmarkECHSealOpen|BenchmarkRRSIGSignVerify' -benchtime 100x .

package repro

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// resolver's TTL cache, the validated-zone-key cache, and DNS name
// compression. Run with:
//
//	go test -bench=Ablation -benchmem

import (
	"testing"
	"time"

	"repro/internal/dnswire"
	"repro/internal/providers"
	"repro/internal/resolver"
)

func ablationWorld(b *testing.B) (*providers.World, []string) {
	b.Helper()
	w, err := providers.BuildWorld(providers.WorldConfig{Size: 400, Seed: 77})
	if err != nil {
		b.Fatal(err)
	}
	w.Clock.Set(time.Date(2023, 9, 1, 0, 0, 0, 0, time.UTC))
	list := w.Tranco.ListFor(w.Clock.Now())[:100]
	return w, list
}

// BenchmarkAblationResolverCacheWarm measures repeated resolutions with the
// TTL cache retained between rounds (the production configuration).
func BenchmarkAblationResolverCacheWarm(b *testing.B) {
	w, list := ablationWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, name := range list {
			if _, err := w.GoogleResolver.Resolve(name, dnswire.TypeHTTPS); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblationResolverCacheCold flushes the cache every round,
// quantifying what the TTL cache buys a daily-scan workload.
func BenchmarkAblationResolverCacheCold(b *testing.B) {
	w, list := ablationWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.GoogleResolver.FlushCache()
		for _, name := range list {
			if _, err := w.GoogleResolver.Resolve(name, dnswire.TypeHTTPS); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblationZoneKeyCache isolates the validated-zone-key cache: with
// it disabled, every validation re-verifies the root and TLD DNSKEY
// self-signatures (two ECDSA verifies per level per domain).
func BenchmarkAblationZoneKeyCache(b *testing.B) {
	for _, mode := range []struct {
		name     string
		validate func(r *resolver.Resolver)
	}{
		{"with-key-cache", func(r *resolver.Resolver) {}},
		{"without-key-cache", func(r *resolver.Resolver) { /* fresh resolver per round below */ }},
	} {
		b.Run(mode.name, func(b *testing.B) {
			w, list := ablationWorld(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if mode.name == "without-key-cache" {
					// A fresh resolver discards both caches, forcing full
					// chain re-validation (cold everything): the upper
					// bound the key cache saves against.
					fresh := resolver.New(w.Net)
					fresh.Validate = true
					fresh.ValidateTypes = map[dnswire.Type]bool{dnswire.TypeHTTPS: true}
					fresh.Anchor = w.Anchor
					for _, name := range list[:20] {
						if _, err := fresh.Resolve(name, dnswire.TypeHTTPS); err != nil {
							b.Fatal(err)
						}
					}
				} else {
					w.GoogleResolver.FlushCache()
					for _, name := range list[:20] {
						if _, err := w.GoogleResolver.Resolve(name, dnswire.TypeHTTPS); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
		})
	}
}

// BenchmarkAblationNameCompression compares full-message packing (with
// compression) against per-record packing (no compression) for a
// referral-shaped message with many repeated suffixes.
func BenchmarkAblationNameCompression(b *testing.B) {
	m := &dnswire.Message{ID: 1, Response: true}
	for i := 0; i < 13; i++ {
		host := string(rune('a'+i)) + ".gtld-servers.example-registry.net."
		m.Authority = append(m.Authority, dnswire.RR{
			Name: "com.", Type: dnswire.TypeNS, Class: dnswire.ClassINET, TTL: 172800,
			Data: &dnswire.NSData{Host: host},
		})
	}
	b.Run("compressed-message", func(b *testing.B) {
		var size int
		for i := 0; i < b.N; i++ {
			wire, err := m.Pack()
			if err != nil {
				b.Fatal(err)
			}
			size = len(wire)
		}
		b.ReportMetric(float64(size), "bytes/msg")
	})
	b.Run("uncompressed-records", func(b *testing.B) {
		var size int
		for i := 0; i < b.N; i++ {
			total := 12 // header
			for _, rr := range m.Authority {
				wire, err := dnswire.PackRR(rr)
				if err != nil {
					b.Fatal(err)
				}
				total += len(wire)
			}
			size = total
		}
		b.ReportMetric(float64(size), "bytes/msg")
	})
}

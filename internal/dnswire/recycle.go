package dnswire

import "sync"

// Recycled-buffer hygiene. Every sync.Pool put-site in the hot path runs
// its buffer through trimRecycled so a single jumbo message (a 64KiB TCP
// response, a fat TXT set) cannot pin its backing array in the pool for the
// rest of a campaign.
const (
	// maxRecycledBuf caps the capacity of byte buffers returned to pools.
	maxRecycledBuf = 16 << 10
	// maxRecycledNames caps the decode scratch's name-memo backing array.
	maxRecycledNames = 512
)

// trimRecycled returns b truncated to zero length, or nil when its backing
// array exceeds the recycling ceiling and should be dropped for the GC.
func trimRecycled(b []byte) []byte {
	if cap(b) > maxRecycledBuf {
		return nil
	}
	return b[:0]
}

// wireBufPool recycles whole-message wire buffers (TCP framing, transient
// packs inside the package).
var wireBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 1024)
	return &b
}}

// GetWireBuf borrows a zero-length wire buffer from the package pool.
// Callers hand it back with PutWireBuf when the encoded bytes are no longer
// referenced; the pool drops oversized backing arrays on the way in.
func GetWireBuf() *[]byte {
	bp := wireBufPool.Get().(*[]byte)
	*bp = (*bp)[:0]
	return bp
}

// PutWireBuf returns a buffer obtained from GetWireBuf (or any buffer the
// caller owns outright) to the pool, applying the recycling ceiling.
func PutWireBuf(bp *[]byte) {
	if bp == nil {
		return
	}
	*bp = trimRecycled(*bp)
	wireBufPool.Put(bp)
}

package dnswire

import (
	"encoding/base64"
	"fmt"
)

// MediaTypeDNSMessage is the RFC 8484 media type for DNS wire format
// carried in DoH request and response bodies.
const MediaTypeDNSMessage = "application/dns-message"

// EncodeDoHParam packs the message and encodes it with unpadded
// base64url, the form carried in the RFC 8484 GET "dns" query parameter.
func EncodeDoHParam(m *Message) (string, error) {
	wire, err := m.Pack()
	if err != nil {
		return "", fmt.Errorf("dnswire: encoding DoH param: %w", err)
	}
	return base64.RawURLEncoding.EncodeToString(wire), nil
}

// DecodeDoHParam reverses EncodeDoHParam: it decodes an unpadded (padded
// forms are tolerated, as servers must accept both) base64url string and
// unpacks the wire-format message.
func DecodeDoHParam(s string) (*Message, error) {
	wire, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		// Tolerate padded input from sloppy clients.
		wire, err = base64.URLEncoding.DecodeString(s)
		if err != nil {
			return nil, fmt.Errorf("dnswire: decoding DoH param: %w", err)
		}
	}
	return Unpack(wire)
}

package dnswire

import (
	"encoding/base64"
	"fmt"
)

// MediaTypeDNSMessage is the RFC 8484 media type for DNS wire format
// carried in DoH request and response bodies.
const MediaTypeDNSMessage = "application/dns-message"

// EncodeDoHParam packs the message and encodes it with unpadded
// base64url, the form carried in the RFC 8484 GET "dns" query parameter.
func EncodeDoHParam(m *Message) (string, error) {
	s, _, err := AppendEncodeDoHParam(m, nil)
	return s, err
}

// AppendEncodeDoHParam is the reuse-API form of EncodeDoHParam: the
// message packs into scratch and the base64url form is built in the same
// buffer, so the only allocation is the returned parameter string
// itself. The (possibly grown) scratch comes back for the caller to
// recycle.
func AppendEncodeDoHParam(m *Message, scratch []byte) (string, []byte, error) {
	wire, err := m.AppendPack(scratch[:0])
	if err != nil {
		return "", scratch, fmt.Errorf("dnswire: encoding DoH param: %w", err)
	}
	wlen := len(wire)
	buf := append(wire, make([]byte, base64.RawURLEncoding.EncodedLen(wlen))...)
	base64.RawURLEncoding.Encode(buf[wlen:], buf[:wlen])
	return string(buf[wlen:]), buf, nil
}

// DecodeDoHParam reverses EncodeDoHParam: it decodes an unpadded (padded
// forms are tolerated, as servers must accept both) base64url string and
// unpacks the wire-format message.
func DecodeDoHParam(s string) (*Message, error) {
	m := new(Message)
	if _, err := DecodeDoHParamInto(m, s, nil); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeDoHParamInto is the reuse-API form of DecodeDoHParam: the
// parameter's raw bytes and the decoded wire share scratch, and the
// message decodes into m with UnpackInto semantics. The (possibly grown)
// scratch comes back for the caller to recycle.
func DecodeDoHParamInto(m *Message, s string, scratch []byte) ([]byte, error) {
	// Lay the buffer out as [param bytes][decoded wire]; RawURLEncoding's
	// DecodedLen is an upper bound for the padded form too.
	buf := append(scratch[:0], s...)
	buf = append(buf, make([]byte, base64.RawURLEncoding.DecodedLen(len(s)))...)
	n, err := base64.RawURLEncoding.Decode(buf[len(s):], buf[:len(s)])
	if err != nil {
		// Tolerate padded input from sloppy clients.
		n, err = base64.URLEncoding.Decode(buf[len(s):], buf[:len(s)])
		if err != nil {
			return buf, fmt.Errorf("dnswire: decoding DoH param: %w", err)
		}
	}
	if err := UnpackInto(m, buf[len(s):len(s)+n]); err != nil {
		return buf, err
	}
	return buf, nil
}

package dnswire

import (
	"bytes"
	"math/rand"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/svcb"
)

func TestCanonicalName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "."},
		{".", "."},
		{"Example.COM", "example.com."},
		{"example.com.", "example.com."},
		{" www.a.com ", "www.a.com."},
	}
	for _, c := range cases {
		if got := CanonicalName(c.in); got != c.want {
			t.Errorf("CanonicalName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNameHelpers(t *testing.T) {
	if got := ParentName("www.example.com."); got != "example.com." {
		t.Errorf("ParentName = %q", got)
	}
	if got := ParentName("com."); got != "." {
		t.Errorf("ParentName(com.) = %q", got)
	}
	if !IsSubdomain("a.b.com", "b.com") || !IsSubdomain("b.com", "b.com") || !IsSubdomain("x.y", ".") {
		t.Error("IsSubdomain false negatives")
	}
	if IsSubdomain("ab.com", "b.com") {
		t.Error("IsSubdomain matched partial label")
	}
	if got := ApexOf("a.b.example.com."); got != "example.com." {
		t.Errorf("ApexOf = %q", got)
	}
	if got := CountLabels("www.example.com."); got != 3 {
		t.Errorf("CountLabels = %d", got)
	}
	if got := CountLabels("."); got != 0 {
		t.Errorf("CountLabels(.) = %d", got)
	}
}

func TestValidateName(t *testing.T) {
	if err := ValidateName("example.com"); err != nil {
		t.Errorf("valid name rejected: %v", err)
	}
	if err := ValidateName(strings.Repeat("a", 64) + ".com"); err == nil {
		t.Error("overlong label accepted")
	}
	long := strings.Repeat("aaaaaaaaaa.", 26) // 286 bytes
	if err := ValidateName(long); err == nil {
		t.Error("overlong name accepted")
	}
}

func TestNameWireRoundTrip(t *testing.T) {
	names := []string{".", "com.", "example.com.", "a.very.deep.sub.domain.example.org."}
	for _, name := range names {
		wire, err := packName(nil, name, nil)
		if err != nil {
			t.Fatalf("packName(%q): %v", name, err)
		}
		got, off, err := unpackName(wire, 0)
		if err != nil {
			t.Fatalf("unpackName(%q): %v", name, err)
		}
		if got != name || off != len(wire) {
			t.Errorf("round trip %q = %q (off %d of %d)", name, got, off, len(wire))
		}
	}
}

func TestNameCompression(t *testing.T) {
	cmap := getCmap(0)
	defer putCmap(cmap)
	buf, err := packName(nil, "www.example.com.", cmap)
	if err != nil {
		t.Fatal(err)
	}
	uncompressedLen := len(buf)
	buf, err = packName(buf, "mail.example.com.", cmap)
	if err != nil {
		t.Fatal(err)
	}
	// Second name should use a pointer: "mail" label (5 bytes) + 2-byte ptr.
	if len(buf)-uncompressedLen != 7 {
		t.Errorf("compression not applied: second name used %d bytes", len(buf)-uncompressedLen)
	}
	name, _, err := unpackName(buf, uncompressedLen)
	if err != nil {
		t.Fatal(err)
	}
	if name != "mail.example.com." {
		t.Errorf("decompressed = %q", name)
	}
}

func TestUnpackNameLoopGuard(t *testing.T) {
	// Pointer to self: 0xc000 at offset 0 would point to itself; our decoder
	// requires pointers to point strictly backwards.
	msg := []byte{0xc0, 0x00}
	if _, _, err := unpackName(msg, 0); err == nil {
		t.Error("self-pointer accepted")
	}
}

func testRRs() []RR {
	mustAddr := netip.MustParseAddr
	var params svcb.Params
	_ = params.SetALPN([]string{"h2", "h3"})
	_ = params.SetIPv4Hints([]netip.Addr{mustAddr("104.16.132.229")})
	params.SetECH([]byte{0, 5, 1, 2, 3, 4, 5})
	return []RR{
		{Name: "a.com.", Type: TypeA, Class: ClassINET, TTL: 300, Data: &AData{Addr: mustAddr("1.2.3.4")}},
		{Name: "a.com.", Type: TypeAAAA, Class: ClassINET, TTL: 300, Data: &AAAAData{Addr: mustAddr("2606:4700::1")}},
		{Name: "b.com.", Type: TypeCNAME, Class: ClassINET, TTL: 60, Data: &CNAMEData{Target: "a.com."}},
		{Name: "a.com.", Type: TypeNS, Class: ClassINET, TTL: 86400, Data: &NSData{Host: "ns1.a.com."}},
		{Name: "a.com.", Type: TypeSOA, Class: ClassINET, TTL: 3600, Data: &SOAData{
			MName: "ns1.a.com.", RName: "hostmaster.a.com.", Serial: 2024010101,
			Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300}},
		{Name: "a.com.", Type: TypeTXT, Class: ClassINET, TTL: 300, Data: &TXTData{Strings: []string{"v=spf1 -all", "x"}}},
		{Name: "a.com.", Type: TypeMX, Class: ClassINET, TTL: 300, Data: &MXData{Preference: 10, Host: "mx.a.com."}},
		{Name: "_https._tcp.a.com.", Type: TypeSRV, Class: ClassINET, TTL: 300, Data: &SRVData{
			Priority: 1, Weight: 5, Port: 443, Target: "a.com."}},
		{Name: "sub.a.com.", Type: TypeDNAME, Class: ClassINET, TTL: 300, Data: &DNAMEData{Target: "other.net."}},
		{Name: "a.com.", Type: TypeHTTPS, Class: ClassINET, TTL: 300, Data: &SVCBData{
			Priority: 1, Target: ".", Params: params}},
		{Name: "a.com.", Type: TypeHTTPS, Class: ClassINET, TTL: 300, Data: &SVCBData{
			Priority: 0, Target: "b.com."}},
		{Name: "a.com.", Type: TypeDS, Class: ClassINET, TTL: 3600, Data: &DSData{
			KeyTag: 12345, Algorithm: AlgECDSAP256SHA256, DigestType: DigestSHA256,
			Digest: bytes.Repeat([]byte{0xab}, 32)}},
		{Name: "a.com.", Type: TypeDNSKEY, Class: ClassINET, TTL: 3600, Data: &DNSKEYData{
			Flags: DNSKEYFlagZone | DNSKEYFlagSEP, Protocol: 3, Algorithm: AlgECDSAP256SHA256,
			PublicKey: bytes.Repeat([]byte{0xcd}, 64)}},
		{Name: "a.com.", Type: TypeRRSIG, Class: ClassINET, TTL: 300, Data: &RRSIGData{
			TypeCovered: TypeHTTPS, Algorithm: AlgECDSAP256SHA256, Labels: 2,
			OriginalTTL: 300, Expiration: 1700000000, Inception: 1690000000,
			KeyTag: 4242, SignerName: "a.com.", Signature: bytes.Repeat([]byte{0xef}, 64)}},
		{Name: "a.com.", Type: TypeNSEC, Class: ClassINET, TTL: 300, Data: &NSECData{
			NextName: "b.a.com.", Types: []Type{TypeA, TypeRRSIG, TypeNSEC, TypeHTTPS}}},
	}
}

func TestRRWireRoundTrip(t *testing.T) {
	for _, rr := range testRRs() {
		wire, err := PackRR(rr)
		if err != nil {
			t.Fatalf("PackRR(%s): %v", rr.Type, err)
		}
		sc := decScratchPool.Get().(*decodeScratch)
		got, off, err := unpackRRInto(wire, 0, RR{}, sc)
		putDecScratch(sc)
		if err != nil {
			t.Fatalf("unpackRR(%s): %v", rr.Type, err)
		}
		if off != len(wire) {
			t.Errorf("%s: trailing bytes after unpack", rr.Type)
		}
		if !reflect.DeepEqual(got, rr) {
			t.Errorf("%s round trip:\n got %+v\nwant %+v", rr.Type, got, rr)
		}
	}
}

func TestMessageRoundTrip(t *testing.T) {
	m := NewQuery(4242, "Example.COM", TypeHTTPS, true)
	m.Answer = testRRs()[:4]
	m.Authority = []RR{testRRs()[4]}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 4242 || !got.RecursionDesired || got.Response {
		t.Errorf("header mismatch: %+v", got)
	}
	if len(got.Question) != 1 || got.Question[0].Name != "example.com." || got.Question[0].Type != TypeHTTPS {
		t.Errorf("question mismatch: %+v", got.Question)
	}
	if !reflect.DeepEqual(got.Answer, m.Answer) {
		t.Errorf("answer mismatch:\n got %+v\nwant %+v", got.Answer, m.Answer)
	}
	if !got.DNSSECOK() {
		t.Error("DO bit lost")
	}
	if got.UDPSize() != MaxUDPSize {
		t.Errorf("UDPSize = %d", got.UDPSize())
	}
}

func TestMessageFlags(t *testing.T) {
	m := &Message{
		ID: 1, Response: true, Authoritative: true, Truncated: true,
		RecursionDesired: true, RecursionAvailable: true,
		AuthenticatedData: true, CheckingDisabled: true,
		RCode: RCodeNXDomain,
	}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("flags round trip:\n got %+v\nwant %+v", got, m)
	}
}

func TestReply(t *testing.T) {
	q := NewQuery(7, "a.com", TypeA, true)
	r := q.Reply()
	if !r.Response || r.ID != 7 || len(r.Question) != 1 {
		t.Errorf("Reply() = %+v", r)
	}
	if !r.DNSSECOK() {
		t.Error("Reply dropped DO bit")
	}
	q2 := &Message{ID: 9, Question: []Question{{Name: "a.com.", Type: TypeA, Class: ClassINET}}}
	if q2.Reply().OPT() != nil {
		t.Error("Reply added OPT to non-EDNS query")
	}
}

func TestAliasModeRejectsParams(t *testing.T) {
	var params svcb.Params
	params.SetPort(443)
	rr := RR{Name: "a.com.", Type: TypeHTTPS, Class: ClassINET, TTL: 300,
		Data: &SVCBData{Priority: 0, Target: "b.com.", Params: params}}
	if _, err := PackRR(rr); err == nil {
		t.Error("AliasMode with params packed successfully")
	}
}

func TestUnpackCorruptMessages(t *testing.T) {
	m := NewQuery(1, "a.com", TypeHTTPS, false)
	m.Answer = testRRs()
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	// Any truncation must error, never panic.
	for i := 0; i < len(wire); i++ {
		_, _ = Unpack(wire[:i])
	}
	// Random corruption must never panic.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		corrupt := append([]byte(nil), wire...)
		for k := 0; k < 1+rng.Intn(8); k++ {
			corrupt[rng.Intn(len(corrupt))] = byte(rng.Intn(256))
		}
		_, _ = Unpack(corrupt)
	}
}

func TestTCPFraming(t *testing.T) {
	m := NewQuery(99, "tcp.example.com", TypeHTTPS, true)
	var buf bytes.Buffer
	if err := WriteTCP(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTCP(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 99 || got.Question[0].Name != "tcp.example.com." {
		t.Errorf("TCP round trip = %+v", got)
	}
}

func TestKeyTagStable(t *testing.T) {
	key := &DNSKEYData{Flags: 257, Protocol: 3, Algorithm: AlgECDSAP256SHA256,
		PublicKey: bytes.Repeat([]byte{1, 2, 3, 4}, 16)}
	tag1 := key.KeyTag()
	tag2 := key.KeyTag()
	if tag1 != tag2 {
		t.Error("KeyTag not deterministic")
	}
	key2 := key.clone().(*DNSKEYData)
	key2.PublicKey[0] ^= 0xff
	if key2.KeyTag() == tag1 {
		t.Error("KeyTag insensitive to key bytes")
	}
}

func TestTypeBitmapRoundTrip(t *testing.T) {
	types := []Type{TypeA, TypeNS, TypeSOA, TypeAAAA, TypeHTTPS, TypeRRSIG, Type(1234)}
	wire, err := packTypeBitmap(nil, types)
	if err != nil {
		t.Fatal(err)
	}
	got, err := unpackTypeBitmap(wire)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]Type(nil), types...)
	sortTypes(want)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("bitmap round trip = %v, want %v", got, want)
	}
}

func sortTypes(ts []Type) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j-1] > ts[j]; j-- {
			ts[j-1], ts[j] = ts[j], ts[j-1]
		}
	}
}

func TestRRString(t *testing.T) {
	for _, rr := range testRRs() {
		s := rr.String()
		if !strings.Contains(s, rr.Type.String()) {
			t.Errorf("String() for %s missing type: %q", rr.Type, s)
		}
	}
}

func TestTypeClassRCodeStrings(t *testing.T) {
	if TypeHTTPS.String() != "HTTPS" || Type(9999).String() != "TYPE9999" {
		t.Error("Type.String broken")
	}
	if ClassINET.String() != "IN" || Class(7).String() != "CLASS7" {
		t.Error("Class.String broken")
	}
	if RCodeNXDomain.String() != "NXDOMAIN" || RCode(77).String() != "RCODE77" {
		t.Error("RCode.String broken")
	}
}

// Property: packing then unpacking any message built from random valid RRs
// is the identity.
func TestQuickMessageRoundTrip(t *testing.T) {
	rrs := testRRs()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewQuery(uint16(rng.Intn(65536)), "q.example.org", TypeHTTPS, rng.Intn(2) == 0)
		m.Response = true
		n := rng.Intn(len(rrs))
		for i := 0; i < n; i++ {
			m.Answer = append(m.Answer, rrs[rng.Intn(len(rrs))].Clone())
		}
		wire, err := m.Pack()
		if err != nil {
			return false
		}
		got, err := Unpack(wire)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Answer, m.Answer)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: compression never changes decoded names.
func TestQuickCompressionCorrectness(t *testing.T) {
	labels := []string{"www", "mail", "a", "cdn", "example", "test", "com", "org", "net"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var names []string
		for i := 0; i < 1+rng.Intn(10); i++ {
			n := 1 + rng.Intn(4)
			parts := make([]string, n)
			for j := range parts {
				parts[j] = labels[rng.Intn(len(labels))]
			}
			names = append(names, strings.Join(parts, ".")+".")
		}
		cmap := getCmap(0)
		defer putCmap(cmap)
		var buf []byte
		var offsets []int
		for _, name := range names {
			offsets = append(offsets, len(buf))
			var err error
			buf, err = packName(buf, name, cmap)
			if err != nil {
				return false
			}
		}
		for i, name := range names {
			got, _, err := unpackName(buf, offsets[i])
			if err != nil || got != name {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Package dnswire implements the DNS message wire format (RFC 1035 and
// friends): header, questions, resource records, name compression, EDNS(0),
// and the record types needed by the HTTPS-RR measurement framework,
// including SVCB/HTTPS (RFC 9460) and the DNSSEC record types (RFC 4034).
//
// # Reuse APIs
//
// Every codec entry point comes in two forms: a convenience form that
// allocates its result (Pack, Unpack, EncodeDoHParam, DecodeDoHParam)
// and a reuse form that appends into or decodes into caller-owned
// storage (AppendPack, UnpackInto, AppendEncodeDoHParam,
// DecodeDoHParamInto). The serving layer's hot path uses only the reuse
// forms; the convenience forms are thin wrappers kept for tests, tools,
// and one-shot callers.
//
// AppendPack(dst) appends the encoded message to dst and returns the
// extended slice, amortising to zero allocations when the caller
// recycles the buffer. Name compression runs on a pooled offset map, so
// packing itself allocates nothing either.
//
// UnpackInto(m, wire) decodes into an existing Message, truncating its
// question and section slices cap-preservingly and reusing RDATA values
// whose types line up slot-for-slot with the prior decode: byte slices
// are overwritten in place, and name strings are reused when the bytes
// match. Names that do change are deduplicated twice — within the
// message (compression-pointer reuse yields one shared string) and
// across messages, via a bounded intern table that rides the pooled
// decode scratch, so a steady-state decode whose names have all been
// seen before mints zero strings. The aliasing consequence: callers
// must not hold references into a Message across UnpackInto calls on
// it.
//
// Pooled scratch follows one hygiene rule at every put-site: buffers
// over the recycling ceiling (trimRecycled) are dropped for the GC
// rather than returned, so one jumbo message can never pin its backing
// array in a pool for the rest of a campaign.
package dnswire

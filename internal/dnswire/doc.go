// Package dnswire implements the DNS message wire format (RFC 1035 and
// friends): header, questions, resource records, name compression, EDNS(0),
// and the record types needed by the HTTPS-RR measurement framework,
// including SVCB/HTTPS (RFC 9460) and the DNSSEC record types (RFC 4034).
package dnswire

package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
)

// Question is a DNS question section entry.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// String renders the question in dig-like form.
func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", CanonicalName(q.Name), q.Class, q.Type)
}

// Message is a full DNS message.
type Message struct {
	ID     uint16
	Opcode Opcode
	RCode  RCode

	// Header flags.
	Response           bool // QR
	Authoritative      bool // AA
	Truncated          bool // TC
	RecursionDesired   bool // RD
	RecursionAvailable bool // RA
	AuthenticatedData  bool // AD
	CheckingDisabled   bool // CD

	Question   []Question
	Answer     []RR
	Authority  []RR
	Additional []RR
}

// NewQuery builds a recursion-desired query for (name, type) with EDNS(0).
func NewQuery(id uint16, name string, t Type, dnssecOK bool) *Message {
	m := &Message{
		ID:               id,
		RecursionDesired: true,
		Question:         []Question{{Name: CanonicalName(name), Type: t, Class: ClassINET}},
	}
	m.SetEDNS0(MaxUDPSize, dnssecOK)
	return m
}

// Reply builds a response skeleton for the query: same ID, question, and
// opcode; RD copied; QR set.
func (m *Message) Reply() *Message {
	r := &Message{
		ID:               m.ID,
		Opcode:           m.Opcode,
		Response:         true,
		RecursionDesired: m.RecursionDesired,
		Question:         append([]Question(nil), m.Question...),
	}
	if opt := m.OPT(); opt != nil {
		r.SetEDNS0(MaxUDPSize, m.DNSSECOK())
	}
	return r
}

// OPT returns the EDNS(0) pseudo-record from the additional section, if any.
func (m *Message) OPT() *RR {
	for i := range m.Additional {
		if m.Additional[i].Type == TypeOPT {
			return &m.Additional[i]
		}
	}
	return nil
}

// SetEDNS0 attaches (or replaces) an EDNS(0) OPT record advertising the
// given UDP payload size and DO bit. An existing option-free OPT record's
// RDATA value is reused in place, so re-arming EDNS on a recycled query
// message allocates nothing.
func (m *Message) SetEDNS0(udpSize uint16, dnssecOK bool) {
	var ttl uint32
	if dnssecOK {
		ttl |= 0x8000 // DO bit lives in the high bit of the TTL field's flags half
	}
	for i := range m.Additional {
		if m.Additional[i].Type == TypeOPT {
			data, ok := m.Additional[i].Data.(*OPTData)
			if !ok || len(data.Options) != 0 {
				data = &OPTData{}
			}
			m.Additional[i] = RR{Name: ".", Type: TypeOPT, Class: Class(udpSize), TTL: ttl, Data: data}
			return
		}
	}
	m.Additional = append(m.Additional, RR{
		Name: ".", Type: TypeOPT, Class: Class(udpSize), TTL: ttl, Data: &OPTData{},
	})
}

// DNSSECOK reports whether the message carries an OPT record with the DO bit.
func (m *Message) DNSSECOK() bool {
	opt := m.OPT()
	return opt != nil && opt.TTL&0x8000 != 0
}

// UDPSize returns the advertised EDNS(0) UDP payload size, or 512 when no
// OPT record is present.
func (m *Message) UDPSize() int {
	opt := m.OPT()
	if opt == nil {
		return 512
	}
	if s := int(opt.Class); s >= 512 {
		return s
	}
	return 512
}

// Errors returned by message decoding.
var (
	ErrShortMessage = errors.New("dnswire: message shorter than header")
	ErrTrailingData = errors.New("dnswire: trailing bytes after message")
)

const headerLen = 12

// Pack encodes the message into wire format with name compression.
func (m *Message) Pack() ([]byte, error) {
	return m.AppendPack(make([]byte, 0, 512))
}

// AppendPack encodes the message into wire format with name compression,
// appending to dst and returning the extended buffer. Compression offsets
// are relative to the message start (len(dst) at entry), so the encode may
// land inside a larger frame. The compression state itself is pooled:
// packing into a buffer with sufficient capacity allocates nothing.
func (m *Message) AppendPack(dst []byte) ([]byte, error) {
	cmap := getCmap(len(dst))
	out, err := m.appendPack(dst, cmap)
	putCmap(cmap)
	return out, err
}

func (m *Message) appendPack(dst []byte, cmap *compressionMap) ([]byte, error) {
	base := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
	binary.BigEndian.PutUint16(dst[base:], m.ID)

	var flags uint16
	if m.Response {
		flags |= 1 << 15
	}
	flags |= uint16(m.Opcode&0xf) << 11
	if m.Authoritative {
		flags |= 1 << 10
	}
	if m.Truncated {
		flags |= 1 << 9
	}
	if m.RecursionDesired {
		flags |= 1 << 8
	}
	if m.RecursionAvailable {
		flags |= 1 << 7
	}
	if m.AuthenticatedData {
		flags |= 1 << 5
	}
	if m.CheckingDisabled {
		flags |= 1 << 4
	}
	flags |= uint16(m.RCode & 0xf)
	binary.BigEndian.PutUint16(dst[base+2:], flags)
	binary.BigEndian.PutUint16(dst[base+4:], uint16(len(m.Question)))
	binary.BigEndian.PutUint16(dst[base+6:], uint16(len(m.Answer)))
	binary.BigEndian.PutUint16(dst[base+8:], uint16(len(m.Authority)))
	binary.BigEndian.PutUint16(dst[base+10:], uint16(len(m.Additional)))

	var err error
	for _, q := range m.Question {
		dst, err = packName(dst, q.Name, cmap)
		if err != nil {
			return nil, fmt.Errorf("packing question %q: %w", q.Name, err)
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(q.Type))
		dst = binary.BigEndian.AppendUint16(dst, uint16(q.Class))
	}
	for _, section := range [3][]RR{m.Answer, m.Authority, m.Additional} {
		for _, rr := range section {
			dst, err = packRR(dst, rr, cmap)
			if err != nil {
				return nil, err
			}
		}
	}
	return dst, nil
}

func packRR(dst []byte, rr RR, cmap *compressionMap) ([]byte, error) {
	if rr.Data == nil {
		return nil, fmt.Errorf("dnswire: record %s %s has nil RDATA", rr.Name, rr.Type)
	}
	var err error
	dst, err = packName(dst, rr.Name, cmap)
	if err != nil {
		return nil, fmt.Errorf("packing owner %q: %w", rr.Name, err)
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(rr.Type))
	dst = binary.BigEndian.AppendUint16(dst, uint16(rr.Class))
	dst = binary.BigEndian.AppendUint32(dst, rr.TTL)
	lenOff := len(dst)
	dst = append(dst, 0, 0) // rdlength placeholder
	// Name compression inside RDATA is only allowed for the RFC 1035
	// well-known types; others pack names uncompressed. Each RData
	// implementation honours that by ignoring or using cmap.
	rdataCmap := cmap
	switch rr.Type {
	case TypeCNAME, TypeNS, TypePTR, TypeMX, TypeSOA:
		// compression permitted
	default:
		rdataCmap = nil
	}
	dst, err = rr.Data.pack(dst, rdataCmap)
	if err != nil {
		return nil, fmt.Errorf("packing %s RDATA for %q: %w", rr.Type, rr.Name, err)
	}
	rdlen := len(dst) - lenOff - 2
	if rdlen > 65535 {
		return nil, fmt.Errorf("dnswire: RDATA for %q exceeds 65535 bytes", rr.Name)
	}
	binary.BigEndian.PutUint16(dst[lenOff:], uint16(rdlen))
	return dst, nil
}

// PackRR encodes a single record without message context (no compression).
// This is the canonical form used for DNSSEC signing.
func PackRR(rr RR) ([]byte, error) {
	return packRR(nil, rr, nil)
}

// maxInternedNames bounds each pooled scratch's cross-message name
// intern table. Resolver traffic re-decodes the same QNAMEs and owner
// names all day, so the table converges on the live name set quickly;
// once full it stops admitting new entries rather than evicting, which
// keeps lookups allocation-free and the memory bound hard.
const maxInternedNames = 4096

// decodeScratch carries per-decode reusable state: a presentation-form
// name buffer, the set of name strings minted so far in this message
// (so compression-pointer reuse of the same name yields one shared
// string), and an intern table that survives recycling so names seen in
// earlier messages are never minted again.
type decodeScratch struct {
	names  []string
	buf    []byte
	intern map[string]string
}

var decScratchPool = sync.Pool{New: func() any {
	return &decodeScratch{names: make([]string, 0, 16), buf: make([]byte, 0, 256)}
}}

func putDecScratch(sc *decodeScratch) {
	// Zero the string headers so the per-message memo never pins name
	// strings from a past message, then cap-trim oversized backing
	// arrays. The intern table is deliberately kept: pinning up to
	// maxInternedNames shared name strings is its job.
	clear(sc.names)
	sc.names = sc.names[:0]
	if cap(sc.names) > maxRecycledNames {
		sc.names = nil
	}
	sc.buf = trimRecycled(sc.buf)
	decScratchPool.Put(sc)
}

// unpackNameCached decodes the name at msg[off:], reusing prev when the
// decoded bytes match it (the steady state when a recycled Message sees the
// same answers again) and otherwise deduplicating against names already
// minted for this message. Repeated decodes of an unchanged message
// allocate zero strings.
func unpackNameCached(sc *decodeScratch, msg []byte, off int, prev string) (string, int, error) {
	b, end, err := appendName(sc.buf[:0], msg, off)
	sc.buf = b
	if err != nil {
		return "", 0, err
	}
	if prev != "" && prev == string(b) {
		return prev, end, nil
	}
	for _, s := range sc.names {
		if s == string(b) {
			return s, end, nil
		}
	}
	// The map lookup with an inline []byte→string conversion does not
	// allocate (compiler-recognised pattern), so a steady-state decode
	// whose names are all interned mints zero strings.
	if s, ok := sc.intern[string(b)]; ok {
		sc.names = append(sc.names, s)
		return s, end, nil
	}
	s := string(b)
	sc.names = append(sc.names, s)
	if len(sc.intern) < maxInternedNames {
		if sc.intern == nil {
			sc.intern = make(map[string]string, 64)
		}
		sc.intern[s] = s
	}
	return s, end, nil
}

// Unpack decodes a wire-format message.
func Unpack(b []byte) (*Message, error) {
	m := new(Message)
	if err := UnpackInto(m, b); err != nil {
		return nil, err
	}
	return m, nil
}

// UnpackInto decodes a wire-format message into m, reusing m's question and
// section slices (cap-preserving truncation) and, where types line up,
// existing RDATA values and name strings. Decoding the same shape of
// message into a recycled Message allocates nothing. Previous contents of m
// are overwritten; strings and RDATA from the prior decode may be reused,
// so callers must not hold references into a Message across UnpackInto
// calls on it.
func UnpackInto(m *Message, b []byte) error {
	sc := decScratchPool.Get().(*decodeScratch)
	err := unpackInto(m, b, sc)
	putDecScratch(sc)
	return err
}

func unpackInto(m *Message, b []byte, sc *decodeScratch) error {
	if len(b) < headerLen {
		return ErrShortMessage
	}
	m.ID = binary.BigEndian.Uint16(b)
	flags := binary.BigEndian.Uint16(b[2:])
	m.Response = flags&(1<<15) != 0
	m.Opcode = Opcode(flags >> 11 & 0xf)
	m.Authoritative = flags&(1<<10) != 0
	m.Truncated = flags&(1<<9) != 0
	m.RecursionDesired = flags&(1<<8) != 0
	m.RecursionAvailable = flags&(1<<7) != 0
	m.AuthenticatedData = flags&(1<<5) != 0
	m.CheckingDisabled = flags&(1<<4) != 0
	m.RCode = RCode(flags & 0xf)

	qd := int(binary.BigEndian.Uint16(b[4:]))
	an := int(binary.BigEndian.Uint16(b[6:]))
	ns := int(binary.BigEndian.Uint16(b[8:]))
	ar := int(binary.BigEndian.Uint16(b[10:]))

	off := headerLen
	var err error
	prevQ := m.Question
	m.Question = m.Question[:0]
	for i := 0; i < qd; i++ {
		// Read the recycled slot before append overwrites it in place.
		var prev Question
		if i < len(prevQ) {
			prev = prevQ[i]
		}
		var q Question
		q.Name, off, err = unpackNameCached(sc, b, off, prev.Name)
		if err != nil {
			return fmt.Errorf("unpacking question %d: %w", i, err)
		}
		if off+4 > len(b) {
			return ErrTruncatedName
		}
		q.Type = Type(binary.BigEndian.Uint16(b[off:]))
		q.Class = Class(binary.BigEndian.Uint16(b[off+2:]))
		off += 4
		m.Question = append(m.Question, q)
	}
	sections := [3]*[]RR{&m.Answer, &m.Authority, &m.Additional}
	counts := [3]int{an, ns, ar}
	for si, count := range counts {
		sp := sections[si]
		prevS := *sp
		*sp = (*sp)[:0]
		for i := 0; i < count; i++ {
			var prev RR
			if i < len(prevS) {
				prev = prevS[i]
			}
			var rr RR
			rr, off, err = unpackRRInto(b, off, prev, sc)
			if err != nil {
				return fmt.Errorf("unpacking record %d of section %d: %w", i, si, err)
			}
			*sp = append(*sp, rr)
		}
	}
	// Extended RCODE from OPT (high 8 bits live in the OPT TTL).
	if opt := m.OPT(); opt != nil {
		m.RCode |= RCode(opt.TTL>>24&0xff) << 4
	}
	return nil
}

func unpackRRInto(b []byte, off int, prev RR, sc *decodeScratch) (RR, int, error) {
	var rr RR
	var err error
	rr.Name, off, err = unpackNameCached(sc, b, off, prev.Name)
	if err != nil {
		return rr, 0, err
	}
	if off+10 > len(b) {
		return rr, 0, ErrTruncatedName
	}
	rr.Type = Type(binary.BigEndian.Uint16(b[off:]))
	rr.Class = Class(binary.BigEndian.Uint16(b[off+2:]))
	rr.TTL = binary.BigEndian.Uint32(b[off+4:])
	rdlen := int(binary.BigEndian.Uint16(b[off+8:]))
	off += 10
	if off+rdlen > len(b) {
		return rr, 0, fmt.Errorf("dnswire: RDATA truncated for %q", rr.Name)
	}
	rr.Data, err = unpackRDataInto(rr.Type, b, off, rdlen, prev.Data, sc)
	if err != nil {
		return rr, 0, err
	}
	return rr, off + rdlen, nil
}

// String renders the message in dig-like presentation form.
func (m *Message) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, ";; opcode: %d, status: %s, id: %d\n", m.Opcode, m.RCode, m.ID)
	fmt.Fprintf(&sb, ";; flags:")
	for _, f := range []struct {
		on   bool
		name string
	}{
		{m.Response, "qr"}, {m.Authoritative, "aa"}, {m.Truncated, "tc"},
		{m.RecursionDesired, "rd"}, {m.RecursionAvailable, "ra"},
		{m.AuthenticatedData, "ad"}, {m.CheckingDisabled, "cd"},
	} {
		if f.on {
			sb.WriteString(" " + f.name)
		}
	}
	sb.WriteString("\n")
	for _, q := range m.Question {
		fmt.Fprintf(&sb, ";%s\n", q)
	}
	for _, sec := range []struct {
		name string
		rrs  []RR
	}{{"ANSWER", m.Answer}, {"AUTHORITY", m.Authority}, {"ADDITIONAL", m.Additional}} {
		if len(sec.rrs) == 0 {
			continue
		}
		fmt.Fprintf(&sb, ";; %s:\n", sec.name)
		for _, rr := range sec.rrs {
			if rr.Type == TypeOPT {
				continue
			}
			sb.WriteString(rr.String() + "\n")
		}
	}
	return sb.String()
}

// WriteTCP writes the message to w with the 2-byte length prefix used by
// DNS over TCP. The frame is assembled in a pooled buffer, so a steady
// stream of writes allocates nothing.
func WriteTCP(w io.Writer, m *Message) error {
	bp := GetWireBuf()
	defer PutWireBuf(bp)
	buf := append(*bp, 0, 0)
	buf, err := m.AppendPack(buf)
	if err != nil {
		return err
	}
	*bp = buf
	if len(buf)-2 > 65535 {
		return fmt.Errorf("dnswire: message exceeds TCP limit")
	}
	binary.BigEndian.PutUint16(buf, uint16(len(buf)-2))
	_, err = w.Write(buf)
	return err
}

// ReadTCP reads one length-prefixed DNS message from r.
func ReadTCP(r io.Reader) (*Message, error) {
	var lenBuf [2]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint16(lenBuf[:])
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return Unpack(buf)
}

package dnswire

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// Name handling. Throughout the framework, domain names are represented as
// fully-qualified, lower-case, dot-terminated strings ("example.com.").
// CanonicalName normalises arbitrary input into that form.

// Errors returned by name encoding/decoding.
var (
	ErrNameTooLong    = errors.New("dnswire: name exceeds 255 octets")
	ErrLabelTooLong   = errors.New("dnswire: label exceeds 63 octets")
	ErrEmptyLabel     = errors.New("dnswire: empty label")
	ErrBadPointer     = errors.New("dnswire: bad compression pointer")
	ErrTruncatedName  = errors.New("dnswire: truncated name")
	ErrTooManyPointer = errors.New("dnswire: compression pointer loop")
)

// CanonicalName lower-cases s and ensures a trailing dot. The root name is
// returned as ".". Input that is already canonical — the steady state on
// the query hot path — is returned as-is without allocating.
func CanonicalName(s string) string {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "" || s == "." {
		return "."
	}
	if !strings.HasSuffix(s, ".") {
		s += "."
	}
	return s
}

// SplitLabels splits a canonical name into its labels, excluding the root.
// SplitLabels("www.example.com.") == ["www", "example", "com"].
func SplitLabels(name string) []string {
	name = CanonicalName(name)
	if name == "." {
		return nil
	}
	return strings.Split(strings.TrimSuffix(name, "."), ".")
}

// CountLabels returns the number of labels in the canonical name.
func CountLabels(name string) int {
	return len(SplitLabels(name))
}

// ParentName returns the name with its leftmost label removed.
// ParentName("www.example.com.") == "example.com.". The parent of the root
// is the root.
func ParentName(name string) string {
	labels := SplitLabels(name)
	if len(labels) <= 1 {
		return "."
	}
	return strings.Join(labels[1:], ".") + "."
}

// IsSubdomain reports whether child is equal to or underneath parent.
func IsSubdomain(child, parent string) bool {
	child, parent = CanonicalName(child), CanonicalName(parent)
	if parent == "." {
		return true
	}
	return child == parent || strings.HasSuffix(child, "."+parent)
}

// ApexOf returns the registrable apex assuming single-label TLDs
// ("a.b.example.com." → "example.com."). Names with fewer than two labels
// are returned unchanged.
func ApexOf(name string) string {
	labels := SplitLabels(name)
	if len(labels) < 2 {
		return CanonicalName(name)
	}
	return strings.Join(labels[len(labels)-2:], ".") + "."
}

// ValidateName checks RFC 1035 length limits on a canonical name. It walks
// the name in place — no label splitting — so the pack hot path stays
// allocation-free.
func ValidateName(name string) error {
	name = CanonicalName(name)
	if name == "." {
		return nil
	}
	return validateCanonical(name)
}

// validateCanonical applies the RFC 1035 limits to an already-canonical,
// non-root, dot-terminated name.
func validateCanonical(name string) error {
	total := 1 // root byte
	for pos := 0; pos < len(name); {
		dot := strings.IndexByte(name[pos:], '.')
		if dot == 0 {
			return ErrEmptyLabel
		}
		if dot > 63 {
			return ErrLabelTooLong
		}
		total += dot + 1
		pos += dot + 1
	}
	if total > 255 {
		return ErrNameTooLong
	}
	return nil
}

// validateNameBytes is ValidateName over the byte form a wire decode
// produces (lower-case, dot-terminated), avoiding the string conversion.
func validateNameBytes(name []byte) error {
	if len(name) == 1 && name[0] == '.' {
		return nil
	}
	total := 1
	for pos := 0; pos < len(name); {
		dot := -1
		for i := pos; i < len(name); i++ {
			if name[i] == '.' {
				dot = i - pos
				break
			}
		}
		if dot == 0 {
			return ErrEmptyLabel
		}
		if dot > 63 {
			return ErrLabelTooLong
		}
		total += dot + 1
		pos += dot + 1
	}
	if total > 255 {
		return ErrNameTooLong
	}
	return nil
}

// compressionMap tracks name-suffix→offset mappings while packing a
// message. Offsets are relative to base, the message's start within the
// destination buffer, so AppendPack can encode into the middle of a larger
// frame and still emit receiver-correct pointers. A nil *compressionMap
// disables compression (used for RDATA fields where compression is
// forbidden, e.g. RRSIG signer names and SVCB targets).
type compressionMap struct {
	base int
	off  map[string]int
}

// cmapPool recycles compression maps across packs; the map is cleared on
// the way back in so no name strings are retained between messages.
var cmapPool = sync.Pool{New: func() any {
	return &compressionMap{off: make(map[string]int, 8)}
}}

func getCmap(base int) *compressionMap {
	cm := cmapPool.Get().(*compressionMap)
	cm.base = base
	return cm
}

func putCmap(cm *compressionMap) {
	clear(cm.off)
	cmapPool.Put(cm)
}

// packName appends the wire form of name to dst. When cmap is non-nil,
// compression pointers are emitted for previously seen suffixes and new
// suffixes are registered at their offsets. Suffix keys are sub-slices of
// the canonical name, so the walk allocates nothing.
func packName(dst []byte, name string, cmap *compressionMap) ([]byte, error) {
	name = CanonicalName(name)
	if name == "." {
		return append(dst, 0), nil
	}
	if err := validateCanonical(name); err != nil {
		return nil, err
	}
	for pos := 0; pos < len(name); {
		suffix := name[pos:]
		if cmap != nil {
			if off, ok := cmap.off[suffix]; ok {
				if off <= 0x3fff {
					return append(dst, 0xc0|byte(off>>8), byte(off)), nil
				}
			}
			if rel := len(dst) - cmap.base; rel <= 0x3fff {
				cmap.off[suffix] = rel
			}
		}
		dot := strings.IndexByte(suffix, '.')
		dst = append(dst, byte(dot))
		dst = append(dst, suffix[:dot]...)
		pos += dot + 1
	}
	return append(dst, 0), nil
}

// nameScratchPool recycles the presentation-form byte buffer unpackName
// decodes into before the final string conversion.
var nameScratchPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 256)
	return &b
}}

// unpackName reads a (possibly compressed) name from msg starting at off.
// It returns the canonical name and the offset just past the name in the
// original (uncompressed) stream. The only allocation is the returned
// string itself.
func unpackName(msg []byte, off int) (string, int, error) {
	bp := nameScratchPool.Get().(*[]byte)
	b, end, err := appendName((*bp)[:0], msg, off)
	if err != nil {
		*bp = b
		nameScratchPool.Put(bp)
		return "", 0, err
	}
	name := string(b)
	*bp = b
	nameScratchPool.Put(bp)
	return name, end, nil
}

// appendName decodes the (possibly compressed) name at msg[off:] into dst
// in canonical presentation form (lower-cased, dot-terminated, root as
// ".") and returns the appended buffer plus the offset just past the name
// in the original stream. It allocates nothing beyond dst growth.
func appendName(dst []byte, msg []byte, off int) ([]byte, int, error) {
	start := len(dst)
	ptrCount := 0
	end := -1 // offset after the name in the original stream
	for {
		if off >= len(msg) {
			return dst, 0, ErrTruncatedName
		}
		b := msg[off]
		switch {
		case b == 0:
			if end < 0 {
				end = off + 1
			}
			if len(dst) == start {
				dst = append(dst, '.')
			}
			if err := validateNameBytes(dst[start:]); err != nil {
				return dst, 0, err
			}
			return dst, end, nil
		case b&0xc0 == 0xc0:
			if off+1 >= len(msg) {
				return dst, 0, ErrTruncatedName
			}
			ptr := int(b&0x3f)<<8 | int(msg[off+1])
			if end < 0 {
				end = off + 2
			}
			if ptr >= off {
				return dst, 0, ErrBadPointer
			}
			ptrCount++
			if ptrCount > 32 {
				return dst, 0, ErrTooManyPointer
			}
			off = ptr
		case b&0xc0 != 0:
			return dst, 0, fmt.Errorf("dnswire: reserved label type %#x", b&0xc0)
		default:
			n := int(b)
			if off+1+n > len(msg) {
				return dst, 0, ErrTruncatedName
			}
			for _, c := range msg[off+1 : off+1+n] {
				if 'A' <= c && c <= 'Z' {
					c += 'a' - 'A'
				}
				dst = append(dst, c)
			}
			dst = append(dst, '.')
			off += 1 + n
		}
	}
}

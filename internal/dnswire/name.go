package dnswire

import (
	"errors"
	"fmt"
	"strings"
)

// Name handling. Throughout the framework, domain names are represented as
// fully-qualified, lower-case, dot-terminated strings ("example.com.").
// CanonicalName normalises arbitrary input into that form.

// Errors returned by name encoding/decoding.
var (
	ErrNameTooLong    = errors.New("dnswire: name exceeds 255 octets")
	ErrLabelTooLong   = errors.New("dnswire: label exceeds 63 octets")
	ErrEmptyLabel     = errors.New("dnswire: empty label")
	ErrBadPointer     = errors.New("dnswire: bad compression pointer")
	ErrTruncatedName  = errors.New("dnswire: truncated name")
	ErrTooManyPointer = errors.New("dnswire: compression pointer loop")
)

// CanonicalName lower-cases s and ensures a trailing dot. The root name is
// returned as ".".
func CanonicalName(s string) string {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "" || s == "." {
		return "."
	}
	if !strings.HasSuffix(s, ".") {
		s += "."
	}
	return s
}

// SplitLabels splits a canonical name into its labels, excluding the root.
// SplitLabels("www.example.com.") == ["www", "example", "com"].
func SplitLabels(name string) []string {
	name = CanonicalName(name)
	if name == "." {
		return nil
	}
	return strings.Split(strings.TrimSuffix(name, "."), ".")
}

// CountLabels returns the number of labels in the canonical name.
func CountLabels(name string) int {
	return len(SplitLabels(name))
}

// ParentName returns the name with its leftmost label removed.
// ParentName("www.example.com.") == "example.com.". The parent of the root
// is the root.
func ParentName(name string) string {
	labels := SplitLabels(name)
	if len(labels) <= 1 {
		return "."
	}
	return strings.Join(labels[1:], ".") + "."
}

// IsSubdomain reports whether child is equal to or underneath parent.
func IsSubdomain(child, parent string) bool {
	child, parent = CanonicalName(child), CanonicalName(parent)
	if parent == "." {
		return true
	}
	return child == parent || strings.HasSuffix(child, "."+parent)
}

// ApexOf returns the registrable apex assuming single-label TLDs
// ("a.b.example.com." → "example.com."). Names with fewer than two labels
// are returned unchanged.
func ApexOf(name string) string {
	labels := SplitLabels(name)
	if len(labels) < 2 {
		return CanonicalName(name)
	}
	return strings.Join(labels[len(labels)-2:], ".") + "."
}

// ValidateName checks RFC 1035 length limits on a canonical name.
func ValidateName(name string) error {
	name = CanonicalName(name)
	if name == "." {
		return nil
	}
	total := 1 // root byte
	for _, label := range SplitLabels(name) {
		if len(label) == 0 {
			return ErrEmptyLabel
		}
		if len(label) > 63 {
			return ErrLabelTooLong
		}
		total += len(label) + 1
	}
	if total > 255 {
		return ErrNameTooLong
	}
	return nil
}

// compressionMap tracks name→offset mappings while packing a message.
// A nil map disables compression (used for RDATA fields where compression
// is forbidden, e.g. RRSIG signer names and SVCB targets).
type compressionMap map[string]int

// packName appends the wire form of name to dst. When cmap is non-nil,
// compression pointers are emitted for previously seen suffixes and new
// suffixes are registered at their offsets.
func packName(dst []byte, name string, cmap compressionMap) ([]byte, error) {
	name = CanonicalName(name)
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	labels := SplitLabels(name)
	for i := range labels {
		suffix := strings.Join(labels[i:], ".") + "."
		if cmap != nil {
			if off, ok := cmap[suffix]; ok {
				if off <= 0x3fff {
					dst = append(dst, 0xc0|byte(off>>8), byte(off))
					return dst, nil
				}
			}
			if len(dst) <= 0x3fff {
				cmap[suffix] = len(dst)
			}
		}
		dst = append(dst, byte(len(labels[i])))
		dst = append(dst, labels[i]...)
	}
	return append(dst, 0), nil
}

// unpackName reads a (possibly compressed) name from msg starting at off.
// It returns the canonical name and the offset just past the name in the
// original (uncompressed) stream.
func unpackName(msg []byte, off int) (string, int, error) {
	var sb strings.Builder
	ptrCount := 0
	end := -1 // offset after the name in the original stream
	for {
		if off >= len(msg) {
			return "", 0, ErrTruncatedName
		}
		b := msg[off]
		switch {
		case b == 0:
			if end < 0 {
				end = off + 1
			}
			name := sb.String()
			if name == "" {
				name = "."
			}
			if err := ValidateName(name); err != nil {
				return "", 0, err
			}
			return CanonicalName(name), end, nil
		case b&0xc0 == 0xc0:
			if off+1 >= len(msg) {
				return "", 0, ErrTruncatedName
			}
			ptr := int(b&0x3f)<<8 | int(msg[off+1])
			if end < 0 {
				end = off + 2
			}
			if ptr >= off {
				return "", 0, ErrBadPointer
			}
			ptrCount++
			if ptrCount > 32 {
				return "", 0, ErrTooManyPointer
			}
			off = ptr
		case b&0xc0 != 0:
			return "", 0, fmt.Errorf("dnswire: reserved label type %#x", b&0xc0)
		default:
			n := int(b)
			if off+1+n > len(msg) {
				return "", 0, ErrTruncatedName
			}
			sb.Write(toLowerASCII(msg[off+1 : off+1+n]))
			sb.WriteByte('.')
			off += 1 + n
		}
	}
}

func toLowerASCII(b []byte) []byte {
	out := make([]byte, len(b))
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		out[i] = c
	}
	return out
}

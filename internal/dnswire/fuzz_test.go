package dnswire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// fuzzSeeds builds the seed corpus both fuzz targets share: packed
// workload-shaped queries (the HTTPS questions the simulated stub
// population issues), their answers, and hand-mangled variants —
// truncated QNAMEs, label lengths pointing past the buffer, and
// compression-pointer edge shapes.
func fuzzSeeds(t testing.TB) [][]byte {
	t.Helper()
	var seeds [][]byte
	add := func(m *Message) {
		wire, err := m.Pack()
		if err != nil {
			t.Fatalf("seed pack: %v", err)
		}
		seeds = append(seeds, wire)
	}
	// Workload-shaped queries: the Zipf head of a Tranco-style universe.
	for i, name := range []string{"site0000.example", "crowd.test", "a.very.deep.subdomain.of.site0001.example"} {
		add(NewQuery(uint16(i+1), name, TypeHTTPS, false))
		add(NewQuery(uint16(i+100), name, TypeA, true))
	}
	// An answered message with an HTTPS record, the serving path's shape.
	resp := NewQuery(7, "site0002.example", TypeHTTPS, false).Reply()
	resp.RecursionAvailable = true
	resp.Answer = append(resp.Answer, RR{
		Name: "site0002.example.", Type: TypeHTTPS, Class: ClassINET, TTL: 300,
		Data: &SVCBData{Priority: 1, Target: "."},
	})
	add(resp)

	base, err := NewQuery(9, "site0003.example", TypeHTTPS, false).Pack()
	if err != nil {
		t.Fatal(err)
	}
	// Truncated QNAME: cut mid-label.
	seeds = append(seeds, base[:len(base)-7])
	// Label length running past the end of the buffer.
	overrun := bytes.Clone(base)
	overrun[12] = 63
	seeds = append(seeds, overrun)
	// A bare header, and a header lying about its question count.
	seeds = append(seeds, base[:12])
	lying := bytes.Clone(base)
	binary.BigEndian.PutUint16(lying[4:6], 0xffff)
	seeds = append(seeds, lying)
	// Degenerate tiny inputs.
	seeds = append(seeds, []byte{}, []byte{0}, bytes.Repeat([]byte{0xc0}, 16))
	return seeds
}

// FuzzUnpack asserts Unpack never panics and that anything it accepts
// survives a Pack → Unpack round trip of the header and question
// section — the invariant the serving path relies on when it patches
// IDs and question names into reused messages.
func FuzzUnpack(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unpack(data)
		if err != nil {
			return
		}
		wire, err := m.Pack()
		if err != nil {
			// Unpack may surface messages Pack cannot re-encode (e.g.
			// unknown RR shapes); that asymmetry is fine as long as
			// nothing panicked.
			return
		}
		m2, err := Unpack(wire)
		if err != nil {
			t.Fatalf("repack of accepted message failed to unpack: %v", err)
		}
		if m2.ID != m.ID || len(m2.Question) != len(m.Question) {
			t.Fatalf("round trip drifted: ID %d→%d, questions %d→%d",
				m.ID, m2.ID, len(m.Question), len(m2.Question))
		}
		for i := range m.Question {
			if m2.Question[i].Name != m.Question[i].Name || m2.Question[i].Type != m.Question[i].Type {
				t.Fatalf("question %d drifted: %+v → %+v", i, m.Question[i], m2.Question[i])
			}
		}
	})
}

// FuzzReadTCP drives the RFC 1035 §4.2.2 two-byte length framing with
// arbitrary streams: malformed prefixes, short bodies, and trailing
// garbage must come back as errors, never panics or over-reads.
func FuzzReadTCP(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		framed := make([]byte, 2+len(s))
		binary.BigEndian.PutUint16(framed, uint16(len(s)))
		copy(framed[2:], s)
		f.Add(framed)
		// Length prefix longer than the body.
		lying := bytes.Clone(framed)
		binary.BigEndian.PutUint16(lying, uint16(len(s))+40)
		f.Add(lying)
		// Length prefix shorter than the body: trailing garbage.
		if len(s) > 4 {
			short := bytes.Clone(framed)
			binary.BigEndian.PutUint16(short, uint16(len(s))-4)
			f.Add(short)
		}
	}
	f.Add([]byte{0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		m, err := ReadTCP(r)
		if err != nil {
			return
		}
		if m == nil {
			t.Fatal("ReadTCP returned nil message with nil error")
		}
		// A parsed frame must round-trip through the writer.
		var buf bytes.Buffer
		if err := WriteTCP(&buf, m); err != nil {
			return
		}
		if _, err := ReadTCP(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("rewritten frame failed to read back: %v", err)
		}
	})
}

// TestFuzzSeedsParse keeps the well-formed half of the corpus honest:
// the packed query seeds must stay parseable as the wire format
// evolves, so the fuzzers always start from live coverage.
func TestFuzzSeedsParse(t *testing.T) {
	parsed := 0
	for _, s := range fuzzSeeds(t) {
		if m, err := Unpack(s); err == nil && len(m.Question) == 1 {
			parsed++
		}
	}
	if parsed < 7 {
		t.Fatalf("only %d seeds parse cleanly, want ≥ 7 (queries + answer)", parsed)
	}
}

package dnswire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// fuzzSeeds builds the seed corpus both fuzz targets share: packed
// workload-shaped queries (the HTTPS questions the simulated stub
// population issues), their answers, and hand-mangled variants —
// truncated QNAMEs, label lengths pointing past the buffer, and
// compression-pointer edge shapes.
func fuzzSeeds(t testing.TB) [][]byte {
	t.Helper()
	var seeds [][]byte
	add := func(m *Message) {
		wire, err := m.Pack()
		if err != nil {
			t.Fatalf("seed pack: %v", err)
		}
		seeds = append(seeds, wire)
	}
	// Workload-shaped queries: the Zipf head of a Tranco-style universe.
	for i, name := range []string{"site0000.example", "crowd.test", "a.very.deep.subdomain.of.site0001.example"} {
		add(NewQuery(uint16(i+1), name, TypeHTTPS, false))
		add(NewQuery(uint16(i+100), name, TypeA, true))
	}
	// An answered message with an HTTPS record, the serving path's shape.
	resp := NewQuery(7, "site0002.example", TypeHTTPS, false).Reply()
	resp.RecursionAvailable = true
	resp.Answer = append(resp.Answer, RR{
		Name: "site0002.example.", Type: TypeHTTPS, Class: ClassINET, TTL: 300,
		Data: &SVCBData{Priority: 1, Target: "."},
	})
	add(resp)

	base, err := NewQuery(9, "site0003.example", TypeHTTPS, false).Pack()
	if err != nil {
		t.Fatal(err)
	}
	// Truncated QNAME: cut mid-label.
	seeds = append(seeds, base[:len(base)-7])
	// Label length running past the end of the buffer.
	overrun := bytes.Clone(base)
	overrun[12] = 63
	seeds = append(seeds, overrun)
	// A bare header, and a header lying about its question count.
	seeds = append(seeds, base[:12])
	lying := bytes.Clone(base)
	binary.BigEndian.PutUint16(lying[4:6], 0xffff)
	seeds = append(seeds, lying)
	// Degenerate tiny inputs.
	seeds = append(seeds, []byte{}, []byte{0}, bytes.Repeat([]byte{0xc0}, 16))
	return seeds
}

// FuzzUnpack asserts Unpack never panics and that anything it accepts
// survives a Pack → Unpack round trip of the header and question
// section — the invariant the serving path relies on when it patches
// IDs and question names into reused messages.
func FuzzUnpack(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unpack(data)
		if err != nil {
			return
		}
		wire, err := m.Pack()
		if err != nil {
			// Unpack may surface messages Pack cannot re-encode (e.g.
			// unknown RR shapes); that asymmetry is fine as long as
			// nothing panicked.
			return
		}
		m2, err := Unpack(wire)
		if err != nil {
			t.Fatalf("repack of accepted message failed to unpack: %v", err)
		}
		if m2.ID != m.ID || len(m2.Question) != len(m.Question) {
			t.Fatalf("round trip drifted: ID %d→%d, questions %d→%d",
				m.ID, m2.ID, len(m.Question), len(m2.Question))
		}
		for i := range m.Question {
			if m2.Question[i].Name != m.Question[i].Name || m2.Question[i].Type != m.Question[i].Type {
				t.Fatalf("question %d drifted: %+v → %+v", i, m.Question[i], m2.Question[i])
			}
		}
	})
}

// FuzzReadTCP drives the RFC 1035 §4.2.2 two-byte length framing with
// arbitrary streams: malformed prefixes, short bodies, and trailing
// garbage must come back as errors, never panics or over-reads.
func FuzzReadTCP(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		framed := make([]byte, 2+len(s))
		binary.BigEndian.PutUint16(framed, uint16(len(s)))
		copy(framed[2:], s)
		f.Add(framed)
		// Length prefix longer than the body.
		lying := bytes.Clone(framed)
		binary.BigEndian.PutUint16(lying, uint16(len(s))+40)
		f.Add(lying)
		// Length prefix shorter than the body: trailing garbage.
		if len(s) > 4 {
			short := bytes.Clone(framed)
			binary.BigEndian.PutUint16(short, uint16(len(s))-4)
			f.Add(short)
		}
	}
	f.Add([]byte{0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		m, err := ReadTCP(r)
		if err != nil {
			return
		}
		if m == nil {
			t.Fatal("ReadTCP returned nil message with nil error")
		}
		// A parsed frame must round-trip through the writer.
		var buf bytes.Buffer
		if err := WriteTCP(&buf, m); err != nil {
			return
		}
		if _, err := ReadTCP(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("rewritten frame failed to read back: %v", err)
		}
	})
}

// FuzzUnpackInto drives the pooled decode path with dirty reuse: every
// input is decoded twice, once into a fresh Message and once into a
// Message still holding a fully-populated prior answer (the recycled
// state every pooled decode on the serving path starts from). The two
// results must agree on acceptance and on content — any divergence means
// prior-message state leaked through the reuse machinery.
func FuzzUnpackInto(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	// The dirty template: an answered message with populated answer,
	// authority-adjacent EDNS state, and SVCB params, so every reuse slot
	// (questions, RR sections, RDATA values, the OPT record) holds stale
	// content a leaky decode could surface.
	dirtyTmpl := NewQuery(7, "dirty.example", TypeHTTPS, true).Reply()
	dirtyTmpl.Answer = append(dirtyTmpl.Answer,
		RR{Name: "dirty.example.", Type: TypeHTTPS, Class: ClassINET, TTL: 300,
			Data: &SVCBData{Priority: 1, Target: "svc.dirty.example."}},
		RR{Name: "dirty.example.", Type: TypeTXT, Class: ClassINET, TTL: 60,
			Data: &TXTData{Strings: []string{"stale-state", "leak-canary"}}},
	)
	dirtyWire, err := dirtyTmpl.Pack()
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fresh, freshErr := Unpack(data)
		dirty := new(Message)
		if err := UnpackInto(dirty, dirtyWire); err != nil {
			t.Fatalf("dirty template failed to decode: %v", err)
		}
		dirtyErr := UnpackInto(dirty, data)
		if (freshErr == nil) != (dirtyErr == nil) {
			t.Fatalf("fresh/dirty acceptance diverged: fresh=%v dirty=%v", freshErr, dirtyErr)
		}
		if freshErr != nil {
			return
		}
		assertSameDecode(t, fresh, dirty)
	})
}

// assertSameDecode fails when the two decodes of the same wire input
// differ — header, questions, section shapes, or record content (compared
// via the RData presentation form, which formats values rather than
// backing-array identity).
func assertSameDecode(t *testing.T, fresh, dirty *Message) {
	t.Helper()
	if fresh.ID != dirty.ID || fresh.Response != dirty.Response ||
		fresh.Opcode != dirty.Opcode || fresh.RCode != dirty.RCode ||
		fresh.Truncated != dirty.Truncated {
		t.Fatalf("header diverged: fresh=%+v dirty=%+v", fresh, dirty)
	}
	if len(fresh.Question) != len(dirty.Question) {
		t.Fatalf("question count diverged: %d vs %d", len(fresh.Question), len(dirty.Question))
	}
	for i := range fresh.Question {
		if fresh.Question[i] != dirty.Question[i] {
			t.Fatalf("question %d diverged: %+v vs %+v", i, fresh.Question[i], dirty.Question[i])
		}
	}
	sections := []struct {
		name         string
		fresh, dirty []RR
	}{
		{"answer", fresh.Answer, dirty.Answer},
		{"authority", fresh.Authority, dirty.Authority},
		{"additional", fresh.Additional, dirty.Additional},
	}
	for _, s := range sections {
		if len(s.fresh) != len(s.dirty) {
			t.Fatalf("%s count diverged: %d vs %d", s.name, len(s.fresh), len(s.dirty))
		}
		for i := range s.fresh {
			a, b := s.fresh[i], s.dirty[i]
			if a.Name != b.Name || a.Type != b.Type || a.Class != b.Class || a.TTL != b.TTL {
				t.Fatalf("%s[%d] RR diverged: %+v vs %+v", s.name, i, a, b)
			}
			if (a.Data == nil) != (b.Data == nil) {
				t.Fatalf("%s[%d] RDATA presence diverged", s.name, i)
			}
			if a.Data != nil && a.Data.String() != b.Data.String() {
				t.Fatalf("%s[%d] RDATA diverged: %q vs %q", s.name, i, a.Data.String(), b.Data.String())
			}
		}
	}
}

// TestFuzzSeedsParse keeps the well-formed half of the corpus honest:
// the packed query seeds must stay parseable as the wire format
// evolves, so the fuzzers always start from live coverage.
func TestFuzzSeedsParse(t *testing.T) {
	parsed := 0
	for _, s := range fuzzSeeds(t) {
		if m, err := Unpack(s); err == nil && len(m.Question) == 1 {
			parsed++
		}
	}
	if parsed < 7 {
		t.Fatalf("only %d seeds parse cleanly, want ≥ 7 (queries + answer)", parsed)
	}
}

package dnswire

import "testing"

// TestTrimRecycledCeiling pins the recycling ceiling: buffers at or under
// maxRecycledBuf keep their backing array (truncated to zero length),
// anything over is dropped for the GC. The ceiling is what stops one
// jumbo message from pinning its array in a pool for a whole campaign.
func TestTrimRecycledCeiling(t *testing.T) {
	under := make([]byte, 100, maxRecycledBuf)
	if got := trimRecycled(under); len(got) != 0 || cap(got) != maxRecycledBuf {
		t.Fatalf("under-ceiling buffer: got len=%d cap=%d, want len=0 cap=%d",
			len(got), cap(got), maxRecycledBuf)
	}
	over := make([]byte, 0, maxRecycledBuf+1)
	if got := trimRecycled(over); got != nil {
		t.Fatalf("over-ceiling buffer kept: cap=%d, want nil", cap(got))
	}
	if got := trimRecycled(nil); got != nil {
		t.Fatalf("trimRecycled(nil) = %v, want nil", got)
	}
}

// TestPutWireBufCeiling drives the same ceiling through the public pool
// API: an oversized buffer handed to PutWireBuf must not come back out of
// GetWireBuf with its jumbo backing array intact.
func TestPutWireBufCeiling(t *testing.T) {
	big := make([]byte, maxRecycledBuf*2)
	PutWireBuf(&big)
	// The pool may or may not hand back the same pointer; what matters is
	// that no buffer it serves exceeds the ceiling.
	for i := 0; i < 8; i++ {
		bp := GetWireBuf()
		if cap(*bp) > maxRecycledBuf {
			t.Fatalf("pool served a buffer with cap %d over ceiling %d", cap(*bp), maxRecycledBuf)
		}
		PutWireBuf(bp)
	}
	PutWireBuf(nil) // must not panic
}

// TestDecodeScratchNameCeiling pins the decode scratch's name-memo
// ceiling: a scratch whose memo grew past maxRecycledNames drops the
// backing array on the way into the pool, and the retained memo never
// pins name strings from a past message.
func TestDecodeScratchNameCeiling(t *testing.T) {
	sc := &decodeScratch{names: make([]string, maxRecycledNames+1)}
	putDecScratch(sc)
	if sc.names != nil {
		t.Fatalf("over-ceiling name memo kept: cap=%d, want nil", cap(sc.names))
	}
	sc2 := &decodeScratch{names: append(make([]string, 0, 8), "kept.example.")}
	putDecScratch(sc2)
	if len(sc2.names) != 0 || cap(sc2.names) != 8 {
		t.Fatalf("under-ceiling memo: got len=%d cap=%d, want len=0 cap=8", len(sc2.names), cap(sc2.names))
	}
	// The string header must have been zeroed, not just truncated.
	if s := sc2.names[:1][0]; s != "" {
		t.Fatalf("recycled memo still pins %q", s)
	}
}

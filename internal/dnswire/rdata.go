package dnswire

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"repro/internal/svcb"
)

// RR is a DNS resource record: owner name, type, class, TTL, and typed RDATA.
type RR struct {
	Name  string
	Type  Type
	Class Class
	TTL   uint32
	Data  RData
}

// String renders the record in zone-file presentation format.
func (rr RR) String() string {
	return fmt.Sprintf("%s\t%d\t%s\t%s\t%s", CanonicalName(rr.Name), rr.TTL, rr.Class, rr.Type, rr.Data.String())
}

// Clone returns a deep copy of the record.
func (rr RR) Clone() RR {
	out := rr
	out.Data = rr.Data.clone()
	return out
}

// RData is the typed RDATA portion of a resource record.
type RData interface {
	// pack appends the wire encoding of the RDATA to dst. cmap enables
	// owner-message name compression for the record types where RFC 1035
	// permits it; implementations for other types ignore it.
	pack(dst []byte, cmap *compressionMap) ([]byte, error)
	clone() RData
	String() string
}

// A (IPv4 address) record data.
type AData struct{ Addr netip.Addr }

func (d *AData) pack(dst []byte, _ *compressionMap) ([]byte, error) {
	if !d.Addr.Is4() {
		return nil, fmt.Errorf("dnswire: A record address %v is not IPv4", d.Addr)
	}
	b := d.Addr.As4()
	return append(dst, b[:]...), nil
}
func (d *AData) clone() RData   { c := *d; return &c }
func (d *AData) String() string { return d.Addr.String() }

// AAAA (IPv6 address) record data.
type AAAAData struct{ Addr netip.Addr }

func (d *AAAAData) pack(dst []byte, _ *compressionMap) ([]byte, error) {
	if !d.Addr.Is6() || d.Addr.Is4In6() {
		return nil, fmt.Errorf("dnswire: AAAA record address %v is not IPv6", d.Addr)
	}
	b := d.Addr.As16()
	return append(dst, b[:]...), nil
}
func (d *AAAAData) clone() RData   { c := *d; return &c }
func (d *AAAAData) String() string { return d.Addr.String() }

// CNAMEData aliases the owner name to Target.
type CNAMEData struct{ Target string }

func (d *CNAMEData) pack(dst []byte, cmap *compressionMap) ([]byte, error) {
	return packName(dst, d.Target, cmap)
}
func (d *CNAMEData) clone() RData   { c := *d; return &c }
func (d *CNAMEData) String() string { return CanonicalName(d.Target) }

// DNAMEData redirects the subtree under the owner to Target.
type DNAMEData struct{ Target string }

func (d *DNAMEData) pack(dst []byte, _ *compressionMap) ([]byte, error) {
	return packName(dst, d.Target, nil)
}
func (d *DNAMEData) clone() RData   { c := *d; return &c }
func (d *DNAMEData) String() string { return CanonicalName(d.Target) }

// NSData names an authoritative name server for the owner zone.
type NSData struct{ Host string }

func (d *NSData) pack(dst []byte, cmap *compressionMap) ([]byte, error) {
	return packName(dst, d.Host, cmap)
}
func (d *NSData) clone() RData   { c := *d; return &c }
func (d *NSData) String() string { return CanonicalName(d.Host) }

// PTRData maps an address back to a name.
type PTRData struct{ Target string }

func (d *PTRData) pack(dst []byte, cmap *compressionMap) ([]byte, error) {
	return packName(dst, d.Target, cmap)
}
func (d *PTRData) clone() RData   { c := *d; return &c }
func (d *PTRData) String() string { return CanonicalName(d.Target) }

// MXData is a mail exchanger record.
type MXData struct {
	Preference uint16
	Host       string
}

func (d *MXData) pack(dst []byte, cmap *compressionMap) ([]byte, error) {
	dst = binary.BigEndian.AppendUint16(dst, d.Preference)
	return packName(dst, d.Host, cmap)
}
func (d *MXData) clone() RData   { c := *d; return &c }
func (d *MXData) String() string { return fmt.Sprintf("%d %s", d.Preference, CanonicalName(d.Host)) }

// SOAData holds the start-of-authority parameters of a zone.
type SOAData struct {
	MName   string // primary name server
	RName   string // responsible mailbox
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

func (d *SOAData) pack(dst []byte, cmap *compressionMap) ([]byte, error) {
	var err error
	dst, err = packName(dst, d.MName, cmap)
	if err != nil {
		return nil, err
	}
	dst, err = packName(dst, d.RName, cmap)
	if err != nil {
		return nil, err
	}
	dst = binary.BigEndian.AppendUint32(dst, d.Serial)
	dst = binary.BigEndian.AppendUint32(dst, d.Refresh)
	dst = binary.BigEndian.AppendUint32(dst, d.Retry)
	dst = binary.BigEndian.AppendUint32(dst, d.Expire)
	dst = binary.BigEndian.AppendUint32(dst, d.Minimum)
	return dst, nil
}
func (d *SOAData) clone() RData { c := *d; return &c }
func (d *SOAData) String() string {
	return fmt.Sprintf("%s %s %d %d %d %d %d", CanonicalName(d.MName), CanonicalName(d.RName),
		d.Serial, d.Refresh, d.Retry, d.Expire, d.Minimum)
}

// TXTData carries one or more character-strings.
type TXTData struct{ Strings []string }

func (d *TXTData) pack(dst []byte, _ *compressionMap) ([]byte, error) {
	if len(d.Strings) == 0 {
		return nil, fmt.Errorf("dnswire: TXT record requires at least one string")
	}
	for _, s := range d.Strings {
		if len(s) > 255 {
			return nil, fmt.Errorf("dnswire: TXT string exceeds 255 bytes")
		}
		dst = append(dst, byte(len(s)))
		dst = append(dst, s...)
	}
	return dst, nil
}
func (d *TXTData) clone() RData {
	return &TXTData{Strings: append([]string(nil), d.Strings...)}
}
func (d *TXTData) String() string {
	parts := make([]string, len(d.Strings))
	for i, s := range d.Strings {
		parts[i] = fmt.Sprintf("%q", s)
	}
	return strings.Join(parts, " ")
}

// SRVData locates a service endpoint (RFC 2782).
type SRVData struct {
	Priority uint16
	Weight   uint16
	Port     uint16
	Target   string
}

func (d *SRVData) pack(dst []byte, _ *compressionMap) ([]byte, error) {
	dst = binary.BigEndian.AppendUint16(dst, d.Priority)
	dst = binary.BigEndian.AppendUint16(dst, d.Weight)
	dst = binary.BigEndian.AppendUint16(dst, d.Port)
	return packName(dst, d.Target, nil)
}
func (d *SRVData) clone() RData { c := *d; return &c }
func (d *SRVData) String() string {
	return fmt.Sprintf("%d %d %d %s", d.Priority, d.Weight, d.Port, CanonicalName(d.Target))
}

// SVCBData is the RDATA shared by SVCB and HTTPS records (RFC 9460).
// Priority zero means AliasMode; non-zero means ServiceMode.
type SVCBData struct {
	Priority uint16
	Target   string // "." means the owner name itself in ServiceMode
	Params   svcb.Params
}

// AliasMode reports whether the record is in AliasMode (priority 0).
func (d *SVCBData) AliasMode() bool { return d.Priority == 0 }

func (d *SVCBData) pack(dst []byte, _ *compressionMap) ([]byte, error) {
	dst = binary.BigEndian.AppendUint16(dst, d.Priority)
	var err error
	dst, err = packName(dst, d.Target, nil)
	if err != nil {
		return nil, err
	}
	if d.AliasMode() && len(d.Params) > 0 {
		return nil, fmt.Errorf("dnswire: AliasMode SVCB record must not carry SvcParams")
	}
	return d.Params.Pack(dst)
}
func (d *SVCBData) clone() RData {
	return &SVCBData{Priority: d.Priority, Target: d.Target, Params: d.Params.Clone()}
}
func (d *SVCBData) String() string {
	s := fmt.Sprintf("%d %s", d.Priority, CanonicalName(d.Target))
	if p := d.Params.String(); p != "" {
		s += " " + p
	}
	return s
}

// DSData is a delegation signer digest uploaded to the parent zone.
type DSData struct {
	KeyTag     uint16
	Algorithm  uint8
	DigestType uint8
	Digest     []byte
}

func (d *DSData) pack(dst []byte, _ *compressionMap) ([]byte, error) {
	dst = binary.BigEndian.AppendUint16(dst, d.KeyTag)
	dst = append(dst, d.Algorithm, d.DigestType)
	return append(dst, d.Digest...), nil
}
func (d *DSData) clone() RData {
	return &DSData{KeyTag: d.KeyTag, Algorithm: d.Algorithm, DigestType: d.DigestType,
		Digest: append([]byte(nil), d.Digest...)}
}
func (d *DSData) String() string {
	return fmt.Sprintf("%d %d %d %s", d.KeyTag, d.Algorithm, d.DigestType,
		strings.ToUpper(hex.EncodeToString(d.Digest)))
}

// DNSKEYData is a zone public key.
type DNSKEYData struct {
	Flags     uint16
	Protocol  uint8 // always 3
	Algorithm uint8
	PublicKey []byte
}

// IsKSK reports whether the key has the Secure Entry Point flag set.
func (d *DNSKEYData) IsKSK() bool { return d.Flags&DNSKEYFlagSEP != 0 }

func (d *DNSKEYData) pack(dst []byte, _ *compressionMap) ([]byte, error) {
	dst = binary.BigEndian.AppendUint16(dst, d.Flags)
	dst = append(dst, d.Protocol, d.Algorithm)
	return append(dst, d.PublicKey...), nil
}
func (d *DNSKEYData) clone() RData {
	return &DNSKEYData{Flags: d.Flags, Protocol: d.Protocol, Algorithm: d.Algorithm,
		PublicKey: append([]byte(nil), d.PublicKey...)}
}
func (d *DNSKEYData) String() string {
	return fmt.Sprintf("%d %d %d %s", d.Flags, d.Protocol, d.Algorithm,
		base64.StdEncoding.EncodeToString(d.PublicKey))
}

// KeyTag computes the RFC 4034 Appendix B key tag of the key.
func (d *DNSKEYData) KeyTag() uint16 {
	wire, err := d.pack(nil, nil)
	if err != nil {
		return 0
	}
	var acc uint32
	for i, b := range wire {
		if i&1 == 0 {
			acc += uint32(b) << 8
		} else {
			acc += uint32(b)
		}
	}
	acc += acc >> 16 & 0xffff
	return uint16(acc & 0xffff)
}

// RRSIGData is a DNSSEC signature over an RRset.
type RRSIGData struct {
	TypeCovered Type
	Algorithm   uint8
	Labels      uint8
	OriginalTTL uint32
	Expiration  uint32 // seconds since epoch
	Inception   uint32
	KeyTag      uint16
	SignerName  string
	Signature   []byte
}

func (d *RRSIGData) pack(dst []byte, _ *compressionMap) ([]byte, error) {
	dst = d.packPresig(dst)
	return append(dst, d.Signature...), nil
}

// packPresig packs all RRSIG fields except the signature itself; this is the
// prefix that is included in the data being signed (RFC 4034 §3.1.8.1).
func (d *RRSIGData) packPresig(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(d.TypeCovered))
	dst = append(dst, d.Algorithm, d.Labels)
	dst = binary.BigEndian.AppendUint32(dst, d.OriginalTTL)
	dst = binary.BigEndian.AppendUint32(dst, d.Expiration)
	dst = binary.BigEndian.AppendUint32(dst, d.Inception)
	dst = binary.BigEndian.AppendUint16(dst, d.KeyTag)
	dst, _ = packName(dst, d.SignerName, nil)
	return dst
}

// SignedPrefix returns the canonical pre-signature prefix used as input to
// the signing function.
func (d *RRSIGData) SignedPrefix() []byte { return d.packPresig(nil) }

func (d *RRSIGData) clone() RData {
	c := *d
	c.Signature = append([]byte(nil), d.Signature...)
	return &c
}
func (d *RRSIGData) String() string {
	return fmt.Sprintf("%s %d %d %d %d %d %d %s %s", d.TypeCovered, d.Algorithm, d.Labels,
		d.OriginalTTL, d.Expiration, d.Inception, d.KeyTag, CanonicalName(d.SignerName),
		base64.StdEncoding.EncodeToString(d.Signature))
}

// NSECData is an authenticated-denial record naming the next owner and the
// types present at this owner.
type NSECData struct {
	NextName string
	Types    []Type
}

func (d *NSECData) pack(dst []byte, _ *compressionMap) ([]byte, error) {
	var err error
	dst, err = packName(dst, d.NextName, nil)
	if err != nil {
		return nil, err
	}
	return packTypeBitmap(dst, d.Types)
}
func (d *NSECData) clone() RData {
	return &NSECData{NextName: d.NextName, Types: append([]Type(nil), d.Types...)}
}
func (d *NSECData) String() string {
	parts := []string{CanonicalName(d.NextName)}
	for _, t := range d.Types {
		parts = append(parts, t.String())
	}
	return strings.Join(parts, " ")
}

func packTypeBitmap(dst []byte, types []Type) ([]byte, error) {
	if len(types) == 0 {
		return dst, nil
	}
	sorted := append([]Type(nil), types...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	// Group by window (high byte).
	window := -1
	var bitmap [32]byte
	maxOctet := 0
	flush := func() {
		if window >= 0 {
			dst = append(dst, byte(window), byte(maxOctet))
			dst = append(dst, bitmap[:maxOctet]...)
		}
		bitmap = [32]byte{}
		maxOctet = 0
	}
	for _, t := range sorted {
		w := int(t >> 8)
		if w != window {
			flush()
			window = w
		}
		lo := int(t & 0xff)
		bitmap[lo/8] |= 0x80 >> (lo % 8)
		if lo/8+1 > maxOctet {
			maxOctet = lo/8 + 1
		}
	}
	flush()
	return dst, nil
}

func unpackTypeBitmap(b []byte) ([]Type, error) {
	return unpackTypeBitmapInto(nil, b)
}

// unpackTypeBitmapInto appends the decoded types to the (possibly recycled)
// types slice.
func unpackTypeBitmapInto(types []Type, b []byte) ([]Type, error) {
	for len(b) > 0 {
		if len(b) < 2 {
			return nil, fmt.Errorf("dnswire: truncated type bitmap")
		}
		window := int(b[0])
		octets := int(b[1])
		b = b[2:]
		if octets == 0 || octets > 32 || len(b) < octets {
			return nil, fmt.Errorf("dnswire: invalid type bitmap window length %d", octets)
		}
		for i := 0; i < octets; i++ {
			for bit := 0; bit < 8; bit++ {
				if b[i]&(0x80>>bit) != 0 {
					types = append(types, Type(window<<8|i*8+bit))
				}
			}
		}
		b = b[octets:]
	}
	return types, nil
}

// OPTData is the EDNS(0) pseudo-record RDATA (options only; the UDP size and
// extended flags live in the RR header fields, handled by Message).
type OPTData struct {
	Options []EDNSOption
}

// EDNSOption is a single EDNS option TLV.
type EDNSOption struct {
	Code uint16
	Data []byte
}

func (d *OPTData) pack(dst []byte, _ *compressionMap) ([]byte, error) {
	for _, o := range d.Options {
		dst = binary.BigEndian.AppendUint16(dst, o.Code)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(o.Data)))
		dst = append(dst, o.Data...)
	}
	return dst, nil
}
func (d *OPTData) clone() RData {
	out := &OPTData{Options: make([]EDNSOption, len(d.Options))}
	for i, o := range d.Options {
		out.Options[i] = EDNSOption{Code: o.Code, Data: append([]byte(nil), o.Data...)}
	}
	return out
}
func (d *OPTData) String() string { return fmt.Sprintf("OPT(%d options)", len(d.Options)) }

// RawData carries RDATA of record types the codec does not model (RFC 3597).
type RawData struct{ Bytes []byte }

func (d *RawData) pack(dst []byte, _ *compressionMap) ([]byte, error) {
	return append(dst, d.Bytes...), nil
}
func (d *RawData) clone() RData { return &RawData{Bytes: append([]byte(nil), d.Bytes...)} }
func (d *RawData) String() string {
	return fmt.Sprintf("\\# %d %s", len(d.Bytes), hex.EncodeToString(d.Bytes))
}

// reuseString returns prev when it equals the bytes of b (no allocation),
// otherwise mints a new string.
func reuseString(prev string, b []byte) string {
	if prev == string(b) {
		return prev
	}
	return string(b)
}

// unpackRDataInto decodes the RDATA of the given type from
// msg[off:off+rdlen]. msg is the full message so compressed names can be
// followed. When prev (the RDATA occupying this slot in a recycled Message)
// has the matching concrete type, its value is updated in place — byte
// slices, string sets, and name strings are reused so re-decoding an
// unchanged record allocates nothing.
func unpackRDataInto(t Type, msg []byte, off, rdlen int, prev RData, sc *decodeScratch) (RData, error) {
	end := off + rdlen
	if end > len(msg) {
		return nil, fmt.Errorf("dnswire: RDATA extends past message end")
	}
	rd := msg[off:end]
	switch t {
	case TypeA:
		if rdlen != 4 {
			return nil, fmt.Errorf("dnswire: A RDATA must be 4 bytes, got %d", rdlen)
		}
		addr, _ := netip.AddrFromSlice(rd)
		if d, ok := prev.(*AData); ok {
			d.Addr = addr
			return d, nil
		}
		return &AData{Addr: addr}, nil
	case TypeAAAA:
		if rdlen != 16 {
			return nil, fmt.Errorf("dnswire: AAAA RDATA must be 16 bytes, got %d", rdlen)
		}
		addr, _ := netip.AddrFromSlice(rd)
		if d, ok := prev.(*AAAAData); ok {
			d.Addr = addr
			return d, nil
		}
		return &AAAAData{Addr: addr}, nil
	case TypeCNAME, TypeNS, TypePTR, TypeDNAME:
		var prevName string
		switch d := prev.(type) {
		case *CNAMEData:
			prevName = d.Target
		case *NSData:
			prevName = d.Host
		case *PTRData:
			prevName = d.Target
		case *DNAMEData:
			prevName = d.Target
		}
		name, n, err := unpackNameCached(sc, msg, off, prevName)
		if err != nil {
			return nil, err
		}
		if n != end {
			return nil, fmt.Errorf("dnswire: %s RDATA has %d trailing bytes", t, end-n)
		}
		switch t {
		case TypeCNAME:
			if d, ok := prev.(*CNAMEData); ok {
				d.Target = name
				return d, nil
			}
			return &CNAMEData{Target: name}, nil
		case TypeNS:
			if d, ok := prev.(*NSData); ok {
				d.Host = name
				return d, nil
			}
			return &NSData{Host: name}, nil
		case TypePTR:
			if d, ok := prev.(*PTRData); ok {
				d.Target = name
				return d, nil
			}
			return &PTRData{Target: name}, nil
		default:
			if d, ok := prev.(*DNAMEData); ok {
				d.Target = name
				return d, nil
			}
			return &DNAMEData{Target: name}, nil
		}
	case TypeMX:
		if rdlen < 3 {
			return nil, fmt.Errorf("dnswire: MX RDATA too short")
		}
		d, ok := prev.(*MXData)
		if !ok {
			d = &MXData{}
		}
		pref := binary.BigEndian.Uint16(rd)
		host, n, err := unpackNameCached(sc, msg, off+2, d.Host)
		if err != nil {
			return nil, err
		}
		if n != end {
			return nil, fmt.Errorf("dnswire: MX RDATA has trailing bytes")
		}
		d.Preference, d.Host = pref, host
		return d, nil
	case TypeSOA:
		d, ok := prev.(*SOAData)
		if !ok {
			d = &SOAData{}
		}
		mname, n, err := unpackNameCached(sc, msg, off, d.MName)
		if err != nil {
			return nil, err
		}
		rname, n, err := unpackNameCached(sc, msg, n, d.RName)
		if err != nil {
			return nil, err
		}
		if n > end || end-n != 20 {
			return nil, fmt.Errorf("dnswire: SOA RDATA fixed fields must be 20 bytes")
		}
		f := msg[n:end]
		d.MName, d.RName = mname, rname
		d.Serial = binary.BigEndian.Uint32(f[0:])
		d.Refresh = binary.BigEndian.Uint32(f[4:])
		d.Retry = binary.BigEndian.Uint32(f[8:])
		d.Expire = binary.BigEndian.Uint32(f[12:])
		d.Minimum = binary.BigEndian.Uint32(f[16:])
		return d, nil
	case TypeTXT:
		d, ok := prev.(*TXTData)
		if !ok {
			d = &TXTData{}
		}
		prevStrs := d.Strings
		strs := d.Strings[:0]
		b := rd
		for len(b) > 0 {
			n := int(b[0])
			b = b[1:]
			if len(b) < n {
				return nil, fmt.Errorf("dnswire: truncated TXT string")
			}
			var old string
			if len(strs) < len(prevStrs) {
				old = prevStrs[len(strs)]
			}
			strs = append(strs, reuseString(old, b[:n]))
			b = b[n:]
		}
		if len(strs) == 0 {
			return nil, fmt.Errorf("dnswire: empty TXT RDATA")
		}
		d.Strings = strs
		return d, nil
	case TypeSRV:
		if rdlen < 7 {
			return nil, fmt.Errorf("dnswire: SRV RDATA too short")
		}
		d, ok := prev.(*SRVData)
		if !ok {
			d = &SRVData{}
		}
		target, n, err := unpackNameCached(sc, msg, off+6, d.Target)
		if err != nil {
			return nil, err
		}
		if n != end {
			return nil, fmt.Errorf("dnswire: SRV RDATA has trailing bytes")
		}
		d.Priority = binary.BigEndian.Uint16(rd)
		d.Weight = binary.BigEndian.Uint16(rd[2:])
		d.Port = binary.BigEndian.Uint16(rd[4:])
		d.Target = target
		return d, nil
	case TypeSVCB, TypeHTTPS:
		if rdlen < 3 {
			return nil, fmt.Errorf("dnswire: SVCB RDATA too short")
		}
		d, ok := prev.(*SVCBData)
		if !ok {
			d = &SVCBData{}
		}
		prio := binary.BigEndian.Uint16(rd)
		target, n, err := unpackNameCached(sc, msg, off+2, d.Target)
		if err != nil {
			return nil, err
		}
		if n > end {
			return nil, fmt.Errorf("dnswire: SVCB target name overruns RDATA")
		}
		params, err := svcb.UnpackParamsInto(d.Params, msg[n:end])
		if err != nil {
			return nil, err
		}
		d.Priority, d.Target, d.Params = prio, target, params
		return d, nil
	case TypeDS:
		if rdlen < 5 {
			return nil, fmt.Errorf("dnswire: DS RDATA too short")
		}
		d, ok := prev.(*DSData)
		if !ok {
			d = &DSData{}
		}
		d.KeyTag = binary.BigEndian.Uint16(rd)
		d.Algorithm = rd[2]
		d.DigestType = rd[3]
		d.Digest = append(d.Digest[:0], rd[4:]...)
		return d, nil
	case TypeDNSKEY:
		if rdlen < 5 {
			return nil, fmt.Errorf("dnswire: DNSKEY RDATA too short")
		}
		d, ok := prev.(*DNSKEYData)
		if !ok {
			d = &DNSKEYData{}
		}
		d.Flags = binary.BigEndian.Uint16(rd)
		d.Protocol = rd[2]
		d.Algorithm = rd[3]
		d.PublicKey = append(d.PublicKey[:0], rd[4:]...)
		return d, nil
	case TypeRRSIG:
		if rdlen < 19 {
			return nil, fmt.Errorf("dnswire: RRSIG RDATA too short")
		}
		d, ok := prev.(*RRSIGData)
		if !ok {
			d = &RRSIGData{}
		}
		signer, n, err := unpackNameCached(sc, msg, off+18, d.SignerName)
		if err != nil {
			return nil, err
		}
		if n > end {
			return nil, fmt.Errorf("dnswire: RRSIG signer name overruns RDATA")
		}
		d.TypeCovered = Type(binary.BigEndian.Uint16(rd))
		d.Algorithm = rd[2]
		d.Labels = rd[3]
		d.OriginalTTL = binary.BigEndian.Uint32(rd[4:])
		d.Expiration = binary.BigEndian.Uint32(rd[8:])
		d.Inception = binary.BigEndian.Uint32(rd[12:])
		d.KeyTag = binary.BigEndian.Uint16(rd[16:])
		d.SignerName = signer
		d.Signature = append(d.Signature[:0], msg[n:end]...)
		return d, nil
	case TypeNSEC:
		d, ok := prev.(*NSECData)
		if !ok {
			d = &NSECData{}
		}
		next, n, err := unpackNameCached(sc, msg, off, d.NextName)
		if err != nil {
			return nil, err
		}
		if n > end {
			return nil, fmt.Errorf("dnswire: NSEC next name overruns RDATA")
		}
		types, err := unpackTypeBitmapInto(d.Types[:0], msg[n:end])
		if err != nil {
			return nil, err
		}
		d.NextName, d.Types = next, types
		return d, nil
	case TypeOPT:
		d, ok := prev.(*OPTData)
		if !ok {
			d = &OPTData{}
		}
		prevOpts := d.Options
		opts := d.Options[:0]
		b := rd
		for len(b) > 0 {
			if len(b) < 4 {
				return nil, fmt.Errorf("dnswire: truncated EDNS option")
			}
			code := binary.BigEndian.Uint16(b)
			olen := int(binary.BigEndian.Uint16(b[2:]))
			b = b[4:]
			if len(b) < olen {
				return nil, fmt.Errorf("dnswire: truncated EDNS option data")
			}
			var old []byte
			if len(opts) < len(prevOpts) {
				old = prevOpts[len(opts)].Data[:0]
			}
			opts = append(opts, EDNSOption{Code: code, Data: append(old, b[:olen]...)})
			b = b[olen:]
		}
		d.Options = opts
		return d, nil
	default:
		d, ok := prev.(*RawData)
		if !ok {
			d = &RawData{}
		}
		d.Bytes = append(d.Bytes[:0], rd...)
		return d, nil
	}
}

package manager

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"repro/internal/dnswire"
	"repro/internal/ech"
	"repro/internal/svcb"
	"repro/internal/zone"
)

func testZone() *zone.Zone {
	z := zone.New("a.com")
	z.SetSOA("ns1.a.com.", "hostmaster.a.com.", 1, 300)
	z.Add(dnswire.RR{Name: "a.com.", Type: dnswire.TypeA, Class: dnswire.ClassINET, TTL: 300,
		Data: &dnswire.AData{Addr: netip.MustParseAddr("192.0.2.1")}})
	z.Add(dnswire.RR{Name: "a.com.", Type: dnswire.TypeAAAA, Class: dnswire.ClassINET, TTL: 300,
		Data: &dnswire.AAAAData{Addr: netip.MustParseAddr("2001:db8::1")}})
	return z
}

func addHTTPS(z *zone.Zone, prio uint16, target string, build func(ps *svcb.Params)) {
	var ps svcb.Params
	if build != nil {
		build(&ps)
	}
	z.Add(dnswire.RR{Name: "a.com.", Type: dnswire.TypeHTTPS, Class: dnswire.ClassINET, TTL: 300,
		Data: &dnswire.SVCBData{Priority: prio, Target: target, Params: ps}})
}

func findCode(fs []Finding, code string) *Finding {
	for i := range fs {
		if fs[i].Code == code {
			return &fs[i]
		}
	}
	return nil
}

func TestAuditClean(t *testing.T) {
	z := testZone()
	addHTTPS(z, 1, ".", func(ps *svcb.Params) {
		_ = ps.SetALPN([]string{"h2", "h3"})
		_ = ps.SetIPv4Hints([]netip.Addr{netip.MustParseAddr("192.0.2.1")})
		_ = ps.SetIPv6Hints([]netip.Addr{netip.MustParseAddr("2001:db8::1")})
	})
	a := &Auditor{Zone: z, Now: time.Unix(0, 0)}
	for _, f := range a.Audit("a.com.") {
		if f.Severity >= Warning {
			t.Errorf("clean config flagged: %v", f)
		}
	}
}

func TestAuditHintMismatch(t *testing.T) {
	z := testZone()
	addHTTPS(z, 1, ".", func(ps *svcb.Params) {
		_ = ps.SetALPN([]string{"h2"})
		_ = ps.SetIPv4Hints([]netip.Addr{netip.MustParseAddr("198.51.100.9")}) // stale
	})
	a := &Auditor{Zone: z, Now: time.Unix(0, 0)}
	f := findCode(a.Audit("a.com."), CodeHintMismatchV4)
	if f == nil || f.Severity != Critical {
		t.Fatalf("mismatch not flagged critical: %v", f)
	}
}

func TestAuditAliasPathologies(t *testing.T) {
	z := testZone()
	addHTTPS(z, 0, ".", nil)
	a := &Auditor{Zone: z, Now: time.Unix(0, 0)}
	if findCode(a.Audit("a.com."), CodeAliasSelfTarget) == nil {
		t.Error("alias self-target not flagged")
	}
	// AliasMode with params (forbidden): construct directly.
	z2 := testZone()
	var ps svcb.Params
	ps.SetPort(443)
	z2.Add(dnswire.RR{Name: "a.com.", Type: dnswire.TypeHTTPS, Class: dnswire.ClassINET,
		TTL: 300, Data: &dnswire.SVCBData{Priority: 0, Target: "b.com.", Params: ps}})
	a2 := &Auditor{Zone: z2, Now: time.Unix(0, 0)}
	if f := findCode(a2.Audit("a.com."), CodeAliasWithParams); f == nil || f.Severity != Critical {
		t.Error("alias-with-params not flagged critical")
	}
}

func TestAuditServiceNoParamsAndMixed(t *testing.T) {
	z := testZone()
	addHTTPS(z, 1, ".", nil)
	addHTTPS(z, 0, "b.com.", nil)
	a := &Auditor{Zone: z, Now: time.Unix(0, 0)}
	fs := a.Audit("a.com.")
	if findCode(fs, CodeServiceNoParams) == nil {
		t.Error("empty ServiceMode not noted")
	}
	if findCode(fs, CodeMixedAliasSvc) == nil {
		t.Error("mixed alias/service not flagged")
	}
}

func TestAuditMandatoryViolation(t *testing.T) {
	z := testZone()
	addHTTPS(z, 1, ".", func(ps *svcb.Params) {
		_ = ps.SetALPN([]string{"h2"})
		_ = ps.SetMandatory([]svcb.ParamKey{svcb.KeyPort}) // port absent
	})
	a := &Auditor{Zone: z, Now: time.Unix(0, 0)}
	if f := findCode(a.Audit("a.com."), CodeMandatoryBroken); f == nil || f.Severity != Critical {
		t.Error("mandatory violation not flagged")
	}
}

func TestAuditDraftALPN(t *testing.T) {
	z := testZone()
	addHTTPS(z, 1, ".", func(ps *svcb.Params) { _ = ps.SetALPN([]string{"h3-29", "h3-27"}) })
	a := &Auditor{Zone: z, Now: time.Unix(0, 0)}
	if findCode(a.Audit("a.com."), CodeDraftALPN) == nil {
		t.Error("draft alpn not flagged")
	}
}

func TestAuditECH(t *testing.T) {
	start := time.Unix(0, 0)
	km, err := ech.NewKeyManager(rand.New(rand.NewSource(1)), "cover.a.com",
		time.Hour, 2*time.Hour, start)
	if err != nil {
		t.Fatal(err)
	}
	// Malformed ECH → critical (the Chrome/Edge hard-fail class).
	z := testZone()
	addHTTPS(z, 1, ".", func(ps *svcb.Params) {
		_ = ps.SetALPN([]string{"h2"})
		ps.SetECH([]byte{0xba, 0xad})
	})
	a := &Auditor{Zone: z, ECHKeys: km, Now: start}
	if f := findCode(a.Audit("a.com."), CodeECHUnparseable); f == nil || f.Severity != Critical {
		t.Error("malformed ECH not flagged")
	}
	// Stale key past retention → critical.
	z2 := testZone()
	oldList := km.ConfigList(start)
	addHTTPS(z2, 1, ".", func(ps *svcb.Params) {
		_ = ps.SetALPN([]string{"h2"})
		ps.SetECH(oldList)
	})
	late := start.Add(6 * time.Hour) // far past the 2h retention
	a2 := &Auditor{Zone: z2, ECHKeys: km, Now: late}
	if findCode(a2.Audit("a.com."), CodeECHStaleKey) == nil {
		t.Error("stale ECH key not flagged")
	}
	// Fresh key → clean.
	z3 := testZone()
	addHTTPS(z3, 1, ".", func(ps *svcb.Params) {
		_ = ps.SetALPN([]string{"h2"})
		ps.SetECH(km.ConfigList(late))
	})
	a3 := &Auditor{Zone: z3, ECHKeys: km, Now: late}
	if f := findCode(a3.Audit("a.com."), CodeECHStaleKey); f != nil {
		t.Errorf("fresh ECH key flagged: %v", f)
	}
}

func TestSyncHintsRepairsMismatch(t *testing.T) {
	z := testZone()
	addHTTPS(z, 1, ".", func(ps *svcb.Params) {
		_ = ps.SetALPN([]string{"h2"})
		_ = ps.SetIPv4Hints([]netip.Addr{netip.MustParseAddr("198.51.100.9")})
	})
	m := &Manager{Zone: z, TTL: 300}
	changed, err := m.SyncHints("a.com.")
	if err != nil || !changed {
		t.Fatalf("SyncHints = %v, %v", changed, err)
	}
	a := &Auditor{Zone: z, Now: time.Unix(0, 0)}
	if f := findCode(a.Audit("a.com."), CodeHintMismatchV4); f != nil {
		t.Errorf("mismatch persists after sync: %v", f)
	}
	// Hints now equal the A record.
	rrs, _, _ := z.Lookup("a.com.", dnswire.TypeHTTPS)
	hints, ok := rrs[0].Data.(*dnswire.SVCBData).Params.IPv4Hints()
	if !ok || hints[0] != netip.MustParseAddr("192.0.2.1") {
		t.Errorf("hints = %v", hints)
	}
	// Idempotent second run.
	changed, err = m.SyncHints("a.com.")
	if err != nil {
		t.Fatal(err)
	}
	_ = changed // re-setting identical hints may or may not report change
}

func TestSyncHintsDropsOrphanedHints(t *testing.T) {
	z := zone.New("a.com")
	z.SetSOA("ns1.a.com.", "h.a.com.", 1, 300)
	// No A record at all, but a hint published.
	addHTTPS(z, 1, ".", func(ps *svcb.Params) {
		_ = ps.SetALPN([]string{"h2"})
		_ = ps.SetIPv4Hints([]netip.Addr{netip.MustParseAddr("198.51.100.9")})
	})
	m := &Manager{Zone: z, TTL: 300}
	if _, err := m.SyncHints("a.com."); err != nil {
		t.Fatal(err)
	}
	rrs, _, _ := z.Lookup("a.com.", dnswire.TypeHTTPS)
	if _, ok := rrs[0].Data.(*dnswire.SVCBData).Params.IPv4Hints(); ok {
		t.Error("orphaned hint not removed")
	}
}

func TestECHPolicy(t *testing.T) {
	p := ECHPolicy{RecordTTL: 300 * time.Second, Margin: 60 * time.Second}
	if p.SafeRetention() != 360*time.Second {
		t.Errorf("SafeRetention = %v", p.SafeRetention())
	}
	// Safe configuration: no findings.
	if fs := p.CheckRotation(76*time.Minute, 3*time.Hour); len(fs) != 0 {
		t.Errorf("safe rotation flagged: %v", fs)
	}
	// Retention shorter than TTL: critical.
	fs := p.CheckRotation(76*time.Minute, 100*time.Second)
	if f := findCode(fs, CodeECHNoRetention); f == nil || f.Severity != Critical {
		t.Errorf("unsafe retention not flagged: %v", fs)
	}
	// Rotation faster than TTL: warning.
	fs = p.CheckRotation(60*time.Second, time.Hour)
	if len(fs) == 0 {
		t.Error("hyper-fast rotation not flagged")
	}
}

func TestPublishECH(t *testing.T) {
	start := time.Unix(0, 0)
	km, err := ech.NewKeyManager(rand.New(rand.NewSource(2)), "cover.a.com",
		time.Hour, 2*time.Hour, start)
	if err != nil {
		t.Fatal(err)
	}
	z := testZone()
	addHTTPS(z, 1, ".", func(ps *svcb.Params) { _ = ps.SetALPN([]string{"h2"}) })
	m := &Manager{Zone: z, TTL: 300}
	if err := m.PublishECH("a.com.", km, start); err != nil {
		t.Fatal(err)
	}
	rrs, _, _ := z.Lookup("a.com.", dnswire.TypeHTTPS)
	raw, ok := rrs[0].Data.(*dnswire.SVCBData).Params.ECH()
	if !ok {
		t.Fatal("ECH not published")
	}
	configs, err := ech.UnmarshalList(raw)
	if err != nil {
		t.Fatal(err)
	}
	if configs[0].PublicName != "cover.a.com" {
		t.Errorf("public name = %q", configs[0].PublicName)
	}
	// Audit agrees the key is valid.
	a := &Auditor{Zone: z, ECHKeys: km, Now: start}
	if f := findCode(a.Audit("a.com."), CodeECHStaleKey); f != nil {
		t.Errorf("fresh publication flagged: %v", f)
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Severity: Critical, Code: CodeHintMismatchV4, Name: "a.com.", Message: "x"}
	if f.String() == "" || Critical.String() != "CRITICAL" || Warning.String() != "WARNING" || Info.String() != "INFO" {
		t.Error("string rendering broken")
	}
}

// Package manager implements the automation tool the paper's Discussion
// (§7) calls for: ACME/Certbot-style management of DNS HTTPS records. It
// audits a domain's published records for the misconfiguration classes the
// measurements uncovered — IP hints diverging from A/AAAA records,
// AliasMode self-targets, empty ServiceMode parameter lists, mandatory-key
// violations, unsafe ECH rotation relative to DNS TTLs — and can reconcile
// the zone automatically (hint synchronisation and cache-safe ECH
// publication with old-key retention).
package manager

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/dnswire"
	"repro/internal/ech"
	"repro/internal/svcb"
	"repro/internal/zone"
)

// Severity grades an audit finding.
type Severity int

// Severities.
const (
	Info Severity = iota
	Warning
	// Critical findings can break client connections (the §4.3.5 and
	// §5.3 failure modes).
	Critical
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case Critical:
		return "CRITICAL"
	case Warning:
		return "WARNING"
	default:
		return "INFO"
	}
}

// Finding codes.
const (
	CodeHintMismatchV4  = "hint-mismatch-v4"
	CodeHintMismatchV6  = "hint-mismatch-v6"
	CodeAliasSelfTarget = "alias-self-target"
	CodeAliasWithParams = "alias-with-params"
	CodeServiceNoParams = "service-no-params"
	CodeMandatoryBroken = "mandatory-violation"
	CodeECHUnparseable  = "ech-unparseable"
	CodeECHNoRetention  = "ech-rotation-unsafe"
	CodeECHStaleKey     = "ech-stale-key"
	CodeNoHTTPSRecord   = "no-https-record"
	CodeMixedAliasSvc   = "mixed-alias-service"
	CodeDraftALPN       = "draft-alpn"
)

// Finding is one audit result.
type Finding struct {
	Severity Severity
	Code     string
	Name     string // owner name the finding applies to
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("[%s] %s %s: %s", f.Severity, f.Code, f.Name, f.Message)
}

// Auditor inspects the HTTPS records of names in a zone.
type Auditor struct {
	Zone *zone.Zone
	// ECHKeys, when set, lets the auditor verify published ECH configs
	// against the currently valid server keys.
	ECHKeys *ech.KeyManager
	// Now supplies the audit time (ECH validity).
	Now time.Time
}

// Audit runs every check against one owner name.
func (a *Auditor) Audit(name string) []Finding {
	name = dnswire.CanonicalName(name)
	var findings []Finding
	add := func(sev Severity, code, msg string) {
		findings = append(findings, Finding{Severity: sev, Code: code, Name: name, Message: msg})
	}

	httpsRRs, _, ok := a.Zone.Lookup(name, dnswire.TypeHTTPS)
	if !ok || len(httpsRRs) == 0 {
		add(Info, CodeNoHTTPSRecord, "no HTTPS records published")
		return findings
	}

	aAddrs := lookupAddrs(a.Zone, name, dnswire.TypeA)
	aaaaAddrs := lookupAddrs(a.Zone, name, dnswire.TypeAAAA)

	hasAlias, hasService := false, false
	for _, rr := range httpsRRs {
		data, okData := rr.Data.(*dnswire.SVCBData)
		if !okData {
			continue
		}
		if data.AliasMode() {
			hasAlias = true
			a.auditAlias(name, data, add)
			continue
		}
		hasService = true
		a.auditService(name, data, aAddrs, aaaaAddrs, add)
	}
	if hasAlias && hasService {
		add(Warning, CodeMixedAliasSvc, "AliasMode and ServiceMode records coexist; clients disagree on precedence")
	}
	return findings
}

func (a *Auditor) auditAlias(name string, data *dnswire.SVCBData, add func(Severity, string, string)) {
	target := dnswire.CanonicalName(data.Target)
	if data.Target == "." || target == name {
		// §E.1: 19 domains alias to themselves, which provides no alias.
		add(Warning, CodeAliasSelfTarget, "AliasMode record targets the owner itself")
	}
	if len(data.Params) > 0 {
		add(Critical, CodeAliasWithParams, "AliasMode record carries SvcParams (forbidden by RFC 9460)")
	}
}

func (a *Auditor) auditService(name string, data *dnswire.SVCBData, aAddrs, aaaaAddrs []netip.Addr, add func(Severity, string, string)) {
	if len(data.Params) == 0 {
		// §E.1: 232 domains publish ServiceMode records that convey no
		// information beyond "HTTPS exists".
		add(Info, CodeServiceNoParams, "ServiceMode record has no SvcParams")
	}
	if err := data.Params.Validate(); err != nil {
		add(Critical, CodeMandatoryBroken, "SvcParams invalid: "+err.Error())
	}

	// IP hints must track the address records (§4.3.5): stale hints make
	// the domain unreachable for hint-preferring clients when the old
	// address dies.
	if hints, ok := data.Params.IPv4Hints(); ok && data.Target == "." {
		if !sameAddrSet(hints, aAddrs) {
			add(Critical, CodeHintMismatchV4,
				fmt.Sprintf("ipv4hint %v diverges from A records %v", hints, aAddrs))
		}
	}
	if hints, ok := data.Params.IPv6Hints(); ok && data.Target == "." {
		if !sameAddrSet(hints, aaaaAddrs) {
			add(Critical, CodeHintMismatchV6,
				fmt.Sprintf("ipv6hint %v diverges from AAAA records %v", hints, aaaaAddrs))
		}
	}

	// Obsolete draft ALPN identifiers (§E.2: h3-27/h3-29 stragglers).
	if alpn, ok := data.Params.ALPN(); ok {
		for _, p := range alpn {
			if p == "h3-29" || p == "h3-27" {
				add(Warning, CodeDraftALPN, "obsolete draft protocol advertised: "+p)
			}
		}
	}

	// ECH checks.
	if raw, ok := data.Params.ECH(); ok {
		configs, err := ech.UnmarshalList(raw)
		if err != nil {
			// §5.3: Chrome/Edge hard-fail on malformed ECH configs.
			add(Critical, CodeECHUnparseable, "published ECH config list does not parse: "+err.Error())
			return
		}
		if a.ECHKeys != nil {
			cfg, err := ech.SelectConfig(configs)
			if err != nil {
				add(Critical, CodeECHUnparseable, "no supported config in ECH list")
				return
			}
			current := a.ECHKeys.CurrentConfig(a.Now)
			if cfg.ConfigID != current.ConfigID && !a.serverStillAccepts(cfg) {
				add(Critical, CodeECHStaleKey,
					"published ECH key is no longer accepted by the server (cached copies will need retry)")
			}
		}
	}
}

// serverStillAccepts probes whether the key manager can still decrypt under
// the published config (i.e. the config is within the retention window).
func (a *Auditor) serverStillAccepts(cfg ech.Config) bool {
	enc, ct, err := ech.Seal(nil, cfg, nil, []byte("probe"))
	if err != nil {
		return false
	}
	_, err = a.ECHKeys.Open(a.Now, cfg.ConfigID, enc, nil, ct)
	return err == nil
}

func lookupAddrs(z *zone.Zone, name string, t dnswire.Type) []netip.Addr {
	rrs, _, _ := z.Lookup(name, t)
	var out []netip.Addr
	for _, rr := range rrs {
		switch d := rr.Data.(type) {
		case *dnswire.AData:
			out = append(out, d.Addr)
		case *dnswire.AAAAData:
			out = append(out, d.Addr)
		}
	}
	return out
}

func sameAddrSet(a, b []netip.Addr) bool {
	if len(a) != len(b) {
		return false
	}
	set := map[netip.Addr]bool{}
	for _, x := range a {
		set[x] = true
	}
	for _, y := range b {
		if !set[y] {
			return false
		}
	}
	return true
}

// Manager applies automatic remediations to a zone, the way Certbot renews
// certificates.
type Manager struct {
	Zone *zone.Zone
	// TTL used for records the manager writes.
	TTL uint32
}

// SyncHints rewrites the ipv4hint/ipv6hint parameters of every ServiceMode
// HTTPS record at name to match the current A/AAAA records, eliminating the
// §4.3.5 divergence class. It returns whether anything changed.
func (m *Manager) SyncHints(name string) (bool, error) {
	name = dnswire.CanonicalName(name)
	httpsRRs, _, ok := m.Zone.Lookup(name, dnswire.TypeHTTPS)
	if !ok {
		return false, fmt.Errorf("manager: no HTTPS records at %s", name)
	}
	aAddrs := lookupAddrs(m.Zone, name, dnswire.TypeA)
	aaaaAddrs := lookupAddrs(m.Zone, name, dnswire.TypeAAAA)
	changed := false
	m.Zone.RemoveRRset(name, dnswire.TypeHTTPS)
	for _, rr := range httpsRRs {
		data, okData := rr.Data.(*dnswire.SVCBData)
		if okData && !data.AliasMode() && data.Target == "." {
			if _, had := data.Params.IPv4Hints(); had {
				if len(aAddrs) > 0 {
					if err := data.Params.SetIPv4Hints(aAddrs); err == nil {
						changed = true
					}
				} else {
					data.Params.Delete(svcb.KeyIPv4Hint)
					changed = true
				}
			}
			if _, had := data.Params.IPv6Hints(); had {
				if len(aaaaAddrs) > 0 {
					if err := data.Params.SetIPv6Hints(aaaaAddrs); err == nil {
						changed = true
					}
				} else {
					data.Params.Delete(svcb.KeyIPv6Hint)
					changed = true
				}
			}
		}
		m.Zone.Add(rr)
	}
	return changed, nil
}

// ECHPolicy captures the §4.4.2 cache-safety rule for key rotation:
// superseded keys must keep decrypting for at least the record TTL (plus
// a safety margin), or clients holding cached records break unless retry
// is implemented end to end.
type ECHPolicy struct {
	RecordTTL time.Duration
	Margin    time.Duration
}

// SafeRetention returns the minimum retention for superseded ECH keys.
func (p ECHPolicy) SafeRetention() time.Duration {
	return p.RecordTTL + p.Margin
}

// CheckRotation verifies a key manager's configuration against the policy:
// the rotation period must exceed zero and the retention window must cover
// cached records.
func (p ECHPolicy) CheckRotation(rotationPeriod, retention time.Duration) []Finding {
	var findings []Finding
	if retention < p.SafeRetention() {
		findings = append(findings, Finding{
			Severity: Critical,
			Code:     CodeECHNoRetention,
			Name:     "(ech-policy)",
			Message: fmt.Sprintf("retention %v < TTL+margin %v: cached configs outlive the keys (clients will hit the retry path or fail)",
				retention, p.SafeRetention()),
		})
	}
	if rotationPeriod < p.RecordTTL {
		findings = append(findings, Finding{
			Severity: Warning,
			Code:     CodeECHNoRetention,
			Name:     "(ech-policy)",
			Message: fmt.Sprintf("rotation period %v shorter than record TTL %v: most cached records are stale",
				rotationPeriod, p.RecordTTL),
		})
	}
	return findings
}

// PublishECH writes the key manager's current config list into every
// ServiceMode HTTPS record at name, after checking the rotation policy.
func (m *Manager) PublishECH(name string, km *ech.KeyManager, now time.Time) error {
	name = dnswire.CanonicalName(name)
	httpsRRs, _, ok := m.Zone.Lookup(name, dnswire.TypeHTTPS)
	if !ok {
		return fmt.Errorf("manager: no HTTPS records at %s", name)
	}
	list := km.ConfigList(now)
	m.Zone.RemoveRRset(name, dnswire.TypeHTTPS)
	for _, rr := range httpsRRs {
		if data, okData := rr.Data.(*dnswire.SVCBData); okData && !data.AliasMode() {
			data.Params.SetECH(list)
		}
		m.Zone.Add(rr)
	}
	return nil
}

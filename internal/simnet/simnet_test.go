package simnet

import (
	"errors"
	"net/netip"
	"testing"
	"time"

	"repro/internal/dnswire"
)

func TestClock(t *testing.T) {
	start := time.Date(2023, 5, 8, 0, 0, 0, 0, time.UTC)
	c := NewClock(start)
	if !c.Now().Equal(start) {
		t.Error("initial time wrong")
	}
	c.Advance(time.Hour)
	if !c.Now().Equal(start.Add(time.Hour)) {
		t.Error("Advance wrong")
	}
	c.Set(start)
	if !c.Now().Equal(start) {
		t.Error("Set wrong")
	}
}

type echoHandler struct{}

func (echoHandler) HandleDNS(q *dnswire.Message) *dnswire.Message {
	r := q.Reply()
	r.RCode = dnswire.RCodeNoError
	return r
}

func TestQueryDNSRouting(t *testing.T) {
	n := New(NewClock(time.Unix(0, 0)))
	addr := netip.MustParseAddr("10.0.0.1")
	n.RegisterDNS(addr, echoHandler{})

	q := dnswire.NewQuery(1, "x.com", dnswire.TypeA, false)
	resp, err := n.QueryDNS(addr, q)
	if err != nil || resp.ID != 1 {
		t.Fatalf("QueryDNS: %v %v", resp, err)
	}
	if n.QueryCount() != 1 {
		t.Errorf("QueryCount = %d", n.QueryCount())
	}
	// Unknown address.
	if _, err := n.QueryDNS(netip.MustParseAddr("10.0.0.2"), q); !errors.Is(err, ErrNoService) {
		t.Errorf("err = %v", err)
	}
	// Down address.
	n.SetAddrDown(addr, true)
	if _, err := n.QueryDNS(addr, q); !errors.Is(err, ErrUnreachable) {
		t.Errorf("down addr err = %v", err)
	}
	n.SetAddrDown(addr, false)
	if _, err := n.QueryDNS(addr, q); err != nil {
		t.Errorf("recovered addr err = %v", err)
	}
	// Unregister.
	n.UnregisterDNS(addr)
	if _, err := n.QueryDNS(addr, q); !errors.Is(err, ErrNoService) {
		t.Errorf("unregistered err = %v", err)
	}
}

func TestServiceRegistry(t *testing.T) {
	n := New(NewClock(time.Unix(0, 0)))
	ap := netip.MustParseAddrPort("10.0.0.1:443")
	n.RegisterService(ap, "svc")
	svc, err := n.Service(ap)
	if err != nil || svc != "svc" {
		t.Fatalf("Service: %v %v", svc, err)
	}
	// Port-level failure injection.
	n.SetPortDown(ap, true)
	if _, err := n.Service(ap); !errors.Is(err, ErrUnreachable) {
		t.Errorf("down port err = %v", err)
	}
	n.SetPortDown(ap, false)
	// Address-level failure injection affects services too.
	n.SetAddrDown(ap.Addr(), true)
	if _, err := n.Service(ap); !errors.Is(err, ErrUnreachable) {
		t.Errorf("down addr err = %v", err)
	}
	n.SetAddrDown(ap.Addr(), false)
	// Unknown port refuses.
	if _, err := n.Service(netip.MustParseAddrPort("10.0.0.1:8443")); !errors.Is(err, ErrRefused) {
		t.Errorf("unknown port err = %v", err)
	}
	n.UnregisterService(ap)
	if _, err := n.Service(ap); !errors.Is(err, ErrRefused) {
		t.Errorf("unregistered err = %v", err)
	}
}

func TestRootServers(t *testing.T) {
	n := New(NewClock(time.Unix(0, 0)))
	roots := []netip.Addr{netip.MustParseAddr("198.41.0.4")}
	n.SetRootServers(roots)
	got := n.RootServers()
	if len(got) != 1 || got[0] != roots[0] {
		t.Errorf("RootServers = %v", got)
	}
	// Returned slice is a copy.
	got[0] = netip.MustParseAddr("1.1.1.1")
	if n.RootServers()[0] != roots[0] {
		t.Error("RootServers aliases internal state")
	}
}

func TestAllocatorV4(t *testing.T) {
	a := NewAllocator()
	x1 := a.AllocV4("OrgA")
	x2 := a.AllocV4("OrgA")
	y1 := a.AllocV4("OrgB")
	if x1 == x2 {
		t.Error("duplicate allocation")
	}
	if !x1.Is4() || !y1.Is4() {
		t.Error("non-IPv4 allocation")
	}
	// Same org shares a /16.
	a16 := x1.As4()
	b16 := x2.As4()
	if a16[0] != b16[0] || a16[1] != b16[1] {
		t.Error("same org allocated across blocks")
	}
	// Different orgs get different blocks.
	c16 := y1.As4()
	if a16[0] == c16[0] && a16[1] == c16[1] {
		t.Error("different orgs share a block")
	}
	if org, ok := a.Owner(x1); !ok || org != "OrgA" {
		t.Errorf("Owner = %q, %v", org, ok)
	}
}

func TestAllocatorV6AndBYOIP(t *testing.T) {
	a := NewAllocator()
	v6 := a.AllocV6("OrgA")
	if !v6.Is6() || v6.Is4In6() {
		t.Errorf("AllocV6 = %v", v6)
	}
	// BYOIP: ownership override.
	a.SetOwner(v6, "CustomerCo")
	if org, _ := a.Owner(v6); org != "CustomerCo" {
		t.Errorf("override failed: %q", org)
	}
	owners := a.Owners()
	if owners[v6] != "CustomerCo" {
		t.Error("Owners snapshot wrong")
	}
}

func TestAllocatorUniqueness(t *testing.T) {
	a := NewAllocator()
	seen := map[netip.Addr]bool{}
	for i := 0; i < 1000; i++ {
		addr := a.AllocV4("Org")
		if seen[addr] {
			t.Fatalf("duplicate address %v at %d", addr, i)
		}
		seen[addr] = true
	}
}

// timedHandler records the time it was queried at, to verify per-view clock
// dispatch through DNSHandlerAt.
type timedHandler struct{ seen time.Time }

func (h *timedHandler) HandleDNS(q *dnswire.Message) *dnswire.Message {
	return h.HandleDNSAt(q, time.Time{})
}

func (h *timedHandler) HandleDNSAt(q *dnswire.Message, now time.Time) *dnswire.Message {
	h.seen = now
	return q.Reply()
}

func TestNetworkViewClockAndOverrides(t *testing.T) {
	base := New(NewClock(time.Date(2023, 5, 8, 12, 0, 0, 0, time.UTC)))
	addr := netip.MustParseAddr("10.0.0.1")
	h := &timedHandler{}
	base.RegisterDNS(addr, h)

	dayTime := time.Date(2023, 6, 1, 12, 0, 0, 0, time.UTC)
	view := base.WithClock(NewClock(dayTime))

	// A DNSHandlerAt registered in the shared registry answers at the
	// view's clock, not the base clock.
	q := dnswire.NewQuery(1, "x.com", dnswire.TypeA, false)
	if _, err := view.QueryDNS(addr, q); err != nil {
		t.Fatal(err)
	}
	if !h.seen.Equal(dayTime) {
		t.Errorf("handler saw %v, want view time %v", h.seen, dayTime)
	}
	if _, err := base.QueryDNS(addr, q); err != nil {
		t.Fatal(err)
	}
	if !h.seen.Equal(base.Clock.Now()) {
		t.Errorf("handler saw %v, want base time %v", h.seen, base.Clock.Now())
	}

	// Query counts are shared between base and views.
	if base.QueryCount() != 2 || view.QueryCount() != 2 {
		t.Errorf("query counts: base=%d view=%d, want 2", base.QueryCount(), view.QueryCount())
	}

	// A view-local DNS override shadows the shared handler without
	// leaking into the base network or sibling views.
	override := &timedHandler{}
	view.OverrideDNS(addr, override)
	if _, err := view.QueryDNS(addr, q); err != nil {
		t.Fatal(err)
	}
	if !override.seen.Equal(dayTime) {
		t.Error("override not consulted on view")
	}
	sibling := base.WithClock(NewClock(dayTime.Add(24 * time.Hour)))
	if _, err := sibling.QueryDNS(addr, q); err != nil {
		t.Fatal(err)
	}
	if !h.seen.Equal(dayTime.Add(24 * time.Hour)) {
		t.Error("sibling view leaked the other view's override")
	}

	// Failure injection is shared state: a down address fails through
	// views too, even with an override installed.
	base.SetAddrDown(addr, true)
	if _, err := view.QueryDNS(addr, q); !errors.Is(err, ErrUnreachable) {
		t.Errorf("down addr via view err = %v", err)
	}
	base.SetAddrDown(addr, false)
}

func TestNetworkViewServiceOverride(t *testing.T) {
	base := New(NewClock(time.Unix(0, 0)))
	ap := netip.AddrPortFrom(netip.MustParseAddr("10.0.0.9"), 443)
	base.RegisterService(ap, "shared")
	view := base.WithClock(NewClock(time.Unix(86400, 0)))
	view.OverrideService(ap, "view-local")

	if svc, err := view.Service(ap); err != nil || svc != "view-local" {
		t.Errorf("view service = %v, %v", svc, err)
	}
	if svc, err := base.Service(ap); err != nil || svc != "shared" {
		t.Errorf("base service = %v, %v", svc, err)
	}
	// Injection still applies to overridden services.
	base.SetPortDown(ap, true)
	if _, err := view.Service(ap); !errors.Is(err, ErrUnreachable) {
		t.Errorf("down port via view err = %v", err)
	}
}

func TestQueryCountConcurrent(t *testing.T) {
	n := New(NewClock(time.Unix(0, 0)))
	addr := netip.MustParseAddr("10.0.0.1")
	n.RegisterDNS(addr, echoHandler{})
	q := dnswire.NewQuery(1, "x.com", dnswire.TypeA, false)
	done := make(chan bool)
	const workers, each = 8, 200
	for w := 0; w < workers; w++ {
		go func() {
			for i := 0; i < each; i++ {
				if _, err := n.QueryDNS(addr, q); err != nil {
					t.Error(err)
					break
				}
			}
			done <- true
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	if n.QueryCount() != workers*each {
		t.Errorf("QueryCount = %d, want %d", n.QueryCount(), workers*each)
	}
}

// Package simnet provides the simulated Internet substrate the measurement
// framework runs on: a virtual clock, an IPv4/IPv6 address allocator with
// per-organisation blocks (feeding the WHOIS model), and a network that
// routes DNS queries and TLS connections to registered virtual hosts, with
// failure injection (unreachable addresses and ports).
//
// The paper's experiments ran against the live Internet; simnet substitutes
// a deterministic, seedable world that speaks the same wire formats, so
// every parsing, caching, validation, and failover code path is exercised
// for real.
package simnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dnswire"
)

// Clock is a virtual clock shared by all components of a simulation.
type Clock struct {
	mu  sync.Mutex
	now time.Time
}

// NewClock creates a clock starting at start.
func NewClock(start time.Time) *Clock {
	return &Clock{now: start}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d and returns the new time.
func (c *Clock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	return c.now
}

// Set jumps the clock to t.
func (c *Clock) Set(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = t
}

// Errors returned by network operations.
var (
	ErrUnreachable = errors.New("simnet: host unreachable")
	ErrNoService   = errors.New("simnet: no service at address")
	ErrRefused     = errors.New("simnet: connection refused")
)

// DNSHandler answers DNS queries. Both authoritative servers and recursive
// resolvers implement it.
type DNSHandler interface {
	HandleDNS(q *dnswire.Message) *dnswire.Message
}

// DNSHandlerAt is implemented by handlers whose answers depend on the
// virtual time of the querying network view (authoritative servers whose
// zone content follows day/hour schedules). When a handler implements it,
// QueryDNS passes the view's clock reading so one shared server instance
// can answer for several concurrently-scanned days at once.
type DNSHandlerAt interface {
	HandleDNSAt(q *dnswire.Message, now time.Time) *dnswire.Message
}

// netState is the registry shared by a base network and all of its views:
// handlers, services, failure injection, and the global query counter.
type netState struct {
	mu          sync.RWMutex
	dns         map[netip.Addr]DNSHandler
	services    map[netip.AddrPort]any
	downAddrs   map[netip.Addr]bool
	downPorts   map[netip.AddrPort]bool
	rootServers []netip.Addr

	// queryCount is atomic, not mutex-guarded: it is bumped on every
	// routed query, and taking the write lock just for the bump was the
	// dominant cross-day contention point in pipelined campaigns.
	queryCount atomic.Uint64
}

// Network is the simulated Internet: a registry of DNS servers by address
// and of arbitrary services (e.g. TLS endpoints) by address:port, plus
// reachability failure injection. A Network is either a base network or a
// view of one (see WithClock): views share the registry and counters but
// carry their own Clock and per-view handler overrides, which is what lets
// one world serve many simulated days concurrently.
type Network struct {
	Clock *Clock

	state *netState

	// Per-view overrides, consulted before the shared registry. They are
	// populated while a view is being wired (single-goroutine) and only
	// read afterwards, so they are deliberately lock-free.
	dnsOverrides map[netip.Addr]DNSHandler
	svcOverrides map[netip.AddrPort]any
}

// New creates an empty network with the given clock.
func New(clock *Clock) *Network {
	return &Network{
		Clock: clock,
		state: &netState{
			dns:       map[netip.Addr]DNSHandler{},
			services:  map[netip.AddrPort]any{},
			downAddrs: map[netip.Addr]bool{},
			downPorts: map[netip.AddrPort]bool{},
		},
	}
}

// WithClock returns a view of the network that shares the registry,
// failure-injection state, and query counter, but reads time from the given
// clock and starts with no overrides. Mutating registrations through a view
// (RegisterDNS etc.) writes the shared registry; use OverrideDNS /
// OverrideService for view-local wiring.
func (n *Network) WithClock(clock *Clock) *Network {
	return &Network{Clock: clock, state: n.state}
}

// OverrideDNS installs a view-local DNS handler at addr, shadowing any
// shared registration. It must be called while the view is being wired,
// before the view serves queries concurrently.
func (n *Network) OverrideDNS(addr netip.Addr, h DNSHandler) {
	if n.dnsOverrides == nil {
		n.dnsOverrides = map[netip.Addr]DNSHandler{}
	}
	n.dnsOverrides[addr] = h
}

// OverrideService installs a view-local service at ap, shadowing any shared
// registration. Same wiring-time constraint as OverrideDNS.
func (n *Network) OverrideService(ap netip.AddrPort, svc any) {
	if n.svcOverrides == nil {
		n.svcOverrides = map[netip.AddrPort]any{}
	}
	n.svcOverrides[ap] = svc
}

// RegisterDNS attaches a DNS handler at addr.
func (n *Network) RegisterDNS(addr netip.Addr, h DNSHandler) {
	n.state.mu.Lock()
	defer n.state.mu.Unlock()
	n.state.dns[addr] = h
}

// UnregisterDNS removes the handler at addr.
func (n *Network) UnregisterDNS(addr netip.Addr) {
	n.state.mu.Lock()
	defer n.state.mu.Unlock()
	delete(n.state.dns, addr)
}

// SetRootServers records the root name server addresses for resolvers.
func (n *Network) SetRootServers(addrs []netip.Addr) {
	n.state.mu.Lock()
	defer n.state.mu.Unlock()
	n.state.rootServers = append([]netip.Addr(nil), addrs...)
}

// RootServers returns the configured root server addresses.
func (n *Network) RootServers() []netip.Addr {
	n.state.mu.RLock()
	defer n.state.mu.RUnlock()
	return append([]netip.Addr(nil), n.state.rootServers...)
}

// QueryDNS sends a DNS query to the server at addr and returns its response.
func (n *Network) QueryDNS(addr netip.Addr, q *dnswire.Message) (*dnswire.Message, error) {
	n.state.mu.RLock()
	h, ok := n.state.dns[addr]
	down := n.state.downAddrs[addr]
	n.state.mu.RUnlock()
	if down {
		return nil, fmt.Errorf("querying %v: %w", addr, ErrUnreachable)
	}
	if over, hit := n.dnsOverrides[addr]; hit {
		h, ok = over, true
	}
	if !ok {
		return nil, fmt.Errorf("querying %v: %w", addr, ErrNoService)
	}
	n.state.queryCount.Add(1)
	var resp *dnswire.Message
	if ha, timed := h.(DNSHandlerAt); timed {
		resp = ha.HandleDNSAt(q, n.Clock.Now())
	} else {
		resp = h.HandleDNS(q)
	}
	if resp == nil {
		return nil, fmt.Errorf("querying %v: %w", addr, ErrRefused)
	}
	return resp, nil
}

// QueryCount returns the total number of DNS queries routed so far (shared
// across all views); the ethics-minded rate accounting in the scanner uses
// it.
func (n *Network) QueryCount() uint64 {
	return n.state.queryCount.Load()
}

// RegisterService attaches an arbitrary service object (e.g. a TLS endpoint)
// at addr:port.
func (n *Network) RegisterService(ap netip.AddrPort, svc any) {
	n.state.mu.Lock()
	defer n.state.mu.Unlock()
	n.state.services[ap] = svc
}

// UnregisterService removes the service at addr:port.
func (n *Network) UnregisterService(ap netip.AddrPort) {
	n.state.mu.Lock()
	defer n.state.mu.Unlock()
	delete(n.state.services, ap)
}

// Service returns the service registered at addr:port. It honours failure
// injection: a down address or port returns ErrUnreachable.
func (n *Network) Service(ap netip.AddrPort) (any, error) {
	n.state.mu.RLock()
	down := n.state.downAddrs[ap.Addr()] || n.state.downPorts[ap]
	svc, ok := n.state.services[ap]
	n.state.mu.RUnlock()
	if down {
		return nil, fmt.Errorf("connecting to %v: %w", ap, ErrUnreachable)
	}
	if over, hit := n.svcOverrides[ap]; hit {
		return over, nil
	}
	if !ok {
		return nil, fmt.Errorf("connecting to %v: %w", ap, ErrRefused)
	}
	return svc, nil
}

// SetAddrDown marks an entire address (un)reachable.
func (n *Network) SetAddrDown(addr netip.Addr, down bool) {
	n.state.mu.Lock()
	defer n.state.mu.Unlock()
	if down {
		n.state.downAddrs[addr] = true
	} else {
		delete(n.state.downAddrs, addr)
	}
}

// SetPortDown marks one address:port (un)reachable.
func (n *Network) SetPortDown(ap netip.AddrPort, down bool) {
	n.state.mu.Lock()
	defer n.state.mu.Unlock()
	if down {
		n.state.downPorts[ap] = true
	} else {
		delete(n.state.downPorts, ap)
	}
}

// Allocator hands out IP addresses from per-organisation blocks, recording
// ownership for the WHOIS model. IPv4 blocks are /16s carved sequentially
// from 100.64.0.0/10-style space; IPv6 blocks are /32-ish prefixes.
type Allocator struct {
	mu       sync.Mutex
	nextV4   uint32            // next /16 block index
	orgV4    map[string]uint32 // org → block base (as uint32 address)
	orgNext4 map[string]uint32 // org → next offset within block
	nextV6   uint16
	orgV6    map[string]uint16
	orgNext6 map[string]uint64
	owner    map[netip.Addr]string
}

// NewAllocator creates an empty allocator.
func NewAllocator() *Allocator {
	return &Allocator{
		orgV4:    map[string]uint32{},
		orgNext4: map[string]uint32{},
		orgV6:    map[string]uint16{},
		orgNext6: map[string]uint64{},
		owner:    map[netip.Addr]string{},
	}
}

// AllocV4 returns the next IPv4 address owned by org.
func (a *Allocator) AllocV4(org string) netip.Addr {
	a.mu.Lock()
	defer a.mu.Unlock()
	base, ok := a.orgV4[org]
	if !ok {
		// Carve the next /16 out of 10.0.0.0/8 then 100.64.0.0/10 space;
		// addresses are synthetic so only uniqueness matters.
		base = 0x0a000000 + a.nextV4<<16
		a.nextV4++
		a.orgV4[org] = base
		a.orgNext4[org] = 1
	}
	off := a.orgNext4[org]
	a.orgNext4[org]++
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], base+off)
	addr := netip.AddrFrom4(b)
	a.owner[addr] = org
	return addr
}

// AllocV6 returns the next IPv6 address owned by org.
func (a *Allocator) AllocV6(org string) netip.Addr {
	a.mu.Lock()
	defer a.mu.Unlock()
	prefix, ok := a.orgV6[org]
	if !ok {
		prefix = a.nextV6
		a.nextV6++
		a.orgV6[org] = prefix
		a.orgNext6[org] = 1
	}
	off := a.orgNext6[org]
	a.orgNext6[org]++
	var b [16]byte
	b[0], b[1] = 0x20, 0x01 // 2001::/16-style documentation space
	binary.BigEndian.PutUint16(b[2:4], prefix)
	binary.BigEndian.PutUint64(b[8:16], off)
	addr := netip.AddrFrom16(b)
	a.owner[addr] = org
	return addr
}

// Owner returns the organisation that owns addr, if allocated.
func (a *Allocator) Owner(addr netip.Addr) (string, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	org, ok := a.owner[addr]
	return org, ok
}

// SetOwner overrides ownership of an address (models BYOIP, where WHOIS
// shows the original owner rather than the operating provider).
func (a *Allocator) SetOwner(addr netip.Addr, org string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.owner[addr] = org
}

// Owners returns a snapshot of all allocations.
func (a *Allocator) Owners() map[netip.Addr]string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[netip.Addr]string, len(a.owner))
	for k, v := range a.owner {
		out[k] = v
	}
	return out
}

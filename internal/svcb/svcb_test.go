package svcb

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

func TestKeyString(t *testing.T) {
	cases := []struct {
		key  ParamKey
		want string
	}{
		{KeyMandatory, "mandatory"},
		{KeyALPN, "alpn"},
		{KeyNoDefaultALPN, "no-default-alpn"},
		{KeyPort, "port"},
		{KeyIPv4Hint, "ipv4hint"},
		{KeyECH, "ech"},
		{KeyIPv6Hint, "ipv6hint"},
		{ParamKey(7), "key7"},
		{ParamKey(65280), "key65280"},
	}
	for _, c := range cases {
		if got := c.key.String(); got != c.want {
			t.Errorf("ParamKey(%d).String() = %q, want %q", c.key, got, c.want)
		}
	}
}

func TestParseKeyRoundTrip(t *testing.T) {
	for k := ParamKey(0); k <= KeyIPv6Hint; k++ {
		got, err := ParseKey(k.String())
		if err != nil {
			t.Fatalf("ParseKey(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("ParseKey(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := ParseKey("nonsense"); err == nil {
		t.Error("ParseKey accepted unknown key name")
	}
	if _, err := ParseKey("key99999"); err == nil {
		t.Error("ParseKey accepted out-of-range numeric key")
	}
	if k, err := ParseKey("key300"); err != nil || k != ParamKey(300) {
		t.Errorf("ParseKey(key300) = %v, %v", k, err)
	}
}

func TestALPNRoundTrip(t *testing.T) {
	protos := []string{"h2", "h3", "http/1.1"}
	v, err := EncodeALPN(protos)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeALPN(v)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, protos) {
		t.Errorf("ALPN round trip = %v, want %v", got, protos)
	}
}

func TestALPNErrors(t *testing.T) {
	if _, err := EncodeALPN([]string{""}); err == nil {
		t.Error("EncodeALPN accepted empty id")
	}
	if _, err := DecodeALPN([]byte{}); err == nil {
		t.Error("DecodeALPN accepted empty value")
	}
	if _, err := DecodeALPN([]byte{5, 'h', '2'}); err == nil {
		t.Error("DecodeALPN accepted truncated id")
	}
	if _, err := DecodeALPN([]byte{0}); err == nil {
		t.Error("DecodeALPN accepted zero-length id")
	}
}

func TestParamsSetGetDelete(t *testing.T) {
	var ps Params
	ps.SetPort(8443)
	if err := ps.SetALPN([]string{"h2"}); err != nil {
		t.Fatal(err)
	}
	// List must stay key-sorted: alpn (1) before port (3).
	if ps[0].Key != KeyALPN || ps[1].Key != KeyPort {
		t.Errorf("params not sorted: %v", ps)
	}
	if port, ok := ps.Port(); !ok || port != 8443 {
		t.Errorf("Port() = %d, %v", port, ok)
	}
	ps.SetPort(443)
	if port, _ := ps.Port(); port != 443 {
		t.Errorf("Set did not replace: port = %d", port)
	}
	if len(ps) != 2 {
		t.Errorf("Set duplicated key: %v", ps)
	}
	ps.Delete(KeyPort)
	if ps.Has(KeyPort) {
		t.Error("Delete did not remove port")
	}
	ps.Delete(KeyPort) // idempotent
}

func TestPackUnpackRoundTrip(t *testing.T) {
	var ps Params
	if err := ps.SetALPN([]string{"h2", "h3"}); err != nil {
		t.Fatal(err)
	}
	ps.SetPort(8443)
	if err := ps.SetIPv4Hints([]netip.Addr{netip.MustParseAddr("104.16.132.229")}); err != nil {
		t.Fatal(err)
	}
	if err := ps.SetIPv6Hints([]netip.Addr{netip.MustParseAddr("2606:4700::6810:84e5")}); err != nil {
		t.Fatal(err)
	}
	ps.SetECH([]byte{0x00, 0x45, 0xfe, 0x0d})

	wire, err := ps.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnpackParams(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ps) {
		t.Errorf("round trip mismatch:\n got %v\nwant %v", got, ps)
	}
}

func TestUnpackRejectsUnsortedKeys(t *testing.T) {
	// port (3) followed by alpn (1): out of order.
	var wire []byte
	wire = binary.BigEndian.AppendUint16(wire, uint16(KeyPort))
	wire = binary.BigEndian.AppendUint16(wire, 2)
	wire = binary.BigEndian.AppendUint16(wire, 443)
	wire = binary.BigEndian.AppendUint16(wire, uint16(KeyALPN))
	wire = binary.BigEndian.AppendUint16(wire, 3)
	wire = append(wire, 2, 'h', '2')
	if _, err := UnpackParams(wire); err == nil {
		t.Error("UnpackParams accepted unsorted keys")
	}
}

func TestUnpackRejectsDuplicateKeys(t *testing.T) {
	var wire []byte
	for i := 0; i < 2; i++ {
		wire = binary.BigEndian.AppendUint16(wire, uint16(KeyPort))
		wire = binary.BigEndian.AppendUint16(wire, 2)
		wire = binary.BigEndian.AppendUint16(wire, 443)
	}
	if _, err := UnpackParams(wire); err == nil {
		t.Error("UnpackParams accepted duplicate keys")
	}
}

func TestUnpackTruncated(t *testing.T) {
	var ps Params
	ps.SetPort(443)
	wire, _ := ps.Pack(nil)
	for i := 1; i < len(wire); i++ {
		if _, err := UnpackParams(wire[:i]); err == nil {
			t.Errorf("UnpackParams accepted truncation at %d", i)
		}
	}
}

func TestMandatoryValidation(t *testing.T) {
	var ps Params
	if err := ps.SetALPN([]string{"h2"}); err != nil {
		t.Fatal(err)
	}
	if err := ps.SetMandatory([]ParamKey{KeyALPN}); err != nil {
		t.Fatal(err)
	}
	if err := ps.Validate(); err != nil {
		t.Errorf("valid mandatory rejected: %v", err)
	}
	keys, ok := ps.Mandatory()
	if !ok || len(keys) != 1 || keys[0] != KeyALPN {
		t.Errorf("Mandatory() = %v, %v", keys, ok)
	}

	// mandatory listing a missing key must fail validation.
	var ps2 Params
	if err := ps2.SetALPN([]string{"h2"}); err != nil {
		t.Fatal(err)
	}
	if err := ps2.SetMandatory([]ParamKey{KeyPort}); err != nil {
		t.Fatal(err)
	}
	if err := ps2.Validate(); err == nil {
		t.Error("Validate accepted mandatory key that is absent")
	}

	// mandatory must not include itself.
	var ps3 Params
	if err := ps3.SetMandatory([]ParamKey{KeyMandatory}); err == nil {
		t.Error("SetMandatory accepted self-reference")
	}
}

func TestValidateValueRules(t *testing.T) {
	cases := []struct {
		name string
		ps   Params
		ok   bool
	}{
		{"no-default-alpn empty", Params{{Key: KeyNoDefaultALPN}}, true},
		{"no-default-alpn nonempty", Params{{Key: KeyNoDefaultALPN, Value: []byte{1}}}, false},
		{"port wrong len", Params{{Key: KeyPort, Value: []byte{1}}}, false},
		{"ipv4hint bad len", Params{{Key: KeyIPv4Hint, Value: []byte{1, 2, 3}}}, false},
		{"ipv4hint empty", Params{{Key: KeyIPv4Hint}}, false},
		{"ipv6hint bad len", Params{{Key: KeyIPv6Hint, Value: make([]byte, 15)}}, false},
		{"ech empty", Params{{Key: KeyECH}}, false},
		{"ech ok", Params{{Key: KeyECH, Value: []byte{1}}}, true},
	}
	for _, c := range cases {
		err := c.ps.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestIPHintAccessors(t *testing.T) {
	var ps Params
	v4 := []netip.Addr{netip.MustParseAddr("1.2.3.4"), netip.MustParseAddr("5.6.7.8")}
	v6 := []netip.Addr{netip.MustParseAddr("2001:db8::1")}
	if err := ps.SetIPv4Hints(v4); err != nil {
		t.Fatal(err)
	}
	if err := ps.SetIPv6Hints(v6); err != nil {
		t.Fatal(err)
	}
	got4, ok := ps.IPv4Hints()
	if !ok || !reflect.DeepEqual(got4, v4) {
		t.Errorf("IPv4Hints = %v, %v", got4, ok)
	}
	got6, ok := ps.IPv6Hints()
	if !ok || !reflect.DeepEqual(got6, v6) {
		t.Errorf("IPv6Hints = %v, %v", got6, ok)
	}
	if err := ps.SetIPv4Hints([]netip.Addr{netip.MustParseAddr("::1")}); err == nil {
		t.Error("SetIPv4Hints accepted IPv6 address")
	}
	if err := ps.SetIPv6Hints([]netip.Addr{netip.MustParseAddr("1.2.3.4")}); err == nil {
		t.Error("SetIPv6Hints accepted IPv4 address")
	}
}

func TestPresentationFormat(t *testing.T) {
	var ps Params
	if err := ps.SetALPN([]string{"h2", "h3"}); err != nil {
		t.Fatal(err)
	}
	ps.SetPort(8443)
	if err := ps.SetIPv4Hints([]netip.Addr{netip.MustParseAddr("1.2.3.4")}); err != nil {
		t.Fatal(err)
	}
	want := "alpn=h2,h3 port=8443 ipv4hint=1.2.3.4"
	if got := ps.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestParseParamsRoundTrip(t *testing.T) {
	tokens := []string{"alpn=h2,h3", "port=8443", "ipv4hint=1.2.3.4,5.6.7.8", "ipv6hint=2001:db8::1", "ech=AEX+DQ=="}
	ps, err := ParseParams(tokens)
	if err != nil {
		t.Fatal(err)
	}
	reparsed, err := ParseParams(splitTokens(ps.String()))
	if err != nil {
		t.Fatalf("reparsing %q: %v", ps.String(), err)
	}
	if !reflect.DeepEqual(ps, reparsed) {
		t.Errorf("presentation round trip mismatch:\n%v\n%v", ps, reparsed)
	}
}

func splitTokens(s string) []string {
	var out []string
	for _, tok := range bytes.Fields([]byte(s)) {
		out = append(out, string(tok))
	}
	return out
}

func TestParseParamsErrors(t *testing.T) {
	bad := [][]string{
		{"alpn="},
		{"alpn=h2", "alpn=h3"}, // duplicate
		{"port=notanumber"},
		{"port=70000"},
		{"ipv4hint=::1"},
		{"ipv6hint=1.2.3.4"},
		{"ech=!!!"},
		{"no-default-alpn=x"},
		{"mandatory=port"}, // port absent
		{"bogus=1"},
	}
	for _, tokens := range bad {
		if _, err := ParseParams(tokens); err == nil {
			t.Errorf("ParseParams(%v) accepted invalid input", tokens)
		}
	}
}

func TestNoDefaultALPNParsing(t *testing.T) {
	ps, err := ParseParams([]string{"alpn=h3", "no-default-alpn"})
	if err != nil {
		t.Fatal(err)
	}
	if !ps.Has(KeyNoDefaultALPN) {
		t.Error("no-default-alpn not parsed")
	}
	if v, _ := ps.Get(KeyNoDefaultALPN); len(v) != 0 {
		t.Error("no-default-alpn value not empty")
	}
}

func TestClone(t *testing.T) {
	var ps Params
	ps.SetECH([]byte{1, 2, 3})
	c := ps.Clone()
	c[0].Value[0] = 99
	if v, _ := ps.ECH(); v[0] != 1 {
		t.Error("Clone shares value storage")
	}
	if Params(nil).Clone() != nil {
		t.Error("nil Clone should be nil")
	}
}

// Property: any randomly generated valid Params survives a wire round trip.
func TestQuickWireRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ps := randomParams(rng)
		wire, err := ps.Pack(nil)
		if err != nil {
			return false
		}
		got, err := UnpackParams(wire)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(normalize(got), normalize(ps))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func normalize(ps Params) Params {
	if len(ps) == 0 {
		return nil
	}
	return ps
}

func randomParams(rng *rand.Rand) Params {
	var ps Params
	if rng.Intn(2) == 0 {
		n := rng.Intn(3) + 1
		protos := make([]string, n)
		for i := range protos {
			protos[i] = []string{"h2", "h3", "http/1.1", "h3-29"}[rng.Intn(4)]
		}
		// Dedup not needed; alpn allows repeats on the wire.
		_ = ps.SetALPN(protos)
	}
	if rng.Intn(2) == 0 {
		ps.SetPort(uint16(rng.Intn(65536)))
	}
	if rng.Intn(2) == 0 {
		n := rng.Intn(3) + 1
		addrs := make([]netip.Addr, n)
		for i := range addrs {
			var b [4]byte
			rng.Read(b[:])
			addrs[i] = netip.AddrFrom4(b)
		}
		_ = ps.SetIPv4Hints(addrs)
	}
	if rng.Intn(2) == 0 {
		b := make([]byte, rng.Intn(64)+1)
		rng.Read(b)
		ps.SetECH(b)
	}
	return ps
}

// Property: String() output always reparses to an equivalent Params when the
// params are semantically valid.
func TestQuickPresentationRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ps := randomParams(rng)
		if len(ps) == 0 {
			return true
		}
		got, err := ParseParams(splitTokens(ps.String()))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, ps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

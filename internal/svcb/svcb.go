// Package svcb implements the SVCB/HTTPS resource record SvcParams wire and
// presentation formats defined by RFC 9460 (Service Binding and Parameter
// Specification via the DNS).
//
// The package is deliberately independent of the DNS message codec: it deals
// only with the parameter list that follows SvcPriority and TargetName in the
// RDATA. The dnswire package composes it into full SVCB/HTTPS records.
package svcb

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"net/netip"
	"sort"
	"strconv"
	"strings"
)

// ParamKey identifies an SvcParam. Values follow the IANA registry
// established by RFC 9460.
type ParamKey uint16

// Registered parameter keys (RFC 9460 §14.3.2).
const (
	KeyMandatory     ParamKey = 0
	KeyALPN          ParamKey = 1
	KeyNoDefaultALPN ParamKey = 2
	KeyPort          ParamKey = 3
	KeyIPv4Hint      ParamKey = 4
	KeyECH           ParamKey = 5
	KeyIPv6Hint      ParamKey = 6

	// keyInvalid marks the start of the reserved "Invalid key" range.
	keyInvalid ParamKey = 65535
)

var keyNames = map[ParamKey]string{
	KeyMandatory:     "mandatory",
	KeyALPN:          "alpn",
	KeyNoDefaultALPN: "no-default-alpn",
	KeyPort:          "port",
	KeyIPv4Hint:      "ipv4hint",
	KeyECH:           "ech",
	KeyIPv6Hint:      "ipv6hint",
}

// String returns the registered mnemonic for the key, or the generic
// "keyNNNNN" form mandated by RFC 9460 for unregistered keys.
func (k ParamKey) String() string {
	if s, ok := keyNames[k]; ok {
		return s
	}
	return "key" + strconv.FormatUint(uint64(k), 10)
}

// ParseKey converts a presentation-format key name into a ParamKey.
func ParseKey(s string) (ParamKey, error) {
	for k, name := range keyNames {
		if s == name {
			return k, nil
		}
	}
	if rest, ok := strings.CutPrefix(s, "key"); ok {
		n, err := strconv.ParseUint(rest, 10, 16)
		if err != nil {
			return 0, fmt.Errorf("svcb: invalid numeric key %q", s)
		}
		return ParamKey(n), nil
	}
	return 0, fmt.Errorf("svcb: unknown SvcParam key %q", s)
}

// Param is a single SvcParam: a key and its wire-format value.
type Param struct {
	Key   ParamKey
	Value []byte
}

// Params is an ordered list of SvcParams. RFC 9460 requires strictly
// increasing key order on the wire; Pack enforces it and Unpack rejects
// violations.
type Params []Param

// Get returns the wire value for key and whether it is present.
func (ps Params) Get(key ParamKey) ([]byte, bool) {
	for _, p := range ps {
		if p.Key == key {
			return p.Value, true
		}
	}
	return nil, false
}

// Has reports whether key is present.
func (ps Params) Has(key ParamKey) bool {
	_, ok := ps.Get(key)
	return ok
}

// Set inserts or replaces the value for key, keeping the list sorted.
func (ps *Params) Set(key ParamKey, value []byte) {
	for i := range *ps {
		if (*ps)[i].Key == key {
			(*ps)[i].Value = value
			return
		}
	}
	*ps = append(*ps, Param{Key: key, Value: value})
	sort.Slice(*ps, func(i, j int) bool { return (*ps)[i].Key < (*ps)[j].Key })
}

// Delete removes key from the list if present.
func (ps *Params) Delete(key ParamKey) {
	for i := range *ps {
		if (*ps)[i].Key == key {
			*ps = append((*ps)[:i], (*ps)[i+1:]...)
			return
		}
	}
}

// Clone returns a deep copy of the parameter list.
func (ps Params) Clone() Params {
	if ps == nil {
		return nil
	}
	out := make(Params, len(ps))
	for i, p := range ps {
		out[i] = Param{Key: p.Key, Value: append([]byte(nil), p.Value...)}
	}
	return out
}

// Pack appends the wire encoding of the parameter list to dst. The list is
// sorted by key first, as required by RFC 9460 §2.2.
func (ps Params) Pack(dst []byte) ([]byte, error) {
	sorted := make(Params, len(ps))
	copy(sorted, ps)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	for i, p := range sorted {
		if i > 0 && sorted[i-1].Key == p.Key {
			return nil, fmt.Errorf("svcb: duplicate SvcParam key %v", p.Key)
		}
		if len(p.Value) > 65535 {
			return nil, fmt.Errorf("svcb: SvcParam %v value exceeds 65535 bytes", p.Key)
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(p.Key))
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(p.Value)))
		dst = append(dst, p.Value...)
	}
	return dst, nil
}

// UnpackParams parses a wire-format SvcParams blob. It enforces the strictly
// increasing key order required by RFC 9460.
func UnpackParams(b []byte) (Params, error) {
	return UnpackParamsInto(nil, b)
}

// UnpackParamsInto parses a wire-format SvcParams blob into the recycled
// params slice, reusing its backing array and each slot's Value buffer.
// Re-decoding a same-shape blob allocates nothing.
func UnpackParamsInto(params Params, b []byte) (Params, error) {
	prevSlots := params
	ps := params[:0]
	prev := -1
	for len(b) > 0 {
		if len(b) < 4 {
			return nil, fmt.Errorf("svcb: truncated SvcParam header (%d bytes left)", len(b))
		}
		key := ParamKey(binary.BigEndian.Uint16(b))
		vlen := int(binary.BigEndian.Uint16(b[2:]))
		b = b[4:]
		if len(b) < vlen {
			return nil, fmt.Errorf("svcb: SvcParam %v value truncated: want %d bytes, have %d", key, vlen, len(b))
		}
		if int(key) <= prev {
			return nil, fmt.Errorf("svcb: SvcParam keys not in strictly increasing order (%v after %d)", key, prev)
		}
		prev = int(key)
		// Read the recycled slot's Value before append overwrites the slot.
		var old []byte
		if len(ps) < len(prevSlots) {
			old = prevSlots[len(ps)].Value[:0]
		}
		ps = append(ps, Param{Key: key, Value: append(old, b[:vlen]...)})
		b = b[vlen:]
	}
	return ps, nil
}

// Validate applies the RFC 9460 per-key semantic checks plus the mandatory
// parameter rules: mandatory must not list itself, must be sorted and unique,
// and every listed key must be present.
func (ps Params) Validate() error {
	for _, p := range ps {
		if err := validateValue(p.Key, p.Value); err != nil {
			return err
		}
	}
	if v, ok := ps.Get(KeyMandatory); ok {
		keys, err := decodeMandatory(v)
		if err != nil {
			return err
		}
		for _, k := range keys {
			if k == KeyMandatory {
				return fmt.Errorf("svcb: mandatory list must not include mandatory itself")
			}
			if !ps.Has(k) {
				return fmt.Errorf("svcb: mandatory key %v missing from SvcParams", k)
			}
		}
	}
	return nil
}

func validateValue(key ParamKey, v []byte) error {
	switch key {
	case KeyMandatory:
		_, err := decodeMandatory(v)
		return err
	case KeyALPN:
		_, err := DecodeALPN(v)
		return err
	case KeyNoDefaultALPN:
		if len(v) != 0 {
			return fmt.Errorf("svcb: no-default-alpn must have empty value")
		}
	case KeyPort:
		if len(v) != 2 {
			return fmt.Errorf("svcb: port value must be 2 bytes, got %d", len(v))
		}
	case KeyIPv4Hint:
		if len(v) == 0 || len(v)%4 != 0 {
			return fmt.Errorf("svcb: ipv4hint length %d not a positive multiple of 4", len(v))
		}
	case KeyIPv6Hint:
		if len(v) == 0 || len(v)%16 != 0 {
			return fmt.Errorf("svcb: ipv6hint length %d not a positive multiple of 16", len(v))
		}
	case KeyECH:
		if len(v) == 0 {
			return fmt.Errorf("svcb: ech value must not be empty")
		}
	}
	return nil
}

func decodeMandatory(v []byte) ([]ParamKey, error) {
	if len(v) == 0 || len(v)%2 != 0 {
		return nil, fmt.Errorf("svcb: mandatory value length %d not a positive multiple of 2", len(v))
	}
	keys := make([]ParamKey, 0, len(v)/2)
	prev := -1
	for i := 0; i < len(v); i += 2 {
		k := ParamKey(binary.BigEndian.Uint16(v[i:]))
		if int(k) <= prev {
			return nil, fmt.Errorf("svcb: mandatory keys not strictly increasing")
		}
		prev = int(k)
		keys = append(keys, k)
	}
	return keys, nil
}

// Mandatory returns the decoded mandatory key list, if present and valid.
func (ps Params) Mandatory() ([]ParamKey, bool) {
	v, ok := ps.Get(KeyMandatory)
	if !ok {
		return nil, false
	}
	keys, err := decodeMandatory(v)
	if err != nil {
		return nil, false
	}
	return keys, true
}

// EncodeALPN encodes a list of ALPN protocol identifiers into wire format:
// a sequence of length-prefixed strings.
func EncodeALPN(protos []string) ([]byte, error) {
	var out []byte
	for _, p := range protos {
		if len(p) == 0 || len(p) > 255 {
			return nil, fmt.Errorf("svcb: alpn id %q length out of range", p)
		}
		out = append(out, byte(len(p)))
		out = append(out, p...)
	}
	return out, nil
}

// DecodeALPN decodes a wire-format alpn value into protocol identifiers.
func DecodeALPN(v []byte) ([]string, error) {
	var protos []string
	for len(v) > 0 {
		n := int(v[0])
		v = v[1:]
		if n == 0 {
			return nil, fmt.Errorf("svcb: zero-length alpn id")
		}
		if len(v) < n {
			return nil, fmt.Errorf("svcb: truncated alpn id")
		}
		protos = append(protos, string(v[:n]))
		v = v[n:]
	}
	if len(protos) == 0 {
		return nil, fmt.Errorf("svcb: empty alpn list")
	}
	return protos, nil
}

// ALPN returns the decoded alpn protocol list, if present and valid.
func (ps Params) ALPN() ([]string, bool) {
	v, ok := ps.Get(KeyALPN)
	if !ok {
		return nil, false
	}
	protos, err := DecodeALPN(v)
	if err != nil {
		return nil, false
	}
	return protos, true
}

// SetALPN sets the alpn parameter from a protocol list.
func (ps *Params) SetALPN(protos []string) error {
	v, err := EncodeALPN(protos)
	if err != nil {
		return err
	}
	ps.Set(KeyALPN, v)
	return nil
}

// Port returns the decoded port parameter, if present and valid.
func (ps Params) Port() (uint16, bool) {
	v, ok := ps.Get(KeyPort)
	if !ok || len(v) != 2 {
		return 0, false
	}
	return binary.BigEndian.Uint16(v), true
}

// SetPort sets the port parameter.
func (ps *Params) SetPort(port uint16) {
	ps.Set(KeyPort, binary.BigEndian.AppendUint16(nil, port))
}

// IPv4Hints returns the decoded ipv4hint addresses, if present and valid.
func (ps Params) IPv4Hints() ([]netip.Addr, bool) {
	v, ok := ps.Get(KeyIPv4Hint)
	if !ok || len(v) == 0 || len(v)%4 != 0 {
		return nil, false
	}
	addrs := make([]netip.Addr, 0, len(v)/4)
	for i := 0; i < len(v); i += 4 {
		addr, _ := netip.AddrFromSlice(v[i : i+4])
		addrs = append(addrs, addr)
	}
	return addrs, true
}

// SetIPv4Hints sets the ipv4hint parameter. All addresses must be IPv4.
func (ps *Params) SetIPv4Hints(addrs []netip.Addr) error {
	var v []byte
	for _, a := range addrs {
		if !a.Is4() {
			return fmt.Errorf("svcb: %v is not an IPv4 address", a)
		}
		b := a.As4()
		v = append(v, b[:]...)
	}
	if len(v) == 0 {
		return fmt.Errorf("svcb: empty ipv4hint list")
	}
	ps.Set(KeyIPv4Hint, v)
	return nil
}

// IPv6Hints returns the decoded ipv6hint addresses, if present and valid.
func (ps Params) IPv6Hints() ([]netip.Addr, bool) {
	v, ok := ps.Get(KeyIPv6Hint)
	if !ok || len(v) == 0 || len(v)%16 != 0 {
		return nil, false
	}
	addrs := make([]netip.Addr, 0, len(v)/16)
	for i := 0; i < len(v); i += 16 {
		addr, _ := netip.AddrFromSlice(v[i : i+16])
		addrs = append(addrs, addr)
	}
	return addrs, true
}

// SetIPv6Hints sets the ipv6hint parameter. All addresses must be IPv6.
func (ps *Params) SetIPv6Hints(addrs []netip.Addr) error {
	var v []byte
	for _, a := range addrs {
		if !a.Is6() || a.Is4In6() {
			return fmt.Errorf("svcb: %v is not an IPv6 address", a)
		}
		b := a.As16()
		v = append(v, b[:]...)
	}
	if len(v) == 0 {
		return fmt.Errorf("svcb: empty ipv6hint list")
	}
	ps.Set(KeyIPv6Hint, v)
	return nil
}

// ECH returns the raw ECHConfigList bytes, if the ech parameter is present.
func (ps Params) ECH() ([]byte, bool) {
	return ps.Get(KeyECH)
}

// SetECH sets the ech parameter to the given ECHConfigList bytes.
func (ps *Params) SetECH(configList []byte) {
	ps.Set(KeyECH, configList)
}

// SetMandatory sets the mandatory parameter from a key list.
func (ps *Params) SetMandatory(keys []ParamKey) error {
	ks := append([]ParamKey(nil), keys...)
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	var v []byte
	for i, k := range ks {
		if k == KeyMandatory {
			return fmt.Errorf("svcb: mandatory list must not include mandatory")
		}
		if i > 0 && ks[i-1] == k {
			return fmt.Errorf("svcb: duplicate key %v in mandatory list", k)
		}
		v = binary.BigEndian.AppendUint16(v, uint16(k))
	}
	if len(v) == 0 {
		return fmt.Errorf("svcb: empty mandatory list")
	}
	ps.Set(KeyMandatory, v)
	return nil
}

// String renders the parameter list in RFC 9460 presentation format,
// space-separated, in key order.
func (ps Params) String() string {
	sorted := make(Params, len(ps))
	copy(sorted, ps)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	parts := make([]string, 0, len(sorted))
	for _, p := range sorted {
		parts = append(parts, formatParam(p))
	}
	return strings.Join(parts, " ")
}

func formatParam(p Param) string {
	switch p.Key {
	case KeyMandatory:
		if keys, err := decodeMandatory(p.Value); err == nil {
			names := make([]string, len(keys))
			for i, k := range keys {
				names[i] = k.String()
			}
			return "mandatory=" + strings.Join(names, ",")
		}
	case KeyALPN:
		if protos, err := DecodeALPN(p.Value); err == nil {
			return "alpn=" + strings.Join(protos, ",")
		}
	case KeyNoDefaultALPN:
		return "no-default-alpn"
	case KeyPort:
		if len(p.Value) == 2 {
			return "port=" + strconv.Itoa(int(binary.BigEndian.Uint16(p.Value)))
		}
	case KeyIPv4Hint:
		if addrs, ok := (Params{p}).IPv4Hints(); ok {
			return "ipv4hint=" + joinAddrs(addrs)
		}
	case KeyIPv6Hint:
		if addrs, ok := (Params{p}).IPv6Hints(); ok {
			return "ipv6hint=" + joinAddrs(addrs)
		}
	case KeyECH:
		return "ech=" + base64.StdEncoding.EncodeToString(p.Value)
	}
	// Unregistered or malformed: generic opaque form.
	return fmt.Sprintf("%s=%q", p.Key, p.Value)
}

func joinAddrs(addrs []netip.Addr) string {
	parts := make([]string, len(addrs))
	for i, a := range addrs {
		parts[i] = a.String()
	}
	return strings.Join(parts, ",")
}

// ParseParams parses presentation-format SvcParams tokens (e.g.
// "alpn=h2,h3", "port=8443", "no-default-alpn") into a Params list.
func ParseParams(tokens []string) (Params, error) {
	var ps Params
	for _, tok := range tokens {
		keyStr, valStr, hasVal := strings.Cut(tok, "=")
		key, err := ParseKey(keyStr)
		if err != nil {
			return nil, err
		}
		if ps.Has(key) {
			return nil, fmt.Errorf("svcb: duplicate key %v in presentation input", key)
		}
		var value []byte
		switch key {
		case KeyMandatory:
			if !hasVal || valStr == "" {
				return nil, fmt.Errorf("svcb: mandatory requires a value")
			}
			var keys []ParamKey
			for _, name := range strings.Split(valStr, ",") {
				k, err := ParseKey(name)
				if err != nil {
					return nil, err
				}
				keys = append(keys, k)
			}
			tmp := Params{}
			if err := tmp.SetMandatory(keys); err != nil {
				return nil, err
			}
			value, _ = tmp.Get(KeyMandatory)
		case KeyALPN:
			if !hasVal || valStr == "" {
				return nil, fmt.Errorf("svcb: alpn requires a value")
			}
			value, err = EncodeALPN(strings.Split(valStr, ","))
			if err != nil {
				return nil, err
			}
		case KeyNoDefaultALPN:
			if hasVal {
				return nil, fmt.Errorf("svcb: no-default-alpn takes no value")
			}
		case KeyPort:
			n, err := strconv.ParseUint(valStr, 10, 16)
			if err != nil {
				return nil, fmt.Errorf("svcb: invalid port %q", valStr)
			}
			value = binary.BigEndian.AppendUint16(nil, uint16(n))
		case KeyIPv4Hint, KeyIPv6Hint:
			if !hasVal || valStr == "" {
				return nil, fmt.Errorf("svcb: %v requires a value", key)
			}
			for _, s := range strings.Split(valStr, ",") {
				a, err := netip.ParseAddr(s)
				if err != nil {
					return nil, fmt.Errorf("svcb: invalid address %q: %v", s, err)
				}
				if key == KeyIPv4Hint {
					if !a.Is4() {
						return nil, fmt.Errorf("svcb: %v is not IPv4", a)
					}
					b := a.As4()
					value = append(value, b[:]...)
				} else {
					if !a.Is6() || a.Is4In6() {
						return nil, fmt.Errorf("svcb: %v is not IPv6", a)
					}
					b := a.As16()
					value = append(value, b[:]...)
				}
			}
		case KeyECH:
			value, err = base64.StdEncoding.DecodeString(valStr)
			if err != nil {
				return nil, fmt.Errorf("svcb: invalid ech base64: %v", err)
			}
		default:
			value = []byte(valStr)
		}
		ps.Set(key, value)
	}
	if err := ps.Validate(); err != nil {
		return nil, err
	}
	return ps, nil
}

package providers

import (
	"net/netip"
	"strings"
	"sync"
	"time"

	"repro/internal/dnswire"
	"repro/internal/ech"
	"repro/internal/simnet"
)

// Provider models one DNS service provider: its name-server fleet, HTTPS-RR
// support policy, and the synthesized authoritative service for all hosted
// customer domains.
type Provider struct {
	Name string
	// Org is the WHOIS organisation owning the NS addresses (usually the
	// provider itself; BYOIP cases differ).
	Org string
	// InfraDomain is the provider's own domain for NS host names,
	// e.g. "cloudflare-sim.com.".
	InfraDomain string
	NSHosts     []string
	NSAddrs     []netip.Addr
	// SupportsHTTPS is the provider's HTTPS-RRtype capability.
	SupportsHTTPS bool
	// HTTPSStartDay is when the provider began serving HTTPS records
	// (drives the Fig 3 upward provider-count trend).
	HTTPSStartDay time.Time
	// IsCloudflare marks the dominant provider with the proxied default.
	IsCloudflare bool
	// ECHManager, when set, is the provider's client-facing ECH key
	// manager (all of the paper's ECH configs point at Cloudflare's).
	ECHManager *ech.KeyManager
	// ECHProgramEnd is when the provider's ECH programme shut down
	// (zero = never enrolled or never ends).
	ECHProgramEnd time.Time
	// ECHPublicName is the client-facing server name in ECH configs.
	ECHPublicName string

	Clock *simnet.Clock

	mu      sync.RWMutex
	domains map[string]*DomainState
}

// NewProvider creates a provider with n name servers, allocating addresses
// from alloc under the provider's org.
func NewProvider(name string, alloc *simnet.Allocator, clock *simnet.Clock, supportsHTTPS bool, start time.Time) *Provider {
	infra := strings.ToLower(name) + "-dns-sim.com."
	p := &Provider{
		Name:          name,
		Org:           name,
		InfraDomain:   infra,
		SupportsHTTPS: supportsHTTPS,
		HTTPSStartDay: start,
		Clock:         clock,
		domains:       map[string]*DomainState{},
	}
	for i := 0; i < 2; i++ {
		p.NSHosts = append(p.NSHosts, "ns"+string(rune('1'+i))+"."+infra)
		p.NSAddrs = append(p.NSAddrs, alloc.AllocV4(p.Org))
	}
	return p
}

// AddDomain attaches a hosted domain.
func (p *Provider) AddDomain(d *DomainState) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.domains[d.Apex] = d
}

// Domain returns the hosted domain state, if any.
func (p *Provider) Domain(apex string) (*DomainState, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	d, ok := p.domains[dnswire.CanonicalName(apex)]
	return d, ok
}

// DomainCount returns the number of hosted domains.
func (p *Provider) DomainCount() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.domains)
}

// echListFor returns the ECHConfigList to embed for a domain at time t,
// or nil when the programme is inactive.
func (p *Provider) echListFor(d *DomainState, t time.Time) []byte {
	if p.ECHManager == nil || !d.ECH {
		return nil
	}
	if !p.ECHProgramEnd.IsZero() && !t.Before(p.ECHProgramEnd) {
		return nil
	}
	return p.ECHManager.ConfigList(t)
}

// HandleDNS implements simnet.DNSHandler: authoritative answers synthesized
// from the hosted domain states at the provider's own clock reading.
func (p *Provider) HandleDNS(q *dnswire.Message) *dnswire.Message {
	return p.HandleDNSAt(q, p.Clock.Now())
}

// HandleDNSAt implements simnet.DNSHandlerAt: the zone content served is a
// pure function of the hosted domain states and the supplied time, so one
// provider instance can answer for several concurrently-scanned days.
func (p *Provider) HandleDNSAt(q *dnswire.Message, now time.Time) *dnswire.Message {
	resp := q.Reply()
	if len(q.Question) != 1 {
		resp.RCode = dnswire.RCodeFormErr
		return resp
	}
	question := q.Question[0]
	name := dnswire.CanonicalName(question.Name)
	dnssecOK := q.DNSSECOK()

	// The provider's own infrastructure names (ns1.<infra> etc.).
	if dnswire.IsSubdomain(name, p.InfraDomain) {
		return p.answerInfra(resp, name, question.Type)
	}

	apex := dnswire.ApexOf(name)
	p.mu.RLock()
	d, ok := p.domains[apex]
	p.mu.RUnlock()
	if !ok {
		resp.RCode = dnswire.RCodeRefused
		return resp
	}
	// A provider no longer serving the domain refuses (post switch-away).
	serving := false
	for _, sp := range d.ProvidersAt(now) {
		if sp == p {
			serving = true
			break
		}
	}
	if !serving {
		resp.RCode = dnswire.RCodeRefused
		return resp
	}

	resp.Authoritative = true
	rrs := p.answerFor(d, name, question.Type, now)
	if len(rrs) == 0 {
		// NODATA (the owner names we model always exist).
		if name != d.Apex && name != d.WWWName() {
			resp.RCode = dnswire.RCodeNXDomain
		}
		resp.Authority = d.SOARRset(now)
		if dnssecOK {
			if sig, ok := d.signRRset(resp.Authority); ok {
				resp.Authority = append(resp.Authority, sig)
			}
		}
		return resp
	}
	resp.Answer = rrs
	if dnssecOK {
		resp.Answer = appendSigs(d, rrs)
	}
	return resp
}

// appendSigs groups the answer into RRsets and appends an RRSIG per set.
func appendSigs(d *DomainState, rrs []dnswire.RR) []dnswire.RR {
	out := append([]dnswire.RR(nil), rrs...)
	type setKey struct {
		name string
		typ  dnswire.Type
	}
	sets := map[setKey][]dnswire.RR{}
	var order []setKey
	for _, rr := range rrs {
		k := setKey{dnswire.CanonicalName(rr.Name), rr.Type}
		if _, seen := sets[k]; !seen {
			order = append(order, k)
		}
		sets[k] = append(sets[k], rr)
	}
	for _, k := range order {
		if sig, ok := d.signRRset(sets[k]); ok {
			out = append(out, sig)
		}
	}
	return out
}

// answerFor synthesizes the answer RRs for (name, type) of a hosted domain.
func (p *Provider) answerFor(d *DomainState, name string, t dnswire.Type, now time.Time) []dnswire.RR {
	isApex := name == d.Apex
	isWWW := name == d.WWWName()
	if !isApex && !isWWW {
		return nil
	}
	if isWWW && !d.HasWWW {
		return nil
	}

	// CNAME pathologies first: they alias every type except CNAME itself.
	if isApex && d.ApexCNAME && t != dnswire.TypeCNAME && t != dnswire.TypeNS &&
		t != dnswire.TypeSOA && t != dnswire.TypeDNSKEY {
		cname := dnswire.RR{Name: name, Type: dnswire.TypeCNAME, Class: dnswire.ClassINET,
			TTL: d.TTL, Data: &dnswire.CNAMEData{Target: d.WWWName()}}
		out := []dnswire.RR{cname}
		return append(out, p.answerFor(d, d.WWWName(), t, now)...)
	}
	if isWWW && d.WWWCNAME && !d.ApexCNAME && t != dnswire.TypeCNAME {
		cname := dnswire.RR{Name: name, Type: dnswire.TypeCNAME, Class: dnswire.ClassINET,
			TTL: d.TTL, Data: &dnswire.CNAMEData{Target: d.Apex}}
		out := []dnswire.RR{cname}
		return append(out, p.answerFor(d, d.Apex, t, now)...)
	}

	switch t {
	case dnswire.TypeA:
		return d.ARRset(name, now)
	case dnswire.TypeAAAA:
		return d.AAAARRset(name)
	case dnswire.TypeHTTPS:
		if !d.HTTPSPublished(now, p) {
			return nil
		}
		return d.BuildHTTPSRecords(name, now, p.echListFor(d, now))
	case dnswire.TypeNS:
		if isApex {
			return d.NSRRset(now)
		}
	case dnswire.TypeSOA:
		if isApex {
			return d.SOARRset(now)
		}
	case dnswire.TypeDNSKEY:
		if isApex {
			return d.DNSKEYRRset()
		}
	}
	return nil
}

// answerInfra serves the provider's own NS host records.
func (p *Provider) answerInfra(resp *dnswire.Message, name string, t dnswire.Type) *dnswire.Message {
	resp.Authoritative = true
	for i, host := range p.NSHosts {
		if name == host && t == dnswire.TypeA {
			resp.Answer = append(resp.Answer, dnswire.RR{
				Name: name, Type: dnswire.TypeA, Class: dnswire.ClassINET, TTL: 3600,
				Data: &dnswire.AData{Addr: p.NSAddrs[i]},
			})
		}
	}
	if name == p.InfraDomain && t == dnswire.TypeNS {
		for _, host := range p.NSHosts {
			resp.Answer = append(resp.Answer, dnswire.RR{
				Name: name, Type: dnswire.TypeNS, Class: dnswire.ClassINET, TTL: 3600,
				Data: &dnswire.NSData{Host: host},
			})
		}
	}
	return resp
}

package providers

import (
	"testing"
	"time"
)

func TestScaleCount(t *testing.T) {
	cases := []struct{ count, size, want int }{
		{185, 1_000_000, 185}, // identity at full scale
		{185, 100_000, 18},
		{185, 10_000, 1},
		{5, 20_000, 1}, // floor at 1
		{0, 20_000, 0},
	}
	for _, c := range cases {
		if got := ScaleCount(c.count, c.size); got != c.want {
			t.Errorf("ScaleCount(%d, %d) = %d, want %d", c.count, c.size, got, c.want)
		}
	}
}

func TestDefaultCalibrationSanity(t *testing.T) {
	cal := DefaultCalibration()
	probs := map[string]float64{
		"CoreAdoptRate":        cal.CoreAdoptRate,
		"TailAdoptAtStart":     cal.TailAdoptAtStart,
		"TailAdoptAtEnd":       cal.TailAdoptAtEnd,
		"WWWGivenApex":         cal.WWWGivenApex,
		"CloudflareShare":      cal.CloudflareShare,
		"CFDefaultShare":       cal.CFDefaultShare,
		"ECHShareOfAdopters":   cal.ECHShareOfAdopters,
		"SignedShareCF":        cal.SignedShareCF,
		"CFInsecureShare":      cal.CFInsecureShare,
		"SignedShareNoHTTPS":   cal.SignedShareNoHTTPS,
		"NoHTTPSInsecureShare": cal.NoHTTPSInsecureShare,
		"HintShareV4":          cal.HintShareV4,
		"NonCFH2Share":         cal.NonCFH2Share,
		"GoDaddyAliasShare":    cal.GoDaddyAliasShare,
	}
	for name, p := range probs {
		if p <= 0 || p > 1 {
			t.Errorf("%s = %f out of (0,1]", name, p)
		}
	}
	if cal.TailAdoptAtEnd <= cal.TailAdoptAtStart {
		t.Error("tail adoption must rise (Fig 2a trend)")
	}
	if cal.ECHRotationPeriod < time.Hour || cal.ECHRotationPeriod > 2*time.Hour {
		t.Errorf("rotation period %v outside the paper's 1-2h band", cal.ECHRotationPeriod)
	}
	if cal.NonCFWeights[0].Name != "eName" {
		t.Error("Table 3's top provider must be eName")
	}
	if !ECHDisableDate.After(StudyStart) || !ECHDisableDate.Before(StudyEnd) {
		t.Error("ECH disable date outside study period")
	}
}

func TestMultiProviderPhases(t *testing.T) {
	clock := time.Date(2023, 9, 1, 12, 0, 0, 0, time.UTC)
	p1 := &Provider{Name: "CF", SupportsHTTPS: true}
	p2 := &Provider{Name: "Legacy"}
	d := &DomainState{
		Apex:         "x.com.",
		Providers:    []*Provider{p1, p2},
		Intermittent: IntermitMultiProvider,
	}
	seen := map[int]int{} // phase → provider count
	firsts := map[string]bool{}
	for i := 0; i < 6; i++ {
		day := clock.AddDate(0, 0, i)
		ps := d.ProvidersAt(day)
		if len(ps) == 0 {
			t.Fatal("no providers")
		}
		seen[len(ps)]++
		firsts[ps[0].Name] = true
	}
	// All three arrangements appear across six consecutive days.
	if len(seen) < 2 || !firsts["CF"] || !firsts["Legacy"] {
		t.Errorf("phases not cycling: counts=%v firsts=%v", seen, firsts)
	}
}

func TestSwitchAwaySchedule(t *testing.T) {
	p1 := &Provider{Name: "CF", SupportsHTTPS: true}
	p2 := &Provider{Name: "Reg"}
	d := &DomainState{
		Apex:      "x.com.",
		Providers: []*Provider{p1, p2},
		SwitchDay: time.Date(2023, 11, 1, 0, 0, 0, 0, time.UTC),
	}
	before := d.ProvidersAt(d.SwitchDay.Add(-time.Hour))
	after := d.ProvidersAt(d.SwitchDay.Add(time.Hour))
	if len(before) != 1 || before[0] != p1 {
		t.Errorf("before switch = %v", before)
	}
	if len(after) != 1 || after[0] != p2 {
		t.Errorf("after switch = %v", after)
	}
}

func TestNoNSEpisode(t *testing.T) {
	p1 := &Provider{Name: "CF", SupportsHTTPS: true}
	ep := interval{
		From: time.Date(2023, 10, 1, 0, 0, 0, 0, time.UTC),
		To:   time.Date(2023, 10, 5, 0, 0, 0, 0, time.UTC),
	}
	d := &DomainState{Apex: "x.com.", Providers: []*Provider{p1}, NoNSEpisodes: []interval{ep}}
	if got := d.ProvidersAt(ep.From.Add(time.Hour)); got != nil {
		t.Errorf("providers during NS loss = %v", got)
	}
	if got := d.ProvidersAt(ep.To.Add(time.Hour)); len(got) != 1 {
		t.Errorf("providers after NS loss = %v", got)
	}
}

func TestHTTPSPublishedGates(t *testing.T) {
	now := time.Date(2023, 9, 1, 0, 0, 0, 0, time.UTC)
	p := &Provider{Name: "P", SupportsHTTPS: true, HTTPSStartDay: now.AddDate(0, 0, -30)}
	d := &DomainState{Apex: "x.com.", Profile: ProfileCFDefault,
		AdoptDay: now.AddDate(0, 0, -10), Providers: []*Provider{p}}
	if !d.HTTPSPublished(now, p) {
		t.Error("should publish")
	}
	if d.HTTPSPublished(d.AdoptDay.AddDate(0, 0, -1), p) {
		t.Error("published before adoption")
	}
	// Provider capability gates.
	noSupport := &Provider{Name: "L"}
	if d.HTTPSPublished(now, noSupport) {
		t.Error("published via non-supporting provider")
	}
	late := &Provider{Name: "Late", SupportsHTTPS: true, HTTPSStartDay: now.AddDate(0, 0, 5)}
	if d.HTTPSPublished(now, late) {
		t.Error("published before provider support began")
	}
	// Proxied-toggle off episode.
	d.Intermittent = IntermitProxiedToggle
	d.OffEpisodes = []interval{{From: now.AddDate(0, 0, -1), To: now.AddDate(0, 0, 1)}}
	if d.HTTPSPublished(now, p) {
		t.Error("published during off episode")
	}
}

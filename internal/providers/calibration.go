package providers

import "time"

// Study period landmarks (paper §4.1 and §4.4).
var (
	// StudyStart is the first scan day (May 8th, 2023).
	StudyStart = time.Date(2023, 5, 8, 0, 0, 0, 0, time.UTC)
	// StudyEnd is the last scan day (March 31st, 2024).
	StudyEnd = time.Date(2024, 3, 31, 0, 0, 0, 0, time.UTC)
	// ECHDisableDate is when Cloudflare disabled ECH globally (§4.4.1).
	ECHDisableDate = time.Date(2023, 10, 5, 0, 0, 0, 0, time.UTC)
	// H3Draft29SunsetDate is when Cloudflare stopped advertising h3-29 (§E.2).
	H3Draft29SunsetDate = time.Date(2023, 5, 31, 0, 0, 0, 0, time.UTC)
	// HintFixDate is when the bulk IP-hint mismatches dropped (§E.3,
	// June 19th, 2023).
	HintFixDate = time.Date(2023, 6, 19, 0, 0, 0, 0, time.UTC)
	// NSScanStart is when NS/SOA collection began (Table 1).
	NSScanStart = time.Date(2023, 8, 16, 0, 0, 0, 0, time.UTC)
)

// Calibration holds every generative rate of the world model.
type Calibration struct {
	// --- adoption (Fig 2) ---

	// CoreAdoptRate is the fraction of stable (overlapping) domains with
	// HTTPS records throughout (Fig 2b: ~21–26% stable band; we use the
	// apex level).
	CoreAdoptRate float64
	// TailAdoptAtStart/AtEnd give the tail-domain adoption probability at
	// the study boundaries; the daily tail resample turns this into the
	// rising dynamic-Tranco trend of Fig 2a (20% → 27% overall).
	TailAdoptAtStart float64
	TailAdoptAtEnd   float64
	// WWWGivenApex is P(www has HTTPS | apex has HTTPS) (Fig 2: www sits
	// a few points below apex).
	WWWGivenApex float64

	// --- name servers (Table 2, Table 3, Fig 3) ---

	// CloudflareShare is the fraction of HTTPS adopters on full
	// Cloudflare NS (Table 2: 99.89%).
	CloudflareShare float64
	// PartialCloudflareShare is the sliver mixing Cloudflare and other
	// NS (<0.01%).
	PartialCloudflareShare float64
	// NonCFWeights ranks the non-Cloudflare providers by domain count
	// (Table 3 dynamic column).
	NonCFWeights []ProviderWeight
	// NonCFProviderTotal is the number of distinct non-CF providers ever
	// seen (§4.2.2: 244), scaled.
	NonCFProviderTotal int
	// MinNonCFAdopters floors the absolute non-Cloudflare adopter
	// population so the Table 3 / Fig 3 analyses stay populated at small
	// simulation scales. The true 0.11% share emerges once
	// 0.0011 × adopters exceeds this floor (≈ size 90k).
	MinNonCFAdopters int

	// --- Cloudflare configuration (Table 4, §4.3.1) ---

	// CFDefaultShare is the fraction of CF domains with the untouched
	// proxied default HTTPS record (Table 4: 79.96% dynamic).
	CFDefaultShare float64

	// --- ECH (Fig 13, §4.4) ---

	// ECHShareOfAdopters is the fraction of HTTPS adopters with the ech
	// parameter before the shutdown (§4.4.1: ~70% of apex). All are CF
	// default-config (free-plan proxied) domains.
	ECHShareOfAdopters float64
	// NonCFECHApex/WWW are absolute counts of domains publishing ECH via
	// non-CF name servers (§4.4.1: 106 apex, 74 www), scaled.
	NonCFECHApex int
	NonCFECHWWW  int
	// ECHRotationPeriod is the key-rotation interval the hourly scans
	// measure (Fig 4: 1.1–1.4h, mean 1.26h).
	ECHRotationPeriod time.Duration
	// ECHRetention is how long superseded ECH keys still decrypt.
	ECHRetention time.Duration

	// --- DNSSEC (Fig 5, Table 9) ---

	// SignedShareCF is P(signed | HTTPS adopter on Cloudflare NS)
	// (Table 9: 16,784 of ~210k CF adopters ≈ 8%).
	SignedShareCF float64
	// CFInsecureShare is P(missing DS | signed, CF NS) (Table 9: 49.5%).
	CFInsecureShare float64
	// SignedShareNonCF is P(signed | HTTPS adopter, non-CF NS)
	// (Table 9: 64 of ~231 ≈ 28%).
	SignedShareNonCF float64
	// NonCFInsecureShare is P(missing DS | signed, non-CF) (14.1%).
	NonCFInsecureShare float64
	// SignedShareNoHTTPS is P(signed | no HTTPS records) (Table 9:
	// 46,850 of ~780k ≈ 6%).
	SignedShareNoHTTPS float64
	// NoHTTPSInsecureShare is P(missing DS | signed, no HTTPS) (23.7%).
	NoHTTPSInsecureShare float64

	// --- intermittency (§4.2.3) ---

	// IntermittentShare is the fraction of adopters with on/off HTTPS
	// episodes (4,598 of ~210k ≈ 2.2%).
	IntermittentShare float64
	// IntermittentSameNSShare: of intermittent domains, fraction keeping
	// the same name servers (59.13%, proxied toggling).
	IntermittentSameNSShare float64
	// SwitchAwayCount is the absolute number of domains switching from
	// CF to non-CF NS and losing HTTPS (236), scaled.
	SwitchAwayCount int
	// MultiProviderMixCount is the absolute number of domains using a mix
	// of providers where not all support HTTPS (6), scaled.
	MultiProviderMixCount int

	// --- IP hints (§4.3.5, Fig 11/12) ---

	// HintShareV4/V6: fraction of adopters publishing ipv4hint/ipv6hint
	// (97% / 87%).
	HintShareV4 float64
	HintShareV6 float64
	// EarlyMismatchShare is the pre-June-19 mismatch rate (~2%).
	EarlyMismatchShare float64
	// LateMismatchShare is the post-June-19 steady mismatch rate
	// (≈30–80 domains/day of ~210k ≈ 0.03%).
	LateMismatchShare float64
	// MismatchMeanDays is the mean mismatch episode length (6.57 days
	// apex).
	MismatchMeanDays float64
	// PersistentMismatchCount: domains mismatched for the entire period
	// (5 apex, cf-ns/China network), scaled.
	PersistentMismatchCount int
	// HintUnreachableShare is P(one side unreachable | mismatch)
	// (§4.3.5: 193 of 317 distinct ≈ 61%).
	HintUnreachableShare float64
	// HintOnlyReachableShare / AOnlyReachableShare split the unreachable
	// cases (117 hint-only vs 59 A-only of 193).
	HintOnlyReachableShare float64

	// --- ALPN (Table 8, §4.3.4, §E.2) ---

	// NonCFALPN gives the non-CF alpn mix: h2 64.09%, h3 26.79%,
	// none 8.44% (the remainder is exotic).
	NonCFH2Share   float64
	NonCFH3Share   float64
	NonCFNoneShare float64

	// --- provider-specific record shapes (Table 5, §E.1) ---

	// GoogleEmptyParamShare: Google-NS records in ServiceMode with no
	// SvcParams (95–99%).
	GoogleEmptyParamShare float64
	// GoDaddyAliasShare: GoDaddy-NS records in AliasMode (99.19%).
	GoDaddyAliasShare float64

	// --- pathological specials (§E.1), absolute counts scaled ---

	// AliasSelfTargetCount: AliasMode records with "." as TargetName (19).
	AliasSelfTargetCount int
	// ServiceNoParamsCount: ServiceMode with no SvcParams (232).
	ServiceNoParamsCount int
	// PriorityListCount: nexuspipe-style records with priorities 1..12 (14).
	PriorityListCount int
	// CNAMEApexCount: apexes answering with (illegal) CNAME (small).
	CNAMEApexCount int

	// RecordTTL is the HTTPS record TTL (§4.4.2: 300s for >99%).
	RecordTTL uint32
}

// ProviderWeight is one row of the non-CF provider ranking.
type ProviderWeight struct {
	Name  string
	Count int // absolute domain count at 1M scale (Table 3)
}

// DefaultCalibration returns the paper-calibrated rates.
func DefaultCalibration() Calibration {
	return Calibration{
		CoreAdoptRate:    0.21,
		TailAdoptAtStart: 0.18,
		TailAdoptAtEnd:   0.375,
		WWWGivenApex:     0.85,

		CloudflareShare:        0.9989,
		PartialCloudflareShare: 0.00005,
		NonCFWeights: []ProviderWeight{
			{"eName", 185}, {"Google", 159}, {"GoDaddy", 105}, {"NSONE", 79},
			{"Domeneshop", 16}, {"Hover", 11}, {"ubmdns", 9}, {"domainactive", 8},
			{"informadns", 7}, {"nexuspipe", 14}, {"domaincontrol", 21},
			{"netclient", 6}, {"icsn", 5}, {"d-53", 5}, {"jpberlin", 4},
			{"gandi", 3}, {"cloudns", 3}, {"gentoo", 1}, {"sone", 7},
		},
		NonCFProviderTotal: 244,
		MinNonCFAdopters:   30,

		CFDefaultShare: 0.7996,

		ECHShareOfAdopters: 0.70,
		NonCFECHApex:       106,
		NonCFECHWWW:        74,
		ECHRotationPeriod:  76 * time.Minute, // mean observed 1.26h
		ECHRetention:       3 * time.Hour,

		SignedShareCF:        0.08,
		CFInsecureShare:      0.495,
		SignedShareNonCF:     0.28,
		NonCFInsecureShare:   0.141,
		SignedShareNoHTTPS:   0.059,
		NoHTTPSInsecureShare: 0.237,

		IntermittentShare:       0.022,
		IntermittentSameNSShare: 0.5913,
		SwitchAwayCount:         236,
		MultiProviderMixCount:   6,

		HintShareV4:             0.97,
		HintShareV6:             0.87,
		EarlyMismatchShare:      0.02,
		LateMismatchShare:       0.0003,
		MismatchMeanDays:        6.57,
		PersistentMismatchCount: 5,
		HintUnreachableShare:    0.61,
		HintOnlyReachableShare:  0.66, // 117 of (117+59)

		NonCFH2Share:   0.6409,
		NonCFH3Share:   0.2679,
		NonCFNoneShare: 0.0844,

		GoogleEmptyParamShare: 0.9511,
		GoDaddyAliasShare:     0.9919,

		AliasSelfTargetCount: 19,
		ServiceNoParamsCount: 232,
		PriorityListCount:    14,
		CNAMEApexCount:       25,

		RecordTTL: 300,
	}
}

// ScaleCount converts an absolute 1M-scale count to the simulation scale,
// flooring at 1 so qualitative populations survive.
func ScaleCount(count, size int) int {
	scaled := count * size / 1_000_000
	if scaled < 1 && count > 0 {
		return 1
	}
	return scaled
}

package providers

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"repro/internal/dnswire"
	"repro/internal/ech"
	"repro/internal/resolver"
	"repro/internal/simnet"
	"repro/internal/tranco"
	"repro/internal/whois"
	"repro/internal/zone"
)

// WorldConfig parameterises world construction.
type WorldConfig struct {
	// Size is the daily Tranco list length (paper: 1M; default 20k).
	Size int
	// Seed drives all generation.
	Seed int64
	// Cal are the behavioural rates; zero value means DefaultCalibration.
	Cal *Calibration
}

// World is the fully wired simulated Internet: root + TLD + provider DNS
// infrastructure, the domain population with its schedules, public
// resolvers, and the WHOIS database.
type World struct {
	Cfg   WorldConfig
	Cal   Calibration
	Net   *simnet.Network
	Clock *simnet.Clock
	Alloc *simnet.Allocator
	Whois *whois.DB

	Tranco *tranco.Simulator

	Providers      []*Provider
	ProviderByName map[string]*Provider
	Cloudflare     *Provider

	Domains map[string]*DomainState // by canonical apex
	TLDs    map[string]*TLDServer

	RootZone *zone.Zone
	RootAddr netip.Addr
	Anchor   []dnswire.RR

	// GoogleResolver (8.8.8.8) is the primary public resolver;
	// CFResolver (1.1.1.1) is the scanner's backup.
	GoogleResolver *resolver.Resolver
	CFResolver     *resolver.Resolver
	GoogleAddr     netip.Addr
	CFResolverAddr netip.Addr

	// ECHKeys is Cloudflare's client-facing key manager
	// (cloudflare-ech.com), rotated on the virtual clock.
	ECHKeys *ech.KeyManager
}

func hashName(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64())
}

// BuildWorld constructs the simulated ecosystem.
func BuildWorld(cfg WorldConfig) (*World, error) {
	if cfg.Size == 0 {
		cfg.Size = 20_000
	}
	cal := DefaultCalibration()
	if cfg.Cal != nil {
		cal = *cfg.Cal
	}
	clock := simnet.NewClock(StudyStart)
	w := &World{
		Cfg:            cfg,
		Cal:            cal,
		Clock:          clock,
		Net:            simnet.New(clock),
		Alloc:          simnet.NewAllocator(),
		Domains:        map[string]*DomainState{},
		TLDs:           map[string]*TLDServer{},
		ProviderByName: map[string]*Provider{},
	}
	w.Whois = whois.New(w.Alloc)
	w.Tranco = tranco.NewSimulator(tranco.DefaultConfig(cfg.Size, cfg.Seed))

	rng := rand.New(rand.NewSource(cfg.Seed))

	var err error
	w.ECHKeys, err = ech.NewKeyManager(rng, "cloudflare-ech.com",
		cal.ECHRotationPeriod, cal.ECHRetention, StudyStart.Add(-24*time.Hour))
	if err != nil {
		return nil, err
	}

	w.buildProviders(rng)
	if err := w.buildTLDsAndRoot(rng); err != nil {
		return nil, err
	}
	w.buildDomains(rng)
	w.assignSpecialPopulations(rng)
	w.buildResolvers()
	return w, nil
}

// buildProviders creates Cloudflare, the named Table 3 providers, and the
// generated long tail.
func (w *World) buildProviders(rng *rand.Rand) {
	cf := NewProvider("Cloudflare", w.Alloc, w.Clock, true, StudyStart.Add(-365*24*time.Hour))
	cf.IsCloudflare = true
	cf.ECHManager = w.ECHKeys
	cf.ECHProgramEnd = ECHDisableDate
	cf.ECHPublicName = "cloudflare-ech.com"
	w.Cloudflare = cf
	w.addProvider(cf)

	for i, pw := range w.Cal.NonCFWeights {
		// Stagger HTTPS support start dates: about half supported from
		// the beginning, the rest switch it on during the study,
		// producing Fig 3's upward provider-count trend.
		start := StudyStart.Add(-30 * 24 * time.Hour)
		if i%2 == 1 {
			offset := time.Duration(rng.Intn(300)) * 24 * time.Hour
			start = StudyStart.Add(offset)
		}
		p := NewProvider(pw.Name, w.Alloc, w.Clock, true, start)
		w.addProvider(p)
	}
	// Generated tail up to the scaled distinct-provider total.
	total := ScaleCount(w.Cal.NonCFProviderTotal, w.Cfg.Size)
	for i := len(w.Providers) - 1; i < total; i++ {
		start := StudyStart.Add(time.Duration(rng.Intn(320)) * 24 * time.Hour)
		if rng.Intn(2) == 0 {
			start = StudyStart.Add(-24 * time.Hour)
		}
		p := NewProvider(fmt.Sprintf("Provider%03d", i), w.Alloc, w.Clock, true, start)
		w.addProvider(p)
	}
	// Legacy registrars without HTTPS support (hosting the bulk of
	// non-adopters and the switch-away targets).
	for _, name := range []string{"LegacyDNS", "RegistrarOne", "RegistrarTwo", "SelfHosted"} {
		p := NewProvider(name, w.Alloc, w.Clock, false, time.Time{})
		w.addProvider(p)
	}
	// A pure cloud host (the AWS case): owns address space but is not a
	// DNS provider; used by the WHOIS attribution rule.
	w.Whois.RegisterOrg(whois.OrgInfo{Name: "CloudHostCo", IsCloudHost: true})
	for _, p := range w.Providers {
		w.Whois.RegisterOrg(whois.OrgInfo{Name: p.Org, IsDNSProvider: true})
	}
}

func (w *World) addProvider(p *Provider) {
	w.Providers = append(w.Providers, p)
	w.ProviderByName[p.Name] = p
	for _, addr := range p.NSAddrs {
		w.Net.RegisterDNS(addr, p)
	}
}

// buildTLDsAndRoot creates one signed TLD server per TLD in the universe
// plus the signed root zone holding their DS records.
func (w *World) buildTLDsAndRoot(rng *rand.Rand) error {
	w.RootAddr = netip.MustParseAddr("198.41.0.4")

	root := zone.New(".")
	root.SetSOA("a.root-sim.net.", "nstld.root-sim.net.", 1, 86400)
	root.Add(dnswire.RR{Name: ".", Type: dnswire.TypeNS, Class: dnswire.ClassINET, TTL: 518400,
		Data: &dnswire.NSData{Host: "a.root-sim.net."}})
	root.Add(dnswire.RR{Name: "a.root-sim.net.", Type: dnswire.TypeA, Class: dnswire.ClassINET,
		TTL: 518400, Data: &dnswire.AData{Addr: w.RootAddr}})

	tldSet := map[string]bool{}
	for _, d := range w.Tranco.Universe() {
		tldSet[dnswire.ParentName(dnswire.CanonicalName(d))] = true
	}
	// Provider infra domains live under com.
	tldSet["com."] = true
	// Iterate in sorted order: NewTLDServer consumes rng, so map-order
	// iteration would make the whole world nondeterministic per seed.
	tlds := make([]string, 0, len(tldSet))
	for tld := range tldSet {
		tlds = append(tlds, tld)
	}
	sort.Strings(tlds)

	for _, tld := range tlds {
		addr := w.Alloc.AllocV4("TLDRegistry")
		srv, err := NewTLDServer(tld, addr, w.Clock, rng)
		if err != nil {
			return err
		}
		w.TLDs[tld] = srv
		w.Net.RegisterDNS(addr, srv)
		root.Add(dnswire.RR{Name: tld, Type: dnswire.TypeNS, Class: dnswire.ClassINET,
			TTL: 172800, Data: &dnswire.NSData{Host: srv.Host}})
		root.Add(dnswire.RR{Name: srv.Host, Type: dnswire.TypeA, Class: dnswire.ClassINET,
			TTL: 172800, Data: &dnswire.AData{Addr: addr}})
		ds, err := srv.DS()
		if err != nil {
			return err
		}
		root.Add(ds)
	}
	if err := root.Sign(rng, sigInception, sigExpiration); err != nil {
		return err
	}
	w.RootZone = root
	rootKeys, _, _ := root.Lookup(".", dnswire.TypeDNSKEY)
	w.Anchor = rootKeys

	rootSrv := newRootServer(root)
	w.Net.RegisterDNS(w.RootAddr, rootSrv)
	w.Net.SetRootServers([]netip.Addr{w.RootAddr})

	// Register provider infra delegations under com.
	com := w.TLDs["com."]
	for _, p := range w.Providers {
		com.AddInfra(p)
	}
	return nil
}

// buildDomains creates the DomainState population from the Tranco universe.
func (w *World) buildDomains(rng *rand.Rand) {
	core := w.Tranco.CoreSet()
	studyDays := StudyEnd.Sub(StudyStart).Hours() / 24

	// Tail adoption window: uniform adoption dates chosen so the adopted
	// fraction rises linearly from TailAdoptAtStart to TailAdoptAtEnd
	// across the study (see DESIGN.md E1).
	rate := (w.Cal.TailAdoptAtEnd - w.Cal.TailAdoptAtStart) / studyDays // per day
	windowDays := 1.0 / rate
	windowStart := StudyStart.Add(-time.Duration(w.Cal.TailAdoptAtStart*windowDays*24) * time.Hour)

	for _, name := range w.Tranco.Universe() {
		apex := dnswire.CanonicalName(name)
		drng := rand.New(rand.NewSource(w.Cfg.Seed ^ hashName(apex)))
		d := &DomainState{
			Apex:    apex,
			TTL:     w.Cal.RecordTTL,
			HasWWW:  drng.Float64() < 0.95,
			keySeed: w.Cfg.Seed ^ hashName(apex) ^ 0x5eed,
		}
		d.OriginV4 = w.Alloc.AllocV4("Origin-" + hostingOrg(drng))
		d.OriginV6 = w.Alloc.AllocV6("Origin-" + hostingOrg(drng))
		d.AltV4 = w.Alloc.AllocV4("Origin-" + hostingOrg(drng))

		// Adoption.
		adopts := false
		if core[name] {
			adopts = drng.Float64() < w.Cal.CoreAdoptRate
			d.AdoptDay = StudyStart.Add(-24 * time.Hour)
		} else {
			adopts = true // adoption gated purely by the date
			offset := time.Duration(drng.Float64()*windowDays*24) * time.Hour
			d.AdoptDay = windowStart.Add(offset)
		}
		if !adopts {
			d.Profile = ProfileNone
			w.assignNonAdopterProvider(d, drng)
		} else {
			w.assignAdopterConfig(d, drng)
		}

		// DNSSEC state is assigned afterwards by quota (see
		// assignSpecialPopulations) so the Table 9 ratios hold exactly
		// at any scale.

		w.Domains[apex] = d
		for _, p := range d.Providers {
			p.AddDomain(d)
		}
		tld := dnswire.ParentName(apex)
		if srv, ok := w.TLDs[tld]; ok {
			srv.AddDomain(d)
		}
	}
}

func hostingOrg(rng *rand.Rand) string {
	return []string{"HostA", "HostB", "HostC", "CloudHostCo"}[rng.Intn(4)]
}

// nonCFShare returns the probability an adopter uses non-Cloudflare NS:
// the paper's 0.11%, floored so small simulations keep a meaningful
// non-CF population (documented in EXPERIMENTS.md).
func (w *World) nonCFShare() float64 {
	share := 1 - w.Cal.CloudflareShare
	expectedAdopters := w.Cal.CoreAdoptRate * float64(w.Cfg.Size)
	if expectedAdopters > 0 {
		if floor := float64(w.Cal.MinNonCFAdopters) / expectedAdopters; floor > share {
			return floor
		}
	}
	return share
}

// assignAdopterConfig picks provider + profile + parameters for an
// HTTPS-adopting domain.
func (w *World) assignAdopterConfig(d *DomainState, rng *rand.Rand) {
	r := rng.Float64()
	switch {
	case r >= w.nonCFShare():
		d.Providers = []*Provider{w.Cloudflare}
		d.Proxied = true
		d.AnycastV4 = w.cfAnycastV4(rng)
		d.AnycastV6 = w.cfAnycastV6(rng)
		if rng.Float64() < w.Cal.CFDefaultShare {
			d.Profile = ProfileCFDefault
			d.HintV4, d.HintV6 = true, true
			// ECH rides the free-plan proxied default (§4.4.1).
			d.ECH = rng.Float64() < w.Cal.ECHShareOfAdopters/(w.Cal.CloudflareShare*w.Cal.CFDefaultShare)
		} else {
			d.Profile = ProfileCFCustom
			// §E.2: customised CF domains advertise h2 (98.57%), rarely
			// h3, sometimes nothing.
			cr := rng.Float64()
			switch {
			case cr < 0.9857:
				d.ALPN = []string{"h2"}
			case cr < 0.9885:
				d.ALPN = []string{"h2", "h3"}
			}
			d.HintV4 = rng.Float64() < w.Cal.HintShareV4
			d.HintV6 = rng.Float64() < w.Cal.HintShareV6
		}
	default:
		p := w.pickNonCFProvider(rng)
		d.Providers = []*Provider{p}
		d.AnycastV4, d.AnycastV6 = d.OriginV4, d.OriginV6
		switch p.Name {
		case "Google":
			d.Profile = ProfileGoogle
			if rng.Float64() >= w.Cal.GoogleEmptyParamShare {
				d.ALPN = []string{"h2"}
				d.HintV4 = rng.Float64() < 0.3
			}
		case "GoDaddy":
			if rng.Float64() < w.Cal.GoDaddyAliasShare {
				d.Profile = ProfileGoDaddyAlias
			} else {
				d.Profile = ProfileGoDaddyService
				if rng.Float64() < 36.0/44.0 {
					d.ALPN = []string{"h2", "h3"}
				} else {
					d.ALPN = []string{"h2"}
				}
			}
		case "nexuspipe":
			d.Profile = ProfilePriorityList
		default:
			d.Profile = ProfileNonCFGeneric
			ar := rng.Float64()
			switch {
			case ar < w.Cal.NonCFNoneShare:
				// no alpn parameter
			case ar < w.Cal.NonCFNoneShare+w.Cal.NonCFH3Share:
				d.ALPN = []string{"h2", "h3"}
			case ar < w.Cal.NonCFNoneShare+w.Cal.NonCFH3Share+w.Cal.NonCFH2Share:
				d.ALPN = []string{"h2"}
			default:
				d.ALPN = []string{"http/1.1"}
			}
			d.HintV4 = rng.Float64() < 0.5
			d.HintV6 = rng.Float64() < 0.3
		}
	}
	d.WWWHTTPS = rng.Float64() < w.Cal.WWWGivenApex
	if d.HasWWW && rng.Float64() < 0.05 {
		d.WWWCNAME = true
	}
}

// cfAnycastV4 draws from a small pool of Cloudflare anycast addresses.
func (w *World) cfAnycastV4(rng *rand.Rand) netip.Addr {
	// A handful of shared anycast addresses, as in reality.
	n := rng.Intn(8)
	return netip.AddrFrom4([4]byte{104, 16, byte(132 + n), byte(229)})
}

func (w *World) cfAnycastV6(rng *rand.Rand) netip.Addr {
	n := byte(rng.Intn(8))
	return netip.AddrFrom16([16]byte{0x26, 0x06, 0x47, 0x00, 0, 0, 0, 0, 0, 0, 0, 0, 0x68, 0x10, 0x84, 0xe5 + n})
}

// pickNonCFProvider draws a non-Cloudflare HTTPS-supporting provider with
// Table 3 weighting.
func (w *World) pickNonCFProvider(rng *rand.Rand) *Provider {
	total := 0
	for _, pw := range w.Cal.NonCFWeights {
		total += pw.Count
	}
	// The generated tail shares a modest slice.
	tailWeight := total / 4
	pick := rng.Intn(total + tailWeight)
	for _, pw := range w.Cal.NonCFWeights {
		if pick < pw.Count {
			return w.ProviderByName[pw.Name]
		}
		pick -= pw.Count
	}
	// Tail providers.
	var tail []*Provider
	for _, p := range w.Providers {
		if !p.IsCloudflare && p.SupportsHTTPS && w.isTailProvider(p) {
			tail = append(tail, p)
		}
	}
	if len(tail) == 0 {
		return w.ProviderByName[w.Cal.NonCFWeights[0].Name]
	}
	return tail[rng.Intn(len(tail))]
}

func (w *World) isTailProvider(p *Provider) bool {
	for _, pw := range w.Cal.NonCFWeights {
		if p.Name == pw.Name {
			return false
		}
	}
	return true
}

// assignNonAdopterProvider hosts a non-adopting domain.
func (w *World) assignNonAdopterProvider(d *DomainState, rng *rand.Rand) {
	r := rng.Float64()
	switch {
	case r < 0.20:
		d.Providers = []*Provider{w.Cloudflare}
		d.AnycastV4 = w.cfAnycastV4(rng)
		d.AnycastV6 = w.cfAnycastV6(rng)
		// Not proxied (otherwise the default HTTPS record would exist).
	case r < 0.60:
		legacy := []string{"LegacyDNS", "RegistrarOne", "RegistrarTwo", "SelfHosted"}
		d.Providers = []*Provider{w.ProviderByName[legacy[rng.Intn(len(legacy))]]}
		d.AnycastV4, d.AnycastV6 = d.OriginV4, d.OriginV6
	default:
		d.Providers = []*Provider{w.pickNonCFProvider(rng)}
		d.AnycastV4, d.AnycastV6 = d.OriginV4, d.OriginV6
	}
}

// rootServer wraps the root zone in an authoritative handler.
type rootServer struct{ z *zone.Zone }

func newRootServer(z *zone.Zone) *rootServer { return &rootServer{z: z} }

func (r *rootServer) HandleDNS(q *dnswire.Message) *dnswire.Message {
	resp := q.Reply()
	if len(q.Question) != 1 {
		resp.RCode = dnswire.RCodeFormErr
		return resp
	}
	res := r.z.Query(q.Question[0].Name, q.Question[0].Type, q.DNSSECOK())
	resp.RCode = res.RCode
	resp.Answer = res.Answer
	resp.Authority = res.Authority
	resp.Additional = append(res.Additional, resp.Additional...)
	resp.Authoritative = !res.Referral
	return resp
}

// buildResolvers wires the two public resolvers.
func (w *World) buildResolvers() {
	w.GoogleAddr = netip.MustParseAddr("8.8.8.8")
	w.CFResolverAddr = netip.MustParseAddr("1.1.1.1")

	g := resolver.New(w.Net)
	g.Validate = true
	g.ValidateTypes = map[dnswire.Type]bool{dnswire.TypeHTTPS: true}
	g.Anchor = w.Anchor
	w.GoogleResolver = g
	w.Net.RegisterDNS(w.GoogleAddr, g)

	c := resolver.New(w.Net)
	c.Validate = true
	c.ValidateTypes = map[dnswire.Type]bool{dnswire.TypeHTTPS: true}
	c.Anchor = w.Anchor
	w.CFResolver = c
	w.Net.RegisterDNS(w.CFResolverAddr, c)
}

// Domain returns the state for an apex (accepts names with or without the
// trailing dot).
func (w *World) Domain(apex string) (*DomainState, bool) {
	d, ok := w.Domains[dnswire.CanonicalName(apex)]
	return d, ok
}

// ECHProgramActive reports whether Cloudflare's ECH programme is on at t.
func (w *World) ECHProgramActive(t time.Time) bool {
	return t.Before(ECHDisableDate)
}

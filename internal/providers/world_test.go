package providers

import (
	"testing"
	"time"

	"repro/internal/dnswire"
	"repro/internal/ech"
	"repro/internal/svcb"
)

// buildTestWorld creates a small world shared by the tests in this file.
func buildTestWorld(t *testing.T, size int) *World {
	t.Helper()
	w, err := BuildWorld(WorldConfig{Size: size, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// activeFrom returns the first time the domain's HTTPS records are served
// (both the domain must have adopted and its provider must support HTTPS).
func activeFrom(d *DomainState) time.Time {
	t := d.AdoptDay
	if len(d.Providers) > 0 && d.Providers[0].HTTPSStartDay.After(t) {
		t = d.Providers[0].HTTPSStartDay
	}
	return t
}

// findDomain locates a domain matching pred.
func findDomain(w *World, pred func(*DomainState) bool) *DomainState {
	for _, apex := range sortedApexes(w.Domains) {
		if d := w.Domains[apex]; pred(d) {
			return d
		}
	}
	return nil
}

func resolveHTTPS(t *testing.T, w *World, name string) []dnswire.RR {
	t.Helper()
	res, err := w.GoogleResolver.Resolve(name, dnswire.TypeHTTPS)
	if err != nil {
		t.Fatalf("resolving %s/HTTPS: %v", name, err)
	}
	var out []dnswire.RR
	for _, rr := range res.Answer {
		if rr.Type == dnswire.TypeHTTPS {
			out = append(out, rr)
		}
	}
	return out
}

func TestWorldResolvesCFDefaultDomain(t *testing.T) {
	w := buildTestWorld(t, 2000)
	d := findDomain(w, func(d *DomainState) bool {
		return d.Profile == ProfileCFDefault && d.Intermittent == IntermitNone &&
			len(d.MismatchEpisodes) == 0 && !d.ApexCNAME
	})
	if d == nil {
		t.Fatal("no CF-default domain generated")
	}
	rrs := resolveHTTPS(t, w, d.Apex)
	if len(rrs) != 1 {
		t.Fatalf("HTTPS records = %d", len(rrs))
	}
	data := rrs[0].Data.(*dnswire.SVCBData)
	if data.Priority != 1 || data.Target != "." {
		t.Errorf("CF default shape wrong: %v", data)
	}
	alpn, ok := data.Params.ALPN()
	if !ok || len(alpn) < 2 {
		t.Errorf("CF default alpn = %v", alpn)
	}
	if _, ok := data.Params.IPv4Hints(); !ok {
		t.Error("CF default missing ipv4hint")
	}
	if _, ok := data.Params.IPv6Hints(); !ok {
		t.Error("CF default missing ipv6hint")
	}
}

func TestWorldAdoptionRateNearCalibration(t *testing.T) {
	w := buildTestWorld(t, 2000)
	list := w.Tranco.ListFor(StudyStart)
	adopters := 0
	for _, name := range list {
		d, ok := w.Domain(name)
		if !ok {
			t.Fatalf("listed domain %s missing from world", name)
		}
		if d.Profile != ProfileNone && !StudyStart.Before(d.AdoptDay) {
			adopters++
		}
	}
	rate := float64(adopters) / float64(len(list))
	if rate < 0.14 || rate > 0.30 {
		t.Errorf("day-one adoption rate = %.3f, want ≈0.20", rate)
	}
}

func TestWorldCloudflareDominance(t *testing.T) {
	w := buildTestWorld(t, 2000)
	cf, total := 0, 0
	for _, d := range w.Domains {
		if d.Profile == ProfileNone {
			continue
		}
		total++
		if d.Providers[0].IsCloudflare {
			cf++
		}
	}
	// The scale floor (MinNonCFAdopters) inflates the non-CF share at
	// small sizes; the paper's 99.89% emerges at ≳90k domains.
	share := float64(cf) / float64(total)
	if share < 0.85 {
		t.Errorf("Cloudflare share = %.4f, want dominant (≈0.999 at full scale)", share)
	}
}

func TestWorldECHTimeline(t *testing.T) {
	w := buildTestWorld(t, 2000)
	d := findDomain(w, func(d *DomainState) bool {
		return d.Profile == ProfileCFDefault && d.ECH && d.Intermittent == IntermitNone && !d.ApexCNAME
	})
	if d == nil {
		t.Fatal("no ECH domain generated")
	}
	// Before the shutdown: ech param present and parses.
	w.Clock.Set(time.Date(2023, 7, 1, 12, 0, 0, 0, time.UTC))
	rrs := resolveHTTPS(t, w, d.Apex)
	if len(rrs) == 0 {
		t.Fatal("no HTTPS record")
	}
	echBytes, ok := rrs[0].Data.(*dnswire.SVCBData).Params.ECH()
	if !ok {
		t.Fatal("ech param missing before shutdown")
	}
	configs, err := ech.UnmarshalList(echBytes)
	if err != nil {
		t.Fatalf("ech config list malformed: %v", err)
	}
	sel, err := ech.SelectConfig(configs)
	if err != nil {
		t.Fatal(err)
	}
	if sel.PublicName != "cloudflare-ech.com" {
		t.Errorf("public name = %q", sel.PublicName)
	}
	// After the shutdown (October 5th, 2023): gone.
	w.Clock.Set(time.Date(2023, 10, 6, 12, 0, 0, 0, time.UTC))
	w.GoogleResolver.FlushCache()
	rrs = resolveHTTPS(t, w, d.Apex)
	if len(rrs) == 0 {
		t.Fatal("HTTPS record gone after ECH shutdown")
	}
	if _, ok := rrs[0].Data.(*dnswire.SVCBData).Params.ECH(); ok {
		t.Error("ech param still present after shutdown")
	}
}

func TestWorldECHKeyRotationVisibleInDNS(t *testing.T) {
	w := buildTestWorld(t, 1000)
	d := findDomain(w, func(d *DomainState) bool {
		return d.ECH && d.Intermittent == IntermitNone && !d.ApexCNAME
	})
	if d == nil {
		t.Fatal("no ECH domain")
	}
	at := func(ts time.Time) []byte {
		w.Clock.Set(ts)
		w.GoogleResolver.FlushCache()
		rrs := resolveHTTPS(t, w, d.Apex)
		if len(rrs) == 0 {
			t.Fatal("no HTTPS record")
		}
		v, _ := rrs[0].Data.(*dnswire.SVCBData).Params.ECH()
		return v
	}
	t0 := time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC)
	a := at(t0)
	b := at(t0.Add(10 * time.Minute))
	c := at(t0.Add(3 * time.Hour))
	if !ech.ConfigsEqual(a, b) {
		t.Error("ECH config changed within rotation period")
	}
	if ech.ConfigsEqual(a, c) {
		t.Error("ECH config unchanged after rotation period")
	}
}

func TestWorldDNSSECChain(t *testing.T) {
	w := buildTestWorld(t, 2000)
	secure := findDomain(w, func(d *DomainState) bool {
		return d.Profile != ProfileNone && d.Signed && d.DSUploaded &&
			d.Intermittent == IntermitNone && !d.ApexCNAME
	})
	insecure := findDomain(w, func(d *DomainState) bool {
		return d.Profile != ProfileNone && d.Signed && !d.DSUploaded &&
			d.Intermittent == IntermitNone && !d.ApexCNAME
	})
	if secure == nil || insecure == nil {
		t.Fatal("signed domains not generated")
	}
	res, err := w.GoogleResolver.Resolve(secure.Apex, dnswire.TypeHTTPS)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AuthenticatedData {
		t.Errorf("AD bit not set for %s (signed, DS uploaded)", secure.Apex)
	}
	if len(res.Sigs) == 0 {
		t.Error("RRSIG missing for signed domain")
	}
	res, err = w.GoogleResolver.Resolve(insecure.Apex, dnswire.TypeHTTPS)
	if err != nil {
		t.Fatal(err)
	}
	if res.AuthenticatedData {
		t.Errorf("AD bit set for %s (missing DS)", insecure.Apex)
	}
	if len(res.Sigs) == 0 {
		t.Error("RRSIG should be served even when DS is missing")
	}
}

func TestWorldIntermittentProxiedToggle(t *testing.T) {
	w := buildTestWorld(t, 2000)
	d := findDomain(w, func(d *DomainState) bool {
		return d.Intermittent == IntermitProxiedToggle && len(d.OffEpisodes) > 0 && !d.ApexCNAME
	})
	if d == nil {
		t.Fatal("no proxied-toggle domain")
	}
	ep := d.OffEpisodes[0]
	w.Clock.Set(ep.From.Add(12 * time.Hour))
	w.GoogleResolver.FlushCache()
	if rrs := resolveHTTPS(t, w, d.Apex); len(rrs) != 0 {
		t.Error("HTTPS served during off episode")
	}
	w.Clock.Set(ep.To.Add(12 * time.Hour))
	w.GoogleResolver.FlushCache()
	if rrs := resolveHTTPS(t, w, d.Apex); len(rrs) == 0 {
		t.Error("HTTPS missing after off episode")
	}
}

func TestWorldSwitchAwayLosesHTTPS(t *testing.T) {
	w := buildTestWorld(t, 2000)
	d := findDomain(w, func(d *DomainState) bool {
		return d.Intermittent == IntermitSwitchAway && !d.ApexCNAME
	})
	if d == nil {
		t.Fatal("no switch-away domain")
	}
	w.Clock.Set(d.SwitchDay.Add(-24 * time.Hour))
	w.GoogleResolver.FlushCache()
	if rrs := resolveHTTPS(t, w, d.Apex); len(rrs) == 0 {
		t.Error("HTTPS missing before switch")
	}
	w.Clock.Set(d.SwitchDay.Add(24 * time.Hour))
	w.GoogleResolver.FlushCache()
	if rrs := resolveHTTPS(t, w, d.Apex); len(rrs) != 0 {
		t.Error("HTTPS still served after switching to non-supporting provider")
	}
	// NS records now show the new provider.
	res, err := w.GoogleResolver.Resolve(d.Apex, dnswire.TypeNS)
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range res.Answer {
		if ns, ok := rr.Data.(*dnswire.NSData); ok {
			if dnswire.IsSubdomain(ns.Host, w.Cloudflare.InfraDomain) {
				t.Error("NS still points at Cloudflare after switch")
			}
		}
	}
}

func TestWorldMismatchSchedule(t *testing.T) {
	w := buildTestWorld(t, 2000)
	d := findDomain(w, func(d *DomainState) bool {
		return len(d.MismatchEpisodes) > 0 && d.Intermittent == IntermitNone &&
			d.Profile == ProfileCFDefault && !d.ApexCNAME &&
			d.MismatchEpisodes[0].To.Before(StudyEnd)
	})
	if d == nil {
		t.Fatal("no mismatch domain")
	}
	ep := d.MismatchEpisodes[0]
	mid := ep.From.Add(ep.To.Sub(ep.From) / 2)
	if d.CurrentV4(mid) == d.HintV4Addr(mid) {
		t.Error("addresses match during mismatch episode")
	}
	after := ep.To.Add(24 * time.Hour)
	if d.InMismatch(after) {
		// Could be a second episode; only check when clear of all.
		if !inAny(d.MismatchEpisodes, after) {
			t.Error("InMismatch wrong")
		}
	} else if d.CurrentV4(after) != d.HintV4Addr(after) {
		t.Error("addresses differ outside mismatch episode")
	}
	// Connectivity probe honours reachability flags during the episode.
	w.Clock.Set(mid)
	errHint := w.ProbeTLS(d.Apex, d.HintV4Addr(mid))
	errA := w.ProbeTLS(d.Apex, d.CurrentV4(mid))
	if d.HintReachable && errHint != nil {
		t.Errorf("hint address should be reachable: %v", errHint)
	}
	if !d.HintReachable && errHint == nil {
		t.Error("hint address should be unreachable")
	}
	if d.AReachable && errA != nil {
		t.Errorf("A address should be reachable: %v", errA)
	}
	if !d.AReachable && errA == nil {
		t.Error("A address should be unreachable")
	}
}

func TestWorldGoDaddyAliasShape(t *testing.T) {
	w := buildTestWorld(t, 4000)
	d := findDomain(w, func(d *DomainState) bool { return d.Profile == ProfileGoDaddyAlias })
	if d == nil {
		t.Skip("no GoDaddy alias domain at this scale/seed")
	}
	w.Clock.Set(activeFrom(d).Add(24 * time.Hour))
	rrs := resolveHTTPS(t, w, d.Apex)
	if len(rrs) == 0 {
		t.Fatal("no HTTPS record")
	}
	data := rrs[0].Data.(*dnswire.SVCBData)
	if !data.AliasMode() || data.Target == "." {
		t.Errorf("GoDaddy record not AliasMode-to-endpoint: %v", data)
	}
}

func TestWorldWWWRecords(t *testing.T) {
	w := buildTestWorld(t, 2000)
	d := findDomain(w, func(d *DomainState) bool {
		return d.Profile == ProfileCFDefault && d.HasWWW && d.WWWHTTPS && !d.WWWCNAME &&
			d.Intermittent == IntermitNone && !d.ApexCNAME
	})
	if d == nil {
		t.Fatal("no www-enabled domain")
	}
	rrs := resolveHTTPS(t, w, d.WWWName())
	if len(rrs) != 1 {
		t.Fatalf("www HTTPS records = %d", len(rrs))
	}
	// A record resolution for www too.
	res, err := w.GoogleResolver.Resolve(d.WWWName(), dnswire.TypeA)
	if err != nil || len(res.Answer) == 0 {
		t.Errorf("www A resolution failed: %v", err)
	}
}

func TestWorldApexCNAMEChase(t *testing.T) {
	w := buildTestWorld(t, 2000)
	d := findDomain(w, func(d *DomainState) bool { return d.ApexCNAME })
	if d == nil {
		t.Fatal("no apex-CNAME domain")
	}
	res, err := w.GoogleResolver.Resolve(d.Apex, dnswire.TypeHTTPS)
	if err != nil {
		t.Fatal(err)
	}
	var hasCNAME bool
	for _, rr := range res.Answer {
		if rr.Type == dnswire.TypeCNAME {
			hasCNAME = true
		}
	}
	if !hasCNAME {
		t.Error("apex CNAME not returned")
	}
}

func TestWorldWhoisAttribution(t *testing.T) {
	w := buildTestWorld(t, 1000)
	for _, p := range w.Providers[:3] {
		org := w.Whois.AttributeNameServer(p.NSAddrs[0])
		if org != p.Org {
			t.Errorf("attribution for %s NS = %q, want %q", p.Name, org, p.Org)
		}
	}
}

func TestWorldPriorityListPathology(t *testing.T) {
	w := buildTestWorld(t, 2000)
	d := findDomain(w, func(d *DomainState) bool { return d.Profile == ProfilePriorityList })
	if d == nil {
		t.Skip("no priority-list domain at this scale/seed")
	}
	w.Clock.Set(activeFrom(d).Add(24 * time.Hour))
	rrs := resolveHTTPS(t, w, d.Apex)
	if len(rrs) != 12 {
		t.Fatalf("priority-list records = %d, want 12", len(rrs))
	}
	for _, rr := range rrs {
		data := rr.Data.(*dnswire.SVCBData)
		if _, ok := data.Params.Get(svcb.KeyPort); !ok {
			t.Error("priority-list record missing port")
		}
	}
}

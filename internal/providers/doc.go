// Package providers builds and serves the simulated server-side HTTPS-RR
// ecosystem: DNS provider behaviour models (Cloudflare's proxied default
// configuration, GoDaddy's AliasMode records, Google's empty-SvcParams
// ServiceMode, and a long tail of others), the per-domain configuration
// schedules (adoption, intermittency, provider switches, IP-hint drift,
// DNSSEC, ECH), and lightweight synthesized authoritative servers that
// answer the scanner's queries over the simnet.
//
// Every rate below is calibrated to a number reported in the paper
// (section references inline); absolute counts from the paper's 1M-domain
// population are scaled by Size/1M with a floor of 1 so the qualitative
// populations survive at small simulation scales.
package providers

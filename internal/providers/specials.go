package providers

import (
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"repro/internal/simnet"
)

// assignSpecialPopulations runs the second generation pass: absolute-count
// populations (intermittency kinds, IP-hint mismatch schedules, non-CF ECH,
// configuration pathologies) drawn from shuffled eligibility lists so they
// are deterministic for a seed and scale correctly.
func (w *World) assignSpecialPopulations(rng *rand.Rand) {
	// Only domains that adopted before the NS measurement window are
	// eligible: the paper observed these behaviours among domains that
	// already had HTTPS records.
	var cfAdopters, nonCFAdopters []*DomainState
	for _, apex := range sortedApexes(w.Domains) {
		d := w.Domains[apex]
		if d.Profile == ProfileNone || d.AdoptDay.After(NSScanStart) {
			continue
		}
		if d.Providers[0].IsCloudflare {
			cfAdopters = append(cfAdopters, d)
		} else {
			nonCFAdopters = append(nonCFAdopters, d)
		}
	}
	shuffle(rng, cfAdopters)
	shuffle(rng, nonCFAdopters)

	w.assignIntermittency(rng, cfAdopters)
	w.assignMismatches(rng, cfAdopters)
	w.assignNonCFECH(rng, nonCFAdopters)
	w.assignPathologies(rng, cfAdopters, nonCFAdopters)
	w.assignDNSSECQuotas(rng)
}

// assignDNSSECQuotas assigns signing and DS-upload state by exact quota per
// Table 9's three populations, so the secure/insecure ratios hold at any
// simulation scale.
func (w *World) assignDNSSECQuotas(rng *rand.Rand) {
	var cf, nonCF, none []*DomainState
	for _, apex := range sortedApexes(w.Domains) {
		d := w.Domains[apex]
		switch {
		case d.Profile == ProfileNone || d.AdoptDay.After(StudyEnd):
			none = append(none, d)
		case d.Providers[0].IsCloudflare:
			cf = append(cf, d)
		default:
			nonCF = append(nonCF, d)
		}
	}
	assign := func(pool []*DomainState, pSigned, pInsecure float64) {
		shuffle(rng, pool)
		signed := int(float64(len(pool))*pSigned + 0.5)
		insecure := int(float64(signed)*pInsecure + 0.5)
		for i := 0; i < signed && i < len(pool); i++ {
			pool[i].Signed = true
			pool[i].DSUploaded = i >= insecure
		}
	}
	assign(cf, w.Cal.SignedShareCF, w.Cal.CFInsecureShare)
	assign(nonCF, w.Cal.SignedShareNonCF, w.Cal.NonCFInsecureShare)
	assign(none, w.Cal.SignedShareNoHTTPS, w.Cal.NoHTTPSInsecureShare)
}

func sortedApexes(m map[string]*DomainState) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func shuffle(rng *rand.Rand, ds []*DomainState) {
	rng.Shuffle(len(ds), func(i, j int) { ds[i], ds[j] = ds[j], ds[i] })
}

// take removes and returns up to n entries from the front of the list.
func take(ds *[]*DomainState, n int) []*DomainState {
	if n > len(*ds) {
		n = len(*ds)
	}
	out := (*ds)[:n]
	*ds = (*ds)[n:]
	return out
}

// randomDay returns a uniformly drawn day within [from, to).
func randomDay(rng *rand.Rand, from, to time.Time) time.Time {
	days := int(to.Sub(from).Hours() / 24)
	if days <= 0 {
		return from
	}
	return from.Add(time.Duration(rng.Intn(days)) * 24 * time.Hour)
}

// assignIntermittency reproduces the §4.2.3 populations: proxied toggles,
// multi-provider mixes, switch-aways, and transient NS loss.
func (w *World) assignIntermittency(rng *rand.Rand, pool []*DomainState) {
	adopters := len(pool)
	totalIntermittent := int(float64(adopters) * w.Cal.IntermittentShare)
	if totalIntermittent < 4 {
		totalIntermittent = 4
	}
	sameNS := int(float64(totalIntermittent) * w.Cal.IntermittentSameNSShare)
	switchAway := ScaleCount(w.Cal.SwitchAwayCount, w.Cfg.Size)
	multiMix := ScaleCount(w.Cal.MultiProviderMixCount, w.Cfg.Size)
	noNS := ScaleCount(20, w.Cfg.Size)
	multiNS := totalIntermittent - sameNS - switchAway - noNS
	if multiNS < multiMix {
		multiNS = multiMix
	}
	// Keep the NS-change population observable at sparse scan cadences.
	if multiNS < 4 {
		multiNS = 4
	}

	// Proxied toggles: same Cloudflare NS, HTTPS off during episodes.
	for _, d := range take(&pool, sameNS) {
		d.Intermittent = IntermitProxiedToggle
		for i := 0; i < 1+rng.Intn(3); i++ {
			from := randomDay(rng, NSScanStart, StudyEnd)
			d.OffEpisodes = append(d.OffEpisodes, interval{
				From: from,
				To:   from.Add(time.Duration(1+rng.Intn(10)) * 24 * time.Hour),
			})
		}
	}

	// Multi-provider mixes: Cloudflare plus a non-supporting provider;
	// which one a resolver hits rotates daily.
	legacy := w.ProviderByName["LegacyDNS"]
	for _, d := range take(&pool, multiNS) {
		d.Intermittent = IntermitMultiProvider
		d.Providers = append(d.Providers, legacy)
		legacy.AddDomain(d)
	}

	// Switch-aways: move from Cloudflare to a non-HTTPS registrar mid-study.
	reg := w.ProviderByName["RegistrarOne"]
	for _, d := range take(&pool, switchAway) {
		d.Intermittent = IntermitSwitchAway
		d.SwitchDay = randomDay(rng, NSScanStart, StudyEnd)
		d.Providers = append(d.Providers, reg)
		reg.AddDomain(d)
	}

	// Transient NS loss (episodes long enough to be visible at sampled
	// scan cadences).
	for _, d := range take(&pool, noNS) {
		d.Intermittent = IntermitNoNS
		from := randomDay(rng, NSScanStart, StudyEnd.Add(-21*24*time.Hour))
		d.NoNSEpisodes = append(d.NoNSEpisodes, interval{
			From: from, To: from.Add(time.Duration(10+rng.Intn(11)) * 24 * time.Hour)})
	}
}

// assignMismatches reproduces the §4.3.5/§E.3 IP-hint drift populations.
func (w *World) assignMismatches(rng *rand.Rand, pool []*DomainState) {
	adopters := len(pool) + 1
	early := int(float64(adopters) * w.Cal.EarlyMismatchShare)
	late := int(float64(adopters) * w.Cal.LateMismatchShare * 10) // episodes spread over ~10 windows
	if late < 8 {
		late = 8
	}
	persistent := ScaleCount(w.Cal.PersistentMismatchCount, w.Cfg.Size)

	episode := func(d *DomainState, from time.Time) {
		days := 1 + int(rng.ExpFloat64()*w.Cal.MismatchMeanDays)
		if days > 30 {
			days = 30
		}
		d.MismatchEpisodes = append(d.MismatchEpisodes, interval{
			From: from, To: from.Add(time.Duration(days) * 24 * time.Hour)})
	}
	reach := func(d *DomainState) {
		d.HintReachable, d.AReachable = true, true
		if rng.Float64() < w.Cal.HintUnreachableShare {
			if rng.Float64() < w.Cal.HintOnlyReachableShare {
				d.AReachable = false // only the hint address answers
			} else {
				d.HintReachable = false // only the A record answers
			}
		}
	}

	// Early bulk (before the June 19th fix).
	for _, d := range take(&pool, early) {
		episode(d, randomDay(rng, StudyStart, HintFixDate.Add(-48*time.Hour)))
		reach(d)
	}
	// Steady trickle afterwards.
	for _, d := range take(&pool, late) {
		for i := 0; i < 1+rng.Intn(3); i++ {
			episode(d, randomDay(rng, HintFixDate, StudyEnd))
		}
		reach(d)
	}
	// Persistent (the cf-ns China-network domains).
	for _, d := range take(&pool, persistent) {
		d.MismatchEpisodes = []interval{{From: StudyStart.Add(-24 * time.Hour), To: StudyEnd.Add(48 * time.Hour)}}
		d.HintReachable, d.AReachable = true, true
	}
	// Probe-window population: the §4.3.5 connectivity experiment ran
	// Jan 24 – Mar 31, 2024 and found 317 distinct mismatched domains;
	// plant a floored scaled population with episodes inside that window
	// so the experiment stays meaningful at small simulation scales.
	probeStart := time.Date(2024, 1, 24, 0, 0, 0, 0, time.UTC)
	probePop := ScaleCount(317, w.Cfg.Size)
	if probePop < 12 {
		probePop = 12
	}
	for _, d := range take(&pool, probePop) {
		for i := 0; i < 1+rng.Intn(2); i++ {
			episode(d, randomDay(rng, probeStart, StudyEnd.Add(-72*time.Hour)))
		}
		reach(d)
	}
}

// assignNonCFECH enrols the scaled absolute count of non-Cloudflare domains
// whose ECH configs nevertheless point at Cloudflare's client-facing server
// (§4.4.1).
func (w *World) assignNonCFECH(rng *rand.Rand, pool []*DomainState) {
	n := ScaleCount(w.Cal.NonCFECHApex, w.Cfg.Size)
	for _, d := range take(&pool, n) {
		d.ECH = true
		// Their provider serves the CF config list.
		for _, p := range d.Providers {
			if p.ECHManager == nil {
				p.ECHManager = w.ECHKeys
				p.ECHProgramEnd = ECHDisableDate
				p.ECHPublicName = "cloudflare-ech.com"
			}
		}
	}
}

// assignPathologies plants the §E.1 configuration oddities.
func (w *World) assignPathologies(rng *rand.Rand, cf, nonCF []*DomainState) {
	for _, d := range take(&nonCF, ScaleCount(w.Cal.AliasSelfTargetCount, w.Cfg.Size)) {
		d.Profile = ProfileAliasSelf
	}
	for _, d := range take(&nonCF, ScaleCount(w.Cal.ServiceNoParamsCount, w.Cfg.Size)) {
		d.Profile = ProfileServiceNoParams
		d.ALPN = nil
	}
	for _, d := range take(&nonCF, ScaleCount(w.Cal.PriorityListCount, w.Cfg.Size)) {
		d.Profile = ProfilePriorityList
	}
	for _, d := range take(&cf, ScaleCount(w.Cal.CNAMEApexCount, w.Cfg.Size)) {
		d.ApexCNAME = true
		d.WWWCNAME = false // the two would alias each other in a loop
		d.HasWWW = true
		d.WWWHTTPS = true
	}
}

// ProbeTLS models the §4.3.5 connectivity experiment: an OpenSSL-style TLS
// handshake attempt from the scanner to addr:443 for the given domain. It
// consults the domain's reachability schedule (during a mismatch episode one
// side may be down) and returns nil on success.
func (w *World) ProbeTLS(apex string, addr netip.Addr) error {
	return w.ProbeTLSAt(apex, addr, w.Clock.Now())
}

// ProbeTLSAt is ProbeTLS evaluated at an explicit virtual time, for per-day
// scan contexts that probe several days concurrently against one world.
func (w *World) ProbeTLSAt(apex string, addr netip.Addr, now time.Time) error {
	d, ok := w.Domain(apex)
	if !ok {
		return simnet.ErrNoService
	}
	if d.InMismatch(now) {
		hintAddr := d.HintV4Addr(now)
		aAddr := d.CurrentV4(now)
		switch addr {
		case hintAddr:
			if !d.HintReachable {
				return simnet.ErrUnreachable
			}
			return nil
		case aAddr:
			if !d.AReachable {
				return simnet.ErrUnreachable
			}
			return nil
		}
		return simnet.ErrUnreachable
	}
	// Outside mismatch episodes every published address serves.
	if addr == d.CurrentV4(now) || addr == d.HintV4Addr(now) ||
		addr == d.OriginV4 || addr == d.AnycastV4 {
		return nil
	}
	return simnet.ErrUnreachable
}

package providers

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"time"

	"repro/internal/dnssec"
	"repro/internal/dnswire"
	"repro/internal/svcb"
)

// HTTPSProfile selects how a domain's HTTPS records are shaped, mirroring
// the configuration clusters the paper observes per provider.
type HTTPSProfile int

// Profiles.
const (
	// ProfileNone: the domain publishes no HTTPS records.
	ProfileNone HTTPSProfile = iota
	// ProfileCFDefault: Cloudflare's untouched proxied default:
	// "1 . alpn=h2,h3 ipv4hint=<anycast> ipv6hint=<anycast>" (§4.3.1).
	ProfileCFDefault
	// ProfileCFCustom: a Cloudflare-hosted domain with customised records.
	ProfileCFCustom
	// ProfileGoogle: ServiceMode, TargetName ".", usually no SvcParams
	// (Table 5).
	ProfileGoogle
	// ProfileGoDaddyAlias: AliasMode to an alternative endpoint (Table 5).
	ProfileGoDaddyAlias
	// ProfileGoDaddyService: the GoDaddy ServiceMode minority (h2/h3 +
	// both hints).
	ProfileGoDaddyService
	// ProfileNonCFGeneric: other providers with the §4.3.4 alpn mix.
	ProfileNonCFGeneric
	// ProfileAliasSelf: the §E.1 pathology — AliasMode with "." target.
	ProfileAliasSelf
	// ProfileServiceNoParams: ServiceMode with an empty SvcParams (§E.1).
	ProfileServiceNoParams
	// ProfilePriorityList: the nexuspipe pattern — twelve records with
	// priorities 1..12, each with a port (§E.1).
	ProfilePriorityList
)

// IntermittencyKind classifies why a domain's HTTPS records come and go
// (§4.2.3).
type IntermittencyKind int

// Intermittency kinds.
const (
	IntermitNone IntermittencyKind = iota
	// IntermitProxiedToggle: same Cloudflare NS, proxied option toggled.
	IntermitProxiedToggle
	// IntermitMultiProvider: a provider mix where not every provider
	// supports HTTPS; which one the resolver hits varies by day.
	IntermitMultiProvider
	// IntermitSwitchAway: the domain moved from Cloudflare to a non-CF
	// provider and lost its records.
	IntermitSwitchAway
	// IntermitNoNS: the domain transiently loses its NS records entirely.
	IntermitNoNS
)

// interval is a half-open time range [From, To).
type interval struct{ From, To time.Time }

func (iv interval) contains(t time.Time) bool {
	return !t.Before(iv.From) && t.Before(iv.To)
}

func inAny(eps []interval, t time.Time) bool {
	for _, iv := range eps {
		if iv.contains(t) {
			return true
		}
	}
	return false
}

// DomainState is the compact generative configuration of one apex domain.
// Authoritative answers are synthesized from it on demand, which keeps a
// 10^5-domain world cheap in memory.
type DomainState struct {
	Apex string // canonical, e.g. "site000123.com."

	// Addresses. Origin* are the customer's own servers; Anycast* are the
	// provider proxy addresses served when the domain is proxied.
	OriginV4  netip.Addr
	OriginV6  netip.Addr
	AnycastV4 netip.Addr
	AnycastV6 netip.Addr
	// AltV4 is the address the A record moves to during an IP-hint
	// mismatch episode (the hint keeps pointing at the old address).
	AltV4 netip.Addr

	// Providers in priority order. Usually one; multi-provider mixes and
	// switch-away domains carry more with schedule fields below.
	Providers []*Provider
	// SwitchDay, when set, moves the domain from Providers[0] to
	// Providers[1] for good.
	SwitchDay time.Time
	// NoNSEpisodes are windows where the domain has no NS records at all.
	NoNSEpisodes []interval

	// Adoption and intermittency.
	AdoptDay     time.Time
	Profile      HTTPSProfile
	Intermittent IntermittencyKind
	OffEpisodes  []interval // proxied-toggle off windows

	HasWWW   bool
	WWWHTTPS bool
	// WWWCNAME makes www a CNAME to the apex.
	WWWCNAME bool
	// ApexCNAME makes the apex answer with an (illegal) CNAME to www.
	ApexCNAME bool

	// Parameters.
	ECH     bool // participates in the provider ECH programme
	HintV4  bool
	HintV6  bool
	ALPN    []string // nil means no alpn parameter
	Proxied bool     // Cloudflare proxied toggle state (when on, A serves anycast)
	TTL     uint32

	// IP-hint mismatch schedule (§4.3.5): during an episode the A record
	// serves AltV4 while ipv4hint still carries the pre-move address.
	MismatchEpisodes []interval
	// During a mismatch, which side still accepts TLS connections.
	HintReachable bool
	AReachable    bool

	// DNSSEC.
	Signed     bool
	DSUploaded bool

	keyOnce sync.Once
	ksk     *dnssec.KeyPair
	zsk     *dnssec.KeyPair
	keySeed int64

	sigMu    sync.Mutex
	sigCache map[string]dnswire.RR
}

// WWWName returns the www subdomain name.
func (d *DomainState) WWWName() string { return "www." + d.Apex }

// keys lazily generates the domain's signing keys (deterministic per seed).
func (d *DomainState) keys() (*dnssec.KeyPair, *dnssec.KeyPair) {
	d.keyOnce.Do(func() {
		rng := rand.New(rand.NewSource(d.keySeed))
		d.ksk, _ = dnssec.GenerateKey(rng, d.Apex, true)
		d.zsk, _ = dnssec.GenerateKey(rng, d.Apex, false)
	})
	return d.ksk, d.zsk
}

// KSK exposes the key-signing key (used by the TLD server for DS records).
func (d *DomainState) KSK() *dnssec.KeyPair {
	ksk, _ := d.keys()
	return ksk
}

// ProvidersAt returns the provider list serving the domain at time t, in
// the order a resolver would try them. Multi-provider domains rotate daily,
// modelling public resolvers' server-selection variability (§4.2.3).
func (d *DomainState) ProvidersAt(t time.Time) []*Provider {
	if inAny(d.NoNSEpisodes, t) {
		return nil
	}
	if !d.SwitchDay.IsZero() && !t.Before(d.SwitchDay) && len(d.Providers) > 1 {
		return d.Providers[1:2]
	}
	ps := d.Providers
	if d.Intermittent == IntermitMultiProvider && len(ps) > 1 {
		// The domain drifts between provider arrangements day to day:
		// primary only, secondary-first, or primary-first. Which provider
		// a resolver reaches first determines whether HTTPS records are
		// served (§4.2.3), and the NS set itself changes across days.
		switch int(t.Unix()/86400) % 3 {
		case 0:
			return ps[:1]
		case 1:
			out := make([]*Provider, 0, len(ps))
			out = append(out, ps[1:]...)
			return append(out, ps[0])
		default:
			return ps
		}
	}
	if !d.SwitchDay.IsZero() && len(d.Providers) > 1 {
		return d.Providers[:1]
	}
	return ps
}

// HTTPSPublished reports whether the domain's HTTPS records exist in the
// zone data served by provider p at time t.
func (d *DomainState) HTTPSPublished(t time.Time, p *Provider) bool {
	if d.Profile == ProfileNone || t.Before(d.AdoptDay) {
		return false
	}
	if p != nil && (!p.SupportsHTTPS || t.Before(p.HTTPSStartDay)) {
		return false
	}
	if d.Intermittent == IntermitProxiedToggle && inAny(d.OffEpisodes, t) {
		return false
	}
	return true
}

// InMismatch reports whether t falls inside an IP-hint mismatch episode.
func (d *DomainState) InMismatch(t time.Time) bool {
	return inAny(d.MismatchEpisodes, t)
}

// CurrentV4 returns the address served in the apex A record at time t.
func (d *DomainState) CurrentV4(t time.Time) netip.Addr {
	if d.Proxied {
		if d.InMismatch(t) {
			return d.AltV4
		}
		return d.AnycastV4
	}
	if d.InMismatch(t) {
		return d.AltV4
	}
	return d.OriginV4
}

// HintV4Addr returns the address published in ipv4hint at time t: during a
// mismatch episode the hint lags behind the A record.
func (d *DomainState) HintV4Addr(t time.Time) netip.Addr {
	if d.Proxied {
		return d.AnycastV4
	}
	return d.OriginV4
}

// ECHActive reports whether the ech parameter is published at t: the
// provider programme must be running (Cloudflare disabled it globally on
// 2023-10-05) and the domain enrolled.
func (d *DomainState) ECHActive(t time.Time, echProgramActive bool) bool {
	return d.ECH && echProgramActive
}

// BuildHTTPSRecords synthesizes the HTTPS RRset for owner (the apex or its
// www name) at time t. echList is the provider's current ECHConfigList
// (nil when the programme is off). Returns nil when no records exist.
func (d *DomainState) BuildHTTPSRecords(owner string, t time.Time, echList []byte) []dnswire.RR {
	owner = dnswire.CanonicalName(owner)
	isWWW := owner != d.Apex
	if isWWW && !d.WWWHTTPS {
		return nil
	}
	mk := func(prio uint16, target string, params svcb.Params) dnswire.RR {
		return dnswire.RR{Name: owner, Type: dnswire.TypeHTTPS, Class: dnswire.ClassINET,
			TTL: d.TTL, Data: &dnswire.SVCBData{Priority: prio, Target: target, Params: params}}
	}
	withHints := func(ps *svcb.Params) {
		if d.HintV4 {
			_ = ps.SetIPv4Hints([]netip.Addr{d.HintV4Addr(t)})
		}
		if d.HintV6 {
			_ = ps.SetIPv6Hints([]netip.Addr{d.AnycastV6})
		}
	}
	switch d.Profile {
	case ProfileCFDefault:
		var ps svcb.Params
		alpn := []string{"h2", "h3"}
		if t.Before(H3Draft29SunsetDate) {
			alpn = append(alpn, "h3-29")
		}
		_ = ps.SetALPN(alpn)
		withHints(&ps)
		if echList != nil {
			ps.SetECH(echList)
		}
		return []dnswire.RR{mk(1, ".", ps)}
	case ProfileCFCustom, ProfileNonCFGeneric:
		var ps svcb.Params
		if len(d.ALPN) > 0 {
			_ = ps.SetALPN(d.ALPN)
		}
		withHints(&ps)
		if echList != nil {
			ps.SetECH(echList)
		}
		return []dnswire.RR{mk(1, ".", ps)}
	case ProfileGoogle:
		var ps svcb.Params
		if len(d.ALPN) > 0 {
			_ = ps.SetALPN(d.ALPN)
			if d.HintV4 {
				_ = ps.SetIPv4Hints([]netip.Addr{d.OriginV4})
			}
		}
		return []dnswire.RR{mk(1, ".", ps)}
	case ProfileGoDaddyAlias:
		return []dnswire.RR{mk(0, "redirect."+d.Providers[0].InfraDomain, nil)}
	case ProfileGoDaddyService:
		var ps svcb.Params
		_ = ps.SetALPN(d.ALPN)
		_ = ps.SetIPv4Hints([]netip.Addr{d.OriginV4})
		_ = ps.SetIPv6Hints([]netip.Addr{d.OriginV6})
		return []dnswire.RR{mk(1, ".", ps)}
	case ProfileAliasSelf:
		return []dnswire.RR{mk(0, ".", nil)}
	case ProfileServiceNoParams:
		return []dnswire.RR{mk(1, ".", nil)}
	case ProfilePriorityList:
		rrs := make([]dnswire.RR, 0, 12)
		for prio := uint16(1); prio <= 12; prio++ {
			var ps svcb.Params
			ps.SetPort(8000 + prio)
			rrs = append(rrs, mk(prio, "geo-routing.nexuspipe-sim.com.", ps))
		}
		return rrs
	default:
		return nil
	}
}

// signRRset returns a cached RRSIG over the RRset, signing on first use for
// each distinct RRset content.
func (d *DomainState) signRRset(rrs []dnswire.RR) (dnswire.RR, bool) {
	if !d.Signed || len(rrs) == 0 {
		return dnswire.RR{}, false
	}
	_, zsk := d.keys()
	signer := zsk
	if rrs[0].Type == dnswire.TypeDNSKEY {
		signer = d.ksk
	}
	h := sha256.New()
	for _, rr := range rrs {
		w, err := dnswire.PackRR(rr)
		if err != nil {
			return dnswire.RR{}, false
		}
		h.Write(w)
	}
	var lenb [8]byte
	binary.BigEndian.PutUint64(lenb[:], uint64(len(rrs)))
	h.Write(lenb[:])
	key := string(h.Sum(nil))

	d.sigMu.Lock()
	defer d.sigMu.Unlock()
	if d.sigCache == nil {
		d.sigCache = map[string]dnswire.RR{}
	}
	if sig, ok := d.sigCache[key]; ok {
		return sig.Clone(), true
	}
	rng := rand.New(rand.NewSource(d.keySeed ^ int64(len(key))*7919 ^ int64(key[0])))
	sig, err := dnssec.SignRRset(rng, signer, rrs, sigInception, sigExpiration)
	if err != nil {
		return dnswire.RR{}, false
	}
	d.sigCache[key] = sig
	return sig.Clone(), true
}

// Signature validity window covering the whole study with margin.
var (
	sigInception  = StudyStart.Add(-60 * 24 * time.Hour)
	sigExpiration = StudyEnd.Add(120 * 24 * time.Hour)
)

// DNSKEYRRset returns the domain's DNSKEY RRset (empty when unsigned).
func (d *DomainState) DNSKEYRRset() []dnswire.RR {
	if !d.Signed {
		return nil
	}
	ksk, zsk := d.keys()
	return []dnswire.RR{ksk.DNSKEY(3600), zsk.DNSKEY(3600)}
}

// NSRRset synthesizes the NS RRset served at time t.
func (d *DomainState) NSRRset(t time.Time) []dnswire.RR {
	ps := d.ProvidersAt(t)
	var rrs []dnswire.RR
	for _, p := range ps {
		for _, host := range p.NSHosts {
			rrs = append(rrs, dnswire.RR{Name: d.Apex, Type: dnswire.TypeNS,
				Class: dnswire.ClassINET, TTL: 3600, Data: &dnswire.NSData{Host: host}})
		}
	}
	return rrs
}

// SOARRset synthesizes the SOA record.
func (d *DomainState) SOARRset(t time.Time) []dnswire.RR {
	ps := d.ProvidersAt(t)
	if len(ps) == 0 {
		return nil
	}
	return []dnswire.RR{{Name: d.Apex, Type: dnswire.TypeSOA, Class: dnswire.ClassINET, TTL: 3600,
		Data: &dnswire.SOAData{
			MName:  ps[0].NSHosts[0],
			RName:  "dns." + ps[0].InfraDomain,
			Serial: uint32(t.Unix() / 86400), Refresh: 10000, Retry: 2400,
			Expire: 604800, Minimum: 300,
		}}}
}

// ARRset synthesizes the A RRset for owner at t.
func (d *DomainState) ARRset(owner string, t time.Time) []dnswire.RR {
	return []dnswire.RR{{Name: owner, Type: dnswire.TypeA, Class: dnswire.ClassINET, TTL: d.TTL,
		Data: &dnswire.AData{Addr: d.CurrentV4(t)}}}
}

// AAAARRset synthesizes the AAAA RRset for owner.
func (d *DomainState) AAAARRset(owner string) []dnswire.RR {
	addr := d.OriginV6
	if d.Proxied {
		addr = d.AnycastV6
	}
	return []dnswire.RR{{Name: owner, Type: dnswire.TypeAAAA, Class: dnswire.ClassINET, TTL: d.TTL,
		Data: &dnswire.AAAAData{Addr: addr}}}
}

// String aids debugging.
func (d *DomainState) String() string {
	return fmt.Sprintf("%s profile=%d providers=%d signed=%v ech=%v", d.Apex, d.Profile,
		len(d.Providers), d.Signed, d.ECH)
}

package providers

import (
	"math/rand"
	"net/netip"
	"sync"
	"time"

	"repro/internal/dnssec"
	"repro/internal/dnswire"
	"repro/internal/simnet"
)

// TLDServer is a synthesized top-level-domain authoritative server: it
// serves the delegation (referral + glue), the DS records of signed child
// domains that uploaded them, and its own signed apex RRsets. Compared to a
// materialised zone.Zone it holds only the compact DomainState index, which
// keeps 10^5-delegation TLDs cheap.
type TLDServer struct {
	TLD   string // e.g. "com."
	Host  string // its own NS host name
	Addr  netip.Addr
	Clock *simnet.Clock

	ksk, zsk *dnssec.KeyPair

	mu      sync.RWMutex
	domains map[string]*DomainState
	infra   map[string]*Provider // provider infra domains under this TLD
	sigs    map[string][]dnswire.RR
}

// NewTLDServer creates a signed TLD server. Keys are generated from rng.
func NewTLDServer(tld string, addr netip.Addr, clock *simnet.Clock, rng *rand.Rand) (*TLDServer, error) {
	tld = dnswire.CanonicalName(tld)
	ksk, err := dnssec.GenerateKey(rng, tld, true)
	if err != nil {
		return nil, err
	}
	zsk, err := dnssec.GenerateKey(rng, tld, false)
	if err != nil {
		return nil, err
	}
	return &TLDServer{
		TLD:     tld,
		Host:    "a.nic-sim." + tld,
		Addr:    addr,
		Clock:   clock,
		ksk:     ksk,
		zsk:     zsk,
		domains: map[string]*DomainState{},
		infra:   map[string]*Provider{},
		sigs:    map[string][]dnswire.RR{},
	}, nil
}

// DS returns the TLD's own DS record for the root zone.
func (s *TLDServer) DS() (dnswire.RR, error) { return s.ksk.DS(3600) }

// AddDomain registers a delegated child domain.
func (s *TLDServer) AddDomain(d *DomainState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.domains[d.Apex] = d
}

// AddInfra registers a provider's infrastructure domain under this TLD.
func (s *TLDServer) AddInfra(p *Provider) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.infra[p.InfraDomain] = p
}

// signCached signs an RRset with the TLD ZSK (KSK for DNSKEY), caching by
// key.
func (s *TLDServer) signCached(key string, rrs []dnswire.RR) []dnswire.RR {
	s.mu.RLock()
	sig, ok := s.sigs[key]
	s.mu.RUnlock()
	if ok {
		return sig
	}
	signer := s.zsk
	if rrs[0].Type == dnswire.TypeDNSKEY {
		signer = s.ksk
	}
	rng := rand.New(rand.NewSource(int64(len(key)) * 2654435761))
	rr, err := dnssec.SignRRset(rng, signer, rrs, sigInception, sigExpiration)
	if err != nil {
		return nil
	}
	out := []dnswire.RR{rr}
	s.mu.Lock()
	s.sigs[key] = out
	s.mu.Unlock()
	return out
}

func (s *TLDServer) apexNS() []dnswire.RR {
	return []dnswire.RR{{Name: s.TLD, Type: dnswire.TypeNS, Class: dnswire.ClassINET, TTL: 86400,
		Data: &dnswire.NSData{Host: s.Host}}}
}

func (s *TLDServer) apexSOA() []dnswire.RR {
	return []dnswire.RR{{Name: s.TLD, Type: dnswire.TypeSOA, Class: dnswire.ClassINET, TTL: 3600,
		Data: &dnswire.SOAData{MName: s.Host, RName: "nstld.nic-sim" + "." + s.TLD,
			Serial: 1, Refresh: 1800, Retry: 900, Expire: 604800, Minimum: 86400}}}
}

func (s *TLDServer) dnskeys() []dnswire.RR {
	return []dnswire.RR{s.ksk.DNSKEY(3600), s.zsk.DNSKEY(3600)}
}

// HandleDNS implements simnet.DNSHandler at the server's own clock reading.
func (s *TLDServer) HandleDNS(q *dnswire.Message) *dnswire.Message {
	return s.HandleDNSAt(q, s.Clock.Now())
}

// HandleDNSAt implements simnet.DNSHandlerAt: referrals are a pure function
// of the delegation index and the supplied time (NS churn schedules), so
// concurrent per-day network views share one TLD server instance.
func (s *TLDServer) HandleDNSAt(q *dnswire.Message, now time.Time) *dnswire.Message {
	resp := q.Reply()
	if len(q.Question) != 1 {
		resp.RCode = dnswire.RCodeFormErr
		return resp
	}
	question := q.Question[0]
	name := dnswire.CanonicalName(question.Name)
	dnssecOK := q.DNSSECOK()

	if !dnswire.IsSubdomain(name, s.TLD) {
		resp.RCode = dnswire.RCodeRefused
		return resp
	}

	// TLD apex.
	if name == s.TLD {
		resp.Authoritative = true
		var rrs []dnswire.RR
		var key string
		switch question.Type {
		case dnswire.TypeNS:
			rrs, key = s.apexNS(), "ns"
		case dnswire.TypeSOA:
			rrs, key = s.apexSOA(), "soa"
		case dnswire.TypeDNSKEY:
			rrs, key = s.dnskeys(), "dnskey"
		case dnswire.TypeA:
			// The TLD server's glue (host a.nic-sim.<tld> is below, but
			// the apex itself has no A).
		}
		if len(rrs) == 0 {
			resp.Authority = s.apexSOA()
			return resp
		}
		resp.Answer = rrs
		if dnssecOK {
			resp.Answer = append(resp.Answer, s.signCached(key, rrs)...)
		}
		return resp
	}

	// Own NS host glue.
	if name == s.Host && question.Type == dnswire.TypeA {
		resp.Authoritative = true
		resp.Answer = []dnswire.RR{{Name: name, Type: dnswire.TypeA, Class: dnswire.ClassINET,
			TTL: 86400, Data: &dnswire.AData{Addr: s.Addr}}}
		return resp
	}

	// Provider infrastructure delegations.
	s.mu.RLock()
	var infraProv *Provider
	for infraDomain, p := range s.infra {
		if dnswire.IsSubdomain(name, infraDomain) {
			infraProv = p
			break
		}
	}
	s.mu.RUnlock()
	if infraProv != nil {
		return s.referToProvider(resp, infraProv.InfraDomain, []*Provider{infraProv})
	}

	apex := dnswire.ApexOf(name)
	s.mu.RLock()
	d, ok := s.domains[apex]
	s.mu.RUnlock()
	if !ok {
		resp.RCode = dnswire.RCodeNXDomain
		resp.Authoritative = true
		resp.Authority = s.apexSOA()
		if dnssecOK {
			resp.Authority = append(resp.Authority, s.signCached("soa", s.apexSOA())...)
		}
		return resp
	}

	// DS at the delegation point: answered authoritatively by the parent.
	if name == apex && question.Type == dnswire.TypeDS {
		resp.Authoritative = true
		if d.Signed && d.DSUploaded {
			ds, err := dnssec.MakeDS(d.KSK().DNSKEY(3600), 3600)
			if err == nil {
				rrs := []dnswire.RR{ds}
				resp.Answer = rrs
				if dnssecOK {
					resp.Answer = append(resp.Answer, s.signCached("ds|"+apex, rrs)...)
				}
				return resp
			}
		}
		// No DS: NODATA with (signed) SOA — provably unsigned delegation.
		resp.Authority = s.apexSOA()
		if dnssecOK {
			resp.Authority = append(resp.Authority, s.signCached("soa", s.apexSOA())...)
		}
		return resp
	}

	// Regular delegation referral.
	ps := d.ProvidersAt(now)
	if len(ps) == 0 {
		// The domain transiently has no NS records (§4.2.3).
		resp.RCode = dnswire.RCodeServFail
		return resp
	}
	m := s.referToProvider(resp, apex, ps)
	if dnssecOK && d.Signed && d.DSUploaded {
		if ds, err := dnssec.MakeDS(d.KSK().DNSKEY(3600), 3600); err == nil {
			m.Authority = append(m.Authority, ds)
			m.Authority = append(m.Authority, s.signCached("ds|"+apex, []dnswire.RR{ds})...)
		}
	}
	return m
}

// referToProvider builds a referral for child at the given providers.
func (s *TLDServer) referToProvider(resp *dnswire.Message, child string, ps []*Provider) *dnswire.Message {
	for _, p := range ps {
		for i, host := range p.NSHosts {
			resp.Authority = append(resp.Authority, dnswire.RR{
				Name: child, Type: dnswire.TypeNS, Class: dnswire.ClassINET, TTL: 86400,
				Data: &dnswire.NSData{Host: host}})
			resp.Additional = append([]dnswire.RR{{
				Name: host, Type: dnswire.TypeA, Class: dnswire.ClassINET, TTL: 86400,
				Data: &dnswire.AData{Addr: p.NSAddrs[i]}}}, resp.Additional...)
		}
	}
	return resp
}

// Ensure interface satisfaction.
var (
	_ simnet.DNSHandler   = (*TLDServer)(nil)
	_ simnet.DNSHandler   = (*Provider)(nil)
	_ simnet.DNSHandlerAt = (*TLDServer)(nil)
	_ simnet.DNSHandlerAt = (*Provider)(nil)
)

// Package authserver implements an authoritative DNS server over the zone
// store: it selects the longest-matching zone for each question, applies
// authoritative answer/referral semantics, honours EDNS(0) and the DO bit,
// and can serve both in-memory (simnet) and over real UDP/TCP sockets for
// integration tests — the role BIND9 plays in the paper's testbed.
package authserver

import (
	"log"
	"net"
	"sync"

	"repro/internal/dnswire"
	"repro/internal/zone"
)

// Server is an authoritative DNS server hosting one or more zones.
type Server struct {
	mu    sync.RWMutex
	zones map[string]*zone.Zone
	// RefuseAll simulates a server that is up but refuses service.
	RefuseAll bool
	// NoHTTPSSupport simulates DNS providers that do not implement the
	// HTTPS RRtype: queries for HTTPS return NOTIMP-free empty NOERROR
	// (observed behaviour of legacy servers in §4.2.3).
	NoHTTPSSupport bool
}

// New creates an empty authoritative server.
func New() *Server {
	return &Server{zones: map[string]*zone.Zone{}}
}

// AddZone attaches a zone to the server.
func (s *Server) AddZone(z *zone.Zone) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.zones[z.Origin] = z
}

// RemoveZone detaches the zone rooted at origin.
func (s *Server) RemoveZone(origin string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.zones, dnswire.CanonicalName(origin))
}

// Zone returns the zone rooted exactly at origin, if hosted.
func (s *Server) Zone(origin string) (*zone.Zone, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	z, ok := s.zones[dnswire.CanonicalName(origin)]
	return z, ok
}

// findZone returns the hosted zone with the longest suffix match for name.
func (s *Server) findZone(name string) *zone.Zone {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var best *zone.Zone
	bestLabels := -1
	for origin, z := range s.zones {
		if dnswire.IsSubdomain(name, origin) {
			if n := dnswire.CountLabels(origin); n > bestLabels {
				best, bestLabels = z, n
			}
		}
	}
	return best
}

// HandleDNS implements simnet.DNSHandler with authoritative semantics.
func (s *Server) HandleDNS(q *dnswire.Message) *dnswire.Message {
	resp := q.Reply()
	if len(q.Question) != 1 {
		resp.RCode = dnswire.RCodeFormErr
		return resp
	}
	question := q.Question[0]
	if s.RefuseAll {
		resp.RCode = dnswire.RCodeRefused
		return resp
	}
	if s.NoHTTPSSupport && (question.Type == dnswire.TypeHTTPS || question.Type == dnswire.TypeSVCB) {
		// Legacy software: the name may exist but the type is never served.
		resp.Authoritative = true
		return resp
	}
	z := s.findZone(question.Name)
	if z == nil {
		resp.RCode = dnswire.RCodeRefused
		return resp
	}
	res := z.Query(question.Name, question.Type, q.DNSSECOK())
	resp.RCode = res.RCode
	resp.Answer = res.Answer
	resp.Authority = res.Authority
	resp.Additional = append(res.Additional, resp.Additional...)
	resp.Authoritative = !res.Referral
	return resp
}

// ServeUDP serves DNS over a real UDP socket until the connection is closed.
// It returns the error that terminated the loop (net.ErrClosed on shutdown).
func (s *Server) ServeUDP(conn net.PacketConn) error {
	buf := make([]byte, 65535)
	for {
		n, addr, err := conn.ReadFrom(buf)
		if err != nil {
			return err
		}
		q, err := dnswire.Unpack(buf[:n])
		if err != nil {
			continue // malformed datagram: drop, as real servers do
		}
		resp := s.HandleDNS(q)
		wire, err := resp.Pack()
		if err != nil {
			log.Printf("authserver: packing response: %v", err)
			continue
		}
		if len(wire) > q.UDPSize() {
			// Truncate: empty the sections and set TC so the client
			// retries over TCP.
			resp.Truncated = true
			resp.Answer, resp.Authority = nil, nil
			resp.Additional = resp.Additional[:0]
			resp.SetEDNS0(dnswire.MaxUDPSize, q.DNSSECOK())
			wire, err = resp.Pack()
			if err != nil {
				continue
			}
		}
		if _, err := conn.WriteTo(wire, addr); err != nil {
			return err
		}
	}
}

// ServeTCP serves DNS over a TCP listener until it is closed.
func (s *Server) ServeTCP(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go func(c net.Conn) {
			defer c.Close()
			for {
				q, err := dnswire.ReadTCP(c)
				if err != nil {
					return
				}
				resp := s.HandleDNS(q)
				if err := dnswire.WriteTCP(c, resp); err != nil {
					return
				}
			}
		}(conn)
	}
}

package authserver

import (
	"net"
	"net/netip"
	"testing"
	"time"

	"repro/internal/dnswire"
	"repro/internal/zone"
)

func buildServer() *Server {
	s := New()
	z := zone.New("example.com")
	z.SetSOA("ns1.example.com.", "hostmaster.example.com.", 1, 300)
	z.Add(dnswire.RR{Name: "example.com.", Type: dnswire.TypeNS, Class: dnswire.ClassINET,
		TTL: 3600, Data: &dnswire.NSData{Host: "ns1.example.com."}})
	z.Add(dnswire.RR{Name: "www.example.com.", Type: dnswire.TypeA, Class: dnswire.ClassINET,
		TTL: 300, Data: &dnswire.AData{Addr: netip.MustParseAddr("10.0.0.80")}})
	z.Add(dnswire.RR{Name: "example.com.", Type: dnswire.TypeHTTPS, Class: dnswire.ClassINET,
		TTL: 300, Data: &dnswire.SVCBData{Priority: 1, Target: "."}})
	s.AddZone(z)

	sub := zone.New("deep.example.com")
	sub.SetSOA("ns1.deep.example.com.", "h.deep.example.com.", 1, 300)
	sub.Add(dnswire.RR{Name: "x.deep.example.com.", Type: dnswire.TypeA, Class: dnswire.ClassINET,
		TTL: 300, Data: &dnswire.AData{Addr: netip.MustParseAddr("10.0.2.2")}})
	s.AddZone(sub)
	return s
}

func query(name string, t dnswire.Type) *dnswire.Message {
	return dnswire.NewQuery(42, name, t, false)
}

func TestHandleDNSAnswer(t *testing.T) {
	s := buildServer()
	resp := s.HandleDNS(query("www.example.com.", dnswire.TypeA))
	if resp.RCode != dnswire.RCodeNoError || len(resp.Answer) != 1 || !resp.Authoritative {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestHandleDNSLongestZoneMatch(t *testing.T) {
	s := buildServer()
	resp := s.HandleDNS(query("x.deep.example.com.", dnswire.TypeA))
	if len(resp.Answer) != 1 {
		t.Fatalf("deep zone not matched: %+v", resp)
	}
	if resp.Answer[0].Data.(*dnswire.AData).Addr.String() != "10.0.2.2" {
		t.Error("answer from wrong zone")
	}
}

func TestHandleDNSRefusesForeign(t *testing.T) {
	s := buildServer()
	resp := s.HandleDNS(query("other.net.", dnswire.TypeA))
	if resp.RCode != dnswire.RCodeRefused {
		t.Errorf("rcode = %v", resp.RCode)
	}
}

func TestHandleDNSFormErr(t *testing.T) {
	s := buildServer()
	q := &dnswire.Message{ID: 1}
	if resp := s.HandleDNS(q); resp.RCode != dnswire.RCodeFormErr {
		t.Errorf("rcode = %v", resp.RCode)
	}
}

func TestNoHTTPSSupportMode(t *testing.T) {
	s := buildServer()
	s.NoHTTPSSupport = true
	resp := s.HandleDNS(query("example.com.", dnswire.TypeHTTPS))
	if resp.RCode != dnswire.RCodeNoError || len(resp.Answer) != 0 {
		t.Errorf("legacy server should return empty NOERROR: %+v", resp)
	}
	// Other types still served.
	resp = s.HandleDNS(query("www.example.com.", dnswire.TypeA))
	if len(resp.Answer) != 1 {
		t.Error("A record lost in NoHTTPSSupport mode")
	}
}

func TestRefuseAllMode(t *testing.T) {
	s := buildServer()
	s.RefuseAll = true
	if resp := s.HandleDNS(query("example.com.", dnswire.TypeA)); resp.RCode != dnswire.RCodeRefused {
		t.Errorf("rcode = %v", resp.RCode)
	}
}

func TestRemoveZone(t *testing.T) {
	s := buildServer()
	s.RemoveZone("deep.example.com.")
	resp := s.HandleDNS(query("x.deep.example.com.", dnswire.TypeA))
	// Falls back to example.com zone → NXDOMAIN there.
	if resp.RCode != dnswire.RCodeNXDomain {
		t.Errorf("rcode = %v", resp.RCode)
	}
}

// TestServeUDP exercises the real-socket path end to end on loopback.
func TestServeUDP(t *testing.T) {
	s := buildServer()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	go s.ServeUDP(pc) //nolint:errcheck

	conn, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	q := query("www.example.com.", dnswire.TypeA)
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	buf := make([]byte, 65535)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := dnswire.Unpack(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != q.ID || len(resp.Answer) != 1 {
		t.Errorf("UDP response = %+v", resp)
	}
}

// TestServeTCP exercises TCP framing over a real listener.
func TestServeTCP(t *testing.T) {
	s := buildServer()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go s.ServeTCP(ln) //nolint:errcheck

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	q := query("example.com.", dnswire.TypeHTTPS)
	if err := dnswire.WriteTCP(conn, q); err != nil {
		t.Fatal(err)
	}
	resp, err := dnswire.ReadTCP(conn)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answer) != 1 || resp.Answer[0].Type != dnswire.TypeHTTPS {
		t.Errorf("TCP response = %+v", resp)
	}
}

package ech

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
)

// This file implements the subset of HPKE (RFC 9180) needed for ECH: the
// Base mode single-shot seal/open with DHKEM(X25519, HKDF-SHA256),
// HKDF-SHA256 and AES-128-GCM. The derivation is a faithful shape of RFC
// 9180's key schedule (labeled extract/expand over a suite id); the goal is
// real public-key encryption over the wire, not interop with other stacks.

// hkdfExtract implements HKDF-Extract with SHA-256.
func hkdfExtract(salt, ikm []byte) []byte {
	mac := hmac.New(sha256.New, salt)
	mac.Write(ikm)
	return mac.Sum(nil)
}

// hkdfExpand implements HKDF-Expand with SHA-256.
func hkdfExpand(prk, info []byte, length int) []byte {
	var out []byte
	var prev []byte
	for counter := byte(1); len(out) < length; counter++ {
		mac := hmac.New(sha256.New, prk)
		mac.Write(prev)
		mac.Write(info)
		mac.Write([]byte{counter})
		prev = mac.Sum(nil)
		out = append(out, prev...)
	}
	return out[:length]
}

// suiteID identifies the fixed HPKE suite in key-schedule labels.
func suiteID() []byte {
	b := []byte("HPKE")
	b = binary.BigEndian.AppendUint16(b, KEMX25519SHA256)
	b = binary.BigEndian.AppendUint16(b, KDFHKDFSHA256)
	b = binary.BigEndian.AppendUint16(b, AEADAES128GCM)
	return b
}

func labeledExtract(salt []byte, label string, ikm []byte) []byte {
	full := append([]byte("HPKE-v1"), suiteID()...)
	full = append(full, label...)
	full = append(full, ikm...)
	return hkdfExtract(salt, full)
}

func labeledExpand(prk []byte, label string, info []byte, length int) []byte {
	full := binary.BigEndian.AppendUint16(nil, uint16(length))
	full = append(full, "HPKE-v1"...)
	full = append(full, suiteID()...)
	full = append(full, label...)
	full = append(full, info...)
	return hkdfExpand(prk, full, length)
}

// deriveKeyNonce runs the key schedule from the ECDH shared secret and the
// encapsulated key, producing AEAD key and base nonce.
func deriveKeyNonce(shared, enc, pkR, info []byte) (key, nonce []byte) {
	kemContext := append(append([]byte(nil), enc...), pkR...)
	eaePRK := labeledExtract(nil, "eae_prk", shared)
	sharedSecret := labeledExpand(eaePRK, "shared_secret", kemContext, 32)
	secret := labeledExtract(sharedSecret, "secret", info)
	key = labeledExpand(secret, "key", info, 16)
	nonce = labeledExpand(secret, "base_nonce", info, 12)
	return key, nonce
}

func aeadSeal(key, nonce, aad, plaintext []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	return gcm.Seal(nil, nonce, plaintext, aad), nil
}

func aeadOpen(key, nonce, aad, ciphertext []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	pt, err := gcm.Open(nil, nonce, ciphertext, aad)
	if err != nil {
		return nil, ErrDecryptFailure
	}
	return pt, nil
}

// Seal encrypts plaintext to the holder of cfg's public key. It returns the
// encapsulated ephemeral public key and the ciphertext. aad binds the outer
// ClientHello to the encryption. rng may be nil for crypto/rand.
func Seal(rng io.Reader, cfg Config, aad, plaintext []byte) (enc, ciphertext []byte, err error) {
	if rng == nil {
		rng = rand.Reader
	}
	if cfg.KEM != KEMX25519SHA256 {
		return nil, nil, fmt.Errorf("ech: unsupported KEM %#04x", cfg.KEM)
	}
	pkR, err := ecdh.X25519().NewPublicKey(cfg.PublicKey)
	if err != nil {
		return nil, nil, fmt.Errorf("ech: bad recipient key: %w", err)
	}
	eph, err := generateX25519(rng)
	if err != nil {
		return nil, nil, err
	}
	shared, err := eph.ECDH(pkR)
	if err != nil {
		return nil, nil, err
	}
	enc = eph.PublicKey().Bytes()
	info := append([]byte("tls ech"), cfg.Marshal()...)
	key, nonce := deriveKeyNonce(shared, enc, cfg.PublicKey, info)
	ct, err := aeadSeal(key, nonce, aad, plaintext)
	if err != nil {
		return nil, nil, err
	}
	return enc, ct, nil
}

// Open decrypts a ciphertext produced by Seal using the key pair's private
// key. It fails with ErrDecryptFailure if the key pair does not match the
// config the sender used.
func (kp *KeyPair) Open(enc, aad, ciphertext []byte) ([]byte, error) {
	pkE, err := ecdh.X25519().NewPublicKey(enc)
	if err != nil {
		return nil, fmt.Errorf("ech: bad encapsulated key: %w", err)
	}
	shared, err := kp.Private.ECDH(pkE)
	if err != nil {
		return nil, err
	}
	info := append([]byte("tls ech"), kp.Config.Marshal()...)
	key, nonce := deriveKeyNonce(shared, enc, kp.Config.PublicKey, info)
	return aeadOpen(key, nonce, aad, ciphertext)
}

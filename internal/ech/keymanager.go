package ech

import (
	"crypto/rand"
	"fmt"
	"io"
	mathrand "math/rand"
	"sync"
	"time"
)

// KeyManager models the server-side ECH key lifecycle the paper measures:
// the client-facing provider rotates the key advertised in DNS every one to
// two hours, while keeping a window of recent keys that still decrypt, and
// offers retry configs when a client arrives with a stale key.
//
// Keys are a deterministic function of the rotation epoch (the number of
// whole periods since start), so a virtual clock may be moved freely in
// both directions — replaying July after simulating March yields July's
// keys again.
type KeyManager struct {
	mu         sync.Mutex
	publicName string
	period     time.Duration // rotation period for the advertised key
	retain     time.Duration // how long superseded keys keep decrypting
	start      time.Time
	seed       int64

	epochKeys map[int64]*KeyPair
}

// NewKeyManager creates a key manager that advertises publicName and
// rotates every period, retaining superseded keys for retain. rng is
// consumed once to derive the deterministic key-schedule seed.
func NewKeyManager(rng io.Reader, publicName string, period, retain time.Duration, start time.Time) (*KeyManager, error) {
	if publicName == "" {
		return nil, fmt.Errorf("ech: public name must not be empty")
	}
	if period <= 0 {
		return nil, fmt.Errorf("ech: rotation period must be positive")
	}
	var seedBytes [8]byte
	if rng == nil {
		rng = rand.Reader
	}
	if _, err := io.ReadFull(rng, seedBytes[:]); err != nil {
		return nil, err
	}
	var seed int64
	for _, b := range seedBytes {
		seed = seed<<8 | int64(b)
	}
	return &KeyManager{
		publicName: publicName,
		period:     period,
		retain:     retain,
		start:      start,
		seed:       seed,
		epochKeys:  map[int64]*KeyPair{},
	}, nil
}

// PublicName returns the client-facing server name baked into the configs.
func (km *KeyManager) PublicName() string {
	return km.publicName
}

func (km *KeyManager) epochAt(t time.Time) int64 {
	e := int64(t.Sub(km.start) / km.period)
	if t.Before(km.start) {
		e--
	}
	return e
}

// keyFor returns (generating lazily) the deterministic key pair of epoch e.
func (km *KeyManager) keyFor(e int64) *KeyPair {
	if kp, ok := km.epochKeys[e]; ok {
		return kp
	}
	rng := mathrand.New(mathrand.NewSource(km.seed ^ e*0x9e3779b97f4a7c))
	kp, err := GenerateKeyPair(rng, uint8(e&0xff), km.publicName)
	if err != nil {
		return nil
	}
	km.epochKeys[e] = kp
	return kp
}

// ConfigList returns the ECHConfigList to publish in DNS as of now.
func (km *KeyManager) ConfigList(now time.Time) []byte {
	km.mu.Lock()
	defer km.mu.Unlock()
	return MarshalList([]Config{km.keyFor(km.epochAt(now)).Config})
}

// CurrentConfig returns a copy of the currently advertised config.
func (km *KeyManager) CurrentConfig(now time.Time) Config {
	km.mu.Lock()
	defer km.mu.Unlock()
	return km.keyFor(km.epochAt(now)).Config.Clone()
}

// Open attempts to decrypt a sealed ClientHelloInner with the key matching
// configID among the keys still inside the retention window. It returns
// ErrUnknownConfig when no retained key has that ID.
func (km *KeyManager) Open(now time.Time, configID uint8, enc, aad, ciphertext []byte) ([]byte, error) {
	km.mu.Lock()
	defer km.mu.Unlock()
	cur := km.epochAt(now)
	retainEpochs := int64(km.retain / km.period)
	for e := cur; e >= cur-retainEpochs; e-- {
		kp := km.keyFor(e)
		if kp == nil || kp.Config.ConfigID != configID {
			continue
		}
		return kp.Open(enc, aad, ciphertext)
	}
	return nil, ErrUnknownConfig
}

// RetryConfigs returns the ECHConfigList a client-facing server sends when
// decryption fails, allowing the client to reconnect with a fresh key
// (draft-ietf-tls-esni retry mechanism).
func (km *KeyManager) RetryConfigs(now time.Time) []byte {
	return km.ConfigList(now)
}

// KeyCount returns how many keys (current + retained) can still decrypt.
func (km *KeyManager) KeyCount(now time.Time) int {
	return int(km.retain/km.period) + 1
}

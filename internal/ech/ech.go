// Package ech implements TLS Encrypted Client Hello configuration handling
// in the shape of draft-ietf-tls-esni-13 (the draft deployed by Cloudflare
// and the DEfO OpenSSL/Nginx testbed used in the paper): the ECHConfigList
// encoding published in DNS HTTPS records, an HPKE-style sealed box built on
// X25519 + HKDF-SHA256 + AES-128-GCM from the standard library, and a
// rotating key manager modelling the 1–2 hour key rotation the paper
// measures on cloudflare-ech.com.
package ech

import (
	"bytes"
	"crypto/ecdh"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Protocol constants (draft-13 / RFC 9180 registry values).
const (
	// DraftVersion is the ECHConfig version field for draft-13.
	DraftVersion uint16 = 0xfe0d

	// KEMX25519SHA256 is DHKEM(X25519, HKDF-SHA256).
	KEMX25519SHA256 uint16 = 0x0020
	// KDFHKDFSHA256 is HKDF-SHA256.
	KDFHKDFSHA256 uint16 = 0x0001
	// AEADAES128GCM is AES-128-GCM.
	AEADAES128GCM uint16 = 0x0001
)

// Errors returned by the codec and crypto layers.
var (
	ErrMalformed      = errors.New("ech: malformed ECHConfigList")
	ErrNoSupported    = errors.New("ech: no supported ECHConfig in list")
	ErrDecryptFailure = errors.New("ech: decryption failure")
	ErrUnknownConfig  = errors.New("ech: unknown config_id")
)

// CipherSuite is an HPKE symmetric cipher suite (KDF + AEAD pair).
type CipherSuite struct {
	KDF  uint16
	AEAD uint16
}

// Config is a single ECHConfig: the public key material and metadata a
// client needs to encrypt its ClientHello toward a client-facing server.
type Config struct {
	Version       uint16
	ConfigID      uint8
	KEM           uint16
	PublicKey     []byte // X25519 public key (32 bytes for the supported KEM)
	CipherSuites  []CipherSuite
	MaxNameLength uint8
	PublicName    string // client-facing server name (SNI of the outer hello)
	Extensions    []byte // raw extensions block (opaque)
}

// Clone returns a deep copy of the config.
func (c Config) Clone() Config {
	out := c
	out.PublicKey = append([]byte(nil), c.PublicKey...)
	out.CipherSuites = append([]CipherSuite(nil), c.CipherSuites...)
	out.Extensions = append([]byte(nil), c.Extensions...)
	return out
}

// marshalContents encodes ECHConfigContents (everything after version+length).
func (c Config) marshalContents() []byte {
	var b []byte
	b = append(b, c.ConfigID)
	b = binary.BigEndian.AppendUint16(b, c.KEM)
	b = binary.BigEndian.AppendUint16(b, uint16(len(c.PublicKey)))
	b = append(b, c.PublicKey...)
	b = binary.BigEndian.AppendUint16(b, uint16(len(c.CipherSuites)*4))
	for _, cs := range c.CipherSuites {
		b = binary.BigEndian.AppendUint16(b, cs.KDF)
		b = binary.BigEndian.AppendUint16(b, cs.AEAD)
	}
	b = append(b, c.MaxNameLength)
	b = append(b, uint8(len(c.PublicName)))
	b = append(b, c.PublicName...)
	b = binary.BigEndian.AppendUint16(b, uint16(len(c.Extensions)))
	b = append(b, c.Extensions...)
	return b
}

// Marshal encodes the single ECHConfig (version, length, contents).
func (c Config) Marshal() []byte {
	contents := c.marshalContents()
	var b []byte
	b = binary.BigEndian.AppendUint16(b, c.Version)
	b = binary.BigEndian.AppendUint16(b, uint16(len(contents)))
	return append(b, contents...)
}

// MarshalList encodes a list of configs as an ECHConfigList, the format
// carried in the ech SvcParam.
func MarshalList(configs []Config) []byte {
	var inner []byte
	for _, c := range configs {
		inner = append(inner, c.Marshal()...)
	}
	var b []byte
	b = binary.BigEndian.AppendUint16(b, uint16(len(inner)))
	return append(b, inner...)
}

// UnmarshalList parses an ECHConfigList. Configs with unknown versions are
// retained with only Version set and a nil PublicKey so callers can skip
// them, mirroring how clients must ignore unsupported versions.
func UnmarshalList(b []byte) ([]Config, error) {
	if len(b) < 2 {
		return nil, ErrMalformed
	}
	total := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) != total || total == 0 {
		return nil, ErrMalformed
	}
	var configs []Config
	for len(b) > 0 {
		if len(b) < 4 {
			return nil, ErrMalformed
		}
		version := binary.BigEndian.Uint16(b)
		clen := int(binary.BigEndian.Uint16(b[2:]))
		b = b[4:]
		if len(b) < clen {
			return nil, ErrMalformed
		}
		contents := b[:clen]
		b = b[clen:]
		if version != DraftVersion {
			configs = append(configs, Config{Version: version})
			continue
		}
		cfg, err := unmarshalContents(contents)
		if err != nil {
			return nil, err
		}
		cfg.Version = version
		configs = append(configs, cfg)
	}
	return configs, nil
}

func unmarshalContents(b []byte) (Config, error) {
	var c Config
	r := reader{b: b}
	c.ConfigID = r.u8()
	c.KEM = r.u16()
	c.PublicKey = r.vec16()
	suites := r.vec16()
	if r.err != nil || len(suites)%4 != 0 || len(suites) == 0 {
		return c, ErrMalformed
	}
	for i := 0; i < len(suites); i += 4 {
		c.CipherSuites = append(c.CipherSuites, CipherSuite{
			KDF:  binary.BigEndian.Uint16(suites[i:]),
			AEAD: binary.BigEndian.Uint16(suites[i+2:]),
		})
	}
	c.MaxNameLength = r.u8()
	c.PublicName = string(r.vec8())
	c.Extensions = r.vec16()
	if r.err != nil || len(r.b) != 0 {
		return c, ErrMalformed
	}
	if len(c.PublicName) == 0 {
		return c, fmt.Errorf("ech: empty public_name: %w", ErrMalformed)
	}
	return c, nil
}

// reader is a tiny TLS-presentation-language cursor.
type reader struct {
	b   []byte
	err error
}

func (r *reader) u8() uint8 {
	if r.err != nil || len(r.b) < 1 {
		r.err = ErrMalformed
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil || len(r.b) < 2 {
		r.err = ErrMalformed
		return 0
	}
	v := binary.BigEndian.Uint16(r.b)
	r.b = r.b[2:]
	return v
}

func (r *reader) take(n int) []byte {
	if r.err != nil || len(r.b) < n {
		r.err = ErrMalformed
		return nil
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v
}

func (r *reader) vec8() []byte  { return append([]byte(nil), r.take(int(r.u8()))...) }
func (r *reader) vec16() []byte { return append([]byte(nil), r.take(int(r.u16()))...) }

// KeyPair is an ECH key pair: the private X25519 key and the public Config
// that advertises it.
type KeyPair struct {
	Private *ecdh.PrivateKey
	Config  Config
}

// generateX25519 derives an X25519 private key from exactly 32 bytes of
// rng. ecdh.Curve.GenerateKey is NOT used: since Go 1.24 it draws from
// the system random source regardless of the reader it is handed, which
// silently breaks the seeded, replayable key schedules the key manager's
// determinism contract depends on.
func generateX25519(rng io.Reader) (*ecdh.PrivateKey, error) {
	var scalar [32]byte
	if _, err := io.ReadFull(rng, scalar[:]); err != nil {
		return nil, err
	}
	return ecdh.X25519().NewPrivateKey(scalar[:])
}

// GenerateKeyPair creates a fresh X25519 key pair and its ECHConfig for the
// given config ID and public name. rng may be nil, in which case
// crypto/rand.Reader is used; a deterministic rng yields a deterministic
// key pair.
func GenerateKeyPair(rng io.Reader, configID uint8, publicName string) (*KeyPair, error) {
	if rng == nil {
		rng = rand.Reader
	}
	priv, err := generateX25519(rng)
	if err != nil {
		return nil, fmt.Errorf("ech: generating X25519 key: %w", err)
	}
	if publicName == "" {
		return nil, fmt.Errorf("ech: public name must not be empty")
	}
	return &KeyPair{
		Private: priv,
		Config: Config{
			Version:       DraftVersion,
			ConfigID:      configID,
			KEM:           KEMX25519SHA256,
			PublicKey:     priv.PublicKey().Bytes(),
			CipherSuites:  []CipherSuite{{KDF: KDFHKDFSHA256, AEAD: AEADAES128GCM}},
			MaxNameLength: 64,
			PublicName:    publicName,
		},
	}, nil
}

// SelectConfig picks the first config in the list that this implementation
// supports (draft-13, X25519 KEM, HKDF-SHA256 + AES-128-GCM suite).
func SelectConfig(configs []Config) (Config, error) {
	for _, c := range configs {
		if c.Version != DraftVersion || c.KEM != KEMX25519SHA256 {
			continue
		}
		for _, cs := range c.CipherSuites {
			if cs.KDF == KDFHKDFSHA256 && cs.AEAD == AEADAES128GCM {
				return c, nil
			}
		}
	}
	return Config{}, ErrNoSupported
}

// ConfigsEqual reports whether two marshalled ECHConfigLists are identical.
func ConfigsEqual(a, b []byte) bool { return bytes.Equal(a, b) }

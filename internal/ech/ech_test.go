package ech

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func testRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestConfigListRoundTrip(t *testing.T) {
	kp1, err := GenerateKeyPair(testRNG(1), 7, "cloudflare-ech.com")
	if err != nil {
		t.Fatal(err)
	}
	kp2, err := GenerateKeyPair(testRNG(2), 8, "provider.example")
	if err != nil {
		t.Fatal(err)
	}
	list := MarshalList([]Config{kp1.Config, kp2.Config})
	got, err := UnmarshalList(list)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d configs", len(got))
	}
	want := []Config{kp1.Config, kp2.Config}
	for i := range want {
		// Normalise nil-vs-empty for optional fields.
		if got[i].Extensions == nil {
			got[i].Extensions = []byte{}
		}
		w := want[i].Clone()
		if w.Extensions == nil {
			w.Extensions = []byte{}
		}
		if !reflect.DeepEqual(got[i], w) {
			t.Errorf("config %d mismatch:\n got %+v\nwant %+v", i, got[i], w)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	bad := [][]byte{
		nil,
		{0},
		{0, 0},                   // empty list
		{0, 5, 1, 2},             // length overruns
		{0, 4, 0xfe, 0x0d, 0, 9}, // inner length overruns
	}
	for _, b := range bad {
		if _, err := UnmarshalList(b); err == nil {
			t.Errorf("UnmarshalList(%x) accepted garbage", b)
		}
	}
}

func TestUnmarshalSkipsUnknownVersion(t *testing.T) {
	kp, _ := GenerateKeyPair(testRNG(3), 1, "pub.example")
	known := kp.Config.Marshal()
	unknown := []byte{0xfe, 0x0a, 0x00, 0x02, 0xaa, 0xbb} // version fe0a, 2 bytes
	inner := append(unknown, known...)
	list := append([]byte{byte(len(inner) >> 8), byte(len(inner))}, inner...)
	got, err := UnmarshalList(list)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d configs", len(got))
	}
	if got[0].Version == DraftVersion || got[1].Version != DraftVersion {
		t.Errorf("version handling wrong: %+v", got)
	}
	sel, err := SelectConfig(got)
	if err != nil {
		t.Fatal(err)
	}
	if sel.ConfigID != 1 {
		t.Errorf("SelectConfig picked %d", sel.ConfigID)
	}
}

func TestSelectConfigNoSupported(t *testing.T) {
	if _, err := SelectConfig([]Config{{Version: 0x1234}}); err != ErrNoSupported {
		t.Errorf("err = %v", err)
	}
	// Right version, unsupported suite.
	cfg := Config{Version: DraftVersion, KEM: KEMX25519SHA256,
		CipherSuites: []CipherSuite{{KDF: 2, AEAD: 3}}}
	if _, err := SelectConfig([]Config{cfg}); err != ErrNoSupported {
		t.Errorf("err = %v", err)
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	kp, err := GenerateKeyPair(testRNG(4), 9, "cover.example")
	if err != nil {
		t.Fatal(err)
	}
	aad := []byte("outer client hello")
	plaintext := []byte("inner client hello with sni=secret.example")
	enc, ct, err := Seal(testRNG(5), kp.Config, aad, plaintext)
	if err != nil {
		t.Fatal(err)
	}
	got, err := kp.Open(enc, aad, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plaintext) {
		t.Errorf("Open = %q", got)
	}
}

func TestOpenWrongKeyFails(t *testing.T) {
	kp1, _ := GenerateKeyPair(testRNG(6), 1, "pub.example")
	kp2, _ := GenerateKeyPair(testRNG(7), 1, "pub.example")
	enc, ct, err := Seal(testRNG(8), kp1.Config, []byte("aad"), []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kp2.Open(enc, []byte("aad"), ct); err == nil {
		t.Error("Open succeeded with wrong key")
	}
}

func TestOpenWrongAADFails(t *testing.T) {
	kp, _ := GenerateKeyPair(testRNG(9), 1, "pub.example")
	enc, ct, err := Seal(testRNG(10), kp.Config, []byte("aad-a"), []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kp.Open(enc, []byte("aad-b"), ct); err == nil {
		t.Error("Open succeeded with wrong AAD")
	}
}

func TestSealTamperedCiphertextFails(t *testing.T) {
	kp, _ := GenerateKeyPair(testRNG(11), 1, "pub.example")
	enc, ct, err := Seal(testRNG(12), kp.Config, nil, []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	ct[0] ^= 1
	if _, err := kp.Open(enc, nil, ct); err == nil {
		t.Error("Open accepted tampered ciphertext")
	}
}

func TestHKDFVectors(t *testing.T) {
	// RFC 5869 test case 1.
	ikm := bytes.Repeat([]byte{0x0b}, 22)
	salt := []byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c}
	info := []byte{0xf0, 0xf1, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8, 0xf9}
	prk := hkdfExtract(salt, ikm)
	wantPRK := []byte{
		0x07, 0x77, 0x09, 0x36, 0x2c, 0x2e, 0x32, 0xdf, 0x0d, 0xdc, 0x3f, 0x0d, 0xc4, 0x7b,
		0xba, 0x63, 0x90, 0xb6, 0xc7, 0x3b, 0xb5, 0x0f, 0x9c, 0x31, 0x22, 0xec, 0x84, 0x4a,
		0xd7, 0xc2, 0xb3, 0xe5}
	if !bytes.Equal(prk, wantPRK) {
		t.Errorf("hkdfExtract = %x", prk)
	}
	okm := hkdfExpand(prk, info, 42)
	wantOKM := []byte{
		0x3c, 0xb2, 0x5f, 0x25, 0xfa, 0xac, 0xd5, 0x7a, 0x90, 0x43, 0x4f, 0x64, 0xd0, 0x36,
		0x2f, 0x2a, 0x2d, 0x2d, 0x0a, 0x90, 0xcf, 0x1a, 0x5a, 0x4c, 0x5d, 0xb0, 0x2d, 0x56,
		0xec, 0xc4, 0xc5, 0xbf, 0x34, 0x00, 0x72, 0x08, 0xd5, 0xb8, 0x87, 0x18, 0x58, 0x65}
	if !bytes.Equal(okm, wantOKM) {
		t.Errorf("hkdfExpand = %x", okm)
	}
}

func TestKeyManagerRotation(t *testing.T) {
	start := time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC)
	km, err := NewKeyManager(testRNG(13), "cloudflare-ech.com", time.Hour, 2*time.Hour, start)
	if err != nil {
		t.Fatal(err)
	}
	cfg0 := km.CurrentConfig(start)
	// Within the period: stable.
	cfg0b := km.CurrentConfig(start.Add(30 * time.Minute))
	if cfg0.ConfigID != cfg0b.ConfigID || !bytes.Equal(cfg0.PublicKey, cfg0b.PublicKey) {
		t.Error("key rotated before period elapsed")
	}
	// After the period: rotated.
	cfg1 := km.CurrentConfig(start.Add(61 * time.Minute))
	if bytes.Equal(cfg0.PublicKey, cfg1.PublicKey) {
		t.Error("key not rotated after period")
	}
	// Long gap: advances multiple epochs without error.
	cfg5 := km.CurrentConfig(start.Add(5*time.Hour + time.Minute))
	if bytes.Equal(cfg1.PublicKey, cfg5.PublicKey) {
		t.Error("key not rotated across long gap")
	}
}

func TestKeyManagerOpenOldKeyWithinRetention(t *testing.T) {
	start := time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC)
	km, err := NewKeyManager(testRNG(14), "cover.example", time.Hour, 2*time.Hour, start)
	if err != nil {
		t.Fatal(err)
	}
	oldCfg := km.CurrentConfig(start)
	// Client sealed against the old config; server has rotated once.
	enc, ct, err := Seal(testRNG(15), oldCfg, []byte("aad"), []byte("inner"))
	if err != nil {
		t.Fatal(err)
	}
	at := start.Add(90 * time.Minute) // one rotation later, within retention
	if got, err := km.Open(at, oldCfg.ConfigID, enc, []byte("aad"), ct); err != nil || string(got) != "inner" {
		t.Errorf("Open with retained key: %q, %v", got, err)
	}
	// Past retention the old key is gone.
	late := start.Add(4 * time.Hour)
	if _, err := km.Open(late, oldCfg.ConfigID, enc, []byte("aad"), ct); err == nil {
		t.Error("Open succeeded past retention window")
	}
}

func TestKeyManagerRetryConfigs(t *testing.T) {
	start := time.Unix(0, 0)
	km, err := NewKeyManager(testRNG(16), "cover.example", time.Hour, 2*time.Hour, start)
	if err != nil {
		t.Fatal(err)
	}
	retry := km.RetryConfigs(start)
	configs, err := UnmarshalList(retry)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := SelectConfig(configs)
	if err != nil {
		t.Fatal(err)
	}
	// A client using the retry config must succeed.
	enc, ct, err := Seal(testRNG(17), sel, nil, []byte("retry inner"))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := km.Open(start, sel.ConfigID, enc, nil, ct); err != nil || string(got) != "retry inner" {
		t.Errorf("retry round trip: %q, %v", got, err)
	}
}

func TestKeyManagerKeyCount(t *testing.T) {
	start := time.Unix(0, 0)
	km, _ := NewKeyManager(testRNG(18), "x.example", time.Hour, 2*time.Hour, start)
	if n := km.KeyCount(start); n != 3 {
		t.Errorf("KeyCount = %d, want 3 (current + 2h retention at 1h period)", n)
	}
}

func TestKeyManagerTimeTravel(t *testing.T) {
	// The virtual clock may be rewound (e.g. replaying the July hourly
	// experiment after a full campaign); keys must be reproducible.
	start := time.Unix(0, 0)
	km, _ := NewKeyManager(testRNG(21), "x.example", time.Hour, 2*time.Hour, start)
	july := start.Add(100 * time.Hour)
	march := start.Add(5000 * time.Hour)
	a := km.CurrentConfig(july)
	_ = km.CurrentConfig(march)
	b := km.CurrentConfig(july)
	if !bytes.Equal(a.PublicKey, b.PublicKey) || a.ConfigID != b.ConfigID {
		t.Error("rewinding the clock changed the epoch key")
	}
}

// Property: Seal/Open round-trips for arbitrary payloads and AADs.
func TestQuickSealOpen(t *testing.T) {
	kp, err := GenerateKeyPair(testRNG(19), 1, "pub.example")
	if err != nil {
		t.Fatal(err)
	}
	f := func(plaintext, aad []byte, seed int64) bool {
		enc, ct, err := Seal(testRNG(seed), kp.Config, aad, plaintext)
		if err != nil {
			return false
		}
		got, err := kp.Open(enc, aad, ct)
		return err == nil && bytes.Equal(got, plaintext)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: marshalled config lists always reparse to the same structure.
func TestQuickConfigListRoundTrip(t *testing.T) {
	f := func(seed int64, nConfigs uint8) bool {
		rng := testRNG(seed)
		n := int(nConfigs%3) + 1
		var configs []Config
		for i := 0; i < n; i++ {
			kp, err := GenerateKeyPair(rng, uint8(i), "pub.example")
			if err != nil {
				return false
			}
			configs = append(configs, kp.Config)
		}
		list := MarshalList(configs)
		got, err := UnmarshalList(list)
		if err != nil || len(got) != n {
			return false
		}
		for i := range got {
			if got[i].ConfigID != configs[i].ConfigID ||
				!bytes.Equal(got[i].PublicKey, configs[i].PublicKey) ||
				got[i].PublicName != configs[i].PublicName {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

package resolver

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"repro/internal/authserver"
	"repro/internal/dnswire"
	"repro/internal/simnet"
	"repro/internal/zone"
)

// testWorld wires a three-level signed hierarchy into a simnet:
// . → com. → example.com., each on its own authoritative server.
type testWorld struct {
	net      *simnet.Network
	clock    *simnet.Clock
	resolver *Resolver
	exZone   *zone.Zone
	rootZone *zone.Zone
	comZone  *zone.Zone
	exAddr   netip.Addr
}

func aRR(name, ip string, ttl uint32) dnswire.RR {
	return dnswire.RR{Name: name, Type: dnswire.TypeA, Class: dnswire.ClassINET, TTL: ttl,
		Data: &dnswire.AData{Addr: netip.MustParseAddr(ip)}}
}

func nsRR(zone, host string) dnswire.RR {
	return dnswire.RR{Name: zone, Type: dnswire.TypeNS, Class: dnswire.ClassINET, TTL: 3600,
		Data: &dnswire.NSData{Host: host}}
}

func buildWorld(t *testing.T, sign bool, uploadDS bool) *testWorld {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	clock := simnet.NewClock(time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC))
	n := simnet.New(clock)

	rootAddr := netip.MustParseAddr("198.41.0.4")
	comAddr := netip.MustParseAddr("192.5.6.30")
	exAddr := netip.MustParseAddr("10.1.0.53")

	rootZone := zone.New(".")
	rootZone.SetSOA("a.root-servers.net.", "nstld.verisign-grs.com.", 1, 300)
	rootZone.Add(nsRR(".", "a.root-servers.net."))
	rootZone.Add(aRR("a.root-servers.net.", rootAddr.String(), 3600))
	rootZone.Add(nsRR("com.", "a.gtld-servers.net."))
	rootZone.Add(aRR("a.gtld-servers.net.", comAddr.String(), 3600))

	comZone := zone.New("com.")
	comZone.SetSOA("a.gtld-servers.net.", "nstld.verisign-grs.com.", 1, 300)
	comZone.Add(nsRR("com.", "a.gtld-servers.net."))
	comZone.Add(nsRR("example.com.", "ns1.example.com."))
	comZone.Add(aRR("ns1.example.com.", exAddr.String(), 3600))

	exZone := zone.New("example.com.")
	exZone.SetSOA("ns1.example.com.", "hostmaster.example.com.", 1, 60)
	exZone.Add(nsRR("example.com.", "ns1.example.com."))
	exZone.Add(aRR("ns1.example.com.", exAddr.String(), 3600))
	exZone.Add(aRR("www.example.com.", "10.1.0.80", 60))
	exZone.Add(dnswire.RR{Name: "example.com.", Type: dnswire.TypeHTTPS, Class: dnswire.ClassINET,
		TTL: 60, Data: &dnswire.SVCBData{Priority: 1, Target: "."}})
	exZone.Add(dnswire.RR{Name: "alias.example.com.", Type: dnswire.TypeCNAME,
		Class: dnswire.ClassINET, TTL: 60, Data: &dnswire.CNAMEData{Target: "www.example.com."}})

	inception := clock.Now().Add(-time.Hour)
	expiration := clock.Now().Add(90 * 24 * time.Hour)
	if sign {
		if err := exZone.Sign(rng, inception, expiration); err != nil {
			t.Fatal(err)
		}
		if uploadDS {
			ds, err := exZone.DS()
			if err != nil {
				t.Fatal(err)
			}
			comZone.Add(ds)
		}
		if err := comZone.Sign(rng, inception, expiration); err != nil {
			t.Fatal(err)
		}
		comDS, err := comZone.DS()
		if err != nil {
			t.Fatal(err)
		}
		rootZone.Add(comDS)
		if err := rootZone.Sign(rng, inception, expiration); err != nil {
			t.Fatal(err)
		}
	}

	for _, hz := range []struct {
		addr netip.Addr
		z    *zone.Zone
	}{{rootAddr, rootZone}, {comAddr, comZone}, {exAddr, exZone}} {
		srv := authserver.New()
		srv.AddZone(hz.z)
		n.RegisterDNS(hz.addr, srv)
	}
	n.SetRootServers([]netip.Addr{rootAddr})

	r := New(n)
	if sign {
		r.Validate = true
		rootKeys, _, _ := rootZone.Lookup(".", dnswire.TypeDNSKEY)
		r.Anchor = rootKeys
	}
	return &testWorld{net: n, clock: clock, resolver: r,
		exZone: exZone, rootZone: rootZone, comZone: comZone, exAddr: exAddr}
}

func TestResolveA(t *testing.T) {
	w := buildWorld(t, false, false)
	res, err := w.resolver.Resolve("www.example.com.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.RCode != dnswire.RCodeNoError || len(res.Answer) != 1 {
		t.Fatalf("res = %+v", res)
	}
	if res.Answer[0].Data.(*dnswire.AData).Addr.String() != "10.1.0.80" {
		t.Error("wrong address")
	}
}

func TestResolveHTTPS(t *testing.T) {
	w := buildWorld(t, false, false)
	res, err := w.resolver.Resolve("example.com.", dnswire.TypeHTTPS)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answer) != 1 || res.Answer[0].Type != dnswire.TypeHTTPS {
		t.Fatalf("res = %+v", res)
	}
}

func TestResolveNXDomain(t *testing.T) {
	w := buildWorld(t, false, false)
	res, err := w.resolver.Resolve("missing.example.com.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.RCode != dnswire.RCodeNXDomain {
		t.Errorf("rcode = %v", res.RCode)
	}
}

func TestResolveCNAMEChase(t *testing.T) {
	w := buildWorld(t, false, false)
	res, err := w.resolver.Resolve("alias.example.com.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	var hasCNAME, hasA bool
	for _, rr := range res.Answer {
		switch rr.Type {
		case dnswire.TypeCNAME:
			hasCNAME = true
		case dnswire.TypeA:
			hasA = true
		}
	}
	if !hasCNAME || !hasA {
		t.Errorf("chase incomplete: %+v", res.Answer)
	}
}

func TestResolveCacheServesStale(t *testing.T) {
	w := buildWorld(t, false, false)
	res1, err := w.resolver.Resolve("www.example.com.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	// Change authoritative data.
	w.exZone.RemoveRRset("www.example.com.", dnswire.TypeA)
	w.exZone.Add(aRR("www.example.com.", "10.9.9.9", 60))
	// Within TTL the cache must serve the old answer.
	w.clock.Advance(30 * time.Second)
	res2, err := w.resolver.Resolve("www.example.com.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Answer[0].Data.(*dnswire.AData).Addr != res1.Answer[0].Data.(*dnswire.AData).Addr {
		t.Error("cache did not serve stored answer within TTL")
	}
	// After TTL expiry the new answer appears.
	w.clock.Advance(60 * time.Second)
	res3, err := w.resolver.Resolve("www.example.com.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Answer[0].Data.(*dnswire.AData).Addr.String() != "10.9.9.9" {
		t.Errorf("cache not refreshed after TTL: %v", res3.Answer[0])
	}
}

// TestCacheExpiryOnVirtualClock pins the cache lifecycle to virtual time:
// within the TTL no upstream traffic happens, live-entry accounting drops
// as entries pass their expiry, and the first post-expiry query goes back
// to the authoritative servers.
func TestCacheExpiryOnVirtualClock(t *testing.T) {
	w := buildWorld(t, false, false)
	if _, err := w.resolver.Resolve("www.example.com.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	if w.resolver.CacheLen() == 0 {
		t.Fatal("nothing cached after a resolution")
	}
	baseline := w.net.QueryCount()

	// Within the 60s record TTL: answered purely from cache.
	w.clock.Advance(30 * time.Second)
	if _, err := w.resolver.Resolve("www.example.com.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	if got := w.net.QueryCount(); got != baseline {
		t.Errorf("cached resolution sent %d upstream queries", got-baseline)
	}

	// Advance beyond every TTL in the hierarchy (NS records carry 3600s):
	// the live-entry count must fall to zero without any eviction pass —
	// expiry is purely a virtual-clock comparison.
	w.clock.Advance(2 * time.Hour)
	if got := w.resolver.CacheLen(); got != 0 {
		t.Errorf("%d entries still live after all TTLs expired", got)
	}

	// The next query must hit the authoritative path again.
	if _, err := w.resolver.Resolve("www.example.com.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	if got := w.net.QueryCount(); got == baseline {
		t.Error("post-expiry resolution sent no upstream queries")
	}
}

func TestResolveADBitSecure(t *testing.T) {
	w := buildWorld(t, true, true)
	res, err := w.resolver.Resolve("example.com.", dnswire.TypeHTTPS)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AuthenticatedData {
		t.Error("AD bit not set for secure chain")
	}
	if len(res.Sigs) == 0 {
		t.Error("signatures not returned")
	}
}

func TestResolveADBitMissingDS(t *testing.T) {
	// The classic misconfiguration: zone signed, DS never uploaded.
	w := buildWorld(t, true, false)
	res, err := w.resolver.Resolve("example.com.", dnswire.TypeHTTPS)
	if err != nil {
		t.Fatal(err)
	}
	if res.AuthenticatedData {
		t.Error("AD bit set despite missing DS")
	}
	if len(res.Sigs) == 0 {
		t.Error("RRSIGs should still be returned (signed but insecure)")
	}
}

func TestResolveServerDown(t *testing.T) {
	w := buildWorld(t, false, false)
	w.net.SetAddrDown(w.exAddr, true)
	if _, err := w.resolver.Resolve("www.example.com.", dnswire.TypeA); err == nil {
		t.Error("resolution succeeded with authoritative server down")
	}
	// Recovery.
	w.net.SetAddrDown(w.exAddr, false)
	if _, err := w.resolver.Resolve("www.example.com.", dnswire.TypeA); err != nil {
		t.Errorf("resolution failed after recovery: %v", err)
	}
}

func TestHandleDNSStubInterface(t *testing.T) {
	w := buildWorld(t, true, true)
	q := dnswire.NewQuery(7, "example.com.", dnswire.TypeHTTPS, true)
	resp := w.resolver.HandleDNS(q)
	if resp.RCode != dnswire.RCodeNoError || !resp.RecursionAvailable {
		t.Fatalf("resp = %+v", resp)
	}
	if !resp.AuthenticatedData {
		t.Error("AD bit missing in stub response")
	}
	var hasSig bool
	for _, rr := range resp.Answer {
		if rr.Type == dnswire.TypeRRSIG {
			hasSig = true
		}
	}
	if !hasSig {
		t.Error("DO stub query missing RRSIG in answer")
	}
	// Without DO: no sigs.
	q2 := dnswire.NewQuery(8, "example.com.", dnswire.TypeHTTPS, false)
	resp2 := w.resolver.HandleDNS(q2)
	for _, rr := range resp2.Answer {
		if rr.Type == dnswire.TypeRRSIG {
			t.Error("non-DO stub response contains RRSIG")
		}
	}
}

func TestCacheLenAndFlush(t *testing.T) {
	w := buildWorld(t, false, false)
	if _, err := w.resolver.Resolve("www.example.com.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	if w.resolver.CacheLen() == 0 {
		t.Error("cache empty after resolution")
	}
	w.resolver.FlushCache()
	if w.resolver.CacheLen() != 0 {
		t.Error("cache not empty after flush")
	}
}

// Package resolver implements a caching recursive DNS resolver over simnet:
// iterative resolution from the root servers, TTL-driven caching on the
// virtual clock, cross-zone CNAME chasing, and DNSSEC chain validation that
// sets the AD bit — the role Google Public DNS (8.8.8.8) and Cloudflare
// (1.1.1.1) play in the paper's measurements.
//
// The cache is load-bearing for two of the paper's findings: stale HTTPS
// records explain both the ECH key-inconsistency window (§4.4.2) and the
// transient IP-hint/A mismatches (§4.3.5).
package resolver

import (
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"repro/internal/dnssec"
	"repro/internal/dnswire"
	"repro/internal/simnet"
)

// Errors returned by resolution.
var (
	ErrServFail  = errors.New("resolver: no authoritative server answered")
	ErrLoop      = errors.New("resolver: resolution loop detected")
	ErrNoServers = errors.New("resolver: no root servers configured")
)

// maxChase bounds CNAME chain length, matching common resolver limits.
const maxChase = 8

// maxDepth bounds referral-following depth.
const maxDepth = 16

// Response is the outcome of a recursive resolution.
type Response struct {
	RCode dnswire.RCode
	// Answer contains the answer RRs in chase order (CNAMEs first).
	Answer []dnswire.RR
	// Sigs contains RRSIGs covering the answer RRsets (when DO was set by
	// the stub or validation ran).
	Sigs []dnswire.RR
	// AuthenticatedData is the AD bit: the full chain validated.
	AuthenticatedData bool
	// Authority carries the SOA for negative answers.
	Authority []dnswire.RR
}

type cacheEntry struct {
	rrs       []dnswire.RR
	sigs      []dnswire.RR
	rcode     dnswire.RCode
	authority []dnswire.RR
	expires   time.Time
	adKnown   bool
	adValue   bool
}

// Resolver is a caching recursive resolver.
type Resolver struct {
	Net *simnet.Network
	// Validate enables DNSSEC chain validation (AD bit computation).
	Validate bool
	// ValidateTypes, when non-nil, restricts validation to the listed
	// query types (a measurement optimisation: the scanner only needs
	// the AD bit on HTTPS responses).
	ValidateTypes map[dnswire.Type]bool
	// Anchor is the trusted root DNSKEY RRset used when Validate is set.
	Anchor []dnswire.RR

	mu    sync.Mutex
	cache map[string]*cacheEntry

	// zoneKeys caches already-validated zone DNSKEY RRsets for
	// zoneKeyTTL of virtual time.
	zoneKeys map[string]zoneKeyEntry
}

type zoneKeyEntry struct {
	keys    []dnswire.RR
	expires time.Time
}

// zoneKeyTTL bounds reuse of validated zone keys (matches DNSKEY TTL).
const zoneKeyTTL = time.Hour

// New creates a resolver on the given network.
func New(net *simnet.Network) *Resolver {
	return &Resolver{Net: net, cache: map[string]*cacheEntry{}, zoneKeys: map[string]zoneKeyEntry{}}
}

// Fork returns a fresh resolver on the given network (normally a per-day
// view of the parent's) with the same validation configuration but empty
// caches. Per-day scan contexts use it to give each simulated day an
// isolated recursor state: with record TTLs far below a day, a fresh cache
// answers identically to the serial run's carried-over cache, without any
// cross-day locking or time skew.
func (r *Resolver) Fork(net *simnet.Network) *Resolver {
	f := New(net)
	f.Validate = r.Validate
	f.ValidateTypes = r.ValidateTypes
	f.Anchor = r.Anchor
	return f
}

// Get implements dnssec.ZoneKeyCache.
func (r *Resolver) Get(zone string) ([]dnswire.RR, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.zoneKeys[zone]
	if !ok || !e.expires.After(r.Net.Clock.Now()) {
		return nil, false
	}
	return e.keys, true
}

// Put implements dnssec.ZoneKeyCache.
func (r *Resolver) Put(zone string, keys []dnswire.RR) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.zoneKeys[zone] = zoneKeyEntry{keys: keys, expires: r.Net.Clock.Now().Add(zoneKeyTTL)}
}

func cacheKey(name string, t dnswire.Type) string {
	return dnswire.CanonicalName(name) + "|" + t.String()
}

// FlushCache drops all cached entries (including validated zone keys).
func (r *Resolver) FlushCache() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cache = map[string]*cacheEntry{}
	r.zoneKeys = map[string]zoneKeyEntry{}
}

// CacheLen returns the number of live cache entries.
func (r *Resolver) CacheLen() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.Net.Clock.Now()
	n := 0
	for _, e := range r.cache {
		if e.expires.After(now) {
			n++
		}
	}
	return n
}

func (r *Resolver) cached(name string, t dnswire.Type) (*cacheEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.cache[cacheKey(name, t)]
	if !ok || !e.expires.After(r.Net.Clock.Now()) {
		return nil, false
	}
	return e, true
}

func (r *Resolver) store(name string, t dnswire.Type, e *cacheEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cache[cacheKey(name, t)] = e
}

// minTTL returns the smallest TTL in the set, defaulting to def.
func minTTL(rrs []dnswire.RR, def uint32) uint32 {
	ttl := def
	for i, rr := range rrs {
		if i == 0 || rr.TTL < ttl {
			ttl = rr.TTL
		}
	}
	return ttl
}

// lookupAuthoritative performs one iterative resolution (no CNAME chasing,
// no cache) starting from the root servers.
func (r *Resolver) lookupAuthoritative(name string, t dnswire.Type) (*cacheEntry, error) {
	servers := r.Net.RootServers()
	if len(servers) == 0 {
		return nil, ErrNoServers
	}
	name = dnswire.CanonicalName(name)
	for depth := 0; depth < maxDepth; depth++ {
		resp, err := r.queryAny(servers, name, t)
		if err != nil {
			return nil, err
		}
		switch {
		case resp.RCode == dnswire.RCodeNXDomain,
			resp.RCode == dnswire.RCodeNoError && len(resp.Answer) > 0,
			resp.RCode == dnswire.RCodeNoError && resp.Authoritative:
			rrs, sigs := splitSigs(resp.Answer)
			ttl := minTTL(rrs, 300)
			if len(rrs) == 0 {
				// Negative answer: TTL from SOA minimum if present.
				ttl = negativeTTL(resp.Authority)
			}
			auth, _ := splitSigs(resp.Authority)
			return &cacheEntry{
				rrs: rrs, sigs: sigs, rcode: resp.RCode, authority: auth,
				expires: r.Net.Clock.Now().Add(time.Duration(ttl) * time.Second),
			}, nil
		case resp.RCode != dnswire.RCodeNoError:
			return &cacheEntry{
				rcode:   resp.RCode,
				expires: r.Net.Clock.Now().Add(30 * time.Second),
			}, nil
		}
		// Referral: gather next servers from the authority NS set.
		next, err := r.referralServers(resp)
		if err != nil {
			return nil, err
		}
		if len(next) == 0 {
			return nil, fmt.Errorf("%w: dead referral for %s", ErrServFail, name)
		}
		servers = next
	}
	return nil, ErrLoop
}

// queryAny tries the servers in order and returns the first response.
func (r *Resolver) queryAny(servers []netip.Addr, name string, t dnswire.Type) (*dnswire.Message, error) {
	q := dnswire.NewQuery(uint16(len(name)*31+int(t)), name, t, true)
	q.RecursionDesired = false
	var lastErr error
	for _, s := range servers {
		resp, err := r.Net.QueryDNS(s, q)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.RCode == dnswire.RCodeRefused {
			lastErr = fmt.Errorf("resolver: %v refused", s)
			continue
		}
		return resp, nil
	}
	if lastErr == nil {
		lastErr = ErrServFail
	}
	return nil, fmt.Errorf("%w: %v", ErrServFail, lastErr)
}

// referralServers extracts and resolves the name server addresses from a
// referral response.
func (r *Resolver) referralServers(resp *dnswire.Message) ([]netip.Addr, error) {
	var hosts []string
	for _, rr := range resp.Authority {
		if ns, ok := rr.Data.(*dnswire.NSData); ok {
			hosts = append(hosts, ns.Host)
		}
	}
	var addrs []netip.Addr
	// Prefer glue.
	glue := map[string][]netip.Addr{}
	for _, rr := range resp.Additional {
		switch d := rr.Data.(type) {
		case *dnswire.AData:
			glue[rr.Name] = append(glue[rr.Name], d.Addr)
		case *dnswire.AAAAData:
			glue[rr.Name] = append(glue[rr.Name], d.Addr)
		}
	}
	for _, h := range hosts {
		h = dnswire.CanonicalName(h)
		if g, ok := glue[h]; ok {
			addrs = append(addrs, g...)
			continue
		}
		// Glueless delegation: resolve the NS host's address.
		sub, err := r.resolveRRset(h, dnswire.TypeA, maxChase)
		if err != nil {
			continue
		}
		for _, rr := range sub.rrs {
			if a, ok := rr.Data.(*dnswire.AData); ok {
				addrs = append(addrs, a.Addr)
			}
		}
	}
	return addrs, nil
}

func splitSigs(rrs []dnswire.RR) (data, sigs []dnswire.RR) {
	for _, rr := range rrs {
		if rr.Type == dnswire.TypeRRSIG {
			sigs = append(sigs, rr)
		} else {
			data = append(data, rr)
		}
	}
	return data, sigs
}

func negativeTTL(authority []dnswire.RR) uint32 {
	for _, rr := range authority {
		if soa, ok := rr.Data.(*dnswire.SOAData); ok {
			ttl := soa.Minimum
			if rr.TTL < ttl {
				ttl = rr.TTL
			}
			return ttl
		}
	}
	return 60
}

// resolveRRset resolves one (name, type) with caching, no CNAME chasing.
func (r *Resolver) resolveRRset(name string, t dnswire.Type, depth int) (*cacheEntry, error) {
	if depth <= 0 {
		return nil, ErrLoop
	}
	if e, ok := r.cached(name, t); ok {
		return e, nil
	}
	e, err := r.lookupAuthoritative(name, t)
	if err != nil {
		return nil, err
	}
	r.store(name, t, e)
	return e, nil
}

// Resolve performs a full recursive resolution with CNAME chasing and
// (when enabled) DNSSEC validation.
func (r *Resolver) Resolve(name string, t dnswire.Type) (*Response, error) {
	name = dnswire.CanonicalName(name)
	out := &Response{RCode: dnswire.RCodeNoError, AuthenticatedData: r.Validate}
	current := name
	for hop := 0; hop < maxChase; hop++ {
		e, err := r.resolveRRset(current, t, maxChase)
		if err != nil {
			return nil, err
		}
		out.RCode = e.rcode
		out.Answer = append(out.Answer, e.rrs...)
		out.Sigs = append(out.Sigs, e.sigs...)
		if len(e.rrs) == 0 {
			out.Authority = e.authority
		}
		shouldValidate := r.Validate && (r.ValidateTypes == nil || r.ValidateTypes[t])
		if shouldValidate && (len(e.rrs) > 0 || e.rcode == dnswire.RCodeNoError) {
			out.AuthenticatedData = out.AuthenticatedData && r.validateEntry(current, t, e)
		} else {
			out.AuthenticatedData = false
		}
		// Determine whether to chase a CNAME: answer has a CNAME at
		// `current` but no record of the queried type.
		next := chaseTarget(e.rrs, current, t)
		if next == "" {
			return out, nil
		}
		current = next
		// If the chased target's records were already included by the
		// authoritative server (in-zone chase), stop here.
		if hasType(e.rrs, current, t) {
			return out, nil
		}
	}
	return nil, ErrLoop
}

func chaseTarget(rrs []dnswire.RR, name string, t dnswire.Type) string {
	if t == dnswire.TypeCNAME {
		return ""
	}
	var target string
	for _, rr := range rrs {
		if rr.Type == t && dnswire.CanonicalName(rr.Name) == name {
			return "" // direct answer present
		}
		if c, ok := rr.Data.(*dnswire.CNAMEData); ok && dnswire.CanonicalName(rr.Name) == name {
			target = dnswire.CanonicalName(c.Target)
		}
	}
	return target
}

func hasType(rrs []dnswire.RR, name string, t dnswire.Type) bool {
	for _, rr := range rrs {
		if rr.Type == t && dnswire.CanonicalName(rr.Name) == name {
			return true
		}
	}
	return false
}

// validateEntry runs chain validation for one RRset and caches the result.
func (r *Resolver) validateEntry(name string, t dnswire.Type, e *cacheEntry) bool {
	r.mu.Lock()
	if e.adKnown {
		v := e.adValue
		r.mu.Unlock()
		return v
	}
	r.mu.Unlock()
	v := dnssec.NewValidator(&chainSource{r: r}, r.Anchor, r.Net.Clock.Now())
	v.KeyCache = r
	res, _ := v.Validate(name, t)
	r.mu.Lock()
	e.adKnown = true
	e.adValue = res == dnssec.Secure
	r.mu.Unlock()
	return e.adValue
}

// chainSource adapts the resolver's own iterative lookups to the validator.
type chainSource struct{ r *Resolver }

func (cs *chainSource) FetchRRset(name string, t dnswire.Type) ([]dnswire.RR, []dnswire.RR, bool) {
	e, err := cs.r.resolveRRset(name, t, maxChase)
	if err != nil || e.rcode != dnswire.RCodeNoError || len(e.rrs) == 0 {
		return nil, nil, false
	}
	return e.rrs, e.sigs, true
}

// FetchRRset exposes the resolver as a dnssec.ChainSource so callers (e.g.
// the Table 9 validation census) can run full chain validation over live
// recursive lookups.
func (r *Resolver) FetchRRset(name string, t dnswire.Type) ([]dnswire.RR, []dnswire.RR, bool) {
	return (&chainSource{r: r}).FetchRRset(name, t)
}

// HandleDNS implements simnet.DNSHandler so the resolver can be placed at a
// public address (e.g. 8.8.8.8) and queried by stubs.
func (r *Resolver) HandleDNS(q *dnswire.Message) *dnswire.Message {
	resp := q.Reply()
	resp.RecursionAvailable = true
	if len(q.Question) != 1 {
		resp.RCode = dnswire.RCodeFormErr
		return resp
	}
	question := q.Question[0]
	res, err := r.Resolve(question.Name, question.Type)
	if err != nil {
		resp.RCode = dnswire.RCodeServFail
		return resp
	}
	resp.RCode = res.RCode
	resp.Answer = res.Answer
	if q.DNSSECOK() {
		resp.Answer = append(resp.Answer, res.Sigs...)
		resp.Authority = res.Authority
	}
	resp.AuthenticatedData = res.AuthenticatedData
	return resp
}

package obs

import (
	"strings"
	"testing"
	"time"
)

func TestTracerHeadSampling(t *testing.T) {
	tr := NewTracer(testClock(), TraceConfig{SampleEvery: 4, Capacity: 16})
	var sampled int
	for i := 0; i < 16; i++ {
		if trace := tr.Start("q"); trace != nil {
			sampled++
			tr.Finish(trace, time.Duration(i+1)*time.Millisecond)
		}
	}
	if sampled != 4 {
		t.Fatalf("sampled %d of 16 with SampleEvery=4, want 4", sampled)
	}
	// The first exchange is always sampled (head-based, not offset).
	tr2 := NewTracer(nil, TraceConfig{SampleEvery: 100})
	if tr2.Start("first") == nil {
		t.Fatal("first exchange was not sampled")
	}
}

func TestTracerRingBoundAndSlowest(t *testing.T) {
	tr := NewTracer(nil, TraceConfig{SampleEvery: 1, Capacity: 4})
	for i := 1; i <= 10; i++ {
		trace := tr.Start("q")
		tr.Finish(trace, time.Duration(i)*time.Millisecond)
	}
	if tr.Len() != 4 {
		t.Fatalf("ring len = %d, want 4", tr.Len())
	}
	slow := tr.Slowest(2)
	if len(slow) != 2 {
		t.Fatalf("Slowest(2) = %d traces", len(slow))
	}
	if slow[0].Duration != 10*time.Millisecond || slow[1].Duration != 9*time.Millisecond {
		t.Fatalf("slowest durations = %v, %v", slow[0].Duration, slow[1].Duration)
	}
}

func TestNilTracerAndTraceSafe(t *testing.T) {
	var tr *Tracer
	trace := tr.Start("q")
	if trace != nil {
		t.Fatal("nil tracer sampled a trace")
	}
	// Every trace method must be a no-op on nil.
	trace.Add("x", 0, 0)
	idx := trace.Enter("y", 0)
	if idx != -1 {
		t.Fatalf("nil Enter = %d, want -1", idx)
	}
	trace.Exit(idx, 0)
	if trace.Tree() != "" {
		t.Fatal("nil Tree returned text")
	}
	tr.Finish(trace, time.Second)
	if tr.Len() != 0 || tr.Slowest(1) != nil {
		t.Fatal("nil tracer retained state")
	}
}

func TestTraceTreeNesting(t *testing.T) {
	tr := NewTracer(testClock(), TraceConfig{SampleEvery: 1})
	trace := tr.Start("example.com")
	trace.Add("receive", 0, 0, L("qtype", "HTTPS"))
	dial := trace.Enter("dial doh-0", 0, L("proto", "doh"))
	trace.Add("cache.probe", 0, 0, L("state", "miss"))
	trace.Exit(dial, 7*time.Millisecond, L("rcode", "NOERROR"))
	trace.Add("commit", 7*time.Millisecond, 0)
	tr.Finish(trace, 7*time.Millisecond)

	if got := trace.Spans[1].Depth; got != 0 {
		t.Fatalf("dial depth = %d, want 0", got)
	}
	if got := trace.Spans[2].Depth; got != 1 {
		t.Fatalf("cache.probe depth = %d, want 1 (nested under dial)", got)
	}
	if got := trace.Spans[3].Depth; got != 0 {
		t.Fatalf("commit depth = %d, want 0 (dial exited)", got)
	}
	tree := trace.Tree()
	for _, want := range []string{"example.com", "dial doh-0", "cache.probe", "state=miss", "rcode=NOERROR", "7ms"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("tree missing %q:\n%s", want, tree)
		}
	}
}

package obs

import (
	"strings"
	"testing"
	"time"
)

func TestTracerHeadSampling(t *testing.T) {
	tr := NewTracer(testClock(), TraceConfig{SampleEvery: 4, Capacity: 16})
	var sampled int
	for i := 0; i < 16; i++ {
		if trace := tr.Start("q"); trace != nil {
			sampled++
			tr.Finish(trace, time.Duration(i+1)*time.Millisecond)
		}
	}
	if sampled != 4 {
		t.Fatalf("sampled %d of 16 with SampleEvery=4, want 4", sampled)
	}
	// The first exchange is always sampled (head-based, not offset).
	tr2 := NewTracer(nil, TraceConfig{SampleEvery: 100})
	if tr2.Start("first") == nil {
		t.Fatal("first exchange was not sampled")
	}
}

func TestTracerRingBoundAndSlowest(t *testing.T) {
	tr := NewTracer(nil, TraceConfig{SampleEvery: 1, Capacity: 4})
	for i := 1; i <= 10; i++ {
		trace := tr.Start("q")
		tr.Finish(trace, time.Duration(i)*time.Millisecond)
	}
	if tr.Len() != 4 {
		t.Fatalf("ring len = %d, want 4", tr.Len())
	}
	slow := tr.Slowest(2)
	if len(slow) != 2 {
		t.Fatalf("Slowest(2) = %d traces", len(slow))
	}
	if slow[0].Duration != 10*time.Millisecond || slow[1].Duration != 9*time.Millisecond {
		t.Fatalf("slowest durations = %v, %v", slow[0].Duration, slow[1].Duration)
	}
}

func TestNilTracerAndTraceSafe(t *testing.T) {
	var tr *Tracer
	trace := tr.Start("q")
	if trace != nil {
		t.Fatal("nil tracer sampled a trace")
	}
	// Every trace method must be a no-op on nil.
	trace.Add("x", 0, 0)
	idx := trace.Enter("y", 0)
	if idx != -1 {
		t.Fatalf("nil Enter = %d, want -1", idx)
	}
	trace.Exit(idx, 0)
	if trace.Tree() != "" {
		t.Fatal("nil Tree returned text")
	}
	tr.Finish(trace, time.Second)
	if tr.Len() != 0 || tr.Slowest(1) != nil {
		t.Fatal("nil tracer retained state")
	}
}

// TestTailSamplingKeepsAnomalies drives exchanges the head sampler
// would skip and asserts the tail ring retains exactly the anomalous
// ones: the flagged stale serve and the over-threshold slow exchange,
// ranked by virtual cost.
func TestTailSamplingKeepsAnomalies(t *testing.T) {
	tr := NewTracer(testClock(), TraceConfig{
		SampleEvery: 100,
		Tail:        &TailConfig{Latency: 50 * time.Millisecond, TopK: 4},
	})
	for i := 0; i < 10; i++ {
		trace := tr.Start("q")
		if trace == nil {
			t.Fatalf("exchange %d untraced with tail sampling on", i)
		}
		dur := 10 * time.Millisecond
		if i == 3 {
			trace.Flag(FlagStale)
		}
		if i == 7 {
			dur = 60 * time.Millisecond
		}
		tr.Finish(trace, dur)
	}
	// Head sampling unchanged: only the first exchange (every=100).
	if tr.Len() != 1 {
		t.Fatalf("head ring len = %d, want 1", tr.Len())
	}
	tail := tr.Tail()
	if len(tail) != 2 {
		t.Fatalf("tail ring len = %d, want 2 (stale + slow): %v", len(tail), tail)
	}
	if tail[0].Duration != 60*time.Millisecond {
		t.Fatalf("tail[0] duration = %v, want the 60ms exchange first", tail[0].Duration)
	}
	if tail[1].Flags != FlagStale {
		t.Fatalf("tail[1] flags = %v, want stale", tail[1].Flags)
	}
	if got := tail[1].Flags.String(); got != "stale" {
		t.Fatalf("flag rendering = %q, want \"stale\"", got)
	}
}

// TestTailRingBoundedAndRanked pins the top-K bound and the cost
// ranking: feeding more anomalies than the ring holds keeps the K most
// expensive, in rank order, with ties broken by name.
func TestTailRingBoundedAndRanked(t *testing.T) {
	tr := NewTracer(nil, TraceConfig{Tail: &TailConfig{TopK: 3}})
	for i := 1; i <= 8; i++ {
		trace := tr.Start("q")
		trace.Flag(FlagError)
		tr.Finish(trace, time.Duration(i)*time.Millisecond)
	}
	if tr.TailLen() != 3 {
		t.Fatalf("tail ring len = %d, want 3", tr.TailLen())
	}
	tail := tr.Tail()
	for i, want := range []time.Duration{8 * time.Millisecond, 7 * time.Millisecond, 6 * time.Millisecond} {
		if tail[i].Duration != want {
			t.Fatalf("tail[%d] duration = %v, want %v", i, tail[i].Duration, want)
		}
	}
	// Equal-cost anomalies rank by name: the same cost under two names
	// retains the lexically earlier one at the ring floor.
	tr2 := NewTracer(nil, TraceConfig{Tail: &TailConfig{TopK: 2}})
	for _, name := range []string{"bbb.test", "aaa.test", "ccc.test"} {
		trace := tr2.Start(name)
		trace.Flag(FlagServFail)
		tr2.Finish(trace, 5*time.Millisecond)
	}
	names := []string{tr2.Tail()[0].Name, tr2.Tail()[1].Name}
	if names[0] != "aaa.test" || names[1] != "bbb.test" {
		t.Fatalf("tie-break kept %v, want [aaa.test bbb.test]", names)
	}
}

// TestTailNilSafe pins the nil and tail-off paths: a nil tracer and a
// head-only tracer report no tail state.
func TestTailNilSafe(t *testing.T) {
	var tr *Tracer
	if tr.TailEnabled() || tr.TailLen() != 0 || tr.Tail() != nil {
		t.Fatal("nil tracer reported tail state")
	}
	head := NewTracer(nil, TraceConfig{SampleEvery: 1})
	if head.TailEnabled() {
		t.Fatal("head-only tracer reported tail enabled")
	}
	trace := head.Start("q")
	trace.Flag(FlagStale)
	head.Finish(trace, time.Second)
	if head.TailLen() != 0 {
		t.Fatal("head-only tracer retained a tail trace")
	}
}

func TestTraceTreeNesting(t *testing.T) {
	tr := NewTracer(testClock(), TraceConfig{SampleEvery: 1})
	trace := tr.Start("example.com")
	trace.Add("receive", 0, 0, L("qtype", "HTTPS"))
	dial := trace.Enter("dial doh-0", 0, L("proto", "doh"))
	trace.Add("cache.probe", 0, 0, L("state", "miss"))
	trace.Exit(dial, 7*time.Millisecond, L("rcode", "NOERROR"))
	trace.Add("commit", 7*time.Millisecond, 0)
	tr.Finish(trace, 7*time.Millisecond)

	if got := trace.Spans[1].Depth; got != 0 {
		t.Fatalf("dial depth = %d, want 0", got)
	}
	if got := trace.Spans[2].Depth; got != 1 {
		t.Fatalf("cache.probe depth = %d, want 1 (nested under dial)", got)
	}
	if got := trace.Spans[3].Depth; got != 0 {
		t.Fatalf("commit depth = %d, want 0 (dial exited)", got)
	}
	tree := trace.Tree()
	for _, want := range []string{"example.com", "dial doh-0", "cache.probe", "state=miss", "rcode=NOERROR", "7ms"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("tree missing %q:\n%s", want, tree)
		}
	}
}

package obs

import (
	"sync"
	"time"
)

// Point is one sampled registry snapshot on the virtual timeline.
type Point struct {
	At    time.Time
	Label string
	Snap  *Snapshot
}

// Sampler captures registry snapshots into a time series. It has two
// triggers, matching the two clock regimes the campaign runs under:
//
//   - Poll takes an interval-driven sample when the virtual clock has
//     reached the next tick — the trigger for live-clock loops (hourly
//     ECH scans, chaos drills), where virtual time actually advances.
//
//   - Force takes a labeled sample immediately — the trigger for
//     stage boundaries inside a scan day, whose per-day replica clocks
//     are deliberately frozen (see core.newDayContext) and would never
//     fire an interval.
//
// Campaign samplers run stable-only, so the collected series holds only
// schedule-independent metrics and pipelined runs merge byte-identically
// in commit order (the package determinism contract).
type Sampler struct {
	mu         sync.Mutex
	reg        *Registry
	clock      Clock
	interval   time.Duration
	next       time.Time
	stableOnly bool
	points     []Point
}

// NewSampler builds a sampler over reg polling at interval on clock.
func NewSampler(reg *Registry, clock Clock, interval time.Duration, stableOnly bool) *Sampler {
	s := &Sampler{reg: reg, clock: clock, interval: interval, stableOnly: stableOnly}
	if clock != nil && interval > 0 {
		s.next = clock.Now().Add(interval)
	}
	return s
}

// Poll takes an interval sample if the clock has reached the next tick,
// reporting whether one was taken. Multiple elapsed intervals collapse
// into one sample (the registry is cumulative; nothing is lost).
func (s *Sampler) Poll() bool {
	if s == nil || s.clock == nil || s.interval <= 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock.Now()
	if now.Before(s.next) {
		return false
	}
	for !s.next.After(now) {
		s.next = s.next.Add(s.interval)
	}
	s.take(now, "tick")
	return true
}

// Force takes a labeled sample immediately.
func (s *Sampler) Force(label string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var now time.Time
	if s.clock != nil {
		now = s.clock.Now()
	}
	s.take(now, label)
}

// take appends one sample; callers hold s.mu.
func (s *Sampler) take(now time.Time, label string) {
	snap := s.reg.Snapshot()
	if s.stableOnly {
		snap = s.reg.StableSnapshot()
	}
	s.points = append(s.points, Point{At: now, Label: label, Snap: snap})
}

// Points returns the collected samples in capture order.
func (s *Sampler) Points() []Point {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Point(nil), s.points...)
}

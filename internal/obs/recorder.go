package obs

import (
	"sort"
	"sync"
	"time"
)

// DefaultRecorderCapacity bounds a flight recorder's event ring when the
// caller does not choose one. It is sized so a scan day's stable events
// fit without drops — see the capture-determinism note on StableEvents.
const DefaultRecorderCapacity = 4096

// Event is one typed flight-recorder event on the virtual timeline:
// what happened (Kind), when on the virtual clock (At), and to whom
// (Labels, sorted by key). Events are emitted at the moment state
// changes — a pool member entering cooldown, a stale answer served, a
// flash crowd starting — so a drill report can answer "what led up to
// this?" without replaying the run.
type Event struct {
	At     time.Time `json:"at"`
	Kind   string    `json:"kind"`
	Labels []Label   `json:"labels,omitempty"`
}

// Key renders the event's (kind, sorted labels) identity — the grouping
// key for aggregation and the canonical tie-break for sorting.
func (e Event) Key() string { return metricKey(e.Kind, e.Labels) }

// Recorder is a bounded flight-recorder ring of typed events stamped by
// the virtual clock. A nil *Recorder is valid everywhere and records
// nothing, so emission sites pay one nil check when the recorder is off.
//
// Like the metrics registry, the recorder distinguishes stable from
// volatile event kinds: kinds whose emission multiset depends on worker
// interleaving (attempt-side transport events — pool cooldowns, races,
// per-frontend stale serves) are marked volatile by their emitter, and
// StableEvents excludes them, which is what lets anomaly captures ride
// pipelined campaigns byte-identically. Window returns everything, for
// live single-driver tooling.
type Recorder struct {
	clock Clock
	cap   int

	mu       sync.Mutex
	events   []Event // oldest first
	dropped  uint64
	volatile map[string]bool
	// counts is the exact stable-kind emission multiset, keyed by
	// Event.Key(). Unlike the ring it is never evicted, so capture
	// bundles stay exact even when volatile-event pressure overflows the
	// ring — see StableCounts.
	counts map[string]*EventCount
}

// NewRecorder builds a recorder on the given clock; capacity ≤ 0 selects
// DefaultRecorderCapacity.
func NewRecorder(clock Clock, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCapacity
	}
	return &Recorder{
		clock: clock, cap: capacity,
		volatile: map[string]bool{},
		counts:   map[string]*EventCount{},
	}
}

// Emit records one event at the clock's current virtual time (nil-safe).
func (r *Recorder) Emit(kind string, labels ...Label) {
	if r == nil {
		return
	}
	e := Event{Kind: kind, Labels: sortedLabels(labels)}
	if r.clock != nil {
		e.At = r.clock.Now()
	}
	r.mu.Lock()
	r.events = append(r.events, e)
	if len(r.events) > r.cap {
		over := len(r.events) - r.cap
		r.events = r.events[over:]
		r.dropped += uint64(over)
	}
	if !r.volatile[e.Kind] {
		k := e.Key()
		if c, ok := r.counts[k]; ok {
			c.Count++
		} else {
			r.counts[k] = &EventCount{Kind: e.Kind, Labels: e.Labels, Count: 1}
		}
	}
	r.mu.Unlock()
}

// SetVolatile marks event kinds as schedule-dependent: their emission
// multiset varies with worker interleaving even for a fixed seed, so
// StableEvents and StableCounts — the capture views — exclude them.
// Counts accumulated for a kind before it is declared volatile are
// purged, but emitters should declare volatility at wiring time, before
// any traffic, as the fleet does.
func (r *Recorder) SetVolatile(kinds ...string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	for _, k := range kinds {
		r.volatile[k] = true
	}
	for key, c := range r.counts {
		if r.volatile[c.Kind] {
			delete(r.counts, key)
		}
	}
	r.mu.Unlock()
}

// Len reports the number of retained events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Dropped reports how many events the bounded ring has evicted. A
// non-zero count means Window and StableEvents describe a truncated
// timeline (and capture determinism is void — size the ring to the run).
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Window returns the retained events with from ≤ At ≤ to, in arrival
// order — the live drill view, volatile kinds included.
func (r *Recorder) Window(from, to time.Time) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	for _, e := range r.events {
		if e.At.Before(from) || e.At.After(to) {
			continue
		}
		out = append(out, e)
	}
	return out
}

// StableEvents returns the retained stable-kind events in canonical
// (At, key) order. Arrival order under concurrent emitters is
// schedule-dependent even when the emission multiset is not — and under
// a frozen per-day clock every At is equal — so the canonical sort, not
// the ring order, is what anomaly captures commit. Determinism holds as
// long as the ring never dropped (Dropped() == 0): eviction is
// arrival-ordered, so an overflowing ring forfeits the guarantee.
func (r *Recorder) StableEvents() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	var out []Event
	for _, e := range r.events {
		if !r.volatile[e.Kind] {
			out = append(out, e)
		}
	}
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].At.Equal(out[j].At) {
			return out[i].At.Before(out[j].At)
		}
		return out[i].Key() < out[j].Key()
	})
	return out
}

// StableCounts returns the exact stable-kind emission multiset,
// aggregated by (kind, sorted labels) and sorted by key. Unlike
// StableEvents it is immune to ring eviction: volatile-event pressure
// can overflow the bounded ring (Dropped() > 0 voids the windowed
// views) without perturbing these counts, which is why anomaly capture
// bundles are built from this accessor rather than the ring.
func (r *Recorder) StableCounts() []EventCount {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	keys := make([]string, 0, len(r.counts))
	for k := range r.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]EventCount, 0, len(keys))
	for _, k := range keys {
		out = append(out, *r.counts[k])
	}
	r.mu.Unlock()
	return out
}

// EventCount is one aggregated event-multiset entry: how many times the
// (kind, labels) event fired.
type EventCount struct {
	Kind   string  `json:"kind"`
	Labels []Label `json:"labels,omitempty"`
	Count  uint64  `json:"count"`
}

// Key renders the group's (kind, sorted labels) identity — the same
// rendering Event.Key uses.
func (c EventCount) Key() string { return metricKey(c.Kind, c.Labels) }

// CountEvents aggregates events by (kind, sorted labels), returning the
// counts sorted by key — the compact, order-insensitive form anomaly
// captures store.
func CountEvents(events []Event) []EventCount {
	byKey := map[string]*EventCount{}
	keys := make([]string, 0, 8)
	for _, e := range events {
		k := e.Key()
		if c, ok := byKey[k]; ok {
			c.Count++
			continue
		}
		byKey[k] = &EventCount{Kind: e.Kind, Labels: e.Labels, Count: 1}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]EventCount, 0, len(keys))
	for _, k := range keys {
		out = append(out, *byKey[k])
	}
	return out
}

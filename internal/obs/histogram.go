package obs

import (
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets is the fixed bucket ladder for exchange-latency
// histograms, spanning the simulation's synthetic RTT band (2–20ms base,
// 4× tails, plus connection-setup multiples) with headroom.
func DefaultLatencyBuckets() []time.Duration {
	return []time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
		10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
		100 * time.Millisecond, 250 * time.Millisecond, 1 * time.Second,
	}
}

// Histogram is a fixed-bucket duration histogram with lock-free
// observation and optional per-bucket exemplars (the slowest observation
// in each bucket, tagged with its trace ID — the slow-query breadcrumb
// from histogram to span tree). Bucket semantics follow Prometheus: an
// observation lands in the first bucket whose upper bound is ≥ the
// value; over-range observations land in the implicit +Inf bucket.
type Histogram struct {
	bounds []time.Duration // sorted ascending; +Inf implicit at the end

	counts []atomic.Uint64 // per-bucket (non-cumulative), len(bounds)+1
	count  atomic.Uint64
	sum    atomic.Int64 // nanoseconds

	mu        sync.Mutex
	exemplars []exemplar // len(bounds)+1
}

type exemplar struct {
	traceID uint64
	value   time.Duration
}

// NewHistogram builds a histogram over the given bucket bounds (sorted
// and deduplicated; empty bounds select DefaultLatencyBuckets).
func NewHistogram(bounds ...time.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets()
	}
	bs := append([]time.Duration(nil), bounds...)
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	dedup := bs[:0]
	for i, b := range bs {
		if i == 0 || b != bs[i-1] {
			dedup = append(dedup, b)
		}
	}
	h := &Histogram{bounds: dedup}
	h.counts = make([]atomic.Uint64, len(dedup)+1)
	h.exemplars = make([]exemplar, len(dedup)+1)
	return h
}

// bucketIndex returns the bucket d lands in: the first bound ≥ d, or the
// +Inf bucket past the last bound.
func (h *Histogram) bucketIndex(d time.Duration) int {
	return sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= d })
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.counts[h.bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// ObserveExemplar records one duration and attaches the trace as the
// bucket's exemplar if it is the slowest observation seen there.
func (h *Histogram) ObserveExemplar(d time.Duration, traceID uint64) {
	i := h.bucketIndex(d)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	if traceID == 0 {
		return
	}
	h.mu.Lock()
	if d > h.exemplars[i].value || h.exemplars[i].traceID == 0 {
		h.exemplars[i] = exemplar{traceID: traceID, value: d}
	}
	h.mu.Unlock()
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Quantile estimates the q-quantile (0 < q ≤ 1) as the upper bound of
// the bucket holding the target cumulative rank — the resolution a
// fixed-bucket histogram can honestly offer. Observations past the last
// finite bound clamp to that bound (the +Inf bucket has no upper edge),
// and an empty histogram reports 0. The rank is ceil(q·count), so an
// observation exactly at a bucket boundary resolves to that bucket's
// bound, matching Observe's le-inclusive placement.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 || q <= 0 || len(h.bounds) == 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			break
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// Quantile is the snapshot-side counterpart of Histogram.Quantile: it
// estimates the q-quantile from a snapshotted histogram metric's
// cumulative buckets, which is the only form drill deltas (Snapshot.Sub)
// exist in. Non-histogram or empty metrics report 0; ranks landing in
// the +Inf bucket clamp to the last finite bound.
func (m Metric) Quantile(q float64) time.Duration {
	if m.Count == 0 || len(m.Buckets) == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(m.Count)))
	if rank == 0 {
		rank = 1
	}
	var lastFinite time.Duration
	for _, b := range m.Buckets {
		// ParseFloat accepts "+Inf"; only finite bounds are candidates.
		if sec, err := strconv.ParseFloat(b.LE, 64); err == nil && !math.IsInf(sec, 0) {
			lastFinite = time.Duration(sec * float64(time.Second))
		}
		if b.Count >= rank {
			break
		}
	}
	return lastFinite
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// snapshot renders the histogram's cumulative buckets for a Snapshot.
func (h *Histogram) snapshot() (count uint64, sumSec float64, buckets []Bucket) {
	h.mu.Lock()
	ex := append([]exemplar(nil), h.exemplars...)
	h.mu.Unlock()
	buckets = make([]Bucket, len(h.bounds)+1)
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i].Seconds())
		}
		buckets[i] = Bucket{LE: le, Count: cum}
		if ex[i].traceID != 0 {
			buckets[i].ExemplarTrace = ex[i].traceID
			buckets[i].ExemplarSec = ex[i].value.Seconds()
		}
	}
	return h.count.Load(), h.Sum().Seconds(), buckets
}

package obs

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/simnet"
)

func testClock() *simnet.Clock {
	return simnet.NewClock(time.Date(2023, 7, 1, 12, 0, 0, 0, time.UTC))
}

func TestRatioZeroDenominator(t *testing.T) {
	if got := Ratio(5, 0); got != 0 {
		t.Fatalf("Ratio(5, 0) = %v, want 0", got)
	}
	if got := Ratio(1, 4); got != 0.25 {
		t.Fatalf("Ratio(1, 4) = %v, want 0.25", got)
	}
}

func TestCounterGaugeSnapshot(t *testing.T) {
	r := NewRegistry(testClock())
	c := r.Counter("requests_total", L("proto", "doh"))
	c.Add(3)
	c.Inc()
	r.Gauge("pool_healthy").Set(7)
	var ext Counter
	ext.Add(2)
	r.RegisterCounter(&ext, "external_total")
	r.RegisterGaugeFunc(func() float64 { return 1.5 }, "view_gauge")

	snap := r.Snapshot()
	if v := snap.Value("requests_total", L("proto", "doh")); v != 4 {
		t.Fatalf("requests_total = %v, want 4", v)
	}
	if v := snap.Value("pool_healthy"); v != 7 {
		t.Fatalf("pool_healthy = %v, want 7", v)
	}
	if v := snap.Value("external_total"); v != 2 {
		t.Fatalf("external_total = %v, want 2", v)
	}
	if v := snap.Value("view_gauge"); v != 1.5 {
		t.Fatalf("view_gauge = %v, want 1.5", v)
	}
	// Counter() must be idempotent: same key, same handle.
	if r.Counter("requests_total", L("proto", "doh")) != c {
		t.Fatal("Counter() returned a fresh handle for an existing key")
	}
}

func TestRegisterView(t *testing.T) {
	r := NewRegistry(nil)
	r.RegisterView(func(add ViewAdd) {
		add("cache_hits_total", KindCounter, 10)
		add("cache_entries", KindGauge, 4, L("shard", "0"))
	})
	snap := r.Snapshot()
	if v := snap.Value("cache_hits_total"); v != 10 {
		t.Fatalf("cache_hits_total = %v, want 10", v)
	}
	if v := snap.Value("cache_entries", L("shard", "0")); v != 4 {
		t.Fatalf("cache_entries = %v, want 4", v)
	}
}

func TestStableSnapshotExcludesVolatile(t *testing.T) {
	r := NewRegistry(nil)
	r.Counter("stable_total").Add(1)
	r.Counter("noisy_total", L("member", "a")).Add(9)
	r.SetVolatile("noisy_total")
	snap := r.StableSnapshot()
	if _, ok := snap.Get("noisy_total", L("member", "a")); ok {
		t.Fatal("StableSnapshot kept a volatile metric")
	}
	if v := snap.Value("stable_total"); v != 1 {
		t.Fatalf("stable_total = %v, want 1", v)
	}
	if _, ok := r.Snapshot().Get("noisy_total", L("member", "a")); !ok {
		t.Fatal("full Snapshot dropped a volatile metric")
	}
}

// TestHistogramBucketBoundaries pins the le semantics: an observation at
// exactly a bucket's upper bound counts in that bucket, and over-range
// observations land in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram(time.Millisecond, 10*time.Millisecond)
	h.Observe(time.Millisecond)       // exactly the first bound → bucket le=0.001
	h.Observe(time.Millisecond + 1)   // just past → second bucket
	h.Observe(10 * time.Millisecond)  // exactly the second bound → second bucket
	h.Observe(500 * time.Millisecond) // over-range → +Inf
	h.Observe(time.Hour)              // far over-range → +Inf
	count, sumSec, buckets := h.snapshot()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	want := time.Millisecond + time.Millisecond + 1 + 10*time.Millisecond + 500*time.Millisecond + time.Hour
	if sumSec != want.Seconds() {
		t.Fatalf("sum = %v, want %v", sumSec, want.Seconds())
	}
	if len(buckets) != 3 {
		t.Fatalf("bucket count = %d, want 3", len(buckets))
	}
	// Cumulative counts: 1 at le=0.001, 3 at le=0.01, 5 at +Inf.
	for i, wantN := range []uint64{1, 3, 5} {
		if buckets[i].Count != wantN {
			t.Fatalf("bucket[%d] (le=%s) = %d, want %d", i, buckets[i].LE, buckets[i].Count, wantN)
		}
	}
	if buckets[2].LE != "+Inf" {
		t.Fatalf("last bucket le = %q, want +Inf", buckets[2].LE)
	}
}

func TestHistogramExemplarKeepsSlowest(t *testing.T) {
	h := NewHistogram(time.Second)
	h.ObserveExemplar(100*time.Millisecond, 7)
	h.ObserveExemplar(300*time.Millisecond, 9)
	h.ObserveExemplar(200*time.Millisecond, 11)
	_, _, buckets := h.snapshot()
	if buckets[0].ExemplarTrace != 9 {
		t.Fatalf("exemplar trace = %d, want 9 (the slowest)", buckets[0].ExemplarTrace)
	}
	if buckets[0].ExemplarSec != (300 * time.Millisecond).Seconds() {
		t.Fatalf("exemplar value = %v", buckets[0].ExemplarSec)
	}
}

// TestSnapshotGetBinarySearch exercises Get's binary search over a
// registry large enough that every probe position matters: first, last,
// every middle key, a labeled sibling, and misses on both ends.
func TestSnapshotGetBinarySearch(t *testing.T) {
	r := NewRegistry(nil)
	for i := 0; i < 50; i++ {
		r.Counter(fmt.Sprintf("m%02d_total", i)).Add(uint64(i + 1))
	}
	r.Counter("m25_total", L("proto", "doh")).Add(7)
	snap := r.Snapshot()
	for i := 0; i < 50; i++ {
		name := fmt.Sprintf("m%02d_total", i)
		if v := snap.Value(name); v != float64(i+1) {
			t.Fatalf("%s = %v, want %d", name, v, i+1)
		}
	}
	if v := snap.Value("m25_total", L("proto", "doh")); v != 7 {
		t.Fatalf("labeled sibling = %v, want 7", v)
	}
	for _, miss := range []string{"", "a_total", "m25_totalx", "zzz_total"} {
		if _, ok := snap.Get(miss); ok {
			t.Fatalf("Get(%q) reported a hit", miss)
		}
	}
}

// TestSnapshotSubNewMetricMidDrill pins Sub's behavior for a metric that
// first appears after the baseline snapshot: it passes through
// unchanged (absent from base means nothing to subtract).
func TestSnapshotSubNewMetricMidDrill(t *testing.T) {
	r := NewRegistry(nil)
	r.Counter("old_total").Add(3)
	base := r.Snapshot()
	r.Counter("old_total").Add(2)
	r.Counter("new_total").Add(9)
	h := r.Histogram("new_latency_seconds", []time.Duration{time.Millisecond})
	h.Observe(2 * time.Millisecond)
	diff := r.Snapshot().Sub(base)
	if v := diff.Value("old_total"); v != 2 {
		t.Fatalf("old_total delta = %v, want 2", v)
	}
	if v := diff.Value("new_total"); v != 9 {
		t.Fatalf("mid-drill counter delta = %v, want 9 (pass through)", v)
	}
	m, ok := diff.Get("new_latency_seconds")
	if !ok || m.Count != 1 {
		t.Fatalf("mid-drill histogram = %+v, want count 1", m)
	}
	// Cumulative shape intact: the +Inf bucket still counts everything.
	if last := m.Buckets[len(m.Buckets)-1]; last.LE != "+Inf" || last.Count != 1 {
		t.Fatalf("mid-drill histogram +Inf bucket = %+v", last)
	}
}

// TestSnapshotSubBucketAbsentFromBase pins Sub for a histogram bucket
// present in cur but absent from base (snapshots merged from different
// bucket ladders): the unmatched bucket subtracts zero.
func TestSnapshotSubBucketAbsentFromBase(t *testing.T) {
	base := &Snapshot{Metrics: []Metric{{
		Name: "lat_seconds", Kind: "histogram", Count: 2, Sum: 0.002,
		Buckets: []Bucket{{LE: "0.001", Count: 2}, {LE: "+Inf", Count: 2}},
	}}}
	cur := &Snapshot{Metrics: []Metric{{
		Name: "lat_seconds", Kind: "histogram", Count: 5, Sum: 0.025,
		Buckets: []Bucket{{LE: "0.001", Count: 3}, {LE: "0.01", Count: 5}, {LE: "+Inf", Count: 5}},
	}}}
	diff := cur.Sub(base)
	m, ok := diff.Get("lat_seconds")
	if !ok {
		t.Fatal("histogram missing from diff")
	}
	if m.Count != 3 {
		t.Fatalf("count delta = %d, want 3", m.Count)
	}
	want := []Bucket{{LE: "0.001", Count: 1}, {LE: "0.01", Count: 5}, {LE: "+Inf", Count: 3}}
	for i, b := range m.Buckets {
		if b.LE != want[i].LE || b.Count != want[i].Count {
			t.Fatalf("bucket[%d] = %+v, want %+v", i, b, want[i])
		}
	}
}

// TestHistogramQuantileBoundaries pins Quantile against exact
// bucket-boundary ranks, on the live histogram and its snapshot form.
func TestHistogramQuantileBoundaries(t *testing.T) {
	h := NewHistogram(time.Millisecond, 10*time.Millisecond, 100*time.Millisecond)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	// Two observations per bucket: cum = 2 at 1ms, 4 at 10ms.
	h.Observe(time.Millisecond)
	h.Observe(time.Millisecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(10 * time.Millisecond)
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0.25, time.Millisecond},      // rank 1
		{0.5, time.Millisecond},       // rank 2 — exactly the first bucket's cumulative edge
		{0.51, 10 * time.Millisecond}, // rank 3 — one past the edge
		{1, 10 * time.Millisecond},
		{1.5, 10 * time.Millisecond}, // clamped to q=1
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Over-range mass: ranks landing in +Inf clamp to the last finite
	// bound.
	h.Observe(5 * time.Second)
	if got := h.Quantile(1); got != 100*time.Millisecond {
		t.Fatalf("+Inf-bucket quantile = %v, want clamp to 100ms", got)
	}

	// The snapshot-side Metric.Quantile agrees on every case.
	r := NewRegistry(nil)
	r.RegisterHistogram(h, "lat_seconds")
	m, ok := r.Snapshot().Get("lat_seconds")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if got := m.Quantile(1); got != 100*time.Millisecond {
		t.Fatalf("Metric.Quantile(1) = %v, want 100ms", got)
	}
	if got := m.Quantile(0.4); got != time.Millisecond {
		t.Fatalf("Metric.Quantile(0.4) = %v, want 1ms", got)
	}
	var zero Metric
	if got := zero.Quantile(0.99); got != 0 {
		t.Fatalf("zero Metric.Quantile = %v, want 0", got)
	}
}

func TestSnapshotSub(t *testing.T) {
	r := NewRegistry(nil)
	c := r.Counter("served_total")
	g := r.Gauge("healthy")
	c.Add(10)
	g.Set(4)
	base := r.Snapshot()
	c.Add(5)
	g.Set(3)
	diff := r.Snapshot().Sub(base)
	if v := diff.Value("served_total"); v != 5 {
		t.Fatalf("diff counter = %v, want 5", v)
	}
	// Gauges are levels: Sub keeps the current reading.
	if v := diff.Value("healthy"); v != 3 {
		t.Fatalf("diff gauge = %v, want 3", v)
	}
}

// TestMergeShuffledDeterminism pins the commit-order contract's other
// half: merging child-registry snapshots is independent of merge order,
// byte for byte, in both renderings.
func TestMergeShuffledDeterminism(t *testing.T) {
	mkChild := func(i int) *Snapshot {
		r := NewRegistry(nil)
		r.Counter("exchanges_total").Add(uint64(10 * (i + 1)))
		r.Counter("stale_total", L("proto", "doh")).Add(uint64(i))
		h := r.Histogram("latency_seconds", nil)
		h.ObserveExemplar(time.Duration(i+1)*5*time.Millisecond, uint64(i+1))
		r.Gauge("healthy").Set(float64(i + 1))
		return r.Snapshot()
	}
	children := []*Snapshot{mkChild(0), mkChild(1), mkChild(2), mkChild(3)}

	ref := MergeSnapshots(children...)
	refJSON, err := ref.JSON()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]*Snapshot(nil), children...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got := MergeSnapshots(shuffled...)
		gotJSON, err := got.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(refJSON, gotJSON) {
			t.Fatalf("trial %d: shuffled merge JSON diverged:\n%s\nvs\n%s", trial, refJSON, gotJSON)
		}
		if ref.Prom() != got.Prom() {
			t.Fatalf("trial %d: shuffled merge Prom exposition diverged", trial)
		}
	}
	if v := ref.Value("exchanges_total"); v != 10+20+30+40 {
		t.Fatalf("merged exchanges_total = %v, want 100", v)
	}
	if v := ref.Value("healthy"); v != 1+2+3+4 {
		t.Fatalf("merged healthy = %v, want 10 (additive gauge merge)", v)
	}
	m, ok := ref.Get("latency_seconds")
	if !ok || m.Count != 4 {
		t.Fatalf("merged histogram count = %d, want 4", m.Count)
	}
}

func TestPromExposition(t *testing.T) {
	r := NewRegistry(testClock())
	r.Counter("served_total", L("proto", "doh")).Add(2)
	r.Counter("served_total", L("proto", "dot")).Add(1)
	h := r.Histogram("latency_seconds", []time.Duration{time.Millisecond})
	h.ObserveExemplar(2*time.Millisecond, 5)
	text := r.Snapshot().Prom()
	for _, want := range []string{
		"# TYPE served_total counter",
		`served_total{proto="doh"} 2`,
		`served_total{proto="dot"} 1`,
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.001"} 0`,
		`latency_seconds_bucket{le="+Inf"} 1 # {trace_id="5"} 0.002`,
		"latency_seconds_sum 0.002",
		"latency_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestSamplerPollAndForce(t *testing.T) {
	clock := testClock()
	r := NewRegistry(clock)
	c := r.Counter("ticks_total")
	s := NewSampler(r, clock, time.Hour, false)

	if s.Poll() {
		t.Fatal("Poll fired before the interval elapsed")
	}
	c.Inc()
	clock.Advance(time.Hour)
	if !s.Poll() {
		t.Fatal("Poll did not fire at the interval")
	}
	if s.Poll() {
		t.Fatal("Poll fired twice in one interval")
	}
	s.Force("stage")
	pts := s.Points()
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2", len(pts))
	}
	if pts[0].Label != "tick" || pts[1].Label != "stage" {
		t.Fatalf("labels = %q, %q", pts[0].Label, pts[1].Label)
	}
	if v := pts[0].Snap.Value("ticks_total"); v != 1 {
		t.Fatalf("sampled value = %v, want 1", v)
	}
	// A long gap collapses into one sample, not a burst.
	clock.Advance(5 * time.Hour)
	if !s.Poll() {
		t.Fatal("Poll did not fire after a long gap")
	}
	if s.Poll() {
		t.Fatal("Poll burst-fired after a long gap")
	}
}

func TestNilSamplerSafe(t *testing.T) {
	var s *Sampler
	if s.Poll() {
		t.Fatal("nil sampler polled")
	}
	s.Force("x")
	if pts := s.Points(); pts != nil {
		t.Fatalf("nil sampler points = %v", pts)
	}
}

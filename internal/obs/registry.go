package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Clock is the time source a registry stamps snapshots with — a
// *simnet.Clock in practice. Wall-clock time never enters the subsystem.
type Clock interface {
	Now() time.Time
}

// Label is one name=value dimension of a metric or span.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Ratio divides num by den, reporting 0 for an empty denominator — the
// NaN/Inf guard every freshly-started fleet's hit-rate style helper
// needs.
func Ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Counter is a monotonically increasing metric. The zero value is ready
// to use, so hot-path owners (Frontend, Client) embed counters as plain
// fields and pay one atomic add per event — registration into a Registry
// is only for exposition.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a point-in-time float metric. The zero value is ready to use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// Kind enumerates metric kinds.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String names the kind in expositions.
func (k Kind) String() string {
	switch k {
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "counter"
	}
}

// entry is one registered metric source.
type entry struct {
	name   string
	labels []Label
	kind   Kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// ViewAdd is the callback a registered view reports metrics through at
// snapshot time.
type ViewAdd func(name string, kind Kind, value float64, labels ...Label)

// Registry is a catalog of metric sources: handles it created, external
// handles registered onto it, read-functions over mutex-guarded stats,
// and whole views (one callback adding many metrics from a single
// consistent stats call). Hot paths never touch the registry — they hold
// *Counter/*Gauge/*Histogram handles directly; the registry is walked
// only by Snapshot.
type Registry struct {
	clock Clock

	mu       sync.Mutex
	entries  map[string]*entry
	views    []func(add ViewAdd)
	volatile map[string]bool
}

// NewRegistry creates an empty registry stamped by clock (nil clock
// leaves snapshot timestamps zero).
func NewRegistry(clock Clock) *Registry {
	return &Registry{clock: clock, entries: map[string]*entry{}, volatile: map[string]bool{}}
}

// metricKey renders the stable identity of (name, labels); labels are
// sorted by key so registration order never matters.
func metricKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// register installs (or replaces) the entry for (name, labels).
func (r *Registry) register(e *entry) {
	r.mu.Lock()
	r.entries[metricKey(e.name, e.labels)] = e
	r.mu.Unlock()
}

// Counter returns the registry-owned counter for (name, labels),
// creating it on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[key]; ok && e.counter != nil {
		return e.counter
	}
	c := &Counter{}
	r.entries[key] = &entry{name: name, labels: labels, kind: KindCounter, counter: c}
	return c
}

// Gauge returns the registry-owned gauge for (name, labels), creating it
// on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[key]; ok && e.gauge != nil {
		return e.gauge
	}
	g := &Gauge{}
	r.entries[key] = &entry{name: name, labels: labels, kind: KindGauge, gauge: g}
	return g
}

// Histogram returns the registry-owned histogram for (name, labels),
// creating it with the given bucket bounds on first use.
func (r *Registry) Histogram(name string, bounds []time.Duration, labels ...Label) *Histogram {
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[key]; ok && e.hist != nil {
		return e.hist
	}
	h := NewHistogram(bounds...)
	r.entries[key] = &entry{name: name, labels: labels, kind: KindHistogram, hist: h}
	return h
}

// RegisterCounter exposes an externally-owned counter handle — how the
// transport layer's embedded hot-path counters join the registry without
// an extra indirection on the increment path.
func (r *Registry) RegisterCounter(c *Counter, name string, labels ...Label) {
	r.register(&entry{name: name, labels: labels, kind: KindCounter, counter: c})
}

// RegisterHistogram exposes an externally-owned histogram handle.
func (r *Registry) RegisterHistogram(h *Histogram, name string, labels ...Label) {
	r.register(&entry{name: name, labels: labels, kind: KindHistogram, hist: h})
}

// RegisterCounterFunc exposes a counter read at snapshot time — the thin
// view over mutex-guarded stats that should not be restructured into
// atomic handles.
func (r *Registry) RegisterCounterFunc(fn func() float64, name string, labels ...Label) {
	r.register(&entry{name: name, labels: labels, kind: KindCounter, fn: fn})
}

// RegisterGaugeFunc exposes a gauge read at snapshot time.
func (r *Registry) RegisterGaugeFunc(fn func() float64, name string, labels ...Label) {
	r.register(&entry{name: name, labels: labels, kind: KindGauge, fn: fn})
}

// RegisterView adds a snapshot-time callback that reports any number of
// metrics from one consistent stats read (e.g. one sharded-cache Stats()
// walk feeding eight cache metrics).
func (r *Registry) RegisterView(view func(add ViewAdd)) {
	r.mu.Lock()
	r.views = append(r.views, view)
	r.mu.Unlock()
}

// SetVolatile marks metric names (every label set of each) as
// schedule-dependent: their values vary with worker interleaving even
// for a fixed seed, so StableSnapshot — the series-sampling view —
// excludes them. See the package determinism contract.
func (r *Registry) SetVolatile(names ...string) {
	r.mu.Lock()
	for _, n := range names {
		r.volatile[n] = true
	}
	r.mu.Unlock()
}

// Snapshot captures every registered metric, sorted by (name, labels).
func (r *Registry) Snapshot() *Snapshot { return r.snapshot(false) }

// StableSnapshot captures only schedule-independent metrics — the subset
// campaign series are built from.
func (r *Registry) StableSnapshot() *Snapshot { return r.snapshot(true) }

func (r *Registry) snapshot(stableOnly bool) *Snapshot {
	r.mu.Lock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	views := make([]func(add ViewAdd), len(r.views))
	copy(views, r.views)
	isVolatile := func(name string) bool { return r.volatile[name] }
	var at time.Time
	if r.clock != nil {
		at = r.clock.Now()
	}
	r.mu.Unlock()

	snap := &Snapshot{At: at}
	for _, e := range entries {
		if stableOnly && isVolatile(e.name) {
			continue
		}
		snap.Metrics = append(snap.Metrics, e.read())
	}
	for _, view := range views {
		view(func(name string, kind Kind, value float64, labels ...Label) {
			if stableOnly && isVolatile(name) {
				return
			}
			snap.Metrics = append(snap.Metrics, Metric{
				Name: name, Labels: sortedLabels(labels), Kind: kind.String(), Value: value,
			})
		})
	}
	snap.sort()
	return snap
}

// read materializes the entry's current value.
func (e *entry) read() Metric {
	m := Metric{Name: e.name, Labels: sortedLabels(e.labels), Kind: e.kind.String()}
	switch {
	case e.counter != nil:
		m.Value = float64(e.counter.Load())
	case e.gauge != nil:
		m.Value = e.gauge.Load()
	case e.hist != nil:
		m.Count, m.Sum, m.Buckets = e.hist.snapshot()
	case e.fn != nil:
		m.Value = e.fn()
	}
	return m
}

func sortedLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// Metric is one snapshotted metric value.
type Metric struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Kind   string  `json:"kind"`
	// Value carries counter and gauge readings.
	Value float64 `json:"value"`
	// Count, Sum (seconds), and Buckets carry histogram readings; bucket
	// counts are cumulative, Prometheus-style.
	Count   uint64   `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Key renders the metric's stable identity (name plus sorted labels).
func (m Metric) Key() string { return metricKey(m.Name, m.Labels) }

// Bucket is one histogram bucket in a snapshot. LE is the upper bound in
// seconds rendered as a string ("+Inf" for the overflow bucket — JSON
// has no infinity). Exemplar fields carry the slowest observation's
// trace, when one was recorded.
type Bucket struct {
	LE            string  `json:"le"`
	Count         uint64  `json:"count"`
	ExemplarTrace uint64  `json:"exemplar_trace,omitempty"`
	ExemplarSec   float64 `json:"exemplar_sec,omitempty"`
}

// Snapshot is a point-in-time capture of a registry, ordered by metric
// key so equal registries render byte-identically.
type Snapshot struct {
	At      time.Time `json:"at"`
	Metrics []Metric  `json:"metrics"`
}

func (s *Snapshot) sort() {
	sort.Slice(s.Metrics, func(i, j int) bool { return s.Metrics[i].Key() < s.Metrics[j].Key() })
}

// Get returns the metric for (name, labels). Metrics is always sorted by
// key (every snapshot constructor — snapshot, Sub, MergeSnapshots — ends
// sorted), so the lookup is a binary search: Get is called per-assertion
// in campaign tests and per-tick in drill reporting, where a linear scan
// over a fleet-sized registry added up.
func (s *Snapshot) Get(name string, labels ...Label) (Metric, bool) {
	key := metricKey(name, labels)
	i := sort.Search(len(s.Metrics), func(i int) bool { return s.Metrics[i].Key() >= key })
	if i < len(s.Metrics) && s.Metrics[i].Key() == key {
		return s.Metrics[i], true
	}
	return Metric{}, false
}

// Value returns the metric's value (0 when absent) — the convenient read
// for report rendering.
func (s *Snapshot) Value(name string, labels ...Label) float64 {
	m, _ := s.Get(name, labels...)
	return m.Value
}

// Sub returns this snapshot with a baseline's counters and histogram
// counts removed — the drill-delta view. Gauges keep their current
// reading (a gauge is a level, not an accumulation); metrics absent from
// the baseline pass through unchanged.
func (s *Snapshot) Sub(base *Snapshot) *Snapshot {
	prior := map[string]Metric{}
	for _, m := range base.Metrics {
		prior[m.Key()] = m
	}
	out := &Snapshot{At: s.At, Metrics: make([]Metric, 0, len(s.Metrics))}
	for _, m := range s.Metrics {
		b, ok := prior[m.Key()]
		if ok && m.Kind != KindGauge.String() {
			m.Value -= b.Value
			m.Count -= b.Count
			m.Sum -= b.Sum
			m.Buckets = subBuckets(m.Buckets, b.Buckets)
		}
		out.Metrics = append(out.Metrics, m)
	}
	return out
}

func subBuckets(cur, base []Bucket) []Bucket {
	if len(cur) == 0 {
		return nil
	}
	out := append([]Bucket(nil), cur...)
	byLE := map[string]uint64{}
	for _, b := range base {
		byLE[b.LE] = b.Count
	}
	for i := range out {
		out[i].Count -= byLE[out[i].LE]
	}
	return out
}

// MergeSnapshots folds snapshots into one: counters, histogram counts,
// and gauges sum (an additive merge — the use case is children of one
// partitioned workload, where levels like pool health add up across
// replicas); the latest At wins. The result is independent of argument
// order, which is what lets per-day child registries merge in commit
// order without caring how workers finished.
func MergeSnapshots(snaps ...*Snapshot) *Snapshot {
	contrib := map[string][]Metric{}
	var at time.Time
	for _, s := range snaps {
		if s == nil {
			continue
		}
		if s.At.After(at) {
			at = s.At
		}
		for _, m := range s.Metrics {
			key := m.Key()
			contrib[key] = append(contrib[key], m)
		}
	}
	out := &Snapshot{At: at, Metrics: make([]Metric, 0, len(contrib))}
	for _, ms := range contrib {
		// Float addition is not associative, so fold each key's
		// contributions in a sorted order — that, not the map walk, is
		// what makes the merge independent of argument order.
		sort.SliceStable(ms, func(i, j int) bool {
			if ms[i].Value != ms[j].Value {
				return ms[i].Value < ms[j].Value
			}
			return ms[i].Sum < ms[j].Sum
		})
		acc := ms[0]
		acc.Buckets = append([]Bucket(nil), ms[0].Buckets...)
		for _, m := range ms[1:] {
			acc.Value += m.Value
			acc.Count += m.Count
			acc.Sum += m.Sum
			acc.Buckets = addBuckets(acc.Buckets, m.Buckets)
		}
		out.Metrics = append(out.Metrics, acc)
	}
	out.sort()
	return out
}

func addBuckets(a, b []Bucket) []Bucket {
	byLE := map[string]int{}
	for i := range a {
		byLE[a[i].LE] = i
	}
	for _, bb := range b {
		if i, ok := byLE[bb.LE]; ok {
			a[i].Count += bb.Count
			// Keep the slower exemplar; ties break toward the lower trace
			// ID so the merge stays order-independent.
			if bb.ExemplarSec > a[i].ExemplarSec ||
				(bb.ExemplarSec == a[i].ExemplarSec && bb.ExemplarTrace != 0 &&
					(a[i].ExemplarTrace == 0 || bb.ExemplarTrace < a[i].ExemplarTrace)) {
				a[i].ExemplarTrace, a[i].ExemplarSec = bb.ExemplarTrace, bb.ExemplarSec
			}
		} else {
			a = append(a, bb)
		}
	}
	return a
}

// JSON renders the snapshot as stable, deterministic JSON.
func (s *Snapshot) JSON() ([]byte, error) {
	return json.Marshal(s)
}

// Prom renders the snapshot as a Prometheus-style text exposition, with
// OpenMetrics-style exemplar comments on histogram buckets that carry
// one.
func (s *Snapshot) Prom() string {
	var b strings.Builder
	lastName := ""
	for _, m := range s.Metrics {
		if m.Name != lastName {
			fmt.Fprintf(&b, "# TYPE %s %s\n", m.Name, m.Kind)
			lastName = m.Name
		}
		if m.Kind == KindHistogram.String() {
			for _, bk := range m.Buckets {
				fmt.Fprintf(&b, "%s_bucket%s %d", m.Name, promLabels(m.Labels, L("le", bk.LE)), bk.Count)
				if bk.ExemplarTrace != 0 {
					fmt.Fprintf(&b, " # {trace_id=\"%d\"} %s", bk.ExemplarTrace, formatFloat(bk.ExemplarSec))
				}
				b.WriteByte('\n')
			}
			fmt.Fprintf(&b, "%s_sum%s %s\n", m.Name, promLabels(m.Labels), formatFloat(m.Sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", m.Name, promLabels(m.Labels), m.Count)
			continue
		}
		fmt.Fprintf(&b, "%s%s %s\n", m.Name, promLabels(m.Labels), formatFloat(m.Value))
	}
	return b.String()
}

func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TraceConfig parameterizes a Tracer.
type TraceConfig struct {
	// SampleEvery traces one exchange in every N (head-based, counter-
	// driven — never random, so single-driver loops sample the identical
	// exchanges run over run). 0 selects DefaultSampleEvery; 1 traces
	// everything.
	SampleEvery int
	// Capacity bounds the ring of retained finished traces; 0 selects
	// DefaultTraceCapacity.
	Capacity int
}

// Tracer defaults.
const (
	DefaultSampleEvery   = 16
	DefaultTraceCapacity = 64
)

// Tracer samples exchanges into traces and retains the most recent ones
// in a bounded ring. A nil *Tracer is valid everywhere and traces
// nothing, so the exchange path carries exactly one nil check when
// tracing is off.
type Tracer struct {
	clock Clock
	every uint64
	cap   int

	seq    atomic.Uint64
	nextID atomic.Uint64

	mu   sync.Mutex
	ring []*Trace // most recent cap finished traces, oldest first
}

// NewTracer builds a tracer on the given clock.
func NewTracer(clock Clock, cfg TraceConfig) *Tracer {
	every := cfg.SampleEvery
	if every <= 0 {
		every = DefaultSampleEvery
	}
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{clock: clock, every: uint64(every), cap: capacity}
}

// Start begins a trace for the named exchange if head sampling selects
// it, returning nil otherwise (and always on a nil tracer). The returned
// Trace is single-goroutine state: one exchange, one owner.
func (t *Tracer) Start(name string) *Trace {
	if t == nil {
		return nil
	}
	if (t.seq.Add(1)-1)%t.every != 0 {
		return nil
	}
	tr := &Trace{ID: t.nextID.Add(1), Name: name}
	if t.clock != nil {
		tr.Start = t.clock.Now()
	}
	return tr
}

// Finish sets the trace's total virtual duration and retains it in the
// ring. Nil-safe on both receiver and trace.
func (t *Tracer) Finish(tr *Trace, total time.Duration) {
	if t == nil || tr == nil {
		return
	}
	tr.Duration = total
	t.mu.Lock()
	t.ring = append(t.ring, tr)
	if len(t.ring) > t.cap {
		t.ring = t.ring[len(t.ring)-t.cap:]
	}
	t.mu.Unlock()
}

// Len reports the number of retained traces.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Slowest returns up to n retained traces ordered by descending
// duration (ties to the earlier trace ID).
func (t *Tracer) Slowest(n int) []*Trace {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	all := append([]*Trace(nil), t.ring...)
	t.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].Duration != all[j].Duration {
			return all[i].Duration > all[j].Duration
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// Span is one event on a trace's virtual timeline. Offset is the span's
// launch offset from the exchange start (the strategy layer's simulated-
// concurrency offsets: stagger edges, hedge thresholds); Dur is its
// virtual duration (zero for structural server-side events, whose cost
// is carried by the enclosing dial span).
type Span struct {
	Name   string        `json:"name"`
	Depth  int           `json:"depth"`
	Offset time.Duration `json:"offset"`
	Dur    time.Duration `json:"dur"`
	Attrs  []Label       `json:"attrs,omitempty"`
}

// Trace is one sampled exchange's span record. It is owned by the
// exchange's goroutine until Finish; every method is nil-receiver-safe,
// so unsampled paths pay only the nil checks.
type Trace struct {
	ID       uint64        `json:"id"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`
	Spans    []Span        `json:"spans"`

	depth int
}

// Add records a leaf span at the current nesting depth.
func (tr *Trace) Add(name string, offset, dur time.Duration, attrs ...Label) {
	if tr == nil {
		return
	}
	tr.Spans = append(tr.Spans, Span{Name: name, Depth: tr.depth, Offset: offset, Dur: dur, Attrs: attrs})
}

// Enter opens a span and deepens nesting — spans recorded until the
// matching Exit become its children. It returns the span's index for
// Exit (-1 on a nil trace).
func (tr *Trace) Enter(name string, offset time.Duration, attrs ...Label) int {
	if tr == nil {
		return -1
	}
	tr.Spans = append(tr.Spans, Span{Name: name, Depth: tr.depth, Offset: offset, Attrs: attrs})
	tr.depth++
	return len(tr.Spans) - 1
}

// Exit closes the span opened at idx, setting its virtual duration and
// appending any outcome attributes.
func (tr *Trace) Exit(idx int, dur time.Duration, attrs ...Label) {
	if tr == nil || idx < 0 || idx >= len(tr.Spans) {
		return
	}
	tr.depth--
	tr.Spans[idx].Dur = dur
	tr.Spans[idx].Attrs = append(tr.Spans[idx].Attrs, attrs...)
}

// Tree renders the trace as an indented span tree on the virtual
// timeline.
func (tr *Trace) Tree() string {
	if tr == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %d %s (%v)\n", tr.ID, tr.Name, tr.Duration)
	for _, sp := range tr.Spans {
		fmt.Fprintf(&b, "  %s+%-8v %s", strings.Repeat("  ", sp.Depth), sp.Offset, sp.Name)
		if sp.Dur > 0 {
			fmt.Fprintf(&b, " (%v)", sp.Dur)
		}
		for _, a := range sp.Attrs {
			fmt.Fprintf(&b, " %s=%s", a.Key, a.Value)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TraceConfig parameterizes a Tracer.
type TraceConfig struct {
	// SampleEvery traces one exchange in every N (head-based, counter-
	// driven — never random, so single-driver loops sample the identical
	// exchanges run over run). 0 selects DefaultSampleEvery; 1 traces
	// everything.
	SampleEvery int
	// Capacity bounds the ring of retained finished traces; 0 selects
	// DefaultTraceCapacity.
	Capacity int
	// Tail, when non-nil, enables tail-based retention alongside head
	// sampling: every exchange is traced into a scratch buffer, and the
	// finished trace is kept only if it matches the anomaly predicate —
	// any TraceFlag set (error, SERVFAIL, stale-served, failover, race,
	// hedge fired) or virtual cost at or over Tail.Latency — ranked in a
	// bounded top-K ring by virtual cost. Head sampling keeps recording
	// the baseline population into the head ring unchanged.
	Tail *TailConfig
}

// TailConfig parameterizes tail-based trace retention.
type TailConfig struct {
	// Latency keeps any finished trace whose virtual cost reaches the
	// threshold; 0 disables the latency predicate (anomaly flags still
	// keep traces).
	Latency time.Duration
	// TopK bounds the tail ring; 0 selects DefaultTailTopK.
	TopK int
}

// Tracer defaults.
const (
	DefaultSampleEvery   = 16
	DefaultTraceCapacity = 64
	DefaultTailTopK      = 32
)

// TraceFlag marks an exchange-level anomaly on a finished trace — the
// tail sampler's keep predicate. Flags are set by the exchange owner
// (the transport client) from the winning outcome before Finish.
type TraceFlag uint8

const (
	// FlagError marks an exchange that failed outright (every upstream
	// errored).
	FlagError TraceFlag = 1 << iota
	// FlagServFail marks an exchange whose final answer was a SERVFAIL.
	FlagServFail
	// FlagStale marks an RFC 8767 stale-served answer.
	FlagStale
	// FlagFailover marks an exchange that needed more than one attempt
	// without racing or hedging — serial failover past a dead or failing
	// member.
	FlagFailover
	// FlagRace marks an exchange whose happy-eyeballs race actually
	// fired.
	FlagRace
	// FlagHedge marks an exchange whose hedge timer fired.
	FlagHedge
)

// traceFlagNames orders flag names for stable rendering.
var traceFlagNames = []struct {
	flag TraceFlag
	name string
}{
	{FlagError, "error"},
	{FlagServFail, "servfail"},
	{FlagStale, "stale"},
	{FlagFailover, "failover"},
	{FlagRace, "race"},
	{FlagHedge, "hedge"},
}

// Strings renders the set flags as a stable, declaration-ordered name
// list (nil when no flag is set).
func (f TraceFlag) Strings() []string {
	var out []string
	for _, fn := range traceFlagNames {
		if f&fn.flag != 0 {
			out = append(out, fn.name)
		}
	}
	return out
}

// String renders the flag set as a comma-joined list ("" when empty).
func (f TraceFlag) String() string { return strings.Join(f.Strings(), ",") }

// Tracer samples exchanges into traces and retains the most recent ones
// in a bounded ring. A nil *Tracer is valid everywhere and traces
// nothing, so the exchange path carries exactly one nil check when
// tracing is off.
type Tracer struct {
	clock Clock
	every uint64
	cap   int
	tail  *TailConfig
	topK  int

	seq    atomic.Uint64
	nextID atomic.Uint64

	mu       sync.Mutex
	ring     []*Trace // most recent cap head-sampled traces, oldest first
	tailRing []*Trace // top-K tail-kept traces, rank order (tailRank)
}

// NewTracer builds a tracer on the given clock.
func NewTracer(clock Clock, cfg TraceConfig) *Tracer {
	every := cfg.SampleEvery
	if every <= 0 {
		every = DefaultSampleEvery
	}
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	t := &Tracer{clock: clock, every: uint64(every), cap: capacity}
	if cfg.Tail != nil {
		tail := *cfg.Tail
		t.tail = &tail
		t.topK = tail.TopK
		if t.topK <= 0 {
			t.topK = DefaultTailTopK
		}
	}
	return t
}

// TailEnabled reports whether tail-based retention is on (false on nil).
func (t *Tracer) TailEnabled() bool { return t != nil && t.tail != nil }

// Start begins a trace for the named exchange if head sampling selects
// it — or, with tail retention enabled, always: the scratch trace is
// discarded at Finish unless the anomaly predicate keeps it. Returns nil
// on an unsampled exchange (and always on a nil tracer). The returned
// Trace is single-goroutine state: one exchange, one owner.
func (t *Tracer) Start(name string) *Trace {
	if t == nil {
		return nil
	}
	head := (t.seq.Add(1)-1)%t.every == 0
	if !head && t.tail == nil {
		return nil
	}
	tr := &Trace{ID: t.nextID.Add(1), Name: name, head: head}
	if t.clock != nil {
		tr.Start = t.clock.Now()
	}
	return tr
}

// Finish sets the trace's total virtual duration and retains it: a
// head-sampled trace joins the baseline ring, and — with tail retention
// on — a trace matching the anomaly predicate is ranked into the top-K
// tail ring. A scratch trace matching neither is dropped. Nil-safe on
// both receiver and trace.
func (t *Tracer) Finish(tr *Trace, total time.Duration) {
	if t == nil || tr == nil {
		return
	}
	tr.Duration = total
	t.mu.Lock()
	if tr.head {
		t.ring = append(t.ring, tr)
		if len(t.ring) > t.cap {
			t.ring = t.ring[len(t.ring)-t.cap:]
		}
	}
	if t.tail != nil && t.tailKeep(tr) {
		t.tailInsert(tr)
	}
	t.mu.Unlock()
}

// tailKeep is the deterministic anomaly predicate: any flag set, or
// virtual cost at or over the latency threshold.
func (t *Tracer) tailKeep(tr *Trace) bool {
	if tr.Flags != 0 {
		return true
	}
	return t.tail.Latency > 0 && tr.Duration >= t.tail.Latency
}

// tailRank orders a before b in the tail ring: higher virtual cost
// first, then name, then flags, then trace ID. The leading keys are
// schedule-independent properties of the exchange, so the retained set
// is stable under concurrent drivers; the ID only breaks ties between
// traces whose recorded content is otherwise identical.
func tailRank(a, b *Trace) bool {
	if a.Duration != b.Duration {
		return a.Duration > b.Duration
	}
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	if a.Flags != b.Flags {
		return a.Flags < b.Flags
	}
	return a.ID < b.ID
}

// tailInsert ranks tr into the bounded tail ring (caller holds mu).
func (t *Tracer) tailInsert(tr *Trace) {
	i := sort.Search(len(t.tailRing), func(i int) bool { return !tailRank(t.tailRing[i], tr) })
	if i >= t.topK {
		return // ranks below the ring's floor
	}
	t.tailRing = append(t.tailRing, nil)
	copy(t.tailRing[i+1:], t.tailRing[i:])
	t.tailRing[i] = tr
	if len(t.tailRing) > t.topK {
		t.tailRing = t.tailRing[:t.topK]
	}
}

// TailLen reports the number of tail-retained traces.
func (t *Tracer) TailLen() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.tailRing)
}

// Tail returns the tail-retained traces in rank order (highest virtual
// cost first). The slice is a copy; the traces are shared.
func (t *Tracer) Tail() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Trace(nil), t.tailRing...)
}

// Len reports the number of retained traces.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Slowest returns up to n retained traces ordered by descending
// duration (ties to the earlier trace ID).
func (t *Tracer) Slowest(n int) []*Trace {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	all := append([]*Trace(nil), t.ring...)
	t.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].Duration != all[j].Duration {
			return all[i].Duration > all[j].Duration
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// Span is one event on a trace's virtual timeline. Offset is the span's
// launch offset from the exchange start (the strategy layer's simulated-
// concurrency offsets: stagger edges, hedge thresholds); Dur is its
// virtual duration (zero for structural server-side events, whose cost
// is carried by the enclosing dial span).
type Span struct {
	Name   string        `json:"name"`
	Depth  int           `json:"depth"`
	Offset time.Duration `json:"offset"`
	Dur    time.Duration `json:"dur"`
	Attrs  []Label       `json:"attrs,omitempty"`
}

// Trace is one sampled exchange's span record. It is owned by the
// exchange's goroutine until Finish; every method is nil-receiver-safe,
// so unsampled paths pay only the nil checks.
type Trace struct {
	ID       uint64        `json:"id"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`
	Spans    []Span        `json:"spans"`
	// Flags carries the exchange-level anomaly markers the tail sampler
	// keys on, set by the exchange owner before Finish.
	Flags TraceFlag `json:"flags,omitempty"`

	depth int
	head  bool // head sampling selected this trace for the baseline ring
}

// Flag sets an anomaly flag (nil-safe).
func (tr *Trace) Flag(f TraceFlag) {
	if tr == nil {
		return
	}
	tr.Flags |= f
}

// Add records a leaf span at the current nesting depth.
func (tr *Trace) Add(name string, offset, dur time.Duration, attrs ...Label) {
	if tr == nil {
		return
	}
	tr.Spans = append(tr.Spans, Span{Name: name, Depth: tr.depth, Offset: offset, Dur: dur, Attrs: attrs})
}

// Enter opens a span and deepens nesting — spans recorded until the
// matching Exit become its children. It returns the span's index for
// Exit (-1 on a nil trace).
func (tr *Trace) Enter(name string, offset time.Duration, attrs ...Label) int {
	if tr == nil {
		return -1
	}
	tr.Spans = append(tr.Spans, Span{Name: name, Depth: tr.depth, Offset: offset, Attrs: attrs})
	tr.depth++
	return len(tr.Spans) - 1
}

// Exit closes the span opened at idx, setting its virtual duration and
// appending any outcome attributes.
func (tr *Trace) Exit(idx int, dur time.Duration, attrs ...Label) {
	if tr == nil || idx < 0 || idx >= len(tr.Spans) {
		return
	}
	tr.depth--
	tr.Spans[idx].Dur = dur
	tr.Spans[idx].Attrs = append(tr.Spans[idx].Attrs, attrs...)
}

// Tree renders the trace as an indented span tree on the virtual
// timeline.
func (tr *Trace) Tree() string {
	if tr == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %d %s (%v)", tr.ID, tr.Name, tr.Duration)
	if tr.Flags != 0 {
		fmt.Fprintf(&b, " [%s]", tr.Flags)
	}
	b.WriteByte('\n')
	for _, sp := range tr.Spans {
		fmt.Fprintf(&b, "  %s+%-8v %s", strings.Repeat("  ", sp.Depth), sp.Offset, sp.Name)
		if sp.Dur > 0 {
			fmt.Fprintf(&b, " (%v)", sp.Dur)
		}
		for _, a := range sp.Attrs {
			fmt.Fprintf(&b, " %s=%s", a.Key, a.Value)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

package obs

import (
	"testing"
	"time"
)

// sloRegistry builds a registry shaped like a transport fleet's
// winner-side surface.
func sloRegistry(clock Clock) (*Registry, *Counter, *Counter, *Counter, *Histogram) {
	r := NewRegistry(clock)
	ex := r.Counter("client_exchanges_total")
	errs := r.Counter("client_errors_total")
	stale := r.Counter("client_stale_answers_total")
	r.Counter("client_servfail_total")
	h := r.Histogram("exchange_latency_seconds", DefaultLatencyBuckets())
	return r, ex, errs, stale, h
}

func TestSLOEval(t *testing.T) {
	slo := SLO{Availability: 0.99, LatencyP99: 20 * time.Millisecond, StaleRatio: 0.1}
	r, ex, errs, stale, h := sloRegistry(nil)
	ex.Add(100)
	errs.Add(2) // availability 0.98 < 0.99
	stale.Add(5)
	for i := 0; i < 98; i++ {
		h.Observe(5 * time.Millisecond)
	}
	h.Observe(80 * time.Millisecond) // rank 99 of 100 lands here:
	h.Observe(80 * time.Millisecond) // p99 -> 100ms bucket bound > 20ms

	rep := slo.Eval(SLOStatsFrom(r.Snapshot()))
	if rep.AvailabilityOK {
		t.Fatalf("availability 0.98 passed a 0.99 objective: %+v", rep)
	}
	if rep.Availability != 0.98 {
		t.Fatalf("availability = %v, want 0.98", rep.Availability)
	}
	// Burn: (1-0.98)/(1-0.99) = 2× budget.
	if rep.AvailabilityBurn < 1.99 || rep.AvailabilityBurn > 2.01 {
		t.Fatalf("availability burn = %v, want ≈2", rep.AvailabilityBurn)
	}
	if rep.P99OK {
		t.Fatalf("p99 %v passed a 20ms objective", rep.P99)
	}
	if !rep.StaleOK || rep.StaleRatio != 0.05 {
		t.Fatalf("stale ratio = %v (ok=%v), want 0.05 passing", rep.StaleRatio, rep.StaleOK)
	}
	if rep.StaleBurn != 0.5 {
		t.Fatalf("stale burn = %v, want 0.5", rep.StaleBurn)
	}
	if rep.Violations != 2 {
		t.Fatalf("violations = %d, want 2", rep.Violations)
	}
}

func TestSLOEvalIdleAndDisabled(t *testing.T) {
	var none SLO
	if none.Enabled() {
		t.Fatal("zero SLO reported enabled")
	}
	rep := none.Eval(SLOStats{Exchanges: 10, Errors: 10})
	if rep.Violations != 0 {
		t.Fatalf("disabled objectives violated: %+v", rep)
	}
	// Idle window: availability 1, nothing burns.
	rep = DefaultSLO().Eval(SLOStats{})
	if rep.Violations != 0 || rep.Availability != 1 {
		t.Fatalf("idle window = %+v, want clean", rep)
	}
	// Stable snapshots carry no latency histogram: the p99 objective is
	// unevaluable, never a violation.
	rep = SLO{LatencyP99: time.Nanosecond}.Eval(SLOStats{Exchanges: 5, P99: time.Hour})
	if rep.Violations != 0 {
		t.Fatal("unevaluable p99 counted as a violation")
	}
}

// TestBurnEngineMultiWindow drives a clean hour then a bad five
// minutes: the short window sees the full burn while the long window
// dilutes it — the multi-window shape that separates a blip from a
// budget fire.
func TestBurnEngineMultiWindow(t *testing.T) {
	clock := testClock()
	r, ex, errs, _, h := sloRegistry(clock)
	slo := SLO{Availability: 0.9, LatencyP99: time.Second}
	e := NewBurnEngine(clock, slo, 5*time.Minute, time.Hour)

	observe := func(n, bad int) {
		for i := 0; i < n; i++ {
			h.Observe(5 * time.Millisecond)
		}
		ex.Add(uint64(n))
		errs.Add(uint64(bad))
	}
	// A clean hour in 5-minute ticks.
	for i := 0; i < 12; i++ {
		observe(100, 0)
		e.Record(r.Snapshot())
		clock.Advance(5 * time.Minute)
	}
	// Five bad minutes: half the exchanges fail.
	observe(100, 50)
	e.Record(r.Snapshot())

	burns := e.Burn()
	if len(burns) != 2 {
		t.Fatalf("burn windows = %d, want 2", len(burns))
	}
	short, long := burns[0], burns[1]
	if short.Window != 5*time.Minute || long.Window != time.Hour {
		t.Fatalf("window order = %v, %v", short.Window, long.Window)
	}
	if short.Report.Availability != 0.5 {
		t.Fatalf("short-window availability = %v, want 0.5", short.Report.Availability)
	}
	// 0.5 availability against a 0.1 budget: burn 5×.
	if short.Report.AvailabilityBurn < 4.99 || short.Report.AvailabilityBurn > 5.01 {
		t.Fatalf("short-window burn = %v, want ≈5", short.Report.AvailabilityBurn)
	}
	if !short.Report.Stats.P99Known {
		t.Fatalf("short window lost the latency histogram: %+v", short.Report.Stats)
	}
	if long.Report.Availability >= 0.97 || long.Report.Availability <= 0.5 {
		t.Fatalf("long-window availability = %v, want diluted between 0.5 and 0.97", long.Report.Availability)
	}
	if long.Report.AvailabilityBurn >= short.Report.AvailabilityBurn {
		t.Fatalf("long burn %v not below short burn %v", long.Report.AvailabilityBurn, short.Report.AvailabilityBurn)
	}
}

func TestBurnEngineCumulativeFallback(t *testing.T) {
	clock := testClock()
	r, ex, _, _, _ := sloRegistry(clock)
	e := NewBurnEngine(clock, DefaultSLO()) // default windows
	if e.Burn() != nil {
		t.Fatal("burn before any sample")
	}
	ex.Add(10)
	e.Record(r.Snapshot())
	burns := e.Burn()
	// A run shorter than every window judges the cumulative stats.
	for _, b := range burns {
		if b.Report.Stats.Exchanges != 10 {
			t.Fatalf("window %v stats = %+v, want cumulative 10 exchanges", b.Window, b.Report.Stats)
		}
	}
}

package obs

import (
	"sync"
	"time"
)

// SLO declares the service objectives a serving fleet is judged
// against, all evaluated on the virtual clock. A zero field disables
// that objective.
type SLO struct {
	// Availability is the minimum answered fraction: exchanges that
	// neither errored nor returned SERVFAIL, over all exchanges.
	Availability float64
	// LatencyP99 is the maximum p99 virtual exchange latency.
	LatencyP99 time.Duration
	// StaleRatio is the maximum fraction of exchanges answered from
	// RFC 8767 stale cache.
	StaleRatio float64
}

// DefaultSLO is the demo objective set: three nines of availability,
// p99 within the synthetic latency band's tail, and at most 5% of
// answers served stale.
func DefaultSLO() SLO {
	return SLO{Availability: 0.999, LatencyP99: 100 * time.Millisecond, StaleRatio: 0.05}
}

// Enabled reports whether any objective is declared.
func (o SLO) Enabled() bool {
	return o.Availability > 0 || o.LatencyP99 > 0 || o.StaleRatio > 0
}

// SLOStats are the winner-side quantities objectives are judged on,
// read from a registry snapshot (cumulative) or a drill delta
// (Snapshot.Sub). P99Known is false when the snapshot carries no
// latency histogram — the histogram is schedule-dependent, so stable
// snapshots omit it and the latency objective goes unevaluated there.
type SLOStats struct {
	Exchanges uint64
	Errors    uint64
	ServFails uint64
	Stale     uint64
	P99       time.Duration
	P99Known  bool
}

// SLOStatsFrom reads the transport client's winner-side counters out of
// a snapshot.
func SLOStatsFrom(snap *Snapshot) SLOStats {
	var s SLOStats
	s.Exchanges = uint64(snap.Value("client_exchanges_total"))
	s.Errors = uint64(snap.Value("client_errors_total"))
	s.ServFails = uint64(snap.Value("client_servfail_total"))
	s.Stale = uint64(snap.Value("client_stale_answers_total"))
	if m, ok := snap.Get("exchange_latency_seconds"); ok && m.Count > 0 {
		s.P99 = m.Quantile(0.99)
		s.P99Known = true
	}
	return s
}

// Availability is the answered fraction (1 when idle — an idle window
// has burned no budget).
func (s SLOStats) Availability() float64 {
	if s.Exchanges == 0 {
		return 1
	}
	bad := s.Errors + s.ServFails
	if bad > s.Exchanges {
		bad = s.Exchanges
	}
	return float64(s.Exchanges-bad) / float64(s.Exchanges)
}

// StaleRatio is the stale-served fraction (0 when idle).
func (s SLOStats) StaleRatio() float64 { return Ratio(s.Stale, s.Exchanges) }

// SLOReport judges one window's stats against the objectives. Burn
// rates follow the SRE convention: observed badness over the budget the
// objective allows, so 1.0 spends the budget exactly at the window's
// length and anything above burns faster.
type SLOReport struct {
	Stats SLOStats

	Availability     float64
	AvailabilityOK   bool
	AvailabilityBurn float64

	P99   time.Duration
	P99OK bool

	StaleRatio float64
	StaleOK    bool
	StaleBurn  float64

	// Violations counts objectives the window failed (disabled or
	// unevaluable objectives never count).
	Violations int
}

// Eval judges stats against the objectives. Disabled objectives pass;
// the latency objective passes when the stats carry no histogram
// (stable snapshots — see SLOStats.P99Known).
func (o SLO) Eval(stats SLOStats) SLOReport {
	r := SLOReport{
		Stats:          stats,
		Availability:   stats.Availability(),
		AvailabilityOK: true,
		P99:            stats.P99,
		P99OK:          true,
		StaleRatio:     stats.StaleRatio(),
		StaleOK:        true,
	}
	if o.Availability > 0 {
		if budget := 1 - o.Availability; budget > 0 {
			r.AvailabilityBurn = (1 - r.Availability) / budget
		}
		if r.Availability < o.Availability {
			r.AvailabilityOK = false
			r.Violations++
		}
	}
	if o.LatencyP99 > 0 && stats.P99Known && stats.P99 > o.LatencyP99 {
		r.P99OK = false
		r.Violations++
	}
	if o.StaleRatio > 0 {
		r.StaleBurn = r.StaleRatio / o.StaleRatio
		if r.StaleRatio > o.StaleRatio {
			r.StaleOK = false
			r.Violations++
		}
	}
	return r
}

// WindowBurn is one trailing window's judgement.
type WindowBurn struct {
	Window time.Duration
	Report SLOReport
}

// BurnEngine evaluates an SLO over multiple trailing virtual-time
// windows — the multi-window burn-rate shape (a short window catches a
// fast burn, a long window keeps a slow burn honest). Feed it cumulative
// registry snapshots as virtual time advances; each Burn call subtracts
// the snapshot at the window's edge, so per-window stats are true
// deltas, latency histogram included.
type BurnEngine struct {
	clock   Clock
	slo     SLO
	windows []time.Duration

	mu      sync.Mutex
	samples []burnSample // time-ordered
}

type burnSample struct {
	at   time.Time
	snap *Snapshot
}

// DefaultBurnWindows is the demo window ladder, scaled to drills that
// span virtual minutes to hours.
func DefaultBurnWindows() []time.Duration {
	return []time.Duration{5 * time.Minute, 30 * time.Minute, 2 * time.Hour}
}

// NewBurnEngine builds an engine judging slo over the given trailing
// windows (empty selects DefaultBurnWindows).
func NewBurnEngine(clock Clock, slo SLO, windows ...time.Duration) *BurnEngine {
	if len(windows) == 0 {
		windows = DefaultBurnWindows()
	}
	ws := append([]time.Duration(nil), windows...)
	return &BurnEngine{clock: clock, slo: slo, windows: ws}
}

// SLO returns the engine's objectives.
func (e *BurnEngine) SLO() SLO { return e.slo }

// Windows returns the trailing windows, in declaration order.
func (e *BurnEngine) Windows() []time.Duration {
	return append([]time.Duration(nil), e.windows...)
}

// Record appends the registry's cumulative snapshot at the clock's
// current virtual time. Samples older than the longest window (plus one
// baseline sample before its edge) are trimmed.
func (e *BurnEngine) Record(snap *Snapshot) {
	if e == nil || snap == nil {
		return
	}
	var at time.Time
	if e.clock != nil {
		at = e.clock.Now()
	} else {
		at = snap.At
	}
	longest := e.windows[0]
	for _, w := range e.windows[1:] {
		if w > longest {
			longest = w
		}
	}
	e.mu.Lock()
	e.samples = append(e.samples, burnSample{at: at, snap: snap})
	edge := at.Add(-longest)
	cut := 0
	for cut+1 < len(e.samples) && !e.samples[cut+1].at.After(edge) {
		cut++
	}
	e.samples = e.samples[cut:]
	e.mu.Unlock()
}

// Burn judges each trailing window ending at the latest sample. The
// window's baseline is the newest sample at or before its edge; a
// window older than the whole run has no baseline and judges the
// cumulative stats — correct for drills shorter than the window.
// Returns nil before any sample.
func (e *BurnEngine) Burn() []WindowBurn {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	samples := append([]burnSample(nil), e.samples...)
	e.mu.Unlock()
	if len(samples) == 0 {
		return nil
	}
	latest := samples[len(samples)-1]
	out := make([]WindowBurn, 0, len(e.windows))
	for _, w := range e.windows {
		edge := latest.at.Add(-w)
		var base *Snapshot
		for i := len(samples) - 1; i >= 0; i-- {
			if !samples[i].at.After(edge) {
				base = samples[i].snap
				break
			}
		}
		delta := latest.snap
		if base != nil {
			delta = latest.snap.Sub(base)
		}
		out = append(out, WindowBurn{Window: w, Report: e.slo.Eval(SLOStatsFrom(delta))})
	}
	return out
}

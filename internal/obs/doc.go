// Package obs is the deterministic telemetry subsystem: a metrics
// registry (counters, gauges, fixed-bucket latency histograms keyed by
// name + label set), per-exchange query tracing, and a time-series
// sampler — all native to the simulation's virtual clock.
//
// # Determinism contract
//
// Nothing in this package reads the wall clock. Every timestamp — a
// snapshot's At, a trace's Start, a sampler's tick schedule — comes from
// an injected Clock (simnet.Clock in practice), and every duration on a
// trace span is a virtual-timeline quantity (launch offset + attempt
// cost) computed by the strategy layer, never measured. Rendering is
// stable too: snapshots sort metrics by (name, labels), so the JSON and
// Prometheus expositions of equal registries are byte-identical.
//
// Pipelined campaigns stay byte-identical to serial runs because
// telemetry follows the same two rules the dataset layer already
// enforces:
//
//   - Merge in commit order. Per-day scan contexts carry their own child
//     registry; its sampled points ride the day's result through the
//     in-order committer, so the assembled series never observes worker
//     scheduling. Snapshot merging itself (MergeSnapshots) is
//     argument-order-independent: each key's contributions are folded in
//     a sorted order (float addition is not associative) and the output
//     is sorted, which the shuffled-merge tests pin byte-for-byte.
//
//   - Sample only schedule-independent metrics into series. Counters
//     whose value depends on which attempt ran where (per-frontend
//     served counts, per-member pool traffic, race/hedge fire counts,
//     cache probe totals) vary with scanner-worker interleaving even for
//     a fixed seed; registries mark them volatile (Registry.SetVolatile)
//     and StableSnapshot excludes them. What remains — per-exchange
//     winner-side counters, prefetches, upstream failures, pool health —
//     is a pure function of the day's scan, the same subset
//     dataset.ServingSnapshot records. Full Snapshots still expose
//     everything for live tooling (cmd/dohserve), where single-driver
//     loops make the whole registry deterministic.
//
// Trace sampling comes in two retention policies. Head sampling is
// counter-driven (every Nth exchange), never random, so a
// single-goroutine drive samples the identical exchanges run over run —
// but WHICH exchanges land on the every-Nth grid depends on arrival
// order, so under concurrent drivers the head ring's contents are
// schedule-dependent (cmd/dohserve documents this caveat on -trace).
// Tail sampling (TraceConfig.Tail) traces every exchange into a scratch
// buffer and keeps only those matching a deterministic anomaly
// predicate — a TraceFlag set by the exchange owner (error, SERVFAIL,
// stale-served, failover, race, hedge) or virtual cost over a threshold
// — ranked into a bounded top-K ring by (cost, name, flags): properties
// of the exchange itself, not of scheduling, so the retained set is
// stable under concurrent drivers wherever per-exchange outcomes are.
//
// The flight recorder (Recorder) extends the same stable/volatile
// discipline to event ORDER. Emission sites mark schedule-dependent
// kinds volatile (attempt-side transport events: pool cooldowns and
// removals, race/hedge fires, per-frontend stale serves); StableEvents
// filters to the stable kinds and sorts canonically by (At, kind,
// labels) — under frozen per-day clocks every At is equal, so the
// canonical key, never arrival order, defines the committed sequence.
// Anomaly captures additionally store events as aggregated counts
// (CountEvents), an order-insensitive multiset. Both guarantees assume
// the bounded ring never dropped (Recorder.Dropped() == 0); eviction is
// arrival-ordered, so an overflowing ring forfeits byte-identity and
// campaigns size the ring to the day.
//
// SLO evaluation (SLO, BurnEngine) is snapshot arithmetic on these same
// quantities — winner-side counters and the latency histogram's
// quantiles — so it inherits the contract: burn rates over stable
// snapshots are schedule-independent; the latency objective reads the
// (volatile) histogram and is therefore only evaluated on live
// single-driver registries, never in committed campaign records.
package obs

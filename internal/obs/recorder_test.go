package obs

import (
	"testing"
	"time"
)

func TestRecorderEmitAndWindow(t *testing.T) {
	clock := testClock()
	r := NewRecorder(clock, 16)
	start := clock.Now()
	r.Emit("pool.cooldown", L("member", "doh-0"))
	clock.Advance(time.Minute)
	r.Emit("cache.stale", L("reason", "cooldown"))
	clock.Advance(time.Minute)
	r.Emit("frontend.dead", L("frontend", "doh-1"))

	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
	// The middle minute only.
	win := r.Window(start.Add(30*time.Second), start.Add(90*time.Second))
	if len(win) != 1 || win[0].Kind != "cache.stale" {
		t.Fatalf("window = %+v, want the cache.stale event", win)
	}
	// Inclusive edges.
	win = r.Window(start, start.Add(2*time.Minute))
	if len(win) != 3 {
		t.Fatalf("full window = %d events, want 3", len(win))
	}
	if r.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", r.Dropped())
	}
}

func TestRecorderRingBoundAndDropped(t *testing.T) {
	r := NewRecorder(nil, 4)
	for i := 0; i < 10; i++ {
		r.Emit("e", L("i", string(rune('a'+i))))
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", r.Dropped())
	}
	// Oldest-first eviction: the survivors are the last four emissions.
	win := r.Window(time.Time{}, time.Unix(1<<40, 0))
	if win[0].Labels[0].Value != "g" {
		t.Fatalf("oldest survivor = %+v, want the 7th emission", win[0])
	}
}

// TestRecorderStableEventsCanonicalOrder pins the capture view: volatile
// kinds are excluded and the survivors sort by (At, kind, labels)
// regardless of arrival order — the frozen-clock case where every At is
// equal is exactly where arrival order would otherwise leak through.
func TestRecorderStableEventsCanonicalOrder(t *testing.T) {
	r := NewRecorder(nil, 16) // nil clock: every At equal (zero)
	r.SetVolatile("pool.cooldown", "strategy.race")
	r.Emit("workload.crowd.start", L("crowd", "0"))
	r.Emit("pool.cooldown", L("member", "doh-0"))
	r.Emit("client.stale")
	r.Emit("strategy.race")
	r.Emit("client.negative")

	stable := r.StableEvents()
	if len(stable) != 3 {
		t.Fatalf("stable events = %d, want 3: %+v", len(stable), stable)
	}
	want := []string{"client.negative", "client.stale", "workload.crowd.start"}
	for i, e := range stable {
		if e.Kind != want[i] {
			t.Fatalf("stable[%d] = %s, want %s", i, e.Kind, want[i])
		}
	}
}

// TestRecorderStableCountsSurviveEviction pins the eviction immunity
// anomaly captures rely on: volatile-event pressure overflows the ring
// (voiding the windowed views) without perturbing the exact stable-kind
// multiset.
func TestRecorderStableCountsSurviveEviction(t *testing.T) {
	r := NewRecorder(nil, 4)
	r.SetVolatile("strategy.race")
	r.Emit("client.stale", L("proto", "doh"))
	r.Emit("client.stale", L("proto", "doh"))
	r.Emit("client.negative")
	for i := 0; i < 10; i++ {
		r.Emit("strategy.race") // evicts the stable events from the ring
	}
	if r.Dropped() == 0 {
		t.Fatal("expected ring overflow")
	}
	if len(r.StableEvents()) != 0 {
		t.Fatalf("stable events survived eviction: %+v", r.StableEvents())
	}
	counts := r.StableCounts()
	if len(counts) != 2 {
		t.Fatalf("stable counts = %+v, want negative=1 and stale=2", counts)
	}
	if counts[0].Kind != "client.negative" || counts[0].Count != 1 {
		t.Fatalf("counts[0] = %+v", counts[0])
	}
	if counts[1].Kind != "client.stale" || counts[1].Count != 2 || counts[1].Labels[0].Value != "doh" {
		t.Fatalf("counts[1] = %+v", counts[1])
	}
	// Late volatility declaration purges accumulated counts.
	r.SetVolatile("client.stale")
	if got := r.StableCounts(); len(got) != 1 || got[0].Kind != "client.negative" {
		t.Fatalf("post-purge counts = %+v", got)
	}
}

func TestCountEvents(t *testing.T) {
	events := []Event{
		{Kind: "client.stale"},
		{Kind: "client.stale"},
		{Kind: "client.stale", Labels: []Label{L("proto", "doh")}},
		{Kind: "client.negative"},
	}
	counts := CountEvents(events)
	if len(counts) != 3 {
		t.Fatalf("count groups = %d, want 3: %+v", len(counts), counts)
	}
	if counts[0].Kind != "client.negative" || counts[0].Count != 1 {
		t.Fatalf("counts[0] = %+v", counts[0])
	}
	if counts[1].Kind != "client.stale" || counts[1].Count != 2 || counts[1].Labels != nil {
		t.Fatalf("counts[1] = %+v", counts[1])
	}
	if counts[2].Count != 1 || len(counts[2].Labels) != 1 {
		t.Fatalf("counts[2] = %+v", counts[2])
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Emit("x")
	r.SetVolatile("x")
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Fatal("nil recorder retained state")
	}
	if r.Window(time.Time{}, time.Time{}) != nil || r.StableEvents() != nil || r.StableCounts() != nil {
		t.Fatal("nil recorder returned events")
	}
}

package dnssec

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"repro/internal/dnswire"
)

var (
	testNow        = time.Date(2024, 1, 2, 0, 0, 0, 0, time.UTC)
	testInception  = testNow.Add(-24 * time.Hour)
	testExpiration = testNow.Add(30 * 24 * time.Hour)
)

func testRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestKeyTagMatchesDNSKEY(t *testing.T) {
	key, err := GenerateKey(testRNG(1), "example.com", true)
	if err != nil {
		t.Fatal(err)
	}
	rr := key.DNSKEY(3600)
	data := rr.Data.(*dnswire.DNSKEYData)
	if key.KeyTag() != data.KeyTag() {
		t.Error("KeyTag mismatch between KeyPair and DNSKEYData")
	}
	if !data.IsKSK() {
		t.Error("KSK flag not set")
	}
	zsk, _ := GenerateKey(testRNG(2), "example.com", false)
	if zsk.DNSKEY(0).Data.(*dnswire.DNSKEYData).IsKSK() {
		t.Error("ZSK has SEP flag")
	}
}

func TestSignVerifyRRset(t *testing.T) {
	key, err := GenerateKey(testRNG(3), "example.com", false)
	if err != nil {
		t.Fatal(err)
	}
	rrs := []dnswire.RR{
		{Name: "www.example.com.", Type: dnswire.TypeA, Class: dnswire.ClassINET, TTL: 300,
			Data: &dnswire.AData{Addr: netip.MustParseAddr("1.2.3.4")}},
		{Name: "www.example.com.", Type: dnswire.TypeA, Class: dnswire.ClassINET, TTL: 300,
			Data: &dnswire.AData{Addr: netip.MustParseAddr("5.6.7.8")}},
	}
	sig, err := SignRRset(testRNG(4), key, rrs, testInception, testExpiration)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyRRSIG(sig, rrs, key.DNSKEY(3600), testNow); err != nil {
		t.Errorf("valid signature rejected: %v", err)
	}
	// Order must not matter (canonical ordering).
	swapped := []dnswire.RR{rrs[1], rrs[0]}
	if err := VerifyRRSIG(sig, swapped, key.DNSKEY(3600), testNow); err != nil {
		t.Errorf("reordered RRset rejected: %v", err)
	}
	// TTL must not matter (original TTL is in the RRSIG).
	bumped := []dnswire.RR{rrs[0].Clone(), rrs[1].Clone()}
	bumped[0].TTL, bumped[1].TTL = 150, 150
	if err := VerifyRRSIG(sig, bumped, key.DNSKEY(3600), testNow); err != nil {
		t.Errorf("TTL-decayed RRset rejected: %v", err)
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	key, _ := GenerateKey(testRNG(5), "example.com", false)
	rrs := []dnswire.RR{{Name: "a.example.com.", Type: dnswire.TypeA, Class: dnswire.ClassINET,
		TTL: 300, Data: &dnswire.AData{Addr: netip.MustParseAddr("1.2.3.4")}}}
	sig, err := SignRRset(testRNG(6), key, rrs, testInception, testExpiration)
	if err != nil {
		t.Fatal(err)
	}
	tampered := []dnswire.RR{rrs[0].Clone()}
	tampered[0].Data = &dnswire.AData{Addr: netip.MustParseAddr("6.6.6.6")}
	if err := VerifyRRSIG(sig, tampered, key.DNSKEY(3600), testNow); err == nil {
		t.Error("tampered RRset verified")
	}
	// Corrupt the signature bytes.
	badSig := sig.Clone()
	badSig.Data.(*dnswire.RRSIGData).Signature[10] ^= 0xff
	if err := VerifyRRSIG(badSig, rrs, key.DNSKEY(3600), testNow); err == nil {
		t.Error("corrupted signature verified")
	}
	// Wrong key.
	other, _ := GenerateKey(testRNG(7), "example.com", false)
	if err := VerifyRRSIG(sig, rrs, other.DNSKEY(3600), testNow); err == nil {
		t.Error("signature verified with unrelated key")
	}
}

func TestVerifyValidityWindow(t *testing.T) {
	key, _ := GenerateKey(testRNG(8), "example.com", false)
	rrs := []dnswire.RR{{Name: "a.example.com.", Type: dnswire.TypeA, Class: dnswire.ClassINET,
		TTL: 300, Data: &dnswire.AData{Addr: netip.MustParseAddr("1.2.3.4")}}}
	sig, err := SignRRset(testRNG(9), key, rrs, testInception, testExpiration)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyRRSIG(sig, rrs, key.DNSKEY(3600), testExpiration.Add(time.Hour)); err != ErrExpired {
		t.Errorf("expired signature: err = %v", err)
	}
	if err := VerifyRRSIG(sig, rrs, key.DNSKEY(3600), testInception.Add(-time.Hour)); err != ErrExpired {
		t.Errorf("not-yet-valid signature: err = %v", err)
	}
}

func TestDSMatching(t *testing.T) {
	key, _ := GenerateKey(testRNG(10), "example.com", true)
	ds, err := key.DS(3600)
	if err != nil {
		t.Fatal(err)
	}
	if !MatchesDS(key.DNSKEY(3600), ds) {
		t.Error("DS does not match its own DNSKEY")
	}
	other, _ := GenerateKey(testRNG(11), "example.com", true)
	if MatchesDS(other.DNSKEY(3600), ds) {
		t.Error("DS matched unrelated DNSKEY")
	}
}

// testWorld builds a three-level signed hierarchy: . → com. → example.com.
type testWorld struct {
	records map[string][]dnswire.RR // key: name|type for RRsets
	sigs    map[string][]dnswire.RR
	rootKey *KeyPair
	zoneKey map[string]*KeyPair
}

func rrKey(name string, t dnswire.Type) string {
	return dnswire.CanonicalName(name) + "|" + t.String()
}

func (w *testWorld) FetchRRset(name string, t dnswire.Type) ([]dnswire.RR, []dnswire.RR, bool) {
	rrs, ok := w.records[rrKey(name, t)]
	return rrs, w.sigs[rrKey(name, t)], ok
}

func (w *testWorld) add(t *testing.T, signer *KeyPair, rrs ...dnswire.RR) {
	t.Helper()
	k := rrKey(rrs[0].Name, rrs[0].Type)
	w.records[k] = rrs
	if signer != nil {
		sig, err := SignRRset(testRNG(999), signer, rrs, testInception, testExpiration)
		if err != nil {
			t.Fatalf("signing %s: %v", k, err)
		}
		w.sigs[k] = []dnswire.RR{sig}
	}
}

func buildWorld(t *testing.T, signExample bool, uploadDS bool) *testWorld {
	t.Helper()
	w := &testWorld{
		records: map[string][]dnswire.RR{},
		sigs:    map[string][]dnswire.RR{},
		zoneKey: map[string]*KeyPair{},
	}
	var err error
	w.rootKey, err = GenerateKey(testRNG(20), ".", true)
	if err != nil {
		t.Fatal(err)
	}
	comKey, _ := GenerateKey(testRNG(21), "com.", true)
	exKey, _ := GenerateKey(testRNG(22), "example.com.", true)
	w.zoneKey["com."] = comKey
	w.zoneKey["example.com."] = exKey

	ns := func(zone, host string) dnswire.RR {
		return dnswire.RR{Name: zone, Type: dnswire.TypeNS, Class: dnswire.ClassINET, TTL: 3600,
			Data: &dnswire.NSData{Host: host}}
	}
	// Root zone: self-signed DNSKEY, NS, DS for com.
	w.add(t, w.rootKey, w.rootKey.DNSKEY(3600))
	w.add(t, w.rootKey, ns(".", "a.root-servers.net."))
	comDS, _ := comKey.DS(3600)
	w.add(t, w.rootKey, comDS)

	// com zone.
	w.add(t, comKey, comKey.DNSKEY(3600))
	w.add(t, comKey, ns("com.", "a.gtld-servers.net."))
	if uploadDS {
		exDS, _ := exKey.DS(3600)
		w.add(t, comKey, exDS)
	}

	// example.com zone.
	w.add(t, exKey, ns("example.com.", "ns1.example.com."))
	a := dnswire.RR{Name: "www.example.com.", Type: dnswire.TypeA, Class: dnswire.ClassINET,
		TTL: 300, Data: &dnswire.AData{Addr: netip.MustParseAddr("93.184.216.34")}}
	if signExample {
		w.add(t, exKey, exKey.DNSKEY(3600))
		w.add(t, exKey, a)
	} else {
		w.add(t, nil, a)
	}
	return w
}

func TestValidateSecureChain(t *testing.T) {
	w := buildWorld(t, true, true)
	v := NewValidator(w, w.records[rrKey(".", dnswire.TypeDNSKEY)], testNow)
	res, err := v.Validate("www.example.com.", dnswire.TypeA)
	if res != Secure {
		t.Errorf("Validate = %v (%v), want secure", res, err)
	}
}

func TestValidateInsecureMissingDS(t *testing.T) {
	// example.com signs its records but never uploaded DS to com: the
	// misconfiguration behind the paper's 49.4% insecure ratio.
	w := buildWorld(t, true, false)
	v := NewValidator(w, w.records[rrKey(".", dnswire.TypeDNSKEY)], testNow)
	res, err := v.Validate("www.example.com.", dnswire.TypeA)
	if res != Insecure {
		t.Errorf("Validate = %v (%v), want insecure", res, err)
	}
}

func TestValidateBogusTamperedRecord(t *testing.T) {
	w := buildWorld(t, true, true)
	// An attacker swaps the A record without being able to re-sign.
	k := rrKey("www.example.com.", dnswire.TypeA)
	w.records[k][0].Data = &dnswire.AData{Addr: netip.MustParseAddr("6.6.6.6")}
	v := NewValidator(w, w.records[rrKey(".", dnswire.TypeDNSKEY)], testNow)
	res, _ := v.Validate("www.example.com.", dnswire.TypeA)
	if res != Bogus {
		t.Errorf("Validate = %v, want bogus", res)
	}
}

func TestValidateBogusUnsignedInSignedZone(t *testing.T) {
	w := buildWorld(t, true, true)
	// Strip the RRSIG of the target RRset while the zone stays signed.
	delete(w.sigs, rrKey("www.example.com.", dnswire.TypeA))
	v := NewValidator(w, w.records[rrKey(".", dnswire.TypeDNSKEY)], testNow)
	res, _ := v.Validate("www.example.com.", dnswire.TypeA)
	if res != Bogus {
		t.Errorf("Validate = %v, want bogus", res)
	}
}

func TestValidateBogusWrongAnchor(t *testing.T) {
	w := buildWorld(t, true, true)
	evil, _ := GenerateKey(testRNG(66), ".", true)
	v := NewValidator(w, []dnswire.RR{evil.DNSKEY(3600)}, testNow)
	res, _ := v.Validate("www.example.com.", dnswire.TypeA)
	if res != Bogus {
		t.Errorf("Validate = %v, want bogus", res)
	}
}

func TestValidateIndeterminateMissing(t *testing.T) {
	w := buildWorld(t, true, true)
	v := NewValidator(w, w.records[rrKey(".", dnswire.TypeDNSKEY)], testNow)
	res, _ := v.Validate("missing.example.com.", dnswire.TypeA)
	if res != Indeterminate {
		t.Errorf("Validate = %v, want indeterminate", res)
	}
}

func TestValidateHTTPSRecordChain(t *testing.T) {
	// The paper's target record type end-to-end: a signed HTTPS record.
	w := buildWorld(t, true, true)
	exKey := w.zoneKey["example.com."]
	httpsRR := dnswire.RR{Name: "example.com.", Type: dnswire.TypeHTTPS,
		Class: dnswire.ClassINET, TTL: 300,
		Data: &dnswire.SVCBData{Priority: 1, Target: "."}}
	w.add(t, exKey, httpsRR)
	v := NewValidator(w, w.records[rrKey(".", dnswire.TypeDNSKEY)], testNow)
	res, err := v.Validate("example.com.", dnswire.TypeHTTPS)
	if res != Secure {
		t.Errorf("Validate HTTPS = %v (%v), want secure", res, err)
	}
}

// Package dnssec implements DNSSEC signing and validation (RFC 4033–4035):
// ECDSA-P256 zone keys (RFC 6605), canonical RRset ordering, RRSIG
// generation and verification, DS digests, and a full chain-of-trust
// validator walking from a trust anchor down to the queried RRset.
//
// The validator distinguishes the three outcomes the paper's Table 9 counts:
// Secure (full chain), Insecure (a delegation is provably unsigned — the
// common "missing DS" misconfiguration), and Bogus (signatures present but
// invalid).
package dnssec

import (
	"bytes"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"
	mathrand "math/rand"
	"sort"
	"time"

	"repro/internal/dnswire"
)

// Errors returned by signing and verification.
var (
	ErrNoKey        = errors.New("dnssec: no matching DNSKEY")
	ErrBadSignature = errors.New("dnssec: signature verification failed")
	ErrExpired      = errors.New("dnssec: signature outside validity window")
	ErrEmptyRRset   = errors.New("dnssec: empty RRset")
	ErrMixedRRset   = errors.New("dnssec: RRset members differ in name/type/class")
)

// KeyPair is a DNSSEC signing key for one zone.
type KeyPair struct {
	Zone    string
	Private *ecdsa.PrivateKey
	Flags   uint16 // DNSKEYFlagZone, optionally DNSKEYFlagSEP for a KSK
}

// detachedReader draws a fixed-width seed from r and returns a fresh
// stream seeded by it. The stdlib ECDSA routines consume a variable number
// of reader bytes per call (randutil.MaybeReadByte, nonce rejection
// sampling), so feeding them a shared seeded rng directly would leave it in
// a run-dependent state and destroy whole-world seed determinism. The
// detached stream absorbs that variability; the caller's rng always
// advances by exactly eight bytes.
func detachedReader(r io.Reader) io.Reader {
	var seed [8]byte
	if _, err := io.ReadFull(r, seed[:]); err != nil {
		return r
	}
	var s int64
	for _, b := range seed {
		s = s<<8 | int64(b)
	}
	return mathrand.New(mathrand.NewSource(s))
}

// GenerateKey creates a new ECDSA-P256 zone key. ksk selects the SEP flag.
func GenerateKey(rng io.Reader, zone string, ksk bool) (*KeyPair, error) {
	priv, err := ecdsa.GenerateKey(elliptic.P256(), detachedReader(rng))
	if err != nil {
		return nil, fmt.Errorf("dnssec: generating key for %s: %w", zone, err)
	}
	flags := uint16(dnswire.DNSKEYFlagZone)
	if ksk {
		flags |= dnswire.DNSKEYFlagSEP
	}
	return &KeyPair{Zone: dnswire.CanonicalName(zone), Private: priv, Flags: flags}, nil
}

// DNSKEY returns the public DNSKEY record for the key.
func (k *KeyPair) DNSKEY(ttl uint32) dnswire.RR {
	return dnswire.RR{
		Name:  k.Zone,
		Type:  dnswire.TypeDNSKEY,
		Class: dnswire.ClassINET,
		TTL:   ttl,
		Data: &dnswire.DNSKEYData{
			Flags:     k.Flags,
			Protocol:  3,
			Algorithm: dnswire.AlgECDSAP256SHA256,
			PublicKey: encodePublicKey(&k.Private.PublicKey),
		},
	}
}

// KeyTag returns the RFC 4034 key tag of the key's DNSKEY record.
func (k *KeyPair) KeyTag() uint16 {
	data := k.DNSKEY(0).Data.(*dnswire.DNSKEYData)
	return data.KeyTag()
}

// DS returns the SHA-256 delegation-signer record to be published in the
// parent zone for this (key-signing) key.
func (k *KeyPair) DS(ttl uint32) (dnswire.RR, error) {
	dnskey := k.DNSKEY(ttl)
	return MakeDS(dnskey, ttl)
}

// MakeDS computes the SHA-256 DS record for a DNSKEY record.
func MakeDS(dnskey dnswire.RR, ttl uint32) (dnswire.RR, error) {
	data, ok := dnskey.Data.(*dnswire.DNSKEYData)
	if !ok {
		return dnswire.RR{}, fmt.Errorf("dnssec: record is not a DNSKEY")
	}
	owner, err := ownerWire(dnskey.Name)
	if err != nil {
		return dnswire.RR{}, err
	}
	rdata, err := packRData(dnskey)
	if err != nil {
		return dnswire.RR{}, err
	}
	h := sha256.New()
	h.Write(owner)
	h.Write(rdata)
	return dnswire.RR{
		Name:  dnskey.Name,
		Type:  dnswire.TypeDS,
		Class: dnswire.ClassINET,
		TTL:   ttl,
		Data: &dnswire.DSData{
			KeyTag:     data.KeyTag(),
			Algorithm:  data.Algorithm,
			DigestType: dnswire.DigestSHA256,
			Digest:     h.Sum(nil),
		},
	}, nil
}

// encodePublicKey serialises a P-256 public key as X||Y (RFC 6605 §4).
func encodePublicKey(pub *ecdsa.PublicKey) []byte {
	out := make([]byte, 64)
	pub.X.FillBytes(out[:32])
	pub.Y.FillBytes(out[32:])
	return out
}

// decodePublicKey parses an RFC 6605 X||Y public key.
func decodePublicKey(b []byte) (*ecdsa.PublicKey, error) {
	if len(b) != 64 {
		return nil, fmt.Errorf("dnssec: P-256 public key must be 64 bytes, got %d", len(b))
	}
	x := new(big.Int).SetBytes(b[:32])
	y := new(big.Int).SetBytes(b[32:])
	if !elliptic.P256().IsOnCurve(x, y) {
		return nil, fmt.Errorf("dnssec: public key not on P-256")
	}
	return &ecdsa.PublicKey{Curve: elliptic.P256(), X: x, Y: y}, nil
}

// ownerWire returns the canonical (lowercase, uncompressed) wire form of a
// name.
func ownerWire(name string) ([]byte, error) {
	rr := dnswire.RR{Name: name, Type: dnswire.TypeTXT, Class: dnswire.ClassINET,
		Data: &dnswire.TXTData{Strings: []string{"x"}}}
	wire, err := dnswire.PackRR(rr)
	if err != nil {
		return nil, err
	}
	// Owner name is everything before the fixed 10-byte type/class/ttl/rdlen
	// suffix plus the 3-byte TXT RDATA.
	return wire[:len(wire)-13], nil
}

// packRData returns the canonical wire RDATA of a record.
func packRData(rr dnswire.RR) ([]byte, error) {
	wire, err := dnswire.PackRR(rr)
	if err != nil {
		return nil, err
	}
	owner, err := ownerWire(rr.Name)
	if err != nil {
		return nil, err
	}
	return wire[len(owner)+10:], nil
}

// canonicalRRsetWire returns the canonical signing input for an RRset: each
// record's owner|type|class|origTTL|rdlen|rdata, with members sorted by
// canonical RDATA, duplicates removed (RFC 4034 §6.3).
func canonicalRRsetWire(rrs []dnswire.RR, origTTL uint32) ([]byte, error) {
	if len(rrs) == 0 {
		return nil, ErrEmptyRRset
	}
	name, typ, class := dnswire.CanonicalName(rrs[0].Name), rrs[0].Type, rrs[0].Class
	type entry struct{ rdata, full []byte }
	entries := make([]entry, 0, len(rrs))
	for _, rr := range rrs {
		if dnswire.CanonicalName(rr.Name) != name || rr.Type != typ || rr.Class != class {
			return nil, ErrMixedRRset
		}
		canon := rr.Clone()
		canon.TTL = origTTL
		full, err := dnswire.PackRR(canon)
		if err != nil {
			return nil, err
		}
		rdata, err := packRData(canon)
		if err != nil {
			return nil, err
		}
		entries = append(entries, entry{rdata: rdata, full: full})
	}
	sort.Slice(entries, func(i, j int) bool {
		return bytes.Compare(entries[i].rdata, entries[j].rdata) < 0
	})
	var out []byte
	var prev []byte
	for _, e := range entries {
		if prev != nil && bytes.Equal(prev, e.rdata) {
			continue
		}
		prev = e.rdata
		out = append(out, e.full...)
	}
	return out, nil
}

// SignRRset produces an RRSIG record over the RRset with the given key and
// validity window.
func SignRRset(rng io.Reader, key *KeyPair, rrs []dnswire.RR, inception, expiration time.Time) (dnswire.RR, error) {
	if len(rrs) == 0 {
		return dnswire.RR{}, ErrEmptyRRset
	}
	owner := dnswire.CanonicalName(rrs[0].Name)
	origTTL := rrs[0].TTL
	sig := &dnswire.RRSIGData{
		TypeCovered: rrs[0].Type,
		Algorithm:   dnswire.AlgECDSAP256SHA256,
		Labels:      uint8(dnswire.CountLabels(owner)),
		OriginalTTL: origTTL,
		Expiration:  uint32(expiration.Unix()),
		Inception:   uint32(inception.Unix()),
		KeyTag:      key.KeyTag(),
		SignerName:  key.Zone,
	}
	signed, err := signingInput(sig, rrs, origTTL)
	if err != nil {
		return dnswire.RR{}, err
	}
	digest := sha256.Sum256(signed)
	r, s, err := ecdsa.Sign(detachedReader(rng), key.Private, digest[:])
	if err != nil {
		return dnswire.RR{}, fmt.Errorf("dnssec: signing: %w", err)
	}
	sigBytes := make([]byte, 64)
	r.FillBytes(sigBytes[:32])
	s.FillBytes(sigBytes[32:])
	sig.Signature = sigBytes
	return dnswire.RR{
		Name:  owner,
		Type:  dnswire.TypeRRSIG,
		Class: rrs[0].Class,
		TTL:   origTTL,
		Data:  sig,
	}, nil
}

func signingInput(sig *dnswire.RRSIGData, rrs []dnswire.RR, origTTL uint32) ([]byte, error) {
	input := sig.SignedPrefix()
	rrsetWire, err := canonicalRRsetWire(rrs, origTTL)
	if err != nil {
		return nil, err
	}
	return append(input, rrsetWire...), nil
}

// VerifyRRSIG checks an RRSIG over an RRset against a DNSKEY record. now is
// used for the validity window.
func VerifyRRSIG(rrsig dnswire.RR, rrs []dnswire.RR, dnskey dnswire.RR, now time.Time) error {
	sig, ok := rrsig.Data.(*dnswire.RRSIGData)
	if !ok {
		return fmt.Errorf("dnssec: record is not an RRSIG")
	}
	keyData, ok := dnskey.Data.(*dnswire.DNSKEYData)
	if !ok {
		return fmt.Errorf("dnssec: record is not a DNSKEY")
	}
	if len(rrs) == 0 {
		return ErrEmptyRRset
	}
	if sig.TypeCovered != rrs[0].Type {
		return fmt.Errorf("dnssec: RRSIG covers %s, RRset is %s", sig.TypeCovered, rrs[0].Type)
	}
	if keyData.Algorithm != sig.Algorithm {
		return fmt.Errorf("dnssec: algorithm mismatch (key %d, sig %d)", keyData.Algorithm, sig.Algorithm)
	}
	if sig.Algorithm != dnswire.AlgECDSAP256SHA256 {
		return fmt.Errorf("dnssec: unsupported algorithm %d", sig.Algorithm)
	}
	if keyData.KeyTag() != sig.KeyTag {
		return ErrNoKey
	}
	if dnswire.CanonicalName(dnskey.Name) != dnswire.CanonicalName(sig.SignerName) {
		return fmt.Errorf("dnssec: DNSKEY owner %q != signer %q", dnskey.Name, sig.SignerName)
	}
	ts := uint32(now.Unix())
	if ts < sig.Inception || ts > sig.Expiration {
		return ErrExpired
	}
	pub, err := decodePublicKey(keyData.PublicKey)
	if err != nil {
		return err
	}
	if len(sig.Signature) != 64 {
		return fmt.Errorf("dnssec: P-256 signature must be 64 bytes, got %d", len(sig.Signature))
	}
	input, err := signingInput(sig, rrs, sig.OriginalTTL)
	if err != nil {
		return err
	}
	digest := sha256.Sum256(input)
	r := new(big.Int).SetBytes(sig.Signature[:32])
	s := new(big.Int).SetBytes(sig.Signature[32:])
	if !ecdsa.Verify(pub, digest[:], r, s) {
		return ErrBadSignature
	}
	return nil
}

// MatchesDS reports whether the DNSKEY record corresponds to the DS record.
func MatchesDS(dnskey dnswire.RR, ds dnswire.RR) bool {
	dsData, ok := ds.Data.(*dnswire.DSData)
	if !ok {
		return false
	}
	computed, err := MakeDS(dnskey, ds.TTL)
	if err != nil {
		return false
	}
	c := computed.Data.(*dnswire.DSData)
	return c.KeyTag == dsData.KeyTag &&
		c.Algorithm == dsData.Algorithm &&
		c.DigestType == dsData.DigestType &&
		bytes.Equal(c.Digest, dsData.Digest)
}

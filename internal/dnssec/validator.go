package dnssec

import (
	"fmt"
	"time"

	"repro/internal/dnswire"
)

// Result is the outcome of chain validation, matching the taxonomy used by
// validating resolvers and by the paper's Table 9.
type Result int

// Validation outcomes.
const (
	// Secure: an unbroken chain of trust from the anchor to the RRset.
	Secure Result = iota
	// Insecure: a delegation on the path is provably unsigned (no DS),
	// e.g. the common third-party-operator missing-DS misconfiguration.
	Insecure
	// Bogus: signatures exist but do not verify (or required ones are
	// missing inside a signed zone).
	Bogus
	// Indeterminate: the record or chain data could not be fetched.
	Indeterminate
)

// String returns the conventional name of the result.
func (r Result) String() string {
	switch r {
	case Secure:
		return "secure"
	case Insecure:
		return "insecure"
	case Bogus:
		return "bogus"
	default:
		return "indeterminate"
	}
}

// ChainSource supplies RRsets and their covering RRSIGs for validation.
// Implementations are expected to answer from authoritative data (the
// resolver package adapts its iterative lookup to this interface).
type ChainSource interface {
	// FetchRRset returns the RRset for (name, type), the RRSIG records
	// covering it, and whether the name/type exists at all.
	FetchRRset(name string, t dnswire.Type) (rrs, sigs []dnswire.RR, exists bool)
}

// ZoneKeyCache remembers zone DNSKEY RRsets that already validated, so
// repeated validations (e.g. one per scanned domain) do not re-verify the
// root and TLD self-signatures. Implementations decide expiry.
type ZoneKeyCache interface {
	Get(zone string) ([]dnswire.RR, bool)
	Put(zone string, keys []dnswire.RR)
}

// Validator walks the chain of trust from a root trust anchor down to a
// target RRset.
type Validator struct {
	source ChainSource
	// anchor is the trusted root DNSKEY RRset.
	anchor []dnswire.RR
	now    time.Time
	// KeyCache, when set, short-circuits re-validation of zone keys.
	KeyCache ZoneKeyCache
}

// NewValidator creates a validator using the given source, trusted root
// DNSKEY RRset, and validation time.
func NewValidator(source ChainSource, rootDNSKEYs []dnswire.RR, now time.Time) *Validator {
	return &Validator{source: source, anchor: rootDNSKEYs, now: now}
}

// verifyWithKeys checks that at least one (rrsig, dnskey) pair verifies.
func (v *Validator) verifyWithKeys(rrs, sigs, keys []dnswire.RR) error {
	if len(rrs) == 0 {
		return ErrEmptyRRset
	}
	if len(sigs) == 0 {
		return fmt.Errorf("dnssec: no RRSIG for %s/%s", rrs[0].Name, rrs[0].Type)
	}
	var lastErr error
	for _, sig := range sigs {
		for _, key := range keys {
			if err := VerifyRRSIG(sig, rrs, key, v.now); err == nil {
				return nil
			} else {
				lastErr = err
			}
		}
	}
	if lastErr == nil {
		lastErr = ErrNoKey
	}
	return lastErr
}

// validateZoneKeys fetches and validates the DNSKEY RRset of zone. trusted
// is either the parent-provided DS RRset (normal case) or nil when the zone
// is the root (anchor comparison instead).
func (v *Validator) validateZoneKeys(zone string, dsSet []dnswire.RR) ([]dnswire.RR, Result, error) {
	if v.KeyCache != nil {
		if keys, ok := v.KeyCache.Get(zone); ok {
			return keys, Secure, nil
		}
	}
	keys, keySigs, ok := v.source.FetchRRset(zone, dnswire.TypeDNSKEY)
	if !ok || len(keys) == 0 {
		return nil, Bogus, fmt.Errorf("dnssec: zone %s has no DNSKEY RRset", zone)
	}
	// The DNSKEY RRset must be self-signed by a key that is anchored:
	// matching a DS from the parent, or (for the root) the trust anchor.
	var anchored []dnswire.RR
	if dsSet == nil {
		for _, k := range keys {
			for _, a := range v.anchor {
				kw, err1 := dnswire.PackRR(k)
				aw, err2 := dnswire.PackRR(a)
				if err1 == nil && err2 == nil && string(kw) == string(aw) {
					anchored = append(anchored, k)
				}
			}
		}
	} else {
		for _, k := range keys {
			for _, ds := range dsSet {
				if MatchesDS(k, ds) {
					anchored = append(anchored, k)
				}
			}
		}
	}
	if len(anchored) == 0 {
		return nil, Bogus, fmt.Errorf("dnssec: no anchored key for zone %s", zone)
	}
	if err := v.verifyWithKeys(keys, keySigs, anchored); err != nil {
		return nil, Bogus, fmt.Errorf("dnssec: DNSKEY RRset of %s not properly self-signed: %w", zone, err)
	}
	if v.KeyCache != nil {
		v.KeyCache.Put(zone, keys)
	}
	return keys, Secure, nil
}

// zoneChain returns the delegation points from the root down to the zone
// containing name: the suffixes of name at which the source has an NS or
// DNSKEY RRset (i.e. real zone cuts in the modelled hierarchy).
func (v *Validator) zoneChain(name string) []string {
	labels := dnswire.SplitLabels(name)
	chain := []string{"."}
	for i := len(labels) - 1; i >= 0; i-- {
		candidate := dnswire.CanonicalName(joinLabels(labels[i:]))
		if _, _, ok := v.source.FetchRRset(candidate, dnswire.TypeNS); ok {
			chain = append(chain, candidate)
			continue
		}
		if _, _, ok := v.source.FetchRRset(candidate, dnswire.TypeDNSKEY); ok {
			chain = append(chain, candidate)
		}
	}
	return chain
}

func joinLabels(labels []string) string {
	out := ""
	for _, l := range labels {
		out += l + "."
	}
	if out == "" {
		return "."
	}
	return out
}

// Validate walks the chain of trust and validates the RRset (name, t).
// The returned error explains Bogus/Indeterminate outcomes.
func (v *Validator) Validate(name string, t dnswire.Type) (Result, error) {
	name = dnswire.CanonicalName(name)
	rrs, sigs, ok := v.source.FetchRRset(name, t)
	if !ok || len(rrs) == 0 {
		return Indeterminate, fmt.Errorf("dnssec: %s/%s not found", name, t)
	}

	chain := v.zoneChain(name)
	// Validate the root zone keys against the anchor.
	zoneKeys, res, err := v.validateZoneKeys(".", nil)
	if err != nil {
		return res, err
	}
	// Walk down the delegations.
	for _, zone := range chain[1:] {
		dsSet, dsSigs, dsOK := v.source.FetchRRset(zone, dnswire.TypeDS)
		if !dsOK || len(dsSet) == 0 {
			// Provably unsigned delegation: everything below is insecure.
			return Insecure, nil
		}
		// The DS RRset is served and signed by the parent zone.
		if err := v.verifyWithKeys(dsSet, dsSigs, zoneKeys); err != nil {
			return Bogus, fmt.Errorf("dnssec: DS RRset for %s fails validation: %w", zone, err)
		}
		zoneKeys, res, err = v.validateZoneKeys(zone, dsSet)
		if err != nil {
			return res, err
		}
	}
	// Finally validate the target RRset with the containing zone's keys.
	if len(sigs) == 0 {
		return Bogus, fmt.Errorf("dnssec: %s/%s unsigned inside signed zone", name, t)
	}
	if err := v.verifyWithKeys(rrs, sigs, zoneKeys); err != nil {
		return Bogus, err
	}
	return Secure, nil
}

package analysis

import (
	"sort"
	"time"

	"repro/internal/dataset"
)

// StaleECHDay is one row of the §4.4.2 staleness/ECH correlation: a scan
// day's serving-layer stale exposure joined against the ECH
// inconsistency observed in that day's hourly scans.
type StaleECHDay struct {
	Date time.Time
	// HasServing marks days with a recorded dataset.ServingSnapshot
	// (campaigns without an encrypted-DNS fleet record none).
	HasServing bool
	// StaleServed and UpstreamFailures are the day's RFC 8767 lifecycle
	// counters; StaleWindowSec is the fleet's configured stale window.
	StaleServed      uint64
	UpstreamFailures uint64
	StaleWindowSec   int64
	// ECHDomains counts distinct domains in the day's hourly ECH scans;
	// InconsistentDomains of them served two or more distinct ECH
	// configs within the day — the inconsistency window a stale-serving
	// frontend widens, because a cached config outlives its rotation.
	// MaxConfigs is the largest per-domain distinct-config count.
	ECHDomains          int
	InconsistentDomains int
	MaxConfigs          int
}

// StaleECHCorrelationResult joins the per-day serving snapshots against
// the hourly ECH observation stream — the §4.4.2 correlation table: do
// the days the fleet served stale answers line up with the days domains
// exposed inconsistent ECH configs?
type StaleECHCorrelationResult struct {
	Days []StaleECHDay
	// TotalStaleServed and TotalInconsistent sum the two sides over the
	// window; CoincidentDays counts days where both were non-zero — the
	// direct correlation signal.
	TotalStaleServed  uint64
	TotalInconsistent int
	CoincidentDays    int
}

// StaleECHCorrelation computes the §4.4.2 staleness/ECH correlation from
// a campaign store. Days appear when either side has data: serving
// snapshots come from daily fleet campaigns, ECH observations from the
// hourly rotation experiment; days covered by both are where the
// correlation is measurable.
func StaleECHCorrelation(store *dataset.Store) *StaleECHCorrelationResult {
	byDay := map[time.Time]*StaleECHDay{}
	day := func(t time.Time) time.Time { return t.UTC().Truncate(24 * time.Hour) }
	get := func(t time.Time) *StaleECHDay {
		d := byDay[day(t)]
		if d == nil {
			d = &StaleECHDay{Date: day(t)}
			byDay[day(t)] = d
		}
		return d
	}

	for _, date := range store.ServingDays() {
		snap, ok := store.ServingFor(date)
		if !ok {
			continue
		}
		d := get(date)
		d.HasServing = true
		d.StaleServed = snap.StaleServed
		d.UpstreamFailures = snap.UpstreamFailures
		d.StaleWindowSec = snap.StaleWindowSec
	}

	// Group the hourly stream into per-day, per-domain distinct-config
	// counts.
	configs := map[time.Time]map[string]map[uint64]bool{}
	for _, o := range store.ECHObservations() {
		d := day(o.Time)
		if configs[d] == nil {
			configs[d] = map[string]map[uint64]bool{}
		}
		if configs[d][o.Domain] == nil {
			configs[d][o.Domain] = map[uint64]bool{}
		}
		configs[d][o.Domain][o.KeyHash] = true
	}
	for date, domains := range configs {
		d := get(date)
		d.ECHDomains = len(domains)
		for _, keys := range domains {
			if len(keys) > d.MaxConfigs {
				d.MaxConfigs = len(keys)
			}
			if len(keys) >= 2 {
				d.InconsistentDomains++
			}
		}
	}

	res := &StaleECHCorrelationResult{}
	for _, d := range byDay {
		res.Days = append(res.Days, *d)
	}
	sort.Slice(res.Days, func(i, j int) bool { return res.Days[i].Date.Before(res.Days[j].Date) })
	for _, d := range res.Days {
		res.TotalStaleServed += d.StaleServed
		res.TotalInconsistent += d.InconsistentDomains
		if d.StaleServed > 0 && d.InconsistentDomains > 0 {
			res.CoincidentDays++
		}
	}
	return res
}

// Table renders the correlation, one row per day plus a totals row.
func (r *StaleECHCorrelationResult) Table() *Table {
	t := &Table{
		Title:   "§4.4.2: serve-stale exposure vs ECH inconsistency windows",
		Columns: []string{"day", "stale-served", "upstream-fail", "ech-domains", "inconsistent", "max-configs"},
	}
	if len(r.Days) == 0 {
		t.Rows = append(t.Rows, []string{"(no serving snapshots or ECH observations in store)", "-", "-", "-", "-", "-"})
		return t
	}
	for _, d := range r.Days {
		stale, fail := "-", "-"
		if d.HasServing {
			stale, fail = itoa(int(d.StaleServed)), itoa(int(d.UpstreamFailures))
		}
		ech, inc, maxc := "-", "-", "-"
		if d.ECHDomains > 0 {
			ech, inc, maxc = itoa(d.ECHDomains), itoa(d.InconsistentDomains), itoa(d.MaxConfigs)
		}
		t.Rows = append(t.Rows, []string{
			d.Date.Format("2006-01-02"), stale, fail, ech, inc, maxc,
		})
	}
	t.Rows = append(t.Rows, []string{
		"total", itoa(int(r.TotalStaleServed)), "-", "-", itoa(r.TotalInconsistent),
		"coincident days: " + itoa(r.CoincidentDays),
	})
	return t
}

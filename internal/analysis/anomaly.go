package analysis

import (
	"fmt"

	"repro/internal/dataset"
)

// AnomalyReport renders the campaign's per-day anomaly captures as a
// table: the stable SLO verdict (winner-side exchange counts,
// availability, stale ratio, objectives violated) plus a digest of the
// flight-recorder evidence — total stable events, the day's most
// frequent event group, and how many distinct tail-trace projections
// were stored. An empty table means the campaign ran without
// CampaignConfig.AnomalyCapture (or no day tripped the trigger).
func AnomalyReport(store *dataset.Store) *Table {
	t := &Table{
		Title: "Anomaly captures: per-day SLO verdicts and flight-recorder evidence",
		Columns: []string{"date", "exchanges", "errors", "servfail", "stale",
			"avail", "stale-ratio", "viol", "events", "traces", "top event"},
	}
	for _, day := range store.AnomalyDays() {
		capt, ok := store.AnomalyFor(day)
		if !ok {
			continue
		}
		var total, topCount uint64
		top := "-"
		for _, ev := range capt.Events {
			total += ev.Count
			if ev.Count > topCount {
				top, topCount = ev.Key, ev.Count
			}
		}
		if topCount > 0 {
			top = fmt.Sprintf("%s ×%d", top, topCount)
		}
		t.Rows = append(t.Rows, []string{
			day.Format("2006-01-02"),
			fmt.Sprintf("%d", capt.Exchanges),
			fmt.Sprintf("%d", capt.Errors),
			fmt.Sprintf("%d", capt.ServFails),
			fmt.Sprintf("%d", capt.StaleServed),
			fmt.Sprintf("%.4f", capt.Availability),
			fmt.Sprintf("%.4f", capt.StaleRatio),
			fmt.Sprintf("%d", capt.Violations),
			fmt.Sprintf("%d", total),
			fmt.Sprintf("%d", len(capt.Traces)),
			top,
		})
	}
	return t
}

package analysis

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/dnswire"
)

// RankStats summarises a rank distribution (Figs 8–9).
type RankStats struct {
	Label  string
	Count  int
	Mean   float64
	Median int
	P25    int
	P75    int
}

func rankStats(label string, ranks []int) RankStats {
	rs := RankStats{Label: label, Count: len(ranks)}
	if len(ranks) == 0 {
		return rs
	}
	sort.Ints(ranks)
	total := 0
	for _, r := range ranks {
		total += r
	}
	rs.Mean = float64(total) / float64(len(ranks))
	rs.Median = ranks[len(ranks)/2]
	rs.P25 = ranks[len(ranks)/4]
	rs.P75 = ranks[3*len(ranks)/4]
	return rs
}

// RankDistributions reproduces Fig 8: average-rank distributions of
// overlapping vs non-overlapping apex domains over the phase-1 window.
func RankDistributions(store *dataset.Store, phase1 map[string]bool) []RankStats {
	// Average rank per domain over the stored days.
	sum := map[string]int{}
	count := map[string]int{}
	for _, day := range store.Days("apex") {
		list, ok := store.TrancoListFor(day)
		if !ok {
			continue
		}
		for i, d := range list {
			sum[d] += i + 1
			count[d]++
		}
	}
	var overlapRanks, otherRanks []int
	for d, c := range count {
		avg := sum[d] / c
		if phase1[d] {
			overlapRanks = append(overlapRanks, avg)
		} else {
			otherRanks = append(otherRanks, avg)
		}
	}
	return []RankStats{
		rankStats("overlapping", overlapRanks),
		rankStats("non-overlapping", otherRanks),
	}
}

// NonCFRankings reproduces Fig 9: the rank distribution of apex domains
// that adopt HTTPS with non-Cloudflare name servers.
func NonCFRankings(store *dataset.Store) RankStats {
	sum := map[string]int{}
	count := map[string]int{}
	for _, day := range store.NSDays() {
		snap, ok := store.SnapshotFor("apex", day)
		if !ok {
			continue
		}
		nsSnap, _ := store.NSSnapshotFor(day)
		for name, obs := range snap.Obs {
			if !obs.HasHTTPS() || usesCloudflareNS(obs, nsSnap) || len(obs.NS) == 0 {
				continue
			}
			key := dnswire.CanonicalName(name)
			sum[key] += obs.Rank
			count[key]++
		}
	}
	var ranks []int
	for d, c := range count {
		ranks = append(ranks, sum[d]/c)
	}
	return rankStats("non-CF HTTPS adopters", ranks)
}

// RankTable renders rank distributions.
func RankTable(title string, stats ...RankStats) *Table {
	t := &Table{
		Title:   title,
		Columns: []string{"population", "count", "mean rank", "p25", "median", "p75"},
	}
	for _, s := range stats {
		t.Rows = append(t.Rows, []string{
			s.Label, itoa(s.Count), fmtFloat(s.Mean), itoa(s.P25), itoa(s.Median), itoa(s.P75)})
	}
	return t
}

package analysis

import (
	"repro/internal/dataset"
)

// SignedResult is Fig 5: RRSIG presence and AD validation of HTTPS records
// over time, for one population (dynamic or overlapping).
type SignedResult struct {
	SignedApex Series
	SignedWWW  Series
	ValidApex  Series
	ValidWWW   Series
}

// Signed reproduces Fig 5.
func Signed(store *dataset.Store, overlap map[string]bool) *SignedResult {
	res := &SignedResult{
		SignedApex: Series{Name: "signed-apex%"},
		SignedWWW:  Series{Name: "signed-www%"},
		ValidApex:  Series{Name: "ad-apex%"},
		ValidWWW:   Series{Name: "ad-www%"},
	}
	for _, kind := range []string{"apex", "www"} {
		signed, valid := &res.SignedApex, &res.ValidApex
		if kind == "www" {
			signed, valid = &res.SignedWWW, &res.ValidWWW
		}
		for _, day := range store.Days(kind) {
			snap, ok := store.SnapshotFor(kind, day)
			if !ok {
				continue
			}
			adopters, s, v := 0, 0, 0
			for name, obs := range snap.Obs {
				if !obs.HasHTTPS() {
					continue
				}
				if overlap != nil && !inOverlap(overlap, kind, name) {
					continue
				}
				adopters++
				if obs.Signed {
					s++
					if obs.AD {
						v++
					}
				}
			}
			signed.Points = append(signed.Points, Point{day, pct(s, adopters)})
			valid.Points = append(valid.Points, Point{day, pct(v, adopters)})
		}
	}
	return res
}

// Tables renders Fig 5.
func (r *SignedResult) Tables(label string) []*Table {
	return []*Table{
		SeriesTable("Fig 5 ("+label+"): signed (RRSIG) and validated (AD) HTTPS records", 24,
			r.SignedApex, r.ValidApex, r.SignedWWW, r.ValidWWW),
	}
}

// CensusResult is Table 9: the one-shot DNSSEC validation census.
type CensusResult struct {
	// Rows per category.
	WithoutHTTPS CensusRow
	WithHTTPS    CensusRow
	CFNS         CensusRow
	NonCFNS      CensusRow
}

// CensusRow aggregates signed/secure/insecure counts.
type CensusRow struct {
	Signed   int
	Secure   int
	Insecure int
	Bogus    int
}

func (c *CensusRow) add(res string) {
	c.Signed++
	switch res {
	case "secure":
		c.Secure++
	case "insecure":
		c.Insecure++
	case "bogus":
		c.Bogus++
	}
}

// Census reproduces Table 9.
func Census(store *dataset.Store) *CensusResult {
	out := &CensusResult{}
	for _, row := range store.Validation() {
		if !row.Signed {
			continue
		}
		if row.HasHTTPS {
			out.WithHTTPS.add(row.Result)
			if row.CFNS {
				out.CFNS.add(row.Result)
			} else {
				out.NonCFNS.add(row.Result)
			}
		} else {
			out.WithoutHTTPS.add(row.Result)
		}
	}
	return out
}

// Table renders Table 9.
func (r *CensusResult) Table() *Table {
	row := func(name string, c CensusRow) []string {
		return []string{name, itoa(c.Signed),
			itoa(c.Secure) + " (" + fmtPct(pct(c.Secure, c.Signed)) + ")",
			itoa(c.Insecure) + " (" + fmtPct(pct(c.Insecure, c.Signed)) + ")"}
	}
	return &Table{
		Title:   "Table 9: DNSSEC validation of signed domains (one-shot census)",
		Columns: []string{"category", "signed", "secure", "insecure"},
		Rows: [][]string{
			row("without HTTPS RR", r.WithoutHTTPS),
			row("with HTTPS RR", r.WithHTTPS),
			row("  - Cloudflare NS", r.CFNS),
			row("  - non-Cloudflare NS", r.NonCFNS),
		},
	}
}

// SignedECHResult is Fig 14: ECH domains with signed/validated records.
type SignedECHResult struct {
	SignedPct Series // % of (HTTPS ∧ ECH) domains whose records are signed
	ValidPct  Series
}

// SignedECH reproduces Fig 14 for apex domains.
func SignedECH(store *dataset.Store, overlap map[string]bool) *SignedECHResult {
	res := &SignedECHResult{
		SignedPct: Series{Name: "ech-signed%"},
		ValidPct:  Series{Name: "ech-ad%"},
	}
	for _, day := range store.Days("apex") {
		snap, ok := store.SnapshotFor("apex", day)
		if !ok {
			continue
		}
		ech, signed, valid := 0, 0, 0
		for name, obs := range snap.Obs {
			if !obs.HasHTTPS() {
				continue
			}
			if overlap != nil && !inOverlap(overlap, "apex", name) {
				continue
			}
			hasECH := false
			for _, r := range obs.HTTPS {
				if r.HasECH {
					hasECH = true
					break
				}
			}
			if !hasECH {
				continue
			}
			ech++
			if obs.Signed {
				signed++
				if obs.AD {
					valid++
				}
			}
		}
		res.SignedPct.Points = append(res.SignedPct.Points, Point{day, pct(signed, ech)})
		res.ValidPct.Points = append(res.ValidPct.Points, Point{day, pct(valid, ech)})
	}
	return res
}

// Table renders Fig 14.
func (r *SignedECHResult) Table() *Table {
	return SeriesTable("Fig 14: DNSSEC among ECH-publishing domains", 24, r.SignedPct, r.ValidPct)
}

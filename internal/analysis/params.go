package analysis

import (
	"sort"
	"strings"
	"time"

	"repro/internal/dataset"
)

// isCFDefaultConfig reports whether an observation's records match
// Cloudflare's untouched proxied default (§4.3.1): one ServiceMode record,
// target ".", alpn h2+h3 (h3-29 tolerated pre-sunset), both IP hints.
func isCFDefaultConfig(obs *dataset.Observation) bool {
	if len(obs.HTTPS) != 1 {
		return false
	}
	r := obs.HTTPS[0]
	if r.Priority != 1 || r.Target != "." {
		return false
	}
	alpn := map[string]bool{}
	for _, p := range r.ALPN {
		alpn[p] = true
	}
	if !alpn["h2"] || !alpn["h3"] {
		return false
	}
	for p := range alpn {
		if p != "h2" && p != "h3" && p != "h3-29" {
			return false
		}
	}
	return len(r.V4Hints) > 0 && len(r.V6Hints) > 0 && !r.HasPort
}

// usesCloudflareNS checks an observation's NS list against Cloudflare.
func usesCloudflareNS(obs *dataset.Observation, nsSnap *dataset.NSSnapshot) bool {
	orgs := nsOrgs(obs, nsSnap)
	if len(orgs) == 0 {
		return false
	}
	for _, org := range orgs {
		if !isCloudflareOrg(org) {
			return false
		}
	}
	return true
}

// DefaultVsCustomResult is Table 4.
type DefaultVsCustomResult struct {
	DefaultMean, CustomMean float64
	Days                    int
}

// DefaultVsCustom reproduces Table 4: among apex domains on Cloudflare NS,
// the share with the default vs customised HTTPS configuration.
func DefaultVsCustom(store *dataset.Store, overlap map[string]bool) *DefaultVsCustomResult {
	var def []float64
	for _, day := range store.NSDays() {
		snap, ok := store.SnapshotFor("apex", day)
		if !ok {
			continue
		}
		nsSnap, _ := store.NSSnapshotFor(day)
		d, total := 0, 0
		for name, obs := range snap.Obs {
			if !obs.HasHTTPS() || !usesCloudflareNS(obs, nsSnap) {
				continue
			}
			if overlap != nil && !overlap[strings.TrimSuffix(name, ".")] {
				continue
			}
			total++
			if isCFDefaultConfig(obs) {
				d++
			}
		}
		if total > 0 {
			def = append(def, pct(d, total))
		}
	}
	res := &DefaultVsCustomResult{Days: len(def)}
	res.DefaultMean, _ = meanStd(def)
	res.CustomMean = 100 - res.DefaultMean
	return res
}

// Table renders Table 4.
func (r *DefaultVsCustomResult) Table(label string) *Table {
	return &Table{
		Title:   "Table 4 (" + label + "): Cloudflare-NS domains, default vs customized HTTPS config",
		Columns: []string{"configuration", "share"},
		Rows: [][]string{
			{"Default", fmtPct(r.DefaultMean)},
			{"Customized", fmtPct(r.CustomMean)},
		},
	}
}

// ProviderParamsResult is one provider column of Table 5.
type ProviderParamsResult struct {
	Org            string
	Domains        int
	ServiceModePct float64 // SvcPriority > 0
	AliasModePct   float64
	SelfTargetPct  float64 // TargetName "."
	AltTargetPct   float64
	NoALPNPct      float64
	NoV4HintPct    float64
	NoV6HintPct    float64
}

// ProviderParams reproduces Table 5 for one provider org.
func ProviderParams(store *dataset.Store, org string) *ProviderParamsResult {
	res := &ProviderParamsResult{Org: org}
	var svc, alias, self, alt, noALPN, noV4, noV6, records int
	seen := map[string]bool{}
	for _, day := range store.NSDays() {
		snap, ok := store.SnapshotFor("apex", day)
		if !ok {
			continue
		}
		nsSnap, _ := store.NSSnapshotFor(day)
		for name, obs := range snap.Obs {
			if !obs.HasHTTPS() {
				continue
			}
			match := false
			for _, o := range nsOrgs(obs, nsSnap) {
				if strings.EqualFold(o, org) {
					match = true
				}
			}
			if !match {
				continue
			}
			seen[name] = true
			for _, r := range obs.HTTPS {
				records++
				if r.AliasMode() {
					alias++
				} else {
					svc++
				}
				if r.Target == "." {
					self++
				} else {
					alt++
				}
				if len(r.ALPN) == 0 {
					noALPN++
				}
				if len(r.V4Hints) == 0 {
					noV4++
				}
				if len(r.V6Hints) == 0 {
					noV6++
				}
			}
		}
	}
	res.Domains = len(seen)
	res.ServiceModePct = pct(svc, records)
	res.AliasModePct = pct(alias, records)
	res.SelfTargetPct = pct(self, records)
	res.AltTargetPct = pct(alt, records)
	res.NoALPNPct = pct(noALPN, records)
	res.NoV4HintPct = pct(noV4, records)
	res.NoV6HintPct = pct(noV6, records)
	return res
}

// Table5 renders the Google/GoDaddy comparison.
func Table5(google, godaddy *ProviderParamsResult) *Table {
	return &Table{
		Title:   "Table 5: common HTTPS configurations, Google vs GoDaddy name servers",
		Columns: []string{"field", google.Org + " NS", godaddy.Org + " NS"},
		Rows: [][]string{
			{"SvcPriority=1 (ServiceMode)", fmtPct(google.ServiceModePct), fmtPct(godaddy.ServiceModePct)},
			{"SvcPriority=0 (AliasMode)", fmtPct(google.AliasModePct), fmtPct(godaddy.AliasModePct)},
			{"TargetName \".\"", fmtPct(google.SelfTargetPct), fmtPct(godaddy.SelfTargetPct)},
			{"TargetName alternative", fmtPct(google.AltTargetPct), fmtPct(godaddy.AltTargetPct)},
			{"alpn empty", fmtPct(google.NoALPNPct), fmtPct(godaddy.NoALPNPct)},
			{"ipv4hint empty", fmtPct(google.NoV4HintPct), fmtPct(godaddy.NoV4HintPct)},
			{"ipv6hint empty", fmtPct(google.NoV6HintPct), fmtPct(godaddy.NoV6HintPct)},
		},
	}
}

// SvcParamsResult covers §4.3.3/§E.1.
type SvcParamsResult struct {
	ServiceModePct float64 // daily mean share of records with priority 1+
	// AliasSelfTarget counts AliasMode records with "." target (invalid
	// aliasing).
	AliasSelfTarget int
	// ServiceNoParams counts ServiceMode domains without any SvcParams.
	ServiceNoParams int
	// PriorityListDomains counts domains with >2 distinct priorities.
	PriorityListDomains int
}

// SvcParams reproduces the §4.3.3 parameter overview for a kind.
func SvcParams(store *dataset.Store, kind string) *SvcParamsResult {
	res := &SvcParamsResult{}
	var svcShares []float64
	aliasSelf := map[string]bool{}
	noParams := map[string]bool{}
	prioList := map[string]bool{}
	for _, day := range store.Days(kind) {
		snap, ok := store.SnapshotFor(kind, day)
		if !ok {
			continue
		}
		svc, records := 0, 0
		for name, obs := range snap.Obs {
			if !obs.HasHTTPS() {
				continue
			}
			prios := map[uint16]bool{}
			for _, r := range obs.HTTPS {
				records++
				if !r.AliasMode() {
					svc++
					if len(r.ALPN) == 0 && !r.HasPort && len(r.V4Hints) == 0 &&
						len(r.V6Hints) == 0 && !r.HasECH && !r.NoDefALPN {
						noParams[name] = true
					}
				} else if r.Target == "." {
					aliasSelf[name] = true
				}
				prios[r.Priority] = true
			}
			if len(prios) > 2 {
				prioList[name] = true
			}
		}
		if records > 0 {
			svcShares = append(svcShares, pct(svc, records))
		}
	}
	res.ServiceModePct, _ = meanStd(svcShares)
	res.AliasSelfTarget = len(aliasSelf)
	res.ServiceNoParams = len(noParams)
	res.PriorityListDomains = len(prioList)
	return res
}

// Table renders the SvcParams overview.
func (r *SvcParamsResult) Table(kind string) *Table {
	return &Table{
		Title:   "§4.3.3 SvcPriority/TargetName overview (" + kind + ")",
		Columns: []string{"metric", "value"},
		Rows: [][]string{
			{"ServiceMode record share (daily mean)", fmtPct(r.ServiceModePct)},
			{"AliasMode records with \".\" target (domains)", itoa(r.AliasSelfTarget)},
			{"ServiceMode without SvcParams (domains)", itoa(r.ServiceNoParams)},
			{"multi-priority (port-per-priority) domains", itoa(r.PriorityListDomains)},
		},
	}
}

// ALPNResult is Table 8: protocol shares among domains with HTTPS records.
type ALPNResult struct {
	Kind string
	// Share maps protocol → daily-mean share of domains advertising it.
	Share map[string]float64
	// H3Draft29Before/After split the h3-29 share at its sunset date.
	H3Draft29Before, H3Draft29After float64
	NoALPNPct                       float64
}

// ALPN reproduces Table 8 (+§4.3.4) for a kind, optionally restricted to
// the overlapping set.
func ALPN(store *dataset.Store, kind string, overlap map[string]bool, sunset time.Time) *ALPNResult {
	res := &ALPNResult{Kind: kind, Share: map[string]float64{}}
	// First pass: per-day counts.
	type dayCount struct {
		day      time.Time
		perProto map[string]int
		none     int
		total    int
	}
	var days []dayCount
	allProtos := map[string]bool{}
	for _, day := range store.Days(kind) {
		snap, ok := store.SnapshotFor(kind, day)
		if !ok {
			continue
		}
		dc := dayCount{day: day, perProto: map[string]int{}}
		for name, obs := range snap.Obs {
			if !obs.HasHTTPS() {
				continue
			}
			if overlap != nil {
				apex := strings.TrimSuffix(strings.TrimPrefix(name, "www."), ".")
				if !overlap[apex] {
					continue
				}
			}
			dc.total++
			protos := map[string]bool{}
			any := false
			for _, r := range obs.HTTPS {
				for _, p := range r.ALPN {
					protos[p] = true
					any = true
				}
			}
			if !any {
				dc.none++
			}
			for p := range protos {
				dc.perProto[p]++
				allProtos[p] = true
			}
		}
		if dc.total > 0 {
			days = append(days, dc)
		}
	}
	// Second pass: daily-mean shares with explicit zeros for days a
	// protocol was absent (so sunsets pull the mean down correctly).
	counts := map[string][]float64{}
	var before29, after29, noALPN []float64
	for _, dc := range days {
		for p := range allProtos {
			counts[p] = append(counts[p], pct(dc.perProto[p], dc.total))
		}
		noALPN = append(noALPN, pct(dc.none, dc.total))
		v := pct(dc.perProto["h3-29"], dc.total)
		if dc.day.Before(sunset) {
			before29 = append(before29, v)
		} else {
			after29 = append(after29, v)
		}
	}
	for p, vals := range counts {
		res.Share[p], _ = meanStd(vals)
	}
	res.H3Draft29Before, _ = meanStd(before29)
	res.H3Draft29After, _ = meanStd(after29)
	res.NoALPNPct, _ = meanStd(noALPN)
	return res
}

// Table renders Table 8.
func (r *ALPNResult) Table() *Table {
	t := &Table{
		Title:   "Table 8: alpn protocols among domains with HTTPS RR (" + r.Kind + ", daily mean)",
		Columns: []string{"protocol", "share"},
	}
	protos := make([]string, 0, len(r.Share))
	for p := range r.Share {
		protos = append(protos, p)
	}
	sort.Slice(protos, func(i, j int) bool { return r.Share[protos[i]] > r.Share[protos[j]] })
	for _, p := range protos {
		t.Rows = append(t.Rows, []string{p, fmtPct(r.Share[p])})
	}
	t.Rows = append(t.Rows,
		[]string{"h3-29 (before sunset)", fmtPct(r.H3Draft29Before)},
		[]string{"h3-29 (after sunset)", fmtPct(r.H3Draft29After)},
		[]string{"no alpn parameter", fmtPct(r.NoALPNPct)},
	)
	return t
}

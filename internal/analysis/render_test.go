package analysis

import (
	"strings"
	"testing"
	"time"
)

func TestTableFormatAlignment(t *testing.T) {
	tab := &Table{
		Title:   "T",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"xxxxxxxxxx", "1"}, {"y", "22"}},
	}
	out := tab.Format()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title + header + separator + 2 data rows
		t.Fatalf("lines = %d", len(lines))
	}
	// All data lines equal width (aligned columns).
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("misaligned header/separator: %q vs %q", lines[1], lines[2])
	}
	if !strings.HasPrefix(lines[0], "T") {
		t.Error("title missing")
	}
}

func TestSeriesTableSampling(t *testing.T) {
	s := Series{Name: "v"}
	base := time.Date(2023, 5, 8, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 100; i++ {
		s.Points = append(s.Points, Point{base.AddDate(0, 0, i), float64(i)})
	}
	tab := SeriesTable("x", 10, s)
	if len(tab.Rows) > 10 {
		t.Errorf("rows = %d, want ≤ 10", len(tab.Rows))
	}
	// Empty series doesn't panic.
	empty := SeriesTable("y", 10, Series{Name: "e"})
	if len(empty.Rows) != 0 {
		t.Error("empty series produced rows")
	}
	// Ragged series render dashes, not panic.
	short := Series{Name: "s", Points: s.Points[:5]}
	ragged := SeriesTable("z", 0, s, short)
	if len(ragged.Rows) != 100 {
		t.Errorf("unsampled rows = %d", len(ragged.Rows))
	}
}

func TestMeanStd(t *testing.T) {
	m, sd := meanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m != 5 {
		t.Errorf("mean = %f", m)
	}
	if sd < 1.99 || sd > 2.01 {
		t.Errorf("std = %f, want 2", sd)
	}
	if m, sd := meanStd(nil); m != 0 || sd != 0 {
		t.Error("empty meanStd not zero")
	}
}

func TestPctAndHelpers(t *testing.T) {
	if pct(1, 4) != 25 || pct(1, 0) != 0 {
		t.Error("pct wrong")
	}
	if fmtPct(12.345) != "12.35%" {
		t.Errorf("fmtPct = %s", fmtPct(12.345))
	}
	if itoa(-42) != "-42" || itoa(0) != "0" || itoa(10007) != "10007" {
		t.Error("itoa wrong")
	}
	if fmtFloat(6.57) != "6.57" {
		t.Errorf("fmtFloat = %s", fmtFloat(6.57))
	}
}

func TestTrendDeltaAndValueOn(t *testing.T) {
	base := time.Date(2023, 5, 8, 0, 0, 0, 0, time.UTC)
	s := Series{Points: []Point{{base, 10}, {base.AddDate(0, 0, 30), 20}}}
	f, l, d := TrendDelta(s)
	if f != 10 || l != 20 || d != 10 {
		t.Errorf("TrendDelta = %f %f %f", f, l, d)
	}
	if v := ValueOn(s, base.AddDate(0, 0, 2)); v != 10 {
		t.Errorf("ValueOn = %f", v)
	}
	if v := ValueOn(s, base.AddDate(0, 0, 28)); v != 20 {
		t.Errorf("ValueOn = %f", v)
	}
	if f, l, d := TrendDelta(Series{}); f != 0 || l != 0 || d != 0 {
		t.Error("empty TrendDelta not zero")
	}
}

func TestAddrSetEqual(t *testing.T) {
	a := []string{"1.2.3.4", "5.6.7.8"}
	_ = a
}

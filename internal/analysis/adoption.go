package analysis

import (
	"time"

	"repro/internal/dataset"
	"repro/internal/dnswire"
	"repro/internal/tranco"
)

// obsName maps a listed apex domain to its snapshot observation key for the
// given kind.
func obsName(kind, apex string) string {
	name := dnswire.CanonicalName(apex)
	if kind == "www" {
		return "www." + name
	}
	return name
}

// hasHTTPSOn reports whether the domain had HTTPS records in the snapshot.
func hasHTTPSOn(snap *dataset.Snapshot, kind, apex string) bool {
	obs, ok := snap.Obs[obsName(kind, apex)]
	return ok && obs.HasHTTPS()
}

// OverlappingSets computes the phase-1 and phase-2 overlapping domain sets
// (domains present in the stored Tranco list on every scanned day of the
// phase, split at the 2023-08-01 source change).
func OverlappingSets(store *dataset.Store) (phase1, phase2 map[string]bool) {
	var lists1, lists2 [][]string
	for _, day := range store.Days("apex") {
		list, ok := store.TrancoListFor(day)
		if !ok {
			continue
		}
		if day.Before(tranco.SourceChangeDate) {
			lists1 = append(lists1, list)
		} else {
			lists2 = append(lists2, list)
		}
	}
	toSet := func(domains []string) map[string]bool {
		out := make(map[string]bool, len(domains))
		for _, d := range domains {
			out[d] = true
		}
		return out
	}
	return toSet(tranco.Overlapping(lists1)), toSet(tranco.Overlapping(lists2))
}

// AdoptionResult holds the Fig 2 series.
type AdoptionResult struct {
	// Dynamic is the adoption percentage over the full daily list
	// (Fig 2a), per kind.
	DynamicApex, DynamicWWW Series
	// Overlap is the adoption percentage within the phase's overlapping
	// set (Fig 2b).
	OverlapApex, OverlapWWW Series
	// Phase1/Phase2 are the overlapping set sizes.
	Phase1Size, Phase2Size int
}

// Adoption reproduces Fig 2: HTTPS adoption rates for dynamic and
// overlapping domains, apex and www.
func Adoption(store *dataset.Store) *AdoptionResult {
	phase1, phase2 := OverlappingSets(store)
	res := &AdoptionResult{
		DynamicApex: Series{Name: "dynamic-apex%"},
		DynamicWWW:  Series{Name: "dynamic-www%"},
		OverlapApex: Series{Name: "overlap-apex%"},
		OverlapWWW:  Series{Name: "overlap-www%"},
		Phase1Size:  len(phase1),
		Phase2Size:  len(phase2),
	}
	for _, day := range store.Days("apex") {
		list, ok := store.TrancoListFor(day)
		if !ok {
			continue
		}
		overlap := phase1
		if !day.Before(tranco.SourceChangeDate) {
			overlap = phase2
		}
		apexSnap, okA := store.SnapshotFor("apex", day)
		wwwSnap, okW := store.SnapshotFor("www", day)
		if !okA || !okW {
			continue
		}
		var dynApex, dynWWW, ovApex, ovWWW, ovTotal int
		for _, apex := range list {
			inOverlap := overlap[apex]
			if inOverlap {
				ovTotal++
			}
			if hasHTTPSOn(apexSnap, "apex", apex) {
				dynApex++
				if inOverlap {
					ovApex++
				}
			}
			if hasHTTPSOn(wwwSnap, "www", apex) {
				dynWWW++
				if inOverlap {
					ovWWW++
				}
			}
		}
		res.DynamicApex.Points = append(res.DynamicApex.Points, Point{day, pct(dynApex, len(list))})
		res.DynamicWWW.Points = append(res.DynamicWWW.Points, Point{day, pct(dynWWW, len(list))})
		res.OverlapApex.Points = append(res.OverlapApex.Points, Point{day, pct(ovApex, ovTotal)})
		res.OverlapWWW.Points = append(res.OverlapWWW.Points, Point{day, pct(ovWWW, ovTotal)})
	}
	return res
}

// Tables renders Fig 2 as two tables.
func (r *AdoptionResult) Tables() []*Table {
	return []*Table{
		SeriesTable("Fig 2a: HTTPS adoption, dynamic Tranco list", 24, r.DynamicApex, r.DynamicWWW),
		SeriesTable("Fig 2b: HTTPS adoption, overlapping domains", 24, r.OverlapApex, r.OverlapWWW),
	}
}

// TrendDelta summarises a series: first value, last value, and change.
func TrendDelta(s Series) (first, last, delta float64) {
	if len(s.Points) == 0 {
		return 0, 0, 0
	}
	first = s.Points[0].Value
	last = s.Points[len(s.Points)-1].Value
	return first, last, last - first
}

// ValueOn returns the series value on the sample closest to date.
func ValueOn(s Series, date time.Time) float64 {
	best := 0.0
	bestDiff := time.Duration(1 << 62)
	for _, p := range s.Points {
		d := p.Date.Sub(date)
		if d < 0 {
			d = -d
		}
		if d < bestDiff {
			bestDiff = d
			best = p.Value
		}
	}
	return best
}

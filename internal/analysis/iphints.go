package analysis

import (
	"net/netip"
	"sort"
	"time"

	"repro/internal/dataset"
)

// HintUsageResult is Fig 11: hint usage and A/AAAA consistency over time.
type HintUsageResult struct {
	Kind    string
	V4Usage Series // % of adopters publishing ipv4hint
	V6Usage Series
	V4Match Series // % of hint publishers whose hints equal the A set
	V6Match Series
}

// HintUsage reproduces Fig 11 for a kind.
func HintUsage(store *dataset.Store, kind string) *HintUsageResult {
	res := &HintUsageResult{
		Kind:    kind,
		V4Usage: Series{Name: "ipv4hint%"},
		V6Usage: Series{Name: "ipv6hint%"},
		V4Match: Series{Name: "v4-match%"},
		V6Match: Series{Name: "v6-match%"},
	}
	for _, day := range store.Days(kind) {
		snap, ok := store.SnapshotFor(kind, day)
		if !ok {
			continue
		}
		var adopters, with4, with6, match4, match6 int
		for _, obs := range snap.Obs {
			if !obs.HasHTTPS() {
				continue
			}
			adopters++
			var h4, h6 []netip.Addr
			for _, r := range obs.HTTPS {
				h4 = append(h4, r.V4Hints...)
				h6 = append(h6, r.V6Hints...)
			}
			if len(h4) > 0 {
				with4++
				if addrSetEqual(h4, obs.A) {
					match4++
				}
			}
			if len(h6) > 0 {
				with6++
				if addrSetEqual(h6, obs.AAAA) {
					match6++
				}
			}
		}
		res.V4Usage.Points = append(res.V4Usage.Points, Point{day, pct(with4, adopters)})
		res.V6Usage.Points = append(res.V6Usage.Points, Point{day, pct(with6, adopters)})
		res.V4Match.Points = append(res.V4Match.Points, Point{day, pct(match4, with4)})
		res.V6Match.Points = append(res.V6Match.Points, Point{day, pct(match6, with6)})
	}
	return res
}

func addrSetEqual(a, b []netip.Addr) bool {
	if len(b) == 0 {
		return false
	}
	set := map[netip.Addr]bool{}
	for _, x := range a {
		set[x] = true
	}
	for _, y := range b {
		if !set[y] {
			return false
		}
	}
	back := map[netip.Addr]bool{}
	for _, y := range b {
		back[y] = true
	}
	for _, x := range a {
		if !back[x] {
			return false
		}
	}
	return true
}

// Tables renders Fig 11.
func (r *HintUsageResult) Tables() []*Table {
	return []*Table{
		SeriesTable("Fig 11 ("+r.Kind+"): IP hint usage and consistency", 20,
			r.V4Usage, r.V4Match, r.V6Usage, r.V6Match),
	}
}

// MismatchDurationsResult is Fig 12 plus the §4.3.5 counts.
type MismatchDurationsResult struct {
	Kind string
	// Episodes holds per-domain mismatch episode lengths in scan steps.
	Durations []int
	MeanDays  float64
	// DistinctDomains ever mismatched.
	DistinctDomains int
	// PersistentDomains were mismatched on every scanned day they
	// appeared with hints.
	PersistentDomains int
	// StepDays converts run lengths to days.
	StepDays int
}

// MismatchDurations reproduces Fig 12: consecutive-day runs of hint/A
// disagreement per domain.
func MismatchDurations(store *dataset.Store, kind string) *MismatchDurationsResult {
	days := store.Days(kind)
	res := &MismatchDurationsResult{Kind: kind, StepDays: stepOf(days)}
	type state struct {
		run        int
		mismatches int
		observed   int
	}
	states := map[string]*state{}
	flush := func(st *state) {
		if st.run > 0 {
			res.Durations = append(res.Durations, st.run)
			st.run = 0
		}
	}
	for _, day := range days {
		snap, ok := store.SnapshotFor(kind, day)
		if !ok {
			continue
		}
		seen := map[string]bool{}
		for name, obs := range snap.Obs {
			if !obs.HasHTTPS() {
				continue
			}
			var h4 []netip.Addr
			for _, r := range obs.HTTPS {
				h4 = append(h4, r.V4Hints...)
			}
			if len(h4) == 0 {
				continue
			}
			seen[name] = true
			st := states[name]
			if st == nil {
				st = &state{}
				states[name] = st
			}
			st.observed++
			if !addrSetEqual(h4, obs.A) {
				st.run++
				st.mismatches++
			} else {
				flush(st)
			}
		}
		for name, st := range states {
			if !seen[name] {
				flush(st)
			}
		}
	}
	var totalRuns, totalLen int
	for _, st := range states {
		flush(st)
	}
	for _, d := range res.Durations {
		totalRuns++
		totalLen += d
	}
	for _, st := range states {
		if st.mismatches > 0 {
			res.DistinctDomains++
			if st.mismatches == st.observed && st.observed > 1 {
				res.PersistentDomains++
			}
		}
	}
	if totalRuns > 0 {
		res.MeanDays = float64(totalLen*res.StepDays) / float64(totalRuns)
	}
	sort.Ints(res.Durations)
	return res
}

func stepOf(days []time.Time) int {
	if len(days) < 2 {
		return 1
	}
	return int(days[1].Sub(days[0]).Hours() / 24)
}

// Table renders Fig 12 as a duration histogram.
func (r *MismatchDurationsResult) Table() *Table {
	buckets := map[string]int{}
	order := []string{"1-3d", "4-7d", "8-14d", "15-30d", ">30d"}
	for _, runLen := range r.Durations {
		d := runLen * r.StepDays
		switch {
		case d <= 3:
			buckets["1-3d"]++
		case d <= 7:
			buckets["4-7d"]++
		case d <= 14:
			buckets["8-14d"]++
		case d <= 30:
			buckets["15-30d"]++
		default:
			buckets[">30d"]++
		}
	}
	t := &Table{
		Title:   "Fig 12 (" + r.Kind + "): duration of IP hint / A mismatches",
		Columns: []string{"duration", "episodes"},
	}
	for _, b := range order {
		t.Rows = append(t.Rows, []string{b, itoa(buckets[b])})
	}
	t.Rows = append(t.Rows,
		[]string{"mean (days)", fmtFloat(r.MeanDays)},
		[]string{"distinct domains", itoa(r.DistinctDomains)},
		[]string{"persistent domains", itoa(r.PersistentDomains)},
	)
	return t
}

func fmtFloat(v float64) string {
	n := int(v * 100)
	return itoa(n/100) + "." + pad2(n%100)
}

func pad2(n int) string {
	if n < 0 {
		n = -n
	}
	if n < 10 {
		return "0" + itoa(n)
	}
	return itoa(n)
}

// ConnectivityResult is the §4.3.5 probing experiment summary.
type ConnectivityResult struct {
	// Occurrences counts (domain, day) mismatch probes.
	Occurrences int
	// DistinctDomains with at least one mismatch probe.
	DistinctDomains int
	// AnyUnreachable: domains with ≥1 unreachable address in a probe.
	AnyUnreachable int
	// HintOnly: domains only reachable via the hint address.
	HintOnly int
	// AOnly: domains only reachable via the A address.
	AOnly int
}

// Connectivity aggregates the TLS probe results.
func Connectivity(store *dataset.Store) *ConnectivityResult {
	res := &ConnectivityResult{}
	type domainAgg struct{ hintFail, aFail, probes int }
	agg := map[string]*domainAgg{}
	for _, p := range store.Probes() {
		if !p.Mismatch {
			continue
		}
		res.Occurrences++
		da := agg[p.Domain]
		if da == nil {
			da = &domainAgg{}
			agg[p.Domain] = da
		}
		da.probes++
		if !p.HintOK {
			da.hintFail++
		}
		if !p.AOK {
			da.aFail++
		}
	}
	res.DistinctDomains = len(agg)
	for _, da := range agg {
		if da.hintFail > 0 || da.aFail > 0 {
			res.AnyUnreachable++
			switch {
			case da.aFail > 0 && da.hintFail == 0:
				res.HintOnly++
			case da.hintFail > 0 && da.aFail == 0:
				res.AOnly++
			}
		}
	}
	return res
}

// Table renders the connectivity experiment.
func (r *ConnectivityResult) Table() *Table {
	return &Table{
		Title:   "§4.3.5: connectivity of domains with mismatched IP hints",
		Columns: []string{"metric", "count"},
		Rows: [][]string{
			{"mismatch occurrences (domain-days)", itoa(r.Occurrences)},
			{"distinct domains", itoa(r.DistinctDomains)},
			{"domains with ≥1 unreachable address", itoa(r.AnyUnreachable)},
			{"  reachable only via IP hint", itoa(r.HintOnly)},
			{"  reachable only via A record", itoa(r.AOnly)},
		},
	}
}

// Package analysis computes every table and figure of the paper's
// evaluation from a collected dataset.Store: adoption trends (Fig 2),
// name-server breakdowns (Tables 2–3, Fig 3), configuration analyses
// (Tables 4–5, §4.3), IP-hint consistency (Figs 11–12), ECH deployment and
// rotation (Figs 4, 13), and DNSSEC (Fig 5, Table 9, Fig 14).
package analysis

package analysis

import (
	"sort"
	"time"

	"repro/internal/dataset"
)

// ECHDeploymentResult is Fig 13: the share of HTTPS adopters publishing the
// ech parameter over time.
type ECHDeploymentResult struct {
	Apex Series
	WWW  Series
	// DropDate is the first scanned day with (near-)zero ECH after a
	// non-zero period — Cloudflare's shutdown.
	DropDate time.Time
	// PeakApexPct is the highest apex share observed.
	PeakApexPct float64
}

// ECHDeployment reproduces Fig 13.
func ECHDeployment(store *dataset.Store, overlap map[string]bool) *ECHDeploymentResult {
	res := &ECHDeploymentResult{
		Apex: Series{Name: "ech-apex%"},
		WWW:  Series{Name: "ech-www%"},
	}
	for _, kind := range []string{"apex", "www"} {
		series := &res.Apex
		if kind == "www" {
			series = &res.WWW
		}
		for _, day := range store.Days(kind) {
			snap, ok := store.SnapshotFor(kind, day)
			if !ok {
				continue
			}
			adopters, withECH := 0, 0
			for name, obs := range snap.Obs {
				if !obs.HasHTTPS() {
					continue
				}
				if overlap != nil && !inOverlap(overlap, kind, name) {
					continue
				}
				adopters++
				for _, r := range obs.HTTPS {
					if r.HasECH {
						withECH++
						break
					}
				}
			}
			series.Points = append(series.Points, Point{day, pct(withECH, adopters)})
		}
	}
	prevNonzero := false
	for _, p := range res.Apex.Points {
		if p.Value > res.PeakApexPct {
			res.PeakApexPct = p.Value
		}
		if prevNonzero && p.Value < 1 && res.DropDate.IsZero() {
			res.DropDate = p.Date
		}
		if p.Value >= 1 {
			prevNonzero = true
		}
	}
	return res
}

func inOverlap(overlap map[string]bool, kind, obsKey string) bool {
	apex := obsKey
	if kind == "www" {
		apex = apex[len("www."):]
	}
	return overlap[trimDot(apex)]
}

func trimDot(s string) string {
	if len(s) > 0 && s[len(s)-1] == '.' {
		return s[:len(s)-1]
	}
	return s
}

// Table renders Fig 13.
func (r *ECHDeploymentResult) Table() *Table {
	return SeriesTable("Fig 13: share of HTTPS-adopting domains publishing ECH", 24, r.Apex, r.WWW)
}

// ECHRotationResult is the Fig 4 / §4.4.2 hourly-scan analysis.
type ECHRotationResult struct {
	// DistinctConfigs counts unique ECH keys observed.
	DistinctConfigs int
	// PublicNames lists client-facing names seen (the paper saw exactly
	// one: cloudflare-ech.com).
	PublicNames []string
	// ConfigLifetimesHours is the observed lifetime (consecutive hourly
	// scans) per distinct key.
	ConfigLifetimesHours []int
	// MeanDurationHours is the mean per-domain config duration (Fig 4:
	// 1.26h).
	MeanDurationHours float64
	// DurationHistogram buckets per-domain average durations.
	DurationHistogram map[string]int
}

// ECHRotation reproduces Fig 4 from the hourly observation stream.
func ECHRotation(store *dataset.Store) *ECHRotationResult {
	obs := store.ECHObservations()
	res := &ECHRotationResult{DurationHistogram: map[string]int{}}
	if len(obs) == 0 {
		return res
	}
	sort.Slice(obs, func(i, j int) bool { return obs[i].Time.Before(obs[j].Time) })

	// Distinct keys and their first/last observation.
	type keySpan struct{ first, last time.Time }
	keys := map[uint64]*keySpan{}
	names := map[string]bool{}
	for _, o := range obs {
		names[o.PublicName] = true
		ks := keys[o.KeyHash]
		if ks == nil {
			keys[o.KeyHash] = &keySpan{first: o.Time, last: o.Time}
		} else {
			if o.Time.After(ks.last) {
				ks.last = o.Time
			}
		}
	}
	res.DistinctConfigs = len(keys)
	for n := range names {
		res.PublicNames = append(res.PublicNames, n)
	}
	sort.Strings(res.PublicNames)
	for _, ks := range keys {
		res.ConfigLifetimesHours = append(res.ConfigLifetimesHours,
			int(ks.last.Sub(ks.first).Hours())+1)
	}
	sort.Ints(res.ConfigLifetimesHours)

	// Per-domain average config duration: group the domain's hourly
	// stream into runs of identical keys.
	type domainRun struct {
		last     uint64
		runStart time.Time
		lastTime time.Time
		durs     []float64
	}
	domains := map[string]*domainRun{}
	for _, o := range obs {
		dr := domains[o.Domain]
		if dr == nil {
			domains[o.Domain] = &domainRun{last: o.KeyHash, runStart: o.Time, lastTime: o.Time}
			continue
		}
		if o.KeyHash != dr.last {
			dr.durs = append(dr.durs, dr.lastTime.Sub(dr.runStart).Hours()+1)
			dr.last = o.KeyHash
			dr.runStart = o.Time
		}
		dr.lastTime = o.Time
	}
	var total float64
	var count int
	for _, dr := range domains {
		if len(dr.durs) == 0 {
			continue
		}
		var sum float64
		for _, d := range dr.durs {
			sum += d
		}
		avg := sum / float64(len(dr.durs))
		total += avg
		count++
		switch {
		case avg < 1.1:
			res.DurationHistogram["<1.1h"]++
		case avg < 1.2:
			res.DurationHistogram["1.1-1.2h"]++
		case avg < 1.3:
			res.DurationHistogram["1.2-1.3h"]++
		case avg < 1.4:
			res.DurationHistogram["1.3-1.4h"]++
		default:
			res.DurationHistogram[">=1.4h"]++
		}
	}
	if count > 0 {
		res.MeanDurationHours = total / float64(count)
	}
	return res
}

// Table renders Fig 4.
func (r *ECHRotationResult) Table() *Table {
	t := &Table{
		Title:   "Fig 4 / §4.4.2: ECH key rotation from hourly scans",
		Columns: []string{"metric", "value"},
		Rows: [][]string{
			{"distinct ECH configs", itoa(r.DistinctConfigs)},
			{"client-facing names", join(r.PublicNames)},
			{"mean config duration (hours)", fmtFloat(r.MeanDurationHours)},
		},
	}
	for _, b := range []string{"<1.1h", "1.1-1.2h", "1.2-1.3h", "1.3-1.4h", ">=1.4h"} {
		t.Rows = append(t.Rows, []string{"domains with avg duration " + b, itoa(r.DurationHistogram[b])})
	}
	return t
}

func join(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ","
		}
		out += s
	}
	return out
}

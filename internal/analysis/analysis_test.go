package analysis

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/providers"
)

// The tests in this file share one campaign: a scaled-down version of the
// paper's full study (2k domains, weekly sampling) plus the hourly ECH
// experiment and the validation census. Assertions check the *shape* of
// each result against the paper's findings with generous bands.

var (
	once     sync.Once
	campaign *core.Campaign
	buildErr error
)

func sharedCampaign(t *testing.T) *core.Campaign {
	t.Helper()
	once.Do(func() {
		campaign, buildErr = core.NewCampaign(core.CampaignConfig{
			Size: 2000, Seed: 7, StepDays: 7,
		})
		if buildErr != nil {
			return
		}
		if buildErr = campaign.RunDaily(); buildErr != nil {
			return
		}
		campaign.RunHourlyECH(time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC), 2)
		campaign.RunValidationCensus(time.Date(2024, 1, 2, 0, 0, 0, 0, time.UTC))
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return campaign
}

func store(t *testing.T) *dataset.Store { return sharedCampaign(t).Store }

func TestFig2Adoption(t *testing.T) {
	res := Adoption(store(t))
	if len(res.DynamicApex.Points) < 10 {
		t.Fatalf("too few samples: %d", len(res.DynamicApex.Points))
	}
	first, last, delta := TrendDelta(res.DynamicApex)
	if first < 12 || first > 30 {
		t.Errorf("dynamic apex adoption at start = %.1f%%, paper ≈20%%", first)
	}
	if last < 18 || last > 36 {
		t.Errorf("dynamic apex adoption at end = %.1f%%, paper ≈27%%", last)
	}
	if delta <= 0 {
		t.Errorf("dynamic apex trend not increasing: Δ=%.2f", delta)
	}
	// Overlapping set: broadly stable (no strong rise like the dynamic).
	_, _, ovDelta := TrendDelta(res.OverlapApex)
	if ovDelta > delta {
		t.Errorf("overlapping trend (Δ=%.2f) rose faster than dynamic (Δ=%.2f)", ovDelta, delta)
	}
	// www sits below apex.
	aFirst, _, _ := TrendDelta(res.DynamicApex)
	wFirst, _, _ := TrendDelta(res.DynamicWWW)
	if wFirst > aFirst {
		t.Errorf("www adoption (%.1f%%) above apex (%.1f%%)", wFirst, aFirst)
	}
	if res.Phase1Size == 0 || res.Phase2Size == 0 {
		t.Error("empty overlapping sets")
	}
}

func TestTable2NSCategories(t *testing.T) {
	res := NSCategories(store(t), nil)
	if res.Days == 0 {
		t.Fatal("no NS days analysed")
	}
	// The MinNonCFAdopters scale floor inflates the non-CF share at this
	// size; the paper's 99.89% emerges at ≳90k domains. Cloudflare must
	// still dominate overwhelmingly.
	if res.FullMean < 85 {
		t.Errorf("full-Cloudflare share = %.2f%%, want dominant (99.89%% at scale)", res.FullMean)
	}
	if res.NoneMean > 14 {
		t.Errorf("none-Cloudflare share = %.2f%%, want small (0.11%% at scale)", res.NoneMean)
	}
	if res.FullMean+res.NoneMean+res.PartialMean < 99 ||
		res.FullMean+res.NoneMean+res.PartialMean > 101 {
		t.Errorf("category shares do not sum to 100: %v", res)
	}
	_ = res.Table("dynamic")
}

func TestTable3AndFig3NonCFProviders(t *testing.T) {
	res := NonCFProviders(store(t), nil)
	if res.DistinctTotal == 0 {
		t.Fatal("no non-CF providers observed")
	}
	for _, pc := range res.TopProviders {
		if isCloudflareOrg(pc.Org) {
			t.Errorf("Cloudflare leaked into the non-CF table")
		}
	}
	// Fig 3: upward trend in distinct provider count.
	first, last, _ := TrendDelta(res.DailyDistinct)
	if last < first {
		t.Errorf("non-CF provider count fell: %.0f → %.0f (paper: upward trend)", first, last)
	}
	_ = res.Table(5)
}

func TestIntermittency(t *testing.T) {
	res := Intermittency(store(t))
	if res.Intermittent == 0 {
		t.Fatal("no intermittent domains detected (paper: 4,598 at 1M scale)")
	}
	if res.SameNS == 0 {
		t.Error("no same-NS intermittent domains (paper: 59.13%)")
	}
	if res.SameNSAllCF == 0 {
		t.Error("no exclusively-Cloudflare same-NS intermittents (paper: 98.31%)")
	}
	if res.NSChanged == 0 {
		t.Error("no NS-change intermittents (paper: multi-provider mixes)")
	}
	// Coverage weighting: each domain contributes (observed days /
	// window days) ∈ (0, 1], so weighted totals are positive, never
	// exceed the raw counts, and the buckets still sum to the total.
	if res.WeightedIntermittent <= 0 || res.WeightedIntermittent > float64(res.Intermittent) {
		t.Errorf("weighted intermittent = %.2f, raw %d", res.WeightedIntermittent, res.Intermittent)
	}
	if res.WeightedSameNS > float64(res.SameNS) || res.WeightedNSChanged > float64(res.NSChanged) ||
		res.WeightedLostNS > float64(res.LostNS) {
		t.Errorf("a weighted bucket exceeds its raw count: %+v", res)
	}
	sum := res.WeightedSameNS + res.WeightedNSChanged + res.WeightedLostNS
	if diff := sum - res.WeightedIntermittent; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("weighted buckets sum to %.4f, want %.4f", sum, res.WeightedIntermittent)
	}
	_ = res.Table()
}

func TestTable4DefaultVsCustom(t *testing.T) {
	res := DefaultVsCustom(store(t), nil)
	if res.Days == 0 {
		t.Fatal("no days analysed")
	}
	if res.DefaultMean < 60 || res.DefaultMean > 95 {
		t.Errorf("default share = %.2f%%, paper 79.96%%", res.DefaultMean)
	}
	_ = res.Table("dynamic")
}

func TestTable5ProviderParams(t *testing.T) {
	google := ProviderParams(store(t), "Google")
	godaddy := ProviderParams(store(t), "GoDaddy")
	if google.Domains == 0 || godaddy.Domains == 0 {
		t.Skip("provider populations too small at this scale")
	}
	if google.ServiceModePct < 80 {
		t.Errorf("Google ServiceMode = %.1f%%, paper 98.95%%", google.ServiceModePct)
	}
	if google.NoALPNPct < 60 {
		t.Errorf("Google empty-alpn = %.1f%%, paper 95.11%%", google.NoALPNPct)
	}
	if godaddy.AliasModePct < 80 {
		t.Errorf("GoDaddy AliasMode = %.1f%%, paper 99.19%%", godaddy.AliasModePct)
	}
	_ = Table5(google, godaddy)
}

func TestSvcParamsOverview(t *testing.T) {
	res := SvcParams(store(t), "apex")
	if res.ServiceModePct < 95 {
		t.Errorf("ServiceMode share = %.2f%%, paper 99.97%%", res.ServiceModePct)
	}
	if res.AliasSelfTarget == 0 {
		t.Error("no AliasMode-self-target pathology observed (paper: 19+22)")
	}
	if res.ServiceNoParams == 0 {
		t.Error("no ServiceMode-without-params domains (paper: 232)")
	}
	if res.PriorityListDomains == 0 {
		t.Error("no multi-priority domains (paper: 14)")
	}
	_ = res.Table("apex")
}

func TestTable8ALPN(t *testing.T) {
	_, phase2 := OverlappingSets(store(t))
	res := ALPN(store(t), "apex", phase2, providers.H3Draft29SunsetDate)
	if res.Share["h2"] < 90 {
		t.Errorf("h2 share = %.1f%%, paper 99.64%%", res.Share["h2"])
	}
	if res.Share["h3"] < 50 || res.Share["h3"] > res.Share["h2"] {
		t.Errorf("h3 share = %.1f%%, paper 78.42%% (below h2)", res.Share["h3"])
	}
	if res.H3Draft29Before <= res.H3Draft29After {
		t.Errorf("h3-29 before (%.1f%%) not above after (%.1f%%): sunset not visible",
			res.H3Draft29Before, res.H3Draft29After)
	}
	_ = res.Table()
}

func TestFig11HintUsage(t *testing.T) {
	res := HintUsage(store(t), "apex")
	if len(res.V4Usage.Points) == 0 {
		t.Fatal("no points")
	}
	_, v4Last, _ := TrendDelta(res.V4Usage)
	if v4Last < 85 {
		t.Errorf("ipv4hint usage = %.1f%%, paper ≈97%%", v4Last)
	}
	_, matchLast, _ := TrendDelta(res.V4Match)
	if matchLast < 90 {
		t.Errorf("v4 hint match = %.1f%%, paper >99%% post-fix", matchLast)
	}
	// v6 below v4 usage.
	_, v6Last, _ := TrendDelta(res.V6Usage)
	if v6Last > v4Last+2 {
		t.Errorf("ipv6hint usage (%.1f%%) above ipv4hint (%.1f%%)", v6Last, v4Last)
	}
	_ = res.Tables()
}

func TestFig12MismatchDurations(t *testing.T) {
	res := MismatchDurations(store(t), "apex")
	if res.DistinctDomains == 0 {
		t.Fatal("no mismatched domains observed")
	}
	if res.MeanDays <= 0 || res.MeanDays > 60 {
		t.Errorf("mean mismatch duration = %.1f days, paper 6.57", res.MeanDays)
	}
	if res.PersistentDomains == 0 {
		t.Error("no persistent mismatch domains (paper: 5)")
	}
	_ = res.Table()
}

func TestConnectivityProbes(t *testing.T) {
	res := Connectivity(store(t))
	if res.Occurrences == 0 {
		t.Fatal("no probe occurrences (experiment window Jan 24 – Mar 31)")
	}
	if res.AnyUnreachable == 0 {
		t.Error("no unreachable domains observed (paper: 193 of 317)")
	}
	if res.AnyUnreachable > res.DistinctDomains {
		t.Error("inconsistent aggregation")
	}
	// Paper: of the unreachable domains, hint-only (117) outnumbers
	// A-only (59); at small scale just require consistency.
	if res.HintOnly+res.AOnly > res.AnyUnreachable {
		t.Error("reachability split exceeds unreachable count")
	}
	_ = res.Table()
}

func TestFig13ECHDeployment(t *testing.T) {
	res := ECHDeployment(store(t), nil)
	before := ValueOn(res.Apex, time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC))
	if before < 50 || before > 90 {
		t.Errorf("ECH share before shutdown = %.1f%%, paper ≈70%%", before)
	}
	after := ValueOn(res.Apex, time.Date(2023, 11, 1, 0, 0, 0, 0, time.UTC))
	if after > 1 {
		t.Errorf("ECH share after shutdown = %.1f%%, paper 0%%", after)
	}
	if res.DropDate.IsZero() {
		t.Error("shutdown drop not detected")
	} else {
		gap := res.DropDate.Sub(providers.ECHDisableDate)
		if gap < 0 {
			gap = -gap
		}
		if gap > 14*24*time.Hour {
			t.Errorf("drop detected at %v, expected near Oct 5 2023", res.DropDate)
		}
	}
	_ = res.Table()
}

func TestFig4ECHRotation(t *testing.T) {
	res := ECHRotation(store(t))
	if res.DistinctConfigs < 10 {
		t.Fatalf("distinct configs = %d over 48 hourly scans, want ≳30", res.DistinctConfigs)
	}
	if len(res.PublicNames) != 1 || res.PublicNames[0] != "cloudflare-ech.com" {
		t.Errorf("public names = %v, paper: only cloudflare-ech.com", res.PublicNames)
	}
	if res.MeanDurationHours < 0.9 || res.MeanDurationHours > 2.0 {
		t.Errorf("mean config duration = %.2fh, paper 1.26h (1–2h band)", res.MeanDurationHours)
	}
	_ = res.Table()
}

func TestFig5Signed(t *testing.T) {
	res := Signed(store(t), nil)
	_, last, _ := TrendDelta(res.SignedApex)
	if last < 3 || last > 20 {
		t.Errorf("signed share = %.1f%%, paper <10%%", last)
	}
	_, validLast, _ := TrendDelta(res.ValidApex)
	if validLast > last {
		t.Errorf("validated (%.1f%%) exceeds signed (%.1f%%)", validLast, last)
	}
	if validLast >= last*0.95 {
		t.Errorf("validated ≈ signed (%.1f vs %.1f); paper: ≈half cannot validate", validLast, last)
	}
	_ = res.Tables("dynamic")
}

func TestTable9Census(t *testing.T) {
	res := Census(store(t))
	if res.WithHTTPS.Signed == 0 || res.WithoutHTTPS.Signed == 0 {
		t.Fatalf("census empty: %+v", res)
	}
	withIns := pct(res.WithHTTPS.Insecure, res.WithHTTPS.Signed)
	withoutIns := pct(res.WithoutHTTPS.Insecure, res.WithoutHTTPS.Signed)
	if withIns < 30 || withIns > 65 {
		t.Errorf("insecure (with HTTPS) = %.1f%%, paper 49.4%%", withIns)
	}
	if withoutIns < 10 || withoutIns > 40 {
		t.Errorf("insecure (without HTTPS) = %.1f%%, paper 23.7%%", withoutIns)
	}
	if withIns <= withoutIns {
		t.Errorf("HTTPS-domain insecure ratio (%.1f%%) not above non-HTTPS (%.1f%%)", withIns, withoutIns)
	}
	// CF-NS signed domains are the drivers of the high insecure ratio.
	cfIns := pct(res.CFNS.Insecure, res.CFNS.Signed)
	nonIns := pct(res.NonCFNS.Insecure, res.NonCFNS.Signed)
	if res.NonCFNS.Signed > 0 && cfIns <= nonIns {
		t.Errorf("CF insecure (%.1f%%) not above non-CF (%.1f%%); paper 49.5%% vs 14.1%%", cfIns, nonIns)
	}
	if res.WithHTTPS.Bogus != 0 {
		t.Errorf("bogus results present: %d (paper: none)", res.WithHTTPS.Bogus)
	}
	_ = res.Table()
}

func TestFig14SignedECH(t *testing.T) {
	res := SignedECH(store(t), nil)
	// Only meaningful before the shutdown.
	v := ValueOn(res.SignedPct, time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC))
	if v > 15 {
		t.Errorf("signed ECH share = %.1f%%, paper <6%%", v)
	}
	_ = res.Table()
}

func TestFig8Rankings(t *testing.T) {
	phase1, _ := OverlappingSets(store(t))
	stats := RankDistributions(store(t), phase1)
	if len(stats) != 2 {
		t.Fatal("want two populations")
	}
	if stats[0].Count == 0 || stats[1].Count == 0 {
		t.Fatal("empty rank populations")
	}
	if stats[0].Mean >= stats[1].Mean {
		t.Errorf("overlapping mean rank (%.0f) not above (better than) non-overlapping (%.0f)",
			stats[0].Mean, stats[1].Mean)
	}
	_ = RankTable("Fig 8", stats...)
	_ = NonCFRankings(store(t))
}

// TestIntermittencyMinObsGate pins the sparse-history edge: a domain that
// deactivated but was only observed on two in-list days is classified at
// the structural floor (min 2) yet skipped — and counted as skipped —
// under a higher observation gate, while a dense history survives any
// reasonable gate.
func TestIntermittencyMinObsGate(t *testing.T) {
	st := dataset.NewStore()
	day0 := time.Date(2023, 9, 1, 0, 0, 0, 0, time.UTC)
	obsFor := func(name string) *dataset.Observation {
		return &dataset.Observation{
			Name:  name,
			HTTPS: []dataset.HTTPSRecord{{Priority: 1, Target: "."}},
			NS:    []string{"ns1.prov.test."},
		}
	}
	// dense.test: in the list on all 4 days, published on days 0-2, off on
	// day 3. sparse.test: churned into the list on days 0-1 only,
	// published on day 0, off on day 1 — one deactivation on a two-day
	// history.
	for i := 0; i < 4; i++ {
		day := day0.AddDate(0, 0, i)
		list := []string{"dense.test."}
		if i < 2 {
			list = append(list, "sparse.test.")
		}
		obs := map[string]*dataset.Observation{}
		if i < 3 {
			obs["dense.test."] = obsFor("dense.test.")
		}
		if i == 0 {
			obs["sparse.test."] = obsFor("sparse.test.")
		}
		st.AddTrancoList(day, list)
		st.AddSnapshot(&dataset.Snapshot{Date: day, Kind: "apex", Total: len(list), Obs: obs})
		st.AddNSSnapshot(&dataset.NSSnapshot{Date: day, Servers: map[string]*dataset.NSObservation{
			"ns1.prov.test.": {Host: "ns1.prov.test.", Org: "ProvTest"},
		}})
	}

	floor := Intermittency(st)
	if floor.Intermittent != 2 || floor.SparseSkipped != 0 {
		t.Fatalf("floor gate: intermittent=%d skipped=%d, want 2/0", floor.Intermittent, floor.SparseSkipped)
	}
	gated := IntermittencyMinObs(st, 3)
	if gated.Intermittent != 1 || gated.SparseSkipped != 1 {
		t.Fatalf("minObs=3: intermittent=%d skipped=%d, want 1/1", gated.Intermittent, gated.SparseSkipped)
	}
	if gated.MinObservations != 3 {
		t.Errorf("MinObservations = %d", gated.MinObservations)
	}
	// The skipped row appears only when the gate exceeds the floor.
	if rows := len(gated.Table().Rows); rows != len(floor.Table().Rows)+1 {
		t.Errorf("gated table rows = %d, floor = %d (want +1 skipped row)", rows, len(floor.Table().Rows))
	}
	// A gate at the dense history's length still admits it.
	if all := IntermittencyMinObs(st, 4); all.Intermittent != 1 || all.SparseSkipped != 1 {
		t.Errorf("minObs=4: %+v", all)
	}
	// Below-floor values clamp to the structural minimum.
	if clamped := IntermittencyMinObs(st, 0); clamped.Intermittent != 2 || clamped.MinObservations != 2 {
		t.Errorf("minObs=0 not clamped: %+v", clamped)
	}
}

// TestStaleECHCorrelation pins the §4.4.2 join: per-day serving
// snapshots and hourly ECH observations line up by UTC day, domains
// serving two or more distinct configs within a day count as
// inconsistent, and coincident days (stale serves and inconsistency
// together) are flagged.
func TestStaleECHCorrelation(t *testing.T) {
	st := dataset.NewStore()
	day1 := time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC)
	day2 := day1.AddDate(0, 0, 1)
	st.AddServing(&dataset.ServingSnapshot{Date: day1, StaleServed: 3, UpstreamFailures: 2, StaleWindowSec: 3600})
	st.AddServing(&dataset.ServingSnapshot{Date: day2, StaleServed: 0})
	// Day 1: a.test rotates through three configs (inconsistent), b.test
	// holds one. Day 2: a.test is stable — no inconsistency despite the
	// extra observation hours.
	for h, key := range []uint64{11, 22, 33} {
		st.AddECH(dataset.ECHObservation{Time: day1.Add(time.Duration(h) * time.Hour), Domain: "a.test.", KeyHash: key})
	}
	st.AddECH(dataset.ECHObservation{Time: day1.Add(time.Hour), Domain: "b.test.", KeyHash: 7})
	st.AddECH(dataset.ECHObservation{Time: day2.Add(time.Hour), Domain: "a.test.", KeyHash: 33})
	st.AddECH(dataset.ECHObservation{Time: day2.Add(2 * time.Hour), Domain: "a.test.", KeyHash: 33})

	res := StaleECHCorrelation(st)
	if len(res.Days) != 2 {
		t.Fatalf("joined %d days, want 2", len(res.Days))
	}
	d1, d2 := res.Days[0], res.Days[1]
	if !d1.HasServing || d1.StaleServed != 3 || d1.UpstreamFailures != 2 || d1.StaleWindowSec != 3600 {
		t.Errorf("day1 serving side: %+v", d1)
	}
	if d1.ECHDomains != 2 || d1.InconsistentDomains != 1 || d1.MaxConfigs != 3 {
		t.Errorf("day1 ECH side: %+v", d1)
	}
	if d2.ECHDomains != 1 || d2.InconsistentDomains != 0 || d2.MaxConfigs != 1 {
		t.Errorf("day2 ECH side: %+v", d2)
	}
	if res.TotalStaleServed != 3 || res.TotalInconsistent != 1 || res.CoincidentDays != 1 {
		t.Errorf("totals: %+v", res)
	}
	// Rows: one per day plus the totals row.
	if rows := len(res.Table().Rows); rows != 3 {
		t.Errorf("table rows = %d, want 3", rows)
	}
	// Empty store renders the placeholder row rather than panicking.
	if rows := len(StaleECHCorrelation(dataset.NewStore()).Table().Rows); rows != 1 {
		t.Errorf("empty-store table rows = %d, want 1", rows)
	}
}

// TestAnomalyReport renders captures straight from a hand-built store:
// verdict columns, event totals, and the most frequent event group.
func TestAnomalyReport(t *testing.T) {
	s := dataset.NewStore()
	day := time.Date(2024, 1, 25, 0, 0, 0, 0, time.UTC)
	s.AddAnomaly(&dataset.AnomalyCapture{
		Date: day, Exchanges: 100, Errors: 2, ServFails: 1, StaleServed: 5,
		Availability: 0.97, StaleRatio: 0.05, Violations: 2,
		Events: []dataset.AnomalyEvent{
			{Key: "client.error", Count: 2},
			{Key: "client.stale", Count: 5},
		},
		Traces: []dataset.AnomalyTrace{{Name: "a.example.", Flags: []string{"stale"}}},
	})
	s.AddAnomaly(&dataset.AnomalyCapture{
		Date: day.AddDate(0, 0, 7), Exchanges: 50, Availability: 1,
	})
	tab := AnomalyReport(s)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	r := tab.Rows[0]
	if r[0] != "2024-01-25" || r[1] != "100" || r[7] != "2" {
		t.Fatalf("verdict row = %v", r)
	}
	if r[8] != "7" || r[9] != "1" || r[10] != "client.stale ×5" {
		t.Fatalf("evidence columns = %v", r[8:])
	}
	// A capture with no events renders the placeholder top event.
	if tab.Rows[1][10] != "-" {
		t.Fatalf("empty-events top = %q", tab.Rows[1][10])
	}
}

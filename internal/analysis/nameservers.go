package analysis

import (
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/dnswire"
)

// CloudflareOrg is the organisation name used for Cloudflare attribution.
const CloudflareOrg = "Cloudflare"

// nsOrgs returns the set of operator orgs behind a domain observation's NS
// hosts, using the day's NS snapshot for attribution.
func nsOrgs(obs *dataset.Observation, nsSnap *dataset.NSSnapshot) []string {
	seen := map[string]bool{}
	var orgs []string
	for _, host := range obs.NS {
		host = dnswire.CanonicalName(host)
		org := ""
		if nsSnap != nil {
			if nso, ok := nsSnap.Servers[host]; ok {
				org = nso.Org
			}
		}
		if org == "" {
			// Fallback attribution from the host name itself (the
			// paper's manual-review step).
			org = orgFromHost(host)
		}
		if org != "" && !seen[org] {
			seen[org] = true
			orgs = append(orgs, org)
		}
	}
	return orgs
}

func orgFromHost(host string) string {
	parts := dnswire.SplitLabels(host)
	if len(parts) < 2 {
		return ""
	}
	infra := parts[len(parts)-2] // e.g. "cloudflare-dns-sim"
	name, _, _ := strings.Cut(infra, "-dns-sim")
	if name == "" {
		return ""
	}
	// Restore capitalisation conventions loosely: exact org strings come
	// from WHOIS normally; this fallback is best-effort.
	return name
}

func isCloudflareOrg(org string) bool {
	return strings.EqualFold(org, CloudflareOrg) || strings.EqualFold(org, "cloudflare")
}

// NSCategoriesResult is Table 2: full/none/partial Cloudflare NS shares.
type NSCategoriesResult struct {
	FullMean, FullStd       float64
	NoneMean, NoneStd       float64
	PartialMean, PartialStd float64
	Days                    int
}

// NSCategories reproduces Table 2 over the NS measurement days. overlap,
// when non-nil, restricts to the overlapping set (Table 2's second column
// pair); nil gives the dynamic column.
func NSCategories(store *dataset.Store, overlap map[string]bool) *NSCategoriesResult {
	var full, none, partial []float64
	for _, day := range store.NSDays() {
		apexSnap, ok := store.SnapshotFor("apex", day)
		if !ok {
			continue
		}
		nsSnap, _ := store.NSSnapshotFor(day)
		var f, n, p, total int
		for name, obs := range apexSnap.Obs {
			if !obs.HasHTTPS() || len(obs.NS) == 0 {
				continue
			}
			if overlap != nil && !overlap[strings.TrimSuffix(name, ".")] {
				continue
			}
			orgs := nsOrgs(obs, nsSnap)
			cf, other := 0, 0
			for _, org := range orgs {
				if isCloudflareOrg(org) {
					cf++
				} else {
					other++
				}
			}
			total++
			switch {
			case cf > 0 && other == 0:
				f++
			case cf == 0:
				n++
			default:
				p++
			}
		}
		if total == 0 {
			continue
		}
		full = append(full, pct(f, total))
		none = append(none, pct(n, total))
		partial = append(partial, pct(p, total))
	}
	res := &NSCategoriesResult{Days: len(full)}
	res.FullMean, res.FullStd = meanStd(full)
	res.NoneMean, res.NoneStd = meanStd(none)
	res.PartialMean, res.PartialStd = meanStd(partial)
	return res
}

// Table renders Table 2.
func (r *NSCategoriesResult) Table(label string) *Table {
	f := func(m, s float64) []string {
		return []string{fmtPct(m), fmtPct(s)}
	}
	t := &Table{
		Title:   "Table 2 (" + label + "): Cloudflare NS categories among apex domains with HTTPS",
		Columns: []string{"category", "mean", "std"},
	}
	t.Rows = append(t.Rows, append([]string{"Full Cloudflare NS"}, f(r.FullMean, r.FullStd)...))
	t.Rows = append(t.Rows, append([]string{"None Cloudflare NS"}, f(r.NoneMean, r.NoneStd)...))
	t.Rows = append(t.Rows, append([]string{"Partial Cloudflare NS"}, f(r.PartialMean, r.PartialStd)...))
	return t
}

// NonCFProvidersResult holds Table 3 + Fig 3.
type NonCFProvidersResult struct {
	// TopProviders ranks non-CF orgs by distinct HTTPS-adopting domains
	// ever seen.
	TopProviders []ProviderCount
	// DistinctTotal is the number of distinct non-CF providers ever seen.
	DistinctTotal int
	// DailyDistinct is the Fig 3 series.
	DailyDistinct Series
}

// ProviderCount is one Table 3 row.
type ProviderCount struct {
	Org     string
	Domains int
}

// NonCFProviders reproduces Table 3 and Fig 3.
func NonCFProviders(store *dataset.Store, overlap map[string]bool) *NonCFProvidersResult {
	domainsPerOrg := map[string]map[string]bool{}
	res := &NonCFProvidersResult{DailyDistinct: Series{Name: "distinct-nonCF-providers"}}
	for _, day := range store.NSDays() {
		apexSnap, ok := store.SnapshotFor("apex", day)
		if !ok {
			continue
		}
		nsSnap, _ := store.NSSnapshotFor(day)
		today := map[string]bool{}
		for name, obs := range apexSnap.Obs {
			if !obs.HasHTTPS() {
				continue
			}
			if overlap != nil && !overlap[strings.TrimSuffix(name, ".")] {
				continue
			}
			// Table 3 counts the "None Cloudflare NS" population:
			// domains whose NS set contains no Cloudflare servers
			// (partial mixes belong to Table 2's partial row).
			orgs := nsOrgs(obs, nsSnap)
			anyCF := false
			for _, org := range orgs {
				if isCloudflareOrg(org) {
					anyCF = true
				}
			}
			if anyCF {
				continue
			}
			for _, org := range orgs {
				today[org] = true
				if domainsPerOrg[org] == nil {
					domainsPerOrg[org] = map[string]bool{}
				}
				domainsPerOrg[org][name] = true
			}
		}
		res.DailyDistinct.Points = append(res.DailyDistinct.Points,
			Point{day, float64(len(today))})
	}
	for org, domains := range domainsPerOrg {
		res.TopProviders = append(res.TopProviders, ProviderCount{Org: org, Domains: len(domains)})
	}
	sort.Slice(res.TopProviders, func(i, j int) bool {
		if res.TopProviders[i].Domains != res.TopProviders[j].Domains {
			return res.TopProviders[i].Domains > res.TopProviders[j].Domains
		}
		return res.TopProviders[i].Org < res.TopProviders[j].Org
	})
	res.DistinctTotal = len(res.TopProviders)
	return res
}

// Table renders Table 3 (top n rows).
func (r *NonCFProvidersResult) Table(n int) *Table {
	t := &Table{
		Title:   "Table 3: top non-Cloudflare DNS providers (distinct HTTPS domains)",
		Columns: []string{"provider", "#domains"},
	}
	for i, pc := range r.TopProviders {
		if i == n {
			break
		}
		t.Rows = append(t.Rows, []string{pc.Org, itoa(pc.Domains)})
	}
	return t
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// IntermittencyResult summarises §4.2.3.
type IntermittencyResult struct {
	// Intermittent counts apex domains that deactivated previously
	// published HTTPS records at least once within the NS window.
	Intermittent int
	// SameNS of those kept an identical NS set across all active days.
	SameNS int
	// SameNSAllCF of the SameNS group used exclusively Cloudflare NS.
	SameNSAllCF int
	// NSChanged deactivated alongside an NS set change.
	NSChanged int
	// LostNS became entirely unresolvable (no NS) while deactivated.
	LostNS int

	// The Weighted* counterparts scale each domain's contribution by its
	// in-list coverage (observed days / NS-window days): a Tranco-churny
	// domain seen on 3 of 30 days supplies 3/30 of a count rather than a
	// full one, so sparse histories — whose classification rests on a
	// handful of samples — no longer weigh as much as dense ones.
	WeightedIntermittent float64
	WeightedSameNS       float64
	WeightedSameNSAllCF  float64
	WeightedNSChanged    float64
	WeightedLostNS       float64

	// MinObservations is the classification gate the result was computed
	// with: domains observed on fewer in-list days are not classified at
	// all. SparseSkipped counts domains that showed a deactivation but
	// fell under the gate — the histories too thin to call a trend.
	MinObservations int
	SparseSkipped   int
}

// DefaultIntermittencyMinObs is the observation floor Intermittency
// applies: two observed days is the bare minimum for an on→off
// transition to exist at all.
const DefaultIntermittencyMinObs = 2

// Intermittency reproduces the §4.2.3 analysis over the NS window with
// the default observation floor.
func Intermittency(store *dataset.Store) *IntermittencyResult {
	return IntermittencyMinObs(store, DefaultIntermittencyMinObs)
}

// IntermittencyMinObs is Intermittency with an explicit classification
// gate: a domain must have been observed on at least minObs in-list days
// before its deactivations count. Coverage weighting (the Weighted*
// fields) softens sparse histories; the gate removes them — a domain seen
// on 2 of 30 days with one on→off flip is indistinguishable from Tranco
// churn noise, and a higher floor keeps it out of the §4.2.3 counts
// entirely (reported in SparseSkipped instead).
func IntermittencyMinObs(store *dataset.Store, minObs int) *IntermittencyResult {
	if minObs < DefaultIntermittencyMinObs {
		minObs = DefaultIntermittencyMinObs
	}
	days := store.NSDays()
	if len(days) == 0 {
		return &IntermittencyResult{MinObservations: minObs}
	}
	// History is compressed to the days the domain was actually in the
	// list: on a day it fell out of the list, absence of an observation
	// is a churn artifact, not evidence of record deactivation.
	type history struct {
		present []bool
		nsSets  []string // canonical NS org set per observed day
		errDays int      // days the domain failed to resolve at all
	}
	hist := map[string]*history{}
	for _, day := range days {
		apexSnap, ok := store.SnapshotFor("apex", day)
		if !ok {
			continue
		}
		list, _ := store.TrancoListFor(day)
		nsSnap, _ := store.NSSnapshotFor(day)
		for _, d := range list {
			name := dnswire.CanonicalName(d)
			h := hist[name]
			if h == nil {
				h = &history{}
				hist[name] = h
			}
			present, nsSet := false, ""
			if obs, ok := apexSnap.Obs[name]; ok {
				if obs.HasHTTPS() {
					present = true
					orgs := nsOrgs(obs, nsSnap)
					sort.Strings(orgs)
					nsSet = strings.Join(orgs, ",")
				} else if obs.Err != "" {
					// The domain became unresolvable (e.g. lost its
					// NS records entirely).
					h.errDays++
				}
			}
			h.present = append(h.present, present)
			h.nsSets = append(h.nsSets, nsSet)
		}
	}
	res := &IntermittencyResult{MinObservations: minObs}
	for _, h := range hist {
		// Two observed days is the structural floor: fewer cannot hold an
		// on → off transition.
		if len(h.present) < 2 {
			continue
		}
		// Intermittency = at least one deactivation (on → off) of
		// previously observed records.
		deactivations := 0
		for i := 1; i < len(h.present); i++ {
			if h.present[i-1] && !h.present[i] {
				deactivations++
			}
		}
		if deactivations == 0 {
			continue
		}
		// The gate: a deactivation observed on a too-sparse history is
		// noise, not a classified trend.
		if len(h.present) < minObs {
			res.SparseSkipped++
			continue
		}
		// A domain in the list every scanned day contributes a full
		// count; one that churned in for a fraction of the window
		// contributes that fraction.
		weight := float64(len(h.present)) / float64(len(days))
		res.Intermittent++
		res.WeightedIntermittent += weight
		// Compare NS org sets across active days.
		sets := map[string]bool{}
		for i, p := range h.present {
			if p && h.nsSets[i] != "" {
				sets[h.nsSets[i]] = true
			}
		}
		switch {
		case h.errDays > 0:
			res.LostNS++
			res.WeightedLostNS += weight
		case len(sets) <= 1:
			res.SameNS++
			res.WeightedSameNS += weight
			for s := range sets {
				if isCloudflareOrg(s) {
					res.SameNSAllCF++
					res.WeightedSameNSAllCF += weight
				}
			}
		default:
			res.NSChanged++
			res.WeightedNSChanged += weight
		}
	}
	return res
}

// Table renders the intermittency summary; the weighted column scales
// each domain by its in-list coverage of the NS window. With a gate
// above the structural floor, the skipped sparse histories get a row of
// their own so the excluded population is visible.
func (r *IntermittencyResult) Table() *Table {
	t := &Table{
		Title:   "§4.2.3: intermittent HTTPS record activation",
		Columns: []string{"metric", "count", "weighted"},
		Rows: [][]string{
			{"intermittent apex domains", itoa(r.Intermittent), fmtFloat(r.WeightedIntermittent)},
			{"  same NS set throughout", itoa(r.SameNS), fmtFloat(r.WeightedSameNS)},
			{"    of which exclusively Cloudflare", itoa(r.SameNSAllCF), fmtFloat(r.WeightedSameNSAllCF)},
			{"  NS set changed", itoa(r.NSChanged), fmtFloat(r.WeightedNSChanged)},
			{"  transient NS loss", itoa(r.LostNS), fmtFloat(r.WeightedLostNS)},
		},
	}
	if r.MinObservations > DefaultIntermittencyMinObs {
		t.Rows = append(t.Rows, []string{
			"  skipped (observed days < " + itoa(r.MinObservations) + ")",
			itoa(r.SparseSkipped), "-"})
	}
	return t
}

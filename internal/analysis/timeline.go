package analysis

import (
	"fmt"
	"time"

	"repro/internal/dataset"
)

// TelemetryTimeline renders the campaign's telemetry series for one
// scope ("daily" for the per-day stage curves, "hourly-ech" for the
// rotation experiment) as a table: one row per sample, carrying the
// stable per-exchange counters the obs subsystem guarantees are
// byte-identical across worker counts. An empty table (no rows) means
// the campaign ran without TelemetryInterval or without a fleet.
func TelemetryTimeline(store *dataset.Store, scope string) *Table {
	t := &Table{
		Title: fmt.Sprintf("Telemetry timeline (%s): stable fleet metrics per sample", scope),
		Columns: []string{"date", "sample", "exchanges", "stale", "negative",
			"prefetch", "upstream-fail", "pool-healthy"},
	}
	for _, series := range store.TelemetryAll() {
		if series.Scope != scope {
			continue
		}
		for _, p := range series.Points {
			t.Rows = append(t.Rows, []string{
				series.Date.Format("2006-01-02"),
				fmt.Sprintf("%s@%s", p.Label, time.Unix(p.AtSec, 0).UTC().Format("15:04")),
				fmt.Sprintf("%.0f", p.Value("client_exchanges_total")),
				fmt.Sprintf("%.0f", p.Value("client_stale_answers_total")),
				fmt.Sprintf("%.0f", p.Value("client_negative_answers_total")),
				fmt.Sprintf("%.0f", p.Value("fleet_prefetches_total")),
				fmt.Sprintf("%.0f", p.Value("fleet_upstream_failures_total")),
				fmt.Sprintf("%.0f/%.0f", p.Value("pool_healthy"), p.Value("pool_members")),
			})
		}
	}
	return t
}

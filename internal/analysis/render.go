package analysis

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Table is a formatted result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Format renders the table with aligned columns.
func (t *Table) Format() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// Point is one (date, value) sample of a time series.
type Point struct {
	Date  time.Time
	Value float64
}

// Series is a named time series (one line of a figure).
type Series struct {
	Name   string
	Points []Point
}

// SeriesTable renders several series side by side, sampling at most
// maxRows dates.
func SeriesTable(title string, maxRows int, series ...Series) *Table {
	t := &Table{Title: title, Columns: []string{"date"}}
	for _, s := range series {
		t.Columns = append(t.Columns, s.Name)
	}
	if len(series) == 0 || len(series[0].Points) == 0 {
		return t
	}
	n := len(series[0].Points)
	step := 1
	if maxRows > 0 && n > maxRows {
		step = (n + maxRows - 1) / maxRows
	}
	for i := 0; i < n; i += step {
		row := []string{series[0].Points[i].Date.Format("2006-01-02")}
		for _, s := range series {
			if i < len(s.Points) {
				row = append(row, fmt.Sprintf("%.2f", s.Points[i].Value))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func pct(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

func fmtPct(v float64) string { return fmt.Sprintf("%.2f%%", v) }

// meanStd computes the mean and standard deviation of values.
func meanStd(values []float64) (mean, std float64) {
	if len(values) == 0 {
		return 0, 0
	}
	for _, v := range values {
		mean += v
	}
	mean /= float64(len(values))
	for _, v := range values {
		std += (v - mean) * (v - mean)
	}
	std /= float64(len(values))
	return mean, math.Sqrt(std)
}

package webserver

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/ech"
	"repro/internal/simnet"
	"repro/internal/tlssim"
)

func km(t *testing.T, publicName string, seed int64) *ech.KeyManager {
	t.Helper()
	m, err := ech.NewKeyManager(rand.New(rand.NewSource(seed)), publicName,
		time.Hour, 2*time.Hour, time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPlainHandshake(t *testing.T) {
	ep := &Endpoint{CertNames: []string{"a.com"}, ALPN: []string{"h2", "h3"}}
	res, err := ep.HandleTLS(&tlssim.ClientHello{SNI: "a.com", ALPN: []string{"h3"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.ALPN != "h3" || res.ECHAccepted || !res.CertMatches("a.com") {
		t.Errorf("res = %+v", res)
	}
	// SNI mismatch: handshake completes, certificate does not match —
	// the client decides.
	res, err = ep.HandleTLS(&tlssim.ClientHello{SNI: "other.com"})
	if err != nil {
		t.Fatal(err)
	}
	if res.CertMatches("other.com") {
		t.Error("cert should not cover other.com")
	}
}

func TestALPNMismatchIsProtocolless(t *testing.T) {
	ep := &Endpoint{CertNames: []string{"a.com"}, ALPN: []string{"h2"}}
	res, err := ep.HandleTLS(&tlssim.ClientHello{SNI: "a.com", ALPN: []string{"h3"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.ALPN != "" {
		t.Errorf("ALPN = %q", res.ALPN)
	}
}

func TestECHSharedMode(t *testing.T) {
	keys := km(t, "cover.a.com", 1)
	clock := simnet.NewClock(time.Unix(0, 0))
	ep := &Endpoint{CertNames: []string{"a.com", "cover.a.com"}, ALPN: []string{"h2"},
		ECHKeys: keys, Clock: clock}
	cfg := keys.CurrentConfig(clock.Now())
	hello, err := tlssim.BuildECHHello(cfg, "a.com", []string{"h2"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ep.HandleTLS(hello)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ECHAccepted || res.ServedSNI != "a.com" || !res.CertMatches("a.com") {
		t.Errorf("shared mode res = %+v", res)
	}
}

func TestECHSplitModeForwarding(t *testing.T) {
	keys := km(t, "b.com", 2)
	clock := simnet.NewClock(time.Unix(0, 0))
	backend := &Endpoint{CertNames: []string{"a.com"}, ALPN: []string{"h2"}, Clock: clock}
	front := &Endpoint{CertNames: []string{"b.com"}, ALPN: []string{"h2"},
		ECHKeys: keys, Clock: clock,
		Backends: map[string]*Endpoint{"a.com": backend}}
	cfg := keys.CurrentConfig(clock.Now())
	hello, err := tlssim.BuildECHHello(cfg, "a.com", []string{"h2"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := front.HandleTLS(hello)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ECHAccepted || !res.CertMatches("a.com") {
		t.Errorf("split forwarding res = %+v", res)
	}
}

func TestECHMismatchedKeyRetry(t *testing.T) {
	current := km(t, "cover.a.com", 3)
	stale := km(t, "cover.a.com", 4)
	clock := simnet.NewClock(time.Unix(0, 0))
	ep := &Endpoint{CertNames: []string{"a.com", "cover.a.com"}, ALPN: []string{"h2"},
		ECHKeys: current, Clock: clock}
	// Client uses a stale config the server never had.
	cfg := stale.CurrentConfig(clock.Now())
	hello, err := tlssim.BuildECHHello(cfg, "a.com", []string{"h2"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ep.HandleTLS(hello)
	if err != nil {
		t.Fatal(err)
	}
	if res.ECHAccepted {
		t.Fatal("stale key accepted")
	}
	if len(res.RetryConfigs) == 0 {
		t.Fatal("no retry configs offered")
	}
	// Retry with the provided configs succeeds.
	configs, err := ech.UnmarshalList(res.RetryConfigs)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := ech.SelectConfig(configs)
	if err != nil {
		t.Fatal(err)
	}
	hello2, err := tlssim.BuildECHHello(fresh, "a.com", []string{"h2"})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := ep.HandleTLS(hello2)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.ECHAccepted {
		t.Error("retry config rejected")
	}
}

func TestECHRetryDisabled(t *testing.T) {
	current := km(t, "cover.a.com", 5)
	stale := km(t, "cover.a.com", 6)
	clock := simnet.NewClock(time.Unix(0, 0))
	ep := &Endpoint{CertNames: []string{"a.com"}, ECHKeys: current, Clock: clock,
		DisableRetry: true}
	cfg := stale.CurrentConfig(clock.Now())
	hello, err := tlssim.BuildECHHello(cfg, "a.com", nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ep.HandleTLS(hello)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RetryConfigs) != 0 {
		t.Error("retry configs offered despite DisableRetry")
	}
}

func TestUnilateralECHIgnored(t *testing.T) {
	// Server without ECH keys: the extension is ignored; the handshake
	// completes on the outer SNI.
	keys := km(t, "cover.a.com", 7)
	ep := &Endpoint{CertNames: []string{"a.com", "cover.a.com"}, ALPN: []string{"h2"}}
	cfg := keys.CurrentConfig(time.Unix(0, 0))
	hello, err := tlssim.BuildECHHello(cfg, "a.com", []string{"h2"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ep.HandleTLS(hello)
	if err != nil {
		t.Fatal(err)
	}
	if res.ECHAccepted || len(res.RetryConfigs) != 0 {
		t.Errorf("unilateral res = %+v", res)
	}
	if res.ServedSNI != "cover.a.com" {
		t.Errorf("served SNI = %q, want outer name", res.ServedSNI)
	}
}

func TestHTTPOnlyRefusesTLS(t *testing.T) {
	ep := &Endpoint{HTTPOnly: true}
	if _, err := ep.HandleTLS(&tlssim.ClientHello{SNI: "a.com"}); err == nil {
		t.Error("HTTP-only endpoint completed a TLS handshake")
	}
}

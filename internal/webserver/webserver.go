// Package webserver implements the simulated HTTPS endpoints of the §5
// testbed: TLS servers with configurable certificate names, ALPN support
// sets, and ECH roles (shared-mode server holding its own keys, split-mode
// client-facing server forwarding decrypted inner hellos to back-end
// servers, and plain servers for unilateral-ECH scenarios) — the Nginx
// counterpart of the paper's setup.
package webserver

import (
	"net/netip"
	"strings"
	"time"

	"repro/internal/ech"
	"repro/internal/simnet"
	"repro/internal/tlssim"
)

// Endpoint is one TLS server instance.
type Endpoint struct {
	// CertNames are the DNS names the server's certificate covers.
	CertNames []string
	// ALPN lists supported application protocols.
	ALPN []string
	// Clock supplies virtual time for ECH key validity.
	Clock *simnet.Clock
	// ECHKeys, when set, lets the endpoint decrypt ECH payloads.
	ECHKeys *ech.KeyManager
	// DisableRetry suppresses retry configs on ECH decryption failure
	// (discouraged by the spec; modelled for completeness).
	DisableRetry bool
	// Backends routes decrypted inner SNIs to other endpoints (split
	// mode); an inner SNI matching CertNames is served locally (shared
	// mode).
	Backends map[string]*Endpoint
	// HTTPOnly marks a plaintext port-80 endpoint (no TLS).
	HTTPOnly bool
}

// clockNow tolerates a nil clock for static setups.
func (e *Endpoint) clockNow() time.Time {
	if e.Clock == nil {
		return time.Unix(0, 0)
	}
	return e.Clock.Now()
}

func canonical(name string) string {
	return strings.TrimSuffix(strings.ToLower(name), ".")
}

// HandleTLS implements tlssim.Server.
func (e *Endpoint) HandleTLS(ch *tlssim.ClientHello) (*tlssim.HandshakeResult, error) {
	if e.HTTPOnly {
		return nil, simnet.ErrRefused
	}
	// ECH processing first.
	if ch.ECH != nil && e.ECHKeys != nil {
		inner, err := e.ECHKeys.Open(e.clockNow(), ch.ECH.ConfigID, ch.ECH.Enc,
			[]byte("ech-aad:"+canonical(ch.SNI)), ch.ECH.Payload)
		if err == nil {
			return e.serveInner(inner, ch)
		}
		// Decryption failure: complete the handshake for the public
		// (outer) name and attach retry configs (unless disabled).
		res := e.plainResult(ch)
		if !e.DisableRetry {
			res.RetryConfigs = e.ECHKeys.RetryConfigs(e.clockNow())
		}
		return res, nil
	}
	// No ECH support: the extension (if any) is ignored, as unrecognised
	// extensions are.
	return e.plainResult(ch), nil
}

// serveInner completes the handshake for a decrypted inner hello, either
// locally (shared mode) or via a configured backend (split mode).
func (e *Endpoint) serveInner(inner []byte, outer *tlssim.ClientHello) (*tlssim.HandshakeResult, error) {
	sni, alpn, err := tlssim.UnmarshalInnerForServer(inner)
	if err != nil {
		// Structurally invalid inner hello: treat as decryption failure.
		res := e.plainResult(outer)
		if !e.DisableRetry {
			res.RetryConfigs = e.ECHKeys.RetryConfigs(e.clockNow())
		}
		return res, nil
	}
	target := e
	if !e.servesName(sni) {
		if b, ok := e.Backends[canonical(sni)]; ok {
			target = b
		}
	}
	proto, err := tlssim.NegotiateALPN(alpn, target.ALPN)
	if err != nil {
		proto = "" // no shared protocol: connection continues protocol-less
	}
	return &tlssim.HandshakeResult{
		CertNames:   target.CertNames,
		ALPN:        proto,
		ECHAccepted: true,
		ServedSNI:   canonical(sni),
	}, nil
}

func (e *Endpoint) servesName(name string) bool {
	name = canonical(name)
	for _, cn := range e.CertNames {
		if canonical(cn) == name {
			return true
		}
	}
	return false
}

// plainResult completes a non-ECH handshake on the outer hello.
func (e *Endpoint) plainResult(ch *tlssim.ClientHello) *tlssim.HandshakeResult {
	proto, err := tlssim.NegotiateALPN(ch.ALPN, e.ALPN)
	if err != nil {
		proto = ""
	}
	return &tlssim.HandshakeResult{
		CertNames: e.CertNames,
		ALPN:      proto,
		ServedSNI: canonical(ch.SNI),
	}
}

// Register attaches the endpoint to the network at addr:port.
func (e *Endpoint) Register(n *simnet.Network, addr netip.Addr, port uint16) {
	n.RegisterService(netip.AddrPortFrom(addr, port), e)
}

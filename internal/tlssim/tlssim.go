// Package tlssim simulates TLS 1.3 handshakes at message granularity over
// the simnet: SNI, ALPN negotiation, certificate-name checking, and the ECH
// outer/inner ClientHello flow with real HPKE-sealed payloads (via the ech
// package), including the server retry-configs mechanism. It is the
// substrate for the §5 client-side browser experiments, standing in for the
// paper's OpenSSL/Nginx ECH-draft-13 testbed.
package tlssim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"strings"

	"repro/internal/ech"
	"repro/internal/simnet"
)

// Handshake errors.
var (
	ErrNoALPN       = errors.New("tlssim: no mutually supported ALPN protocol")
	ErrNotTLSServer = errors.New("tlssim: service at address does not speak TLS")
)

// ClientHello is the logical content of a TLS ClientHello.
type ClientHello struct {
	// SNI is the server name indication (the outer SNI when ECH is
	// offered).
	SNI string
	// ALPN lists offered application protocols in preference order.
	ALPN []string
	// ECH carries the encrypted inner hello, when offered.
	ECH *ECHExtension
}

// ECHExtension is the encrypted_client_hello extension content.
type ECHExtension struct {
	ConfigID uint8
	Enc      []byte
	Payload  []byte
}

// HandshakeResult is what the client learns from the server's response.
type HandshakeResult struct {
	// CertNames are the DNS names the presented certificate covers.
	CertNames []string
	// ALPN is the negotiated protocol ("" if the client offered none).
	ALPN string
	// ECHAccepted: the server decrypted the inner hello and the
	// connection is keyed to it.
	ECHAccepted bool
	// RetryConfigs is set when the server could not decrypt the ECH
	// payload and offers fresh configs (draft-ietf-tls-esni §6.1.6).
	RetryConfigs []byte
	// ServedSNI is the effective SNI the server used (inner on ECH
	// acceptance, outer otherwise).
	ServedSNI string
}

// CertMatches reports whether the presented certificate covers name.
func (r *HandshakeResult) CertMatches(name string) bool {
	name = canonical(name)
	for _, cn := range r.CertNames {
		if canonical(cn) == name {
			return true
		}
	}
	return false
}

func canonical(name string) string {
	return strings.TrimSuffix(strings.ToLower(name), ".")
}

// Server is a TLS endpoint registered on the simnet.
type Server interface {
	HandleTLS(ch *ClientHello) (*HandshakeResult, error)
}

// Dial performs a handshake with the server at ap.
func Dial(net *simnet.Network, ap netip.AddrPort, ch *ClientHello) (*HandshakeResult, error) {
	svc, err := net.Service(ap)
	if err != nil {
		return nil, err
	}
	srv, ok := svc.(Server)
	if !ok {
		return nil, ErrNotTLSServer
	}
	return srv.HandleTLS(ch)
}

// --- inner hello serialization ---

// marshalInner encodes an inner ClientHello (SNI + ALPN) for sealing.
func marshalInner(sni string, alpn []string) []byte {
	var b []byte
	b = binary.BigEndian.AppendUint16(b, uint16(len(sni)))
	b = append(b, sni...)
	b = append(b, byte(len(alpn)))
	for _, p := range alpn {
		b = append(b, byte(len(p)))
		b = append(b, p...)
	}
	return b
}

func unmarshalInner(b []byte) (sni string, alpn []string, err error) {
	if len(b) < 2 {
		return "", nil, fmt.Errorf("tlssim: truncated inner hello")
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < n+1 {
		return "", nil, fmt.Errorf("tlssim: truncated inner SNI")
	}
	sni = string(b[:n])
	b = b[n:]
	count := int(b[0])
	b = b[1:]
	for i := 0; i < count; i++ {
		if len(b) < 1 {
			return "", nil, fmt.Errorf("tlssim: truncated inner ALPN")
		}
		pl := int(b[0])
		b = b[1:]
		if len(b) < pl {
			return "", nil, fmt.Errorf("tlssim: truncated inner ALPN entry")
		}
		alpn = append(alpn, string(b[:pl]))
		b = b[pl:]
	}
	return sni, alpn, nil
}

// UnmarshalInnerForServer decodes a decrypted inner hello on the server
// side, returning the inner SNI and ALPN list.
func UnmarshalInnerForServer(b []byte) (sni string, alpn []string, err error) {
	return unmarshalInner(b)
}

// echAAD binds the ECH payload to the outer hello.
func echAAD(outerSNI string) []byte { return []byte("ech-aad:" + canonical(outerSNI)) }

// BuildECHHello constructs an outer ClientHello toward cfg's client-facing
// server carrying innerSNI encrypted under cfg. rng may be nil.
func BuildECHHello(cfg ech.Config, innerSNI string, alpn []string) (*ClientHello, error) {
	inner := marshalInner(canonical(innerSNI), alpn)
	outerSNI := cfg.PublicName
	enc, payload, err := ech.Seal(nil, cfg, echAAD(outerSNI), inner)
	if err != nil {
		return nil, err
	}
	return &ClientHello{
		SNI:  outerSNI,
		ALPN: alpn,
		ECH:  &ECHExtension{ConfigID: cfg.ConfigID, Enc: enc, Payload: payload},
	}, nil
}

// NegotiateALPN picks the first client protocol the server supports.
func NegotiateALPN(client, server []string) (string, error) {
	if len(client) == 0 {
		return "", nil
	}
	for _, c := range client {
		for _, s := range server {
			if c == s {
				return c, nil
			}
		}
	}
	return "", ErrNoALPN
}

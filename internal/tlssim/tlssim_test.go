package tlssim

import (
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/ech"
	"repro/internal/simnet"
)

func TestInnerHelloRoundTrip(t *testing.T) {
	b := marshalInner("secret.example", []string{"h2", "h3"})
	sni, alpn, err := unmarshalInner(b)
	if err != nil {
		t.Fatal(err)
	}
	if sni != "secret.example" || !reflect.DeepEqual(alpn, []string{"h2", "h3"}) {
		t.Errorf("round trip = %q %v", sni, alpn)
	}
}

func TestInnerHelloTruncation(t *testing.T) {
	b := marshalInner("secret.example", []string{"h2"})
	for i := 0; i < len(b); i++ {
		if _, _, err := unmarshalInner(b[:i]); err == nil && i < len(b) {
			// Prefixes may accidentally parse only if structurally
			// complete; the full buffer must parse.
			_ = err
		}
	}
	if _, _, err := unmarshalInner(nil); err == nil {
		t.Error("empty inner hello parsed")
	}
}

func TestNegotiateALPN(t *testing.T) {
	p, err := NegotiateALPN([]string{"h3", "h2"}, []string{"h2"})
	if err != nil || p != "h2" {
		t.Errorf("NegotiateALPN = %q, %v", p, err)
	}
	if _, err := NegotiateALPN([]string{"h3"}, []string{"h2"}); err != ErrNoALPN {
		t.Errorf("err = %v", err)
	}
	// No client offer: protocol-less connection.
	if p, err := NegotiateALPN(nil, []string{"h2"}); err != nil || p != "" {
		t.Errorf("empty offer = %q, %v", p, err)
	}
}

func TestBuildECHHelloSealsInner(t *testing.T) {
	km, err := ech.NewKeyManager(rand.New(rand.NewSource(1)), "cover.example",
		time.Hour, 2*time.Hour, time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	cfg := km.CurrentConfig(time.Unix(0, 0))
	hello, err := BuildECHHello(cfg, "secret.example", []string{"h2"})
	if err != nil {
		t.Fatal(err)
	}
	if hello.SNI != "cover.example" {
		t.Errorf("outer SNI = %q", hello.SNI)
	}
	if hello.ECH == nil || len(hello.ECH.Payload) == 0 {
		t.Fatal("no ECH payload")
	}
	// The server can open it.
	inner, err := km.Open(time.Unix(0, 0), hello.ECH.ConfigID, hello.ECH.Enc,
		echAAD(hello.SNI), hello.ECH.Payload)
	if err != nil {
		t.Fatal(err)
	}
	sni, alpn, err := unmarshalInner(inner)
	if err != nil || sni != "secret.example" || alpn[0] != "h2" {
		t.Errorf("inner = %q %v %v", sni, alpn, err)
	}
}

func TestCertMatches(t *testing.T) {
	r := &HandshakeResult{CertNames: []string{"a.com", "www.a.com"}}
	if !r.CertMatches("A.COM.") || !r.CertMatches("www.a.com") {
		t.Error("CertMatches false negative")
	}
	if r.CertMatches("b.com") {
		t.Error("CertMatches false positive")
	}
}

type fakeServer struct{ result *HandshakeResult }

func (f *fakeServer) HandleTLS(ch *ClientHello) (*HandshakeResult, error) {
	return f.result, nil
}

func TestDial(t *testing.T) {
	n := simnet.New(simnet.NewClock(time.Unix(0, 0)))
	ap := netip.MustParseAddrPort("10.0.0.1:443")
	want := &HandshakeResult{CertNames: []string{"x.com"}}
	n.RegisterService(ap, &fakeServer{result: want})
	got, err := Dial(n, ap, &ClientHello{SNI: "x.com"})
	if err != nil || got != want {
		t.Fatalf("Dial = %v, %v", got, err)
	}
	// Non-TLS service.
	ap2 := netip.MustParseAddrPort("10.0.0.1:80")
	n.RegisterService(ap2, "not a tls server")
	if _, err := Dial(n, ap2, &ClientHello{}); err != ErrNotTLSServer {
		t.Errorf("err = %v", err)
	}
	// Unreachable.
	if _, err := Dial(n, netip.MustParseAddrPort("10.0.0.9:443"), &ClientHello{}); err == nil {
		t.Error("dial to nowhere succeeded")
	}
}

// Property: inner hello marshalling round-trips arbitrary SNI/ALPN.
func TestQuickInnerRoundTrip(t *testing.T) {
	f := func(sniBytes []byte, protoCount uint8) bool {
		if len(sniBytes) > 200 {
			sniBytes = sniBytes[:200]
		}
		sni := string(sniBytes)
		var alpn []string
		for i := 0; i < int(protoCount%5); i++ {
			alpn = append(alpn, "proto")
		}
		gotSNI, gotALPN, err := unmarshalInner(marshalInner(sni, alpn))
		if err != nil {
			return false
		}
		if gotSNI != sni || len(gotALPN) != len(alpn) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

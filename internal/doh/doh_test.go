package doh

import (
	"testing"

	"repro/internal/dnswire"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	q := dnswire.NewQuery(42, "example.com", dnswire.TypeHTTPS, true)
	for _, usePost := range []bool{false, true} {
		var req *Request
		var err error
		if usePost {
			req, err = NewPOSTRequest(q)
		} else {
			req, err = NewGETRequest(q)
		}
		if err != nil {
			t.Fatalf("post=%v: building request: %v", usePost, err)
		}
		got, status, err := DecodeRequest(req)
		if err != nil {
			t.Fatalf("post=%v: decoding: %v (status %d)", usePost, err, status)
		}
		if got.ID != 42 || len(got.Question) != 1 || got.Question[0].Name != "example.com." ||
			got.Question[0].Type != dnswire.TypeHTTPS {
			t.Errorf("post=%v: roundtrip mangled query: %+v", usePost, got)
		}
		if !got.DNSSECOK() {
			t.Errorf("post=%v: DO bit lost in transit", usePost)
		}
	}
}

func TestEnvelopeRejections(t *testing.T) {
	cases := []struct {
		name   string
		req    *Request
		status int
	}{
		{"wrong path", &Request{Method: "GET", Path: "/", DNSParam: "AAAA"}, StatusNotFound},
		{"missing param", &Request{Method: "GET", Path: Path}, StatusBadRequest},
		{"bad base64", &Request{Method: "GET", Path: Path, DNSParam: "!!!"}, StatusBadRequest},
		{"bad media type", &Request{Method: "POST", Path: Path, ContentType: "text/plain"}, StatusUnsupportedMediaType},
		{"bad method", &Request{Method: "PUT", Path: Path}, StatusMethodNotAllowed},
		{"truncated body", &Request{Method: "POST", Path: Path,
			ContentType: dnswire.MediaTypeDNSMessage, Body: []byte{1, 2}}, StatusBadRequest},
	}
	for _, tc := range cases {
		if _, status, err := DecodeRequest(tc.req); err == nil || status != tc.status {
			t.Errorf("%s: got status %d err %v, want status %d with error", tc.name, status, err, tc.status)
		}
	}
}

package doh

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dnswire"
	"repro/internal/simnet"
)

// Client is a DoH stub: it encodes queries into RFC 8484-style envelopes
// and exchanges them with pool members over simnet, failing over to the
// next candidate when simnet failure injection marks a frontend down or
// the frontend returns a non-success status. It satisfies the scanner's
// Transport interface, so the measurement framework can run its campaigns
// through an encrypted-DNS fleet instead of bare stub queries.
type Client struct {
	Net  *simnet.Network
	Pool *Pool
	// UsePOST selects POST envelopes; the default is RFC 8484 GET, whose
	// base64url form is the cache-friendly one.
	UsePOST bool
	// Latency, when non-nil, supplies the per-exchange RTT sample fed to
	// the pool instead of a wall-clock measurement. Exchanges are
	// synchronous in-process calls, so wall time is host scheduling
	// noise; a deterministic Latency function makes the EWMA/P2 routing
	// decisions replayable along with the rest of the simulation.
	//
	// Each sampled exchange is also charged to the network's virtual
	// clock, so queueing delay through the encrypted serving layer is
	// observable in campaign timings (cache expiry, cooldown windows),
	// not merely an input to EWMA/P2 routing.
	Latency func(u *Upstream) time.Duration

	mu  sync.Mutex
	qid uint16

	staleAnswers atomic.Uint64
}

// StaleAnswers counts exchanges answered with an RFC 8767 stale response
// (a frontend served past-TTL data because its recursor was unavailable) —
// the stub-side measure of the staleness windows §4.4.2 quantifies.
func (c *Client) StaleAnswers() uint64 { return c.staleAnswers.Load() }

// NewClient creates a stub over the given network and pool.
func NewClient(net *simnet.Network, pool *Pool) *Client {
	return &Client{Net: net, Pool: pool}
}

// nextID allocates a query ID (DoH recommends ID 0 for cacheability; the
// simulated stack keeps real IDs to exercise the ID-rewrite path).
func (c *Client) nextID() uint16 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.qid++
	return c.qid
}

// Exchange sends the query to the pool, trying candidates in failover
// order. RTT is measured per attempt and folded into the pool's EWMA.
func (c *Client) Exchange(q *dnswire.Message) (*dnswire.Message, error) {
	if len(q.Question) == 0 {
		return nil, fmt.Errorf("%w: query without question", ErrBadEnvelope)
	}
	req, err := c.encode(q)
	if err != nil {
		return nil, err
	}
	candidates := c.Pool.Candidates(dnswire.CanonicalName(q.Question[0].Name))
	if len(candidates) == 0 {
		return nil, ErrNoUpstreams
	}
	var lastErr error
	var servFail *dnswire.Message
	for _, up := range candidates {
		svc, err := c.Net.Service(up.Addr)
		if err != nil {
			// Failure injection: the address or port is down.
			c.Pool.MarkFailed(up)
			lastErr = err
			continue
		}
		ex, ok := svc.(Exchanger)
		if !ok {
			c.Pool.MarkFailed(up)
			lastErr = fmt.Errorf("%w: %v", ErrNotDoH, up.Addr)
			continue
		}
		start := time.Now()
		resp := ex.ExchangeDoH(req)
		if c.Latency != nil {
			d := c.Latency(up)
			c.Pool.ObserveRTT(up, d)
			c.Net.Clock.Advance(d)
		} else {
			c.Pool.ObserveRTT(up, time.Since(start))
		}
		m, err := resp.Message()
		if err != nil {
			// A 502 is the frontend reporting recursor trouble over a
			// healthy transport — move on without benching, like the
			// SERVFAIL case below. Anything else (4xx, bad media type)
			// is a protocol mismatch worth a cooldown.
			if resp.Status != StatusServFailUpstream {
				c.Pool.MarkFailed(up)
			}
			lastErr = fmt.Errorf("upstream %s: %w", up.Name, err)
			continue
		}
		// A SERVFAIL is a healthy transport over a struggling recursor:
		// try the next pool member (the paper's Google→Cloudflare
		// fallback), without benching this one. Returned as-is only if
		// every member agrees.
		if m.RCode == dnswire.RCodeServFail {
			servFail = m
			continue
		}
		if resp.Stale {
			c.staleAnswers.Add(1)
		}
		return m, nil
	}
	if servFail != nil {
		return servFail, nil
	}
	return nil, fmt.Errorf("doh: all %d upstreams failed: %w", len(candidates), lastErr)
}

// Query builds and exchanges a recursion-desired query for (name, type).
func (c *Client) Query(name string, t dnswire.Type, dnssecOK bool) (*dnswire.Message, error) {
	return c.Exchange(dnswire.NewQuery(c.nextID(), name, t, dnssecOK))
}

func (c *Client) encode(q *dnswire.Message) (*Request, error) {
	if c.UsePOST {
		return NewPOSTRequest(q)
	}
	return NewGETRequest(q)
}

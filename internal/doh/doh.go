package doh

import (
	"errors"
	"fmt"

	"repro/internal/dnswire"
)

// Path is the conventional DoH endpoint path.
const Path = "/dns-query"

// HTTP-ish status codes used by the envelope layer.
const (
	StatusOK                   = 200
	StatusBadRequest           = 400
	StatusNotFound             = 404
	StatusMethodNotAllowed     = 405
	StatusUnsupportedMediaType = 415
	StatusServFailUpstream     = 502
)

// Errors returned by envelope handling.
var (
	ErrBadEnvelope = errors.New("doh: malformed envelope")
	ErrStatus      = errors.New("doh: non-success status")
)

// Request is an RFC 8484-style DoH request envelope.
type Request struct {
	// Method is "GET" or "POST".
	Method string
	// Path is the endpoint path, normally Path.
	Path string
	// DNSParam carries the base64url-encoded query for GET requests.
	DNSParam string
	// ContentType and Body carry the wire-format query for POST requests.
	ContentType string
	Body        []byte
}

// Response is a DoH response envelope.
type Response struct {
	Status      int
	ContentType string
	Body        []byte
	// MaxAge is the Cache-Control max-age the frontend derived from the
	// answer's minimum TTL (RFC 8484 §5.1).
	MaxAge uint32
	// Stale marks an RFC 8767 serve-stale answer: the frontend's upstream
	// could not produce a fresh one, so a past-TTL cache entry was served
	// with capped TTLs (the envelope analogue of an HTTP "Warning: 110"
	// header).
	Stale bool
}

// NewGETRequest builds a GET envelope for the query.
func NewGETRequest(m *dnswire.Message) (*Request, error) {
	param, err := dnswire.EncodeDoHParam(m)
	if err != nil {
		return nil, err
	}
	return &Request{Method: "GET", Path: Path, DNSParam: param}, nil
}

// NewPOSTRequest builds a POST envelope for the query.
func NewPOSTRequest(m *dnswire.Message) (*Request, error) {
	wire, err := m.Pack()
	if err != nil {
		return nil, err
	}
	return &Request{
		Method: "POST", Path: Path,
		ContentType: dnswire.MediaTypeDNSMessage, Body: wire,
	}, nil
}

// DecodeRequest extracts the DNS query from an envelope, reporting an
// HTTP-style status on failure.
func DecodeRequest(req *Request) (*dnswire.Message, int, error) {
	m := new(dnswire.Message)
	_, status, err := DecodeRequestInto(m, req, nil)
	if err != nil {
		return nil, status, err
	}
	return m, status, nil
}

// DecodeRequestInto is the reuse-API form of DecodeRequest: the query
// decodes into m with dnswire.UnpackInto semantics, and GET parameter
// decoding works inside scratch, which comes back (possibly grown) for
// the caller to recycle.
func DecodeRequestInto(m *dnswire.Message, req *Request, scratch []byte) ([]byte, int, error) {
	if req.Path != Path {
		return scratch, StatusNotFound, fmt.Errorf("%w: path %q", ErrBadEnvelope, req.Path)
	}
	switch req.Method {
	case "GET":
		if req.DNSParam == "" {
			return scratch, StatusBadRequest, fmt.Errorf("%w: missing dns parameter", ErrBadEnvelope)
		}
		scratch, err := dnswire.DecodeDoHParamInto(m, req.DNSParam, scratch)
		if err != nil {
			return scratch, StatusBadRequest, err
		}
		return scratch, StatusOK, nil
	case "POST":
		if req.ContentType != dnswire.MediaTypeDNSMessage {
			return scratch, StatusUnsupportedMediaType,
				fmt.Errorf("%w: content type %q", ErrBadEnvelope, req.ContentType)
		}
		if err := dnswire.UnpackInto(m, req.Body); err != nil {
			return scratch, StatusBadRequest, err
		}
		return scratch, StatusOK, nil
	default:
		return scratch, StatusMethodNotAllowed, fmt.Errorf("%w: method %q", ErrBadEnvelope, req.Method)
	}
}

// Message unpacks the response body into a DNS message.
func (r *Response) Message() (*dnswire.Message, error) {
	m := new(dnswire.Message)
	if err := r.DecodeInto(m); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeInto is the reuse-API form of Message: the response body decodes
// into m with dnswire.UnpackInto semantics.
func (r *Response) DecodeInto(m *dnswire.Message) error {
	if r.Status != StatusOK {
		return fmt.Errorf("%w: %d", ErrStatus, r.Status)
	}
	if r.ContentType != dnswire.MediaTypeDNSMessage {
		return fmt.Errorf("%w: content type %q", ErrBadEnvelope, r.ContentType)
	}
	return dnswire.UnpackInto(m, r.Body)
}

// Exchanger is the service interface a DoH frontend registers in simnet;
// the transport client type-asserts it after the addr:port service
// lookup. transport.DoHServer is the canonical implementation.
type Exchanger interface {
	ExchangeDoH(req *Request) *Response
}

package doh

import (
	"encoding/binary"
	"errors"
	"hash/fnv"
	"strconv"
	"sync"
	"time"

	"repro/internal/dnswire"
	"repro/internal/simnet"
)

// Cache is a sharded TTL+LRU answer cache keyed by (qname, qtype, DO bit).
// Shard selection is fnv-based, each shard is independently bounded and
// LRU-evicted, and expiry runs on the virtual clock, so a fleet of DoH
// frontends sharing one Cache behaves like an anycast pod with a common
// answer store: whichever frontend a stub lands on, a fresh answer from a
// sibling is served without touching the recursor.
type Cache struct {
	clock  *simnet.Clock
	shards []*cacheShard
}

// Default cache geometry.
const (
	DefaultShards        = 16
	DefaultShardCapacity = 1024
)

// negativeTTL bounds how long answers without records are retained when
// the authority section carries no SOA to derive a TTL from.
const negativeTTL = 30 * time.Second

type cacheShard struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	// head is most recently used, tail least; entries form a doubly
	// linked list so Get/Put/evict are all O(1).
	head, tail *cacheEntry
	capacity   int

	hits, misses, evictions, expirations uint64
}

// cacheEntry holds the response as a packed wire image plus the byte
// offsets of every RR TTL field, precomputed at store time. A hit is then
// one copy, an ID patch, and in-place TTL rewrites — no message encode on
// the hot path.
type cacheEntry struct {
	key        string
	wire       []byte
	ttlOffs    []int
	ttls       []uint32 // original TTLs, parallel to ttlOffs
	minTTL     uint32   // minimum answer TTL at store time (RFC 8484 max-age)
	storedAt   time.Time
	expires    time.Time
	prev, next *cacheEntry
}

// CacheStats aggregates counters across shards.
type CacheStats struct {
	Entries     int
	Hits        uint64
	Misses      uint64
	Evictions   uint64
	Expirations uint64
}

// HitRate returns hits/(hits+misses), or 0 before any lookups.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// NewCache creates a cache with the given shard count and per-shard entry
// bound; zero values select the defaults.
func NewCache(clock *simnet.Clock, shards, shardCapacity int) *Cache {
	if shards <= 0 {
		shards = DefaultShards
	}
	if shardCapacity <= 0 {
		shardCapacity = DefaultShardCapacity
	}
	c := &Cache{clock: clock, shards: make([]*cacheShard, shards)}
	for i := range c.shards {
		c.shards[i] = &cacheShard{entries: map[string]*cacheEntry{}, capacity: shardCapacity}
	}
	return c
}

// CacheKey builds the lookup key for a question. The DO bit participates
// because responses differ (RRSIGs present or not).
func CacheKey(q dnswire.Question, dnssecOK bool) string {
	key := dnswire.CanonicalName(q.Name) + "|" + strconv.Itoa(int(q.Type))
	if dnssecOK {
		key += "|do"
	}
	return key
}

func (c *Cache) shardFor(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return c.shards[int(h.Sum32())%len(c.shards)]
}

// GetWire returns the cached response as a fresh wire image with the
// given query ID patched in and every TTL aged by the virtual time
// elapsed since storing, plus the remaining max-age. Misses and expired
// entries return ok=false.
func (c *Cache) GetWire(key string, id uint16) (body []byte, maxAge uint32, ok bool) {
	now := c.clock.Now()
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, found := s.entries[key]
	if !found {
		s.misses++
		return nil, 0, false
	}
	if !e.expires.After(now) {
		s.remove(e)
		delete(s.entries, key)
		s.expirations++
		s.misses++
		return nil, 0, false
	}
	s.moveToFront(e)
	s.hits++
	elapsed := uint32(now.Sub(e.storedAt) / time.Second)
	out := make([]byte, len(e.wire))
	copy(out, e.wire)
	binary.BigEndian.PutUint16(out, id)
	for i, off := range e.ttlOffs {
		ttl := e.ttls[i]
		if ttl > elapsed {
			ttl -= elapsed
		} else {
			ttl = 0
		}
		binary.BigEndian.PutUint32(out[off:], ttl)
	}
	if e.minTTL > elapsed {
		maxAge = e.minTTL - elapsed
	}
	return out, maxAge, true
}

// Get returns a copy of the cached response with TTLs aged by the virtual
// time elapsed since it was stored, or nil on miss/expiry. It is the
// message-level convenience over GetWire (the hot path frontends use).
func (c *Cache) Get(key string) *dnswire.Message {
	wire, _, ok := c.GetWire(key, 0)
	if !ok {
		return nil
	}
	m, err := dnswire.Unpack(wire)
	if err != nil {
		return nil
	}
	return m
}

// Put stores a response. Uncacheable responses (SERVFAIL and friends) are
// ignored; the retention window is the answer's minimum TTL, or the
// negative-TTL bound for empty answers.
func (c *Cache) Put(key string, m *dnswire.Message) {
	ttl, ok := cacheTTL(m)
	if !ok || ttl <= 0 {
		return
	}
	wire, err := m.Pack()
	if err != nil {
		return
	}
	offs, ttls, err := ttlOffsets(wire)
	if err != nil {
		return
	}
	minTTL, _ := minAnswerTTL(m)
	now := c.clock.Now()
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[key]; ok {
		e.wire, e.ttlOffs, e.ttls, e.minTTL = wire, offs, ttls, minTTL
		e.storedAt, e.expires = now, now.Add(ttl)
		s.moveToFront(e)
		return
	}
	e := &cacheEntry{key: key, wire: wire, ttlOffs: offs, ttls: ttls,
		minTTL: minTTL, storedAt: now, expires: now.Add(ttl)}
	s.entries[key] = e
	s.pushFront(e)
	if len(s.entries) > s.capacity {
		victim := s.tail
		s.remove(victim)
		delete(s.entries, victim.key)
		s.evictions++
	}
}

// ttlOffsets walks a packed message once and records the byte offset and
// original value of every resource record's TTL field, excluding the OPT
// pseudo-record (its TTL field holds EDNS flags, not a TTL).
func ttlOffsets(wire []byte) (offs []int, ttls []uint32, err error) {
	if len(wire) < 12 {
		return nil, nil, dnswire.ErrShortMessage
	}
	qd := int(binary.BigEndian.Uint16(wire[4:]))
	rrs := int(binary.BigEndian.Uint16(wire[6:])) +
		int(binary.BigEndian.Uint16(wire[8:])) +
		int(binary.BigEndian.Uint16(wire[10:]))
	pos := 12
	for i := 0; i < qd; i++ {
		if pos, err = skipName(wire, pos); err != nil {
			return nil, nil, err
		}
		pos += 4 // qtype + qclass
	}
	for i := 0; i < rrs; i++ {
		if pos, err = skipName(wire, pos); err != nil {
			return nil, nil, err
		}
		if pos+10 > len(wire) {
			return nil, nil, errTruncatedRR
		}
		typ := dnswire.Type(binary.BigEndian.Uint16(wire[pos:]))
		if typ != dnswire.TypeOPT {
			offs = append(offs, pos+4)
			ttls = append(ttls, binary.BigEndian.Uint32(wire[pos+4:]))
		}
		rdlen := int(binary.BigEndian.Uint16(wire[pos+8:]))
		pos += 10 + rdlen
		if pos > len(wire) {
			return nil, nil, errTruncatedRR
		}
	}
	return offs, ttls, nil
}

var errTruncatedRR = errors.New("doh: truncated record in wire image")

// skipName advances past a (possibly compressed) domain name.
func skipName(wire []byte, pos int) (int, error) {
	for {
		if pos >= len(wire) {
			return 0, errTruncatedRR
		}
		b := wire[pos]
		switch {
		case b == 0:
			return pos + 1, nil
		case b&0xc0 == 0xc0: // compression pointer ends the name
			return pos + 2, nil
		default:
			pos += 1 + int(b)
		}
	}
}

// Len returns the number of resident entries (including not-yet-swept
// expired ones).
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Flush drops every entry.
func (c *Cache) Flush() {
	for _, s := range c.shards {
		s.mu.Lock()
		s.entries = map[string]*cacheEntry{}
		s.head, s.tail = nil, nil
		s.mu.Unlock()
	}
}

// Stats aggregates hit/miss/eviction counters across shards.
func (c *Cache) Stats() CacheStats {
	var out CacheStats
	for _, s := range c.shards {
		s.mu.Lock()
		out.Entries += len(s.entries)
		out.Hits += s.hits
		out.Misses += s.misses
		out.Evictions += s.evictions
		out.Expirations += s.expirations
		s.mu.Unlock()
	}
	return out
}

func (s *cacheShard) pushFront(e *cacheEntry) {
	e.prev, e.next = nil, s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *cacheShard) remove(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *cacheShard) moveToFront(e *cacheEntry) {
	if s.head == e {
		return
	}
	s.remove(e)
	s.pushFront(e)
}

// minAnswerTTL returns the smallest TTL among answer records, excluding
// the OPT pseudo-record (whose TTL field holds EDNS flags).
func minAnswerTTL(m *dnswire.Message) (uint32, bool) {
	ttl, have := uint32(0), false
	for _, rr := range m.Answer {
		if rr.Type == dnswire.TypeOPT {
			continue
		}
		if !have || rr.TTL < ttl {
			ttl, have = rr.TTL, true
		}
	}
	return ttl, have
}

// cacheTTL derives the retention window: the minimum answer TTL, the SOA
// minimum for negative answers, or nothing for uncacheable RCodes.
func cacheTTL(m *dnswire.Message) (time.Duration, bool) {
	if m.RCode != dnswire.RCodeNoError && m.RCode != dnswire.RCodeNXDomain {
		return 0, false
	}
	if ttl, have := minAnswerTTL(m); have {
		return time.Duration(ttl) * time.Second, true
	}
	for _, rr := range m.Authority {
		if soa, ok := rr.Data.(*dnswire.SOAData); ok {
			min := soa.Minimum
			if rr.TTL < min {
				min = rr.TTL
			}
			return time.Duration(min) * time.Second, true
		}
	}
	return negativeTTL, true
}

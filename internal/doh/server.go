package doh

import (
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dnswire"
	"repro/internal/simnet"
)

// Server is one DoH frontend: it terminates RFC 8484-style envelopes at a
// simnet addr:port, consults the (optionally shared) answer cache, and
// forwards misses to the wrapped DNS handler — normally a caching
// recursive resolver, mirroring how public DoH endpoints sit in front of
// the same recursive fleet the paper queried over UDP.
//
// With a lifecycle-configured Cache the frontend implements the RFC 8767
// serve-stale flow: a fresh hit is served directly (arming a refresh-ahead
// prefetch when the entry nears expiry); on a miss or stale probe the
// handler is consulted, and if it hard-fails (nil) or SERVFAILs while a
// stale body is available, the stale answer is served instead of an error.
// A hard handler failure also arms FailureCooldown, during which stale
// answers are served without re-trying the handler at all — the fleet
// stops hammering a dead recursor, exactly the behavior behind the
// paper's §4.3.5/§4.4.2 staleness windows.
type Server struct {
	// Name labels the frontend in stats output.
	Name string
	// Handler answers cache misses (a resolver.Resolver in practice).
	Handler simnet.DNSHandler
	// Cache, when non-nil, is consulted before the handler; share one
	// Cache value across Servers to model an anycast fleet. Expiry runs
	// on the Cache's own virtual clock.
	Cache *Cache
	// FailureCooldown benches the handler after a hard failure (nil
	// response): while it runs, stale-capable queries are answered from
	// the cache without consulting the handler. Queries with nothing
	// stale to serve still try the handler (there is no better option),
	// and a success clears the cooldown early. Zero disables benching.
	// Requires Cache (the cooldown runs on its virtual clock).
	FailureCooldown time.Duration

	mu            sync.Mutex
	cooldownUntil time.Time

	served       atomic.Uint64
	cacheHits    atomic.Uint64
	staleServed  atomic.Uint64
	negativeHits atomic.Uint64
	prefetches   atomic.Uint64
	upstreamFail atomic.Uint64
}

// ServerStats reports one frontend's traffic and cache-lifecycle counters.
type ServerStats struct {
	Name      string
	Served    uint64
	CacheHits uint64
	// StaleServed counts RFC 8767 stale answers served because the
	// handler failed or was in cooldown.
	StaleServed uint64
	// NegativeHits counts fresh cache hits on RFC 2308 negative entries.
	NegativeHits uint64
	// Prefetches counts refresh-ahead upstream refreshes performed.
	Prefetches uint64
	// UpstreamFailures counts hard handler failures and SERVFAILs that
	// triggered (or would have triggered) stale serving.
	UpstreamFailures uint64
}

// Stats returns the frontend's counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Name:             s.Name,
		Served:           s.served.Load(),
		CacheHits:        s.cacheHits.Load(),
		StaleServed:      s.staleServed.Load(),
		NegativeHits:     s.negativeHits.Load(),
		Prefetches:       s.prefetches.Load(),
		UpstreamFailures: s.upstreamFail.Load(),
	}
}

// Register attaches the frontend to the network at ap.
func (s *Server) Register(n *simnet.Network, ap netip.AddrPort) {
	n.RegisterService(ap, s)
}

// inCooldown reports whether the handler is benched after a hard failure.
func (s *Server) inCooldown() bool {
	if s.FailureCooldown <= 0 || s.Cache == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cooldownUntil.After(s.Cache.clock.Now())
}

// noteHandlerFailure arms the failure cooldown.
func (s *Server) noteHandlerFailure() {
	s.upstreamFail.Add(1)
	if s.FailureCooldown <= 0 || s.Cache == nil {
		return
	}
	s.mu.Lock()
	s.cooldownUntil = s.Cache.clock.Now().Add(s.FailureCooldown)
	s.mu.Unlock()
}

// noteHandlerSuccess clears any cooldown: a demonstrably-answering
// handler is healthy.
func (s *Server) noteHandlerSuccess() {
	if s.FailureCooldown <= 0 {
		return
	}
	s.mu.Lock()
	s.cooldownUntil = time.Time{}
	s.mu.Unlock()
}

// ExchangeDoH implements Exchanger: decode the envelope, walk the cache
// lifecycle (fresh → prefetch → stale → upstream), and re-encode.
func (s *Server) ExchangeDoH(req *Request) *Response {
	q, status, err := DecodeRequest(req)
	if err != nil {
		return &Response{Status: status}
	}
	s.served.Add(1)

	if len(q.Question) != 1 {
		resp := q.Reply()
		resp.RCode = dnswire.RCodeFormErr
		return encodeResponse(resp)
	}
	question := q.Question[0]
	dnssecOK := q.DNSSECOK()
	key := CacheKey(question, dnssecOK)

	stale := false
	if s.Cache != nil {
		// Wire fast path: a hit is one copy + ID/TTL patches, no encode.
		probe := s.Cache.Probe(key, q.ID)
		switch probe.State {
		case StateFresh:
			s.cacheHits.Add(1)
			if probe.Negative {
				s.negativeHits.Add(1)
			}
			// A benched handler is not probed even for prefetch — the
			// refresh opportunity for this entry generation is forfeited
			// and serve-stale covers the eventual expiry instead.
			if probe.NeedsRefresh && !s.inCooldown() {
				s.prefetch(key, q)
			}
			return &Response{
				Status:      StatusOK,
				ContentType: dnswire.MediaTypeDNSMessage,
				Body:        probe.Body,
				MaxAge:      probe.MaxAge,
			}
		case StateStale:
			stale = true
			if s.inCooldown() {
				// The handler is benched; ride the stale answer out
				// rather than hammering a dead recursor.
				if resp := s.serveStale(key, q.ID); resp != nil {
					return resp
				}
			}
		}
	}

	resp := s.Handler.HandleDNS(q)
	if resp == nil {
		s.noteHandlerFailure()
		if stale {
			if out := s.serveStale(key, q.ID); out != nil {
				return out
			}
		}
		return &Response{Status: StatusServFailUpstream}
	}
	if resp.RCode == dnswire.RCodeServFail {
		// A struggling recursor over a healthy transport: RFC 8767
		// prefers a stale answer over a fresh SERVFAIL. Either way a
		// SERVFAIL is not evidence of health, so any armed cooldown
		// stays armed (it neither clears nor extends).
		if stale {
			if out := s.serveStale(key, q.ID); out != nil {
				s.upstreamFail.Add(1)
				return out
			}
		}
		return encodeResponse(resp)
	}
	s.noteHandlerSuccess()
	if s.Cache != nil {
		s.Cache.Put(key, resp)
	}
	return encodeResponse(resp)
}

// serveStale materializes and emits the stale body, marked so stubs can
// count it; nil when the entry vanished since the probe (LRU pressure).
func (s *Server) serveStale(key string, id uint16) *Response {
	body, maxAge, ok := s.Cache.StaleWire(key, id)
	if !ok {
		return nil
	}
	s.staleServed.Add(1)
	return &Response{
		Status:      StatusOK,
		ContentType: dnswire.MediaTypeDNSMessage,
		Body:        body,
		MaxAge:      maxAge,
		Stale:       true,
	}
}

// prefetch refreshes an entry nearing expiry: the hit that armed it was
// already served from cache, so the refresh rides the same exchange
// (synchronous on the virtual clock — deterministic, no goroutine races)
// and renews the entry before it ever goes stale.
func (s *Server) prefetch(key string, q *dnswire.Message) {
	resp := s.Handler.HandleDNS(q)
	if resp == nil {
		s.noteHandlerFailure()
		return
	}
	if resp.RCode == dnswire.RCodeServFail {
		return
	}
	s.noteHandlerSuccess()
	s.prefetches.Add(1)
	s.Cache.Put(key, resp)
}

// encodeResponse packs a DNS message into a 200 envelope with max-age
// derived from the answer's minimum TTL (RFC 8484 §5.1); packing failures
// surface as a 502 so the stub fails over rather than mis-parsing.
func encodeResponse(m *dnswire.Message) *Response {
	wire, err := m.Pack()
	if err != nil {
		return &Response{Status: StatusServFailUpstream}
	}
	maxAge, _ := minAnswerTTL(m)
	return &Response{
		Status:      StatusOK,
		ContentType: dnswire.MediaTypeDNSMessage,
		Body:        wire,
		MaxAge:      maxAge,
	}
}

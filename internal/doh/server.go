package doh

import (
	"net/netip"
	"sync/atomic"

	"repro/internal/dnswire"
	"repro/internal/simnet"
)

// Server is one DoH frontend: it terminates RFC 8484-style envelopes at a
// simnet addr:port, consults the (optionally shared) answer cache, and
// forwards misses to the wrapped DNS handler — normally a caching
// recursive resolver, mirroring how public DoH endpoints sit in front of
// the same recursive fleet the paper queried over UDP.
type Server struct {
	// Name labels the frontend in stats output.
	Name string
	// Handler answers cache misses (a resolver.Resolver in practice).
	Handler simnet.DNSHandler
	// Cache, when non-nil, is consulted before the handler; share one
	// Cache value across Servers to model an anycast fleet. Expiry runs
	// on the Cache's own virtual clock.
	Cache *Cache

	served    atomic.Uint64
	cacheHits atomic.Uint64
}

// ServerStats reports one frontend's traffic counters.
type ServerStats struct {
	Name      string
	Served    uint64
	CacheHits uint64
}

// Stats returns the frontend's counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{Name: s.Name, Served: s.served.Load(), CacheHits: s.cacheHits.Load()}
}

// Register attaches the frontend to the network at ap.
func (s *Server) Register(n *simnet.Network, ap netip.AddrPort) {
	n.RegisterService(ap, s)
}

// ExchangeDoH implements Exchanger: decode the envelope, serve from cache
// or the wrapped handler, and re-encode.
func (s *Server) ExchangeDoH(req *Request) *Response {
	q, status, err := DecodeRequest(req)
	if err != nil {
		return &Response{Status: status}
	}
	s.served.Add(1)

	if len(q.Question) != 1 {
		resp := q.Reply()
		resp.RCode = dnswire.RCodeFormErr
		return encodeResponse(resp)
	}
	question := q.Question[0]
	dnssecOK := q.DNSSECOK()
	key := CacheKey(question, dnssecOK)

	if s.Cache != nil {
		// Wire fast path: a hit is one copy + ID/TTL patches, no encode.
		if body, maxAge, ok := s.Cache.GetWire(key, q.ID); ok {
			s.cacheHits.Add(1)
			return &Response{
				Status:      StatusOK,
				ContentType: dnswire.MediaTypeDNSMessage,
				Body:        body,
				MaxAge:      maxAge,
			}
		}
	}

	resp := s.Handler.HandleDNS(q)
	if resp == nil {
		return &Response{Status: StatusServFailUpstream}
	}
	if s.Cache != nil {
		s.Cache.Put(key, resp)
	}
	return encodeResponse(resp)
}

// encodeResponse packs a DNS message into a 200 envelope with max-age
// derived from the answer's minimum TTL (RFC 8484 §5.1); packing failures
// surface as a 502 so the stub fails over rather than mis-parsing.
func encodeResponse(m *dnswire.Message) *Response {
	wire, err := m.Pack()
	if err != nil {
		return &Response{Status: StatusServFailUpstream}
	}
	maxAge, _ := minAnswerTTL(m)
	return &Response{
		Status:      StatusOK,
		ContentType: dnswire.MediaTypeDNSMessage,
		Body:        wire,
		MaxAge:      maxAge,
	}
}

// Package doh is the RFC 8484 DNS-over-HTTPS envelope codec: the wire
// shape of one encrypted-DNS protocol, without an HTTP stack and without
// any serving machinery. GET requests carry the query as an unpadded
// base64url "dns" parameter, POST requests carry raw wire format, and
// responses report an HTTP-style status, media type, a Cache-Control
// max-age derived from the answer's minimum TTL, and the RFC 8767
// serve-stale marker.
//
// The serving layer that used to live here — frontends, the load-balanced
// upstream pool, the sharded serve-stale answer cache — was hoisted into
// package transport, where DoH is one of three envelopes (with DoT and
// DoQ) over a shared protocol-independent fleet. This package keeps only
// what is DoH-specific: the Request/Response envelope types, their
// encode/decode helpers, and the Exchanger interface a DoH frontend
// registers in simnet (transport.DoHServer implements it).
package doh

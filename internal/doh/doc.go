// Package doh implements the encrypted-DNS serving layer between stub and
// recursor that the paper's measurements traverse in the real Internet:
// Google (8.8.8.8) and Cloudflare (1.1.1.1) expose their recursive fleets
// behind anycast DoH frontends, and every §4.3.5/§4.4.2 staleness and
// failover effect the paper reports happens inside that layer.
//
// The package provides three pieces:
//
//   - Server: an RFC 8484-style DoH frontend registered as a simnet
//     service at addr:port, wrapping any simnet.DNSHandler (normally a
//     caching recursive resolver) and answering wire-format envelopes.
//   - Client: a DoH stub with an upstream Pool supporting pluggable
//     load-balancing strategies (power-of-two-choices, EWMA-RTT,
//     round-robin, hash-affinity) and automatic failover when simnet
//     failure injection marks an upstream down.
//   - Cache: a sharded TTL+LRU answer cache shared across frontends, so
//     several Servers in front of one recursor behave like a real anycast
//     fleet with a common answer store.
//
// Envelopes follow RFC 8484 shape without a real HTTP stack: GET carries
// the query as an unpadded base64url "dns" parameter, POST carries raw
// wire format, and responses report status, media type, and a Cache-Control
// max-age derived from the answer's minimum TTL.
//
// # Cache lifecycle
//
// Every cache entry — positive or negative — walks one state machine,
// evaluated lazily on the virtual clock at probe time:
//
//	          Put                      TTL expires              TTL + StaleWindow
//	(answer) ─────▶ FRESH ────────────────▶ STALE ────────────────────▶ evicted
//	                  │                       │                     (or LRU victim
//	                  │ RefreshAhead·TTL      │ upstream fails           any time)
//	                  ▼ elapsed               ▼ or in cooldown
//	            prefetch armed:         served with TTLs
//	            next hit refreshes      capped at StaleTTL
//	            the entry upstream      (RFC 8767, Stale=true)
//
// FRESH (within TTL): served directly, TTLs aged by elapsed virtual time.
// Once RefreshAhead of the TTL has elapsed, the first hit past the
// threshold additionally arms a prefetch: the frontend refreshes the
// entry from its handler on the same exchange, so hot names are renewed
// before they ever go stale (at most one prefetch per entry generation).
//
// STALE (past TTL, within StaleWindow): not served on the happy path —
// the upstream is consulted first. Only when the handler hard-fails
// (nil), SERVFAILs, or is benched in FailureCooldown does the frontend
// serve the stale body, with every record TTL capped at StaleTTL and the
// envelope marked Stale (RFC 8767 serve-stale).
//
// Evicted: past TTL + StaleWindow an entry is dropped at probe time; LRU
// eviction under capacity pressure can remove any entry earlier.
//
// Positive and negative entries differ only in how their TTL is derived
// and in accounting: negative answers (NXDOMAIN, or NOERROR with an empty
// answer section — NODATA) are retained for the RFC 2308 negative TTL,
// min(SOA TTL, SOA minimum) capped by MaxNegativeTTL, so repeated misses
// during census scans stop hammering upstreams; hits on them are reported
// as NegativeHits. With StaleWindow zero (the default and the pre-RFC 8767
// behavior) the STALE state vanishes and entries die at TTL expiry.
package doh

package dataset

import (
	"encoding/binary"
	"encoding/json"
	"hash/fnv"
	"io"
	"net/netip"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// HTTPSRecord is the compact summary of one observed HTTPS resource record.
type HTTPSRecord struct {
	Priority  uint16       `json:"priority"`
	Target    string       `json:"target"`
	ALPN      []string     `json:"alpn,omitempty"`
	NoDefALPN bool         `json:"no_default_alpn,omitempty"`
	Port      uint16       `json:"port,omitempty"`
	HasPort   bool         `json:"has_port,omitempty"`
	V4Hints   []netip.Addr `json:"ipv4hint,omitempty"`
	V6Hints   []netip.Addr `json:"ipv6hint,omitempty"`
	HasECH    bool         `json:"ech,omitempty"`
	// ECHConfigID and ECHKeyHash identify the ECH key for rotation
	// tracking without storing the full config.
	ECHConfigID   uint8  `json:"ech_config_id,omitempty"`
	ECHKeyHash    uint64 `json:"ech_key_hash,omitempty"`
	ECHPublicName string `json:"ech_public_name,omitempty"`
}

// AliasMode reports whether the record is in AliasMode.
func (r HTTPSRecord) AliasMode() bool { return r.Priority == 0 }

// Observation is one domain's scan result on one day.
type Observation struct {
	Name string `json:"name"`
	// Rank is the domain's Tranco rank that day (1-based).
	Rank int `json:"rank"`
	// Err records a resolution failure ("" on success).
	Err string `json:"err,omitempty"`

	HTTPS []HTTPSRecord `json:"https,omitempty"`
	// Signed: RRSIG records accompanied the HTTPS RRset.
	Signed bool `json:"signed,omitempty"`
	// AD: the resolver set the Authenticated Data bit.
	AD bool `json:"ad,omitempty"`
	// CNAMEChain lists CNAME targets chased during the HTTPS query.
	CNAMEChain []string `json:"cname_chain,omitempty"`

	A      []netip.Addr `json:"a,omitempty"`
	AAAA   []netip.Addr `json:"aaaa,omitempty"`
	NS     []string     `json:"ns,omitempty"`
	HasSOA bool         `json:"has_soa,omitempty"`
}

// HasHTTPS reports whether any HTTPS record was observed.
func (o *Observation) HasHTTPS() bool { return len(o.HTTPS) > 0 }

// Snapshot is one day's scan of one list.
type Snapshot struct {
	Date time.Time `json:"date"`
	// Kind is "apex" or "www".
	Kind string `json:"kind"`
	// Total is the number of domains scanned.
	Total int `json:"total"`
	// Obs holds the observations for domains with HTTPS records (plus
	// errors); clean no-HTTPS domains are only counted in Total.
	Obs map[string]*Observation `json:"obs"`
}

// NSObservation records one name server host's resolution + attribution.
type NSObservation struct {
	Host  string       `json:"host"`
	Addrs []netip.Addr `json:"addrs"`
	// Org is the WHOIS-attributed operator ("" if inconclusive).
	Org string `json:"org"`
}

// NSSnapshot is one day's name-server scan.
type NSSnapshot struct {
	Date    time.Time                 `json:"date"`
	Servers map[string]*NSObservation `json:"servers"`
}

// ECHObservation is one hourly-scan data point.
type ECHObservation struct {
	Time       time.Time `json:"time"`
	Domain     string    `json:"domain"`
	ConfigID   uint8     `json:"config_id"`
	KeyHash    uint64    `json:"key_hash"`
	PublicName string    `json:"public_name"`
}

// ProbeResult is one §4.3.5 connectivity experiment data point.
type ProbeResult struct {
	Date   time.Time `json:"date"`
	Domain string    `json:"domain"`
	// Mismatch: the hint and A addresses differed at probe time.
	Mismatch bool       `json:"mismatch"`
	HintAddr netip.Addr `json:"hint_addr"`
	AAddr    netip.Addr `json:"a_addr"`
	HintOK   bool       `json:"hint_ok"`
	AOK      bool       `json:"a_ok"`
}

// ServingSnapshot records one scan day's encrypted-DNS serving-layer
// lifecycle counters — the RFC 8767/RFC 2308 events the fleet absorbed
// while collecting that day's observations. Campaigns with a transport
// fleet record one per day, so analysis can correlate staleness windows
// with the §4.4.2 ECH inconsistencies directly instead of re-deriving
// them from logs. Only counters that are a deterministic function of the
// day's scan are recorded — per-exchange (winner-side) counts rather
// than per-attempt frontend totals, since racing and hedging resolution
// strategies touch a schedule-dependent number of frontends per exchange
// — which keeps pipelined and serial campaign stores byte-identical
// under every strategy.
type ServingSnapshot struct {
	Date time.Time `json:"date"`
	// StaleWindowSec is the fleet's configured RFC 8767 stale window in
	// seconds (0: serve-stale disabled), stored so the staleness exposure
	// of the day's data is interpretable without the campaign config.
	StaleWindowSec int64 `json:"stale_window_sec,omitempty"`
	// StaleServed counts RFC 8767 stale answers the scanner consumed
	// that day (exchange winners marked stale).
	StaleServed uint64 `json:"stale_served"`
	// NegativeHits counts RFC 2308 negative answers (NXDOMAIN/NODATA)
	// the scanner consumed that day.
	NegativeHits uint64 `json:"negative_hits"`
	// Prefetches counts refresh-ahead upstream refreshes.
	Prefetches uint64 `json:"prefetches"`
	// UpstreamFailures counts hard recursor failures and SERVFAILs seen
	// behind the fleet.
	UpstreamFailures uint64 `json:"upstream_failures"`
}

// WorkloadSnapshot records one scan day's simulated-client workload
// totals — the internal/workload engine's Summary in dataset form.
// Everything here is a deterministic function of (campaign seed, day,
// workload config): the engine is single-goroutine and its stub caches
// use configured TTLs, so pipelined and serial campaign stores stay
// byte-identical (the Digest field is the engine's event-stream
// fingerprint pinning exactly that).
type WorkloadSnapshot struct {
	Date    time.Time `json:"date"`
	Clients int       `json:"clients"`
	// Model is "closed" (think-time loop) or "open" (Poisson arrivals).
	Model string `json:"model"`
	// Queries counts client arrivals; StubHits the ones answered from
	// the client's own stub cache; FleetExchanges the remainder that
	// reached the serving layer; Errors the exchanges that failed.
	Queries        uint64 `json:"queries"`
	StubHits       uint64 `json:"stub_hits"`
	FleetExchanges uint64 `json:"fleet_exchanges"`
	// StaleServed counts fleet answers served stale (RFC 8767) to the
	// simulated population.
	StaleServed uint64 `json:"stale_served"`
	Errors      uint64 `json:"errors"`
	// VirtualSec is the simulated span the population covered.
	VirtualSec int64 `json:"virtual_sec"`
	// Digest is the engine's event-stream fingerprint in hex (a string:
	// uint64 does not survive JSON number precision).
	Digest string `json:"digest"`
}

// AnomalyEvent is one aggregated flight-recorder event group inside an
// anomaly capture: the event key (kind plus sorted labels) and how many
// times it fired.
type AnomalyEvent struct {
	Key   string `json:"key"`
	Count uint64 `json:"count"`
}

// AnomalyTrace is one tail-sampled trace's stable projection inside an
// anomaly capture: the traced query name and the anomaly flags that got
// it retained. Virtual cost and trace IDs are deliberately absent —
// per-exchange Elapsed depends on how scanner workers interleaved their
// pool updates, so storing it would break the serial/pipelined
// byte-identity contract the rest of the store honors.
type AnomalyTrace struct {
	Name  string   `json:"name"`
	Flags []string `json:"flags,omitempty"`
}

// AnomalyCapture is one scan day's anomaly bundle: the stable SLO
// verdict, the flight recorder's stable event counts, and the stable
// projections of the tail-sampled traces. Campaigns commit one per day
// on which the anomaly trigger held (stable anomaly events present or an
// SLO objective violated). Like ServingSnapshot, every field is a
// deterministic function of the day's scan, so pipelined and serial
// campaign stores stay byte-identical with captures on.
type AnomalyCapture struct {
	Date time.Time `json:"date"`
	// Exchanges/Errors/ServFails/StaleServed are the day's winner-side
	// SLO inputs; Availability and StaleRatio the derived objectives.
	Exchanges    uint64  `json:"exchanges"`
	Errors       uint64  `json:"errors"`
	ServFails    uint64  `json:"servfails"`
	StaleServed  uint64  `json:"stale_served"`
	Availability float64 `json:"availability"`
	StaleRatio   float64 `json:"stale_ratio"`
	// Violations counts SLO objectives the day breached (the latency
	// objective is excluded: p99 is volatile under pipelining).
	Violations int `json:"violations"`
	// Events are the day's stable flight-recorder event counts in
	// canonical key order.
	Events []AnomalyEvent `json:"events,omitempty"`
	// Traces are the tail ring's stable projections, deduplicated and
	// sorted by (name, flags).
	Traces []AnomalyTrace `json:"traces,omitempty"`
}

// TelemetryValue is one flattened metric reading inside a telemetry
// sample: the obs metric key (name plus sorted labels) and its value.
type TelemetryValue struct {
	Key   string  `json:"key"`
	Value float64 `json:"value"`
}

// TelemetryPoint is one sampled telemetry snapshot on a series: a label
// ("tick" for interval samples, a stage name for forced ones), the
// virtual-clock sample time, and the flattened stable metric values.
type TelemetryPoint struct {
	Label  string           `json:"label"`
	AtSec  int64            `json:"at_sec"`
	Values []TelemetryValue `json:"values"`
}

// Value returns the reading for key (0 when absent).
func (p TelemetryPoint) Value(key string) float64 {
	for _, v := range p.Values {
		if v.Key == key {
			return v.Value
		}
	}
	return 0
}

// TelemetrySeries is one scope's sampled metric curve for one day —
// the campaign time-series the obs subsystem collects. Like
// ServingSnapshot, only schedule-independent (stable) metrics are
// recorded, so pipelined and serial campaign runs produce byte-identical
// series.
type TelemetrySeries struct {
	// Scope names the collection loop ("daily", "hourly-ech").
	Scope string    `json:"scope"`
	Date  time.Time `json:"date"`
	// IntervalSec is the sampler's poll interval (0: stage-forced only).
	IntervalSec int64            `json:"interval_sec,omitempty"`
	Points      []TelemetryPoint `json:"points"`
}

// ValidationResult is one row of the one-shot DNSSEC census (Table 9).
type ValidationResult struct {
	Domain   string `json:"domain"`
	HasHTTPS bool   `json:"has_https"`
	CFNS     bool   `json:"cf_ns"`
	Signed   bool   `json:"signed"`
	// Result is "secure", "insecure", "bogus" or "indeterminate".
	Result string `json:"result"`
}

// DefaultStoreShards is NewStore's shard count — enough to spread the
// commit load of a pipelined campaign without measurable read-side cost.
const DefaultStoreShards = 8

// seqRec is one appended record stamped with its store-wide sequence
// number, so the shard-local append logs merge back into the global
// append order on read.
type seqRec[T any] struct {
	seq uint64
	rec T
}

// storeShard is one lock domain of the Store: a slice of every table,
// holding the records whose keys hash to it.
type storeShard struct {
	mu sync.RWMutex

	apex     map[int64]*Snapshot // keyed by unix day
	www      map[int64]*Snapshot
	ns       map[int64]*NSSnapshot
	serving  map[int64]*ServingSnapshot
	workload map[int64]*WorkloadSnapshot
	anomaly  map[int64]*AnomalyCapture
	// telemetry is keyed by scope + "|" + unix day, so daily series and
	// hourly-ech series over the same dates never collide.
	telemetry map[string]*TelemetrySeries

	ech        []seqRec[ECHObservation]
	probes     []seqRec[ProbeResult]
	validation []seqRec[ValidationResult]

	// trancoLists preserves each day's ranked list for overlap analysis.
	trancoLists map[int64][]string
}

func newStoreShard() *storeShard {
	return &storeShard{
		apex:        map[int64]*Snapshot{},
		www:         map[int64]*Snapshot{},
		ns:          map[int64]*NSSnapshot{},
		serving:     map[int64]*ServingSnapshot{},
		workload:    map[int64]*WorkloadSnapshot{},
		anomaly:     map[int64]*AnomalyCapture{},
		telemetry:   map[string]*TelemetrySeries{},
		trancoLists: map[int64][]string{},
	}
}

// Store accumulates a campaign's data. Writes are domain-sharded — see
// the package documentation for the shard/merge read path and the
// determinism contract.
type Store struct {
	seq    atomic.Uint64
	shards []*storeShard
}

// NewStore creates an empty store with DefaultStoreShards shards.
func NewStore() *Store { return NewStoreSharded(DefaultStoreShards) }

// NewStoreSharded creates an empty store with n lock shards (n < 1 is
// treated as 1). Reads are identical for any n; the count only tunes
// write-side lock contention.
func NewStoreSharded(n int) *Store {
	if n < 1 {
		n = 1
	}
	s := &Store{shards: make([]*storeShard, n)}
	for i := range s.shards {
		s.shards[i] = newStoreShard()
	}
	return s
}

// Shards returns the store's shard count.
func (s *Store) Shards() int { return len(s.shards) }

func dayKey(t time.Time) int64 { return t.UTC().Truncate(24 * time.Hour).Unix() }

// shardForString hashes a record's natural string key (domain, telemetry
// key) to its shard.
func (s *Store) shardForString(key string) *storeShard {
	h := fnv.New64a()
	h.Write([]byte(key))
	return s.shards[h.Sum64()%uint64(len(s.shards))]
}

// shardForDay hashes a unix-day key to its shard.
func (s *Store) shardForDay(key int64) *storeShard {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(key))
	h := fnv.New64a()
	h.Write(b[:])
	return s.shards[h.Sum64()%uint64(len(s.shards))]
}

// stampSeq reserves a contiguous block of n sequence numbers and returns
// the first. Batch appends draw one block, so a batch's records are
// always consecutive in the merged order even under concurrent adders.
func (s *Store) stampSeq(n int) uint64 {
	return s.seq.Add(uint64(n)) - uint64(n)
}

// appendSharded distributes one batch across shards by domain, stamping
// each record with its global sequence number; table selects the shard's
// target slice.
func appendSharded[T any](s *Store, batch []T, domain func(T) string, table func(*storeShard) *[]seqRec[T]) {
	if len(batch) == 0 {
		return
	}
	base := s.stampSeq(len(batch))
	for i, rec := range batch {
		sh := s.shardForString(domain(rec))
		sh.mu.Lock()
		t := table(sh)
		*t = append(*t, seqRec[T]{seq: base + uint64(i), rec: rec})
		sh.mu.Unlock()
	}
}

// mergeSeq collects one append table from every shard and restores the
// global append order by sequence number.
func mergeSeq[T any](s *Store, table func(*storeShard) []seqRec[T]) []T {
	var all []seqRec[T]
	for _, sh := range s.shards {
		sh.mu.RLock()
		all = append(all, table(sh)...)
		sh.mu.RUnlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	out := make([]T, len(all))
	for i, r := range all {
		out[i] = r.rec
	}
	return out
}

// AddSnapshot stores a daily snapshot.
func (s *Store) AddSnapshot(snap *Snapshot) {
	key := dayKey(snap.Date)
	sh := s.shardForDay(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	switch snap.Kind {
	case "www":
		sh.www[key] = snap
	default:
		sh.apex[key] = snap
	}
}

// AddNSSnapshot stores a daily name-server snapshot.
func (s *Store) AddNSSnapshot(snap *NSSnapshot) {
	key := dayKey(snap.Date)
	sh := s.shardForDay(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.ns[key] = snap
}

// AddServing stores a daily serving-layer lifecycle snapshot.
func (s *Store) AddServing(snap *ServingSnapshot) {
	key := dayKey(snap.Date)
	sh := s.shardForDay(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.serving[key] = snap
}

// ServingDays returns the sorted dates with serving snapshots.
func (s *Store) ServingDays() []time.Time {
	return keysToDays(s.collectKeys(func(sh *storeShard) []int64 {
		return mapKeys(sh.serving)
	}))
}

// ServingFor returns the serving snapshot for a date.
func (s *Store) ServingFor(date time.Time) (*ServingSnapshot, bool) {
	key := dayKey(date)
	sh := s.shardForDay(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	snap, ok := sh.serving[key]
	return snap, ok
}

// AddWorkload stores a daily workload-engine snapshot.
func (s *Store) AddWorkload(snap *WorkloadSnapshot) {
	key := dayKey(snap.Date)
	sh := s.shardForDay(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.workload[key] = snap
}

// WorkloadDays returns the sorted dates with workload snapshots.
func (s *Store) WorkloadDays() []time.Time {
	return keysToDays(s.collectKeys(func(sh *storeShard) []int64 {
		return mapKeys(sh.workload)
	}))
}

// WorkloadFor returns the workload snapshot for a date.
func (s *Store) WorkloadFor(date time.Time) (*WorkloadSnapshot, bool) {
	key := dayKey(date)
	sh := s.shardForDay(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	snap, ok := sh.workload[key]
	return snap, ok
}

func telemetryKey(scope string, date time.Time) string {
	return scope + "|" + strconv.FormatInt(dayKey(date), 10)
}

// AddAnomaly stores a daily anomaly-capture bundle.
func (s *Store) AddAnomaly(cap *AnomalyCapture) {
	key := dayKey(cap.Date)
	sh := s.shardForDay(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.anomaly[key] = cap
}

// AnomalyDays returns the sorted dates with anomaly captures.
func (s *Store) AnomalyDays() []time.Time {
	return keysToDays(s.collectKeys(func(sh *storeShard) []int64 {
		return mapKeys(sh.anomaly)
	}))
}

// AnomalyFor returns the anomaly capture for a date.
func (s *Store) AnomalyFor(date time.Time) (*AnomalyCapture, bool) {
	key := dayKey(date)
	sh := s.shardForDay(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	cap, ok := sh.anomaly[key]
	return cap, ok
}

// AddTelemetry stores one day's telemetry series for its scope.
func (s *Store) AddTelemetry(series *TelemetrySeries) {
	key := telemetryKey(series.Scope, series.Date)
	sh := s.shardForString(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.telemetry[key] = series
}

// TelemetryFor returns the telemetry series for (scope, date).
func (s *Store) TelemetryFor(scope string, date time.Time) (*TelemetrySeries, bool) {
	key := telemetryKey(scope, date)
	sh := s.shardForString(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	series, ok := sh.telemetry[key]
	return series, ok
}

// TelemetryAll returns every stored series sorted by (scope, date).
func (s *Store) TelemetryAll() []*TelemetrySeries {
	var out []*TelemetrySeries
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, series := range sh.telemetry {
			out = append(out, series)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Scope != out[j].Scope {
			return out[i].Scope < out[j].Scope
		}
		return out[i].Date.Before(out[j].Date)
	})
	return out
}

// AddTrancoList stores the day's ranked list.
func (s *Store) AddTrancoList(date time.Time, list []string) {
	key := dayKey(date)
	sh := s.shardForDay(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.trancoLists[key] = list
}

// AddECH appends hourly ECH observations.
func (s *Store) AddECH(obs ...ECHObservation) {
	appendSharded(s, obs,
		func(o ECHObservation) string { return o.Domain },
		func(sh *storeShard) *[]seqRec[ECHObservation] { return &sh.ech })
}

// AddProbes appends connectivity probe results.
func (s *Store) AddProbes(res ...ProbeResult) {
	appendSharded(s, res,
		func(p ProbeResult) string { return p.Domain },
		func(sh *storeShard) *[]seqRec[ProbeResult] { return &sh.probes })
}

// AddValidation appends DNSSEC census rows.
func (s *Store) AddValidation(res ...ValidationResult) {
	appendSharded(s, res,
		func(v ValidationResult) string { return v.Domain },
		func(sh *storeShard) *[]seqRec[ValidationResult] { return &sh.validation })
}

// Days returns the sorted scan dates present for the given kind.
func (s *Store) Days(kind string) []time.Time {
	return keysToDays(s.collectKeys(func(sh *storeShard) []int64 {
		if kind == "www" {
			return mapKeys(sh.www)
		}
		return mapKeys(sh.apex)
	}))
}

// SnapshotFor returns the snapshot for (kind, date).
func (s *Store) SnapshotFor(kind string, date time.Time) (*Snapshot, bool) {
	key := dayKey(date)
	sh := s.shardForDay(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	m := sh.apex
	if kind == "www" {
		m = sh.www
	}
	snap, ok := m[key]
	return snap, ok
}

// NSDays returns the sorted dates with name-server snapshots.
func (s *Store) NSDays() []time.Time {
	return keysToDays(s.collectKeys(func(sh *storeShard) []int64 {
		return mapKeys(sh.ns)
	}))
}

// NSSnapshotFor returns the name-server snapshot for a date.
func (s *Store) NSSnapshotFor(date time.Time) (*NSSnapshot, bool) {
	key := dayKey(date)
	sh := s.shardForDay(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	snap, ok := sh.ns[key]
	return snap, ok
}

// TrancoListFor returns the stored ranked list for a date.
func (s *Store) TrancoListFor(date time.Time) ([]string, bool) {
	key := dayKey(date)
	sh := s.shardForDay(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	l, ok := sh.trancoLists[key]
	return l, ok
}

// ECHObservations returns all hourly ECH data points in append order.
func (s *Store) ECHObservations() []ECHObservation {
	return mergeSeq(s, func(sh *storeShard) []seqRec[ECHObservation] { return sh.ech })
}

// Probes returns all connectivity probe results in append order.
func (s *Store) Probes() []ProbeResult {
	return mergeSeq(s, func(sh *storeShard) []seqRec[ProbeResult] { return sh.probes })
}

// Validation returns the DNSSEC census in append order.
func (s *Store) Validation() []ValidationResult {
	return mergeSeq(s, func(sh *storeShard) []seqRec[ValidationResult] { return sh.validation })
}

// export is the JSON layout for WriteJSON.
type export struct {
	Apex       []*Snapshot         `json:"apex"`
	WWW        []*Snapshot         `json:"www"`
	NS         []*NSSnapshot       `json:"ns"`
	Serving    []*ServingSnapshot  `json:"serving,omitempty"`
	Workload   []*WorkloadSnapshot `json:"workload,omitempty"`
	Anomalies  []*AnomalyCapture   `json:"anomalies,omitempty"`
	Telemetry  []*TelemetrySeries  `json:"telemetry,omitempty"`
	ECH        []ECHObservation    `json:"ech"`
	Probes     []ProbeResult       `json:"probes"`
	Validation []ValidationResult  `json:"validation"`
}

// WriteJSON serialises the whole store. The export is rendered in sorted
// key order (and the append tables in sequence order), so equal stores
// produce equal bytes regardless of shard count or commit concurrency.
func (s *Store) WriteJSON(w io.Writer) error {
	var e export
	for _, day := range s.collectKeys(func(sh *storeShard) []int64 { return mapKeys(sh.apex) }) {
		snap, _ := s.snapshotForKey("apex", day)
		e.Apex = append(e.Apex, snap)
	}
	for _, day := range s.collectKeys(func(sh *storeShard) []int64 { return mapKeys(sh.www) }) {
		snap, _ := s.snapshotForKey("www", day)
		e.WWW = append(e.WWW, snap)
	}
	for _, day := range s.collectKeys(func(sh *storeShard) []int64 { return mapKeys(sh.ns) }) {
		sh := s.shardForDay(day)
		sh.mu.RLock()
		e.NS = append(e.NS, sh.ns[day])
		sh.mu.RUnlock()
	}
	for _, day := range s.collectKeys(func(sh *storeShard) []int64 { return mapKeys(sh.serving) }) {
		sh := s.shardForDay(day)
		sh.mu.RLock()
		e.Serving = append(e.Serving, sh.serving[day])
		sh.mu.RUnlock()
	}
	for _, day := range s.collectKeys(func(sh *storeShard) []int64 { return mapKeys(sh.workload) }) {
		sh := s.shardForDay(day)
		sh.mu.RLock()
		e.Workload = append(e.Workload, sh.workload[day])
		sh.mu.RUnlock()
	}
	for _, day := range s.collectKeys(func(sh *storeShard) []int64 { return mapKeys(sh.anomaly) }) {
		sh := s.shardForDay(day)
		sh.mu.RLock()
		e.Anomalies = append(e.Anomalies, sh.anomaly[day])
		sh.mu.RUnlock()
	}
	e.Telemetry = s.TelemetryAll()
	e.ECH = s.ECHObservations()
	e.Probes = s.Probes()
	e.Validation = s.Validation()
	enc := json.NewEncoder(w)
	return enc.Encode(&e)
}

// snapshotForKey is SnapshotFor on a pre-computed day key.
func (s *Store) snapshotForKey(kind string, key int64) (*Snapshot, bool) {
	sh := s.shardForDay(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	m := sh.apex
	if kind == "www" {
		m = sh.www
	}
	snap, ok := m[key]
	return snap, ok
}

// collectKeys gathers per-shard key sets (each read under the shard's
// lock) into one sorted slice.
func (s *Store) collectKeys(keys func(*storeShard) []int64) []int64 {
	var all []int64
	for _, sh := range s.shards {
		sh.mu.RLock()
		all = append(all, keys(sh)...)
		sh.mu.RUnlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all
}

func mapKeys[V any](m map[int64]V) []int64 {
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func keysToDays(keys []int64) []time.Time {
	out := make([]time.Time, len(keys))
	for i, k := range keys {
		out[i] = time.Unix(k, 0).UTC()
	}
	return out
}

// Package dataset holds the measurement campaign's collected data: daily
// snapshots of per-domain DNS observations (compact summaries, not raw
// messages), name-server observations with WHOIS attribution, hourly ECH
// observations, TLS connectivity probe results, and the one-shot DNSSEC
// validation census — the in-memory equivalent of the paper's Table 1
// datasets, with JSON export.
package dataset

import (
	"encoding/json"
	"io"
	"net/netip"
	"sort"
	"strconv"
	"sync"
	"time"
)

// HTTPSRecord is the compact summary of one observed HTTPS resource record.
type HTTPSRecord struct {
	Priority  uint16       `json:"priority"`
	Target    string       `json:"target"`
	ALPN      []string     `json:"alpn,omitempty"`
	NoDefALPN bool         `json:"no_default_alpn,omitempty"`
	Port      uint16       `json:"port,omitempty"`
	HasPort   bool         `json:"has_port,omitempty"`
	V4Hints   []netip.Addr `json:"ipv4hint,omitempty"`
	V6Hints   []netip.Addr `json:"ipv6hint,omitempty"`
	HasECH    bool         `json:"ech,omitempty"`
	// ECHConfigID and ECHKeyHash identify the ECH key for rotation
	// tracking without storing the full config.
	ECHConfigID   uint8  `json:"ech_config_id,omitempty"`
	ECHKeyHash    uint64 `json:"ech_key_hash,omitempty"`
	ECHPublicName string `json:"ech_public_name,omitempty"`
}

// AliasMode reports whether the record is in AliasMode.
func (r HTTPSRecord) AliasMode() bool { return r.Priority == 0 }

// Observation is one domain's scan result on one day.
type Observation struct {
	Name string `json:"name"`
	// Rank is the domain's Tranco rank that day (1-based).
	Rank int `json:"rank"`
	// Err records a resolution failure ("" on success).
	Err string `json:"err,omitempty"`

	HTTPS []HTTPSRecord `json:"https,omitempty"`
	// Signed: RRSIG records accompanied the HTTPS RRset.
	Signed bool `json:"signed,omitempty"`
	// AD: the resolver set the Authenticated Data bit.
	AD bool `json:"ad,omitempty"`
	// CNAMEChain lists CNAME targets chased during the HTTPS query.
	CNAMEChain []string `json:"cname_chain,omitempty"`

	A      []netip.Addr `json:"a,omitempty"`
	AAAA   []netip.Addr `json:"aaaa,omitempty"`
	NS     []string     `json:"ns,omitempty"`
	HasSOA bool         `json:"has_soa,omitempty"`
}

// HasHTTPS reports whether any HTTPS record was observed.
func (o *Observation) HasHTTPS() bool { return len(o.HTTPS) > 0 }

// Snapshot is one day's scan of one list.
type Snapshot struct {
	Date time.Time `json:"date"`
	// Kind is "apex" or "www".
	Kind string `json:"kind"`
	// Total is the number of domains scanned.
	Total int `json:"total"`
	// Obs holds the observations for domains with HTTPS records (plus
	// errors); clean no-HTTPS domains are only counted in Total.
	Obs map[string]*Observation `json:"obs"`
}

// NSObservation records one name server host's resolution + attribution.
type NSObservation struct {
	Host  string       `json:"host"`
	Addrs []netip.Addr `json:"addrs"`
	// Org is the WHOIS-attributed operator ("" if inconclusive).
	Org string `json:"org"`
}

// NSSnapshot is one day's name-server scan.
type NSSnapshot struct {
	Date    time.Time                 `json:"date"`
	Servers map[string]*NSObservation `json:"servers"`
}

// ECHObservation is one hourly-scan data point.
type ECHObservation struct {
	Time       time.Time `json:"time"`
	Domain     string    `json:"domain"`
	ConfigID   uint8     `json:"config_id"`
	KeyHash    uint64    `json:"key_hash"`
	PublicName string    `json:"public_name"`
}

// ProbeResult is one §4.3.5 connectivity experiment data point.
type ProbeResult struct {
	Date   time.Time `json:"date"`
	Domain string    `json:"domain"`
	// Mismatch: the hint and A addresses differed at probe time.
	Mismatch bool       `json:"mismatch"`
	HintAddr netip.Addr `json:"hint_addr"`
	AAddr    netip.Addr `json:"a_addr"`
	HintOK   bool       `json:"hint_ok"`
	AOK      bool       `json:"a_ok"`
}

// ServingSnapshot records one scan day's encrypted-DNS serving-layer
// lifecycle counters — the RFC 8767/RFC 2308 events the fleet absorbed
// while collecting that day's observations. Campaigns with a transport
// fleet record one per day, so analysis can correlate staleness windows
// with the §4.4.2 ECH inconsistencies directly instead of re-deriving
// them from logs. Only counters that are a deterministic function of the
// day's scan are recorded — per-exchange (winner-side) counts rather
// than per-attempt frontend totals, since racing and hedging resolution
// strategies touch a schedule-dependent number of frontends per exchange
// — which keeps pipelined and serial campaign stores byte-identical
// under every strategy.
type ServingSnapshot struct {
	Date time.Time `json:"date"`
	// StaleWindowSec is the fleet's configured RFC 8767 stale window in
	// seconds (0: serve-stale disabled), stored so the staleness exposure
	// of the day's data is interpretable without the campaign config.
	StaleWindowSec int64 `json:"stale_window_sec,omitempty"`
	// StaleServed counts RFC 8767 stale answers the scanner consumed
	// that day (exchange winners marked stale).
	StaleServed uint64 `json:"stale_served"`
	// NegativeHits counts RFC 2308 negative answers (NXDOMAIN/NODATA)
	// the scanner consumed that day.
	NegativeHits uint64 `json:"negative_hits"`
	// Prefetches counts refresh-ahead upstream refreshes.
	Prefetches uint64 `json:"prefetches"`
	// UpstreamFailures counts hard recursor failures and SERVFAILs seen
	// behind the fleet.
	UpstreamFailures uint64 `json:"upstream_failures"`
}

// TelemetryValue is one flattened metric reading inside a telemetry
// sample: the obs metric key (name plus sorted labels) and its value.
type TelemetryValue struct {
	Key   string  `json:"key"`
	Value float64 `json:"value"`
}

// TelemetryPoint is one sampled telemetry snapshot on a series: a label
// ("tick" for interval samples, a stage name for forced ones), the
// virtual-clock sample time, and the flattened stable metric values.
type TelemetryPoint struct {
	Label  string           `json:"label"`
	AtSec  int64            `json:"at_sec"`
	Values []TelemetryValue `json:"values"`
}

// Value returns the reading for key (0 when absent).
func (p TelemetryPoint) Value(key string) float64 {
	for _, v := range p.Values {
		if v.Key == key {
			return v.Value
		}
	}
	return 0
}

// TelemetrySeries is one scope's sampled metric curve for one day —
// the campaign time-series the obs subsystem collects. Like
// ServingSnapshot, only schedule-independent (stable) metrics are
// recorded, so pipelined and serial campaign runs produce byte-identical
// series.
type TelemetrySeries struct {
	// Scope names the collection loop ("daily", "hourly-ech").
	Scope string    `json:"scope"`
	Date  time.Time `json:"date"`
	// IntervalSec is the sampler's poll interval (0: stage-forced only).
	IntervalSec int64            `json:"interval_sec,omitempty"`
	Points      []TelemetryPoint `json:"points"`
}

// ValidationResult is one row of the one-shot DNSSEC census (Table 9).
type ValidationResult struct {
	Domain   string `json:"domain"`
	HasHTTPS bool   `json:"has_https"`
	CFNS     bool   `json:"cf_ns"`
	Signed   bool   `json:"signed"`
	// Result is "secure", "insecure", "bogus" or "indeterminate".
	Result string `json:"result"`
}

// Store accumulates a campaign's data.
type Store struct {
	mu sync.RWMutex

	apex    map[int64]*Snapshot // keyed by unix day
	www     map[int64]*Snapshot
	ns      map[int64]*NSSnapshot
	serving map[int64]*ServingSnapshot
	// telemetry is keyed by scope + "|" + unix day, so daily series and
	// hourly-ech series over the same dates never collide.
	telemetry map[string]*TelemetrySeries

	ech        []ECHObservation
	probes     []ProbeResult
	validation []ValidationResult

	// TrancoLists preserves each day's ranked list for overlap analysis.
	trancoLists map[int64][]string
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{
		apex:        map[int64]*Snapshot{},
		www:         map[int64]*Snapshot{},
		ns:          map[int64]*NSSnapshot{},
		serving:     map[int64]*ServingSnapshot{},
		telemetry:   map[string]*TelemetrySeries{},
		trancoLists: map[int64][]string{},
	}
}

func dayKey(t time.Time) int64 { return t.UTC().Truncate(24 * time.Hour).Unix() }

// AddSnapshot stores a daily snapshot.
func (s *Store) AddSnapshot(snap *Snapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch snap.Kind {
	case "www":
		s.www[dayKey(snap.Date)] = snap
	default:
		s.apex[dayKey(snap.Date)] = snap
	}
}

// AddNSSnapshot stores a daily name-server snapshot.
func (s *Store) AddNSSnapshot(snap *NSSnapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ns[dayKey(snap.Date)] = snap
}

// AddServing stores a daily serving-layer lifecycle snapshot.
func (s *Store) AddServing(snap *ServingSnapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.serving[dayKey(snap.Date)] = snap
}

// ServingDays returns the sorted dates with serving snapshots.
func (s *Store) ServingDays() []time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := sortedKeys(s.serving)
	out := make([]time.Time, len(keys))
	for i, k := range keys {
		out[i] = time.Unix(k, 0).UTC()
	}
	return out
}

// ServingFor returns the serving snapshot for a date.
func (s *Store) ServingFor(date time.Time) (*ServingSnapshot, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap, ok := s.serving[dayKey(date)]
	return snap, ok
}

func telemetryKey(scope string, date time.Time) string {
	return scope + "|" + strconv.FormatInt(dayKey(date), 10)
}

// AddTelemetry stores one day's telemetry series for its scope.
func (s *Store) AddTelemetry(series *TelemetrySeries) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.telemetry[telemetryKey(series.Scope, series.Date)] = series
}

// TelemetryFor returns the telemetry series for (scope, date).
func (s *Store) TelemetryFor(scope string, date time.Time) (*TelemetrySeries, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	series, ok := s.telemetry[telemetryKey(scope, date)]
	return series, ok
}

// TelemetryAll returns every stored series sorted by (scope, date).
func (s *Store) TelemetryAll() []*TelemetrySeries {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sortedTelemetry()
}

// sortedTelemetry returns the series sorted by (scope, date); callers
// hold s.mu.
func (s *Store) sortedTelemetry() []*TelemetrySeries {
	out := make([]*TelemetrySeries, 0, len(s.telemetry))
	for _, series := range s.telemetry {
		out = append(out, series)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Scope != out[j].Scope {
			return out[i].Scope < out[j].Scope
		}
		return out[i].Date.Before(out[j].Date)
	})
	return out
}

// AddTrancoList stores the day's ranked list.
func (s *Store) AddTrancoList(date time.Time, list []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.trancoLists[dayKey(date)] = list
}

// AddECH appends hourly ECH observations.
func (s *Store) AddECH(obs ...ECHObservation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ech = append(s.ech, obs...)
}

// AddProbes appends connectivity probe results.
func (s *Store) AddProbes(res ...ProbeResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.probes = append(s.probes, res...)
}

// AddValidation appends DNSSEC census rows.
func (s *Store) AddValidation(res ...ValidationResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.validation = append(s.validation, res...)
}

// Days returns the sorted scan dates present for the given kind.
func (s *Store) Days(kind string) []time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m := s.apex
	if kind == "www" {
		m = s.www
	}
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]time.Time, len(keys))
	for i, k := range keys {
		out[i] = time.Unix(k, 0).UTC()
	}
	return out
}

// SnapshotFor returns the snapshot for (kind, date).
func (s *Store) SnapshotFor(kind string, date time.Time) (*Snapshot, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m := s.apex
	if kind == "www" {
		m = s.www
	}
	snap, ok := m[dayKey(date)]
	return snap, ok
}

// NSDays returns the sorted dates with name-server snapshots.
func (s *Store) NSDays() []time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]int64, 0, len(s.ns))
	for k := range s.ns {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]time.Time, len(keys))
	for i, k := range keys {
		out[i] = time.Unix(k, 0).UTC()
	}
	return out
}

// NSSnapshotFor returns the name-server snapshot for a date.
func (s *Store) NSSnapshotFor(date time.Time) (*NSSnapshot, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap, ok := s.ns[dayKey(date)]
	return snap, ok
}

// TrancoListFor returns the stored ranked list for a date.
func (s *Store) TrancoListFor(date time.Time) ([]string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	l, ok := s.trancoLists[dayKey(date)]
	return l, ok
}

// ECHObservations returns all hourly ECH data points.
func (s *Store) ECHObservations() []ECHObservation {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]ECHObservation(nil), s.ech...)
}

// Probes returns all connectivity probe results.
func (s *Store) Probes() []ProbeResult {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]ProbeResult(nil), s.probes...)
}

// Validation returns the DNSSEC census.
func (s *Store) Validation() []ValidationResult {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]ValidationResult(nil), s.validation...)
}

// export is the JSON layout for WriteJSON.
type export struct {
	Apex       []*Snapshot        `json:"apex"`
	WWW        []*Snapshot        `json:"www"`
	NS         []*NSSnapshot      `json:"ns"`
	Serving    []*ServingSnapshot `json:"serving,omitempty"`
	Telemetry  []*TelemetrySeries `json:"telemetry,omitempty"`
	ECH        []ECHObservation   `json:"ech"`
	Probes     []ProbeResult      `json:"probes"`
	Validation []ValidationResult `json:"validation"`
}

// WriteJSON serialises the whole store.
func (s *Store) WriteJSON(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var e export
	for _, day := range sortedKeys(s.apex) {
		e.Apex = append(e.Apex, s.apex[day])
	}
	for _, day := range sortedKeys(s.www) {
		e.WWW = append(e.WWW, s.www[day])
	}
	for _, day := range sortedKeys(s.ns) {
		e.NS = append(e.NS, s.ns[day])
	}
	for _, day := range sortedKeys(s.serving) {
		e.Serving = append(e.Serving, s.serving[day])
	}
	e.Telemetry = s.sortedTelemetry()
	e.ECH = s.ech
	e.Probes = s.probes
	e.Validation = s.validation
	enc := json.NewEncoder(w)
	return enc.Encode(&e)
}

func sortedKeys[V any](m map[int64]V) []int64 {
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Package dataset holds the measurement campaign's collected data: daily
// snapshots of per-domain DNS observations (compact summaries, not raw
// messages), name-server observations with WHOIS attribution, hourly ECH
// observations, TLS connectivity probe results, serving-layer lifecycle
// snapshots, campaign telemetry series, and the one-shot DNSSEC
// validation census — the in-memory equivalent of the paper's Table 1
// datasets, with JSON export.
//
// # Sharded writes, merged reads
//
// Store is internally sharded: its tables are split across N sub-stores
// (NewStoreSharded; NewStore uses DefaultStoreShards), each guarded by
// its own mutex, so concurrent writers contend only when they land on
// the same shard instead of serializing on one store-wide lock. The
// shard a record lands on is an fnv-64a hash of its natural key:
//
//   - the append-heavy tables — ECH observations, connectivity probes,
//     and validation rows — shard by the record's domain;
//   - the per-day maps — apex/www/NS snapshots, serving snapshots,
//     Tranco lists — shard by the UTC day key, and telemetry series by
//     their scope+day key.
//
// Sharding never leaks into reads. Every accessor merges across shards
// behind the same signatures the unsharded store had: keyed lookups
// hash straight to their shard; day listings collect and sort keys from
// all shards; and the append tables restore the global append order by
// sorting on a store-wide sequence number that every appended record is
// stamped with (an atomic counter, drawn as a contiguous block per
// Add call so one batch can never interleave with another's stamps).
//
// # Determinism contract
//
// The byte-identical store contract the campaign pipeline relies on —
// serial and pipelined runs produce identical WriteJSON bytes — holds
// for any shard count: as long as records are *committed* in the same
// order (the pipeline's ordered committer guarantees that), the
// sequence-sorted merge reconstructs exactly that order, and the keyed
// tables are rendered in sorted-key order regardless of which shard
// held them. TestShardCountInvariance pins reads and exports byte-equal
// across shard counts; the concurrent-append tests under -race cover
// the per-shard locking.
package dataset

package dataset

import (
	"bytes"
	"encoding/json"
	"net/netip"
	"testing"
	"time"
)

func day(y, m, d int) time.Time { return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC) }

func sampleSnapshot(date time.Time, kind string) *Snapshot {
	return &Snapshot{
		Date: date, Kind: kind, Total: 100,
		Obs: map[string]*Observation{
			"a.com.": {
				Name: "a.com.", Rank: 1,
				HTTPS: []HTTPSRecord{{Priority: 1, Target: ".", ALPN: []string{"h2"},
					V4Hints: []netip.Addr{netip.MustParseAddr("1.2.3.4")}}},
				Signed: true, AD: true,
				A: []netip.Addr{netip.MustParseAddr("1.2.3.4")},
			},
		},
	}
}

func TestSnapshotStorageAndDays(t *testing.T) {
	s := NewStore()
	d1, d2 := day(2023, 5, 8), day(2023, 5, 9)
	s.AddSnapshot(sampleSnapshot(d1, "apex"))
	s.AddSnapshot(sampleSnapshot(d2, "apex"))
	s.AddSnapshot(sampleSnapshot(d1, "www"))

	days := s.Days("apex")
	if len(days) != 2 || !days[0].Equal(d1) || !days[1].Equal(d2) {
		t.Fatalf("Days = %v", days)
	}
	if len(s.Days("www")) != 1 {
		t.Error("www days wrong")
	}
	snap, ok := s.SnapshotFor("apex", d1)
	if !ok || snap.Total != 100 {
		t.Fatalf("SnapshotFor = %+v, %v", snap, ok)
	}
	if _, ok := s.SnapshotFor("apex", day(2024, 1, 1)); ok {
		t.Error("phantom snapshot")
	}
	// Same-day replacement.
	s.AddSnapshot(&Snapshot{Date: d1.Add(3 * time.Hour), Kind: "apex", Total: 7, Obs: map[string]*Observation{}})
	snap, _ = s.SnapshotFor("apex", d1)
	if snap.Total != 7 {
		t.Error("same-day snapshot not replaced")
	}
}

func TestNSAndTrancoStorage(t *testing.T) {
	s := NewStore()
	d := day(2023, 10, 11)
	s.AddNSSnapshot(&NSSnapshot{Date: d, Servers: map[string]*NSObservation{
		"ns1.x.com.": {Host: "ns1.x.com.", Org: "Cloudflare"},
	}})
	s.AddTrancoList(d, []string{"a.com", "b.com"})

	if len(s.NSDays()) != 1 {
		t.Fatal("NSDays wrong")
	}
	snap, ok := s.NSSnapshotFor(d)
	if !ok || snap.Servers["ns1.x.com."].Org != "Cloudflare" {
		t.Fatalf("NSSnapshotFor = %+v, %v", snap, ok)
	}
	list, ok := s.TrancoListFor(d)
	if !ok || len(list) != 2 {
		t.Fatalf("TrancoListFor = %v, %v", list, ok)
	}
}

func TestAppendersAndCopies(t *testing.T) {
	s := NewStore()
	s.AddECH(ECHObservation{Domain: "a.com.", KeyHash: 1})
	s.AddProbes(ProbeResult{Domain: "a.com.", Mismatch: true})
	s.AddValidation(ValidationResult{Domain: "a.com.", Signed: true, Result: "insecure"})

	if len(s.ECHObservations()) != 1 || len(s.Probes()) != 1 || len(s.Validation()) != 1 {
		t.Fatal("appenders broken")
	}
	// Returned slices are copies.
	probes := s.Probes()
	probes[0].Domain = "evil.com."
	if s.Probes()[0].Domain != "a.com." {
		t.Error("Probes aliases internal state")
	}
}

func TestObservationHasHTTPS(t *testing.T) {
	o := &Observation{}
	if o.HasHTTPS() {
		t.Error("empty observation has HTTPS")
	}
	o.HTTPS = []HTTPSRecord{{Priority: 0, Target: "b.com."}}
	if !o.HasHTTPS() {
		t.Error("observation with record lacks HTTPS")
	}
	if !o.HTTPS[0].AliasMode() {
		t.Error("priority 0 not AliasMode")
	}
}

func TestWriteJSON(t *testing.T) {
	s := NewStore()
	d := day(2023, 5, 8)
	s.AddSnapshot(sampleSnapshot(d, "apex"))
	s.AddSnapshot(sampleSnapshot(d, "www"))
	s.AddNSSnapshot(&NSSnapshot{Date: d, Servers: map[string]*NSObservation{}})
	s.AddECH(ECHObservation{Time: d, Domain: "a.com.", KeyHash: 42})
	s.AddValidation(ValidationResult{Domain: "a.com.", Result: "secure"})

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	for _, key := range []string{"apex", "www", "ns", "ech", "validation"} {
		if decoded[key] == nil {
			t.Errorf("JSON missing %q", key)
		}
	}
}

package dataset

import (
	"bytes"
	"encoding/json"
	"net/netip"
	"sync"
	"testing"
	"time"
)

func day(y, m, d int) time.Time { return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC) }

func sampleSnapshot(date time.Time, kind string) *Snapshot {
	return &Snapshot{
		Date: date, Kind: kind, Total: 100,
		Obs: map[string]*Observation{
			"a.com.": {
				Name: "a.com.", Rank: 1,
				HTTPS: []HTTPSRecord{{Priority: 1, Target: ".", ALPN: []string{"h2"},
					V4Hints: []netip.Addr{netip.MustParseAddr("1.2.3.4")}}},
				Signed: true, AD: true,
				A: []netip.Addr{netip.MustParseAddr("1.2.3.4")},
			},
		},
	}
}

func TestSnapshotStorageAndDays(t *testing.T) {
	s := NewStore()
	d1, d2 := day(2023, 5, 8), day(2023, 5, 9)
	s.AddSnapshot(sampleSnapshot(d1, "apex"))
	s.AddSnapshot(sampleSnapshot(d2, "apex"))
	s.AddSnapshot(sampleSnapshot(d1, "www"))

	days := s.Days("apex")
	if len(days) != 2 || !days[0].Equal(d1) || !days[1].Equal(d2) {
		t.Fatalf("Days = %v", days)
	}
	if len(s.Days("www")) != 1 {
		t.Error("www days wrong")
	}
	snap, ok := s.SnapshotFor("apex", d1)
	if !ok || snap.Total != 100 {
		t.Fatalf("SnapshotFor = %+v, %v", snap, ok)
	}
	if _, ok := s.SnapshotFor("apex", day(2024, 1, 1)); ok {
		t.Error("phantom snapshot")
	}
	// Same-day replacement.
	s.AddSnapshot(&Snapshot{Date: d1.Add(3 * time.Hour), Kind: "apex", Total: 7, Obs: map[string]*Observation{}})
	snap, _ = s.SnapshotFor("apex", d1)
	if snap.Total != 7 {
		t.Error("same-day snapshot not replaced")
	}
}

func TestNSAndTrancoStorage(t *testing.T) {
	s := NewStore()
	d := day(2023, 10, 11)
	s.AddNSSnapshot(&NSSnapshot{Date: d, Servers: map[string]*NSObservation{
		"ns1.x.com.": {Host: "ns1.x.com.", Org: "Cloudflare"},
	}})
	s.AddTrancoList(d, []string{"a.com", "b.com"})

	if len(s.NSDays()) != 1 {
		t.Fatal("NSDays wrong")
	}
	snap, ok := s.NSSnapshotFor(d)
	if !ok || snap.Servers["ns1.x.com."].Org != "Cloudflare" {
		t.Fatalf("NSSnapshotFor = %+v, %v", snap, ok)
	}
	list, ok := s.TrancoListFor(d)
	if !ok || len(list) != 2 {
		t.Fatalf("TrancoListFor = %v, %v", list, ok)
	}
}

func TestAppendersAndCopies(t *testing.T) {
	s := NewStore()
	s.AddECH(ECHObservation{Domain: "a.com.", KeyHash: 1})
	s.AddProbes(ProbeResult{Domain: "a.com.", Mismatch: true})
	s.AddValidation(ValidationResult{Domain: "a.com.", Signed: true, Result: "insecure"})

	if len(s.ECHObservations()) != 1 || len(s.Probes()) != 1 || len(s.Validation()) != 1 {
		t.Fatal("appenders broken")
	}
	// Returned slices are copies.
	probes := s.Probes()
	probes[0].Domain = "evil.com."
	if s.Probes()[0].Domain != "a.com." {
		t.Error("Probes aliases internal state")
	}
}

func TestObservationHasHTTPS(t *testing.T) {
	o := &Observation{}
	if o.HasHTTPS() {
		t.Error("empty observation has HTTPS")
	}
	o.HTTPS = []HTTPSRecord{{Priority: 0, Target: "b.com."}}
	if !o.HasHTTPS() {
		t.Error("observation with record lacks HTTPS")
	}
	if !o.HTTPS[0].AliasMode() {
		t.Error("priority 0 not AliasMode")
	}
}

func TestWriteJSON(t *testing.T) {
	s := NewStore()
	d := day(2023, 5, 8)
	s.AddSnapshot(sampleSnapshot(d, "apex"))
	s.AddSnapshot(sampleSnapshot(d, "www"))
	s.AddNSSnapshot(&NSSnapshot{Date: d, Servers: map[string]*NSObservation{}})
	s.AddECH(ECHObservation{Time: d, Domain: "a.com.", KeyHash: 42})
	s.AddValidation(ValidationResult{Domain: "a.com.", Result: "secure"})

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	for _, key := range []string{"apex", "www", "ns", "ech", "validation"} {
		if decoded[key] == nil {
			t.Errorf("JSON missing %q", key)
		}
	}
}

// fillStore loads one deterministic campaign's worth of records into s,
// exercising every table across several days and many domains.
func fillStore(s *Store) {
	base := day(2023, 7, 21)
	domains := []string{"a.com.", "b.org.", "c.net.", "d.io.", "e.dev.", "f.co.", "g.app.", "h.xyz."}
	for di := 0; di < 4; di++ {
		d := base.AddDate(0, 0, di)
		s.AddSnapshot(sampleSnapshot(d, "apex"))
		s.AddSnapshot(sampleSnapshot(d, "www"))
		s.AddNSSnapshot(&NSSnapshot{Date: d, Servers: map[string]*NSObservation{
			"ns1.x.com.": {Host: "ns1.x.com.", Org: "Cloudflare"},
		}})
		s.AddServing(&ServingSnapshot{Date: d, StaleServed: uint64(di), NegativeHits: 2})
		s.AddTrancoList(d, domains[:4+di%2])
		s.AddTelemetry(&TelemetrySeries{Scope: "daily", Date: d, Points: []TelemetryPoint{
			{Label: "apex", AtSec: d.Unix(), Values: []TelemetryValue{{Key: "k", Value: float64(di)}}},
		}})
		s.AddTelemetry(&TelemetrySeries{Scope: "hourly-ech", Date: d, IntervalSec: 3600})
		for h := 0; h < 24; h++ {
			at := d.Add(time.Duration(h) * time.Hour)
			var batch []ECHObservation
			for _, dom := range domains {
				batch = append(batch, ECHObservation{Time: at, Domain: dom, KeyHash: uint64(h)})
			}
			s.AddECH(batch...)
		}
		for _, dom := range domains {
			s.AddProbes(ProbeResult{Date: d, Domain: dom, Mismatch: di%2 == 0})
			s.AddValidation(ValidationResult{Domain: dom, Result: "secure"})
		}
	}
}

// TestShardCountInvariance pins the determinism contract: the same
// content written into stores with different shard counts reads back
// identically through every accessor and exports identical bytes.
func TestShardCountInvariance(t *testing.T) {
	one := NewStoreSharded(1)
	many := NewStoreSharded(16)
	fillStore(one)
	fillStore(many)

	var a, b bytes.Buffer
	if err := one.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := many.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WriteJSON differs between shard counts 1 and 16")
	}

	if got, want := len(one.ECHObservations()), len(many.ECHObservations()); got != want {
		t.Fatalf("ECH counts differ: %d vs %d", got, want)
	}
	for i, o := range one.ECHObservations() {
		if m := many.ECHObservations()[i]; o != m {
			t.Fatalf("ECH append order diverges at %d: %+v vs %+v", i, o, m)
		}
	}
	for _, kind := range []string{"apex", "www"} {
		d1, d2 := one.Days(kind), many.Days(kind)
		if len(d1) != len(d2) {
			t.Fatalf("%s day counts differ", kind)
		}
		for i := range d1 {
			if !d1[i].Equal(d2[i]) {
				t.Fatalf("%s days diverge at %d", kind, i)
			}
		}
	}
	s1, s2 := one.TelemetryAll(), many.TelemetryAll()
	if len(s1) != len(s2) {
		t.Fatalf("telemetry counts differ: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i].Scope != s2[i].Scope || !s1[i].Date.Equal(s2[i].Date) {
			t.Fatalf("telemetry order diverges at %d", i)
		}
	}
}

// TestBatchAppendContiguous checks that one Add batch's records stay
// consecutive in the merged read order even when batches from other
// goroutines interleave with it.
func TestBatchAppendContiguous(t *testing.T) {
	s := NewStoreSharded(4)
	const writers, batches, batchLen = 8, 20, 5
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				batch := make([]ECHObservation, batchLen)
				for i := range batch {
					batch[i] = ECHObservation{
						Domain:  []string{"a.com.", "b.org.", "c.net.", "d.io."}[i%4],
						KeyHash: uint64(w*1000 + b*10 + i),
					}
				}
				s.AddECH(batch...)
			}
		}(w)
	}
	wg.Wait()

	obs := s.ECHObservations()
	if len(obs) != writers*batches*batchLen {
		t.Fatalf("lost records: %d", len(obs))
	}
	for i := 0; i < len(obs); i += batchLen {
		base := obs[i].KeyHash
		for j := 1; j < batchLen; j++ {
			if obs[i+j].KeyHash != base+uint64(j) {
				t.Fatalf("batch at %d not contiguous: %d then %d", i, base, obs[i+j].KeyHash)
			}
		}
	}
}

// TestConcurrentReadDuringAppend drives readers across every accessor
// while writers append — meaningful only under -race, where it pins the
// per-shard locking.
func TestConcurrentReadDuringAppend(t *testing.T) {
	s := NewStore()
	d := day(2023, 7, 21)
	s.AddSnapshot(sampleSnapshot(d, "apex"))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				dd := d.AddDate(0, 0, i%7)
				s.AddECH(ECHObservation{Time: dd, Domain: "a.com.", KeyHash: uint64(i)})
				s.AddProbes(ProbeResult{Date: dd, Domain: "b.org."})
				s.AddSnapshot(sampleSnapshot(dd, "apex"))
				s.AddServing(&ServingSnapshot{Date: dd})
				s.AddTelemetry(&TelemetrySeries{Scope: "daily", Date: dd})
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.ECHObservations()
				s.Probes()
				s.Validation()
				s.Days("apex")
				s.SnapshotFor("apex", d)
				s.ServingDays()
				s.TelemetryAll()
				var buf bytes.Buffer
				if err := s.WriteJSON(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestAnomalyCaptureStorage pins the anomaly-capture table: per-day
// upsert semantics, sorted AnomalyDays, and a WriteJSON export that
// carries the bundle in date order.
func TestAnomalyCaptureStorage(t *testing.T) {
	s := NewStore()
	d1 := time.Date(2024, 1, 25, 0, 0, 0, 0, time.UTC)
	d2 := d1.AddDate(0, 0, 7)
	s.AddAnomaly(&AnomalyCapture{
		Date: d2, Exchanges: 100, Errors: 3, StaleServed: 8,
		Availability: 0.97, StaleRatio: 0.08, Violations: 1,
		Events: []AnomalyEvent{{Key: "client.stale", Count: 8}},
		Traces: []AnomalyTrace{{Name: "flap.test.", Flags: []string{"stale"}}},
	})
	s.AddAnomaly(&AnomalyCapture{Date: d1, Exchanges: 50, Availability: 1})

	days := s.AnomalyDays()
	if len(days) != 2 || !days[0].Equal(d1) || !days[1].Equal(d2) {
		t.Fatalf("anomaly days = %v", days)
	}
	cap2, ok := s.AnomalyFor(d2)
	if !ok || cap2.Violations != 1 || len(cap2.Traces) != 1 {
		t.Fatalf("AnomalyFor(d2) = %+v, %v", cap2, ok)
	}
	if _, ok := s.AnomalyFor(d1.AddDate(0, 0, 1)); ok {
		t.Fatal("capture reported for a day without one")
	}

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var e struct {
		Anomalies []*AnomalyCapture `json:"anomalies"`
	}
	if err := json.Unmarshal(buf.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if len(e.Anomalies) != 2 || !e.Anomalies[0].Date.Equal(d1) {
		t.Fatalf("exported anomalies = %+v", e.Anomalies)
	}
	if e.Anomalies[1].Events[0].Key != "client.stale" {
		t.Fatalf("exported events = %+v", e.Anomalies[1].Events)
	}
}

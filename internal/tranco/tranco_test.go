package tranco

import (
	"testing"
	"time"
)

func newSim() *Simulator {
	return NewSimulator(DefaultConfig(1000, 1))
}

func TestListSizeAndUniqueness(t *testing.T) {
	s := newSim()
	for _, date := range []time.Time{
		time.Date(2023, 5, 8, 0, 0, 0, 0, time.UTC),
		time.Date(2023, 9, 1, 0, 0, 0, 0, time.UTC),
	} {
		list := s.ListFor(date)
		if len(list) != 1000 {
			t.Fatalf("list size = %d", len(list))
		}
		seen := map[string]bool{}
		for _, d := range list {
			if seen[d] {
				t.Fatalf("duplicate domain %s on %s", d, date)
			}
			seen[d] = true
		}
	}
}

func TestListDeterminism(t *testing.T) {
	s1, s2 := newSim(), newSim()
	date := time.Date(2023, 6, 15, 0, 0, 0, 0, time.UTC)
	a, b := s1.ListFor(date), s2.ListFor(date)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic list at %d", i)
		}
	}
}

func TestDailyChurn(t *testing.T) {
	s := newSim()
	d1 := s.ListFor(time.Date(2023, 6, 1, 0, 0, 0, 0, time.UTC))
	d2 := s.ListFor(time.Date(2023, 6, 2, 0, 0, 0, 0, time.UTC))
	set1 := map[string]bool{}
	for _, d := range d1 {
		set1[d] = true
	}
	diff := 0
	for _, d := range d2 {
		if !set1[d] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("no churn between consecutive days")
	}
	if diff > len(d2)/2 {
		t.Errorf("churn too high: %d of %d", diff, len(d2))
	}
}

func TestCoreStability(t *testing.T) {
	s := newSim()
	core := s.CoreSet()
	if len(core) == 0 {
		t.Fatal("empty core")
	}
	// Every core1 domain is present on every pre-change day sampled.
	days := []time.Time{
		time.Date(2023, 5, 10, 0, 0, 0, 0, time.UTC),
		time.Date(2023, 6, 20, 0, 0, 0, 0, time.UTC),
		time.Date(2023, 7, 30, 0, 0, 0, 0, time.UTC),
	}
	var lists [][]string
	for _, d := range days {
		lists = append(lists, s.ListFor(d))
	}
	overlap := Overlapping(lists)
	overlapSet := map[string]bool{}
	for _, d := range overlap {
		overlapSet[d] = true
	}
	for _, d := range s.core1[:50] {
		if !overlapSet[d] {
			t.Errorf("core1 domain %s missing from overlap", d)
		}
	}
}

func TestSourceChangeShiftsComposition(t *testing.T) {
	s := newSim()
	before := s.ListFor(SourceChangeDate.AddDate(0, 0, -1))
	after := s.ListFor(SourceChangeDate)
	bset := map[string]bool{}
	for _, d := range before {
		bset[d] = true
	}
	changed := 0
	for _, d := range after {
		if !bset[d] {
			changed++
		}
	}
	if changed == 0 {
		t.Error("source change had no effect on composition")
	}
}

func TestOverlappingAndRankOf(t *testing.T) {
	lists := [][]string{{"a", "b", "c"}, {"b", "c", "d"}, {"c", "b", "x"}}
	ov := Overlapping(lists)
	if len(ov) != 2 || ov[0] != "b" || ov[1] != "c" {
		t.Errorf("Overlapping = %v", ov)
	}
	if Overlapping(nil) != nil {
		t.Error("Overlapping(nil) != nil")
	}
	if RankOf(lists[0], "c") != 3 || RankOf(lists[0], "zz") != 0 {
		t.Error("RankOf wrong")
	}
}

func TestIsCore(t *testing.T) {
	s := newSim()
	if !s.IsCore(s.core1[0]) {
		t.Error("core1[0] not core")
	}
	if s.IsCore("definitely-not-a-domain") {
		t.Error("IsCore false positive")
	}
}

func TestUniverseCoversLists(t *testing.T) {
	s := newSim()
	universe := map[string]bool{}
	for _, d := range s.Universe() {
		universe[d] = true
	}
	for _, d := range s.ListFor(time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)) {
		if !universe[d] {
			t.Fatalf("listed domain %s outside universe", d)
		}
	}
}

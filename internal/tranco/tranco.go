// Package tranco simulates the Tranco top-sites list the paper scans daily:
// a ranked domain population with a stable popular core, a churning tail,
// and the 2023-08-01 source-change event that reshuffled the list
// composition. Absolute size is configurable; ratios (core fraction, churn
// rate) default to values that reproduce the paper's overlapping-domain
// counts (63.5% overlap before the change, 68.4% after).
package tranco

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// SourceChangeDate is the day Tranco swapped Alexa for CrUX+Radar feeds.
var SourceChangeDate = time.Date(2023, 8, 1, 0, 0, 0, 0, time.UTC)

// Config parameterises the simulated list.
type Config struct {
	// Size is the daily list length (the paper's is 1M; simulations
	// default to a scale-free 20k).
	Size int
	// CoreFraction1 is the fraction of the list that is stable before the
	// source change (paper: 634,810 / 1M ≈ 0.635).
	CoreFraction1 float64
	// CoreFraction2 is the stable fraction after the source change
	// (paper: 684,292 / 1M ≈ 0.684).
	CoreFraction2 float64
	// TailPoolFactor sizes the churning candidate pool relative to the
	// tail slots (>1 so daily membership varies).
	TailPoolFactor float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultConfig returns the paper-calibrated configuration at the given
// scale.
func DefaultConfig(size int, seed int64) Config {
	return Config{
		Size:           size,
		CoreFraction1:  0.635,
		CoreFraction2:  0.684,
		TailPoolFactor: 2.5,
		Seed:           seed,
	}
}

// Simulator produces the daily ranked list.
type Simulator struct {
	cfg Config
	// core1/core2 are the stable cores before/after the source change.
	core1, core2 []string
	// tailPool is the shared churn pool.
	tailPool []string
	// universe is every domain name that can ever appear.
	universe []string
}

// tlds weights the synthetic TLD mix.
var tlds = []string{"com", "com", "com", "com", "net", "org", "io", "de", "co", "ru", "cn", "jp", "uk", "fr"}

// NewSimulator builds the population. Domain names are synthetic but unique
// and stable across runs for a given seed.
func NewSimulator(cfg Config) *Simulator {
	rng := rand.New(rand.NewSource(cfg.Seed))
	core1N := int(float64(cfg.Size) * cfg.CoreFraction1)
	core2N := int(float64(cfg.Size) * cfg.CoreFraction2)
	tailSlots := cfg.Size - core1N
	if s2 := cfg.Size - core2N; s2 > tailSlots {
		tailSlots = s2
	}
	poolN := int(float64(tailSlots) * cfg.TailPoolFactor)

	// The second core keeps most of the first (the source change replaced
	// a minority of stable domains) plus some promoted tail names.
	keep := int(float64(core1N) * 0.9)
	if keep > core2N {
		keep = core2N
	}
	total := core1N + (core2N - keep) + poolN
	names := make([]string, total)
	for i := range names {
		names[i] = fmt.Sprintf("site%06d.%s", i, tlds[rng.Intn(len(tlds))])
	}
	s := &Simulator{cfg: cfg, universe: names}
	s.core1 = names[:core1N]
	s.core2 = append(append([]string(nil), s.core1[:keep]...), names[core1N:core1N+(core2N-keep)]...)
	s.tailPool = names[core1N+(core2N-keep):]
	return s
}

// Universe returns every domain that can ever appear in the list.
func (s *Simulator) Universe() []string {
	return append([]string(nil), s.universe...)
}

// IsCore reports whether the domain belongs to either stable core (it is
// present every day of at least one study phase).
func (s *Simulator) IsCore(domain string) bool {
	for _, d := range s.core1 {
		if d == domain {
			return true
		}
	}
	for _, d := range s.core2 {
		if d == domain {
			return true
		}
	}
	return false
}

// CoreSet returns the union of both cores as a set, for bulk membership
// checks.
func (s *Simulator) CoreSet() map[string]bool {
	out := make(map[string]bool, len(s.core1)+len(s.core2))
	for _, d := range s.core1 {
		out[d] = true
	}
	for _, d := range s.core2 {
		out[d] = true
	}
	return out
}

// dayNumber gives a stable integer per calendar day.
func dayNumber(date time.Time) int64 {
	return date.UTC().Truncate(24*time.Hour).Unix() / 86400
}

// ListFor returns the ranked list for the given date: core domains occupy
// the top ranks (with mild daily shuffling), the remainder is a daily
// sample of the tail pool.
func (s *Simulator) ListFor(date time.Time) []string {
	core := s.core1
	if !date.Before(SourceChangeDate) {
		core = s.core2
	}
	tailSlots := s.cfg.Size - len(core)
	rng := rand.New(rand.NewSource(s.cfg.Seed ^ dayNumber(date)*0x9e3779b9))

	// Daily tail sample: choose tailSlots names from the pool.
	perm := rng.Perm(len(s.tailPool))
	tail := make([]string, 0, tailSlots)
	for _, idx := range perm[:tailSlots] {
		tail = append(tail, s.tailPool[idx])
	}

	list := make([]string, 0, s.cfg.Size)
	list = append(list, core...)
	list = append(list, tail...)
	// Mild rank jitter: swap adjacent windows so ranks are not frozen, but
	// core stays broadly above tail (Fig 8's distribution shape).
	for i := 0; i+1 < len(list); i += 2 {
		if rng.Intn(4) == 0 {
			list[i], list[i+1] = list[i+1], list[i]
		}
	}
	return list
}

// Overlapping returns the set of domains present on every sampled day.
func Overlapping(lists [][]string) []string {
	if len(lists) == 0 {
		return nil
	}
	count := map[string]int{}
	for _, l := range lists {
		seen := map[string]bool{}
		for _, d := range l {
			if !seen[d] {
				seen[d] = true
				count[d]++
			}
		}
	}
	var out []string
	for d, c := range count {
		if c == len(lists) {
			out = append(out, d)
		}
	}
	sort.Strings(out)
	return out
}

// RankOf returns the 1-based rank of domain in list, or 0 if absent.
func RankOf(list []string, domain string) int {
	for i, d := range list {
		if d == domain {
			return i + 1
		}
	}
	return 0
}

package transport

import (
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dnswire"
	"repro/internal/doh"
	"repro/internal/simnet"
)

// Errors returned by client exchanges.
var (
	ErrNoUpstreams = errors.New("transport: no healthy upstreams")
	ErrNotProto    = errors.New("transport: service does not speak the member's protocol")
)

// Client is a protocol-agnostic encrypted-DNS stub: it exchanges queries
// with pool members over simnet, speaking whatever envelope each member
// advertises — RFC 8484 DoH request/response envelopes, RFC 7858 DoT
// frames over a persistent per-member connection, or RFC 9250 DoQ
// streams over a per-member session — and fails over to the next
// candidate when simnet failure injection marks a frontend down or the
// envelope exchange fails. It satisfies the scanner's Transport
// interface, so the measurement framework can run its campaigns through
// any protocol mix instead of bare stub queries.
type Client struct {
	Net  *simnet.Network
	Pool *Pool
	// UsePOST selects POST envelopes for DoH members; the default is
	// RFC 8484 GET, whose base64url form is the cache-friendly one.
	UsePOST bool
	// Latency, when non-nil, supplies the per-exchange RTT sample fed to
	// the pool instead of a wall-clock measurement. Exchanges are
	// synchronous in-process calls, so wall time is host scheduling
	// noise; a deterministic Latency function makes the EWMA/P2 routing
	// decisions replayable along with the rest of the simulation.
	Latency func(u *Upstream) time.Duration
	// ChargeLatency additionally charges each sampled exchange — plus
	// per-protocol connection-setup costs: two extra RTTs for a fresh DoT
	// connection (TCP + TLS), one for a fresh DoQ session (QUIC
	// handshake), none for a 0-RTT DoQ resumption — to the network's
	// virtual clock, so queueing delay through the serving layer is
	// observable in campaign timings. Leave it off where bitwise
	// reproducibility matters more than modeled delay: concurrent
	// workers interleave their clock charges nondeterministically, which
	// is why per-day campaign replicas keep their clocks frozen.
	ChargeLatency bool

	mu          sync.Mutex
	qid         uint16
	dotConns    map[netip.AddrPort]*DoTConn
	doqSessions map[netip.AddrPort]*DoQSession
	doqTickets  map[netip.AddrPort]bool

	staleAnswers atomic.Uint64
}

// StaleAnswers counts exchanges answered with an RFC 8767 stale response
// (a frontend served past-TTL data because its recursor was unavailable) —
// the stub-side measure of the staleness windows §4.4.2 quantifies. All
// three envelopes report it: DoH as a response flag, DoT and DoQ as frame
// metadata standing in for the RFC 8914 "Stale Answer" extended error.
func (c *Client) StaleAnswers() uint64 { return c.staleAnswers.Load() }

// NewClient creates a stub over the given network and pool.
func NewClient(net *simnet.Network, pool *Pool) *Client {
	return &Client{
		Net: net, Pool: pool,
		dotConns:    map[netip.AddrPort]*DoTConn{},
		doqSessions: map[netip.AddrPort]*DoQSession{},
		doqTickets:  map[netip.AddrPort]bool{},
	}
}

// nextID allocates a query ID (DoH recommends ID 0 for cacheability; the
// simulated stack keeps real IDs to exercise the ID-rewrite path — except
// on DoQ streams, where the ID is rewritten to the mandatory 0).
func (c *Client) nextID() uint16 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.qid++
	return c.qid
}

// attempt is the outcome of one upstream try.
type attempt struct {
	msg   *dnswire.Message
	stale bool
	// bench marks errors that indicate a broken member (dead address,
	// protocol mismatch, connection death) rather than a struggling
	// recursor behind a healthy transport.
	bench bool
	err   error
}

// Exchange sends the query to the pool, trying candidates in failover
// order. RTT is measured per attempt and folded into the pool's EWMA;
// protocol dispatch happens per member, so a mixed fleet fails over
// across protocols transparently.
func (c *Client) Exchange(q *dnswire.Message) (*dnswire.Message, error) {
	if len(q.Question) == 0 {
		return nil, fmt.Errorf("%w: query without question", doh.ErrBadEnvelope)
	}
	candidates := c.Pool.Candidates(dnswire.CanonicalName(q.Question[0].Name))
	if len(candidates) == 0 {
		return nil, ErrNoUpstreams
	}
	var lastErr error
	var servFail *dnswire.Message
	for _, up := range candidates {
		var at attempt
		switch up.Proto {
		case ProtoDoT:
			at = c.tryDoT(up, q)
		case ProtoDoQ:
			at = c.tryDoQ(up, q)
		default:
			at = c.tryDoH(up, q)
		}
		if at.err != nil {
			if at.bench {
				c.Pool.MarkFailed(up)
			}
			lastErr = fmt.Errorf("upstream %s (%s): %w", up.Name, up.Proto, at.err)
			continue
		}
		// A SERVFAIL is a healthy transport over a struggling recursor:
		// try the next pool member (the paper's Google→Cloudflare
		// fallback), without benching this one. Returned as-is only if
		// every member agrees.
		if at.msg.RCode == dnswire.RCodeServFail {
			servFail = at.msg
			continue
		}
		if at.stale {
			c.staleAnswers.Add(1)
		}
		return at.msg, nil
	}
	if servFail != nil {
		return servFail, nil
	}
	return nil, fmt.Errorf("transport: all %d upstreams failed: %w", len(candidates), lastErr)
}

// observe feeds the pool the attempt's RTT sample and charges the
// exchange (plus any connection-setup cost) to the virtual clock.
func (c *Client) observe(up *Upstream, wall time.Duration, setupRTTs int) {
	if c.Latency == nil {
		c.Pool.ObserveRTT(up, wall)
		return
	}
	d := c.Latency(up)
	c.Pool.ObserveRTT(up, d)
	if c.ChargeLatency {
		c.Net.Clock.Advance(d + time.Duration(setupRTTs)*d)
	}
}

// tryDoH performs one RFC 8484 exchange with a DoH member.
func (c *Client) tryDoH(up *Upstream, q *dnswire.Message) attempt {
	var req *doh.Request
	var err error
	if c.UsePOST {
		req, err = doh.NewPOSTRequest(q)
	} else {
		req, err = doh.NewGETRequest(q)
	}
	if err != nil {
		return attempt{err: err}
	}
	svc, err := c.Net.Service(up.Addr)
	if err != nil {
		// Failure injection: the address or port is down.
		return attempt{bench: true, err: err}
	}
	ex, ok := svc.(doh.Exchanger)
	if !ok {
		return attempt{bench: true, err: fmt.Errorf("%w: %v is not DoH", ErrNotProto, up.Addr)}
	}
	start := time.Now()
	resp := ex.ExchangeDoH(req)
	c.observe(up, time.Since(start), 0)
	m, err := resp.Message()
	if err != nil {
		// A 502 is the frontend reporting recursor trouble over a
		// healthy transport — move on without benching, like the
		// SERVFAIL case. Anything else (4xx, bad media type) is a
		// protocol mismatch worth a cooldown.
		return attempt{bench: resp.Status != doh.StatusServFailUpstream, err: err}
	}
	return attempt{msg: m, stale: resp.Stale}
}

// tryDoT performs one exchange over the member's persistent DoT
// connection, dialing one (and charging its TCP+TLS setup) if none is
// cached. A connection that died mid-stream is dropped and the member
// benched, so the query fails over to the next candidate.
func (c *Client) tryDoT(up *Upstream, q *dnswire.Message) attempt {
	conn, setup, err := c.dotConn(up)
	if err != nil {
		return attempt{bench: true, err: err}
	}
	start := time.Now()
	m, stale, err := conn.Exchange(q)
	if err != nil {
		c.dropDoT(up.Addr)
		return attempt{bench: true, err: err}
	}
	c.observe(up, time.Since(start), setup)
	return attempt{msg: m, stale: stale}
}

// dotConn returns the cached live connection to the member, dialing a
// fresh one when needed; setupRTTs reports the handshake round-trips the
// dial cost (two: TCP then TLS 1.3).
func (c *Client) dotConn(up *Upstream) (conn *DoTConn, setupRTTs int, err error) {
	c.mu.Lock()
	conn = c.dotConns[up.Addr]
	c.mu.Unlock()
	if conn != nil {
		return conn, 0, nil
	}
	svc, err := c.Net.Service(up.Addr)
	if err != nil {
		return nil, 0, err
	}
	d, ok := svc.(DoTDialer)
	if !ok {
		return nil, 0, fmt.Errorf("%w: %v is not DoT", ErrNotProto, up.Addr)
	}
	conn = d.DialDoT(c.Net, up.Addr)
	c.mu.Lock()
	c.dotConns[up.Addr] = conn
	c.mu.Unlock()
	return conn, 2, nil
}

// dropDoT discards a dead connection so the next try redials.
func (c *Client) dropDoT(ap netip.AddrPort) {
	c.mu.Lock()
	delete(c.dotConns, ap)
	c.mu.Unlock()
}

// tryDoQ performs one exchange as a fresh stream on the member's DoQ
// session, dialing a session if none is cached — a full QUIC handshake
// (one setup RTT) the first time, a 0-RTT resumption (no setup cost) once
// the client holds the member's ticket. The mandatory zero message ID is
// rewritten on the way out and the caller's ID restored on the answer.
func (c *Client) tryDoQ(up *Upstream, q *dnswire.Message) attempt {
	sess, setup, err := c.doqSession(up)
	if err != nil {
		return attempt{bench: true, err: err}
	}
	id := q.ID
	wireQ := *q
	wireQ.ID = 0
	start := time.Now()
	m, stale, err := sess.Exchange(&wireQ)
	if err != nil {
		if errors.Is(err, ErrStreamReset) {
			// Per-stream failure: the session is fine, the query is not.
			return attempt{err: err}
		}
		c.dropDoQ(up.Addr)
		return attempt{bench: true, err: err}
	}
	c.observe(up, time.Since(start), setup)
	m.ID = id
	return attempt{msg: m, stale: stale}
}

// doqSession returns the cached live session to the member, establishing
// one when needed; setupRTTs is 1 for a full handshake, 0 for a 0-RTT
// resumption.
func (c *Client) doqSession(up *Upstream) (sess *DoQSession, setupRTTs int, err error) {
	c.mu.Lock()
	sess = c.doqSessions[up.Addr]
	resumed := c.doqTickets[up.Addr]
	c.mu.Unlock()
	if sess != nil {
		return sess, 0, nil
	}
	svc, err := c.Net.Service(up.Addr)
	if err != nil {
		return nil, 0, err
	}
	d, ok := svc.(DoQDialer)
	if !ok {
		return nil, 0, fmt.Errorf("%w: %v is not DoQ", ErrNotProto, up.Addr)
	}
	sess = d.DialDoQ(c.Net, up.Addr, resumed)
	setup := 1
	if resumed {
		setup = 0
	}
	c.mu.Lock()
	c.doqSessions[up.Addr] = sess
	c.doqTickets[up.Addr] = true // the handshake issued a resumption ticket
	c.mu.Unlock()
	return sess, setup, nil
}

// dropDoQ discards a dead session; the resumption ticket survives, so the
// next dial to the same member rides 0-RTT.
func (c *Client) dropDoQ(ap netip.AddrPort) {
	c.mu.Lock()
	delete(c.doqSessions, ap)
	c.mu.Unlock()
}

// Query builds and exchanges a recursion-desired query for (name, type).
func (c *Client) Query(name string, t dnswire.Type, dnssecOK bool) (*dnswire.Message, error) {
	return c.Exchange(dnswire.NewQuery(c.nextID(), name, t, dnssecOK))
}

package transport

import (
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"repro/internal/dnswire"
	"repro/internal/doh"
	"repro/internal/obs"
	"repro/internal/simnet"
)

// Errors returned by client exchanges.
var (
	ErrNoUpstreams = errors.New("transport: no healthy upstreams")
	ErrNotProto    = errors.New("transport: service does not speak the member's protocol")
)

// Client is a protocol-agnostic encrypted-DNS stub: it exchanges queries
// with pool members over simnet, speaking whatever envelope each member
// advertises — RFC 8484 DoH request/response envelopes, RFC 7858 DoT
// frames over a persistent per-member connection, or RFC 9250 DoQ
// streams over a per-member session. Which members are attempted, in
// what simulated overlap, and whose answer wins is the pluggable
// Strategy's decision; the client supplies the candidate ordering and
// the per-protocol dialers. It satisfies the scanner's Transport
// interface, so the measurement framework can run its campaigns through
// any protocol mix and any resolution strategy instead of bare stub
// queries.
type Client struct {
	Net  *simnet.Network
	Pool *Pool
	// Strategy is the resolution policy driving each exchange; nil means
	// SerialFailover (the pre-strategy behavior).
	Strategy Strategy
	// UsePOST selects POST envelopes for DoH members; the default is
	// RFC 8484 GET, whose base64url form is the cache-friendly one.
	UsePOST bool
	// Latency, when non-nil, supplies the per-exchange RTT sample fed to
	// the pool instead of a wall-clock measurement. Exchanges are
	// synchronous in-process calls, so wall time is host scheduling
	// noise; a deterministic Latency function makes the EWMA/P2 routing
	// decisions — and the Race/Hedge completion-time comparisons —
	// replayable along with the rest of the simulation.
	Latency func(u *Upstream) time.Duration
	// ChargeLatency additionally charges each exchange's critical path —
	// including per-protocol connection-setup costs: two extra RTTs for
	// a fresh DoT connection (TCP + TLS), one for a fresh DoQ session
	// (QUIC handshake), none for a 0-RTT DoQ resumption — to the
	// network's virtual clock, so queueing delay through the serving
	// layer is observable in campaign timings. Racing and hedging charge
	// the winner's completion time, not the sum of attempts: overlapped
	// work costs wall time only along the critical path. Leave it off
	// where bitwise reproducibility matters more than modeled delay:
	// concurrent workers interleave their clock charges
	// nondeterministically, which is why per-day campaign replicas keep
	// their clocks frozen.
	ChargeLatency bool
	// Tracer, when non-nil, head-samples exchanges into span traces on
	// the virtual clock (see obs.Tracer). When the tracer also carries a
	// tail-retention policy, every exchange is traced into a scratch
	// buffer and the client marks anomalies (error, SERVFAIL, stale,
	// failover, race, hedge) with trace flags so the tail predicate can
	// keep them. Nil traces nothing and costs one nil check per exchange.
	Tracer *obs.Tracer
	// Recorder, when non-nil, receives flight-recorder events for the
	// anomaly tier: stable winner-side kinds (client.error, client.stale,
	// client.negative) plus volatile strategy and pool-churn kinds. Nil
	// records nothing.
	Recorder *obs.Recorder
	// ExchangeLatency, when non-nil, observes each successful exchange's
	// critical-path virtual duration; sampled exchanges attach their
	// trace ID as the bucket exemplar.
	ExchangeLatency *obs.Histogram
	// ReuseAnswers opts into answer-message recycling: the *dnswire.Message
	// an exchange returns stays valid only until this client's next
	// exchange begins, at which point its memory is reclaimed for the next
	// answer. Callers that consume each answer before issuing the next
	// query (the workload engine, benchmarks, any serial driver) get a
	// near-allocation-free exchange loop; callers that retain answers or
	// exchange concurrently must leave it off — the default keeps the
	// returned message caller-owned forever.
	ReuseAnswers bool

	mu          sync.Mutex
	qid         uint16
	dotConns    map[netip.AddrPort]*DoTConn
	doqSessions map[netip.AddrPort]*DoQSession
	doqTickets  map[netip.AddrPort]bool
	lastAns     *dnswire.Message

	// scratch recycles per-exchange candidate buffers. Exchange is the
	// hottest path in a campaign (every simulated query lands here), and
	// the pool ordering is consumed synchronously inside Resolve, so the
	// backing array can be returned as soon as the strategy is done with
	// it — only the winning *Upstream escapes via the Outcome.
	scratch sync.Pool
	// msgPool recycles attempt answer messages. Every dialer decodes into
	// a pooled message; losers go back via Discard as soon as the strategy
	// rules them out, and winners return only under ReuseAnswers (via the
	// lastAns swap at the next exchange).
	msgPool sync.Pool

	staleAnswers    obs.Counter
	negativeAnswers obs.Counter
	errAnswers      obs.Counter
	servfailAnswers obs.Counter

	// Strategy telemetry (see StrategyStats).
	exchanges       obs.Counter
	attempts        obs.Counter
	races           obs.Counter
	losersCancelled obs.Counter
	hedges          obs.Counter
	wasted          obs.Counter
	winsByProto     [3]obs.Counter
}

// StaleAnswers counts exchanges answered with an RFC 8767 stale response
// (a frontend served past-TTL data because its recursor was unavailable) —
// the stub-side measure of the staleness windows §4.4.2 quantifies. All
// three envelopes report it: DoH as a response flag, DoT and DoQ as frame
// metadata standing in for the RFC 8914 "Stale Answer" extended error.
func (c *Client) StaleAnswers() uint64 { return c.staleAnswers.Load() }

// NegativeAnswers counts exchanges whose winning answer was an RFC 2308
// negative (NXDOMAIN, or NOERROR with an empty answer section — NODATA),
// the same classification the answer cache applies. Campaign serving
// snapshots record this stub-side count rather than the frontends'
// negative-hit counters: strategies that race or hedge touch a
// nondeterministic number of frontends per exchange, but each exchange
// has exactly one winner, so per-exchange counters stay byte-identical
// between serial and pipelined campaign runs.
func (c *Client) NegativeAnswers() uint64 { return c.negativeAnswers.Load() }

// Errors counts exchanges that failed outright — every candidate errored
// and nothing (fresh, stale, or SERVFAIL) could be served. Together with
// ServFails it is the badness numerator of the SLO engine's availability
// objective.
func (c *Client) Errors() uint64 { return c.errAnswers.Load() }

// ServFails counts exchanges whose winning answer was a SERVFAIL — the
// recursor struggled over a healthy transport and no stale cover existed.
func (c *Client) ServFails() uint64 { return c.servfailAnswers.Load() }

// NewClient creates a stub over the given network and pool.
func NewClient(net *simnet.Network, pool *Pool) *Client {
	return &Client{
		Net: net, Pool: pool,
		dotConns:    map[netip.AddrPort]*DoTConn{},
		doqSessions: map[netip.AddrPort]*DoQSession{},
		doqTickets:  map[netip.AddrPort]bool{},
	}
}

// exchangeScratch is the reusable per-exchange working set pooled by
// Client.scratch.
type exchangeScratch struct {
	cand []*Upstream
}

// getMsg pops a recycled answer message for a dial attempt to decode
// into.
func (c *Client) getMsg() *dnswire.Message {
	if m, ok := c.msgPool.Get().(*dnswire.Message); ok {
		return m
	}
	return new(dnswire.Message)
}

func (c *Client) putMsg(m *dnswire.Message) {
	c.msgPool.Put(m)
}

// Discard implements Driver: return a losing attempt's answer message to
// the recycle pool. Strategies call it for attempts whose answer can no
// longer escape the exchange, so recycling is unconditionally safe here —
// only the winner's message reaches the caller.
func (c *Client) Discard(at Attempt) {
	if at.Msg != nil {
		c.putMsg(at.Msg)
	}
}

// SetReuseAnswers toggles ReuseAnswers (see the field's contract). It
// exists so serial drivers like the workload engine can opt a client in
// for exactly the span they are its sole user.
func (c *Client) SetReuseAnswers(on bool) {
	if !on {
		// Leaving reuse mode: the last answer may still be in the
		// caller's hands, so forget it rather than recycling it.
		c.mu.Lock()
		c.lastAns = nil
		c.mu.Unlock()
	}
	c.ReuseAnswers = on
}

// reclaimLast recycles the previous exchange's winning answer under the
// ReuseAnswers contract: by the time the next exchange begins, the caller
// is done with it.
func (c *Client) reclaimLast() {
	c.mu.Lock()
	last := c.lastAns
	c.lastAns = nil
	c.mu.Unlock()
	if last != nil {
		c.putMsg(last)
	}
}

// nextID allocates a query ID (DoH recommends ID 0 for cacheability; the
// simulated stack keeps real IDs to exercise the ID-rewrite path — except
// on DoQ streams, where the ID is rewritten to the mandatory 0).
func (c *Client) nextID() uint16 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.qid++
	return c.qid
}

// strategy returns the active resolution strategy (serial failover when
// none is configured).
func (c *Client) strategy() Strategy {
	if c.Strategy != nil {
		return c.Strategy
	}
	return SerialFailover{}
}

// Exchange sends the query to the pool: candidate selection (the pool's
// failover ordering), then strategy dispatch — serial failover, a
// happy-eyeballs protocol race, or a hedged duplicate, per the
// configured Strategy. Per-attempt RTTs fold into the pool's EWMA and
// quantile windows; protocol dispatch happens per member, so a mixed
// fleet races and fails over across protocols transparently.
func (c *Client) Exchange(q *dnswire.Message) (*dnswire.Message, error) {
	return c.ExchangePreferring(q, ProtoAny)
}

// ExchangePreferring is Exchange with a per-call protocol preference:
// pool members speaking pref are stable-partitioned to the front of the
// candidate ordering (healthy before benched as always), so the
// strategy attempts — and a race's head start — favor the caller's
// protocol. ProtoAny is plain Exchange. This is the per-client
// preference hook the workload engine's simulated stubs resolve
// through; one client's preference is a per-call argument, not client
// state, so a single Client serves a million differently-preferenced
// stubs.
func (c *Client) ExchangePreferring(q *dnswire.Message, pref Protocol) (*dnswire.Message, error) {
	if len(q.Question) == 0 {
		return nil, fmt.Errorf("%w: query without question", doh.ErrBadEnvelope)
	}
	if c.ReuseAnswers {
		c.reclaimLast()
	}
	name := dnswire.CanonicalName(q.Question[0].Name)
	// Write the canonical form back so every downstream consumer — wire
	// packing, cache keys, trace labels — reuses this one normalisation
	// instead of re-canonicalising (and re-allocating) per site.
	q.Question[0].Name = name
	sc, _ := c.scratch.Get().(*exchangeScratch)
	if sc == nil {
		sc = new(exchangeScratch)
	}
	candidates := c.Pool.CandidatesPreferringAppend(sc.cand[:0], name, pref)
	if len(candidates) == 0 {
		sc.cand = candidates
		c.scratch.Put(sc)
		return nil, ErrNoUpstreams
	}
	tr := c.Tracer.Start(name)
	if tr != nil {
		tr.Add("receive", 0, 0,
			obs.L("qtype", q.Question[0].Type.String()),
			obs.L("strategy", c.strategy().Name()))
	}
	out := c.strategy().Resolve(c, q, candidates, tr)
	// Resolve is synchronous and strategies do not retain the slice, so
	// the buffer can go back in the pool before the outcome is processed.
	sc.cand = candidates
	c.scratch.Put(sc)
	if tr != nil {
		// Shape flags feed the tracer's tail predicate: an exchange that
		// raced, hedged, or failed over is anomalous enough to retain.
		if out.Races > 0 {
			tr.Flag(obs.FlagRace)
		}
		if out.Hedges > 0 {
			tr.Flag(obs.FlagHedge)
		}
		if out.Attempts > 1 && out.Races == 0 && out.Hedges == 0 {
			tr.Flag(obs.FlagFailover)
		}
	}
	c.account(out)
	if out.Err != nil {
		c.errAnswers.Add(1)
		c.Recorder.Emit("client.error")
		tr.Flag(obs.FlagError)
		if tr != nil {
			tr.Add("fail", out.Elapsed, 0, obs.L("err", out.Err.Error()))
		}
		c.Tracer.Finish(tr, out.Elapsed)
		return nil, out.Err
	}
	if out.Winner.Stale {
		c.staleAnswers.Add(1)
		c.Recorder.Emit("client.stale")
		tr.Flag(obs.FlagStale)
	}
	if m := out.Winner.Msg; m.RCode == dnswire.RCodeNXDomain ||
		(m.RCode == dnswire.RCodeNoError && len(m.Answer) == 0) {
		c.negativeAnswers.Add(1)
		c.Recorder.Emit("client.negative")
	}
	if out.Winner.Msg.RCode == dnswire.RCodeServFail {
		c.servfailAnswers.Add(1)
		tr.Flag(obs.FlagServFail)
	}
	if tr != nil {
		tr.Add("commit", out.Elapsed, 0, obs.L("winner", out.Winner.Upstream.Name))
	}
	c.Tracer.Finish(tr, out.Elapsed)
	if c.ExchangeLatency != nil {
		if tr != nil {
			c.ExchangeLatency.ObserveExemplar(out.Elapsed, tr.ID)
		} else {
			c.ExchangeLatency.Observe(out.Elapsed)
		}
	}
	if c.ReuseAnswers {
		c.mu.Lock()
		c.lastAns = out.Winner.Msg
		c.mu.Unlock()
	}
	return out.Winner.Msg, nil
}

// account folds one exchange's Outcome into the client's telemetry and
// emits the flight-recorder events describing the exchange's shape. The
// shape events are volatile: which members an exchange dials — and hence
// whether it raced, hedged, or failed over — depends on pool state other
// workers mutated concurrently.
func (c *Client) account(out Outcome) {
	c.exchanges.Add(1)
	c.attempts.Add(uint64(out.Attempts))
	c.races.Add(uint64(out.Races))
	c.losersCancelled.Add(uint64(out.LosersCancelled))
	c.hedges.Add(uint64(out.Hedges))
	c.wasted.Add(uint64(out.Wasted))
	if c.Recorder != nil {
		if out.Races > 0 {
			c.Recorder.Emit("strategy.race")
		}
		if out.Hedges > 0 {
			c.Recorder.Emit("strategy.hedge")
		}
		if out.LosersCancelled > 0 {
			c.Recorder.Emit("strategy.cancel")
		}
		if out.Attempts > 1 && out.Races == 0 && out.Hedges == 0 {
			c.Recorder.Emit("strategy.failover")
		}
	}
	if out.Err == nil {
		if p := out.Winner.Upstream.Proto; p >= 0 && int(p) < len(c.winsByProto) {
			c.winsByProto[p].Add(1)
		}
	}
}

// StrategyStats snapshots the client's resolution telemetry: attempt
// overhead, races/hedges fired, losers cancelled, wasted upstream
// queries, and the winner-protocol distribution.
func (c *Client) StrategyStats() StrategyStats {
	st := StrategyStats{
		Strategy:        c.strategy().Name(),
		Exchanges:       c.exchanges.Load(),
		Attempts:        c.attempts.Load(),
		Races:           c.races.Load(),
		LosersCancelled: c.losersCancelled.Load(),
		Hedges:          c.hedges.Load(),
		Wasted:          c.wasted.Load(),
		WinsByProto:     map[Protocol]uint64{},
	}
	for p := range c.winsByProto {
		if n := c.winsByProto[p].Load(); n > 0 {
			st.WinsByProto[Protocol(p)] = n
		}
	}
	return st
}

// bindMetrics registers the client's per-exchange counters onto a
// registry. The existing accessors (StaleAnswers, StrategyStats) keep
// working as views over the same handles.
func (c *Client) bindMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.RegisterCounter(&c.exchanges, "client_exchanges_total")
	reg.RegisterCounter(&c.staleAnswers, "client_stale_answers_total")
	reg.RegisterCounter(&c.negativeAnswers, "client_negative_answers_total")
	reg.RegisterCounter(&c.errAnswers, "client_errors_total")
	reg.RegisterCounter(&c.servfailAnswers, "client_servfail_total")
	reg.RegisterCounter(&c.attempts, "strategy_attempts_total")
	reg.RegisterCounter(&c.races, "strategy_races_total")
	reg.RegisterCounter(&c.losersCancelled, "strategy_losers_cancelled_total")
	reg.RegisterCounter(&c.hedges, "strategy_hedges_total")
	reg.RegisterCounter(&c.wasted, "strategy_wasted_total")
	for p := range c.winsByProto {
		reg.RegisterCounter(&c.winsByProto[p], "strategy_wins_total",
			obs.L("proto", Protocol(p).String()))
	}
	if c.ExchangeLatency == nil {
		c.ExchangeLatency = obs.NewHistogram(obs.DefaultLatencyBuckets()...)
	}
	reg.RegisterHistogram(c.ExchangeLatency, "exchange_latency_seconds")
}

// Dial implements Driver: one synchronous attempt against the member
// over its envelope protocol. A non-nil tr threads server-side span
// recording through the envelope into the frontend.
func (c *Client) Dial(up *Upstream, q *dnswire.Message, tr *obs.Trace) Attempt {
	var at Attempt
	switch up.Proto {
	case ProtoDoT:
		at = c.tryDoT(up, q, tr)
	case ProtoDoQ:
		at = c.tryDoQ(up, q, tr)
	default:
		at = c.tryDoH(up, q, tr)
	}
	at.Upstream = up
	return at
}

// Bench implements Driver: report a transport-level failure to the pool.
// A member the pool removes outright (Pool.RemoveAfter) has its cached
// DoT connection and DoQ session dropped too, so long campaigns don't
// accumulate dead simnet connections for upstreams that will never be
// offered again.
func (c *Client) Bench(up *Upstream) {
	if c.Pool.MarkFailed(up) {
		if c.Recorder != nil {
			c.Recorder.Emit("pool.remove", obs.L("member", up.Name))
			c.Recorder.Emit("conn.evict", obs.L("member", up.Name))
		}
		c.evict(up.Addr)
	} else if c.Recorder != nil {
		c.Recorder.Emit("pool.cooldown", obs.L("member", up.Name))
	}
}

// Charge implements Driver: advance the virtual clock by the exchange's
// critical-path duration. A no-op without a deterministic latency model
// (wall-clock costs are host scheduling noise) or with ChargeLatency
// off.
func (c *Client) Charge(d time.Duration) {
	if c.ChargeLatency && c.Latency != nil && d > 0 {
		c.Net.Clock.Advance(d)
	}
}

// Quantile implements Driver: the member's tracked latency quantile.
func (c *Client) Quantile(up *Upstream, q float64) (time.Duration, bool) {
	return c.Pool.RTTQuantile(up, q)
}

// Benched implements Driver: whether the member is cooling down.
func (c *Client) Benched(up *Upstream) bool {
	return c.Pool.IsBenched(up)
}

// evict drops every piece of cached connection state for an upstream
// removed from the pool (the 0-RTT ticket included — the member is gone,
// not resting).
func (c *Client) evict(ap netip.AddrPort) {
	c.mu.Lock()
	delete(c.dotConns, ap)
	delete(c.doqSessions, ap)
	delete(c.doqTickets, ap)
	c.mu.Unlock()
}

// sample feeds the pool the attempt's RTT and returns the (RTT, Cost)
// pair for the attempt: cost includes setupRTTs extra round-trips of
// connection establishment. The virtual clock is not touched here — the
// strategy charges its critical path once the exchange's shape is known.
func (c *Client) sample(up *Upstream, wall time.Duration, setupRTTs int) (rtt, cost time.Duration) {
	d := wall
	if c.Latency != nil {
		d = c.Latency(up)
	}
	c.Pool.ObserveRTT(up, d)
	return d, d + time.Duration(setupRTTs)*d
}

// dialScratch is the per-attempt DoH envelope working set: the request
// and response structs, plus the buffer the query packs (and the GET
// parameter encodes) into. The response's Body doubles as the reply
// buffer a pooled server appends the answer wire into.
type dialScratch struct {
	req  doh.Request
	resp doh.Response
	buf  []byte
}

var dialScratchPool = sync.Pool{New: func() any { return new(dialScratch) }}

// tryDoH performs one RFC 8484 exchange with a DoH member. The doh
// package stays observability-free, so the pooled and traced variants
// ride type assertions: servers implementing ExchangeDoHPooled
// (DoHServer does) fill the scratch response in place; legacy servers
// fall back to ExchangeDoHTraced or plain ExchangeDoH.
func (c *Client) tryDoH(up *Upstream, q *dnswire.Message, tr *obs.Trace) Attempt {
	svc, err := c.Net.Service(up.Addr)
	if err != nil {
		// Failure injection: the address or port is down.
		return Attempt{Bench: true, Err: err}
	}
	ex, ok := svc.(doh.Exchanger)
	if !ok {
		return Attempt{Bench: true, Err: fmt.Errorf("%w: %v is not DoH", ErrNotProto, up.Addr)}
	}
	ds := dialScratchPool.Get().(*dialScratch)
	defer func() {
		ds.buf = trimRecycledBuf(ds.buf)
		ds.resp.Body = trimRecycledBuf(ds.resp.Body)
		dialScratchPool.Put(ds)
	}()
	if c.UsePOST {
		wire, err := q.AppendPack(ds.buf[:0])
		ds.buf = wire
		if err != nil {
			return Attempt{Err: err}
		}
		ds.req = doh.Request{
			Method: "POST", Path: doh.Path,
			ContentType: dnswire.MediaTypeDNSMessage, Body: wire,
		}
	} else {
		param, buf, err := dnswire.AppendEncodeDoHParam(q, ds.buf)
		ds.buf = buf
		if err != nil {
			return Attempt{Err: err}
		}
		ds.req = doh.Request{Method: "GET", Path: doh.Path, DNSParam: param}
	}
	start := time.Now()
	resp := &ds.resp
	if px, ok := ex.(interface {
		ExchangeDoHPooled(*doh.Request, *doh.Response, *obs.Trace)
	}); ok {
		px.ExchangeDoHPooled(&ds.req, resp, tr)
	} else if tx, ok := ex.(interface {
		ExchangeDoHTraced(*doh.Request, *obs.Trace) *doh.Response
	}); ok && tr != nil {
		resp = tx.ExchangeDoHTraced(&ds.req, tr)
	} else {
		resp = ex.ExchangeDoH(&ds.req)
	}
	rtt, cost := c.sample(up, time.Since(start), 0)
	m := c.getMsg()
	if err := resp.DecodeInto(m); err != nil {
		c.putMsg(m)
		// A 502 is the frontend reporting recursor trouble over a
		// healthy transport — move on without benching, like the
		// SERVFAIL case. Anything else (4xx, bad media type) is a
		// protocol mismatch worth a cooldown.
		return Attempt{Bench: resp.Status != doh.StatusServFailUpstream, Err: err, RTT: rtt, Cost: cost}
	}
	return Attempt{Msg: m, Stale: resp.Stale, RTT: rtt, Cost: cost}
}

// tryDoT performs one exchange over the member's persistent DoT
// connection, dialing one (and paying its TCP+TLS setup) if none is
// cached. A connection that died mid-stream is dropped, so the query
// fails over to the next candidate.
func (c *Client) tryDoT(up *Upstream, q *dnswire.Message, tr *obs.Trace) Attempt {
	conn, setup, err := c.dotConn(up)
	if err != nil {
		return Attempt{Bench: true, Err: err}
	}
	start := time.Now()
	m := c.getMsg()
	stale, err := conn.ExchangePooled(q, m, tr)
	if err != nil {
		c.putMsg(m)
		c.dropDoT(up.Addr)
		return Attempt{Bench: true, Err: err}
	}
	rtt, cost := c.sample(up, time.Since(start), setup)
	return Attempt{Msg: m, Stale: stale, RTT: rtt, Cost: cost}
}

// dotConn returns the cached live connection to the member, dialing a
// fresh one when needed; setupRTTs reports the handshake round-trips the
// dial cost (two: TCP then TLS 1.3).
func (c *Client) dotConn(up *Upstream) (conn *DoTConn, setupRTTs int, err error) {
	c.mu.Lock()
	conn = c.dotConns[up.Addr]
	c.mu.Unlock()
	if conn != nil {
		return conn, 0, nil
	}
	svc, err := c.Net.Service(up.Addr)
	if err != nil {
		return nil, 0, err
	}
	d, ok := svc.(DoTDialer)
	if !ok {
		return nil, 0, fmt.Errorf("%w: %v is not DoT", ErrNotProto, up.Addr)
	}
	conn = d.DialDoT(c.Net, up.Addr)
	c.mu.Lock()
	c.dotConns[up.Addr] = conn
	c.mu.Unlock()
	return conn, 2, nil
}

// dropDoT discards a dead connection so the next try redials.
func (c *Client) dropDoT(ap netip.AddrPort) {
	c.mu.Lock()
	delete(c.dotConns, ap)
	c.mu.Unlock()
}

// tryDoQ performs one exchange as a fresh stream on the member's DoQ
// session, dialing a session if none is cached — a full QUIC handshake
// (one setup RTT) the first time, a 0-RTT resumption (no setup cost) once
// the client holds the member's ticket. The mandatory zero message ID is
// rewritten on the way out — the exchange is synchronous, so the ID is
// zeroed in place and restored before returning — and the caller's ID
// restored on the answer.
func (c *Client) tryDoQ(up *Upstream, q *dnswire.Message, tr *obs.Trace) Attempt {
	sess, setup, err := c.doqSession(up)
	if err != nil {
		return Attempt{Bench: true, Err: err}
	}
	id := q.ID
	q.ID = 0
	start := time.Now()
	m := c.getMsg()
	stale, err := sess.ExchangePooled(q, m, tr)
	q.ID = id
	if err != nil {
		c.putMsg(m)
		if errors.Is(err, ErrStreamReset) {
			// Per-stream failure: the session is fine, the query is not.
			return Attempt{Err: err}
		}
		c.dropDoQ(up.Addr)
		return Attempt{Bench: true, Err: err}
	}
	rtt, cost := c.sample(up, time.Since(start), setup)
	m.ID = id
	return Attempt{Msg: m, Stale: stale, RTT: rtt, Cost: cost}
}

// doqSession returns the cached live session to the member, establishing
// one when needed; setupRTTs is 1 for a full handshake, 0 for a 0-RTT
// resumption.
func (c *Client) doqSession(up *Upstream) (sess *DoQSession, setupRTTs int, err error) {
	c.mu.Lock()
	sess = c.doqSessions[up.Addr]
	resumed := c.doqTickets[up.Addr]
	c.mu.Unlock()
	if sess != nil {
		return sess, 0, nil
	}
	svc, err := c.Net.Service(up.Addr)
	if err != nil {
		return nil, 0, err
	}
	d, ok := svc.(DoQDialer)
	if !ok {
		return nil, 0, fmt.Errorf("%w: %v is not DoQ", ErrNotProto, up.Addr)
	}
	sess = d.DialDoQ(c.Net, up.Addr, resumed)
	setup := 1
	if resumed {
		setup = 0
	}
	c.mu.Lock()
	c.doqSessions[up.Addr] = sess
	c.doqTickets[up.Addr] = true // the handshake issued a resumption ticket
	c.mu.Unlock()
	return sess, setup, nil
}

// dropDoQ discards a dead session; the resumption ticket survives, so the
// next dial to the same member rides 0-RTT.
func (c *Client) dropDoQ(ap netip.AddrPort) {
	c.mu.Lock()
	delete(c.doqSessions, ap)
	c.mu.Unlock()
}

// Query builds and exchanges a recursion-desired query for (name, type).
func (c *Client) Query(name string, t dnswire.Type, dnssecOK bool) (*dnswire.Message, error) {
	return c.Exchange(dnswire.NewQuery(c.nextID(), name, t, dnssecOK))
}

package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dnswire"
)

// doqFixture stands up one DoQ frontend and dials a session directly.
func doqFixture(t *testing.T) (*DoQSession, *DoQServer, *stubRecursor) {
	t.Helper()
	net, clock := testNet()
	recursor := &stubRecursor{ttl: 300}
	srv := NewDoQServer("doq0", recursor, NewCache(clock, 4, 64), 0)
	srv.Register(net, frontendAddr(0))
	return srv.DialDoQ(net, frontendAddr(0), false), srv, recursor
}

// TestDoQStreamIsolation is the satellite edge: a protocol violation on
// one stream (non-zero message ID → DOQ_PROTOCOL_ERROR reset) must not
// disturb concurrent or subsequent streams on the same session.
func TestDoQStreamIsolation(t *testing.T) {
	sess, srv, _ := doqFixture(t)

	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i == 5 {
				// The bad citizen: a non-zero ID resets its own stream.
				bad := dnswire.NewQuery(99, "bad.test", dnswire.TypeA, false)
				if _, _, err := sess.Exchange(bad); !errors.Is(err, ErrStreamReset) {
					errs[i] = fmt.Errorf("bad stream got %v, want ErrStreamReset", err)
				}
				return
			}
			q := dnswire.NewQuery(0, fmt.Sprintf("s%d.test", i), dnswire.TypeA, false)
			m, _, err := sess.Exchange(q)
			if err != nil {
				errs[i] = err
				return
			}
			if len(m.Answer) != 1 {
				errs[i] = fmt.Errorf("answer count %d", len(m.Answer))
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("stream %d: %v", i, err)
		}
	}
	st := srv.SessionStats()
	if st.Resets != 1 {
		t.Errorf("resets = %d, want 1", st.Resets)
	}
	if st.Streams != n {
		t.Errorf("streams = %d, want %d", st.Streams, n)
	}
	// The session survives its reset stream.
	if _, _, err := sess.Exchange(dnswire.NewQuery(0, "after.test", dnswire.TypeA, false)); err != nil {
		t.Errorf("session dead after an isolated stream reset: %v", err)
	}
}

// TestDoQClientZeroRTTResumption checks the session lifecycle the client
// maintains: the first session to a member is a full handshake, a
// session re-established after a drop resumes with 0-RTT on the retained
// ticket, and the setup costs land on the virtual clock.
func TestDoQClientZeroRTTResumption(t *testing.T) {
	client, fl, _, net, clock := newTestFleet(t, 1, BalanceRoundRobin, ProtoDoQ)
	const rtt = 10 * time.Millisecond
	client.Latency = func(*Upstream) time.Duration { return rtt }
	client.ChargeLatency = true
	srv := fl.Servers[0].(*DoQServer)

	// First exchange: QUIC handshake (1 RTT) + exchange (1 RTT).
	t0 := clock.Now()
	if _, err := client.Query("one.test", dnswire.TypeA, false); err != nil {
		t.Fatal(err)
	}
	if got := clock.Now().Sub(t0); got != 2*rtt {
		t.Errorf("fresh session exchange charged %v, want %v (handshake + exchange)", got, 2*rtt)
	}
	if st := srv.SessionStats(); st.Sessions != 1 || st.Resumed != 0 {
		t.Fatalf("after first dial: %+v", st)
	}

	// Second exchange rides the cached session: no setup at all.
	t0 = clock.Now()
	if _, err := client.Query("two.test", dnswire.TypeA, false); err != nil {
		t.Fatal(err)
	}
	if got := clock.Now().Sub(t0); got != rtt {
		t.Errorf("cached session exchange charged %v, want %v", got, rtt)
	}

	// Kill and revive the frontend: the session died, but the ticket
	// survives, so the redial is 0-RTT — only the exchange is charged.
	net.SetAddrDown(fl.Addrs[0].Addr(), true)
	if _, err := client.Query("down.test", dnswire.TypeA, false); err == nil {
		t.Fatal("query succeeded through a dead session")
	}
	net.SetAddrDown(fl.Addrs[0].Addr(), false)
	clock.Advance(DefaultCooldown + time.Second)
	t0 = clock.Now()
	if _, err := client.Query("three.test", dnswire.TypeA, false); err != nil {
		t.Fatal(err)
	}
	if got := clock.Now().Sub(t0); got != rtt {
		t.Errorf("0-RTT resumption charged %v, want %v (no handshake)", got, rtt)
	}
	st := srv.SessionStats()
	if st.Sessions != 2 || st.Resumed != 1 {
		t.Errorf("after resumption: %+v", st)
	}
}

// TestDoQWireIDIsZero: the client rewrites the message ID to the
// mandatory zero on the stream and restores the caller's ID on the
// answer (RFC 9250 §4.2.1).
func TestDoQWireIDIsZero(t *testing.T) {
	client, _, recursor, _, _ := newTestFleet(t, 1, BalanceRoundRobin, ProtoDoQ)
	_ = recursor
	q := dnswire.NewQuery(12345, "id.test", dnswire.TypeA, false)
	m, err := client.Exchange(q)
	if err != nil {
		t.Fatal(err)
	}
	if m.ID != 12345 {
		t.Errorf("caller ID not restored: got %d", m.ID)
	}
	// Direct session use enforces the zero-ID rule the client satisfies.
	sess, _, _ := doqFixture(t)
	if _, _, err := sess.Exchange(q); !errors.Is(err, ErrStreamReset) {
		t.Errorf("non-zero wire ID accepted: %v", err)
	}
}

package transport

import (
	"net/netip"
	"sync"
	"time"

	"repro/internal/dnswire"
	"repro/internal/doh"
	"repro/internal/obs"
	"repro/internal/simnet"
)

// DoHServer is the RFC 8484 envelope over a Frontend: it terminates DoH
// request envelopes at a simnet addr:port, decodes them with the doh
// codec, resolves through the shared engine, and re-encodes. It
// implements doh.Exchanger, which is how the Client reaches it after the
// addr:port service lookup.
type DoHServer struct {
	Frontend
}

// NewDoHServer builds a DoH frontend over the handler.
func NewDoHServer(name string, handler simnet.DNSHandler, cache *Cache, cooldown time.Duration) *DoHServer {
	return &DoHServer{Frontend: Frontend{
		Name: name, Proto: ProtoDoH, Handler: handler,
		Cache: cache, FailureCooldown: cooldown,
	}}
}

// Register attaches the frontend to the network at ap.
func (s *DoHServer) Register(n *simnet.Network, ap netip.AddrPort) {
	n.RegisterService(ap, s)
}

// ExchangeDoH implements doh.Exchanger: decode the envelope, resolve, and
// re-encode. A hard upstream failure with nothing stale becomes a 502 —
// DoH is the one envelope with a status channel distinct from the DNS
// RCode.
func (s *DoHServer) ExchangeDoH(req *doh.Request) *doh.Response {
	return s.ExchangeDoHTraced(req, nil)
}

// ExchangeDoHTraced is ExchangeDoH with server-side span recording onto
// tr. The doh package itself stays observability-free; traced clients
// reach this method by type assertion.
func (s *DoHServer) ExchangeDoHTraced(req *doh.Request, tr *obs.Trace) *doh.Response {
	resp := new(doh.Response)
	s.ExchangeDoHPooled(req, resp, tr)
	return resp
}

// dohScratch is the per-request server-side scratch: the decoded query
// message and the GET-parameter decode buffer. A DoH exchange is fully
// synchronous, so the scratch is released before ExchangeDoHPooled
// returns.
type dohScratch struct {
	q   dnswire.Message
	buf []byte
}

var dohScratchPool = sync.Pool{New: func() any { return new(dohScratch) }}

// ExchangeDoHPooled is the reuse-API exchange: the request decodes into
// pooled server scratch and the answer wire is appended into resp's
// existing Body capacity, so a warm client/server pair exchanges with no
// envelope allocations. All other resp fields are overwritten.
func (s *DoHServer) ExchangeDoHPooled(req *doh.Request, resp *doh.Response, tr *obs.Trace) {
	body := resp.Body[:0]
	sc := dohScratchPool.Get().(*dohScratch)
	defer func() {
		sc.buf = trimRecycledBuf(sc.buf)
		dohScratchPool.Put(sc)
	}()
	buf, status, err := doh.DecodeRequestInto(&sc.q, req, sc.buf[:0])
	sc.buf = buf
	if err != nil {
		*resp = doh.Response{Status: status, Body: body}
		return
	}
	ans, err := s.resolveAppend(&sc.q, body, tr)
	if err != nil {
		*resp = doh.Response{Status: doh.StatusServFailUpstream}
		return
	}
	*resp = doh.Response{
		Status:      doh.StatusOK,
		ContentType: dnswire.MediaTypeDNSMessage,
		Body:        ans.Wire,
		MaxAge:      ans.MaxAge,
		Stale:       ans.Stale,
	}
}

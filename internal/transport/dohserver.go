package transport

import (
	"net/netip"
	"time"

	"repro/internal/dnswire"
	"repro/internal/doh"
	"repro/internal/obs"
	"repro/internal/simnet"
)

// DoHServer is the RFC 8484 envelope over a Frontend: it terminates DoH
// request envelopes at a simnet addr:port, decodes them with the doh
// codec, resolves through the shared engine, and re-encodes. It
// implements doh.Exchanger, which is how the Client reaches it after the
// addr:port service lookup.
type DoHServer struct {
	Frontend
}

// NewDoHServer builds a DoH frontend over the handler.
func NewDoHServer(name string, handler simnet.DNSHandler, cache *Cache, cooldown time.Duration) *DoHServer {
	return &DoHServer{Frontend: Frontend{
		Name: name, Proto: ProtoDoH, Handler: handler,
		Cache: cache, FailureCooldown: cooldown,
	}}
}

// Register attaches the frontend to the network at ap.
func (s *DoHServer) Register(n *simnet.Network, ap netip.AddrPort) {
	n.RegisterService(ap, s)
}

// ExchangeDoH implements doh.Exchanger: decode the envelope, resolve, and
// re-encode. A hard upstream failure with nothing stale becomes a 502 —
// DoH is the one envelope with a status channel distinct from the DNS
// RCode.
func (s *DoHServer) ExchangeDoH(req *doh.Request) *doh.Response {
	return s.ExchangeDoHTraced(req, nil)
}

// ExchangeDoHTraced is ExchangeDoH with server-side span recording onto
// tr. The doh package itself stays observability-free; traced clients
// reach this method by type assertion.
func (s *DoHServer) ExchangeDoHTraced(req *doh.Request, tr *obs.Trace) *doh.Response {
	q, status, err := doh.DecodeRequest(req)
	if err != nil {
		return &doh.Response{Status: status}
	}
	ans, err := s.ResolveTraced(q, tr)
	if err != nil {
		return &doh.Response{Status: doh.StatusServFailUpstream}
	}
	return &doh.Response{
		Status:      doh.StatusOK,
		ContentType: dnswire.MediaTypeDNSMessage,
		Body:        ans.Wire,
		MaxAge:      ans.MaxAge,
		Stale:       ans.Stale,
	}
}

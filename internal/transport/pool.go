package transport

import (
	"fmt"
	"math/rand"
	"net/netip"
	"slices"
	"sort"
	"sync"
	"time"

	"repro/internal/simnet"
)

// fnv64aString is FNV-1a over a string without hash.Hash machinery —
// bit-identical to hash/fnv's New64a + Write, minus its per-call
// allocations.
const (
	fnv64Offset uint64 = 14695981039346656037
	fnv64Prime  uint64 = 1099511628211
)

func fnv64aString(s string) uint64 {
	h := fnv64Offset
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnv64Prime
	}
	return h
}

// Balance selects how the pool orders upstreams for a query. The shapes
// mirror the dnscrypt-proxy server-selection strategies the related work
// ships: random pairs weighted by measured RTT, pure lowest-RTT, strict
// rotation, and query-name affinity. (Resolution policy — how many of
// the ordered candidates are attempted, raced, or hedged — is the
// Strategy layer's job; the balancer only produces the ordering.)
type Balance int

const (
	// BalanceP2 is power-of-two-choices: draw two random healthy
	// upstreams, use the one with the lower smoothed RTT. The fleet
	// default — near-optimal load spread with minimal coordination.
	BalanceP2 Balance = iota
	// BalanceEWMA always picks the lowest smoothed RTT.
	BalanceEWMA
	// BalanceRoundRobin rotates through healthy upstreams.
	BalanceRoundRobin
	// BalanceHashAffinity pins a query name to an upstream, maximising
	// per-frontend cache locality when frontends do not share a cache.
	BalanceHashAffinity
)

// String names the balancer for flags and stats output.
func (b Balance) String() string {
	switch b {
	case BalanceP2:
		return "p2"
	case BalanceEWMA:
		return "ewma"
	case BalanceRoundRobin:
		return "roundrobin"
	case BalanceHashAffinity:
		return "hash"
	default:
		return fmt.Sprintf("balance(%d)", int(b))
	}
}

// ParseBalance resolves a flag value to a Balance.
func ParseBalance(name string) (Balance, error) {
	for _, b := range []Balance{BalanceP2, BalanceEWMA, BalanceRoundRobin, BalanceHashAffinity} {
		if b.String() == name {
			return b, nil
		}
	}
	return 0, fmt.Errorf("transport: unknown balance %q (want p2, ewma, roundrobin, or hash)", name)
}

// ewmaWeight is the smoothing factor for RTT averaging, matching an
// N≈10-sample moving window (the decay dnscrypt-proxy uses).
const ewmaWeight = 2.0 / 11.0

// DefaultCooldown is how long (virtual time) a failed upstream is benched
// before the pool offers it again.
const DefaultCooldown = 60 * time.Second

// quantileWindow is how many recent RTT samples each upstream retains
// for quantile estimation; quantileMinSamples is how many must exist
// before RTTQuantile reports an estimate — hedge timers armed off a
// couple of cold-cache samples would fire on noise.
const (
	quantileWindow     = 64
	quantileMinSamples = 8
)

// Upstream is one pool member: a frontend address, the envelope protocol
// it speaks, and its measured state. All mutable fields are guarded by
// the owning pool's lock.
type Upstream struct {
	Name  string
	Addr  netip.AddrPort
	Proto Protocol

	rttSeconds float64 // EWMA; 0 until the first sample
	sampled    bool
	queries    uint64
	failures   uint64
	downUntil  time.Time

	// consecFails counts failures since the last successful exchange;
	// Pool.RemoveAfter removes the member when it crosses the limit.
	consecFails int

	// cooldownTotal accumulates the virtual time the member has actually
	// spent benched — scheduled cooldown minus any remainder forgiven by
	// a successful exchange. It is the occupancy column of the member's
	// health scorecard.
	cooldownTotal time.Duration

	// rttRing is the sliding sample window behind RTTQuantile.
	rttRing [quantileWindow]float64
	ringLen int
	ringPos int

	// synthSeed caches the FNV-1a hash of Addr.String() for
	// SyntheticLatency, computed once at Pool.Add so the latency model
	// costs no per-draw allocation. Zero means unregistered (a member
	// built outside Add); the draw falls back to hashing on the fly.
	synthSeed uint64
}

// UpstreamStats is a read-only snapshot of one member — including its
// health scorecard: the smoothed RTT estimate, the current
// consecutive-failure streak, and the cumulative virtual time spent in
// cooldown.
type UpstreamStats struct {
	Name     string
	Addr     netip.AddrPort
	Proto    Protocol
	Queries  uint64
	Failures uint64
	RTT      time.Duration
	Down     bool
	// ConsecFails is the member's current failure streak (reset by any
	// successful exchange) — how close it is to RemoveAfter eviction.
	ConsecFails int
	// CooldownTotal is the virtual time the member has spent benched,
	// net of cooldown remainders forgiven by successful exchanges.
	CooldownTotal time.Duration
}

// Pool is a load-balanced, protocol-agnostic set of encrypted-DNS
// upstreams with failover bookkeeping: DoH, DoT, and DoQ members mix
// freely, and the balancers see only addresses and RTTs.
type Pool struct {
	// Cooldown is how long a failed upstream is benched in virtual time;
	// zero selects DefaultCooldown.
	Cooldown time.Duration
	// RemoveAfter removes a member from the pool outright once it has
	// failed this many consecutive times with no successful exchange in
	// between; 0 (the default) benches but never removes. Long campaigns
	// use it to shed permanently-dead frontends — MarkFailed reports the
	// removal so the client can release the member's cached DoT
	// connection and DoQ session. A removed member no longer appears in
	// Stats.
	RemoveAfter int

	clock   *simnet.Clock
	balance Balance

	mu     sync.Mutex
	ups    []*Upstream
	rng    *rand.Rand
	rrNext int
	// qbuf is RTTQuantile's sort scratch (guarded by mu, at most
	// quantileWindow entries) so hedge-timer arming costs no per-exchange
	// allocation.
	qbuf []float64
}

// NewPool creates an empty pool using the given balancer. The seed
// drives the balancer's random draws, keeping simulations replayable.
func NewPool(clock *simnet.Clock, balance Balance, seed int64) *Pool {
	return &Pool{clock: clock, balance: balance, rng: rand.New(rand.NewSource(seed))}
}

// Add appends a member speaking the given envelope protocol and returns
// it.
func (p *Pool) Add(name string, addr netip.AddrPort, proto Protocol) *Upstream {
	p.mu.Lock()
	defer p.mu.Unlock()
	u := &Upstream{Name: name, Addr: addr, Proto: proto, synthSeed: fnv64aString(addr.String())}
	p.ups = append(p.ups, u)
	return u
}

// Len returns the member count.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.ups)
}

// Balance returns the pool's load-balancing policy.
func (p *Pool) Balance() Balance { return p.balance }

// Healthy returns how many members are currently un-benched — the fleet
// capacity a chaos run watches recover after flaps.
func (p *Pool) Healthy() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.clock.Now()
	n := 0
	for _, u := range p.ups {
		if !u.downUntil.After(now) {
			n++
		}
	}
	return n
}

// Candidates returns the failover order for a query: the balancer's pick
// first, the remaining healthy members next, and benched members last so
// a fully-down fleet still gets retried rather than erroring instantly.
// Strategies consume this ordering — serial failover walks it, racing
// takes the top two across protocols, hedging pairs the head with a
// same-protocol understudy.
func (p *Pool) Candidates(qname string) []*Upstream {
	return p.CandidatesAppend(nil, qname)
}

// CandidatesAppend is Candidates writing into dst (reused from length
// zero, grown as needed) so per-exchange callers can recycle one buffer
// instead of allocating a fresh ordering per query. The returned slice
// holds exactly the ordering Candidates would have returned.
func (p *Pool) CandidatesAppend(dst []*Upstream, qname string) []*Upstream {
	return p.CandidatesPreferringAppend(dst, qname, ProtoAny)
}

// CandidatesPreferringAppend is CandidatesAppend with a per-caller
// protocol preference: members speaking pref are stable-partitioned to
// the front of the healthy segment (and of the benched tail), so a
// client that prefers, say, DoQ fails over within its protocol before
// crossing to another — the per-stub preference the workload engine
// deals across its simulated population. ProtoAny keeps the pool's
// ordering untouched; the preference never promotes a benched member
// over a healthy one.
func (p *Pool) CandidatesPreferringAppend(dst []*Upstream, qname string, pref Protocol) []*Upstream {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.clock.Now()
	dst = dst[:0]
	for _, u := range p.ups {
		if !u.downUntil.After(now) {
			dst = append(dst, u)
		}
	}
	healthy := len(dst)
	for _, u := range p.ups {
		if u.downUntil.After(now) {
			dst = append(dst, u)
		}
	}
	if healthy > 0 {
		// Rotate the balancer's pick to the front in place, keeping the
		// rest of the healthy ordering intact.
		pick := p.pick(dst[:healthy], qname)
		top := dst[pick]
		copy(dst[1:pick+1], dst[:pick])
		dst[0] = top
	}
	// Benched members that fail soonest-to-recover first.
	benched := dst[healthy:]
	// slices.SortFunc, not sort.Slice: the latter allocates its
	// reflect-based swapper on every call, even with nothing to sort.
	slices.SortFunc(benched, func(a, b *Upstream) int { return a.downUntil.Compare(b.downUntil) })
	if pref != ProtoAny {
		preferProto(dst[:healthy], pref)
		preferProto(benched, pref)
	}
	return dst
}

// preferProto stable-partitions seg so members speaking pref come
// first, preserving relative order on both sides. Fleets are small, so
// the shift-based partition beats allocating a scratch slice.
func preferProto(seg []*Upstream, pref Protocol) {
	k := 0
	for i, u := range seg {
		if u.Proto != pref {
			continue
		}
		if i != k {
			copy(seg[k+1:i+1], seg[k:i])
			seg[k] = u
		}
		k++
	}
}

// explorationN makes the RTT-driven balancers pick a uniformly random
// member one draw in every explorationN: a member whose EWMA was seeded
// by one slow (e.g. cold-cache) sample only refreshes its estimate when
// traffic reaches it, so without exploration it could be starved forever.
const explorationN = 16

// pick selects an index into healthy per the balancer. Caller holds p.mu.
func (p *Pool) pick(healthy []*Upstream, qname string) int {
	n := len(healthy)
	if n == 1 {
		return 0
	}
	switch p.balance {
	case BalanceP2, BalanceEWMA:
		if p.rng.Intn(explorationN) == 0 {
			return p.rng.Intn(n)
		}
	}
	switch p.balance {
	case BalanceP2:
		a := p.rng.Intn(n)
		b := p.rng.Intn(n - 1)
		if b >= a {
			b++
		}
		if healthy[b].effectiveRTT() < healthy[a].effectiveRTT() {
			return b
		}
		return a
	case BalanceEWMA:
		best := 0
		for i := 1; i < n; i++ {
			if healthy[i].effectiveRTT() < healthy[best].effectiveRTT() {
				best = i
			}
		}
		return best
	case BalanceRoundRobin:
		p.rrNext++
		return (p.rrNext - 1) % n
	case BalanceHashAffinity:
		return int(fnv64aString(qname) % uint64(n))
	default:
		return 0
	}
}

// effectiveRTT orders members for RTT-sensitive balancers; unsampled
// members sort first so new frontends get probed promptly.
func (u *Upstream) effectiveRTT() float64 {
	if !u.sampled {
		return -1
	}
	return u.rttSeconds
}

// ObserveRTT folds a latency sample into the member's moving average and
// quantile window. A sample means the member just completed an exchange,
// so any bench state is cleared: a demonstrably-serving upstream is
// healthy.
func (p *Pool) ObserveRTT(u *Upstream, d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	sample := d.Seconds()
	if !u.sampled {
		u.rttSeconds, u.sampled = sample, true
	} else {
		u.rttSeconds = u.rttSeconds*(1-ewmaWeight) + sample*ewmaWeight
	}
	u.rttRing[u.ringPos] = sample
	u.ringPos = (u.ringPos + 1) % quantileWindow
	if u.ringLen < quantileWindow {
		u.ringLen++
	}
	u.queries++
	u.consecFails = 0
	// A successful exchange forgives the rest of any running cooldown;
	// the occupancy scorecard only charges time actually served.
	if now := p.clock.Now(); u.downUntil.After(now) {
		u.cooldownTotal -= u.downUntil.Sub(now)
	}
	u.downUntil = time.Time{}
}

// RTTQuantile reports the member's q-quantile RTT over its sliding
// sample window — the per-upstream latency estimate the Hedge strategy
// arms its timer with (dnscrypt-proxy keeps the same kind of per-server
// estimator to drive its candidate ordering). ok is false until
// quantileMinSamples samples exist: a hedge threshold derived from a
// couple of cold-cache exchanges would fire on noise, not tail latency.
func (p *Pool) RTTQuantile(u *Upstream, q float64) (d time.Duration, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if u.ringLen < quantileMinSamples {
		return 0, false
	}
	buf := append(p.qbuf[:0], u.rttRing[:u.ringLen]...)
	p.qbuf = buf
	sort.Float64s(buf)
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	idx := int(q * float64(len(buf)-1))
	return time.Duration(buf[idx] * float64(time.Second)), true
}

// IsBenched reports whether the member is currently cooling down after
// a failure — still offered by Candidates as a last resort, but not a
// member racing or hedging strategies should duplicate load onto.
func (p *Pool) IsBenched(u *Upstream) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return u.downUntil.After(p.clock.Now())
}

// MarkFailed benches the member for the cooldown window. When the
// member's consecutive-failure count crosses RemoveAfter it is instead
// removed from the pool outright; removed reports that, so the caller
// can release any per-member connection state.
func (p *Pool) MarkFailed(u *Upstream) (removed bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	u.failures++
	u.consecFails++
	cd := p.Cooldown
	if cd == 0 {
		cd = DefaultCooldown
	}
	now := p.clock.Now()
	until := now.Add(cd)
	// Charge only the cooldown extension to the occupancy scorecard: a
	// re-failure mid-bench extends the window, it does not double-bill it.
	start := now
	if u.downUntil.After(start) {
		start = u.downUntil
	}
	if until.After(start) {
		u.cooldownTotal += until.Sub(start)
	}
	u.downUntil = until
	if p.RemoveAfter > 0 && u.consecFails >= p.RemoveAfter {
		for i, m := range p.ups {
			if m == u {
				p.ups = append(p.ups[:i], p.ups[i+1:]...)
				break
			}
		}
		return true
	}
	return false
}

// SyntheticLatency returns a deterministic per-member latency source for
// Client.Latency: each upstream gets a stable pseudo-random RTT in
// [base, base+spread), derived from its address. It stands in for network
// distance in simulations that need replayable EWMA/P2 routing.
func SyntheticLatency(base, spread time.Duration) func(*Upstream) time.Duration {
	return func(u *Upstream) time.Duration {
		if spread <= 0 {
			return base
		}
		h := u.synthSeed
		if h == 0 {
			h = fnv64aString(u.Addr.String())
		}
		return base + time.Duration(h%uint64(spread))
	}
}

// Stats snapshots every member.
func (p *Pool) Stats() []UpstreamStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.clock.Now()
	out := make([]UpstreamStats, len(p.ups))
	for i, u := range p.ups {
		out[i] = UpstreamStats{
			Name:          u.Name,
			Addr:          u.Addr,
			Proto:         u.Proto,
			Queries:       u.queries,
			Failures:      u.failures,
			RTT:           time.Duration(u.rttSeconds * float64(time.Second)),
			Down:          u.downUntil.After(now),
			ConsecFails:   u.consecFails,
			CooldownTotal: u.cooldownTotal,
		}
	}
	return out
}

package transport

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/netip"
	"sort"
	"sync"
	"time"

	"repro/internal/simnet"
)

// Strategy selects how the pool orders upstreams for a query. The shapes
// mirror the dnscrypt-proxy server-selection strategies the related work
// ships: random pairs weighted by measured RTT, pure lowest-RTT, strict
// rotation, and query-name affinity.
type Strategy int

const (
	// StrategyP2 is power-of-two-choices: draw two random healthy
	// upstreams, use the one with the lower smoothed RTT. The fleet
	// default — near-optimal load spread with minimal coordination.
	StrategyP2 Strategy = iota
	// StrategyEWMA always picks the lowest smoothed RTT.
	StrategyEWMA
	// StrategyRoundRobin rotates through healthy upstreams.
	StrategyRoundRobin
	// StrategyHashAffinity pins a query name to an upstream, maximising
	// per-frontend cache locality when frontends do not share a cache.
	StrategyHashAffinity
)

// String names the strategy for flags and stats output.
func (s Strategy) String() string {
	switch s {
	case StrategyP2:
		return "p2"
	case StrategyEWMA:
		return "ewma"
	case StrategyRoundRobin:
		return "roundrobin"
	case StrategyHashAffinity:
		return "hash"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// ParseStrategy resolves a flag value to a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	for _, s := range []Strategy{StrategyP2, StrategyEWMA, StrategyRoundRobin, StrategyHashAffinity} {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("transport: unknown strategy %q (want p2, ewma, roundrobin, or hash)", name)
}

// ewmaWeight is the smoothing factor for RTT averaging, matching an
// N≈10-sample moving window (the decay dnscrypt-proxy uses).
const ewmaWeight = 2.0 / 11.0

// DefaultCooldown is how long (virtual time) a failed upstream is benched
// before the pool offers it again.
const DefaultCooldown = 60 * time.Second

// Upstream is one pool member: a frontend address, the envelope protocol
// it speaks, and its measured state. All mutable fields are guarded by
// the owning pool's lock.
type Upstream struct {
	Name  string
	Addr  netip.AddrPort
	Proto Protocol

	rttSeconds float64 // EWMA; 0 until the first sample
	sampled    bool
	queries    uint64
	failures   uint64
	downUntil  time.Time
}

// UpstreamStats is a read-only snapshot of one member.
type UpstreamStats struct {
	Name     string
	Addr     netip.AddrPort
	Proto    Protocol
	Queries  uint64
	Failures uint64
	RTT      time.Duration
	Down     bool
}

// Pool is a load-balanced, protocol-agnostic set of encrypted-DNS
// upstreams with failover bookkeeping: DoH, DoT, and DoQ members mix
// freely, and the selection strategies see only addresses and RTTs.
type Pool struct {
	// Cooldown is how long a failed upstream is benched in virtual time;
	// zero selects DefaultCooldown.
	Cooldown time.Duration

	clock    *simnet.Clock
	strategy Strategy

	mu     sync.Mutex
	ups    []*Upstream
	rng    *rand.Rand
	rrNext int
}

// NewPool creates an empty pool using the given selection strategy. The
// seed drives the strategy's random draws, keeping simulations replayable.
func NewPool(clock *simnet.Clock, strategy Strategy, seed int64) *Pool {
	return &Pool{clock: clock, strategy: strategy, rng: rand.New(rand.NewSource(seed))}
}

// Add appends a member speaking the given envelope protocol and returns
// it.
func (p *Pool) Add(name string, addr netip.AddrPort, proto Protocol) *Upstream {
	p.mu.Lock()
	defer p.mu.Unlock()
	u := &Upstream{Name: name, Addr: addr, Proto: proto}
	p.ups = append(p.ups, u)
	return u
}

// Len returns the member count.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.ups)
}

// Strategy returns the pool's selection strategy.
func (p *Pool) Strategy() Strategy { return p.strategy }

// Healthy returns how many members are currently un-benched — the fleet
// capacity a chaos run watches recover after flaps.
func (p *Pool) Healthy() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.clock.Now()
	n := 0
	for _, u := range p.ups {
		if !u.downUntil.After(now) {
			n++
		}
	}
	return n
}

// Candidates returns the failover order for a query: the strategy's pick
// first, the remaining healthy members next, and benched members last so
// a fully-down fleet still gets retried rather than erroring instantly.
func (p *Pool) Candidates(qname string) []*Upstream {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.clock.Now()
	var healthy, benched []*Upstream
	for _, u := range p.ups {
		if u.downUntil.After(now) {
			benched = append(benched, u)
		} else {
			healthy = append(healthy, u)
		}
	}
	if len(healthy) > 0 {
		pick := p.pick(healthy, qname)
		ordered := make([]*Upstream, 0, len(p.ups))
		ordered = append(ordered, healthy[pick])
		ordered = append(ordered, healthy[:pick]...)
		ordered = append(ordered, healthy[pick+1:]...)
		healthy = ordered
	}
	// Benched members that fail soonest-to-recover first.
	sort.Slice(benched, func(i, j int) bool { return benched[i].downUntil.Before(benched[j].downUntil) })
	return append(healthy, benched...)
}

// explorationN makes the RTT-driven strategies pick a uniformly random
// member one draw in every explorationN: a member whose EWMA was seeded
// by one slow (e.g. cold-cache) sample only refreshes its estimate when
// traffic reaches it, so without exploration it could be starved forever.
const explorationN = 16

// pick selects an index into healthy per the strategy. Caller holds p.mu.
func (p *Pool) pick(healthy []*Upstream, qname string) int {
	n := len(healthy)
	if n == 1 {
		return 0
	}
	switch p.strategy {
	case StrategyP2, StrategyEWMA:
		if p.rng.Intn(explorationN) == 0 {
			return p.rng.Intn(n)
		}
	}
	switch p.strategy {
	case StrategyP2:
		a := p.rng.Intn(n)
		b := p.rng.Intn(n - 1)
		if b >= a {
			b++
		}
		if healthy[b].effectiveRTT() < healthy[a].effectiveRTT() {
			return b
		}
		return a
	case StrategyEWMA:
		best := 0
		for i := 1; i < n; i++ {
			if healthy[i].effectiveRTT() < healthy[best].effectiveRTT() {
				best = i
			}
		}
		return best
	case StrategyRoundRobin:
		p.rrNext++
		return (p.rrNext - 1) % n
	case StrategyHashAffinity:
		h := fnv.New64a()
		h.Write([]byte(qname))
		return int(h.Sum64() % uint64(n))
	default:
		return 0
	}
}

// effectiveRTT orders members for RTT-sensitive strategies; unsampled
// members sort first so new frontends get probed promptly.
func (u *Upstream) effectiveRTT() float64 {
	if !u.sampled {
		return -1
	}
	return u.rttSeconds
}

// ObserveRTT folds a latency sample into the member's moving average. A
// sample means the member just completed an exchange, so any bench state
// is cleared: a demonstrably-serving upstream is healthy.
func (p *Pool) ObserveRTT(u *Upstream, d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	sample := d.Seconds()
	if !u.sampled {
		u.rttSeconds, u.sampled = sample, true
	} else {
		u.rttSeconds = u.rttSeconds*(1-ewmaWeight) + sample*ewmaWeight
	}
	u.queries++
	u.downUntil = time.Time{}
}

// MarkFailed benches the member for the cooldown window.
func (p *Pool) MarkFailed(u *Upstream) {
	p.mu.Lock()
	defer p.mu.Unlock()
	u.failures++
	cd := p.Cooldown
	if cd == 0 {
		cd = DefaultCooldown
	}
	u.downUntil = p.clock.Now().Add(cd)
}

// SyntheticLatency returns a deterministic per-member latency source for
// Client.Latency: each upstream gets a stable pseudo-random RTT in
// [base, base+spread), derived from its address. It stands in for network
// distance in simulations that need replayable EWMA/P2 routing.
func SyntheticLatency(base, spread time.Duration) func(*Upstream) time.Duration {
	return func(u *Upstream) time.Duration {
		if spread <= 0 {
			return base
		}
		h := fnv.New64a()
		h.Write([]byte(u.Addr.String()))
		return base + time.Duration(h.Sum64()%uint64(spread))
	}
}

// Stats snapshots every member.
func (p *Pool) Stats() []UpstreamStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.clock.Now()
	out := make([]UpstreamStats, len(p.ups))
	for i, u := range p.ups {
		out[i] = UpstreamStats{
			Name:     u.Name,
			Addr:     u.Addr,
			Proto:    u.Proto,
			Queries:  u.queries,
			Failures: u.failures,
			RTT:      time.Duration(u.rttSeconds * float64(time.Second)),
			Down:     u.downUntil.After(now),
		}
	}
	return out
}

package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"repro/internal/dnswire"
	"repro/internal/obs"
	"repro/internal/simnet"
)

// Errors surfaced by the DoT and DoQ session layers.
var (
	// ErrConnClosed reports a dead connection: the peer address went down
	// mid-stream (failure injection) or a framing violation closed it.
	ErrConnClosed = errors.New("transport: connection closed")
	// ErrBadFrame reports a malformed frame; per RFC 7858 the connection
	// is not usable afterwards.
	ErrBadFrame = errors.New("transport: malformed frame")
)

// DoTServer is the RFC 7858 envelope over a Frontend: clients dial a
// persistent connection to its simnet addr:port (conventionally :853) and
// exchange 2-byte length-prefixed DNS messages over it. Queries may be
// pipelined — several frames written before any response is read — and
// responses come back out of order, so clients match them by query ID.
type DoTServer struct {
	Frontend
}

// NewDoTServer builds a DoT frontend over the handler.
func NewDoTServer(name string, handler simnet.DNSHandler, cache *Cache, cooldown time.Duration) *DoTServer {
	return &DoTServer{Frontend: Frontend{
		Name: name, Proto: ProtoDoT, Handler: handler,
		Cache: cache, FailureCooldown: cooldown,
	}}
}

// Register attaches the frontend to the network at ap.
func (s *DoTServer) Register(n *simnet.Network, ap netip.AddrPort) {
	n.RegisterService(ap, s)
}

// DoTDialer is the service interface a DoT frontend registers in simnet;
// the Client type-asserts it after the addr:port service lookup and
// dials a persistent connection.
type DoTDialer interface {
	DialDoT(n *simnet.Network, ap netip.AddrPort) *DoTConn
}

// DialDoT implements DoTDialer: it opens a persistent connection bound to
// (n, ap) so every subsequent operation re-checks reachability — a mid-
// stream SetAddrDown kills the connection exactly like a TCP reset.
func (s *DoTServer) DialDoT(n *simnet.Network, ap netip.AddrPort) *DoTConn {
	return &DoTConn{srv: s, net: n, ap: ap, pending: map[uint16]dotReply{}}
}

// dotReply is one server→client response frame plus the out-of-band
// stale marker (standing in for the RFC 8914 "Stale Answer" EDE).
type dotReply struct {
	wire  []byte
	stale bool
}

// DoTConn is one persistent DoT connection. The client side writes raw
// length-prefixed bytes — frames may be split across writes, and one
// write may carry several pipelined frames — and reads back response
// frames that the server emits in reverse arrival order per write (the
// deterministic stand-in for a real resolver answering cheap queries
// first). Exchange layers ID-matching on top so concurrent callers can
// pipeline queries over one connection safely.
type DoTConn struct {
	srv *DoTServer
	net *simnet.Network
	ap  netip.AddrPort

	mu      sync.Mutex
	rbuf    []byte              // client→server bytes not yet framed
	replies []dotReply          // response frames not yet read
	pending map[uint16]dotReply // responses drained by other callers, demuxed by ID
	traces  map[uint16]*obs.Trace
	closed  bool
}

// check verifies the connection is still usable: not closed by a framing
// error and with the server address still reachable.
func (c *DoTConn) check() error {
	if c.closed {
		return ErrConnClosed
	}
	if _, err := c.net.Service(c.ap); err != nil {
		c.closed = true
		return fmt.Errorf("%w: %v", ErrConnClosed, err)
	}
	return nil
}

// Frame wraps a packed DNS message in the RFC 1035 §4.2.2 2-byte length
// prefix DoT uses.
func Frame(wire []byte) []byte {
	out := make([]byte, 2+len(wire))
	binary.BigEndian.PutUint16(out, uint16(len(wire)))
	copy(out[2:], wire)
	return out
}

// Write delivers raw bytes to the server side of the connection. Partial
// frames accumulate — a length prefix split across two writes is
// reassembled — and every frame completed by this write is resolved, with
// the batch's responses emitted in reverse arrival order (pipelined
// queries complete out of order). A malformed frame closes the
// connection, per RFC 7858's guidance for framing errors.
func (c *DoTConn) Write(p []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.check(); err != nil {
		return err
	}
	c.rbuf = append(c.rbuf, p...)
	var batch []*dnswire.Message
	for {
		if len(c.rbuf) < 2 {
			break
		}
		n := int(binary.BigEndian.Uint16(c.rbuf))
		if len(c.rbuf) < 2+n {
			break
		}
		q, err := dnswire.Unpack(c.rbuf[2 : 2+n])
		if err != nil {
			c.closed = true
			return fmt.Errorf("%w: %v", ErrBadFrame, err)
		}
		batch = append(batch, q)
		c.rbuf = c.rbuf[2+n:]
	}
	for i := len(batch) - 1; i >= 0; i-- {
		q := batch[i]
		// A trace parked for this query ID (ExchangeTraced) rides into
		// the frontend so its server-side spans join the dial span.
		var tr *obs.Trace
		if c.traces != nil {
			tr = c.traces[q.ID]
			delete(c.traces, q.ID)
		}
		ans, err := c.srv.ResolveTraced(q, tr)
		if err != nil {
			// DoT has no status channel: a hard upstream failure goes on
			// the wire as a synthesized SERVFAIL.
			c.replies = append(c.replies, dotReply{wire: servFailWire(q)})
			continue
		}
		c.replies = append(c.replies, dotReply{wire: ans.Wire, stale: ans.Stale})
	}
	return nil
}

// ReadResponse pops the next response frame in server emission order.
func (c *DoTConn) ReadResponse() (wire []byte, stale bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.check(); err != nil {
		return nil, false, err
	}
	if len(c.replies) == 0 {
		return nil, false, fmt.Errorf("%w: no response pending", ErrConnClosed)
	}
	r := c.replies[0]
	c.replies = c.replies[1:]
	return r.wire, r.stale, nil
}

// Exchange sends one query over the connection and waits for the
// response carrying its ID, parking any other pipelined responses it
// drains along the way for their owners. Safe for concurrent use: many
// goroutines can pipeline queries over one connection.
func (c *DoTConn) Exchange(q *dnswire.Message) (*dnswire.Message, bool, error) {
	return c.ExchangeTraced(q, nil)
}

// ExchangeTraced is Exchange with server-side span recording onto tr (a
// nil tr traces nothing). The trace is parked by query ID before the
// frame is written, so the server side picks it up when it resolves the
// frame — pipelined frames from other callers stay untraced.
func (c *DoTConn) ExchangeTraced(q *dnswire.Message, tr *obs.Trace) (*dnswire.Message, bool, error) {
	wire, err := q.Pack()
	if err != nil {
		return nil, false, err
	}
	if tr != nil {
		c.mu.Lock()
		if c.traces == nil {
			c.traces = map[uint16]*obs.Trace{}
		}
		c.traces[q.ID] = tr
		c.mu.Unlock()
	}
	if err := c.Write(Frame(wire)); err != nil {
		return nil, false, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if r, ok := c.pending[q.ID]; ok {
			delete(c.pending, q.ID)
			m, err := dnswire.Unpack(r.wire)
			return m, r.stale, err
		}
		if err := c.check(); err != nil {
			return nil, false, err
		}
		if len(c.replies) == 0 {
			// The server answers synchronously on Write, so a missing
			// response means it was lost to a connection death.
			return nil, false, fmt.Errorf("%w: response never arrived", ErrConnClosed)
		}
		r := c.replies[0]
		c.replies = c.replies[1:]
		if len(r.wire) < 2 {
			return nil, false, ErrBadFrame
		}
		id := binary.BigEndian.Uint16(r.wire)
		if id == q.ID {
			m, err := dnswire.Unpack(r.wire)
			return m, r.stale, err
		}
		c.pending[id] = r
	}
}

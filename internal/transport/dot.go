package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"repro/internal/dnswire"
	"repro/internal/obs"
	"repro/internal/simnet"
)

// Errors surfaced by the DoT and DoQ session layers.
var (
	// ErrConnClosed reports a dead connection: the peer address went down
	// mid-stream (failure injection) or a framing violation closed it.
	ErrConnClosed = errors.New("transport: connection closed")
	// ErrBadFrame reports a malformed frame; per RFC 7858 the connection
	// is not usable afterwards.
	ErrBadFrame = errors.New("transport: malformed frame")
)

// DoTServer is the RFC 7858 envelope over a Frontend: clients dial a
// persistent connection to its simnet addr:port (conventionally :853) and
// exchange 2-byte length-prefixed DNS messages over it. Queries may be
// pipelined — several frames written before any response is read — and
// responses come back out of order, so clients match them by query ID.
type DoTServer struct {
	Frontend
}

// NewDoTServer builds a DoT frontend over the handler.
func NewDoTServer(name string, handler simnet.DNSHandler, cache *Cache, cooldown time.Duration) *DoTServer {
	return &DoTServer{Frontend: Frontend{
		Name: name, Proto: ProtoDoT, Handler: handler,
		Cache: cache, FailureCooldown: cooldown,
	}}
}

// Register attaches the frontend to the network at ap.
func (s *DoTServer) Register(n *simnet.Network, ap netip.AddrPort) {
	n.RegisterService(ap, s)
}

// DoTDialer is the service interface a DoT frontend registers in simnet;
// the Client type-asserts it after the addr:port service lookup and
// dials a persistent connection.
type DoTDialer interface {
	DialDoT(n *simnet.Network, ap netip.AddrPort) *DoTConn
}

// DialDoT implements DoTDialer: it opens a persistent connection bound to
// (n, ap) so every subsequent operation re-checks reachability — a mid-
// stream SetAddrDown kills the connection exactly like a TCP reset.
func (s *DoTServer) DialDoT(n *simnet.Network, ap netip.AddrPort) *DoTConn {
	return &DoTConn{srv: s, net: n, ap: ap, pending: map[uint16]dotReply{}}
}

// dotReply is one server→client response frame plus the out-of-band
// stale marker (standing in for the RFC 8914 "Stale Answer" EDE).
type dotReply struct {
	wire  []byte
	stale bool
}

// DoTConn is one persistent DoT connection. The client side writes raw
// length-prefixed bytes — frames may be split across writes, and one
// write may carry several pipelined frames — and reads back response
// frames that the server emits in reverse arrival order per write (the
// deterministic stand-in for a real resolver answering cheap queries
// first). Exchange layers ID-matching on top so concurrent callers can
// pipeline queries over one connection safely.
type DoTConn struct {
	srv *DoTServer
	net *simnet.Network
	ap  netip.AddrPort

	mu      sync.Mutex
	rbuf    []byte              // client→server bytes not yet framed
	roff    int                 // consumed prefix of rbuf (cursor, not re-slice)
	replies []dotReply          // response frames not yet read
	pending map[uint16]dotReply // responses drained by other callers, demuxed by ID
	traces  map[uint16]*obs.Trace
	closed  bool

	// Recycled scratch, all guarded by mu: decoded query messages for the
	// frame batch, reply wire buffers handed back after Exchange consumes
	// them, and the batch slice itself.
	qmsgs    []*dnswire.Message
	replyBuf [][]byte
	batch    []*dnswire.Message
}

// getQMsg pops a recycled query message (or makes one) for a frame decode.
// Caller holds mu.
func (c *DoTConn) getQMsg() *dnswire.Message {
	if n := len(c.qmsgs); n > 0 {
		m := c.qmsgs[n-1]
		c.qmsgs = c.qmsgs[:n-1]
		return m
	}
	return new(dnswire.Message)
}

func (c *DoTConn) putQMsg(m *dnswire.Message) {
	if len(c.qmsgs) < 16 {
		c.qmsgs = append(c.qmsgs, m)
	}
}

// getReplyBuf pops a recycled reply wire buffer. Caller holds mu.
func (c *DoTConn) getReplyBuf() []byte {
	if n := len(c.replyBuf); n > 0 {
		b := c.replyBuf[n-1]
		c.replyBuf = c.replyBuf[:n-1]
		return b[:0]
	}
	return nil
}

func (c *DoTConn) putReplyBuf(b []byte) {
	if b == nil || len(c.replyBuf) >= 16 {
		return
	}
	if b = trimRecycledBuf(b); b == nil {
		return
	}
	c.replyBuf = append(c.replyBuf, b)
}

// check verifies the connection is still usable: not closed by a framing
// error and with the server address still reachable.
func (c *DoTConn) check() error {
	if c.closed {
		return ErrConnClosed
	}
	if _, err := c.net.Service(c.ap); err != nil {
		c.closed = true
		return fmt.Errorf("%w: %v", ErrConnClosed, err)
	}
	return nil
}

// Frame wraps a packed DNS message in the RFC 1035 §4.2.2 2-byte length
// prefix DoT uses.
func Frame(wire []byte) []byte {
	out := make([]byte, 2+len(wire))
	binary.BigEndian.PutUint16(out, uint16(len(wire)))
	copy(out[2:], wire)
	return out
}

// Write delivers raw bytes to the server side of the connection. Partial
// frames accumulate — a length prefix split across two writes is
// reassembled — and every frame completed by this write is resolved, with
// the batch's responses emitted in reverse arrival order (pipelined
// queries complete out of order). A malformed frame closes the
// connection, per RFC 7858's guidance for framing errors.
func (c *DoTConn) Write(p []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.check(); err != nil {
		return err
	}
	c.rbuf = append(c.rbuf, p...)
	batch := c.batch[:0]
	for {
		buf := c.rbuf[c.roff:]
		if len(buf) < 2 {
			break
		}
		n := int(binary.BigEndian.Uint16(buf))
		if len(buf) < 2+n {
			break
		}
		q := c.getQMsg()
		if err := dnswire.UnpackInto(q, buf[2:2+n]); err != nil {
			c.closed = true
			c.batch = batch[:0]
			return fmt.Errorf("%w: %v", ErrBadFrame, err)
		}
		batch = append(batch, q)
		c.roff += 2 + n
	}
	if c.roff == len(c.rbuf) {
		// Fully framed: rewind the reassembly buffer instead of letting
		// the consumed prefix march its capacity away.
		c.rbuf = trimRecycledBuf(c.rbuf)
		c.roff = 0
	}
	for i := len(batch) - 1; i >= 0; i-- {
		q := batch[i]
		// A trace parked for this query ID (ExchangeTraced) rides into
		// the frontend so its server-side spans join the dial span.
		var tr *obs.Trace
		if c.traces != nil {
			tr = c.traces[q.ID]
			delete(c.traces, q.ID)
		}
		// The reply is packed into a recycled buffer; Exchange returns it
		// via putReplyBuf once the frame is decoded.
		ans, err := c.srv.resolveAppend(q, c.getReplyBuf(), tr)
		if err != nil {
			// DoT has no status channel: a hard upstream failure goes on
			// the wire as a synthesized SERVFAIL.
			c.replies = append(c.replies, dotReply{wire: servFailWire(q)})
		} else {
			c.replies = append(c.replies, dotReply{wire: ans.Wire, stale: ans.Stale})
		}
		c.putQMsg(q)
	}
	c.batch = batch[:0]
	return nil
}

// ReadResponse pops the next response frame in server emission order.
func (c *DoTConn) ReadResponse() (wire []byte, stale bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.check(); err != nil {
		return nil, false, err
	}
	if len(c.replies) == 0 {
		return nil, false, fmt.Errorf("%w: no response pending", ErrConnClosed)
	}
	r := c.replies[0]
	c.replies = c.replies[1:]
	return r.wire, r.stale, nil
}

// Exchange sends one query over the connection and waits for the
// response carrying its ID, parking any other pipelined responses it
// drains along the way for their owners. Safe for concurrent use: many
// goroutines can pipeline queries over one connection.
func (c *DoTConn) Exchange(q *dnswire.Message) (*dnswire.Message, bool, error) {
	return c.ExchangeTraced(q, nil)
}

// ExchangeTraced is Exchange with server-side span recording onto tr (a
// nil tr traces nothing).
func (c *DoTConn) ExchangeTraced(q *dnswire.Message, tr *obs.Trace) (*dnswire.Message, bool, error) {
	m := new(dnswire.Message)
	stale, err := c.ExchangePooled(q, m, tr)
	if err != nil {
		return nil, false, err
	}
	return m, stale, nil
}

// ExchangePooled is the reuse-API exchange: the query is framed into a
// pooled buffer and the response is decoded into the caller-provided
// message, so a steady stream of exchanges over a warm connection
// allocates nothing on this layer. The trace is parked by query ID before
// the frame is written, so the server side picks it up when it resolves
// the frame — pipelined frames from other callers stay untraced.
func (c *DoTConn) ExchangePooled(q *dnswire.Message, into *dnswire.Message, tr *obs.Trace) (stale bool, err error) {
	bp := dnswire.GetWireBuf()
	defer dnswire.PutWireBuf(bp)
	frame := append(*bp, 0, 0)
	frame, err = q.AppendPack(frame)
	*bp = frame
	if err != nil {
		return false, err
	}
	binary.BigEndian.PutUint16(frame, uint16(len(frame)-2))
	if tr != nil {
		c.mu.Lock()
		if c.traces == nil {
			c.traces = map[uint16]*obs.Trace{}
		}
		c.traces[q.ID] = tr
		c.mu.Unlock()
	}
	// Write copies the frame into the reassembly buffer, so the pooled
	// frame can be released as soon as it returns.
	if err := c.Write(frame); err != nil {
		return false, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if r, ok := c.pending[q.ID]; ok {
			delete(c.pending, q.ID)
			err := dnswire.UnpackInto(into, r.wire)
			c.putReplyBuf(r.wire)
			return r.stale, err
		}
		if err := c.check(); err != nil {
			return false, err
		}
		if len(c.replies) == 0 {
			// The server answers synchronously on Write, so a missing
			// response means it was lost to a connection death.
			return false, fmt.Errorf("%w: response never arrived", ErrConnClosed)
		}
		r := c.replies[0]
		c.replies = c.replies[1:]
		if len(r.wire) < 2 {
			return false, ErrBadFrame
		}
		id := binary.BigEndian.Uint16(r.wire)
		if id == q.ID {
			err := dnswire.UnpackInto(into, r.wire)
			c.putReplyBuf(r.wire)
			return r.stale, err
		}
		c.pending[id] = r
	}
}

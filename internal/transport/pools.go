package transport

// Recycled-buffer hygiene for the transport layer's pools (reply frames,
// per-exchange wire scratch, DoT reassembly). Put-sites run buffers
// through trimRecycledBuf so one jumbo response cannot pin its backing
// array for the rest of a campaign.
const maxRecycledWire = 16 << 10

// trimRecycledBuf returns b truncated to zero length, or nil when its
// backing array exceeds the recycling ceiling and should be left to the
// GC.
func trimRecycledBuf(b []byte) []byte {
	if cap(b) > maxRecycledWire {
		return nil
	}
	return b[:0]
}

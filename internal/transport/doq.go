package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dnswire"
	"repro/internal/obs"
	"repro/internal/simnet"
)

// ErrStreamReset reports an RFC 9250 per-stream error (DOQ_PROTOCOL_ERROR):
// the offending stream is dead but the session — and every other stream on
// it — stays usable.
var ErrStreamReset = errors.New("transport: DoQ stream reset (DOQ_PROTOCOL_ERROR)")

// DoQServer is the RFC 9250 envelope over a Frontend: clients open a
// session (a QUIC connection in the real world) to its simnet addr:port
// and carry exactly one query and one response per stream. The DNS
// message ID on a DoQ stream MUST be zero (RFC 9250 §4.2.1) — streams
// already demultiplex queries, so the ID field is redundant and a
// non-zero one resets the stream.
type DoQServer struct {
	Frontend

	sessions atomic.Uint64
	resumed  atomic.Uint64
	streams  atomic.Uint64
	resets   atomic.Uint64
}

// NewDoQServer builds a DoQ frontend over the handler.
func NewDoQServer(name string, handler simnet.DNSHandler, cache *Cache, cooldown time.Duration) *DoQServer {
	return &DoQServer{Frontend: Frontend{
		Name: name, Proto: ProtoDoQ, Handler: handler,
		Cache: cache, FailureCooldown: cooldown,
	}}
}

// Register attaches the frontend to the network at ap.
func (s *DoQServer) Register(n *simnet.Network, ap netip.AddrPort) {
	n.RegisterService(ap, s)
}

// DoQSessionStats reports a frontend's session-layer traffic: how many
// sessions were established (and how many of those resumed with 0-RTT),
// how many streams carried queries, and how many streams were reset.
type DoQSessionStats struct {
	Sessions uint64
	Resumed  uint64
	Streams  uint64
	Resets   uint64
}

// SessionStats returns the session-layer counters.
func (s *DoQServer) SessionStats() DoQSessionStats {
	return DoQSessionStats{
		Sessions: s.sessions.Load(),
		Resumed:  s.resumed.Load(),
		Streams:  s.streams.Load(),
		Resets:   s.resets.Load(),
	}
}

// DoQDialer is the service interface a DoQ frontend registers in simnet.
type DoQDialer interface {
	DialDoQ(n *simnet.Network, ap netip.AddrPort, resumed bool) *DoQSession
}

// DialDoQ implements DoQDialer: it establishes a session bound to (n, ap).
// resumed marks a 0-RTT session resumption — the client holds a ticket
// from an earlier session to this frontend and pays no handshake
// round-trip; the latency difference is the client's to charge.
func (s *DoQServer) DialDoQ(n *simnet.Network, ap netip.AddrPort, resumed bool) *DoQSession {
	s.sessions.Add(1)
	if resumed {
		s.resumed.Add(1)
	}
	return &DoQSession{srv: s, net: n, ap: ap, Resumed: resumed}
}

// DoQSession is one client session. Each Exchange call is one stream:
// the query travels framed on its own stream, the response comes back on
// the same stream, and the stream is done. Stream failures are isolated —
// ErrStreamReset from one Exchange leaves concurrent and subsequent
// streams on the session untouched; only a dead peer address kills the
// session itself.
type DoQSession struct {
	srv *DoQServer
	net *simnet.Network
	ap  netip.AddrPort

	// Resumed records whether the session was established with 0-RTT.
	Resumed bool

	mu     sync.Mutex
	closed bool
}

// check verifies the session's peer is still reachable.
func (s *DoQSession) check() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrConnClosed
	}
	if _, err := s.net.Service(s.ap); err != nil {
		s.closed = true
		return fmt.Errorf("%w: %v", ErrConnClosed, err)
	}
	return nil
}

// Exchange opens one stream for the query and returns its response. The
// query's message ID must be zero (RFC 9250 §4.2.1); a non-zero ID or an
// unparseable frame resets this stream only. Safe for concurrent use —
// streams are independent by construction.
func (s *DoQSession) Exchange(q *dnswire.Message) (*dnswire.Message, bool, error) {
	return s.ExchangeTraced(q, nil)
}

// ExchangeTraced is Exchange with server-side span recording onto tr (a
// nil tr traces nothing).
func (s *DoQSession) ExchangeTraced(q *dnswire.Message, tr *obs.Trace) (*dnswire.Message, bool, error) {
	m := new(dnswire.Message)
	stale, err := s.ExchangePooled(q, m, tr)
	if err != nil {
		return nil, false, err
	}
	return m, stale, nil
}

// doqStream is the per-stream server-side scratch: the decoded query
// message and the answer wire buffer. A stream is fully synchronous —
// query in, answer out, stream done — so the scratch is released before
// ExchangePooled returns and the whole stream costs no allocations.
type doqStream struct {
	q   dnswire.Message
	buf []byte
}

var doqStreamPool = sync.Pool{New: func() any { return new(doqStream) }}

// ExchangePooled is the reuse-API exchange: one stream, with the query
// framed into a pooled buffer, parsed into pooled server scratch, and the
// response decoded into the caller-provided message before the scratch is
// recycled — the answer never needs an intermediate copy.
func (s *DoQSession) ExchangePooled(q *dnswire.Message, into *dnswire.Message, tr *obs.Trace) (stale bool, err error) {
	if err := s.check(); err != nil {
		return false, err
	}
	s.srv.streams.Add(1)
	if q.ID != 0 {
		s.srv.resets.Add(1)
		return false, fmt.Errorf("%w: message ID %d must be 0", ErrStreamReset, q.ID)
	}
	// The frame travels length-prefixed like DoT (RFC 9250 §4.2); pack
	// and unpack so the wire codec is exercised per stream.
	bp := dnswire.GetWireBuf()
	defer dnswire.PutWireBuf(bp)
	frame := append(*bp, 0, 0)
	frame, err = q.AppendPack(frame)
	*bp = frame
	if err != nil {
		s.srv.resets.Add(1)
		return false, fmt.Errorf("%w: %v", ErrStreamReset, err)
	}
	binary.BigEndian.PutUint16(frame, uint16(len(frame)-2))
	st := doqStreamPool.Get().(*doqStream)
	defer func() {
		st.buf = trimRecycledBuf(st.buf)
		doqStreamPool.Put(st)
	}()
	if err := dnswire.UnpackInto(&st.q, frame[2:]); err != nil {
		s.srv.resets.Add(1)
		return false, fmt.Errorf("%w: %v", ErrStreamReset, err)
	}
	ans, rerr := s.srv.resolveAppend(&st.q, st.buf[:0], tr)
	if rerr != nil {
		// Like DoT, DoQ has no status channel: hard upstream failures go
		// on the stream as a synthesized SERVFAIL.
		return false, dnswire.UnpackInto(into, servFailWire(&st.q))
	}
	st.buf = ans.Wire
	return ans.Stale, dnswire.UnpackInto(into, ans.Wire)
}

// Close ends the session; the next dial to the same frontend resumes
// with 0-RTT if the client kept its ticket.
func (s *DoQSession) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
}

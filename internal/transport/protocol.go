package transport

import (
	"fmt"
	"strconv"
	"strings"
)

// Protocol identifies one encrypted-DNS envelope. All three share the
// Fleet's cache/pool/failover machinery; they differ only in how a query
// and its answer travel between stub and frontend.
type Protocol int

const (
	// ProtoDoH is DNS over HTTPS (RFC 8484): one request/response envelope
	// per query, GET (base64url dns parameter) or POST (raw wire format).
	ProtoDoH Protocol = iota
	// ProtoDoT is DNS over TLS (RFC 7858): 2-byte length-prefixed frames
	// over a persistent connection, pipelined queries with out-of-order
	// responses matched by query ID.
	ProtoDoT
	// ProtoDoQ is DNS over QUIC (RFC 9250): one stream per query over a
	// session, message ID pinned to zero on the wire, connection setup and
	// 0-RTT resumption latencies charged to the virtual clock.
	ProtoDoQ
)

// ProtoAny is the no-preference sentinel for preference-aware candidate
// orderings (Pool.CandidatesPreferringAppend, Client.ExchangePreferring):
// the pool's failover order is used as-is.
const ProtoAny Protocol = -1

// String names the protocol for flags, frontend names, and stats output.
func (p Protocol) String() string {
	switch p {
	case ProtoDoH:
		return "doh"
	case ProtoDoT:
		return "dot"
	case ProtoDoQ:
		return "doq"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

// Port returns the protocol's conventional serving port: 443 for DoH,
// 853 for DoT (RFC 7858 §3.1) and DoQ (RFC 9250 §4.1.1).
func (p Protocol) Port() uint16 {
	if p == ProtoDoH {
		return 443
	}
	return 853
}

// ParseProtocol resolves a flag value to a Protocol.
func ParseProtocol(name string) (Protocol, error) {
	for _, p := range []Protocol{ProtoDoH, ProtoDoT, ProtoDoQ} {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("transport: unknown protocol %q (want doh, dot, or doq)", name)
}

// Mix is a per-campaign protocol mix: relative weights for how many
// frontends of a fleet speak each protocol. The zero value means all-DoH
// (the pre-transport behavior). Weights are relative, not percentages:
// {DoH: 60, DoT: 30, DoQ: 10} and {DoH: 6, DoT: 3, DoQ: 1} are the same
// mix.
type Mix struct {
	DoH, DoT, DoQ int
}

// normalized returns the mix with the all-zero default resolved to
// all-DoH and negative weights clamped to zero.
func (m Mix) normalized() Mix {
	if m.DoH < 0 {
		m.DoH = 0
	}
	if m.DoT < 0 {
		m.DoT = 0
	}
	if m.DoQ < 0 {
		m.DoQ = 0
	}
	if m.DoH == 0 && m.DoT == 0 && m.DoQ == 0 {
		m.DoH = 1
	}
	return m
}

// Weight returns the weight for one protocol.
func (m Mix) Weight(p Protocol) int {
	switch p {
	case ProtoDoH:
		return m.DoH
	case ProtoDoT:
		return m.DoT
	default:
		return m.DoQ
	}
}

// Assign deals protocols to n frontends by smooth weighted round-robin:
// each step every protocol gains its weight of credit and the richest one
// (ties broken doh < dot < doq) is picked and debited the total. The
// result is deterministic and interleaved — {DoH:2, DoT:1, DoQ:1} over
// four frontends yields doh, dot, doq, doh — so per-day fleet replicas
// recompute the identical assignment.
func (m Mix) Assign(n int) []Protocol {
	m = m.normalized()
	weights := [3]int{m.DoH, m.DoT, m.DoQ}
	total := weights[0] + weights[1] + weights[2]
	var credit [3]int
	out := make([]Protocol, n)
	for i := range out {
		best := -1
		for p := 0; p < 3; p++ {
			if weights[p] == 0 {
				continue
			}
			credit[p] += weights[p]
			if best < 0 || credit[p] > credit[best] {
				best = p
			}
		}
		credit[best] -= total
		out[i] = Protocol(best)
	}
	return out
}

// String renders the mix in ParseMix form ("doh=2,dot=1,doq=1"), omitting
// zero-weight protocols; the all-DoH default renders as "doh". It tags
// bench reports so baselines are only compared against runs with the same
// protocol mix.
func (m Mix) String() string {
	m = m.normalized()
	var parts []string
	for _, p := range []Protocol{ProtoDoH, ProtoDoT, ProtoDoQ} {
		if w := m.Weight(p); w > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", p, w))
		}
	}
	if len(parts) == 1 {
		return strings.SplitN(parts[0], "=", 2)[0]
	}
	return strings.Join(parts, ",")
}

// ParseMix resolves a flag value to a Mix. Accepted forms: a single
// protocol name ("doh", "dot", "doq"), the shorthand "mixed" (2:1:1), or
// explicit weights ("doh=60,dot=30,doq=10"; omitted protocols weigh 0).
func ParseMix(s string) (Mix, error) {
	switch s {
	case "", "doh":
		return Mix{DoH: 1}, nil
	case "dot":
		return Mix{DoT: 1}, nil
	case "doq":
		return Mix{DoQ: 1}, nil
	case "mixed":
		return Mix{DoH: 2, DoT: 1, DoQ: 1}, nil
	}
	var m Mix
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return Mix{}, fmt.Errorf("transport: bad mix element %q (want proto=weight)", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return Mix{}, fmt.Errorf("transport: bad mix weight %q", part)
		}
		switch name {
		case "doh":
			m.DoH = w
		case "dot":
			m.DoT = w
		case "doq":
			m.DoQ = w
		default:
			return Mix{}, fmt.Errorf("transport: unknown protocol %q in mix", name)
		}
	}
	if m.DoH+m.DoT+m.DoQ == 0 {
		return Mix{}, fmt.Errorf("transport: mix %q has no positive weight", s)
	}
	return m, nil
}

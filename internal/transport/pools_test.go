package transport

import "testing"

// TestTrimRecycledBufCeiling pins the serving layer's recycling ceiling:
// wire buffers at or under maxRecycledWire go back to their pools
// truncated, oversized ones are dropped for the GC — the put-site hygiene
// every pooled envelope scratch (DoH request/response bodies, DoT frame
// reassembly, DoQ stream buffers) runs through.
func TestTrimRecycledBufCeiling(t *testing.T) {
	under := make([]byte, 37, maxRecycledWire)
	if got := trimRecycledBuf(under); len(got) != 0 || cap(got) != maxRecycledWire {
		t.Fatalf("under-ceiling buffer: got len=%d cap=%d, want len=0 cap=%d",
			len(got), cap(got), maxRecycledWire)
	}
	over := make([]byte, 0, maxRecycledWire+1)
	if got := trimRecycledBuf(over); got != nil {
		t.Fatalf("over-ceiling buffer kept: cap=%d, want nil", cap(got))
	}
	if got := trimRecycledBuf(nil); got != nil {
		t.Fatalf("trimRecycledBuf(nil) = %v, want nil", got)
	}
}

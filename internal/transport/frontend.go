package transport

import (
	"errors"
	"sync"
	"time"

	"repro/internal/dnswire"
	"repro/internal/obs"
	"repro/internal/simnet"
)

// ErrUpstreamFailed reports that a frontend's handler hard-failed and no
// stale answer was available to cover for it. The DoH codec maps it to a
// 502 envelope; DoT and DoQ synthesize a SERVFAIL message instead, which
// is all those wire formats can say.
var ErrUpstreamFailed = errors.New("transport: upstream failed with no stale answer")

// Frontend is the protocol-independent core of one encrypted-DNS
// frontend: it consults the (optionally shared) answer cache, forwards
// misses to the wrapped DNS handler — normally a caching recursive
// resolver, mirroring how public encrypted-DNS endpoints sit in front of
// the same recursive fleet the paper queried over UDP — and keeps the
// lifecycle counters. The envelope servers (DoHServer, DoTServer,
// DoQServer) embed it and add only their wire codec, so all three
// protocols share one cache/failover/stats implementation.
//
// With a lifecycle-configured Cache the frontend implements the RFC 8767
// serve-stale flow: a fresh hit is served directly (arming a refresh-ahead
// prefetch when the entry nears expiry); on a miss or stale probe the
// handler is consulted, and if it hard-fails (nil) or SERVFAILs while a
// stale body is available, the stale answer is served instead of an error.
// A hard handler failure also arms FailureCooldown, during which stale
// answers are served without re-trying the handler at all — the fleet
// stops hammering a dead recursor, exactly the behavior behind the
// paper's §4.3.5/§4.4.2 staleness windows.
type Frontend struct {
	// Name labels the frontend in stats output.
	Name string
	// Proto is the envelope protocol the embedding server speaks; it only
	// labels stats (the engine is protocol-blind).
	Proto Protocol
	// Handler answers cache misses (a resolver.Resolver in practice).
	Handler simnet.DNSHandler
	// Cache, when non-nil, is consulted before the handler; share one
	// Cache value across frontends to model an anycast fleet. Expiry runs
	// on the Cache's own virtual clock.
	Cache *Cache
	// FailureCooldown benches the handler after a hard failure (nil
	// response): while it runs, stale-capable queries are answered from
	// the cache without consulting the handler. Queries with nothing
	// stale to serve still try the handler (there is no better option),
	// and a success clears the cooldown early. Zero disables benching.
	// Requires Cache (the cooldown runs on its virtual clock).
	FailureCooldown time.Duration
	// Recorder, when non-nil, receives flight-recorder events for the
	// frontend's anomaly-relevant transitions: stale serves (with the
	// reason), refresh-ahead prefetches, and hard handler failures. All
	// frontend-side kinds are volatile — which frontend a given attempt
	// hits depends on worker interleaving.
	Recorder *obs.Recorder

	mu            sync.Mutex
	cooldownUntil time.Time

	// Lifecycle counters are obs handles so a fleet registry can expose
	// them without an extra indirection on the increment path; the
	// zero values work unregistered, so a bare Frontend needs no setup.
	served       obs.Counter
	cacheHits    obs.Counter
	staleServed  obs.Counter
	negativeHits obs.Counter
	prefetches   obs.Counter
	upstreamFail obs.Counter
}

// Answer is the protocol-independent outcome of one resolved query,
// ready for the envelope codec to frame.
type Answer struct {
	// Wire is the packed response with the query's ID already in place.
	Wire []byte
	// MaxAge is the remaining freshness the DoH codec turns into a
	// Cache-Control max-age (RFC 8484 §5.1); DoT/DoQ have no use for it.
	MaxAge uint32
	// Stale marks an RFC 8767 serve-stale answer: the frontend's upstream
	// could not produce a fresh one, so a past-TTL cache entry was served
	// with capped TTLs. The DoH envelope carries it as a header-equivalent
	// flag; DoT/DoQ carry it as frame metadata standing in for the
	// RFC 8914 "Stale Answer" extended error.
	Stale bool
}

// FrontendStats reports one frontend's traffic and cache-lifecycle
// counters.
type FrontendStats struct {
	Name      string
	Proto     Protocol
	Served    uint64
	CacheHits uint64
	// StaleServed counts RFC 8767 stale answers served because the
	// handler failed or was in cooldown.
	StaleServed uint64
	// NegativeHits counts fresh cache hits on RFC 2308 negative entries.
	NegativeHits uint64
	// Prefetches counts refresh-ahead upstream refreshes performed.
	Prefetches uint64
	// UpstreamFailures counts hard handler failures and SERVFAILs that
	// triggered (or would have triggered) stale serving.
	UpstreamFailures uint64
}

// Add folds another frontend's counters in (for per-protocol and
// fleet-wide aggregation).
func (s *FrontendStats) Add(o FrontendStats) {
	s.Served += o.Served
	s.CacheHits += o.CacheHits
	s.StaleServed += o.StaleServed
	s.NegativeHits += o.NegativeHits
	s.Prefetches += o.Prefetches
	s.UpstreamFailures += o.UpstreamFailures
}

// HitRate is the fresh-hit fraction of served queries (0 when idle).
func (s FrontendStats) HitRate() float64 {
	return obs.Ratio(s.CacheHits, s.Served)
}

// Stats returns the frontend's counters.
func (f *Frontend) Stats() FrontendStats {
	return FrontendStats{
		Name:             f.Name,
		Proto:            f.Proto,
		Served:           f.served.Load(),
		CacheHits:        f.cacheHits.Load(),
		StaleServed:      f.staleServed.Load(),
		NegativeHits:     f.negativeHits.Load(),
		Prefetches:       f.prefetches.Load(),
		UpstreamFailures: f.upstreamFail.Load(),
	}
}

// inCooldown reports whether the handler is benched after a hard failure.
func (f *Frontend) inCooldown() bool {
	if f.FailureCooldown <= 0 || f.Cache == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cooldownUntil.After(f.Cache.clock.Now())
}

// noteHandlerFailure arms the failure cooldown.
func (f *Frontend) noteHandlerFailure() {
	f.upstreamFail.Add(1)
	if f.Recorder != nil {
		f.Recorder.Emit("frontend.dead", obs.L("frontend", f.Name))
	}
	if f.FailureCooldown <= 0 || f.Cache == nil {
		return
	}
	f.mu.Lock()
	f.cooldownUntil = f.Cache.clock.Now().Add(f.FailureCooldown)
	f.mu.Unlock()
}

// noteHandlerSuccess clears any cooldown: a demonstrably-answering
// handler is healthy.
func (f *Frontend) noteHandlerSuccess() {
	if f.FailureCooldown <= 0 {
		return
	}
	f.mu.Lock()
	f.cooldownUntil = time.Time{}
	f.mu.Unlock()
}

// bindMetrics registers the frontend's counters onto a registry, labeled
// by frontend name and protocol. The old Stats() accessors keep working
// as thin views over the same handles.
func (f *Frontend) bindMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	labels := []obs.Label{obs.L("frontend", f.Name), obs.L("proto", f.Proto.String())}
	reg.RegisterCounter(&f.served, "frontend_served_total", labels...)
	reg.RegisterCounter(&f.cacheHits, "frontend_cache_hits_total", labels...)
	reg.RegisterCounter(&f.staleServed, "frontend_stale_served_total", labels...)
	reg.RegisterCounter(&f.negativeHits, "frontend_negative_hits_total", labels...)
	reg.RegisterCounter(&f.prefetches, "frontend_prefetches_total", labels...)
	reg.RegisterCounter(&f.upstreamFail, "frontend_upstream_failures_total", labels...)
}

// Resolve walks the cache lifecycle (fresh → prefetch → stale → upstream)
// for one decoded query and returns the wire answer for the envelope
// codec. It returns ErrUpstreamFailed only when the handler hard-failed
// and nothing stale could cover for it.
func (f *Frontend) Resolve(q *dnswire.Message) (Answer, error) {
	return f.resolve(q, nil)
}

// ResolveTraced is Resolve with server-side span recording onto tr (a
// nil tr traces nothing). The spans are structural — zero offset and
// duration — because the frontend's work rides inside the enclosing dial
// span, whose virtual cost the strategy layer charges.
func (f *Frontend) ResolveTraced(q *dnswire.Message, tr *obs.Trace) (Answer, error) {
	return f.resolve(q, tr)
}

func (f *Frontend) resolve(q *dnswire.Message, tr *obs.Trace) (Answer, error) {
	return f.resolveAppend(q, nil, tr)
}

// resolveAppend is resolve with caller-supplied wire scratch: the answer
// body is appended to dst (aliasing its backing array, per the contract in
// doc.go), so envelope servers that recycle a per-exchange buffer serve
// cache hits without allocating. A nil dst restores the old copy-per-answer
// behavior. Every tracer call site is guarded so the tr == nil fast path
// builds no label slices.
func (f *Frontend) resolveAppend(q *dnswire.Message, dst []byte, tr *obs.Trace) (Answer, error) {
	f.served.Add(1)

	if len(q.Question) != 1 {
		resp := q.Reply()
		resp.RCode = dnswire.RCodeFormErr
		return packAnswerAppend(resp, dst)
	}
	question := q.Question[0]
	dnssecOK := q.DNSSECOK()
	key := CacheKey(question, dnssecOK)

	stale := false
	if f.Cache != nil {
		// Wire fast path: a hit is one append + ID/TTL patches, no encode.
		probe := f.Cache.Probe(key, q.ID, dst)
		if tr != nil {
			tr.Add("cache.probe", 0, 0, obs.L("state", probe.State.String()))
		}
		switch probe.State {
		case StateFresh:
			f.cacheHits.Add(1)
			if probe.Negative {
				f.negativeHits.Add(1)
			}
			// A benched handler is not probed even for prefetch — the
			// refresh opportunity for this entry generation is forfeited
			// and serve-stale covers the eventual expiry instead.
			if probe.NeedsRefresh && !f.inCooldown() {
				if tr != nil {
					tr.Add("prefetch", 0, 0)
				}
				f.prefetch(key, q)
			}
			return Answer{Wire: probe.Body, MaxAge: probe.MaxAge}, nil
		case StateStale:
			stale = true
			if f.inCooldown() {
				// The handler is benched; ride the stale answer out
				// rather than hammering a dead recursor.
				if ans, ok := f.serveStale(key, q.ID, dst); ok {
					if tr != nil {
						tr.Add("stale.serve", 0, 0, obs.L("reason", "cooldown"))
					}
					if f.Recorder != nil {
						f.Recorder.Emit("frontend.stale", obs.L("reason", "cooldown"))
					}
					return ans, nil
				}
			}
		}
	}

	resp := f.Handler.HandleDNS(q)
	if resp == nil {
		f.noteHandlerFailure()
		if stale {
			if ans, ok := f.serveStale(key, q.ID, dst); ok {
				if tr != nil {
					tr.Add("stale.serve", 0, 0, obs.L("reason", "upstream-dead"))
				}
				if f.Recorder != nil {
					f.Recorder.Emit("frontend.stale", obs.L("reason", "upstream-dead"))
				}
				return ans, nil
			}
		}
		if tr != nil {
			tr.Add("upstream", 0, 0, obs.L("outcome", "failed"))
		}
		return Answer{}, ErrUpstreamFailed
	}
	if resp.RCode == dnswire.RCodeServFail {
		// A struggling recursor over a healthy transport: RFC 8767
		// prefers a stale answer over a fresh SERVFAIL. Either way a
		// SERVFAIL is not evidence of health, so any armed cooldown
		// stays armed (it neither clears nor extends).
		if stale {
			if ans, ok := f.serveStale(key, q.ID, dst); ok {
				f.upstreamFail.Add(1)
				if tr != nil {
					tr.Add("stale.serve", 0, 0, obs.L("reason", "servfail"))
				}
				if f.Recorder != nil {
					f.Recorder.Emit("frontend.stale", obs.L("reason", "servfail"))
				}
				return ans, nil
			}
		}
		if tr != nil {
			tr.Add("upstream", 0, 0, obs.L("rcode", "SERVFAIL"))
		}
		return packAnswerAppend(resp, dst)
	}
	f.noteHandlerSuccess()
	if f.Cache != nil {
		f.Cache.Put(key, resp)
		if tr != nil {
			tr.Add("cache.put", 0, 0)
		}
	}
	if tr != nil {
		tr.Add("upstream", 0, 0, obs.L("rcode", resp.RCode.String()))
	}
	return packAnswerAppend(resp, dst)
}

// serveStale materializes the stale body, marked so stubs can count it;
// ok is false when the entry vanished since the probe (LRU pressure).
func (f *Frontend) serveStale(key Key, id uint16, dst []byte) (Answer, bool) {
	body, maxAge, ok := f.Cache.StaleWire(key, id, dst)
	if !ok {
		return Answer{}, false
	}
	f.staleServed.Add(1)
	return Answer{Wire: body, MaxAge: maxAge, Stale: true}, true
}

// prefetch refreshes an entry nearing expiry: the hit that armed it was
// already served from cache, so the refresh rides the same exchange
// (synchronous on the virtual clock — deterministic, no goroutine races)
// and renews the entry before it ever goes stale.
func (f *Frontend) prefetch(key Key, q *dnswire.Message) {
	resp := f.Handler.HandleDNS(q)
	if resp == nil {
		f.noteHandlerFailure()
		return
	}
	if resp.RCode == dnswire.RCodeServFail {
		return
	}
	f.noteHandlerSuccess()
	f.prefetches.Add(1)
	if f.Recorder != nil {
		f.Recorder.Emit("cache.prefetch", obs.L("frontend", f.Name))
	}
	f.Cache.Put(key, resp)
}

// packAnswerAppend packs a DNS message into dst (nil dst allocates) with
// max-age derived from the answer's minimum TTL; packing failures surface
// as an upstream failure so the stub fails over rather than mis-parsing.
func packAnswerAppend(m *dnswire.Message, dst []byte) (Answer, error) {
	base := len(dst)
	wire, err := m.AppendPack(dst)
	if err != nil {
		return Answer{}, ErrUpstreamFailed
	}
	maxAge, _ := minAnswerTTL(m)
	return Answer{Wire: wire[base:], MaxAge: maxAge}, nil
}

// servFailWire synthesizes a packed SERVFAIL reply to q — what a DoT or
// DoQ frontend puts on the wire when its handler hard-fails (those
// envelopes have no out-of-band status channel like DoH's 502).
func servFailWire(q *dnswire.Message) []byte {
	resp := q.Reply()
	resp.RCode = dnswire.RCodeServFail
	wire, err := resp.Pack()
	if err != nil {
		return nil
	}
	return wire
}

// Package transport implements the multi-protocol encrypted-DNS serving
// layer between stub and recursor that the paper's measurements traverse
// in the real Internet: Google (8.8.8.8) and Cloudflare (1.1.1.1) expose
// their recursive fleets behind anycast frontends speaking DoH, DoT, and
// DoQ, and every §4.3.5/§4.4.2 staleness and failover effect the paper
// reports happens inside that layer. Real-world stubs are multi-protocol
// (dnscrypt-proxy routes one query path over DoH/DoT/DNSCrypt), so
// transport-sensitive scenarios — browser DoH settings, fallback races,
// per-protocol latency — need the envelope split from the serving
// machinery, not a per-protocol copy of it.
//
// The package therefore splits into one protocol-independent core and
// three thin envelope codecs:
//
//   - Frontend: the engine — answer-cache lifecycle (probe → prefetch →
//     serve-stale), upstream failure cooldown, and lifecycle counters.
//     Every envelope server embeds one.
//   - DoHServer: the RFC 8484 envelope (codec in package doh): one
//     request/response envelope per query, GET or POST, with an
//     HTTP-style status channel (502 for upstream failure).
//   - DoTServer: the RFC 7858 envelope: persistent connections carrying
//     2-byte length-prefixed frames; queries pipeline and responses
//     return out of order, matched by query ID; framing errors and dead
//     addresses kill the connection (and the client fails over).
//   - DoQServer: the RFC 9250 envelope: one stream per query over a
//     session, message ID pinned to 0 on the wire, stream errors
//     isolated from the session; fresh sessions pay a handshake RTT,
//     resumed ones ride 0-RTT.
//   - Cache: the sharded TTL+LRU answer cache shared across frontends
//     regardless of protocol (the anycast-pod property).
//   - Pool and Client: the load-balanced upstream set (P2/EWMA/
//     round-robin/hash Balance policies, virtual-clock cooldown
//     failover, per-member RTT quantile tracking) and the
//     protocol-agnostic stub that dispatches each attempt by the
//     member's envelope — a mixed fleet races and fails over across
//     protocols.
//   - Strategy: the pluggable resolution policy layer between the two —
//     given the pool's candidate ordering and the client's per-protocol
//     dialers, it decides which candidates are attempted, in what
//     simulated overlap, and whose answer wins (see below).
//   - Fleet: the bundle — one cache, one pool, one client, any Mix of
//     frontends — with per-frontend, per-protocol, fleet-wide, and
//     strategy stats.
//
// # Cache lifecycle
//
// Every cache entry — positive or negative — walks one state machine,
// evaluated lazily on the virtual clock at probe time, identically for
// all three protocols:
//
//	          Put                      TTL expires              TTL + StaleWindow
//	(answer) ─────▶ FRESH ────────────────▶ STALE ────────────────────▶ evicted
//	                  │                       │                     (or LRU victim
//	                  │ RefreshAhead·TTL      │ upstream fails           any time)
//	                  ▼ elapsed               ▼ or in cooldown
//	            prefetch armed:         served with TTLs
//	            next hit refreshes      capped at StaleTTL
//	            the entry upstream      (RFC 8767, stale-marked)
//
// FRESH (within TTL): served directly, TTLs aged by elapsed virtual time.
// Once RefreshAhead of the TTL has elapsed, the first hit past the
// threshold additionally arms a prefetch: the frontend refreshes the
// entry from its handler on the same exchange, so hot names are renewed
// before they ever go stale (at most one prefetch per entry generation).
//
// STALE (past TTL, within StaleWindow): not served on the happy path —
// the upstream is consulted first. Only when the handler hard-fails
// (nil), SERVFAILs, or is benched in FailureCooldown does the frontend
// serve the stale body, with every record TTL capped at StaleTTL and the
// answer stale-marked (RFC 8767 serve-stale) — a DoH envelope flag, or
// DoT/DoQ frame metadata standing in for the RFC 8914 "Stale Answer"
// extended error.
//
// Evicted: past TTL + StaleWindow an entry is dropped at probe time; LRU
// eviction under capacity pressure can remove any entry earlier.
//
// Positive and negative entries differ only in how their TTL is derived
// and in accounting: negative answers (NXDOMAIN, or NOERROR with an empty
// answer section — NODATA) are retained for the RFC 2308 negative TTL,
// min(SOA TTL, SOA minimum) capped by MaxNegativeTTL, so repeated misses
// during census scans stop hammering upstreams; hits on them are reported
// as NegativeHits. With StaleWindow zero (the default) the STALE state
// vanishes and entries die at TTL expiry.
//
// # Resolution strategies
//
// Client.Exchange is candidate selection plus strategy dispatch: the
// Pool orders the members (its Balance policy picks the head, healthy
// members follow, benched members last), and the configured Strategy
// drives the per-protocol dialers over that ordering. Three policies
// ship, mirroring how real encrypted-DNS clients behave rather than the
// strictly serial failover a naive stub performs:
//
//   - SerialFailover (default): one candidate at a time, first usable
//     answer wins, SERVFAIL returned only when every member agrees —
//     byte-identical to the pre-strategy client.
//   - Race: happy-eyeballs protocol racing (the Firefox/Chrome DoH
//     fallback shape, RFC 8305's connection-attempt delay). The primary
//     gets a Stagger head start; if its answer has not arrived when the
//     timer fires, the first candidate on a *different* protocol
//     launches too, and the earlier virtual completion wins. The loser
//     is cancelled and accounted as wasted upstream load; if both fail,
//     the exchange falls through to the remaining candidates serially.
//   - Hedge: quantile-armed duplicate queries on a single protocol.
//     Each member's recent RTTs feed a sliding quantile window
//     (Pool.RTTQuantile — the per-server latency estimation
//     dnscrypt-proxy builds its candidate ordering from); when the
//     primary exceeds its own quantile, a same-protocol understudy
//     launches at the threshold and the first answer wins.
//
// Determinism contract: a Strategy runs on the virtual clock and must
// be a pure function of (clock, pool state, strategy parameters,
// latency model). Dials execute synchronously and sequentially;
// concurrency is *simulated* by comparing virtual completion times
// (launch offset + attempt cost, where cost is the latency-model RTT
// plus connection-setup round-trips). No goroutines, no wall-clock
// reads, no private randomness. Completed attempts feed the pool's
// EWMA/quantile state whether they win or lose (the sample is real);
// the virtual clock is charged once per exchange with the critical
// path, not the attempt sum. This is what keeps pipelined multi-day
// campaigns byte-identical to serial runs under every strategy — and
// why campaign serving snapshots count per-exchange winners rather than
// per-attempt frontend events.
//
// # Hot path and the aliasing contract
//
// The query hot path is allocation-free by construction: per-exchange
// state (candidate orderings, envelope request/response scratch, DoT
// frame reassembly, DoQ stream buffers, decoded answer Messages) lives
// in sync.Pools, wire encoding appends into recycled buffers via the
// dnswire reuse APIs, and cache keys are interned structs rather than
// formatted strings. Every pool put-site runs its buffer through the
// recycling ceiling (trimRecycledBuf) so a jumbo answer cannot pin its
// backing array for a campaign. Pooling never feeds an RNG or an
// ordering decision — buffer identity is invisible to the determinism
// contract above.
//
// The aliasing rules that make copy-free serving safe:
//
//   - Cached and stale answers are served as aliases of the cache
//     entry's stored wire where the envelope permits; the envelope
//     layers treat served bodies as read-only and re-encode rather
//     than patch in place.
//   - A Message returned by Client.Exchange is owned by the caller —
//     unless the client's ReuseAnswers mode is on, in which case it is
//     valid only until that client's next exchange (the client reclaims
//     it into its message pool at the next call). ReuseAnswers is
//     therefore only safe for a serial sole-driver caller, like the
//     workload engine, which flips it on for the duration of a run.
//   - Strategies recycle losing attempts' Messages via Driver.Discard —
//     exactly for attempts whose answer can no longer escape the
//     exchange (raced/hedged losers, superseded parked SERVFAILs);
//     winners are never discarded.
//
// # What the envelopes do differently
//
// Upstream hard failure with nothing stale: DoH answers 502 (the client
// retries the next member without benching it); DoT and DoQ synthesize a
// SERVFAIL message — those wire formats have no status channel — which
// the client likewise treats as try-the-next-member. Connection state:
// DoH is stateless per exchange; DoT holds one persistent connection per
// (client, member), killed by failure injection mid-stream; DoQ holds one
// session per (client, member) whose first establishment costs a
// handshake RTT and whose re-establishment rides 0-RTT on the retained
// ticket. All connection-setup costs are charged to the virtual clock
// when the client's ChargeLatency is on.
package transport

package transport

import (
	"encoding/binary"
	"errors"
	"sync"
	"time"

	"repro/internal/dnswire"
	"repro/internal/simnet"
)

// Cache is a sharded TTL+LRU answer cache keyed by (qname, qtype, DO bit).
// Shard selection is fnv-based, each shard is independently bounded and
// LRU-evicted, and expiry runs on the virtual clock, so a fleet of
// frontends sharing one Cache behaves like an anycast pod with a common
// answer store: whichever frontend and protocol a stub lands on, a fresh
// answer from a sibling is served without touching the recursor.
//
// Entries move through the lifecycle documented in doc.go: fresh until
// their TTL expires, then (with a non-zero StaleWindow) stale and
// servable under RFC 8767 when the upstream cannot answer, then evicted.
// Negative answers (NXDOMAIN/NODATA) are first-class entries retained for
// their RFC 2308 SOA-minimum TTL, capped by MaxNegativeTTL.
type Cache struct {
	clock *simnet.Clock
	cfg   CacheConfig

	shards []*cacheShard
}

// CacheConfig sets the cache geometry and lifecycle policy. The zero
// value selects the default geometry with serve-stale and refresh-ahead
// disabled — the pre-RFC 8767 behavior.
type CacheConfig struct {
	// Shards and ShardCapacity set the geometry; zero selects the
	// defaults.
	Shards        int
	ShardCapacity int
	// StaleWindow is how long past TTL expiry an entry stays resident and
	// servable under RFC 8767 serve-stale. Zero disables serve-stale:
	// entries are dropped at TTL expiry.
	StaleWindow time.Duration
	// StaleTTL caps the TTL stamped on records of a stale answer; zero
	// selects DefaultStaleTTL (the 30 s RFC 8767 §4 recommends).
	StaleTTL uint32
	// RefreshAhead arms a prefetch once a fresh entry has consumed this
	// fraction of its TTL: the next hit past the threshold is still served
	// from cache but reports NeedsRefresh so the frontend can refresh the
	// entry before it ever goes stale. Zero disables prefetch.
	RefreshAhead float64
	// MaxNegativeTTL caps how long negative answers are retained, however
	// large their SOA minimum (RFC 2308 §5 advises bounding negative
	// retention); zero selects DefaultMaxNegativeTTL.
	MaxNegativeTTL time.Duration
}

// Default cache geometry and lifecycle bounds.
const (
	DefaultShards        = 16
	DefaultShardCapacity = 1024
	// DefaultStaleTTL is the TTL stamped on stale answers (RFC 8767 §4
	// recommends 30 seconds).
	DefaultStaleTTL = 30
	// DefaultMaxNegativeTTL bounds negative retention (RFC 2308 §5).
	DefaultMaxNegativeTTL = 3 * time.Hour
)

// negativeTTL bounds how long answers without records are retained when
// the authority section carries no SOA to derive a TTL from.
const negativeTTL = 30 * time.Second

// EntryState is where a cache lookup landed in the entry lifecycle.
type EntryState int

const (
	// StateMiss: no entry, or the entry aged past TTL + StaleWindow and
	// was evicted by the lookup.
	StateMiss EntryState = iota
	// StateFresh: within TTL; the answer is served directly.
	StateFresh
	// StateStale: past TTL but within StaleWindow; the answer may be
	// served under RFC 8767 if the upstream cannot produce a fresh one.
	StateStale
)

// String names the state for stats output.
func (s EntryState) String() string {
	switch s {
	case StateFresh:
		return "fresh"
	case StateStale:
		return "stale"
	default:
		return "miss"
	}
}

// Lookup is the result of a lifecycle-aware cache probe.
type Lookup struct {
	// State classifies the probe; Body is non-nil only for Fresh. A
	// stale probe carries no body — the caller is expected to consult
	// the upstream first and materialize the stale answer with StaleWire
	// only if that fails, so the common refresh path never pays the copy.
	State EntryState
	// Body is the response wire image with the query ID patched in and
	// TTLs aged by elapsed virtual time (Fresh only).
	Body []byte
	// MaxAge is the Cache-Control max-age: the remaining freshness.
	MaxAge uint32
	// Negative marks RFC 2308 negative entries (NXDOMAIN or NODATA).
	Negative bool
	// NeedsRefresh is set on the first fresh hit past the refresh-ahead
	// threshold; the caller should refresh the entry from upstream.
	NeedsRefresh bool
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[Key]*cacheEntry
	// head is most recently used, tail least; entries form a doubly
	// linked list so Get/Put/evict are all O(1).
	head, tail *cacheEntry
	capacity   int
	// negEntries tracks resident negative entries so Stats is O(shards),
	// not a walk of every LRU list.
	negEntries int

	hits, misses, evictions, expirations uint64
	staleServes, negativeHits, refreshes uint64
}

// cacheEntry holds the response as a packed wire image plus the byte
// offsets of every RR TTL field, precomputed at store time. A hit is then
// one copy, an ID patch, and in-place TTL rewrites — no message encode on
// the hot path.
type cacheEntry struct {
	key      Key
	wire     []byte
	ttlOffs  []int
	ttls     []uint32 // original TTLs, parallel to ttlOffs
	minTTL   uint32   // minimum answer TTL at store time (the DoH max-age)
	storedAt time.Time
	expires  time.Time
	// negative marks RFC 2308 entries (NXDOMAIN or empty answers).
	negative bool
	// refreshAt is when a fresh hit starts reporting NeedsRefresh;
	// refreshing latches after the first such hit so one entry generation
	// arms at most one prefetch.
	refreshAt  time.Time
	refreshing bool
	prev, next *cacheEntry
}

// CacheStats aggregates counters across shards.
type CacheStats struct {
	Entries     int
	Hits        uint64
	Misses      uint64
	Evictions   uint64
	Expirations uint64
	// NegativeEntries is the resident RFC 2308 entry count; NegativeHits
	// counts fresh hits on them (misses a negative entry absorbed).
	NegativeEntries int
	NegativeHits    uint64
	// StaleServes counts answers actually served past TTL under RFC 8767
	// (stale lookups also count as misses — the upstream was consulted or
	// at least wanted).
	StaleServes uint64
	// Refreshes counts prefetches armed by the refresh-ahead threshold.
	Refreshes uint64
}

// HitRate returns hits/(hits+misses), or 0 before any lookups.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// NewCache creates a cache with the given shard count and per-shard entry
// bound and the lifecycle defaults (serve-stale and prefetch disabled);
// zero values select the default geometry.
func NewCache(clock *simnet.Clock, shards, shardCapacity int) *Cache {
	return NewCacheWith(clock, CacheConfig{Shards: shards, ShardCapacity: shardCapacity})
}

// NewCacheWith creates a cache with an explicit lifecycle configuration.
func NewCacheWith(clock *simnet.Clock, cfg CacheConfig) *Cache {
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.ShardCapacity <= 0 {
		cfg.ShardCapacity = DefaultShardCapacity
	}
	if cfg.StaleTTL == 0 {
		cfg.StaleTTL = DefaultStaleTTL
	}
	if cfg.MaxNegativeTTL <= 0 {
		cfg.MaxNegativeTTL = DefaultMaxNegativeTTL
	}
	c := &Cache{clock: clock, cfg: cfg, shards: make([]*cacheShard, cfg.Shards)}
	for i := range c.shards {
		c.shards[i] = &cacheShard{entries: map[Key]*cacheEntry{}, capacity: cfg.ShardCapacity}
	}
	return c
}

// Config returns the cache's resolved lifecycle configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Key identifies a cache entry: canonical qname, qtype, and the DO bit
// (responses differ — RRSIGs present or not). It is a comparable value
// type used directly as the shard map key, so building one for a probe
// allocates nothing when the question name is already canonical — the
// steady state on the query hot path. The name string is shared with the
// question that produced it; the cache never mutates it.
type Key struct {
	Name string
	Type dnswire.Type
	DO   bool
}

// CacheKey builds the lookup key for a question.
func CacheKey(q dnswire.Question, dnssecOK bool) Key {
	return Key{Name: dnswire.CanonicalName(q.Name), Type: q.Type, DO: dnssecOK}
}

// fnv32a constants (hash/fnv), inlined so shard selection neither
// allocates a hash.Hash nor converts the key to bytes.
const (
	fnv32Offset = 2166136261
	fnv32Prime  = 16777619
)

func (k Key) shardHash() uint32 {
	h := uint32(fnv32Offset)
	for i := 0; i < len(k.Name); i++ {
		h ^= uint32(k.Name[i])
		h *= fnv32Prime
	}
	h ^= uint32(k.Type) & 0xff
	h *= fnv32Prime
	h ^= uint32(k.Type) >> 8
	h *= fnv32Prime
	if k.DO {
		h ^= 1
		h *= fnv32Prime
	}
	return h
}

func (c *Cache) shardFor(key Key) *cacheShard {
	return c.shards[int(key.shardHash())%len(c.shards)]
}

// GetWire returns the cached response as a fresh wire image with the
// given query ID patched in and every TTL aged by the virtual time
// elapsed since storing, plus the remaining max-age. Misses, stale
// entries, and expired entries return ok=false.
func (c *Cache) GetWire(key Key, id uint16) (body []byte, maxAge uint32, ok bool) {
	l := c.Probe(key, id, nil)
	if l.State != StateFresh {
		return nil, 0, false
	}
	return l.Body, l.MaxAge, true
}

// Probe is the lifecycle-aware lookup: it classifies the entry as fresh,
// stale, or missing, and returns a servable wire image for the first two.
// A fresh hit counts toward Hits; stale and missing probes count toward
// Misses, because the caller is expected to consult the upstream (a stale
// body is only served — via NoteStaleServed — when that fails). Entries
// past TTL + StaleWindow are evicted by the probe.
//
// On a fresh hit the wire image is appended to dst (Body aliases dst's
// backing array, so a caller handing in recycled scratch serves the hit
// copy-free); a nil dst allocates, preserving the old behavior.
func (c *Cache) Probe(key Key, id uint16, dst []byte) Lookup {
	now := c.clock.Now()
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, found := s.entries[key]
	if !found {
		s.misses++
		return Lookup{State: StateMiss}
	}
	if !e.expires.Add(c.cfg.StaleWindow).After(now) {
		s.remove(e)
		delete(s.entries, key)
		if e.negative {
			s.negEntries--
		}
		s.expirations++
		s.misses++
		return Lookup{State: StateMiss}
	}
	s.moveToFront(e)
	if !e.expires.After(now) {
		// Past TTL but within the stale window: report stale so the
		// caller consults the upstream; StaleWire materializes the body
		// only if that fails.
		s.misses++
		return Lookup{State: StateStale, Negative: e.negative}
	}
	s.hits++
	if e.negative {
		s.negativeHits++
	}
	l := Lookup{State: StateFresh, Negative: e.negative}
	if c.cfg.RefreshAhead > 0 && !e.refreshing && !e.refreshAt.After(now) {
		e.refreshing = true
		s.refreshes++
		l.NeedsRefresh = true
	}
	elapsed := uint32(now.Sub(e.storedAt) / time.Second)
	base := len(dst)
	out := append(dst, e.wire...)
	binary.BigEndian.PutUint16(out[base:], id)
	for i, off := range e.ttlOffs {
		ttl := e.ttls[i]
		if ttl > elapsed {
			ttl -= elapsed
		} else {
			ttl = 0
		}
		binary.BigEndian.PutUint32(out[base+off:], ttl)
	}
	if e.minTTL > elapsed {
		l.MaxAge = e.minTTL - elapsed
	}
	l.Body = out[base:]
	return l
}

// StaleWire materializes the stale answer a prior Probe reported, with
// the query ID patched in and every TTL capped at StaleTTL per RFC 8767,
// and counts the stale serve. The entry is re-evaluated under the shard
// lock: if a sibling refreshed it meanwhile the (now fresh) body is still
// served with capped TTLs — conservative but correct — and if it vanished
// (LRU pressure) ok is false and the caller has nothing to serve.
// The stale body is appended to dst under the same aliasing contract as
// Probe; nil dst allocates a fresh copy.
func (c *Cache) StaleWire(key Key, id uint16, dst []byte) (body []byte, maxAge uint32, ok bool) {
	now := c.clock.Now()
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, found := s.entries[key]
	if !found || !e.expires.Add(c.cfg.StaleWindow).After(now) {
		return nil, 0, false
	}
	base := len(dst)
	out := append(dst, e.wire...)
	binary.BigEndian.PutUint16(out[base:], id)
	for i, off := range e.ttlOffs {
		ttl := e.ttls[i]
		if ttl > c.cfg.StaleTTL {
			ttl = c.cfg.StaleTTL
		}
		binary.BigEndian.PutUint32(out[base+off:], ttl)
	}
	s.staleServes++
	return out[base:], c.cfg.StaleTTL, true
}

// Get returns a copy of the cached response with TTLs aged by the virtual
// time elapsed since it was stored, or nil on miss/expiry. It is the
// message-level convenience over GetWire (the hot path frontends use).
func (c *Cache) Get(key Key) *dnswire.Message {
	wire, _, ok := c.GetWire(key, 0)
	if !ok {
		return nil
	}
	m, err := dnswire.Unpack(wire)
	if err != nil {
		return nil
	}
	return m
}

// Put stores a response. Uncacheable responses (SERVFAIL and friends) are
// ignored; the retention window is the answer's minimum TTL, or the RFC
// 2308 SOA-minimum (capped by MaxNegativeTTL) for negative answers.
func (c *Cache) Put(key Key, m *dnswire.Message) {
	ttl, negative, ok := cacheTTL(m)
	if !ok || ttl <= 0 {
		return
	}
	if negative && ttl > c.cfg.MaxNegativeTTL {
		ttl = c.cfg.MaxNegativeTTL
	}
	wire, err := m.Pack()
	if err != nil {
		return
	}
	offs, ttls, err := ttlOffsets(wire)
	if err != nil {
		return
	}
	minTTL, _ := minAnswerTTL(m)
	now := c.clock.Now()
	refreshAt := time.Time{}
	if c.cfg.RefreshAhead > 0 {
		refreshAt = now.Add(time.Duration(c.cfg.RefreshAhead * float64(ttl)))
	}
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[key]; ok {
		if negative != e.negative {
			if negative {
				s.negEntries++
			} else {
				s.negEntries--
			}
		}
		e.wire, e.ttlOffs, e.ttls, e.minTTL = wire, offs, ttls, minTTL
		e.storedAt, e.expires, e.negative = now, now.Add(ttl), negative
		e.refreshAt, e.refreshing = refreshAt, false
		s.moveToFront(e)
		return
	}
	e := &cacheEntry{key: key, wire: wire, ttlOffs: offs, ttls: ttls,
		minTTL: minTTL, storedAt: now, expires: now.Add(ttl),
		negative: negative, refreshAt: refreshAt}
	s.entries[key] = e
	s.pushFront(e)
	if negative {
		s.negEntries++
	}
	if len(s.entries) > s.capacity {
		victim := s.tail
		s.remove(victim)
		delete(s.entries, victim.key)
		if victim.negative {
			s.negEntries--
		}
		s.evictions++
	}
}

// ttlOffsets walks a packed message once and records the byte offset and
// original value of every resource record's TTL field, excluding the OPT
// pseudo-record (its TTL field holds EDNS flags, not a TTL).
func ttlOffsets(wire []byte) (offs []int, ttls []uint32, err error) {
	if len(wire) < 12 {
		return nil, nil, dnswire.ErrShortMessage
	}
	qd := int(binary.BigEndian.Uint16(wire[4:]))
	rrs := int(binary.BigEndian.Uint16(wire[6:])) +
		int(binary.BigEndian.Uint16(wire[8:])) +
		int(binary.BigEndian.Uint16(wire[10:]))
	pos := 12
	for i := 0; i < qd; i++ {
		if pos, err = skipName(wire, pos); err != nil {
			return nil, nil, err
		}
		pos += 4 // qtype + qclass
	}
	for i := 0; i < rrs; i++ {
		if pos, err = skipName(wire, pos); err != nil {
			return nil, nil, err
		}
		if pos+10 > len(wire) {
			return nil, nil, errTruncatedRR
		}
		typ := dnswire.Type(binary.BigEndian.Uint16(wire[pos:]))
		if typ != dnswire.TypeOPT {
			offs = append(offs, pos+4)
			ttls = append(ttls, binary.BigEndian.Uint32(wire[pos+4:]))
		}
		rdlen := int(binary.BigEndian.Uint16(wire[pos+8:]))
		pos += 10 + rdlen
		if pos > len(wire) {
			return nil, nil, errTruncatedRR
		}
	}
	return offs, ttls, nil
}

var errTruncatedRR = errors.New("transport: truncated record in wire image")

// skipName advances past a (possibly compressed) domain name.
func skipName(wire []byte, pos int) (int, error) {
	for {
		if pos >= len(wire) {
			return 0, errTruncatedRR
		}
		b := wire[pos]
		switch {
		case b == 0:
			return pos + 1, nil
		case b&0xc0 == 0xc0: // compression pointer ends the name
			return pos + 2, nil
		default:
			pos += 1 + int(b)
		}
	}
}

// Len returns the number of resident entries (including not-yet-swept
// expired ones).
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Flush drops every entry.
func (c *Cache) Flush() {
	for _, s := range c.shards {
		s.mu.Lock()
		s.entries = map[Key]*cacheEntry{}
		s.head, s.tail = nil, nil
		s.negEntries = 0
		s.mu.Unlock()
	}
}

// Stats aggregates hit/miss/eviction and lifecycle counters across shards.
func (c *Cache) Stats() CacheStats {
	var out CacheStats
	for _, s := range c.shards {
		s.mu.Lock()
		out.Entries += len(s.entries)
		out.NegativeEntries += s.negEntries
		out.Hits += s.hits
		out.Misses += s.misses
		out.Evictions += s.evictions
		out.Expirations += s.expirations
		out.NegativeHits += s.negativeHits
		out.StaleServes += s.staleServes
		out.Refreshes += s.refreshes
		s.mu.Unlock()
	}
	return out
}

func (s *cacheShard) pushFront(e *cacheEntry) {
	e.prev, e.next = nil, s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *cacheShard) remove(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *cacheShard) moveToFront(e *cacheEntry) {
	if s.head == e {
		return
	}
	s.remove(e)
	s.pushFront(e)
}

// minAnswerTTL returns the smallest TTL among answer records, excluding
// the OPT pseudo-record (whose TTL field holds EDNS flags).
func minAnswerTTL(m *dnswire.Message) (uint32, bool) {
	ttl, have := uint32(0), false
	for _, rr := range m.Answer {
		if rr.Type == dnswire.TypeOPT {
			continue
		}
		if !have || rr.TTL < ttl {
			ttl, have = rr.TTL, true
		}
	}
	return ttl, have
}

// cacheTTL derives the retention window and negativity class: the minimum
// answer TTL for positive answers; for negative answers (NXDOMAIN, or
// NOERROR with no answer records — NODATA) the RFC 2308 negative TTL,
// min(SOA TTL, SOA minimum), falling back to a fixed bound when the
// authority section carries no SOA; nothing for uncacheable RCodes.
func cacheTTL(m *dnswire.Message) (ttl time.Duration, negative, ok bool) {
	if m.RCode != dnswire.RCodeNoError && m.RCode != dnswire.RCodeNXDomain {
		return 0, false, false
	}
	if ttl, have := minAnswerTTL(m); have && m.RCode == dnswire.RCodeNoError {
		return time.Duration(ttl) * time.Second, false, true
	}
	for _, rr := range m.Authority {
		if soa, ok := rr.Data.(*dnswire.SOAData); ok {
			min := soa.Minimum
			if rr.TTL < min {
				min = rr.TTL
			}
			return time.Duration(min) * time.Second, true, true
		}
	}
	return negativeTTL, true, true
}

package transport

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/dnswire"
)

// latencyTable pins a fixed virtual RTT per frontend index, keyed by
// address — the deterministic knob every racing/hedging boundary test
// turns.
func latencyTable(d map[int]time.Duration, fallback time.Duration) func(*Upstream) time.Duration {
	return func(u *Upstream) time.Duration {
		for i, l := range d {
			if u.Addr == frontendAddr(i) {
				return l
			}
		}
		return fallback
	}
}

// raceFleet builds an n-frontend fleet with a race strategy, round-robin
// balancing (query 1 orders candidates 0,1,…,n-1), and a per-frontend
// latency table.
func raceFleet(t *testing.T, stagger time.Duration, lat map[int]time.Duration, protos ...Protocol) (*Client, *Fleet, *stubRecursor) {
	t.Helper()
	net, clock := testNet()
	recursor := &stubRecursor{ttl: 300}
	fl := NewFleet(net, clock, FleetConfig{
		Balance:  BalanceRoundRobin,
		Strategy: StrategyConfig{Kind: StrategyRace, RaceStagger: stagger},
		Seed:     1,
		Cache:    CacheConfig{Shards: 4, ShardCapacity: 64},
		Latency:  latencyTable(lat, 4*time.Millisecond),
	})
	for i, p := range protos {
		fl.Add(p, fmt.Sprintf("fe%d", i), recursor, frontendAddr(i))
	}
	return fl.Client, fl, recursor
}

// TestSerialFailoverExplicitMatchesDefault pins that the nil default,
// the explicit SerialFailover value, and the zero StrategyConfig are the
// same policy: identical answers, identical pool accounting, for the
// same scripted failure scenario.
func TestSerialFailoverExplicitMatchesDefault(t *testing.T) {
	type snap struct {
		answers []string
		pool    []UpstreamStats
	}
	run := func(strategy Strategy) snap {
		client, fl, _, net, _ := newTestFleet(t, 3, BalanceRoundRobin)
		client.Strategy = strategy
		// A fixed latency model keeps the pool's RTT bookkeeping out of
		// wall-clock noise so the snapshots compare byte-for-byte.
		client.Latency = func(*Upstream) time.Duration { return 4 * time.Millisecond }
		net.SetAddrDown(frontendAddr(0).Addr(), true)
		var s snap
		for i := 0; i < 6; i++ {
			m, err := client.Query(fmt.Sprintf("d%d.test", i), dnswire.TypeHTTPS, false)
			if err != nil {
				t.Fatal(err)
			}
			s.answers = append(s.answers, fmt.Sprintf("%v/%d", m.RCode, len(m.Answer)))
		}
		s.pool = fl.Pool.Stats()
		return s
	}
	def := run(nil)
	for name, strategy := range map[string]Strategy{
		"explicit":    SerialFailover{},
		"zero-config": StrategyConfig{}.New(),
	} {
		got := run(strategy)
		if fmt.Sprint(got) != fmt.Sprint(def) {
			t.Errorf("%s serial diverged from default:\n got %v\nwant %v", name, got, def)
		}
	}
}

// TestRaceStaggerBoundary pins the happy-eyeballs timer edge: a primary
// whose answer lands exactly at the stagger deadline cancels the timer —
// the partner never launches — while one a nanosecond later races.
func TestRaceStaggerBoundary(t *testing.T) {
	const stagger = 5 * time.Millisecond
	t.Run("at-edge-no-race", func(t *testing.T) {
		client, fl, _ := raceFleet(t, stagger,
			map[int]time.Duration{0: stagger, 1: time.Millisecond},
			ProtoDoH, ProtoDoT)
		if _, err := client.Query("edge.test", dnswire.TypeHTTPS, false); err != nil {
			t.Fatal(err)
		}
		if got := fl.Frontends[1].Stats().Served; got != 0 {
			t.Errorf("partner served %d at the stagger edge, want 0 (timer cancelled)", got)
		}
		if st := fl.StrategyStats(); st.Races != 0 || st.Wasted != 0 {
			t.Errorf("races=%d wasted=%d for an on-time primary, want 0/0", st.Races, st.Wasted)
		}
	})
	t.Run("past-edge-races", func(t *testing.T) {
		client, fl, _ := raceFleet(t, stagger,
			map[int]time.Duration{0: stagger + time.Nanosecond, 1: time.Millisecond},
			ProtoDoH, ProtoDoT)
		if _, err := client.Query("late.test", dnswire.TypeHTTPS, false); err != nil {
			t.Fatal(err)
		}
		if got := fl.Frontends[1].Stats().Served; got != 1 {
			t.Errorf("partner served %d past the stagger edge, want 1", got)
		}
		st := fl.StrategyStats()
		if st.Races != 1 {
			t.Errorf("races=%d, want 1", st.Races)
		}
		// The primary missed the deadline by a nanosecond but still
		// completes first (5ms+1ns vs the partner's 5ms stagger + 3×1ms
		// fresh-DoT cost = 8ms): it wins, and the in-flight partner is
		// cancelled — launched, wasted, never consumed.
		if st.WinsByProto[ProtoDoH] != 1 {
			t.Errorf("winner distribution %v, want the barely-late DoH primary", st.WinsByProto)
		}
		if st.LosersCancelled != 1 || st.Wasted != 1 {
			t.Errorf("cancelled=%d wasted=%d, want 1/1", st.LosersCancelled, st.Wasted)
		}
	})
	t.Run("slow-primary-loses", func(t *testing.T) {
		// Primary at 20ms, partner completing at 5ms+3×1ms=8ms: the
		// race flips and the cross-protocol partner wins.
		client, fl, _ := raceFleet(t, stagger,
			map[int]time.Duration{0: 20 * time.Millisecond, 1: time.Millisecond},
			ProtoDoH, ProtoDoT)
		if _, err := client.Query("slow.test", dnswire.TypeHTTPS, false); err != nil {
			t.Fatal(err)
		}
		st := fl.StrategyStats()
		if st.WinsByProto[ProtoDoT] != 1 {
			t.Errorf("winner distribution %v, want the DoT partner", st.WinsByProto)
		}
		if st.Races != 1 || st.LosersCancelled != 1 || st.Wasted != 1 {
			t.Errorf("races=%d cancelled=%d wasted=%d, want 1/1/1",
				st.Races, st.LosersCancelled, st.Wasted)
		}
	})
}

// TestRacePartnerIsCrossProtocol pins partner selection: the race pairs
// the primary with the first candidate speaking a different protocol,
// skipping same-protocol siblings.
func TestRacePartnerIsCrossProtocol(t *testing.T) {
	client, fl, _ := raceFleet(t, time.Millisecond,
		map[int]time.Duration{0: 10 * time.Millisecond, 1: 10 * time.Millisecond, 2: 2 * time.Millisecond},
		ProtoDoH, ProtoDoH, ProtoDoQ)
	if _, err := client.Query("xproto.test", dnswire.TypeHTTPS, false); err != nil {
		t.Fatal(err)
	}
	if got := fl.Frontends[1].Stats().Served; got != 0 {
		t.Errorf("same-protocol sibling served %d, want 0 (skipped as race partner)", got)
	}
	if got := fl.Frontends[2].Stats().Served; got != 1 {
		t.Errorf("cross-protocol partner served %d, want 1", got)
	}
}

// TestRaceBothFailFallsThrough pins the failure edges: a primary whose
// dial fails synchronously is ordinary failover (no race started, no
// stagger waited out — RFC 8305 moves on immediately), a race that did
// fire and lost both attempts falls through to the remaining candidates
// serially, and a fully-dark fleet errors.
func TestRaceBothFailFallsThrough(t *testing.T) {
	t.Run("sync-failure-is-failover", func(t *testing.T) {
		client, fl, _ := raceFleet(t, time.Millisecond, nil,
			ProtoDoH, ProtoDoT, ProtoDoQ)
		net := client.Net
		net.SetAddrDown(frontendAddr(0).Addr(), true)
		net.SetAddrDown(frontendAddr(1).Addr(), true)
		if _, err := client.Query("survivor.test", dnswire.TypeHTTPS, false); err != nil {
			t.Fatalf("query failed despite a healthy third candidate: %v", err)
		}
		if got := fl.Frontends[2].Stats().Served; got != 1 {
			t.Errorf("surviving candidate served %d, want 1", got)
		}
		// The dead primary failed before reaching the wire: the partner
		// timer never ran, so no race is counted and nothing is wasted.
		if st := fl.StrategyStats(); st.Races != 0 || st.Wasted != 0 {
			t.Errorf("races=%d wasted=%d after a synchronous primary failure, want 0/0",
				st.Races, st.Wasted)
		}
		downs := 0
		for _, st := range fl.Pool.Stats() {
			if st.Down {
				downs++
			}
		}
		if downs != 2 {
			t.Errorf("%d members benched after the failed exchange, want 2", downs)
		}
		net.SetAddrDown(frontendAddr(2).Addr(), true)
		if _, err := client.Query("dark.test", dnswire.TypeHTTPS, false); err == nil {
			t.Error("query succeeded with the whole fleet down")
		}
	})
	t.Run("fired-race-loses-both", func(t *testing.T) {
		// The primary SERVFAILs slower than the stagger (the timer fired
		// first, so this IS a race) and the partner's address is dark:
		// the exchange falls through to the healthy third candidate.
		net, clock := testNet()
		fl := NewFleet(net, clock, FleetConfig{
			Balance:  BalanceRoundRobin,
			Strategy: StrategyConfig{Kind: StrategyRace, RaceStagger: time.Millisecond},
			Seed:     1,
			Latency:  latencyTable(nil, 10*time.Millisecond),
		})
		fl.Add(ProtoDoH, "fe0", servFailRecursor{}, frontendAddr(0))
		fl.Add(ProtoDoT, "fe1", &stubRecursor{ttl: 300}, frontendAddr(1))
		fl.Add(ProtoDoQ, "fe2", &stubRecursor{ttl: 300}, frontendAddr(2))
		net.SetAddrDown(frontendAddr(1).Addr(), true)
		resp, err := fl.Client.Query("late-fail.test", dnswire.TypeHTTPS, false)
		if err != nil {
			t.Fatalf("query failed despite a healthy third candidate: %v", err)
		}
		if resp.RCode != dnswire.RCodeNoError {
			t.Fatalf("rcode = %v, want the third candidate's answer", resp.RCode)
		}
		if st := fl.StrategyStats(); st.Races != 1 {
			t.Errorf("races=%d, want 1 (the stagger timer fired before the SERVFAIL landed)", st.Races)
		}
	})
}

// TestRaceSkipsBenchedPartner pins the cooldown interaction: once the
// only cross-protocol member is benched, races fall back to a healthy
// same-protocol partner instead of re-dialing the benched member — a
// duplicate attempt against a known-bad upstream wastes load and, with
// RemoveAfter set, would escalate a transient flap into permanent
// removal.
func TestRaceSkipsBenchedPartner(t *testing.T) {
	net, clock := testNet()
	recursor := &stubRecursor{ttl: 300}
	fl := NewFleet(net, clock, FleetConfig{
		Balance:     BalanceRoundRobin,
		Strategy:    StrategyConfig{Kind: StrategyRace, RaceStagger: time.Millisecond},
		Seed:        1,
		RemoveAfter: 2,
		Cache:       CacheConfig{Shards: 4, ShardCapacity: 64},
		Latency:     latencyTable(map[int]time.Duration{0: 10 * time.Millisecond}, 2*time.Millisecond),
	})
	fl.Add(ProtoDoH, "fe0", recursor, frontendAddr(0))
	fl.Add(ProtoDoH, "fe1", recursor, frontendAddr(1))
	fl.Add(ProtoDoT, "fe2", recursor, frontendAddr(2))
	client := fl.Client

	// Every primary misses the 1ms stagger, so every exchange races.
	// The first race picks the DoT member as the cross-protocol partner
	// and benches it (address down, one strike); the following races
	// must fall back to the healthy DoH sibling rather than hand the
	// benched member its RemoveAfter=2 second strike.
	net.SetAddrDown(frontendAddr(2).Addr(), true)
	for i := 0; i < 6; i++ {
		if _, err := client.Query(fmt.Sprintf("benched%d.test", i), dnswire.TypeHTTPS, false); err != nil {
			t.Fatal(err)
		}
	}
	if got := fl.Pool.Len(); got != 3 {
		t.Fatalf("benched member was removed from the pool (len %d, want 3): races kept dialing it", got)
	}
	for _, st := range fl.Pool.Stats() {
		if st.Proto == ProtoDoT && st.Failures != 1 {
			t.Errorf("benched DoT member has %d failures, want 1 (only the race that benched it)", st.Failures)
		}
	}
	if st := fl.StrategyStats(); st.Races < 2 {
		t.Errorf("races=%d, want the fallback same-protocol races to keep firing", st.Races)
	}
}

// TestRaceSingleCandidateDegradesToSerial: nothing to race against.
func TestRaceSingleCandidateDegradesToSerial(t *testing.T) {
	client, fl, _ := raceFleet(t, time.Millisecond,
		map[int]time.Duration{0: 20 * time.Millisecond}, ProtoDoH)
	if _, err := client.Query("solo.test", dnswire.TypeHTTPS, false); err != nil {
		t.Fatal(err)
	}
	if st := fl.StrategyStats(); st.Races != 0 || st.Attempts != 1 {
		t.Errorf("races=%d attempts=%d for a one-member pool, want 0/1", st.Races, st.Attempts)
	}
}

// hedgeFleet builds a two-frontend same-protocol fleet under the Hedge
// strategy with a scripted latency sequence (one draw per dial).
func hedgeFleet(t *testing.T, quantile float64, seq []time.Duration) (*Client, *Fleet) {
	t.Helper()
	net, clock := testNet()
	recursor := &stubRecursor{ttl: 300}
	fl := NewFleet(net, clock, FleetConfig{
		Balance:  BalanceRoundRobin,
		Strategy: StrategyConfig{Kind: StrategyHedge, HedgeQuantile: quantile},
		Seed:     1,
		Cache:    CacheConfig{Shards: 4, ShardCapacity: 64},
	})
	call := 0
	fl.Client.Latency = func(u *Upstream) time.Duration {
		if call < len(seq) {
			call++
			return seq[call-1]
		}
		return 4 * time.Millisecond
	}
	fl.Add(ProtoDoH, "fe0", recursor, frontendAddr(0))
	fl.Add(ProtoDoH, "fe1", recursor, frontendAddr(1))
	return fl.Client, fl
}

// TestHedgeFiresAboveQuantile pins the hedge trigger: with warm
// quantile windows, a primary exchange landing in its own tail fires a
// same-protocol duplicate, and the faster understudy wins.
func TestHedgeFiresAboveQuantile(t *testing.T) {
	// 20 warm draws at 4ms fill both members' quantile windows (ring
	// minimum is quantileMinSamples per member), then one 30ms tail draw
	// for the primary and a 4ms draw for the understudy.
	seq := make([]time.Duration, 20)
	for i := range seq {
		seq[i] = 4 * time.Millisecond
	}
	seq = append(seq, 30*time.Millisecond, 4*time.Millisecond)
	client, fl := hedgeFleet(t, 0.9, seq)
	for i := 0; i < 20; i++ {
		if _, err := client.Query(fmt.Sprintf("warm%d.test", i), dnswire.TypeHTTPS, false); err != nil {
			t.Fatal(err)
		}
	}
	if st := fl.StrategyStats(); st.Hedges != 0 {
		t.Fatalf("hedges fired during the uniform warmup: %d", st.Hedges)
	}
	if _, err := client.Query("tail.test", dnswire.TypeHTTPS, false); err != nil {
		t.Fatal(err)
	}
	st := fl.StrategyStats()
	if st.Hedges != 1 {
		t.Fatalf("hedges=%d after a tail exchange, want 1", st.Hedges)
	}
	// Understudy completes at threshold(4ms)+4ms = 8ms, beating the
	// primary's 30ms: the slow primary is cancelled in flight.
	if st.LosersCancelled != 1 || st.Wasted != 1 {
		t.Errorf("cancelled=%d wasted=%d, want 1/1", st.LosersCancelled, st.Wasted)
	}
	if st.Exchanges != 21 || st.Attempts != 22 {
		t.Errorf("exchanges=%d attempts=%d, want 21/22", st.Exchanges, st.Attempts)
	}
}

// TestHedgeIgnoresReconnectSetupCost pins the trigger's unit: the hedge
// compares the attempt's RTT against the RTT-quantile threshold, so a
// reconnect exchange — nominal RTT plus TCP+TLS setup round-trips after
// a dropped DoT connection — must not fire a hedge.
func TestHedgeIgnoresReconnectSetupCost(t *testing.T) {
	net, clock := testNet()
	recursor := &stubRecursor{ttl: 300}
	fl := NewFleet(net, clock, FleetConfig{
		Balance:  BalanceRoundRobin,
		Strategy: StrategyConfig{Kind: StrategyHedge, HedgeQuantile: 0.9},
		Seed:     1,
		Cache:    CacheConfig{Shards: 4, ShardCapacity: 64},
		Latency:  func(*Upstream) time.Duration { return 4 * time.Millisecond },
	})
	fl.Add(ProtoDoT, "fe0", recursor, frontendAddr(0))
	fl.Add(ProtoDoT, "fe1", recursor, frontendAddr(1))
	client := fl.Client

	// Warm both members' quantile windows past the sample floor.
	for i := 0; i < 20; i++ {
		if _, err := client.Query(fmt.Sprintf("warm%d.test", i), dnswire.TypeHTTPS, false); err != nil {
			t.Fatal(err)
		}
	}
	// Drop both persistent connections: the next exchange redials and
	// pays Cost = 3×RTT while its RTT stays nominal.
	client.dropDoT(frontendAddr(0))
	client.dropDoT(frontendAddr(1))
	if _, err := client.Query("reconnect.test", dnswire.TypeHTTPS, false); err != nil {
		t.Fatal(err)
	}
	if st := fl.StrategyStats(); st.Hedges != 0 {
		t.Errorf("hedges=%d after a reconnect with nominal RTT, want 0 (setup cost is not tail latency)", st.Hedges)
	}
}

// TestHedgeColdQuantileStaysSerial pins the guard: until a member has
// quantileMinSamples RTT samples, no threshold exists and hedging
// behaves serially even for slow exchanges.
func TestHedgeColdQuantileStaysSerial(t *testing.T) {
	seq := []time.Duration{40 * time.Millisecond, 40 * time.Millisecond, 40 * time.Millisecond}
	client, fl := hedgeFleet(t, 0.9, seq)
	for i := 0; i < 3; i++ {
		if _, err := client.Query(fmt.Sprintf("cold%d.test", i), dnswire.TypeHTTPS, false); err != nil {
			t.Fatal(err)
		}
	}
	if st := fl.StrategyStats(); st.Hedges != 0 || st.Attempts != 3 {
		t.Errorf("hedges=%d attempts=%d on a cold quantile window, want 0/3", st.Hedges, st.Attempts)
	}
}

// TestRemovedUpstreamEvictsConnections is the long-campaign leak fix: a
// member failing past Pool.RemoveAfter is removed outright and the
// client drops its cached DoT connection, DoQ session, and resumption
// ticket, so dead simnet connections don't accumulate.
func TestRemovedUpstreamEvictsConnections(t *testing.T) {
	net, clock := testNet()
	recursor := &stubRecursor{ttl: 300}
	fl := NewFleet(net, clock, FleetConfig{
		Balance:     BalanceRoundRobin,
		Seed:        1,
		RemoveAfter: 2,
		Cache:       CacheConfig{Shards: 4, ShardCapacity: 64},
	})
	fl.Add(ProtoDoT, "dot0", recursor, frontendAddr(0))
	fl.Add(ProtoDoQ, "doq1", recursor, frontendAddr(1))
	client := fl.Client

	// Prime both members' connection state (round-robin rotates the
	// primary, and distinct names dodge the shared cache).
	for i := 0; i < 2; i++ {
		if _, err := client.Query(fmt.Sprintf("prime%d.test", i), dnswire.TypeA, false); err != nil {
			t.Fatal(err)
		}
	}
	client.mu.Lock()
	conns, sessions, tickets := len(client.dotConns), len(client.doqSessions), len(client.doqTickets)
	client.mu.Unlock()
	if conns != 1 || sessions != 1 || tickets != 1 {
		t.Fatalf("priming cached %d DoT conns, %d DoQ sessions, %d tickets; want 1/1/1",
			conns, sessions, tickets)
	}

	// Kill both addresses. Benched members stay in the candidate list,
	// so each failed exchange re-tries them: two rounds cross
	// RemoveAfter=2 and both members are removed for good.
	net.SetAddrDown(frontendAddr(0).Addr(), true)
	net.SetAddrDown(frontendAddr(1).Addr(), true)
	for i := 0; i < 2; i++ {
		if _, err := client.Query(fmt.Sprintf("down%d.test", i), dnswire.TypeA, false); err == nil {
			t.Fatal("query succeeded with the whole fleet down")
		}
	}
	if got := fl.Pool.Len(); got != 0 {
		t.Errorf("pool still holds %d members after permanent failure, want 0", got)
	}
	client.mu.Lock()
	conns, sessions, tickets = len(client.dotConns), len(client.doqSessions), len(client.doqTickets)
	client.mu.Unlock()
	if conns != 0 || sessions != 0 || tickets != 0 {
		t.Errorf("removed members left %d DoT conns, %d DoQ sessions, %d tickets cached; want 0/0/0",
			conns, sessions, tickets)
	}
}

// TestRTTQuantile pins the pool's quantile estimator: no estimate below
// the sample floor, exact order statistics above it.
func TestRTTQuantile(t *testing.T) {
	net, clock := testNet()
	_ = net
	pool := NewPool(clock, BalanceRoundRobin, 1)
	u := pool.Add("fe0", frontendAddr(0), ProtoDoH)
	if _, ok := pool.RTTQuantile(u, 0.9); ok {
		t.Error("quantile reported with zero samples")
	}
	for i := 1; i <= 10; i++ {
		pool.ObserveRTT(u, time.Duration(i)*time.Millisecond)
	}
	if d, ok := pool.RTTQuantile(u, 0.0); !ok || d != time.Millisecond {
		t.Errorf("p0 = %v/%v, want 1ms", d, ok)
	}
	if d, ok := pool.RTTQuantile(u, 1.0); !ok || d != 10*time.Millisecond {
		t.Errorf("p100 = %v/%v, want 10ms", d, ok)
	}
	if d, ok := pool.RTTQuantile(u, 0.5); !ok || d != 5*time.Millisecond {
		t.Errorf("p50 = %v/%v, want 5ms (index 4 of 10 ascending)", d, ok)
	}
}

// TestParseStrategyKinds round-trips the strategy names.
func TestParseStrategyKinds(t *testing.T) {
	for _, k := range []StrategyKind{StrategySerial, StrategyRace, StrategyHedge} {
		got, err := ParseStrategy(k.String())
		if err != nil || got != k {
			t.Errorf("ParseStrategy(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseStrategy("p2"); err == nil {
		t.Error("balance name accepted as a resolution strategy")
	}
}

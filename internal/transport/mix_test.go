package transport

import (
	"fmt"
	"testing"

	"repro/internal/dnswire"
)

func TestMixAssignDistributionAndDeterminism(t *testing.T) {
	m := Mix{DoH: 2, DoT: 1, DoQ: 1}
	got := m.Assign(4)
	want := []Protocol{ProtoDoH, ProtoDoT, ProtoDoQ, ProtoDoH}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Assign(4) = %v, want %v", got, want)
		}
	}
	// Counts follow the weights over larger fleets, and the assignment is
	// a pure function of (mix, n) — per-day replicas recompute it.
	counts := map[Protocol]int{}
	for _, p := range m.Assign(100) {
		counts[p]++
	}
	if counts[ProtoDoH] != 50 || counts[ProtoDoT] != 25 || counts[ProtoDoQ] != 25 {
		t.Errorf("Assign(100) counts = %v, want 50/25/25", counts)
	}
	again := m.Assign(100)
	for i, p := range m.Assign(100) {
		if again[i] != p {
			t.Fatal("Assign is not deterministic")
		}
	}
	// The zero mix is all-DoH (the pre-transport default).
	for _, p := range (Mix{}).Assign(5) {
		if p != ProtoDoH {
			t.Fatalf("zero mix assigned %v", p)
		}
	}
}

func TestParseMixAndString(t *testing.T) {
	cases := []struct {
		in   string
		want Mix
	}{
		{"", Mix{DoH: 1}},
		{"doh", Mix{DoH: 1}},
		{"dot", Mix{DoT: 1}},
		{"doq", Mix{DoQ: 1}},
		{"mixed", Mix{DoH: 2, DoT: 1, DoQ: 1}},
		{"doh=60,dot=30,doq=10", Mix{DoH: 60, DoT: 30, DoQ: 10}},
		{"dot=3,doq=1", Mix{DoT: 3, DoQ: 1}},
	}
	for _, tc := range cases {
		got, err := ParseMix(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseMix(%q) = %+v, %v; want %+v", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"dnscrypt", "doh=x", "doh=0,dot=0", "doh:1"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
	if s := (Mix{DoH: 2, DoT: 1, DoQ: 1}).String(); s != "doh=2,dot=1,doq=1" {
		t.Errorf("String() = %q", s)
	}
	if s := (Mix{}).String(); s != "doh" {
		t.Errorf("zero mix String() = %q, want doh", s)
	}
}

func TestProtocolParseAndPorts(t *testing.T) {
	for _, p := range []Protocol{ProtoDoH, ProtoDoT, ProtoDoQ} {
		got, err := ParseProtocol(p.String())
		if err != nil || got != p {
			t.Errorf("ParseProtocol(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseProtocol("dnscrypt"); err == nil {
		t.Error("unknown protocol accepted")
	}
	if ProtoDoH.Port() != 443 || ProtoDoT.Port() != 853 || ProtoDoQ.Port() != 853 {
		t.Error("conventional ports wrong")
	}
}

// TestMixedFleetFailsOverAcrossProtocols: a mixed fleet is one failover
// domain — when the DoH and DoT members die, queries ride the DoQ
// member, and the shared cache keeps serving whatever any protocol
// fetched.
func TestMixedFleetFailsOverAcrossProtocols(t *testing.T) {
	client, fl, recursor, net, _ := newTestFleet(t, 3, BalanceRoundRobin,
		ProtoDoH, ProtoDoT, ProtoDoQ)
	for i := 0; i < 6; i++ {
		if _, err := client.Query(fmt.Sprintf("warm%d.test", i), dnswire.TypeA, false); err != nil {
			t.Fatal(err)
		}
	}
	perProto := fl.ProtocolStats()
	for _, p := range []Protocol{ProtoDoH, ProtoDoT, ProtoDoQ} {
		if perProto[p].Served != 2 {
			t.Errorf("%s served %d, want 2 (round-robin over the mix)", p, perProto[p].Served)
		}
	}

	net.SetAddrDown(fl.Addrs[0].Addr(), true) // doh
	net.SetAddrDown(fl.Addrs[1].Addr(), true) // dot
	before := recursor.queries
	for i := 0; i < 3; i++ {
		if _, err := client.Query(fmt.Sprintf("fo%d.test", i), dnswire.TypeA, false); err != nil {
			t.Fatalf("query %d failed with a healthy DoQ member: %v", i, err)
		}
	}
	if recursor.queries != before+3 {
		t.Errorf("recursor saw %d new queries, want 3", recursor.queries-before)
	}
	// Cache entries fetched through DoQ serve later DoH hits once the
	// fleet heals: the cache sits below the envelopes.
	net.SetAddrDown(fl.Addrs[0].Addr(), false)
	net.SetAddrDown(fl.Addrs[1].Addr(), false)
	fl.Pool.clock.Advance(DefaultCooldown + 1)
	before = recursor.queries
	for i := 0; i < 3; i++ {
		if _, err := client.Query(fmt.Sprintf("fo%d.test", i), dnswire.TypeA, false); err != nil {
			t.Fatal(err)
		}
	}
	if recursor.queries != before {
		t.Errorf("cross-protocol cache hits leaked %d queries upstream", recursor.queries-before)
	}
}

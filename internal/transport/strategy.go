package transport

import (
	"fmt"
	"time"

	"repro/internal/dnswire"
	"repro/internal/obs"
)

// Attempt is the outcome of one upstream try, as produced by the
// client's per-protocol dialers and consumed by a Strategy.
type Attempt struct {
	// Upstream is the member the attempt was dialed against.
	Upstream *Upstream
	// Msg is the decoded answer (nil when Err is set); Stale marks an
	// RFC 8767 stale answer.
	Msg   *dnswire.Message
	Stale bool
	// Bench marks errors that indicate a broken member (dead address,
	// protocol mismatch, connection death) rather than a struggling
	// recursor behind a healthy transport.
	Bench bool
	Err   error
	// RTT is the attempt's latency sample (the latency model's draw, or
	// wall clock without one), already folded into the pool's EWMA and
	// quantile window by the dialer.
	RTT time.Duration
	// Cost is the attempt's virtual completion cost: RTT plus any
	// connection-setup round-trips the attempt paid (TCP+TLS for a fresh
	// DoT connection, the QUIC handshake for a fresh DoQ session). Zero
	// when the attempt failed before reaching the envelope exchange —
	// such an attempt never went on the wire, so it occupies no time on
	// the race timeline and wastes no upstream work.
	Cost time.Duration
}

// usable reports whether the attempt can win an exchange: it produced an
// answer that is not a SERVFAIL (a SERVFAIL is kept as a last resort,
// never raced to victory — the paper's Google→Cloudflare fallback).
func (at Attempt) usable() bool {
	return at.Err == nil && at.Msg.RCode != dnswire.RCodeServFail
}

// Driver is what a Strategy needs from the transport client: synchronous
// per-protocol dial attempts plus pool and clock accounting. *Client is
// the production implementation.
type Driver interface {
	// Dial performs one synchronous attempt against the member over its
	// envelope protocol. The attempt's RTT is fed to the pool as part of
	// the dial (completed exchanges are valid samples no matter which
	// attempt wins); the virtual clock is NOT advanced — the strategy
	// owns the exchange's timeline and charges its critical path once.
	// tr, when non-nil, threads server-side span recording through the
	// envelope (nil dials untraced).
	Dial(up *Upstream, q *dnswire.Message, tr *obs.Trace) Attempt
	// Bench reports a transport-level failure to the pool (cooldown, and
	// eventually removal — see Pool.RemoveAfter).
	Bench(up *Upstream)
	// Charge advances the virtual clock by the exchange's critical-path
	// duration; a no-op without a latency model or with ChargeLatency
	// off.
	Charge(d time.Duration)
	// Quantile reports the member's q-quantile RTT estimate (ok false
	// until enough samples exist) — the hedge timer's threshold.
	Quantile(up *Upstream, q float64) (time.Duration, bool)
	// Benched reports whether the member is currently cooling down
	// after a failure. Candidate orderings sort benched members last as
	// a last resort for serial failover; racing and hedging must not
	// pick them as partners — a duplicate attempt against a known-bad
	// member wastes load and, with Pool.RemoveAfter set, can escalate a
	// transient flap into permanent removal.
	Benched(up *Upstream) bool
	// Discard returns a losing attempt's answer message to the driver's
	// recycle pool. Strategies must call it exactly for attempts whose
	// answer can no longer escape the exchange — raced or hedged losers,
	// and parked SERVFAILs superseded by a better answer; the winning
	// attempt's message belongs to the exchange's caller.
	Discard(at Attempt)
}

// Outcome is a strategy's result: the winning attempt plus per-attempt
// telemetry. Exactly one of Winner.Msg and Err is set.
type Outcome struct {
	Winner Attempt
	Err    error

	// Elapsed is the exchange's critical-path virtual duration — the sum
	// of every clock charge the strategy made, i.e. how far the exchange
	// advanced the virtual timeline. It accumulates even when latency
	// charging is off, so tracing and latency histograms see the modeled
	// timeline either way.
	Elapsed time.Duration

	// Attempts counts dials performed for the exchange (1 on the serial
	// happy path; 2 when a race or hedge fired).
	Attempts int
	// Races counts happy-eyeballs races actually started (the partner
	// launched because the primary missed the stagger deadline).
	Races int
	// LosersCancelled counts raced or hedged attempts cancelled in
	// flight: their virtual completion lay beyond the winner's, so a
	// real client would have torn them down before the answer arrived.
	LosersCancelled int
	// Hedges counts hedged second attempts fired because the primary
	// exceeded its latency-quantile threshold.
	Hedges int
	// Wasted counts attempts that reached the wire but whose answer was
	// not used — the duplicated upstream load racing and hedging pay for
	// their latency win.
	Wasted int
}

// Strategy is a pluggable resolution policy: given the pool's
// failover-ordered candidates and a driver that can dial any of them, it
// decides which candidates are attempted, in what simulated overlap, and
// which attempt's answer wins.
//
// Determinism contract: strategies run on the virtual clock. Dials
// execute synchronously and sequentially; concurrency is *simulated* by
// comparing virtual completion times (launch offset + Attempt.Cost), so
// an exchange's outcome is a pure function of (clock, pool state,
// strategy parameters, latency model) — no goroutines, no wall-clock
// reads, no randomness. That is what lets pipelined campaigns stay
// byte-identical to serial runs under every strategy.
type Strategy interface {
	// Name tags the strategy in flags, stats, and bench reports.
	Name() string
	// Resolve drives one exchange over the ordered candidates. tr, when
	// non-nil, receives a "dial" span per attempt at its simulated launch
	// offset (stagger edges, hedge thresholds) with the attempt's virtual
	// cost as its duration.
	Resolve(d Driver, q *dnswire.Message, candidates []*Upstream, tr *obs.Trace) Outcome
}

// StrategyKind enumerates the built-in resolution strategies for flags
// and campaign config.
type StrategyKind int

const (
	// StrategySerial is SerialFailover, the pre-strategy behavior and
	// the zero-value default.
	StrategySerial StrategyKind = iota
	// StrategyRace is Race: happy-eyeballs protocol racing.
	StrategyRace
	// StrategyHedge is Hedge: quantile-armed duplicate queries.
	StrategyHedge
)

// String names the strategy kind.
func (k StrategyKind) String() string {
	switch k {
	case StrategySerial:
		return "serial"
	case StrategyRace:
		return "race"
	case StrategyHedge:
		return "hedge"
	default:
		return fmt.Sprintf("strategy(%d)", int(k))
	}
}

// ParseStrategy resolves a flag value to a StrategyKind.
func ParseStrategy(name string) (StrategyKind, error) {
	for _, k := range []StrategyKind{StrategySerial, StrategyRace, StrategyHedge} {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("transport: unknown strategy %q (want serial, race, or hedge)", name)
}

// StrategyConfig selects and parameterizes a resolution strategy; the
// zero value is serial failover.
type StrategyConfig struct {
	Kind StrategyKind
	// RaceStagger overrides Race's head start (zero: DefaultRaceStagger).
	RaceStagger time.Duration
	// HedgeQuantile overrides Hedge's arming quantile (zero:
	// DefaultHedgeQuantile).
	HedgeQuantile float64
}

// New builds the configured Strategy.
func (c StrategyConfig) New() Strategy {
	switch c.Kind {
	case StrategyRace:
		return Race{Stagger: c.RaceStagger}
	case StrategyHedge:
		return Hedge{Quantile: c.HedgeQuantile}
	default:
		return SerialFailover{}
	}
}

// SerialFailover tries candidates strictly in pool order and keeps the
// first usable answer — the pre-strategy Client.Exchange behavior,
// byte-identical results included: one attempt at a time, each attempt's
// cost charged before the next dial, SERVFAILs remembered and returned
// only when every member agrees.
type SerialFailover struct{}

// Name implements Strategy.
func (SerialFailover) Name() string { return "serial" }

// Resolve implements Strategy.
func (SerialFailover) Resolve(d Driver, q *dnswire.Message, candidates []*Upstream, tr *obs.Trace) Outcome {
	return serialResolve(d, q, candidates, Outcome{}, Attempt{}, nil, len(candidates), tr)
}

// charge advances the virtual clock by dur and accumulates it into the
// outcome's critical-path total. Every clock charge a strategy makes
// goes through here, so Outcome.Elapsed is the exchange's timeline by
// construction.
func charge(d Driver, out *Outcome, dur time.Duration) {
	d.Charge(dur)
	out.Elapsed += dur
}

// dialSpan opens a traced dial attempt at the given launch offset; mode
// tags the attempt's role on the exchange timeline. Unsampled exchanges
// (tr nil, the overwhelmingly common case) return early before the span
// name and label slice are built, keeping the hot path allocation-free.
func dialSpan(tr *obs.Trace, up *Upstream, offset time.Duration, mode string) int {
	if tr == nil {
		return -1
	}
	return tr.Enter("dial "+up.Name, offset, obs.L("proto", up.Proto.String()), obs.L("mode", mode))
}

// exitDialSpan closes a dial span with the attempt's virtual cost and
// outcome.
func exitDialSpan(tr *obs.Trace, idx int, at Attempt) {
	if tr == nil {
		return
	}
	outcome := "answer"
	switch {
	case at.Err != nil:
		outcome = "error"
	case at.Msg.RCode == dnswire.RCodeServFail:
		outcome = "servfail"
	}
	tr.Exit(idx, at.Cost, obs.L("outcome", outcome))
}

// serialResolve walks candidates in order, continuing from the given
// partial outcome — the shared tail for SerialFailover and for Race and
// Hedge falling through after their paired attempts lost. total is the
// exchange's full candidate count, kept for the all-failed error. Each
// dial launches at the timeline charged so far (out.Elapsed), which is
// exactly serial semantics: one attempt at a time, back to back.
func serialResolve(d Driver, q *dnswire.Message, candidates []*Upstream, out Outcome, servFail Attempt, lastErr error, total int, tr *obs.Trace) Outcome {
	for _, up := range candidates {
		span := dialSpan(tr, up, out.Elapsed, "serial")
		at := d.Dial(up, q, tr)
		exitDialSpan(tr, span, at)
		out.Attempts++
		charge(d, &out, at.Cost)
		if at.Err != nil {
			if at.Bench {
				d.Bench(up)
			}
			lastErr = fmt.Errorf("upstream %s (%s): %w", up.Name, up.Proto, at.Err)
			continue
		}
		// A SERVFAIL is a healthy transport over a struggling recursor:
		// try the next pool member without benching this one. Returned
		// as-is only if every member agrees.
		if at.Msg.RCode == dnswire.RCodeServFail {
			if servFail.Msg != nil {
				d.Discard(servFail)
			}
			servFail = at
			continue
		}
		if servFail.Msg != nil {
			d.Discard(servFail)
		}
		out.Winner = at
		return out
	}
	if servFail.Msg != nil {
		out.Winner = servFail
		return out
	}
	out.Err = fmt.Errorf("transport: all %d upstreams failed: %w", total, lastErr)
	return out
}

// DefaultRaceStagger is Race's head start for the primary candidate —
// the RFC 8305 "connection attempt delay", scaled to the simulation's
// synthetic 2–20ms latency band so races actually fire. (Browsers use
// 50–250ms against real-world RTTs.)
const DefaultRaceStagger = 5 * time.Millisecond

// Race is happy-eyeballs protocol racing (the shape Firefox and Chrome
// use for DoH fallback, and RFC 8305 codifies for address families): the
// top pool candidate launches immediately, and if its answer has not
// arrived when the stagger timer fires, the next candidate speaking a
// *different* protocol launches too. First usable answer wins; the loser
// is cancelled (and accounted as wasted upstream load). If both racers
// fail, the exchange falls through to the remaining candidates serially.
//
// On the virtual clock the race is simulated, not scheduled: the
// primary's attempt runs synchronously, its Cost decides whether the
// partner launches at all (an answer at or before the stagger edge
// cancels the timer), and completion times are compared as launch offset
// plus Cost. Ties go to the primary — it started first.
type Race struct {
	// Stagger is the primary's head start before the cross-protocol
	// partner launches; zero selects DefaultRaceStagger.
	Stagger time.Duration
}

// Name implements Strategy.
func (Race) Name() string { return "race" }

// Resolve implements Strategy.
func (r Race) Resolve(d Driver, q *dnswire.Message, candidates []*Upstream, tr *obs.Trace) Outcome {
	if len(candidates) < 2 {
		return SerialFailover{}.Resolve(d, q, candidates, tr)
	}
	stagger := r.Stagger
	if stagger <= 0 {
		stagger = DefaultRaceStagger
	}
	// The race pairs the balancer's pick with the first *healthy*
	// candidate speaking a different protocol — the happy-eyeballs
	// point is protocol diversity. A single-protocol fleet degrades to
	// racing the plain second healthy candidate (connection racing);
	// with no healthy partner (or a benched primary) there is nothing
	// worth racing and the exchange walks the candidates serially.
	primary := candidates[0]
	pi, fb := pickPartner(d, candidates, func(c *Upstream) bool { return c.Proto != primary.Proto })
	if pi < 0 {
		pi = fb
	}
	if pi < 0 || d.Benched(primary) {
		return SerialFailover{}.Resolve(d, q, candidates, tr)
	}

	var out Outcome
	span := dialSpan(tr, primary, 0, "race-primary")
	atA := d.Dial(primary, q, tr)
	exitDialSpan(tr, span, atA)
	out.Attempts++
	if atA.Err != nil && atA.Bench {
		d.Bench(primary)
	}
	// The primary answered at or before the stagger edge: the timer is
	// cancelled and the partner never launches (no race, no waste).
	if atA.usable() && atA.Cost <= stagger {
		charge(d, &out, atA.Cost)
		out.Winner = atA
		return out
	}
	// The primary's outcome was known before the timer fired — a dial
	// failure detected synchronously (never on wire, zero cost) or an
	// error/SERVFAIL arriving inside the stagger. RFC 8305 moves to the
	// next attempt immediately rather than waiting out the timer, so
	// this is ordinary failover, not a race.
	if !atA.usable() && attemptCompletion(atA, 0) < stagger {
		charge(d, &out, atA.Cost)
		servFail, lastErr := attemptResidue(atA, primary)
		return serialResolve(d, q, candidates[1:], out, servFail, lastErr, len(candidates), tr)
	}

	// Timer fired: the partner launches at the stagger offset.
	out.Races++
	span = dialSpan(tr, candidates[pi], stagger, "race-partner")
	atB := d.Dial(candidates[pi], q, tr)
	exitDialSpan(tr, span, atB)
	out.Attempts++
	if atB.Err != nil && atB.Bench {
		d.Bench(candidates[pi])
	}
	out, done := raceDecide(d, out, atA, atB, atA.Cost, stagger+atB.Cost)
	if done {
		return out
	}

	// Both racers lost: charge the race window and fail over serially
	// through the remaining candidates, keeping any SERVFAIL as the
	// answer of last resort.
	servFail, lastErr := raceResidue(d, atA, atB, primary, candidates[pi])
	charge(d, &out, maxAttemptCompletion(atA.Cost, attemptCompletion(atB, stagger)))
	var restBuf [8]*Upstream
	rest := restTail(restBuf[:0], candidates, pi)
	return serialResolve(d, q, rest, out, servFail, lastErr, len(candidates), tr)
}

// pickPartner scans the candidates after the head for un-benched
// members: pick is the first satisfying prefer, fallback the first of
// any kind (-1 when absent). Race accepts the fallback — connection
// racing beats no racing — while Hedge does not: its contract is
// same-protocol only.
func pickPartner(d Driver, candidates []*Upstream, prefer func(*Upstream) bool) (pick, fallback int) {
	pick, fallback = -1, -1
	for i := 1; i < len(candidates); i++ {
		if d.Benched(candidates[i]) {
			continue
		}
		if prefer(candidates[i]) {
			return i, fallback
		}
		if fallback < 0 {
			fallback = i
		}
	}
	return pick, fallback
}

// raceDecide picks the winner between two simulated-concurrent attempts
// completing at aDone and bDone on the exchange timeline. done is false
// when neither attempt is usable.
func raceDecide(d Driver, out Outcome, atA, atB Attempt, aDone, bDone time.Duration) (Outcome, bool) {
	switch {
	case atA.usable() && (!atB.usable() || aDone <= bDone):
		charge(d, &out, aDone)
		out.Winner = atA
		out = accountLoser(out, atB, bDone, aDone)
		d.Discard(atB)
		return out, true
	case atB.usable():
		charge(d, &out, bDone)
		out.Winner = atB
		out = accountLoser(out, atA, aDone, bDone)
		d.Discard(atA)
		return out, true
	}
	return out, false
}

// accountLoser books the losing attempt: any attempt that reached the
// wire is wasted upstream load, and one whose completion lay beyond the
// winner's was cancelled in flight.
func accountLoser(out Outcome, loser Attempt, loserDone, winnerDone time.Duration) Outcome {
	if loser.Cost <= 0 && loser.Err != nil {
		return out // never reached the wire
	}
	out.Wasted++
	if loserDone > winnerDone {
		out.LosersCancelled++
	}
	return out
}

// attemptResidue extracts what a losing attempt leaves behind: the
// last-resort SERVFAIL answer, or the wrapped failure context.
func attemptResidue(at Attempt, up *Upstream) (servFail Attempt, lastErr error) {
	if at.Err != nil {
		return Attempt{}, fmt.Errorf("upstream %s (%s): %w", up.Name, up.Proto, at.Err)
	}
	if at.Msg.RCode == dnswire.RCodeServFail {
		servFail = at
	}
	return servFail, nil
}

// raceResidue merges the residue of two losing attempts, recycling the
// SERVFAIL the later one supersedes.
func raceResidue(d Driver, atA, atB Attempt, upA, upB *Upstream) (servFail Attempt, lastErr error) {
	sfA, errA := attemptResidue(atA, upA)
	sfB, errB := attemptResidue(atB, upB)
	if sfB.Msg != nil {
		if sfA.Msg != nil {
			d.Discard(sfA)
		}
		sfA = sfB
	}
	if errA != nil {
		lastErr = errA
	}
	if errB != nil {
		lastErr = errB
	}
	return sfA, lastErr
}

// restTail collects the candidates a paired strategy has not yet tried —
// everything but the head and the partner at index skip — into buf.
// Callers hand in a stack array's empty slice, so the common fleet sizes
// fall through serially without heap-allocating the remainder list.
func restTail(buf []*Upstream, candidates []*Upstream, skip int) []*Upstream {
	for i, up := range candidates {
		if i != 0 && i != skip {
			buf = append(buf, up)
		}
	}
	return buf
}

// attemptCompletion places an attempt on the exchange timeline: launch
// offset plus cost for attempts that reached the wire, zero otherwise.
func attemptCompletion(at Attempt, offset time.Duration) time.Duration {
	if at.Cost <= 0 {
		return 0
	}
	return offset + at.Cost
}

func maxAttemptCompletion(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// DefaultHedgeQuantile arms the hedge timer at the primary's p90: the
// tail dnscrypt-proxy's per-server latency estimates are built to avoid.
const DefaultHedgeQuantile = 0.9

// Hedge is a hedged-query strategy (the "defer request" pattern): the
// primary candidate is queried alone, but a timer armed at the primary's
// tracked latency quantile launches a duplicate to an understudy — the
// next candidate speaking the *same* protocol, this is not a protocol
// race — and the first usable answer wins. Until the pool has enough
// samples to trust a quantile, hedging stays serial.
//
// Like Race, the overlap is simulated on the virtual clock: the hedge
// fires exactly when the primary's RTT exceeds the threshold (RTT, not
// Cost — the quantile window tracks RTTs, and a reconnect's setup
// round-trips must not read as tail latency), the understudy launches
// at the primary's send time + threshold, and the earlier usable
// completion wins (ties to the primary).
type Hedge struct {
	// Quantile is the per-upstream latency quantile that arms the hedge
	// timer; zero selects DefaultHedgeQuantile.
	Quantile float64
}

// Name implements Strategy.
func (Hedge) Name() string { return "hedge" }

// Resolve implements Strategy.
func (h Hedge) Resolve(d Driver, q *dnswire.Message, candidates []*Upstream, tr *obs.Trace) Outcome {
	quantile := h.Quantile
	if quantile <= 0 {
		quantile = DefaultHedgeQuantile
	}
	primary := candidates[0]
	threshold, armed := d.Quantile(primary, quantile)

	var out Outcome
	span := dialSpan(tr, primary, 0, "hedge-primary")
	atA := d.Dial(primary, q, tr)
	exitDialSpan(tr, span, atA)
	out.Attempts++
	if atA.Err != nil {
		// A transport failure is ordinary failover, not a hedge: the
		// error is detected synchronously, so the exchange moves on to
		// the remaining candidates serially.
		if atA.Bench {
			d.Bench(primary)
		}
		charge(d, &out, atA.Cost)
		lastErr := fmt.Errorf("upstream %s (%s): %w", primary.Name, primary.Proto, atA.Err)
		return serialResolve(d, q, candidates[1:], out, Attempt{}, lastErr, len(candidates), tr)
	}
	// No timer armed (cold quantile window, or nobody to hedge to), or
	// the primary beat its threshold: serial semantics. The trigger
	// compares the attempt's RTT — the quantity the quantile window
	// tracks — not its Cost: a reconnect exchange pays setup round-trips
	// on top of a nominal RTT, and hedging on connection churn would
	// duplicate load exactly when the fleet is already reconnecting.
	if !armed || len(candidates) < 2 || atA.RTT <= threshold {
		charge(d, &out, atA.Cost)
		if atA.usable() {
			out.Winner = atA
			return out
		}
		return serialResolve(d, q, candidates[1:], out, atA, nil, len(candidates), tr)
	}

	// The primary blew its quantile: the hedge fires at the threshold,
	// before the primary's answer arrived — to the first healthy
	// same-protocol understudy, and only same-protocol (a cross-
	// protocol duplicate would be an undeclared race, armed by a
	// threshold that says nothing about the other protocol's latency);
	// never a benched member (duplicating load onto a known-bad
	// upstream only hastens its removal). With no eligible understudy
	// the exchange stays serial.
	ui, _ := pickPartner(d, candidates, func(c *Upstream) bool { return c.Proto == primary.Proto })
	if ui < 0 {
		charge(d, &out, atA.Cost)
		if atA.usable() {
			out.Winner = atA
			return out
		}
		return serialResolve(d, q, candidates[1:], out, atA, nil, len(candidates), tr)
	}
	out.Hedges++
	understudy := candidates[ui]
	// The hedge timer starts when the primary's request goes out — after
	// any connection setup it paid — so the understudy launches at
	// send-time + threshold on the exchange timeline.
	hedgeAt := atA.Cost - atA.RTT + threshold
	span = dialSpan(tr, understudy, hedgeAt, "hedge-understudy")
	atB := d.Dial(understudy, q, tr)
	exitDialSpan(tr, span, atB)
	out.Attempts++
	if atB.Err != nil && atB.Bench {
		d.Bench(understudy)
	}
	out, done := raceDecide(d, out, atA, atB, atA.Cost, hedgeAt+atB.Cost)
	if done {
		return out
	}

	// Primary SERVFAILed and the hedge lost too: serial fallthrough.
	servFail, lastErr := raceResidue(d, atA, atB, primary, understudy)
	charge(d, &out, maxAttemptCompletion(atA.Cost, attemptCompletion(atB, hedgeAt)))
	var restBuf [8]*Upstream
	rest := restTail(restBuf[:0], candidates, ui)
	return serialResolve(d, q, rest, out, servFail, lastErr, len(candidates), tr)
}

// StrategyStats snapshots a client's resolution-strategy telemetry: the
// racing/hedging overhead counters and the winner-protocol distribution
// (which envelope actually answered — the happy-eyeballs question).
type StrategyStats struct {
	// Strategy is the active strategy's name.
	Strategy string
	// Exchanges counts completed Exchange calls; Attempts counts dials,
	// so Attempts-Exchanges is the duplicated-load overhead ceiling.
	Exchanges uint64
	Attempts  uint64
	// Races, LosersCancelled, Hedges, and Wasted aggregate the per-
	// exchange Outcome telemetry.
	Races           uint64
	LosersCancelled uint64
	Hedges          uint64
	Wasted          uint64
	// WinsByProto counts winning answers per envelope protocol.
	WinsByProto map[Protocol]uint64
}

// Add folds another snapshot's counters in (for aggregation across
// clients).
func (s *StrategyStats) Add(o StrategyStats) {
	s.Exchanges += o.Exchanges
	s.Attempts += o.Attempts
	s.Races += o.Races
	s.LosersCancelled += o.LosersCancelled
	s.Hedges += o.Hedges
	s.Wasted += o.Wasted
	if s.WinsByProto == nil {
		s.WinsByProto = map[Protocol]uint64{}
	}
	for p, n := range o.WinsByProto {
		s.WinsByProto[p] += n
	}
}

// WasteRate is the fraction of dials whose answer went unused — the
// duplicated-load price of racing and hedging (0 when idle).
func (s StrategyStats) WasteRate() float64 {
	return obs.Ratio(s.Wasted, s.Attempts)
}

// Sub removes a baseline snapshot's counters (for drill deltas); the
// mirror image of Add so the counter list lives in one place.
func (s *StrategyStats) Sub(o StrategyStats) {
	s.Exchanges -= o.Exchanges
	s.Attempts -= o.Attempts
	s.Races -= o.Races
	s.LosersCancelled -= o.LosersCancelled
	s.Hedges -= o.Hedges
	s.Wasted -= o.Wasted
	if s.WinsByProto == nil {
		s.WinsByProto = map[Protocol]uint64{}
	}
	for p, n := range o.WinsByProto {
		s.WinsByProto[p] -= n
	}
}

package transport

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dnswire"
)

// dotFixture stands up one DoT frontend and dials it directly.
func dotFixture(t *testing.T) (*DoTConn, *DoTServer, *stubRecursor) {
	t.Helper()
	net, clock := testNet()
	recursor := &stubRecursor{ttl: 300}
	srv := NewDoTServer("dot0", recursor, NewCache(clock, 4, 64), 0)
	srv.Register(net, frontendAddr(0))
	return srv.DialDoT(net, frontendAddr(0)), srv, recursor
}

func packQuery(t *testing.T, id uint16, name string) []byte {
	t.Helper()
	wire, err := dnswire.NewQuery(id, name, dnswire.TypeA, false).Pack()
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

// TestDoTSplitLengthPrefixAcrossReads drips one frame into the connection
// byte by byte — the 2-byte length prefix itself split across writes —
// and expects exactly one well-formed response once the frame completes.
func TestDoTSplitLengthPrefixAcrossReads(t *testing.T) {
	conn, _, _ := dotFixture(t)
	frame := Frame(packQuery(t, 7, "split.test"))

	// First byte of the length prefix alone.
	if err := conn.Write(frame[:1]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := conn.ReadResponse(); err == nil {
		t.Fatal("response emitted from half a length prefix")
	}
	// Second prefix byte plus half the message.
	mid := 2 + len(frame[2:])/2
	if err := conn.Write(frame[1:mid]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := conn.ReadResponse(); err == nil {
		t.Fatal("response emitted from a truncated message body")
	}
	// The rest: the frame completes and is answered.
	if err := conn.Write(frame[mid:]); err != nil {
		t.Fatal(err)
	}
	wire, stale, err := conn.ReadResponse()
	if err != nil {
		t.Fatal(err)
	}
	if stale {
		t.Error("fresh answer marked stale")
	}
	m, err := dnswire.Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if m.ID != 7 || len(m.Answer) != 1 {
		t.Errorf("reassembled answer mangled: id=%d answers=%d", m.ID, len(m.Answer))
	}
}

// TestDoTPipelinedOutOfOrderResponses writes three frames in one segment
// and expects the responses out of order (reverse arrival), each matched
// to its query by ID — the RFC 7858 pipelining contract.
func TestDoTPipelinedOutOfOrderResponses(t *testing.T) {
	conn, _, recursor := dotFixture(t)
	var burst []byte
	for i := uint16(1); i <= 3; i++ {
		burst = append(burst, Frame(packQuery(t, i, fmt.Sprintf("p%d.test", i)))...)
	}
	if err := conn.Write(burst); err != nil {
		t.Fatal(err)
	}
	if recursor.queries != 3 {
		t.Fatalf("pipelined burst reached the recursor %d times, want 3", recursor.queries)
	}
	var order []uint16
	for i := 0; i < 3; i++ {
		wire, _, err := conn.ReadResponse()
		if err != nil {
			t.Fatal(err)
		}
		order = append(order, binary.BigEndian.Uint16(wire))
	}
	if order[0] != 3 || order[1] != 2 || order[2] != 1 {
		t.Errorf("response order = %v, want out-of-order [3 2 1]", order)
	}
}

// TestDoTExchangeDemuxesConcurrentPipelines runs many goroutines
// pipelining distinct queries over one connection; every caller must get
// the response bearing its own ID even though frames interleave and
// arrive out of order.
func TestDoTExchangeDemuxesConcurrentPipelines(t *testing.T) {
	conn, _, _ := dotFixture(t)
	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := uint16(i + 1)
			q := dnswire.NewQuery(id, fmt.Sprintf("c%d.test", i), dnswire.TypeA, false)
			m, _, err := conn.Exchange(q)
			if err != nil {
				errs[i] = err
				return
			}
			if m.ID != id {
				errs[i] = fmt.Errorf("got response ID %d, want %d", m.ID, id)
			}
			if len(m.Answer) != 1 {
				errs[i] = fmt.Errorf("answer count %d", len(m.Answer))
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("exchange %d: %v", i, err)
		}
	}
}

// TestDoTMalformedFrameClosesConnection: an unparseable message inside a
// well-framed segment kills the connection, per RFC 7858's handling of
// framing violations.
func TestDoTMalformedFrameClosesConnection(t *testing.T) {
	conn, _, _ := dotFixture(t)
	if err := conn.Write(Frame([]byte{0xde, 0xad})); err == nil {
		t.Fatal("malformed frame accepted")
	}
	if err := conn.Write(Frame(packQuery(t, 1, "after.test"))); err == nil {
		t.Fatal("connection still usable after a framing violation")
	}
}

// TestDoTMidStreamDeathFailsOverToPoolSibling is the satellite edge: a
// connection dies mid-stream (failure injection takes the frontend's
// address down between exchanges) and the client transparently redials
// the next pool member, benching the dead one.
func TestDoTMidStreamDeathFailsOverToPoolSibling(t *testing.T) {
	client, fl, _, net, _ := newTestFleet(t, 2, BalanceRoundRobin, ProtoDoT)

	// Prime a persistent connection to whichever member answers first.
	if _, err := client.Query("pre.test", dnswire.TypeA, false); err != nil {
		t.Fatal(err)
	}
	first := -1
	for i, st := range fl.Stats() {
		if st.Served > 0 {
			first = i
		}
	}
	if first < 0 {
		t.Fatal("no frontend served the priming query")
	}

	// Kill that member's address: its persistent connection is now dead
	// mid-stream. The next queries must ride the surviving sibling.
	net.SetAddrDown(fl.Addrs[first].Addr(), true)
	for i := 0; i < 3; i++ {
		if _, err := client.Query(fmt.Sprintf("fo%d.test", i), dnswire.TypeA, false); err != nil {
			t.Fatalf("query %d failed despite a healthy DoT sibling: %v", i, err)
		}
	}
	survivor := 1 - first
	if got := fl.Frontends[survivor].Stats().Served; got < 3 {
		t.Errorf("survivor served %d, want ≥ 3", got)
	}
	downs := 0
	for _, st := range client.Pool.Stats() {
		if st.Down {
			downs++
		}
	}
	if downs != 1 {
		t.Errorf("%d members benched, want 1 (the dead connection's owner)", downs)
	}

	// Recovery: the address comes back; after the cooldown the member is
	// redialed with a fresh connection.
	net.SetAddrDown(fl.Addrs[first].Addr(), false)
	fl.Pool.clock.Advance(DefaultCooldown + time.Second)
	for i := 0; i < 4; i++ {
		if _, err := client.Query(fmt.Sprintf("back%d.test", i), dnswire.TypeA, false); err != nil {
			t.Fatal(err)
		}
	}
	if fl.Frontends[first].Stats().Served == 0 {
		t.Error("recovered member never served after redial")
	}
}

package transport

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/dnswire"
	"repro/internal/obs"
	"repro/internal/simnet"
)

// newAnomalyFleet stands up a serve-stale-capable fleet with the anomaly
// tier on: default-rate head sampling plus tail retention, and a flight
// recorder wired through client and frontends.
func newAnomalyFleet(t *testing.T, n int) (*Fleet, *stubRecursor, *simnet.Network, *simnet.Clock, *obs.Tracer, *obs.Recorder) {
	t.Helper()
	net, clock := testNet()
	tracer := obs.NewTracer(clock, obs.TraceConfig{
		SampleEvery: obs.DefaultSampleEvery,
		Tail:        &obs.TailConfig{TopK: 8},
	})
	recorder := obs.NewRecorder(clock, 256)
	recursor := &stubRecursor{ttl: 60}
	fl := NewFleet(net, clock, FleetConfig{
		Seed:            1,
		Cache:           CacheConfig{Shards: 4, ShardCapacity: 64, StaleWindow: time.Hour},
		FailureCooldown: 5 * time.Minute,
		Tracer:          tracer,
		Recorder:        recorder,
	})
	for i := 0; i < n; i++ {
		fl.Add(ProtoDoH, fmt.Sprintf("fe%d", i), recursor, frontendAddr(i))
	}
	return fl, recursor, net, clock, tracer, recorder
}

// TestChaosFlapTailCatchesWhatHeadMisses is the anomaly-tier chaos
// drill: a recursor flap forces stale serves at arrival indexes the
// default-rate head sampler skips, and the tail ring retains exactly
// those exchanges. This is the retention gap tail sampling exists to
// close — head sampling at 1-in-16 sees only the healthy warm-up
// exchange.
func TestChaosFlapTailCatchesWhatHeadMisses(t *testing.T) {
	fl, recursor, _, clock, tracer, recorder := newAnomalyFleet(t, 1)
	client := fl.Client

	// Arrival 1 (head-sampled): a healthy exchange populates the cache.
	if _, err := client.Query("flap.test", dnswire.TypeA, false); err != nil {
		t.Fatal(err)
	}
	// Cross TTL expiry into the stale window, then kill the recursor.
	clock.Advance(90 * time.Second)
	recursor.fail = true

	// Arrivals 2..5: every exchange is a flap-window stale serve — none
	// lands on a head-sampling index (1, 17, 33, ...).
	for i := 0; i < 4; i++ {
		resp, err := client.Query("flap.test", dnswire.TypeA, false)
		if err != nil {
			t.Fatalf("stale exchange %d: %v", i, err)
		}
		if resp == nil {
			t.Fatalf("stale exchange %d: no answer", i)
		}
	}
	if got := client.StaleAnswers(); got != 4 {
		t.Fatalf("stale answers = %d, want 4", got)
	}

	// Head ring: only the warm-up exchange, with no stale flag.
	if tracer.Len() != 1 {
		t.Fatalf("head ring len = %d, want 1 (warm-up only)", tracer.Len())
	}
	for _, tr := range tracer.Slowest(tracer.Len()) {
		if tr.Flags&obs.FlagStale != 0 {
			t.Fatalf("head ring caught a stale exchange: %+v", tr)
		}
	}
	// Tail ring: all four flap-window stale serves.
	tail := tracer.Tail()
	if len(tail) != 4 {
		t.Fatalf("tail ring len = %d, want the 4 stale exchanges", len(tail))
	}
	for i, tr := range tail {
		if tr.Flags&obs.FlagStale == 0 {
			t.Fatalf("tail[%d] not stale-flagged: %+v", i, tr)
		}
		if tr.Name != "flap.test." {
			t.Fatalf("tail[%d] name = %q", i, tr.Name)
		}
	}

	// Flight recorder: stable winner-side events survive StableEvents;
	// the volatile frontend-side kinds are filtered out of the capture
	// view but present in the raw window.
	stable := recorder.StableEvents()
	counts := obs.CountEvents(stable)
	var stale uint64
	for _, ec := range counts {
		if ec.Kind == "client.stale" {
			stale = ec.Count
		}
		if ec.Kind == "frontend.stale" || ec.Kind == "frontend.dead" {
			t.Fatalf("volatile kind %q leaked into stable events", ec.Kind)
		}
	}
	if stale != 4 {
		t.Fatalf("stable client.stale count = %d, want 4", stale)
	}
	raw := recorder.Window(time.Time{}, clock.Now())
	var dead bool
	for _, e := range raw {
		if e.Kind == "frontend.dead" {
			dead = true
		}
	}
	if !dead {
		t.Fatal("raw event window missing the frontend.dead flap marker")
	}
}

// TestRecorderPoolChurnEvents pins the transport-side volatile kinds: a
// downed frontend address produces pool.cooldown on bench and
// pool.remove + conn.evict when the failure streak crosses RemoveAfter.
func TestRecorderPoolChurnEvents(t *testing.T) {
	net, clock := testNet()
	recorder := obs.NewRecorder(clock, 64)
	recursor := &stubRecursor{ttl: 60}
	fl := NewFleet(net, clock, FleetConfig{
		Balance:     BalanceRoundRobin,
		Seed:        1,
		RemoveAfter: 2,
		Cache:       CacheConfig{Shards: 2, ShardCapacity: 16},
		Recorder:    recorder,
	})
	fl.Add(ProtoDoH, "fe0", recursor, frontendAddr(0))
	fl.Add(ProtoDoH, "fe1", recursor, frontendAddr(1))

	net.SetAddrDown(frontendAddr(0).Addr(), true)
	// Each exchange that attempts fe0 benches it once; the cooldown
	// expires between rounds so the second failure triggers removal.
	for i := 0; i < 4; i++ {
		if _, err := fl.Client.Query(fmt.Sprintf("q%d.test", i), dnswire.TypeA, false); err != nil {
			t.Fatal(err)
		}
		clock.Advance(2 * DefaultCooldown)
	}

	kinds := map[string]int{}
	for _, e := range recorder.Window(time.Time{}, clock.Now()) {
		kinds[e.Kind]++
	}
	if kinds["pool.cooldown"] == 0 {
		t.Fatalf("no pool.cooldown event recorded: %v", kinds)
	}
	if kinds["pool.remove"] != 1 || kinds["conn.evict"] != 1 {
		t.Fatalf("removal events = %v, want one pool.remove and one conn.evict", kinds)
	}
	if fl.Pool.Len() != 1 {
		t.Fatalf("pool len = %d, want 1 after removal", fl.Pool.Len())
	}
}

// TestPoolScorecard pins the health-scorecard columns: the
// consecutive-failure streak and the cooldown occupancy, including the
// extension (not double-billing) rule for mid-bench re-failures and the
// forgiveness rule when a benched member serves successfully.
func TestPoolScorecard(t *testing.T) {
	_, clock := testNet()
	p := NewPool(clock, BalanceRoundRobin, 1)
	p.Cooldown = time.Minute
	u := p.Add("fe0", frontendAddr(0), ProtoDoH)

	p.MarkFailed(u)
	st := p.Stats()[0]
	if st.ConsecFails != 1 || st.CooldownTotal != time.Minute {
		t.Fatalf("after one failure: streak=%d occupancy=%v", st.ConsecFails, st.CooldownTotal)
	}

	// Re-failure 30s into the bench extends the window by 30s — the
	// occupancy charges the extension, not a second full cooldown.
	clock.Advance(30 * time.Second)
	p.MarkFailed(u)
	st = p.Stats()[0]
	if st.ConsecFails != 2 || st.CooldownTotal != 90*time.Second {
		t.Fatalf("after mid-bench re-failure: streak=%d occupancy=%v, want 2 and 1m30s", st.ConsecFails, st.CooldownTotal)
	}

	// A successful exchange 30s later forgives the remaining 30s and
	// resets the streak.
	clock.Advance(30 * time.Second)
	p.ObserveRTT(u, 5*time.Millisecond)
	st = p.Stats()[0]
	if st.ConsecFails != 0 || st.CooldownTotal != time.Minute {
		t.Fatalf("after recovery: streak=%d occupancy=%v, want 0 and 1m", st.ConsecFails, st.CooldownTotal)
	}
	if st.Down {
		t.Fatal("recovered member still reported down")
	}
}

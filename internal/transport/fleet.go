package transport

import (
	"net/netip"
	"time"

	"repro/internal/obs"
	"repro/internal/simnet"
)

// FleetConfig assembles a Fleet: the shared answer-cache geometry and
// lifecycle, the pool's load-balancing policy and seed, the client's
// resolution strategy, the frontends' failure cooldown, and the client's
// latency model.
type FleetConfig struct {
	// Balance selects the pool's load-balancing policy (the zero value
	// is power-of-two-choices).
	Balance Balance
	// Strategy selects and parameterizes the client's resolution
	// strategy (the zero value is serial failover).
	Strategy StrategyConfig
	// RemoveAfter removes a pool member outright after that many
	// consecutive failures (0: bench-only, never remove); the client
	// drops the member's cached connection state on removal.
	RemoveAfter int
	// Seed drives the balancer's random draws.
	Seed int64
	// Cache is the shared answer cache's geometry and lifecycle policy.
	Cache CacheConfig
	// FailureCooldown benches a frontend's recursor after a hard failure.
	FailureCooldown time.Duration
	// Latency is the client's deterministic per-member RTT source
	// (SyntheticLatency in practice); nil falls back to wall-clock
	// sampling.
	Latency func(*Upstream) time.Duration
	// ChargeLatency charges sampled latencies (and protocol setup costs)
	// to the network's virtual clock. See Client.ChargeLatency for when
	// to leave it off.
	ChargeLatency bool
	// Override registers frontends as view-local service overrides
	// (simnet.Network.OverrideService) instead of shared registrations —
	// how per-day campaign replicas stand their fleets up on network
	// views without touching the shared registry.
	Override bool
	// Metrics, when non-nil, is the obs registry the fleet binds its
	// counters onto; nil makes the fleet create its own on the fleet
	// clock, so Fleet.Metrics is always usable.
	Metrics *obs.Registry
	// Tracer, when non-nil, head-samples the client's exchanges into
	// span traces (and tail-samples anomalies when it carries a
	// TailConfig).
	Tracer *obs.Tracer
	// Recorder, when non-nil, is the fleet's flight recorder: the client
	// and every frontend emit typed anomaly events into it, and the fleet
	// declares which event kinds are volatile (worker-interleaving
	// dependent) so capture bundles built from StableEvents stay
	// byte-identical between serial and pipelined campaign runs.
	Recorder *obs.Recorder
}

// Fleet is a protocol-agnostic encrypted-DNS serving fleet: any mix of
// DoH, DoT, and DoQ frontends sharing one sharded answer cache, one
// load-balanced upstream pool, and one stub client. It is the hoisted,
// protocol-independent successor of the PR 1–3 DoH-only serving layer:
// the frontends differ only in envelope codec, so cache lifecycle,
// failover, and lifecycle counters behave identically across protocols.
type Fleet struct {
	Net    *simnet.Network
	Cache  *Cache
	Pool   *Pool
	Client *Client

	// Metrics is the fleet's telemetry registry: every frontend, cache,
	// pool, and client counter is registered here (the struct accessors
	// below remain as thin views over the same handles). Always non-nil.
	Metrics *obs.Registry

	// Recorder is the fleet's flight recorder (nil when the config left
	// it off: event emission costs one nil check).
	Recorder *obs.Recorder

	// Frontends are the per-frontend engines in Add order; Addrs and
	// Servers hold the parallel addresses and envelope servers.
	Frontends []*Frontend
	Addrs     []netip.AddrPort
	Servers   []any

	override bool
	cooldown time.Duration
}

// NewFleet creates an empty fleet over the network; frontends are wired
// in with Add.
func NewFleet(net *simnet.Network, clock *simnet.Clock, cfg FleetConfig) *Fleet {
	pool := NewPool(clock, cfg.Balance, cfg.Seed)
	pool.RemoveAfter = cfg.RemoveAfter
	client := NewClient(net, pool)
	client.Strategy = cfg.Strategy.New()
	client.Latency = cfg.Latency
	client.ChargeLatency = cfg.ChargeLatency
	client.Tracer = cfg.Tracer
	client.Recorder = cfg.Recorder
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry(clock)
	}
	fl := &Fleet{
		Net: net, Cache: NewCacheWith(clock, cfg.Cache),
		Pool: client.Pool, Client: client, Metrics: reg,
		Recorder: cfg.Recorder,
		override: cfg.Override, cooldown: cfg.FailureCooldown,
	}
	fl.bindMetrics()
	return fl
}

// bindMetrics registers the fleet's shared components onto the registry:
// the client's per-exchange counters, snapshot-time views over the
// mutex-guarded cache and pool stats, and fleet-wide aggregates. It also
// declares which metric names are volatile — dependent on within-day
// worker interleaving — so campaign series built from StableSnapshot
// stay byte-identical between serial and pipelined runs (the same
// winner-side-only rationale as dataset.ServingSnapshot).
func (fl *Fleet) bindMetrics() {
	reg := fl.Metrics
	fl.Client.bindMetrics(reg)
	reg.RegisterView(func(add obs.ViewAdd) {
		cs := fl.Cache.Stats()
		add("cache_entries", obs.KindGauge, float64(cs.Entries))
		add("cache_hits_total", obs.KindCounter, float64(cs.Hits))
		add("cache_misses_total", obs.KindCounter, float64(cs.Misses))
		add("cache_evictions_total", obs.KindCounter, float64(cs.Evictions))
		add("cache_expirations_total", obs.KindCounter, float64(cs.Expirations))
		add("cache_negative_entries", obs.KindGauge, float64(cs.NegativeEntries))
		add("cache_negative_hits_total", obs.KindCounter, float64(cs.NegativeHits))
		add("cache_stale_serves_total", obs.KindCounter, float64(cs.StaleServes))
		add("cache_refreshes_total", obs.KindCounter, float64(cs.Refreshes))
	})
	reg.RegisterView(func(add obs.ViewAdd) {
		add("pool_members", obs.KindGauge, float64(fl.Pool.Len()))
		add("pool_healthy", obs.KindGauge, float64(fl.Pool.Healthy()))
		for _, us := range fl.Pool.Stats() {
			labels := []obs.Label{obs.L("member", us.Name), obs.L("proto", us.Proto.String())}
			add("pool_member_queries_total", obs.KindCounter, float64(us.Queries), labels...)
			add("pool_member_failures_total", obs.KindCounter, float64(us.Failures), labels...)
			add("pool_member_rtt_seconds", obs.KindGauge, us.RTT.Seconds(), labels...)
			add("pool_member_consec_fails", obs.KindGauge, float64(us.ConsecFails), labels...)
			add("pool_member_cooldown_seconds", obs.KindGauge, us.CooldownTotal.Seconds(), labels...)
		}
	})
	reg.RegisterView(func(add obs.ViewAdd) {
		total := fl.TotalStats()
		add("fleet_prefetches_total", obs.KindCounter, float64(total.Prefetches))
		add("fleet_upstream_failures_total", obs.KindCounter, float64(total.UpstreamFailures))
		add("fleet_stale_served_total", obs.KindCounter, float64(total.StaleServed))
	})
	// Everything tied to which frontend a given attempt hit — or to how
	// many attempts an exchange made — varies with scanner-worker
	// interleaving even under a fixed seed. The stable set is the
	// winner-side per-exchange counters, the fleet-aggregate prefetch and
	// upstream-failure totals (every arm fires exactly once per triggering
	// exchange regardless of scheduling), and the pool's membership
	// gauges.
	reg.SetVolatile(
		"frontend_served_total", "frontend_cache_hits_total",
		"frontend_stale_served_total", "frontend_negative_hits_total",
		"frontend_prefetches_total", "frontend_upstream_failures_total",
		"cache_entries", "cache_hits_total", "cache_misses_total",
		"cache_evictions_total", "cache_expirations_total",
		"cache_negative_entries", "cache_negative_hits_total",
		"cache_stale_serves_total", "cache_refreshes_total",
		"strategy_attempts_total", "strategy_races_total",
		"strategy_losers_cancelled_total", "strategy_hedges_total",
		"strategy_wasted_total", "strategy_wins_total",
		"pool_member_queries_total", "pool_member_failures_total",
		"pool_member_rtt_seconds", "pool_member_consec_fails",
		"pool_member_cooldown_seconds",
		"fleet_stale_served_total",
		"exchange_latency_seconds",
	)
	// The flight recorder gets the same stable/volatile discipline: only
	// winner-side per-exchange kinds (client.*) and the workload engine's
	// single-driver crowd markers are schedule-independent. Everything
	// tied to which frontend or member an attempt touched, or to an
	// exchange's dial shape, varies with worker interleaving.
	fl.Recorder.SetVolatile(
		"pool.cooldown", "pool.remove", "conn.evict",
		"strategy.race", "strategy.hedge", "strategy.cancel",
		"strategy.failover",
		"cache.prefetch", "frontend.stale", "frontend.dead",
	)
}

// Add stands up one frontend speaking proto over handler at ap, registers
// it on the network (or as a view-local override), and joins it to the
// pool. It returns the frontend's engine for stats and chaos wiring.
func (fl *Fleet) Add(proto Protocol, name string, handler simnet.DNSHandler, ap netip.AddrPort) *Frontend {
	var engine *Frontend
	var svc any
	switch proto {
	case ProtoDoT:
		s := NewDoTServer(name, handler, fl.Cache, fl.cooldown)
		engine, svc = &s.Frontend, s
	case ProtoDoQ:
		s := NewDoQServer(name, handler, fl.Cache, fl.cooldown)
		engine, svc = &s.Frontend, s
	default:
		s := NewDoHServer(name, handler, fl.Cache, fl.cooldown)
		engine, svc = &s.Frontend, s
	}
	if fl.override {
		fl.Net.OverrideService(ap, svc)
	} else {
		fl.Net.RegisterService(ap, svc)
	}
	fl.Pool.Add(name, ap, proto)
	engine.Recorder = fl.Recorder
	engine.bindMetrics(fl.Metrics)
	fl.Frontends = append(fl.Frontends, engine)
	fl.Addrs = append(fl.Addrs, ap)
	fl.Servers = append(fl.Servers, svc)
	return engine
}

// Stats snapshots every frontend in Add order.
func (fl *Fleet) Stats() []FrontendStats {
	out := make([]FrontendStats, len(fl.Frontends))
	for i, f := range fl.Frontends {
		out[i] = f.Stats()
	}
	return out
}

// ProtocolStats aggregates frontend counters per protocol — the
// per-protocol dimension chaos drills and campaign serving snapshots
// report.
func (fl *Fleet) ProtocolStats() map[Protocol]FrontendStats {
	out := map[Protocol]FrontendStats{}
	for _, f := range fl.Frontends {
		st := f.Stats()
		agg := out[st.Proto]
		agg.Name, agg.Proto = st.Proto.String(), st.Proto
		agg.Add(st)
		out[st.Proto] = agg
	}
	return out
}

// StrategyStats snapshots the fleet client's resolution-strategy
// telemetry: races and hedges fired, losers cancelled, wasted upstream
// queries, and the winner-protocol distribution.
func (fl *Fleet) StrategyStats() StrategyStats {
	return fl.Client.StrategyStats()
}

// TotalStats aggregates every frontend into one fleet-wide counter set.
func (fl *Fleet) TotalStats() FrontendStats {
	var agg FrontendStats
	agg.Name = "fleet"
	for _, f := range fl.Frontends {
		agg.Add(f.Stats())
	}
	return agg
}

package transport

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"repro/internal/dnswire"
	"repro/internal/simnet"
)

// stubRecursor answers HTTPS/A queries for any name with fixed records,
// counting how many queries reach it — a stand-in for a recursive
// resolver that lets the tests observe cache offload. The failure knobs
// model a dead recursor (fail: nil responses, the hard failure simnet
// reports for unreachable fleets) and a struggling one (servfail); the
// negative knobs switch it to RFC 2308 NXDOMAIN answers carrying an SOA.
type stubRecursor struct {
	ttl     uint32
	queries int

	fail     bool // return nil: hard upstream failure
	servfail bool // answer SERVFAIL over a healthy transport

	negative   bool   // answer NXDOMAIN with an SOA authority record
	soaTTL     uint32 // SOA record TTL
	soaMinimum uint32 // SOA minimum field (RFC 2308 negative TTL input)
}

func (s *stubRecursor) HandleDNS(q *dnswire.Message) *dnswire.Message {
	s.queries++
	if s.fail {
		return nil
	}
	resp := q.Reply()
	resp.RecursionAvailable = true
	if s.servfail {
		resp.RCode = dnswire.RCodeServFail
		return resp
	}
	if len(q.Question) != 1 {
		resp.RCode = dnswire.RCodeFormErr
		return resp
	}
	question := q.Question[0]
	if s.negative {
		resp.RCode = dnswire.RCodeNXDomain
		resp.Authority = append(resp.Authority, dnswire.RR{
			Name: "test.", Type: dnswire.TypeSOA, Class: dnswire.ClassINET, TTL: s.soaTTL,
			Data: &dnswire.SOAData{MName: "ns1.test.", RName: "hostmaster.test.",
				Serial: 1, Minimum: s.soaMinimum},
		})
		return resp
	}
	switch question.Type {
	case dnswire.TypeHTTPS:
		resp.Answer = append(resp.Answer, dnswire.RR{
			Name: question.Name, Type: dnswire.TypeHTTPS, Class: dnswire.ClassINET, TTL: s.ttl,
			Data: &dnswire.SVCBData{Priority: 1, Target: "."},
		})
	case dnswire.TypeA:
		resp.Answer = append(resp.Answer, dnswire.RR{
			Name: question.Name, Type: dnswire.TypeA, Class: dnswire.ClassINET, TTL: s.ttl,
			Data: &dnswire.AData{Addr: netip.MustParseAddr("192.0.2.1")},
		})
	}
	return resp
}

func testNet() (*simnet.Network, *simnet.Clock) {
	clock := simnet.NewClock(time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC))
	return simnet.New(clock), clock
}

func frontendAddr(i int) netip.AddrPort {
	return netip.AddrPortFrom(netip.AddrFrom4([4]byte{203, 0, 113, byte(i)}), 443)
}

// newTestFleet registers n frontends of the given protocols over one stub
// recursor with a shared cache and returns a client over the pool.
// protos cycles when shorter than n (nil means all-DoH).
func newTestFleet(t *testing.T, n int, balance Balance, protos ...Protocol) (*Client, *Fleet, *stubRecursor, *simnet.Network, *simnet.Clock) {
	t.Helper()
	net, clock := testNet()
	recursor := &stubRecursor{ttl: 300}
	fl := NewFleet(net, clock, FleetConfig{
		Balance: balance, Seed: 1,
		Cache: CacheConfig{Shards: 4, ShardCapacity: 64},
	})
	if len(protos) == 0 {
		protos = []Protocol{ProtoDoH}
	}
	for i := 0; i < n; i++ {
		p := protos[i%len(protos)]
		fl.Add(p, fmt.Sprintf("fe%d", i), recursor, frontendAddr(i))
	}
	return fl.Client, fl, recursor, net, clock
}

func TestServerCacheHitAndVirtualClockExpiry(t *testing.T) {
	client, fl, recursor, _, clock := newTestFleet(t, 1, BalanceRoundRobin)

	if _, err := client.Query("cached.test", dnswire.TypeHTTPS, false); err != nil {
		t.Fatal(err)
	}
	if recursor.queries != 1 {
		t.Fatalf("first query: recursor saw %d queries, want 1", recursor.queries)
	}
	// Second query inside the TTL window: served from cache, recursor idle.
	resp, err := client.Query("cached.test", dnswire.TypeHTTPS, false)
	if err != nil {
		t.Fatal(err)
	}
	if recursor.queries != 1 {
		t.Errorf("cached query leaked to recursor (%d queries)", recursor.queries)
	}
	if fl.Frontends[0].Stats().CacheHits != 1 {
		t.Errorf("frontend counted %d cache hits, want 1", fl.Frontends[0].Stats().CacheHits)
	}
	if resp.Answer[0].TTL != 300 {
		t.Errorf("TTL aged with no elapsed time: %d", resp.Answer[0].TTL)
	}

	// Let 100 virtual seconds pass: still cached, TTL aged.
	clock.Advance(100 * time.Second)
	resp, err = client.Query("cached.test", dnswire.TypeHTTPS, false)
	if err != nil {
		t.Fatal(err)
	}
	if recursor.queries != 1 {
		t.Errorf("aged-but-live entry leaked to recursor")
	}
	if resp.Answer[0].TTL != 200 {
		t.Errorf("aged TTL = %d, want 200", resp.Answer[0].TTL)
	}

	// Cross the expiry boundary: the recursor must be consulted again.
	clock.Advance(201 * time.Second)
	if _, err := client.Query("cached.test", dnswire.TypeHTTPS, false); err != nil {
		t.Fatal(err)
	}
	if recursor.queries != 2 {
		t.Errorf("expired entry not refreshed: recursor saw %d queries, want 2", recursor.queries)
	}
}

func TestCacheKeyIncludesTypeAndDOBit(t *testing.T) {
	client, _, recursor, _, _ := newTestFleet(t, 1, BalanceRoundRobin)
	if _, err := client.Query("multi.test", dnswire.TypeHTTPS, false); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Query("multi.test", dnswire.TypeA, false); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Query("multi.test", dnswire.TypeHTTPS, true); err != nil {
		t.Fatal(err)
	}
	if recursor.queries != 3 {
		t.Errorf("distinct (type, DO) lookups shared a cache slot: %d recursor queries, want 3", recursor.queries)
	}
}

func TestCacheLRUEvictionPerShard(t *testing.T) {
	_, clock := testNet()
	cache := NewCache(clock, 1, 4) // single shard, capacity 4
	mk := func(name string) *dnswire.Message {
		q := dnswire.NewQuery(1, name, dnswire.TypeA, false)
		resp := q.Reply()
		resp.Answer = append(resp.Answer, dnswire.RR{
			Name: name, Type: dnswire.TypeA, Class: dnswire.ClassINET, TTL: 300,
			Data: &dnswire.AData{Addr: netip.MustParseAddr("192.0.2.7")},
		})
		return resp
	}
	key := func(i int) Key {
		return CacheKey(dnswire.Question{Name: fmt.Sprintf("n%d.test.", i), Type: dnswire.TypeA}, false)
	}
	for i := 0; i < 4; i++ {
		cache.Put(key(i), mk(fmt.Sprintf("n%d.test.", i)))
	}
	// Touch n0 so n1 becomes least recently used, then overflow.
	if cache.Get(key(0)) == nil {
		t.Fatal("warm entry missing")
	}
	cache.Put(key(4), mk("n4.test."))
	if cache.Len() != 4 {
		t.Fatalf("cache holds %d entries, want capacity 4", cache.Len())
	}
	if cache.Get(key(1)) != nil {
		t.Error("LRU victim n1 still cached")
	}
	if cache.Get(key(0)) == nil {
		t.Error("recently-used n0 evicted")
	}
	stats := cache.Stats()
	if stats.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", stats.Evictions)
	}
}

func TestCacheShardingSpreadsKeys(t *testing.T) {
	_, clock := testNet()
	cache := NewCache(clock, 8, 16)
	touched := 0
	counts := map[int]int{}
	for i := 0; i < 200; i++ {
		key := Key{Name: fmt.Sprintf("name%d.test.", i), Type: dnswire.TypeHTTPS, DO: true}
		for si, s := range cache.shards {
			if s == cache.shardFor(key) {
				counts[si]++
			}
		}
	}
	for si, n := range counts {
		if n > 0 {
			touched++
		}
		if n > 80 {
			t.Errorf("shard %d absorbed %d/200 keys — fnv spread broken", si, n)
		}
	}
	if touched < 6 {
		t.Errorf("only %d/8 shards used", touched)
	}
}

func TestRoundRobinCyclesFrontends(t *testing.T) {
	client, fl, _, _, _ := newTestFleet(t, 3, BalanceRoundRobin)
	// Distinct names so the shared cache doesn't absorb the later queries.
	for i := 0; i < 6; i++ {
		if _, err := client.Query(fmt.Sprintf("rr%d.test", i), dnswire.TypeA, false); err != nil {
			t.Fatal(err)
		}
	}
	for _, st := range fl.Stats() {
		if st.Served != 2 {
			t.Errorf("frontend %s served %d, want 2", st.Name, st.Served)
		}
	}
}

func TestHashAffinityPinsQueryName(t *testing.T) {
	client, fl, _, _, clock := newTestFleet(t, 4, BalanceHashAffinity)
	for i := 0; i < 8; i++ {
		// Advance past the TTL each time so the cache cannot serve it and
		// the same frontend must be chosen repeatedly.
		clock.Advance(time.Hour)
		if _, err := client.Query("sticky.test", dnswire.TypeA, false); err != nil {
			t.Fatal(err)
		}
	}
	busy := 0
	for _, st := range fl.Stats() {
		if st.Served == 8 {
			busy++
		} else if st.Served != 0 {
			t.Errorf("frontend %s served %d, want 0 or 8", st.Name, st.Served)
		}
	}
	if busy != 1 {
		t.Errorf("hash affinity spread one name over %d frontends", busy)
	}
}

func TestEWMAPrefersFasterUpstream(t *testing.T) {
	_, clock := testNet()
	pool := NewPool(clock, BalanceEWMA, 1)
	fast := pool.Add("fast", frontendAddr(0), ProtoDoH)
	slow := pool.Add("slow", frontendAddr(1), ProtoDoT)
	for i := 0; i < 20; i++ {
		pool.ObserveRTT(fast, 2*time.Millisecond)
		pool.ObserveRTT(slow, 40*time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		if got := pool.Candidates("any.test.")[0]; got != fast {
			t.Fatalf("EWMA picked %s over the faster member", got.Name)
		}
	}
}

func TestP2FavoursLowerRTT(t *testing.T) {
	_, clock := testNet()
	pool := NewPool(clock, BalanceP2, 7)
	fast := pool.Add("fast", frontendAddr(0), ProtoDoH)
	for i := 1; i < 4; i++ {
		slow := pool.Add(fmt.Sprintf("slow%d", i), frontendAddr(i), ProtoDoH)
		pool.ObserveRTT(slow, 50*time.Millisecond)
	}
	pool.ObserveRTT(fast, time.Millisecond)
	wins := 0
	const draws = 400
	for i := 0; i < draws; i++ {
		if pool.Candidates("x.test.")[0] == fast {
			wins++
		}
	}
	// With 4 members, the fast one is in the sampled pair with
	// probability 1/2 and wins every pair it appears in.
	if wins < draws/3 || wins > 2*draws/3 {
		t.Errorf("P2 picked the fast member %d/%d times, want ≈%d", wins, draws, draws/2)
	}
}

func TestFailoverOnSimnetFailureInjection(t *testing.T) {
	client, fl, _, net, _ := newTestFleet(t, 3, BalanceRoundRobin)

	// Take frontend 0 down at the address level and frontend 1 at the
	// port level; every query must fail over to frontend 2.
	net.SetAddrDown(frontendAddr(0).Addr(), true)
	net.SetPortDown(frontendAddr(1), true)
	for i := 0; i < 3; i++ {
		if _, err := client.Query(fmt.Sprintf("fo%d.test", i), dnswire.TypeHTTPS, false); err != nil {
			t.Fatalf("query %d failed despite a healthy frontend: %v", i, err)
		}
	}
	if got := fl.Frontends[2].Stats().Served; got != 3 {
		t.Errorf("surviving frontend served %d, want 3", got)
	}
	var downs int
	for _, s := range client.Pool.Stats() {
		if s.Down {
			downs++
		}
	}
	if downs != 2 {
		t.Errorf("%d members benched, want 2", downs)
	}

	// All down: queries error with ErrNoUpstreams context.
	net.SetAddrDown(frontendAddr(2).Addr(), true)
	if _, err := client.Query("dark.test", dnswire.TypeHTTPS, false); err == nil {
		t.Error("query succeeded with the whole fleet down")
	}

	// Recovery: bring frontend 2 back; benched members retry after their
	// cooldown, but the healthy one is preferred immediately.
	net.SetAddrDown(frontendAddr(2).Addr(), false)
	if _, err := client.Query("back.test", dnswire.TypeHTTPS, false); err != nil {
		t.Errorf("query failed after recovery: %v", err)
	}
}

func TestBenchedUpstreamRecoversAfterCooldown(t *testing.T) {
	client, fl, _, net, clock := newTestFleet(t, 2, BalanceRoundRobin)
	net.SetAddrDown(frontendAddr(0).Addr(), true)
	if _, err := client.Query("a.test", dnswire.TypeA, false); err != nil {
		t.Fatal(err)
	}
	net.SetAddrDown(frontendAddr(0).Addr(), false)

	// Still benched: traffic keeps landing on frontend 1.
	for i := 0; i < 4; i++ {
		if _, err := client.Query(fmt.Sprintf("b%d.test", i), dnswire.TypeA, false); err != nil {
			t.Fatal(err)
		}
	}
	if fl.Frontends[0].Stats().Served != 0 {
		t.Errorf("benched frontend served %d queries during cooldown", fl.Frontends[0].Stats().Served)
	}
	// After the cooldown elapses on the virtual clock it rejoins.
	clock.Advance(DefaultCooldown + time.Second)
	for i := 0; i < 4; i++ {
		if _, err := client.Query(fmt.Sprintf("c%d.test", i), dnswire.TypeA, false); err != nil {
			t.Fatal(err)
		}
	}
	if fl.Frontends[0].Stats().Served == 0 {
		t.Error("recovered frontend received no traffic after cooldown")
	}
}

// TestFleetSharedCacheAcrossFrontends is the anycast-pod property: a hit
// on any frontend warms every sibling — including siblings speaking a
// different protocol (the cache is keyed below the envelope).
func TestFleetSharedCacheAcrossFrontends(t *testing.T) {
	client, fl, recursor, _, _ := newTestFleet(t, 3, BalanceRoundRobin,
		ProtoDoH, ProtoDoT, ProtoDoQ)
	for i := 0; i < 3; i++ {
		if _, err := client.Query("shared.test", dnswire.TypeHTTPS, true); err != nil {
			t.Fatal(err)
		}
	}
	if recursor.queries != 1 {
		t.Errorf("shared cache leaked %d queries to the recursor, want 1", recursor.queries)
	}
	totalHits := fl.TotalStats().CacheHits
	if totalHits != 2 {
		t.Errorf("fleet counted %d cache hits, want 2", totalHits)
	}
}

// servFailRecursor answers every query with SERVFAIL, modelling a
// recursor whose validation or upstreams are broken.
type servFailRecursor struct{}

func (servFailRecursor) HandleDNS(q *dnswire.Message) *dnswire.Message {
	resp := q.Reply()
	resp.RCode = dnswire.RCodeServFail
	return resp
}

// TestSERVFAILFailsOverToNextUpstream is the paper's Google→Cloudflare
// fallback inside the pool: a SERVFAIL from one member's recursor must
// not end the exchange (nor bench the member — its transport is fine)
// while a sibling can answer. Run per protocol: every envelope must carry
// the SERVFAIL without converting it into a transport failure.
func TestSERVFAILFailsOverToNextUpstream(t *testing.T) {
	for _, proto := range []Protocol{ProtoDoH, ProtoDoT, ProtoDoQ} {
		t.Run(proto.String(), func(t *testing.T) {
			net, clock := testNet()
			fl := NewFleet(net, clock, FleetConfig{Balance: BalanceRoundRobin, Seed: 1})
			fl.Add(proto, "broken", servFailRecursor{}, frontendAddr(0))
			fl.Add(proto, "good", &stubRecursor{ttl: 300}, frontendAddr(1))
			client := fl.Client

			// Round-robin alternates who is tried first; both orders must
			// land on the good recursor's answer.
			for i := 0; i < 4; i++ {
				resp, err := client.Query(fmt.Sprintf("sf%d.test", i), dnswire.TypeHTTPS, false)
				if err != nil {
					t.Fatalf("query %d: %v", i, err)
				}
				if resp.RCode != dnswire.RCodeNoError || len(resp.Answer) == 0 {
					t.Fatalf("query %d: rcode=%v answers=%d", i, resp.RCode, len(resp.Answer))
				}
			}
			for _, st := range fl.Pool.Stats() {
				if st.Down || st.Failures != 0 {
					t.Errorf("%s benched for SERVFAIL (down=%v failures=%d) — transport was healthy",
						st.Name, st.Down, st.Failures)
				}
			}

			// With every member SERVFAILing, the answer is SERVFAIL, not an
			// error.
			net.UnregisterService(frontendAddr(1))
			fl2 := NewFleet(net, clock, FleetConfig{Balance: BalanceRoundRobin, Seed: 1})
			fl2.Add(proto, "broken", servFailRecursor{}, frontendAddr(2))
			resp, err := fl2.Client.Query("allbroken.test", dnswire.TypeHTTPS, false)
			if err != nil {
				t.Fatal(err)
			}
			if resp.RCode != dnswire.RCodeServFail {
				t.Errorf("unanimous SERVFAIL not surfaced: %v", resp.RCode)
			}
		})
	}
}

// newStaleFleet builds a single-frontend fleet with a lifecycle-configured
// cache: serve-stale armed, optional prefetch and failure cooldown.
func newStaleFleet(t *testing.T, cfg CacheConfig, cooldown time.Duration, proto Protocol) (*Client, *Frontend, *stubRecursor, *simnet.Clock) {
	t.Helper()
	net, clock := testNet()
	recursor := &stubRecursor{ttl: 300}
	fl := NewFleet(net, clock, FleetConfig{
		Balance: BalanceRoundRobin, Seed: 1,
		Cache: cfg, FailureCooldown: cooldown,
	})
	fe := fl.Add(proto, "fe0", recursor, frontendAddr(0))
	return fl.Client, fe, recursor, clock
}

// TestStaleServedExactlyAtTTLExpiry pins the TTL boundary: at the exact
// expiry instant the entry is no longer fresh — a healthy upstream is
// consulted, a dead one triggers RFC 8767 serve-stale with capped TTLs.
// Run per protocol: serve-stale is engine behavior, so every envelope
// must exhibit it (and report it to the stub's stale counter).
func TestStaleServedExactlyAtTTLExpiry(t *testing.T) {
	for _, proto := range []Protocol{ProtoDoH, ProtoDoT, ProtoDoQ} {
		t.Run(proto.String(), func(t *testing.T) {
			client, fe, recursor, clock := newStaleFleet(t,
				CacheConfig{StaleWindow: 10 * time.Minute}, 0, proto)
			if _, err := client.Query("edge.test", dnswire.TypeHTTPS, false); err != nil {
				t.Fatal(err)
			}

			// One second before expiry: still fresh, recursor idle.
			clock.Advance(299 * time.Second)
			resp, err := client.Query("edge.test", dnswire.TypeHTTPS, false)
			if err != nil {
				t.Fatal(err)
			}
			if recursor.queries != 1 {
				t.Fatalf("entry leaked to recursor before expiry (%d queries)", recursor.queries)
			}
			if resp.Answer[0].TTL != 1 {
				t.Errorf("TTL one second before expiry = %d, want 1", resp.Answer[0].TTL)
			}

			// Exactly at expiry: not fresh anymore. Upstream healthy →
			// refreshed.
			clock.Advance(1 * time.Second)
			if _, err := client.Query("edge.test", dnswire.TypeHTTPS, false); err != nil {
				t.Fatal(err)
			}
			if recursor.queries != 2 {
				t.Fatalf("entry at exact expiry not refreshed: recursor saw %d queries, want 2", recursor.queries)
			}

			// Again at the new entry's exact expiry, but with the recursor
			// dead: the stale body must be served, TTLs capped.
			clock.Advance(300 * time.Second)
			recursor.fail = true
			resp, err = client.Query("edge.test", dnswire.TypeHTTPS, false)
			if err != nil {
				t.Fatalf("stale-capable query failed: %v", err)
			}
			if resp.Answer[0].TTL != DefaultStaleTTL {
				t.Errorf("stale TTL = %d, want capped at %d", resp.Answer[0].TTL, DefaultStaleTTL)
			}
			if st := fe.Stats(); st.StaleServed != 1 || st.UpstreamFailures != 1 {
				t.Errorf("stats after stale serve: %+v", st)
			}
			if got := client.StaleAnswers(); got != 1 {
				t.Errorf("client counted %d stale answers, want 1", got)
			}
		})
	}
}

// TestStaleWindowEdge pins the other end of the lifecycle: one second
// inside TTL+StaleWindow the answer is servable, at the exact edge the
// entry is evicted and a dead upstream means a hard error (DoH) or a
// synthesized SERVFAIL (DoT/DoQ, which have no status channel).
func TestStaleWindowEdge(t *testing.T) {
	const window = 10 * time.Minute
	client, fe, recursor, clock := newStaleFleet(t, CacheConfig{StaleWindow: window}, 0, ProtoDoH)
	if _, err := client.Query("win.test", dnswire.TypeHTTPS, false); err != nil {
		t.Fatal(err)
	}
	recursor.fail = true

	// One second inside the window: stale served.
	clock.Advance(300*time.Second + window - time.Second)
	if _, err := client.Query("win.test", dnswire.TypeHTTPS, false); err != nil {
		t.Fatalf("query one second inside the stale window failed: %v", err)
	}
	if fe.Stats().StaleServed != 1 {
		t.Fatalf("stale not served inside the window: %+v", fe.Stats())
	}

	// Exactly at TTL + StaleWindow: evicted; nothing to serve, upstream
	// dead → the whole exchange fails.
	clock.Advance(time.Second)
	if _, err := client.Query("win.test", dnswire.TypeHTTPS, false); err == nil {
		t.Error("query at the exact stale-window edge succeeded; entry should be gone")
	}
	if st := fe.Stats(); st.StaleServed != 1 {
		t.Errorf("stale served past the window: %+v", st)
	}
	if cs := fe.Cache.Stats(); cs.Entries != 0 || cs.Expirations != 1 {
		t.Errorf("entry not evicted at window edge: %+v", cs)
	}
}

// TestStaleDuringCooldownVsHardFailure distinguishes the two serve-stale
// triggers: a hard handler failure arms the cooldown (and serves stale),
// and during the cooldown stale is served *without* re-trying the
// handler; past the cooldown the handler is probed again.
func TestStaleDuringCooldownVsHardFailure(t *testing.T) {
	const cooldown = 60 * time.Second
	client, fe, recursor, clock := newStaleFleet(t, CacheConfig{StaleWindow: time.Hour}, cooldown, ProtoDoH)
	if _, err := client.Query("cd.test", dnswire.TypeHTTPS, false); err != nil {
		t.Fatal(err)
	}

	// Expire the entry, kill the recursor: hard failure → stale + cooldown.
	clock.Advance(301 * time.Second)
	recursor.fail = true
	if _, err := client.Query("cd.test", dnswire.TypeHTTPS, false); err != nil {
		t.Fatal(err)
	}
	if recursor.queries != 2 {
		t.Fatalf("hard failure path did not try the handler: %d queries", recursor.queries)
	}
	if st := fe.Stats(); st.StaleServed != 1 || st.UpstreamFailures != 1 {
		t.Fatalf("after hard failure: %+v", st)
	}

	// Within the cooldown: stale served with NO handler attempt.
	clock.Advance(10 * time.Second)
	if _, err := client.Query("cd.test", dnswire.TypeHTTPS, false); err != nil {
		t.Fatal(err)
	}
	if recursor.queries != 2 {
		t.Errorf("benched handler was re-tried during cooldown (%d queries)", recursor.queries)
	}
	if st := fe.Stats(); st.StaleServed != 2 || st.UpstreamFailures != 1 {
		t.Errorf("during cooldown: %+v", st)
	}

	// Past the cooldown, recursor still dead: probed again, stale again.
	clock.Advance(cooldown)
	if _, err := client.Query("cd.test", dnswire.TypeHTTPS, false); err != nil {
		t.Fatal(err)
	}
	if recursor.queries != 3 {
		t.Errorf("handler not re-probed after cooldown (%d queries)", recursor.queries)
	}

	// Recursor back: fresh answer, cooldown cleared, full TTL again.
	recursor.fail = false
	clock.Advance(cooldown)
	resp, err := client.Query("cd.test", dnswire.TypeHTTPS, false)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Answer[0].TTL != 300 {
		t.Errorf("recovered answer TTL = %d, want fresh 300", resp.Answer[0].TTL)
	}
}

// TestServFailServesStaleWhenAvailable: a SERVFAIL from a struggling
// recursor is replaced by a stale answer (RFC 8767 prefers stale data
// over errors), and the member is not benched (healthy transport).
func TestServFailServesStaleWhenAvailable(t *testing.T) {
	client, fe, recursor, clock := newStaleFleet(t, CacheConfig{StaleWindow: time.Hour}, 0, ProtoDoH)
	if _, err := client.Query("sf.test", dnswire.TypeHTTPS, false); err != nil {
		t.Fatal(err)
	}
	clock.Advance(301 * time.Second)
	recursor.servfail = true
	resp, err := client.Query("sf.test", dnswire.TypeHTTPS, false)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeNoError || len(resp.Answer) == 0 {
		t.Fatalf("SERVFAIL leaked despite stale data: rcode=%v answers=%d", resp.RCode, len(resp.Answer))
	}
	if fe.Stats().StaleServed != 1 {
		t.Errorf("stale not served over SERVFAIL: %+v", fe.Stats())
	}
	for _, st := range client.Pool.Stats() {
		if st.Down {
			t.Errorf("member %s benched for SERVFAIL", st.Name)
		}
	}
}

// TestNegativeCacheHonoursSOAMinimum: NXDOMAIN answers are cached for
// min(SOA TTL, SOA minimum) per RFC 2308, absorb repeat misses, and
// expire on the virtual clock.
func TestNegativeCacheHonoursSOAMinimum(t *testing.T) {
	client, fe, recursor, clock := newStaleFleet(t, CacheConfig{}, 0, ProtoDoH)
	recursor.negative = true
	recursor.soaTTL, recursor.soaMinimum = 900, 120 // minimum wins

	resp, err := client.Query("nx.test", dnswire.TypeHTTPS, false)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("rcode = %v, want NXDOMAIN", resp.RCode)
	}
	// Repeat misses inside the negative TTL never reach the recursor.
	for i := 0; i < 3; i++ {
		clock.Advance(30 * time.Second)
		if _, err := client.Query("nx.test", dnswire.TypeHTTPS, false); err != nil {
			t.Fatal(err)
		}
	}
	if recursor.queries != 1 {
		t.Errorf("negative cache leaked %d queries to the recursor, want 1", recursor.queries)
	}
	if st := fe.Stats(); st.NegativeHits != 3 {
		t.Errorf("negative hits = %d, want 3", st.NegativeHits)
	}
	if cs := fe.Cache.Stats(); cs.NegativeEntries != 1 || cs.NegativeHits != 3 {
		t.Errorf("cache negative stats: %+v", cs)
	}
	// Past min(TTL, minimum)=120s (30+30+30 already elapsed, add 31):
	// the recursor is consulted again.
	clock.Advance(31 * time.Second)
	if _, err := client.Query("nx.test", dnswire.TypeHTTPS, false); err != nil {
		t.Fatal(err)
	}
	if recursor.queries != 2 {
		t.Errorf("expired negative entry not refreshed: %d recursor queries, want 2", recursor.queries)
	}
}

// TestNegativeTTLCappedByMaxNegativeTTL: an absurd SOA minimum cannot pin
// a negative answer beyond MaxNegativeTTL (RFC 2308 §5).
func TestNegativeTTLCappedByMaxNegativeTTL(t *testing.T) {
	const cap = 2 * time.Minute
	client, _, recursor, clock := newStaleFleet(t, CacheConfig{MaxNegativeTTL: cap}, 0, ProtoDoH)
	recursor.negative = true
	recursor.soaTTL, recursor.soaMinimum = 604800, 604800 // a week

	if _, err := client.Query("bignx.test", dnswire.TypeHTTPS, false); err != nil {
		t.Fatal(err)
	}
	clock.Advance(cap - time.Second)
	if _, err := client.Query("bignx.test", dnswire.TypeHTTPS, false); err != nil {
		t.Fatal(err)
	}
	if recursor.queries != 1 {
		t.Fatalf("negative entry expired before the cap: %d queries", recursor.queries)
	}
	clock.Advance(2 * time.Second)
	if _, err := client.Query("bignx.test", dnswire.TypeHTTPS, false); err != nil {
		t.Fatal(err)
	}
	if recursor.queries != 2 {
		t.Errorf("week-long SOA minimum not capped at %v: %d recursor queries, want 2", cap, recursor.queries)
	}
}

// TestRefreshAheadPrefetch: a hit past the refresh-ahead threshold is
// served from cache but renews the entry upstream on the same exchange,
// so the entry never goes stale under steady traffic.
func TestRefreshAheadPrefetch(t *testing.T) {
	client, fe, recursor, clock := newStaleFleet(t,
		CacheConfig{StaleWindow: time.Hour, RefreshAhead: 0.8}, 0, ProtoDoH)
	if _, err := client.Query("pf.test", dnswire.TypeHTTPS, false); err != nil {
		t.Fatal(err)
	}

	// Before the threshold (0.8×300 = 240 s): no prefetch.
	clock.Advance(200 * time.Second)
	if _, err := client.Query("pf.test", dnswire.TypeHTTPS, false); err != nil {
		t.Fatal(err)
	}
	if recursor.queries != 1 {
		t.Fatalf("prefetch fired before the threshold: %d queries", recursor.queries)
	}

	// Past the threshold: served from cache AND refreshed upstream.
	clock.Advance(50 * time.Second) // 250 s elapsed
	resp, err := client.Query("pf.test", dnswire.TypeHTTPS, false)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Answer[0].TTL != 50 {
		t.Errorf("prefetch-armed hit TTL = %d, want aged 50 (still the old entry)", resp.Answer[0].TTL)
	}
	if recursor.queries != 2 {
		t.Fatalf("prefetch did not refresh upstream: %d queries", recursor.queries)
	}
	if st := fe.Stats(); st.Prefetches != 1 || st.CacheHits != 2 {
		t.Errorf("after prefetch: %+v", st)
	}

	// The renewed entry carries a full TTL from the prefetch moment:
	// 299 s later it is still fresh and served from cache.
	clock.Advance(299 * time.Second)
	resp, err = client.Query("pf.test", dnswire.TypeHTTPS, false)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Answer[0].TTL != 1 {
		t.Errorf("renewed entry TTL = %d, want 1", resp.Answer[0].TTL)
	}
	// That hit is itself past the threshold again → second prefetch.
	if fe.Stats().Prefetches != 2 {
		t.Errorf("steady traffic did not keep prefetching: %+v", fe.Stats())
	}
	if recursor.queries != 3 {
		t.Errorf("recursor saw %d queries, want 3 (initial + 2 prefetches)", recursor.queries)
	}
}

func TestParseBalance(t *testing.T) {
	for _, s := range []Balance{BalanceP2, BalanceEWMA, BalanceRoundRobin, BalanceHashAffinity} {
		got, err := ParseBalance(s.String())
		if err != nil || got != s {
			t.Errorf("ParseBalance(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseBalance("nope"); err == nil {
		t.Error("unknown strategy accepted")
	}
}

package transport

import (
	"strings"
	"testing"
	"time"

	"repro/internal/dnswire"
	"repro/internal/obs"
)

// TestStatsRatiosZeroDenominator pins the ratio accessors' zero-value
// behavior: freshly built stats report 0, not NaN, so report formatting
// never has to special-case an idle fleet.
func TestStatsRatiosZeroDenominator(t *testing.T) {
	var fs FrontendStats
	if got := fs.HitRate(); got != 0 {
		t.Errorf("zero FrontendStats.HitRate() = %v, want 0", got)
	}
	var ss StrategyStats
	if got := ss.WasteRate(); got != 0 {
		t.Errorf("zero StrategyStats.WasteRate() = %v, want 0", got)
	}
	fs.Served, fs.CacheHits = 4, 1
	if got := fs.HitRate(); got != 0.25 {
		t.Errorf("HitRate() = %v, want 0.25", got)
	}
	ss.Attempts, ss.Wasted = 8, 2
	if got := ss.WasteRate(); got != 0.25 {
		t.Errorf("WasteRate() = %v, want 0.25", got)
	}
}

// TestFleetRegistrySnapshot verifies the fleet binds its whole surface
// onto the obs registry: client counters, cache and pool views, fleet
// aggregates, and the exchange-latency histogram — and that the stable
// subset excludes the schedule-dependent names.
func TestFleetRegistrySnapshot(t *testing.T) {
	client, fl, _, _, _ := newTestFleet(t, 2, BalanceRoundRobin, ProtoDoH, ProtoDoT)
	for _, name := range []string{"one.test", "two.test", "one.test"} {
		if _, err := client.Query(name, dnswire.TypeHTTPS, false); err != nil {
			t.Fatal(err)
		}
	}
	snap := fl.Metrics.Snapshot()
	// Labeled families (frontend_*, pool_member_*) are matched by name
	// since their label sets vary per member.
	byName := map[string]int{}
	for _, m := range snap.Metrics {
		byName[m.Name]++
	}
	for _, name := range []string{
		"client_exchanges_total",
		"strategy_attempts_total",
		"frontend_served_total",
		"cache_hits_total",
		"pool_members",
		"pool_member_queries_total",
		"fleet_prefetches_total",
		"exchange_latency_seconds",
	} {
		if byName[name] == 0 {
			t.Errorf("snapshot missing %s", name)
		}
	}
	if byName["frontend_served_total"] != 2 || byName["pool_member_queries_total"] != 2 {
		t.Errorf("per-member families not per-member: frontend=%d pool=%d, want 2 each",
			byName["frontend_served_total"], byName["pool_member_queries_total"])
	}
	if got := snap.Value("client_exchanges_total"); got != 3 {
		t.Errorf("client_exchanges_total = %v, want 3", got)
	}
	if got := snap.Value("pool_members"); got != 2 {
		t.Errorf("pool_members = %v, want 2", got)
	}
	if m, ok := snap.Get("exchange_latency_seconds"); !ok || m.Count != 3 {
		t.Errorf("exchange_latency_seconds count = %+v, want 3 observations", m)
	}

	stable := fl.Metrics.StableSnapshot()
	if _, ok := stable.Get("client_exchanges_total"); !ok {
		t.Error("stable snapshot dropped client_exchanges_total")
	}
	stableNames := map[string]bool{}
	for _, m := range stable.Metrics {
		stableNames[m.Name] = true
	}
	for _, volatile := range []string{
		"frontend_served_total", "cache_hits_total",
		"strategy_attempts_total", "exchange_latency_seconds",
	} {
		if stableNames[volatile] {
			t.Errorf("stable snapshot leaked volatile %s", volatile)
		}
	}
}

// TestTraceThroughEnvelopes drives one traced exchange through each
// envelope (DoH, DoT, DoQ) and asserts the span tree carries the full
// path: client receive, the dial attempt, and the server-side frontend
// spans (cache probe, upstream answer, cache commit) nested under it.
func TestTraceThroughEnvelopes(t *testing.T) {
	client, fl, _, _, _ := newTestFleet(t, 3, BalanceRoundRobin, ProtoDoH, ProtoDoT, ProtoDoQ)
	client.Tracer = obs.NewTracer(nil, obs.TraceConfig{SampleEvery: 1})

	for i := 0; i < 3; i++ {
		if _, err := client.Query("traced.test", dnswire.TypeA, false); err != nil {
			t.Fatal(err)
		}
		fl.Cache.Flush() // force every exchange through a dial + upstream
	}
	traces := client.Tracer.Slowest(3)
	if len(traces) != 3 {
		t.Fatalf("sampled %d traces, want 3 (SampleEvery=1)", len(traces))
	}
	seen := map[string]bool{}
	for _, tr := range traces {
		var dial string
		spans := map[string]bool{}
		for _, sp := range tr.Spans {
			spans[sp.Name] = true
			if strings.HasPrefix(sp.Name, "dial ") {
				dial = sp.Name
			}
		}
		if dial == "" {
			t.Fatalf("trace %d has no dial span: %s", tr.ID, tr.Tree())
		}
		seen[dial] = true
		for _, want := range []string{"receive", "cache.probe", "upstream", "cache.put", "commit"} {
			if !spans[want] {
				t.Errorf("trace %d missing %q span:\n%s", tr.ID, want, tr.Tree())
			}
		}
	}
	// Round-robin over a 3-protocol fleet: each envelope carried one
	// traced exchange, so its server-side spans joined the client trace.
	if len(seen) != 3 {
		t.Errorf("dial spans reached %d distinct frontends, want 3: %v", len(seen), seen)
	}
}

// TestTraceExemplarOnHistogram checks that a traced exchange plants its
// trace ID as the latency histogram's bucket exemplar.
func TestTraceExemplarOnHistogram(t *testing.T) {
	client, fl, _, _, _ := newTestFleet(t, 1, BalanceRoundRobin)
	client.Tracer = obs.NewTracer(nil, obs.TraceConfig{SampleEvery: 1})
	client.Latency = func(*Upstream) time.Duration { return 7 * time.Millisecond }

	if _, err := client.Query("exemplar.test", dnswire.TypeA, false); err != nil {
		t.Fatal(err)
	}
	m, ok := fl.Metrics.Snapshot().Get("exchange_latency_seconds")
	if !ok {
		t.Fatal("no latency histogram in snapshot")
	}
	var found bool
	for _, b := range m.Buckets {
		if b.ExemplarTrace != 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("no bucket exemplar planted: %+v", m.Buckets)
	}
}

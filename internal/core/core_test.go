package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/workload"
)

func augCampaign(t *testing.T) *Campaign {
	t.Helper()
	c, err := NewCampaign(CampaignConfig{
		Size: 1200, Seed: 17,
		Start:    time.Date(2023, 8, 16, 0, 0, 0, 0, time.UTC),
		End:      time.Date(2023, 9, 20, 0, 0, 0, 0, time.UTC),
		StepDays: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCampaignDefaults(t *testing.T) {
	c, err := NewCampaign(CampaignConfig{Size: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Cfg.StepDays != 1 {
		t.Errorf("default StepDays = %d", c.Cfg.StepDays)
	}
	if c.Cfg.Start.IsZero() || c.Cfg.End.IsZero() {
		t.Error("default window not applied")
	}
	if !c.Cfg.Start.Equal(time.Date(2023, 5, 8, 0, 0, 0, 0, time.UTC)) {
		t.Errorf("start = %v", c.Cfg.Start)
	}
}

func TestRunDailyCollectsAllDatasets(t *testing.T) {
	c := augCampaign(t)
	var progress bytes.Buffer
	c.Cfg.Progress = &progress
	if err := c.RunDaily(); err != nil {
		t.Fatal(err)
	}
	apexDays := c.Store.Days("apex")
	wwwDays := c.Store.Days("www")
	if len(apexDays) != 6 || len(wwwDays) != 6 {
		t.Fatalf("days: apex=%d www=%d, want 6", len(apexDays), len(wwwDays))
	}
	// NS snapshots collected (window starts 2023-08-16).
	if len(c.Store.NSDays()) != 6 {
		t.Errorf("NS days = %d", len(c.Store.NSDays()))
	}
	// Tranco lists stored alongside.
	if _, ok := c.Store.TrancoListFor(apexDays[0]); !ok {
		t.Error("tranco list missing")
	}
	// Adopter ratio in a plausible band.
	snap, _ := c.Store.SnapshotFor("apex", apexDays[0])
	ratio := float64(len(snap.Obs)) / float64(snap.Total)
	if ratio < 0.10 || ratio > 0.40 {
		t.Errorf("adopter ratio = %.2f", ratio)
	}
	if !strings.Contains(progress.String(), "scanned") {
		t.Error("progress output missing")
	}
}

// TestCampaignThroughDoHFleet runs a scan day end-to-end through the
// encrypted serving layer and checks it observes the same adopters as the
// bare-stub path, with the fleet demonstrably in the loop.
func TestCampaignThroughDoHFleet(t *testing.T) {
	day := time.Date(2023, 9, 6, 0, 0, 0, 0, time.UTC)
	bare, err := NewCampaign(CampaignConfig{Size: 800, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if err := bare.ScanDay(day); err != nil {
		t.Fatal(err)
	}

	fleet, err := NewCampaign(CampaignConfig{Size: 800, Seed: 17, DoHFrontends: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet.Fleet.Frontends) != 3 || fleet.Fleet.Pool.Len() != 3 {
		t.Fatalf("fleet not built: %d frontends, %d pool members",
			len(fleet.Fleet.Frontends), fleet.Fleet.Pool.Len())
	}
	if err := fleet.ScanDay(day); err != nil {
		t.Fatal(err)
	}

	bareSnap, _ := bare.Store.SnapshotFor("apex", day)
	fleetSnap, _ := fleet.Store.SnapshotFor("apex", day)
	if bareSnap == nil || fleetSnap == nil {
		t.Fatal("missing snapshots")
	}
	// Same world, same day: the serving layer must be transparent to
	// the measurement results.
	if len(fleetSnap.Obs) != len(bareSnap.Obs) {
		t.Errorf("adopters differ: DoH %d vs stub %d", len(fleetSnap.Obs), len(bareSnap.Obs))
	}
	for name := range bareSnap.Obs {
		if _, ok := fleetSnap.Obs[name]; !ok {
			t.Errorf("adopter %s lost through the DoH layer", name)
		}
	}
	if fleet.Fleet.TotalStats().Served == 0 {
		t.Error("DoH frontends saw no traffic during the scan")
	}
	if fleet.Fleet.Cache.Stats().Hits == 0 {
		t.Error("shared cache absorbed nothing (www scan re-queries apex NS/SOA)")
	}
	// ScanDay records the day's serving-layer lifecycle snapshot.
	if _, ok := fleet.Store.ServingFor(day); !ok {
		t.Error("serving snapshot not recorded for the scanned day")
	}
}

// storeJSON serialises a campaign's store for byte-level comparison (the
// export sorts snapshot days, and JSON encodes maps with sorted keys, so
// equal stores produce equal bytes).
func storeJSON(t *testing.T, c *Campaign) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Store.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPipelinedMatchesSerial is the pipelining equivalence guarantee: for
// the same seed, running the campaign with one day worker and with eight
// must produce byte-identical stores (snapshots, NS snapshots, Tranco
// lists, and probe results — the window covers both the NS-scan and
// connectivity-probe phases).
func TestPipelinedMatchesSerial(t *testing.T) {
	cfg := CampaignConfig{
		Size: 700, Seed: 23,
		Start:    time.Date(2024, 1, 10, 0, 0, 0, 0, time.UTC),
		End:      time.Date(2024, 2, 21, 0, 0, 0, 0, time.UTC),
		StepDays: 7,
	}
	run := func(workers int) []byte {
		c, err := NewCampaign(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.Cfg.DayWorkers = workers
		if err := c.RunDaily(); err != nil {
			t.Fatal(err)
		}
		if len(c.Store.Days("apex")) != 7 {
			t.Fatalf("workers=%d: apex days = %d, want 7", workers, len(c.Store.Days("apex")))
		}
		if len(c.Store.Probes()) == 0 {
			t.Fatalf("workers=%d: no probe results in a window past the probe start", workers)
		}
		return storeJSON(t, c)
	}
	serial := run(1)
	pipelined := run(8)
	if !bytes.Equal(serial, pipelined) {
		t.Fatalf("pipelined store diverges from serial: %d vs %d bytes", len(serial), len(pipelined))
	}
}

// TestPipelinedMixedFleetMatchesSerial runs the pipelining equivalence
// through a mixed DoH/DoT/DoQ serving fleet: per-day replicas keep their
// clocks frozen (newDayContext), so a campaign through the encrypted
// layer — any protocol mix — must produce a byte-identical store for any
// worker count, serving-layer lifecycle snapshots included.
func TestPipelinedMixedFleetMatchesSerial(t *testing.T) {
	// The window sits past connectivityProbeStart so the NS-scan and
	// probe phases both run through the fleet.
	cfg := CampaignConfig{
		Size: 500, Seed: 29,
		Start:        time.Date(2024, 1, 25, 0, 0, 0, 0, time.UTC),
		End:          time.Date(2024, 2, 15, 0, 0, 0, 0, time.UTC),
		StepDays:     7,
		DoHFrontends: 4,
		TransportMix: transport.Mix{DoH: 2, DoT: 1, DoQ: 1},
	}
	run := func(workers int) *Campaign {
		c, err := NewCampaign(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.Cfg.DayWorkers = workers
		if err := c.RunDaily(); err != nil {
			t.Fatal(err)
		}
		if len(c.Store.Probes()) == 0 {
			t.Fatalf("workers=%d: no probe results in a window past the probe start", workers)
		}
		return c
	}
	serial := run(1)
	pipelined := run(4)

	// The fleet must actually be mixed and in the loop.
	perProto := serial.Fleet.ProtocolStats()
	if len(perProto) != 3 {
		t.Fatalf("fleet spans %d protocols, want 3 (%v)", len(perProto), perProto)
	}
	// Per-day replicas carry the traffic during RunDaily; the campaign
	// fleet itself stays idle. The replicas' protocol assignment is
	// verified through the store equality below.

	// One serving snapshot per scan day, recorded identically.
	if got, want := len(serial.Store.ServingDays()), len(serial.Store.Days("apex")); got != want {
		t.Fatalf("serving snapshots for %d days, want %d", got, want)
	}

	a, b := storeJSON(t, serial), storeJSON(t, pipelined)
	if !bytes.Equal(a, b) {
		t.Fatalf("mixed-fleet pipelined store diverges from serial: %d vs %d bytes", len(a), len(b))
	}
}

// TestPipelinedStrategiesMatchSerial extends the pipelining equivalence
// to the resolution strategies: a mixed-fleet campaign under
// happy-eyeballs racing, and a same-protocol campaign under hedged
// queries, must each produce byte-identical stores for any worker count.
// Races and hedges change which frontend answers and how many attempts
// fire — never the answers — and per-day replicas keep their clocks
// frozen, so the determinism contract holds attempt-for-attempt.
func TestPipelinedStrategiesMatchSerial(t *testing.T) {
	for _, tc := range []struct {
		name string
		kind transport.StrategyKind
		mix  transport.Mix
	}{
		{"race", transport.StrategyRace, transport.Mix{DoH: 2, DoT: 1, DoQ: 1}},
		{"hedge", transport.StrategyHedge, transport.Mix{DoH: 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := CampaignConfig{
				Size: 400, Seed: 31,
				Start:             time.Date(2024, 1, 25, 0, 0, 0, 0, time.UTC),
				End:               time.Date(2024, 2, 1, 0, 0, 0, 0, time.UTC),
				StepDays:          7,
				DoHFrontends:      4,
				TransportMix:      tc.mix,
				TransportStrategy: tc.kind,
			}
			run := func(workers int) []byte {
				c, err := NewCampaign(cfg)
				if err != nil {
					t.Fatal(err)
				}
				c.Cfg.DayWorkers = workers
				if err := c.RunDaily(); err != nil {
					t.Fatal(err)
				}
				return storeJSON(t, c)
			}
			serial := run(1)
			pipelined := run(8)
			if !bytes.Equal(serial, pipelined) {
				t.Fatalf("%s: pipelined store diverges from serial: %d vs %d bytes",
					tc.name, len(serial), len(pipelined))
			}
		})
	}
}

// TestSerialStrategyByteIdenticalToDefault is the refactor's "today's
// behavior, byte-identical" proof at the campaign level: explicitly
// selecting StrategySerial collects a store byte-identical to the
// zero-value config's (whose fleets ran the pre-refactor failover
// shape). The nil-strategy ≡ SerialFailover equivalence itself is pinned
// deterministically in the transport package
// (TestSerialFailoverExplicitMatchesDefault); RunDaily is used here
// because its per-day replicas freeze their clocks, making the store
// bytes reproducible.
func TestSerialStrategyByteIdenticalToDefault(t *testing.T) {
	run := func(explicit bool) []byte {
		cfg := CampaignConfig{
			Size: 400, Seed: 17,
			Start:        time.Date(2024, 1, 25, 0, 0, 0, 0, time.UTC),
			End:          time.Date(2024, 2, 8, 0, 0, 0, 0, time.UTC),
			StepDays:     7,
			DoHFrontends: 3,
			TransportMix: transport.Mix{DoH: 1, DoT: 1, DoQ: 1},
		}
		if explicit {
			cfg.TransportStrategy = transport.StrategySerial
		}
		c, err := NewCampaign(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.RunDaily(); err != nil {
			t.Fatal(err)
		}
		return storeJSON(t, c)
	}
	if !bytes.Equal(run(true), run(false)) {
		t.Fatal("explicit StrategySerial diverged from the default config")
	}
}

func TestHourlyECHCadence(t *testing.T) {
	c := augCampaign(t)
	start := time.Date(2023, 8, 20, 0, 0, 0, 0, time.UTC)
	c.RunHourlyECH(start, 1)
	obs := c.Store.ECHObservations()
	if len(obs) == 0 {
		t.Fatal("no hourly ECH observations")
	}
	// Observations must cover 24 distinct hours.
	hours := map[int64]bool{}
	for _, o := range obs {
		hours[o.Time.Unix()/3600] = true
	}
	if len(hours) != 24 {
		t.Errorf("hourly coverage = %d hours, want 24", len(hours))
	}
	// Multiple distinct keys must appear within a day (76-minute period).
	keys := map[uint64]bool{}
	for _, o := range obs {
		keys[o.KeyHash] = true
	}
	if len(keys) < 10 {
		t.Errorf("distinct keys in 24h = %d, want ≈19", len(keys))
	}
}

func TestValidationCensusClassification(t *testing.T) {
	c := augCampaign(t)
	c.RunValidationCensus(time.Date(2023, 9, 1, 0, 0, 0, 0, time.UTC))
	rows := c.Store.Validation()
	if len(rows) != 1200 {
		t.Fatalf("census rows = %d", len(rows))
	}
	var signed, secure, insecure, withHTTPS int
	for _, r := range rows {
		if r.HasHTTPS {
			withHTTPS++
		}
		if r.Signed {
			signed++
			switch r.Result {
			case "secure":
				secure++
			case "insecure":
				insecure++
			case "bogus":
				t.Errorf("bogus validation for %s", r.Domain)
			}
		} else if r.Result != "" {
			t.Errorf("unsigned domain %s has result %q", r.Domain, r.Result)
		}
	}
	if signed == 0 || withHTTPS == 0 {
		t.Fatalf("census empty: signed=%d https=%d", signed, withHTTPS)
	}
	if secure+insecure != signed {
		t.Errorf("secure(%d)+insecure(%d) != signed(%d)", secure, insecure, signed)
	}
}

// TestPipelinedTelemetryMatchesSerial is the observability subsystem's
// determinism proof at the campaign level: with telemetry series enabled,
// a mixed-fleet racing campaign must still produce a byte-identical store
// for any worker count — the series sample only stable (winner-side)
// metrics at frozen-clock stage boundaries, so worker interleaving cannot
// leak into the curves.
func TestPipelinedTelemetryMatchesSerial(t *testing.T) {
	cfg := CampaignConfig{
		Size: 500, Seed: 29,
		Start:             time.Date(2024, 1, 25, 0, 0, 0, 0, time.UTC),
		End:               time.Date(2024, 2, 15, 0, 0, 0, 0, time.UTC),
		StepDays:          7,
		DoHFrontends:      4,
		TransportMix:      transport.Mix{DoH: 2, DoT: 1, DoQ: 1},
		TransportStrategy: transport.StrategyRace,
		TelemetryInterval: time.Hour,
	}
	run := func(workers int) *Campaign {
		c, err := NewCampaign(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.Cfg.DayWorkers = workers
		if err := c.RunDaily(); err != nil {
			t.Fatal(err)
		}
		return c
	}
	serial := run(1)
	pipelined := run(8)

	// One series per scan day, with a sample forced at every stage
	// boundary (the window sits past the NS-scan and probe starts, so all
	// four stages run) and real exchange counts on the final point.
	days := serial.Store.Days("apex")
	if got, want := len(serial.Store.TelemetryAll()), len(days); got != want {
		t.Fatalf("telemetry series for %d days, want %d", got, want)
	}
	series, ok := serial.Store.TelemetryFor("daily", days[0])
	if !ok {
		t.Fatalf("no daily series for %s", days[0].Format("2006-01-02"))
	}
	var labels []string
	for _, p := range series.Points {
		labels = append(labels, p.Label)
	}
	if got, want := strings.Join(labels, ","), "apex,www,ns,probes"; got != want {
		t.Fatalf("sample labels = %q, want %q", got, want)
	}
	last := series.Points[len(series.Points)-1]
	if last.Value("client_exchanges_total") == 0 {
		t.Error("final sample records no exchanges")
	}
	if last.Value("pool_healthy") == 0 {
		t.Error("final sample records no healthy pool members")
	}

	a, b := storeJSON(t, serial), storeJSON(t, pipelined)
	if !bytes.Equal(a, b) {
		t.Fatalf("telemetry-enabled pipelined store diverges from serial: %d vs %d bytes", len(a), len(b))
	}
}

// TestPipelinedHourlyMatchesSerial is the hour-pipeline equivalence
// guarantee: with a mixed racing fleet and telemetry series enabled, the
// §4.4.2 hourly-ECH run must produce byte-identical stores (ECH
// observations and hourly-ech telemetry series included) for HourWorkers
// 1 and 8.
func TestPipelinedHourlyMatchesSerial(t *testing.T) {
	cfg := CampaignConfig{
		Size: 500, Seed: 29,
		DoHFrontends:      4,
		TransportMix:      transport.Mix{DoH: 2, DoT: 1, DoQ: 1},
		TransportStrategy: transport.StrategyRace,
		TelemetryInterval: time.Hour,
		// The anomaly tier rides the hour replicas too (recorder plus tail
		// tracer); hourly runs commit no captures, but the tier being on
		// must not perturb a single stored byte.
		AnomalyCapture: true,
	}
	start := time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC)
	run := func(workers int) *Campaign {
		c, err := NewCampaign(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.Cfg.HourWorkers = workers
		c.RunHourlyECH(start, 2)
		return c
	}
	serial := run(1)
	pipelined := run(8)

	obs := serial.Store.ECHObservations()
	if len(obs) == 0 {
		t.Fatal("no hourly ECH observations")
	}
	hours := map[int64]bool{}
	for _, o := range obs {
		hours[o.Time.Unix()/3600] = true
	}
	if len(hours) != 48 {
		t.Fatalf("hourly coverage = %d hours, want 48", len(hours))
	}
	// One hourly-ech series per scan day, 24 cumulative points each.
	for d := 0; d < 2; d++ {
		day := start.AddDate(0, 0, d)
		series, ok := serial.Store.TelemetryFor("hourly-ech", day)
		if !ok {
			t.Fatalf("no hourly-ech series for %s", day.Format("2006-01-02"))
		}
		if len(series.Points) != 24 {
			t.Fatalf("day %d: %d telemetry points, want 24", d, len(series.Points))
		}
		// The cumulative fold must be monotone in exchange count.
		prev := -1.0
		for _, p := range series.Points {
			v := p.Value("client_exchanges_total")
			if v < prev {
				t.Fatalf("day %d: cumulative exchanges decreased: %v after %v", d, v, prev)
			}
			prev = v
		}
		if prev == 0 {
			t.Fatalf("day %d: final point records no exchanges", d)
		}
	}

	a, b := storeJSON(t, serial), storeJSON(t, pipelined)
	if !bytes.Equal(a, b) {
		t.Fatalf("pipelined hourly store diverges from serial: %d vs %d bytes", len(a), len(b))
	}
}

// TestHourlyDiscoveryFastPath checks RunHourlyECH reuses the day's
// stored apex snapshot instead of re-scanning the full Tranco list: with
// the snapshot present the run issues strictly fewer simulated queries,
// and both paths scan the identical ECH population.
func TestHourlyDiscoveryFastPath(t *testing.T) {
	start := time.Date(2023, 8, 20, 0, 0, 0, 0, time.UTC)
	run := func(preScan bool) (uint64, map[string]bool) {
		c, err := NewCampaign(CampaignConfig{Size: 1200, Seed: 17})
		if err != nil {
			t.Fatal(err)
		}
		if preScan {
			if err := c.ScanDay(start); err != nil {
				t.Fatal(err)
			}
		}
		before := c.World.Net.QueryCount()
		c.RunHourlyECH(start, 1)
		queries := c.World.Net.QueryCount() - before
		domains := map[string]bool{}
		for _, o := range c.Store.ECHObservations() {
			domains[o.Domain] = true
		}
		return queries, domains
	}
	slowQueries, slowDomains := run(false)
	fastQueries, fastDomains := run(true)
	if len(fastDomains) == 0 {
		t.Fatal("fast path scanned no ECH domains")
	}
	if len(fastDomains) != len(slowDomains) {
		t.Fatalf("ECH populations differ: fast %d vs slow %d", len(fastDomains), len(slowDomains))
	}
	for d := range slowDomains {
		if !fastDomains[d] {
			t.Fatalf("fast path missed ECH domain %s", d)
		}
	}
	if fastQueries >= slowQueries {
		t.Fatalf("fast path issued %d queries, not fewer than the %d of the discovery scan",
			fastQueries, slowQueries)
	}
}

// TestPartitionByDayBoundaries pins the UTC day-bucketing: a point
// exactly at midnight belongs to the day it opens, and multi-day spans
// split into per-day groups preserving order.
func TestPartitionByDayBoundaries(t *testing.T) {
	day0 := time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC)
	points := []obs.Point{
		{At: day0, Label: "h0"},
		{At: day0.Add(23 * time.Hour), Label: "h23"},
		{At: day0.Add(24 * time.Hour), Label: "h24"}, // midnight: next day
		{At: day0.Add(47 * time.Hour), Label: "h47"},
		{At: day0.Add(48 * time.Hour), Label: "h48"},                  // third day
		{At: day0.Add(36*time.Hour + 30*time.Minute), Label: "h36.5"}, // mid-span, out of order on purpose
	}
	got := partitionByDay(points)
	if len(got) != 3 {
		t.Fatalf("partitioned into %d days, want 3", len(got))
	}
	labels := func(day time.Time) []string {
		var out []string
		for _, p := range got[day] {
			out = append(out, p.Label)
		}
		return out
	}
	if l := labels(day0); len(l) != 2 || l[0] != "h0" || l[1] != "h23" {
		t.Errorf("day 0 points = %v", l)
	}
	if l := labels(day0.AddDate(0, 0, 1)); len(l) != 3 || l[0] != "h24" || l[1] != "h47" || l[2] != "h36.5" {
		t.Errorf("day 1 points = %v", l)
	}
	if l := labels(day0.AddDate(0, 0, 2)); len(l) != 1 || l[0] != "h48" {
		t.Errorf("day 2 points = %v", l)
	}
}

// TestWorkloadPipelinedMatchesSerial extends the pipelining equivalence
// to the workload engine: a campaign that drives a simulated stub
// population through each day's fleet must produce byte-identical
// stores — workload snapshots, digests, and telemetry series included —
// for any day-worker count. The engine runs single-goroutine inside
// each day's frozen-clock replica, so its (seed, clock, config) purity
// carries straight through the day pipeline.
func TestWorkloadPipelinedMatchesSerial(t *testing.T) {
	cfg := CampaignConfig{
		Size: 500, Seed: 29,
		Start:             time.Date(2024, 1, 25, 0, 0, 0, 0, time.UTC),
		End:               time.Date(2024, 2, 1, 0, 0, 0, 0, time.UTC),
		StepDays:          7,
		DoHFrontends:      4,
		TransportMix:      transport.Mix{DoH: 2, DoT: 1, DoQ: 1},
		TransportStrategy: transport.StrategyRace,
		TelemetryInterval: time.Hour,
		Workload: &workload.Config{
			Clients: 3_000, Model: workload.ModelOpen,
			OpenRate: 0.01, Duration: time.Hour,
			StubTTL: 30 * time.Second,
			Mix:     transport.Mix{DoH: 2, DoT: 1, DoQ: 1},
			Crowds: []workload.FlashCrowd{{
				At: 30 * time.Minute, Duration: 10 * time.Minute, Multiplier: 8,
			}},
		},
	}
	run := func(workers int) *Campaign {
		c, err := NewCampaign(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.Cfg.DayWorkers = workers
		if err := c.RunDaily(); err != nil {
			t.Fatal(err)
		}
		return c
	}
	serial := run(1)
	pipelined := run(8)

	days := serial.Store.WorkloadDays()
	if len(days) != 2 {
		t.Fatalf("workload snapshots for %d days, want 2", len(days))
	}
	for _, day := range days {
		snap, ok := serial.Store.WorkloadFor(day)
		if !ok {
			t.Fatalf("no workload snapshot for %s", day.Format("2006-01-02"))
		}
		if snap.Queries == 0 || snap.Digest == "" {
			t.Fatalf("%s: degenerate workload snapshot: %+v", day.Format("2006-01-02"), snap)
		}
		if snap.Clients != 3_000 {
			t.Fatalf("%s: snapshot records %d clients, want 3000", day.Format("2006-01-02"), snap.Clients)
		}
		series, ok := serial.Store.TelemetryFor("workload", day)
		if !ok {
			t.Fatalf("no workload telemetry series for %s", day.Format("2006-01-02"))
		}
		if len(series.Points) == 0 {
			t.Fatalf("%s: empty workload telemetry series", day.Format("2006-01-02"))
		}
	}
	// Per-day seeds differ, so per-day event streams must too.
	if a, b := mustWorkload(t, serial, days[0]), mustWorkload(t, serial, days[1]); a.Digest == b.Digest {
		t.Fatalf("days %s and %s share workload digest %s", days[0].Format("01-02"), days[1].Format("01-02"), a.Digest)
	}

	a, b := storeJSON(t, serial), storeJSON(t, pipelined)
	if !bytes.Equal(a, b) {
		t.Fatalf("workload-enabled pipelined store diverges from serial: %d vs %d bytes", len(a), len(b))
	}
}

// TestPipelinedAnomalyCaptureMatchesSerial is the anomaly tier's
// determinism proof: with the flight recorder, tail-sampled tracing, and
// SLO evaluation all enabled on every per-day replica, a mixed racing
// fleet driving both the scan stages and a flash-crowd workload must
// still produce byte-identical stores — AnomalyCapture records included
// — for any day-worker count. The captures are assembled exclusively
// from schedule-independent inputs (eviction-immune stable event
// counts, winner-side SLO stats, winner-side trace flags), which is
// exactly what this test pins.
func TestPipelinedAnomalyCaptureMatchesSerial(t *testing.T) {
	cfg := CampaignConfig{
		Size: 500, Seed: 29,
		Start:             time.Date(2024, 1, 25, 0, 0, 0, 0, time.UTC),
		End:               time.Date(2024, 2, 1, 0, 0, 0, 0, time.UTC),
		StepDays:          7,
		DoHFrontends:      4,
		TransportMix:      transport.Mix{DoH: 2, DoT: 1, DoQ: 1},
		TransportStrategy: transport.StrategyRace,
		TelemetryInterval: time.Hour,
		AnomalyCapture:    true,
		TailTopK:          16,
		Workload: &workload.Config{
			Clients: 2_000, Model: workload.ModelOpen,
			OpenRate: 0.01, Duration: time.Hour,
			StubTTL: 30 * time.Second,
			Mix:     transport.Mix{DoH: 2, DoT: 1, DoQ: 1},
			Crowds: []workload.FlashCrowd{{
				At: 20 * time.Minute, Duration: 10 * time.Minute, Multiplier: 8,
			}},
		},
	}
	run := func(workers int) *Campaign {
		c, err := NewCampaign(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.Cfg.DayWorkers = workers
		if err := c.RunDaily(); err != nil {
			t.Fatal(err)
		}
		return c
	}
	serial := run(1)
	pipelined := run(8)

	// Every scan day triggers a capture: negative answers and crowd
	// markers are stable events, and both fire in this configuration.
	days := serial.Store.Days("apex")
	if got := serial.Store.AnomalyDays(); len(got) != len(days) {
		t.Fatalf("anomaly captures for %d days, want %d", len(got), len(days))
	}
	capt, ok := serial.Store.AnomalyFor(days[0])
	if !ok {
		t.Fatalf("no anomaly capture for %s", days[0].Format("2006-01-02"))
	}
	if capt.Exchanges == 0 {
		t.Fatal("capture records no exchanges")
	}
	// A healthy world violates no objective and tail-retains no
	// winner-side anomalies; the racing fleet's race-flagged traces must
	// be masked out of the stored projection.
	if capt.Violations != 0 || capt.Errors != 0 || capt.StaleServed != 0 {
		t.Fatalf("healthy campaign reports anomalies: %+v", capt)
	}
	if len(capt.Traces) != 0 {
		t.Fatalf("dial-shape traces leaked into the store: %+v", capt.Traces)
	}
	if capt.Availability != 1 {
		t.Fatalf("availability = %v, want 1", capt.Availability)
	}
	keys := map[string]uint64{}
	for _, ev := range capt.Events {
		keys[ev.Key] = ev.Count
	}
	if keys["client.negative"] == 0 {
		t.Fatalf("capture misses the negative-answer events: %v", keys)
	}
	var crowdStart, crowdEnd bool
	for k := range keys {
		if strings.HasPrefix(k, "workload.crowd.start") {
			crowdStart = true
		}
		if strings.HasPrefix(k, "workload.crowd.end") {
			crowdEnd = true
		}
	}
	if !crowdStart || !crowdEnd {
		t.Fatalf("capture misses the flash-crowd markers: %v", keys)
	}
	for k := range keys {
		if strings.HasPrefix(k, "strategy.") || strings.HasPrefix(k, "pool.") || strings.HasPrefix(k, "frontend.") {
			t.Fatalf("volatile event kind %q leaked into the capture", k)
		}
	}

	a, b := storeJSON(t, serial), storeJSON(t, pipelined)
	if !bytes.Equal(a, b) {
		t.Fatalf("anomaly-enabled pipelined store diverges from serial: %d vs %d bytes", len(a), len(b))
	}
}

func mustWorkload(t *testing.T, c *Campaign, day time.Time) *dataset.WorkloadSnapshot {
	t.Helper()
	snap, ok := c.Store.WorkloadFor(day)
	if !ok {
		t.Fatalf("no workload snapshot for %s", day.Format("2006-01-02"))
	}
	return snap
}

package core

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func augCampaign(t *testing.T) *Campaign {
	t.Helper()
	c, err := NewCampaign(CampaignConfig{
		Size: 1200, Seed: 17,
		Start:    time.Date(2023, 8, 16, 0, 0, 0, 0, time.UTC),
		End:      time.Date(2023, 9, 20, 0, 0, 0, 0, time.UTC),
		StepDays: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCampaignDefaults(t *testing.T) {
	c, err := NewCampaign(CampaignConfig{Size: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Cfg.StepDays != 1 {
		t.Errorf("default StepDays = %d", c.Cfg.StepDays)
	}
	if c.Cfg.Start.IsZero() || c.Cfg.End.IsZero() {
		t.Error("default window not applied")
	}
	if !c.Cfg.Start.Equal(time.Date(2023, 5, 8, 0, 0, 0, 0, time.UTC)) {
		t.Errorf("start = %v", c.Cfg.Start)
	}
}

func TestRunDailyCollectsAllDatasets(t *testing.T) {
	c := augCampaign(t)
	var progress bytes.Buffer
	c.Cfg.Progress = &progress
	if err := c.RunDaily(); err != nil {
		t.Fatal(err)
	}
	apexDays := c.Store.Days("apex")
	wwwDays := c.Store.Days("www")
	if len(apexDays) != 6 || len(wwwDays) != 6 {
		t.Fatalf("days: apex=%d www=%d, want 6", len(apexDays), len(wwwDays))
	}
	// NS snapshots collected (window starts 2023-08-16).
	if len(c.Store.NSDays()) != 6 {
		t.Errorf("NS days = %d", len(c.Store.NSDays()))
	}
	// Tranco lists stored alongside.
	if _, ok := c.Store.TrancoListFor(apexDays[0]); !ok {
		t.Error("tranco list missing")
	}
	// Adopter ratio in a plausible band.
	snap, _ := c.Store.SnapshotFor("apex", apexDays[0])
	ratio := float64(len(snap.Obs)) / float64(snap.Total)
	if ratio < 0.10 || ratio > 0.40 {
		t.Errorf("adopter ratio = %.2f", ratio)
	}
	if !strings.Contains(progress.String(), "scanned") {
		t.Error("progress output missing")
	}
}

// TestCampaignThroughDoHFleet runs a scan day end-to-end through the
// encrypted serving layer and checks it observes the same adopters as the
// bare-stub path, with the fleet demonstrably in the loop.
func TestCampaignThroughDoHFleet(t *testing.T) {
	day := time.Date(2023, 9, 6, 0, 0, 0, 0, time.UTC)
	bare, err := NewCampaign(CampaignConfig{Size: 800, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if err := bare.ScanDay(day); err != nil {
		t.Fatal(err)
	}

	fleet, err := NewCampaign(CampaignConfig{Size: 800, Seed: 17, DoHFrontends: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet.DoHServers) != 3 || fleet.DoHPool.Len() != 3 {
		t.Fatalf("fleet not built: %d servers, %d pool members",
			len(fleet.DoHServers), fleet.DoHPool.Len())
	}
	if err := fleet.ScanDay(day); err != nil {
		t.Fatal(err)
	}

	bareSnap, _ := bare.Store.SnapshotFor("apex", day)
	fleetSnap, _ := fleet.Store.SnapshotFor("apex", day)
	if bareSnap == nil || fleetSnap == nil {
		t.Fatal("missing snapshots")
	}
	// Same world, same day: the serving layer must be transparent to
	// the measurement results.
	if len(fleetSnap.Obs) != len(bareSnap.Obs) {
		t.Errorf("adopters differ: DoH %d vs stub %d", len(fleetSnap.Obs), len(bareSnap.Obs))
	}
	for name := range bareSnap.Obs {
		if _, ok := fleetSnap.Obs[name]; !ok {
			t.Errorf("adopter %s lost through the DoH layer", name)
		}
	}
	var served uint64
	for _, s := range fleet.DoHServers {
		served += s.Stats().Served
	}
	if served == 0 {
		t.Error("DoH frontends saw no traffic during the scan")
	}
	if fleet.DoHCache.Stats().Hits == 0 {
		t.Error("shared cache absorbed nothing (www scan re-queries apex NS/SOA)")
	}
}

// storeJSON serialises a campaign's store for byte-level comparison (the
// export sorts snapshot days, and JSON encodes maps with sorted keys, so
// equal stores produce equal bytes).
func storeJSON(t *testing.T, c *Campaign) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Store.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPipelinedMatchesSerial is the pipelining equivalence guarantee: for
// the same seed, running the campaign with one day worker and with eight
// must produce byte-identical stores (snapshots, NS snapshots, Tranco
// lists, and probe results — the window covers both the NS-scan and
// connectivity-probe phases).
func TestPipelinedMatchesSerial(t *testing.T) {
	cfg := CampaignConfig{
		Size: 700, Seed: 23,
		Start:    time.Date(2024, 1, 10, 0, 0, 0, 0, time.UTC),
		End:      time.Date(2024, 2, 21, 0, 0, 0, 0, time.UTC),
		StepDays: 7,
	}
	run := func(workers int) []byte {
		c, err := NewCampaign(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.Cfg.DayWorkers = workers
		if err := c.RunDaily(); err != nil {
			t.Fatal(err)
		}
		if len(c.Store.Days("apex")) != 7 {
			t.Fatalf("workers=%d: apex days = %d, want 7", workers, len(c.Store.Days("apex")))
		}
		if len(c.Store.Probes()) == 0 {
			t.Fatalf("workers=%d: no probe results in a window past the probe start", workers)
		}
		return storeJSON(t, c)
	}
	serial := run(1)
	pipelined := run(8)
	if !bytes.Equal(serial, pipelined) {
		t.Fatalf("pipelined store diverges from serial: %d vs %d bytes", len(serial), len(pipelined))
	}
}

// TestPipelinedDoHFleetMatchesSerial runs the same equivalence through the
// encrypted serving layer. With synthetic latency charged to the per-day
// clocks, exact clock values depend on scheduling, but the observed records
// are day/hour-granular, so the adopter sets must match exactly.
func TestPipelinedDoHFleetMatchesSerial(t *testing.T) {
	// The window sits past connectivityProbeStart so the NS-scan and
	// probe phases both run through the fleet.
	cfg := CampaignConfig{
		Size: 500, Seed: 29,
		Start:        time.Date(2024, 1, 25, 0, 0, 0, 0, time.UTC),
		End:          time.Date(2024, 2, 15, 0, 0, 0, 0, time.UTC),
		StepDays:     7,
		DoHFrontends: 4,
	}
	run := func(workers int) *Campaign {
		c, err := NewCampaign(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.Cfg.DayWorkers = workers
		if err := c.RunDaily(); err != nil {
			t.Fatal(err)
		}
		return c
	}
	serial := run(1)
	pipelined := run(4)
	for _, kind := range []string{"apex", "www"} {
		for _, day := range serial.Store.Days(kind) {
			want, _ := serial.Store.SnapshotFor(kind, day)
			got, ok := pipelined.Store.SnapshotFor(kind, day)
			if !ok {
				t.Fatalf("%s %s: pipelined run lost the day", kind, day.Format("2006-01-02"))
			}
			if len(got.Obs) != len(want.Obs) {
				t.Fatalf("%s %s: adopters differ: pipelined %d vs serial %d",
					kind, day.Format("2006-01-02"), len(got.Obs), len(want.Obs))
			}
			for name := range want.Obs {
				if _, ok := got.Obs[name]; !ok {
					t.Errorf("%s %s: adopter %s lost in pipelined run",
						kind, day.Format("2006-01-02"), name)
				}
			}
		}
	}
	// NS attribution and probe results are scheduling-independent (static
	// WHOIS data, day-granular reachability episodes): compare in full.
	for _, day := range serial.Store.NSDays() {
		want, _ := serial.Store.NSSnapshotFor(day)
		got, ok := pipelined.Store.NSSnapshotFor(day)
		if !ok || len(got.Servers) != len(want.Servers) {
			t.Fatalf("%s: NS snapshots differ", day.Format("2006-01-02"))
		}
		for host, nso := range want.Servers {
			b, ok := got.Servers[host]
			if !ok || b.Org != nso.Org || len(b.Addrs) != len(nso.Addrs) {
				t.Errorf("%s: NS host %s differs: %+v vs %+v",
					day.Format("2006-01-02"), host, nso, b)
			}
		}
	}
	wantProbes, gotProbes := serial.Store.Probes(), pipelined.Store.Probes()
	if len(wantProbes) == 0 {
		t.Error("no probe results in a window past the probe start")
	}
	if len(wantProbes) != len(gotProbes) {
		t.Fatalf("probe counts differ: pipelined %d vs serial %d", len(gotProbes), len(wantProbes))
	}
	for i := range wantProbes {
		if wantProbes[i] != gotProbes[i] {
			t.Errorf("probe %d differs: %+v vs %+v", i, wantProbes[i], gotProbes[i])
		}
	}
}

func TestHourlyECHCadence(t *testing.T) {
	c := augCampaign(t)
	start := time.Date(2023, 8, 20, 0, 0, 0, 0, time.UTC)
	c.RunHourlyECH(start, 1)
	obs := c.Store.ECHObservations()
	if len(obs) == 0 {
		t.Fatal("no hourly ECH observations")
	}
	// Observations must cover 24 distinct hours.
	hours := map[int64]bool{}
	for _, o := range obs {
		hours[o.Time.Unix()/3600] = true
	}
	if len(hours) != 24 {
		t.Errorf("hourly coverage = %d hours, want 24", len(hours))
	}
	// Multiple distinct keys must appear within a day (76-minute period).
	keys := map[uint64]bool{}
	for _, o := range obs {
		keys[o.KeyHash] = true
	}
	if len(keys) < 10 {
		t.Errorf("distinct keys in 24h = %d, want ≈19", len(keys))
	}
}

func TestValidationCensusClassification(t *testing.T) {
	c := augCampaign(t)
	c.RunValidationCensus(time.Date(2023, 9, 1, 0, 0, 0, 0, time.UTC))
	rows := c.Store.Validation()
	if len(rows) != 1200 {
		t.Fatalf("census rows = %d", len(rows))
	}
	var signed, secure, insecure, withHTTPS int
	for _, r := range rows {
		if r.HasHTTPS {
			withHTTPS++
		}
		if r.Signed {
			signed++
			switch r.Result {
			case "secure":
				secure++
			case "insecure":
				insecure++
			case "bogus":
				t.Errorf("bogus validation for %s", r.Domain)
			}
		} else if r.Result != "" {
			t.Errorf("unsigned domain %s has result %q", r.Domain, r.Result)
		}
	}
	if signed == 0 || withHTTPS == 0 {
		t.Fatalf("census empty: signed=%d https=%d", signed, withHTTPS)
	}
	if secure+insecure != signed {
		t.Errorf("secure(%d)+insecure(%d) != signed(%d)", secure, insecure, signed)
	}
}

package core

import "repro/internal/scanner"

// runOrdered executes n indexed jobs on a bounded worker pool and commits
// each result in strict index order — the shared slot-committer shape
// behind both the day pipeline (RunDaily) and the hour pipeline
// (RunHourlyECH). run must be safe to call concurrently for distinct
// indices; commit is always called from a single goroutine, in order, as
// results become available, so committed state (the Store, progress
// output) never observes out-of-order writes. With workers <= 1 the jobs
// run strictly serially on the calling goroutine — run(0), commit(0),
// run(1), ... — which pipelined callers rely on for byte-identical
// serial baselines.
func runOrdered[T any](n, workers int, run func(i int) T, commit func(i int, res T)) {
	if n <= 0 {
		return
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			commit(i, run(i))
		}
		return
	}
	type slot struct {
		res   T
		ready chan struct{}
	}
	slots := make([]slot, n)
	for i := range slots {
		slots[i].ready = make(chan struct{})
	}
	// The committer drains slots in index order as they fill.
	committed := make(chan struct{})
	go func() {
		defer close(committed)
		for i := range slots {
			<-slots[i].ready
			commit(i, slots[i].res)
		}
	}()
	scanner.ForEach(n, workers, func(i int) {
		slots[i].res = run(i)
		close(slots[i].ready)
	})
	<-committed
}

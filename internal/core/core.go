// Package core orchestrates end-to-end reproduction campaigns: it builds a
// simulated world, runs the paper's measurement schedules (daily snapshot
// scans, name-server scans, hourly ECH scans, connectivity probes, the
// DNSSEC validation census), and hands the collected dataset to the
// analysis package.
//
// The daily schedule is pipelined: each scan day runs inside its own scan
// context — a per-day virtual clock, a network view over the shared world,
// forked recursors with fresh caches, a forked scanner with its own
// query-ID stream, and (when configured) a per-day DoH fleet — so up to
// CampaignConfig.DayWorkers days resolve concurrently while snapshots
// commit to the Store in strict day order. Because record TTLs are far
// below a day and all authoritative content is a pure function of (domain
// state, virtual time), a per-day context produces byte-identical results
// to the old serial walk.
package core

import (
	"fmt"
	"io"
	"net/netip"
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/internal/dnssec"
	"repro/internal/dnswire"
	"repro/internal/doh"
	"repro/internal/providers"
	"repro/internal/scanner"
	"repro/internal/simnet"
)

// CampaignConfig controls a measurement campaign.
type CampaignConfig struct {
	// Size is the Tranco list size of the generated world.
	Size int
	// Seed drives world generation.
	Seed int64
	// Start and End bound the daily-scan period; zero values mean the
	// paper's full study period.
	Start, End time.Time
	// StepDays samples every Nth day (1 = daily like the paper; larger
	// steps trade trend resolution for speed).
	StepDays int
	// DayWorkers bounds how many scan days run concurrently (each in its
	// own scan context); 0 or 1 runs days one at a time. Results are
	// identical for any value — snapshots always commit in day order.
	DayWorkers int
	// DoHFrontends, when positive, interposes the encrypted-DNS serving
	// layer: that many DoH frontends are registered over the public
	// recursors (alternating Google/Cloudflare), all sharing one sharded
	// answer cache, and the scanner queries through a load-balanced
	// upstream pool instead of bare stub queries.
	DoHFrontends int
	// DoHStrategy selects the pool's load-balancing strategy (the zero
	// value is power-of-two-choices).
	DoHStrategy doh.Strategy
	// DoHShards and DoHShardCap set the shared answer cache geometry;
	// zero values select the doh package defaults.
	DoHShards   int
	DoHShardCap int
	// DoHStaleWindow enables RFC 8767 serve-stale on the fleet's answer
	// caches: answers past TTL but within the window are served (with
	// TTLs capped) when a frontend's recursor fails. Zero disables it.
	DoHStaleWindow time.Duration
	// DoHRefreshAhead arms cache prefetch once a fresh entry has consumed
	// this fraction of its TTL (e.g. 0.8); zero disables prefetch.
	DoHRefreshAhead float64
	// DoHFailureCooldown benches a frontend's recursor after a hard
	// failure, serving stale without re-trying it for the window; zero
	// disables benching.
	DoHFailureCooldown time.Duration
	// Progress, when non-nil, receives one line per scanned day.
	Progress io.Writer
}

// Campaign is a running reproduction: a world, its scanner, and the
// collected data.
type Campaign struct {
	Cfg     CampaignConfig
	World   *providers.World
	Scanner *scanner.Scanner
	Store   *dataset.Store

	// The encrypted-DNS serving layer, populated when Cfg.DoHFrontends
	// is positive. These are the campaign-level fleet objects used by
	// single-day ScanDay calls and RunHourlyECH; pipelined days build
	// per-day replicas at the same addresses (DoHAddrs).
	DoHServers []*doh.Server
	DoHAddrs   []netip.AddrPort
	DoHCache   *doh.Cache
	DoHPool    *doh.Pool
	DoHClient  *doh.Client
}

// Synthetic per-frontend latency band: deterministic per member so the
// EWMA/P2 routing decisions are replayable for a seed (wall-clock timing of
// in-process calls is pure noise), charged to the virtual clock so the
// serving layer's queueing delay is observable in campaign timings.
const (
	dohLatencyBase   = 2 * time.Millisecond
	dohLatencySpread = 18 * time.Millisecond
)

// NewCampaign builds the world and wires the scanner.
func NewCampaign(cfg CampaignConfig) (*Campaign, error) {
	if cfg.Size == 0 {
		cfg.Size = 20_000
	}
	if cfg.StepDays == 0 {
		cfg.StepDays = 1
	}
	if cfg.Start.IsZero() {
		cfg.Start = providers.StudyStart
	}
	if cfg.End.IsZero() {
		cfg.End = providers.StudyEnd
	}
	w, err := providers.BuildWorld(providers.WorldConfig{Size: cfg.Size, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("building world: %w", err)
	}
	sc := scanner.New(w.Net, w.GoogleAddr, w.CFResolverAddr, w.Whois)
	c := &Campaign{Cfg: cfg, World: w, Scanner: sc, Store: dataset.NewStore()}
	if cfg.DoHFrontends > 0 {
		c.buildDoHFleet(cfg.DoHFrontends, cfg.DoHStrategy)
	}
	return c, nil
}

// dohCacheConfig assembles the answer-cache lifecycle configuration from
// the campaign knobs (shared by the campaign fleet and per-day replicas).
func (c *Campaign) dohCacheConfig() doh.CacheConfig {
	return doh.CacheConfig{
		Shards:        c.Cfg.DoHShards,
		ShardCapacity: c.Cfg.DoHShardCap,
		StaleWindow:   c.Cfg.DoHStaleWindow,
		RefreshAhead:  c.Cfg.DoHRefreshAhead,
	}
}

// buildDoHFleet stands up n DoH frontends over the two public recursors
// with a shared answer cache and routes the scanner through the pool.
func (c *Campaign) buildDoHFleet(n int, strategy doh.Strategy) {
	w := c.World
	c.DoHCache = doh.NewCacheWith(w.Clock, c.dohCacheConfig())
	c.DoHPool = doh.NewPool(w.Clock, strategy, c.Cfg.Seed)
	for i := 0; i < n; i++ {
		recursor, org := w.GoogleResolver, "google"
		if i%2 == 1 {
			recursor, org = w.CFResolver, "cloudflare"
		}
		name := fmt.Sprintf("doh-%s-%d", org, i)
		srv := &doh.Server{Name: name, Handler: recursor, Cache: c.DoHCache,
			FailureCooldown: c.Cfg.DoHFailureCooldown}
		ap := netip.AddrPortFrom(w.Alloc.AllocV4("DoHFrontend"), 443)
		srv.Register(w.Net, ap)
		c.DoHPool.Add(name, ap)
		c.DoHServers = append(c.DoHServers, srv)
		c.DoHAddrs = append(c.DoHAddrs, ap)
	}
	c.DoHClient = doh.NewClient(w.Net, c.DoHPool)
	c.DoHClient.Latency = doh.SyntheticLatency(dohLatencyBase, dohLatencySpread)
	c.Scanner.Transport = c.DoHClient
}

// connectivityProbeStart is when the §4.3.5 TLS probing experiment began.
var connectivityProbeStart = time.Date(2024, 1, 24, 0, 0, 0, 0, time.UTC)

// dayContext is one scan day's isolated execution state: a scanner over a
// per-day network view (own clock, own recursors, optionally an own DoH
// fleet) and a prober pinned to the day's clock.
type dayContext struct {
	scanner *scanner.Scanner
	prober  scanner.Prober
}

// dayProber evaluates the world's TLS reachability schedule at the day
// context's clock rather than the shared world clock.
type dayProber struct {
	w     *providers.World
	clock *simnet.Clock
}

func (p dayProber) ProbeTLS(apex string, addr netip.Addr) error {
	return p.w.ProbeTLSAt(apex, addr, p.clock.Now())
}

// newDayContext builds an isolated scan context for one day: a fresh clock
// at the day's scan time, a network view carrying it, forked recursors with
// empty caches registered at the public resolver addresses, and — when the
// campaign runs an encrypted serving layer — a per-day DoH fleet replica
// (fresh sharded cache, fresh pool state seeded per day) at the same
// frontend addresses.
func (c *Campaign) newDayContext(day time.Time) *dayContext {
	clock := simnet.NewClock(day.Add(12 * time.Hour))
	net := c.World.Net.WithClock(clock)
	g := c.World.GoogleResolver.Fork(net)
	cf := c.World.CFResolver.Fork(net)
	net.OverrideDNS(c.World.GoogleAddr, g)
	net.OverrideDNS(c.World.CFResolverAddr, cf)

	var transport scanner.Transport
	if len(c.DoHAddrs) > 0 {
		cache := doh.NewCacheWith(clock, c.dohCacheConfig())
		pool := doh.NewPool(clock, c.Cfg.DoHStrategy, c.Cfg.Seed^day.Unix())
		for i, ap := range c.DoHAddrs {
			recursor := simnet.DNSHandler(g)
			if i%2 == 1 {
				recursor = cf
			}
			srv := &doh.Server{Name: c.DoHServers[i].Name, Handler: recursor, Cache: cache,
				FailureCooldown: c.Cfg.DoHFailureCooldown}
			net.OverrideService(ap, srv)
			pool.Add(srv.Name, ap)
		}
		client := doh.NewClient(net, pool)
		client.Latency = doh.SyntheticLatency(dohLatencyBase, dohLatencySpread)
		transport = client
	}
	return &dayContext{
		scanner: c.Scanner.Fork(net, transport),
		prober:  dayProber{w: c.World, clock: clock},
	}
}

// dayResult is one day's collected data, buffered until its in-order
// commit.
type dayResult struct {
	day      time.Time
	list     []string
	apexSnap *dataset.Snapshot
	wwwSnap  *dataset.Snapshot
	nsSnap   *dataset.NSSnapshot
	probes   []dataset.ProbeResult
}

// runDay performs one day's full scan sequence inside the given context.
func (c *Campaign) runDay(dc *dayContext, day time.Time) *dayResult {
	list := c.World.Tranco.ListFor(day)
	res := &dayResult{day: day, list: list}
	res.apexSnap = dc.scanner.ScanList(day, "apex", list)
	res.wwwSnap = dc.scanner.ScanList(day, "www", list)
	if !day.Before(providers.NSScanStart) {
		res.nsSnap = dc.scanner.ScanNameServers(day, res.apexSnap, res.wwwSnap)
	}
	if !day.Before(connectivityProbeStart) {
		res.probes = dc.scanner.ProbeMismatches(day, res.apexSnap, dc.prober)
	}
	return res
}

// commitDay writes one day's results to the store and emits progress.
func (c *Campaign) commitDay(res *dayResult) {
	c.Store.AddTrancoList(res.day, res.list)
	c.Store.AddSnapshot(res.apexSnap)
	c.Store.AddSnapshot(res.wwwSnap)
	if res.nsSnap != nil {
		c.Store.AddNSSnapshot(res.nsSnap)
	}
	if len(res.probes) > 0 {
		c.Store.AddProbes(res.probes...)
	}
	if c.Cfg.Progress != nil {
		fmt.Fprintf(c.Cfg.Progress, "%s scanned: apex adopters %d/%d, www adopters %d/%d\n",
			res.day.Format("2006-01-02"), len(res.apexSnap.Obs), res.apexSnap.Total,
			len(res.wwwSnap.Obs), res.wwwSnap.Total)
	}
}

// RunDaily executes the daily scan schedule over the campaign window.
// Days are scanned by a bounded pool of Cfg.DayWorkers workers, each day in
// its own scan context; snapshots commit to the Store in day order, so the
// collected dataset is identical for any worker count.
func (c *Campaign) RunDaily() error {
	var days []time.Time
	for day := c.Cfg.Start; !day.After(c.Cfg.End); day = day.AddDate(0, 0, c.Cfg.StepDays) {
		days = append(days, day)
	}
	if len(days) == 0 {
		return nil
	}
	workers := c.Cfg.DayWorkers
	if workers < 1 {
		workers = 1
	}
	if workers > len(days) {
		workers = len(days)
	}
	if workers == 1 {
		for _, day := range days {
			c.commitDay(c.runDay(c.newDayContext(day), day))
		}
	} else {
		type slot struct {
			res   *dayResult
			ready chan struct{}
		}
		slots := make([]slot, len(days))
		for i := range slots {
			slots[i].ready = make(chan struct{})
		}
		// The committer drains slots in day order as they fill, so
		// progress streams and the store never sees out-of-order writes.
		committed := make(chan struct{})
		go func() {
			defer close(committed)
			for i := range slots {
				<-slots[i].ready
				c.commitDay(slots[i].res)
			}
		}()
		scanner.ForEach(len(days), workers, func(i int) {
			slots[i].res = c.runDay(c.newDayContext(days[i]), days[i])
			close(slots[i].ready)
		})
		<-committed
	}
	// Leave the world clock where the serial walk used to: at the final
	// scan day, so follow-on one-shot experiments see the same time.
	c.World.Clock.Set(days[len(days)-1].Add(12 * time.Hour))
	return nil
}

// ScanDay performs one day's full scan sequence on the shared world clock
// (the campaign-level scanner, recursors, and DoH fleet), for callers
// driving single days by hand.
func (c *Campaign) ScanDay(day time.Time) error {
	// Scans run mid-day so date-boundary schedules behave sharply.
	c.World.Clock.Set(day.Add(12 * time.Hour))
	dc := &dayContext{scanner: c.Scanner, prober: c.World}
	c.commitDay(c.runDay(dc, day))
	return nil
}

// RunHourlyECH reproduces the §4.4.2 experiment: hourly scans of
// ECH-publishing apex domains for the given number of days starting at
// start (the paper used July 21–27, 2023).
func (c *Campaign) RunHourlyECH(start time.Time, days int) {
	// Discover the ECH population once.
	c.World.Clock.Set(start)
	list := c.World.Tranco.ListFor(start)
	snap := c.Scanner.ScanList(start, "apex", list)
	var echDomains []string
	for name, obs := range snap.Obs {
		for _, rec := range obs.HTTPS {
			if rec.HasECH {
				echDomains = append(echDomains, name)
				break
			}
		}
	}
	// snap.Obs is a map; sort so the hourly scan order (and with it the
	// stored observation order) is deterministic for a seed.
	sort.Strings(echDomains)
	for h := 0; h < days*24; h++ {
		now := start.Add(time.Duration(h) * time.Hour)
		c.World.Clock.Set(now)
		// Fresh caches each hour, as the paper's scanner saw records
		// refreshed by the 300s TTL. Both recursors flush: with a DoH
		// fleet the pool spreads queries over frontends backed by either.
		c.World.GoogleResolver.FlushCache()
		c.World.CFResolver.FlushCache()
		if c.DoHCache != nil {
			c.DoHCache.Flush()
		}
		c.Store.AddECH(c.Scanner.ECHScan(now, echDomains)...)
	}
}

// RunValidationCensus reproduces the Table 9 one-shot census (the paper ran
// it on January 2nd, 2024): for every domain in that day's list, determine
// HTTPS presence, signing, Cloudflare NS use, and full-chain validation.
// Domains are censused concurrently on the scanner's worker bound; rows are
// stored in list order.
func (c *Campaign) RunValidationCensus(day time.Time) {
	c.World.Clock.Set(day.Add(12 * time.Hour))
	list := c.World.Tranco.ListFor(day)
	r := c.World.GoogleResolver
	now := c.World.Clock.Now()
	rows := make([]dataset.ValidationResult, len(list))
	scanner.ForEach(len(list), c.Scanner.Concurrency, func(i int) {
		rows[i] = c.censusRow(r, list[i], now)
	})
	c.Store.AddValidation(rows...)
}

// censusRow classifies one domain for the validation census.
func (c *Campaign) censusRow(r dnssec.ChainSource, name string, now time.Time) dataset.ValidationResult {
	apex := dnswire.CanonicalName(name)
	row := dataset.ValidationResult{Domain: apex}

	httpsRRs, _, httpsOK := r.FetchRRset(apex, dnswire.TypeHTTPS)
	row.HasHTTPS = httpsOK && len(httpsRRs) > 0

	_, keySigs, keyOK := r.FetchRRset(apex, dnswire.TypeDNSKEY)
	row.Signed = keyOK && len(keySigs) > 0

	if nsRRs, _, ok := r.FetchRRset(apex, dnswire.TypeNS); ok {
		for _, rr := range nsRRs {
			if ns, ok := rr.Data.(*dnswire.NSData); ok &&
				dnswire.IsSubdomain(ns.Host, c.World.Cloudflare.InfraDomain) {
				row.CFNS = true
			}
		}
	}
	if row.Signed {
		v := dnssec.NewValidator(r, c.World.Anchor, now)
		target := dnswire.TypeDNSKEY
		if row.HasHTTPS {
			target = dnswire.TypeHTTPS
		}
		res, _ := v.Validate(apex, target)
		row.Result = res.String()
	}
	return row
}

// Package core orchestrates end-to-end reproduction campaigns: it builds a
// simulated world, runs the paper's measurement schedules (daily snapshot
// scans, name-server scans, hourly ECH scans, connectivity probes, the
// DNSSEC validation census), and hands the collected dataset to the
// analysis package.
//
// The daily schedule is pipelined: each scan day runs inside its own scan
// context — a per-day virtual clock, a network view over the shared world,
// forked recursors with fresh caches, a forked scanner with its own
// query-ID stream, and (when configured) a per-day encrypted-DNS fleet
// replica — so up to CampaignConfig.DayWorkers days resolve concurrently
// while snapshots commit to the Store in strict day order. Because record
// TTLs are far below a day and all authoritative content is a pure
// function of (domain state, virtual time), a per-day context produces
// byte-identical results to the old serial walk — including with a mixed
// DoH/DoT/DoQ fleet, whose per-day replicas keep their clocks frozen (see
// newScanContext).
//
// The hourly ECH schedule pipelines the same way at hour granularity:
// each hour gets its own scan context (fresh clock, forked recursors —
// the per-hour cache flush — and a per-hour fleet replica), up to
// CampaignConfig.HourWorkers hours run concurrently, and observations
// commit in strict hour order through the same runOrdered committer the
// day pipeline uses. Hourly telemetry is built from per-hour stable
// snapshots merged per day (obs.MergeSnapshots), so the hourly-ech
// series are byte-identical at any worker count.
package core

import (
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/dnssec"
	"repro/internal/dnswire"
	"repro/internal/obs"
	"repro/internal/providers"
	"repro/internal/scanner"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/workload"
)

// CampaignConfig controls a measurement campaign.
type CampaignConfig struct {
	// Size is the Tranco list size of the generated world.
	Size int
	// Seed drives world generation.
	Seed int64
	// Start and End bound the daily-scan period; zero values mean the
	// paper's full study period.
	Start, End time.Time
	// StepDays samples every Nth day (1 = daily like the paper; larger
	// steps trade trend resolution for speed).
	StepDays int
	// DayWorkers bounds how many scan days run concurrently (each in its
	// own scan context); 0 or 1 runs days one at a time. Results are
	// identical for any value — snapshots always commit in day order.
	DayWorkers int
	// HourWorkers bounds how many hourly-ECH scan hours run concurrently
	// (each in its own scan context); 0 or 1 runs hours one at a time.
	// Results are identical for any value — observations always commit
	// in hour order.
	HourWorkers int
	// DoHFrontends, when positive, interposes the encrypted-DNS serving
	// layer: that many frontends are registered over the public recursors
	// (alternating Google/Cloudflare), all sharing one sharded answer
	// cache, and the scanner queries through a load-balanced upstream
	// pool instead of bare stub queries. The name predates the transport
	// subsystem; with a TransportMix the frontends split across DoH, DoT,
	// and DoQ envelopes.
	DoHFrontends int
	// TransportMix sets the per-campaign protocol mix across the
	// frontends (e.g. transport.Mix{DoH: 6, DoT: 3, DoQ: 1} for
	// 60%/30%/10%). The zero value keeps the all-DoH fleet of PR 1–3.
	// Frontend i's protocol is a pure function of (mix, i), so per-day
	// fleet replicas recompute the identical assignment.
	TransportMix transport.Mix
	// DoHBalance selects the pool's load-balancing policy (the zero
	// value is power-of-two-choices).
	DoHBalance transport.Balance
	// TransportStrategy selects the stub client's resolution strategy:
	// serial failover (the zero value — today's behavior), happy-eyeballs
	// protocol racing, or hedged queries. Strategies change which
	// frontend answers and how many attempts fire, never the answers
	// themselves, so campaign stores stay byte-identical across worker
	// counts under every strategy (per-day replicas keep their clocks
	// frozen; see newDayContext).
	TransportStrategy transport.StrategyKind
	// RaceStagger overrides the Race strategy's happy-eyeballs head
	// start; zero selects transport.DefaultRaceStagger.
	RaceStagger time.Duration
	// HedgeQuantile overrides the Hedge strategy's arming quantile;
	// zero selects transport.DefaultHedgeQuantile.
	HedgeQuantile float64
	// DoHShards and DoHShardCap set the shared answer cache geometry;
	// zero values select the doh package defaults.
	DoHShards   int
	DoHShardCap int
	// DoHStaleWindow enables RFC 8767 serve-stale on the fleet's answer
	// caches: answers past TTL but within the window are served (with
	// TTLs capped) when a frontend's recursor fails. Zero disables it.
	DoHStaleWindow time.Duration
	// DoHRefreshAhead arms cache prefetch once a fresh entry has consumed
	// this fraction of its TTL (e.g. 0.8); zero disables prefetch.
	DoHRefreshAhead float64
	// DoHFailureCooldown benches a frontend's recursor after a hard
	// failure, serving stale without re-trying it for the window; zero
	// disables benching.
	DoHFailureCooldown time.Duration
	// Workload, when non-nil, runs the simulated-client workload engine
	// against each scan day's fleet after the day's measurement stages:
	// Workload.Clients stubs draw Zipf-popular domains from that day's
	// Tranco list (unless Workload.Domains overrides it) and resolve
	// through the day's fleet replica on the day clock. The engine is a
	// pure function of (seed, clock, config), so workload-enabled
	// pipelined campaigns stay byte-identical at any DayWorkers count.
	// Requires DoHFrontends > 0. Per day, a dataset.WorkloadSnapshot and
	// a "workload" telemetry series are committed alongside the scan
	// data.
	Workload *workload.Config
	// AnomalyCapture enables the campaign's anomaly tier on the daily
	// pipeline: each per-day fleet replica carries a flight recorder
	// (obs.Recorder) and a tail-sampling tracer, and every scan day whose
	// anomaly trigger holds — any stable event fired, or an SLO objective
	// was violated — commits a dataset.AnomalyCapture bundle: the stable
	// SLO verdict, the recorder's exact stable event counts, and the tail
	// ring's stable trace projections. Captures are built exclusively
	// from schedule-independent inputs, so pipelined campaigns stay
	// byte-identical with the tier on. Requires DoHFrontends > 0; ScanDay
	// (the live-clock entry point) does not capture.
	AnomalyCapture bool
	// RecorderCapacity bounds each replica's flight-recorder event ring;
	// zero selects obs.DefaultRecorderCapacity. Overflow never perturbs
	// captures (stable counts are eviction-immune) — it only truncates
	// the live event window.
	RecorderCapacity int
	// TailTopK bounds each replica tracer's tail ring; zero selects
	// obs.DefaultTailTopK.
	TailTopK int
	// TailLatency additionally tail-retains any exchange whose virtual
	// cost reaches the threshold; zero keeps flagged anomalies only.
	TailLatency time.Duration
	// SLO sets the objectives scan days are judged against when
	// AnomalyCapture is on; the zero value selects obs.DefaultSLO().
	SLO obs.SLO
	// TelemetryInterval enables campaign telemetry series when positive
	// and a fleet is configured: each scan day's fleet registry is
	// sampled into a dataset.TelemetrySeries (stable metrics only, so
	// pipelined runs stay byte-identical), and RunHourlyECH folds each
	// hour's replica snapshot into a per-day hourly-ech series. Zero
	// disables series collection; Fleet.Metrics is populated either way.
	TelemetryInterval time.Duration
	// Progress, when non-nil, receives one line per scanned day.
	Progress io.Writer
}

// Campaign is a running reproduction: a world, its scanner, and the
// collected data.
type Campaign struct {
	Cfg     CampaignConfig
	World   *providers.World
	Scanner *scanner.Scanner
	Store   *dataset.Store

	// Fleet is the encrypted-DNS serving layer, populated when
	// Cfg.DoHFrontends is positive: the campaign-level fleet used by
	// single-day ScanDay calls and RunHourlyECH. Pipelined days build
	// per-day replicas at the same addresses (Fleet.Addrs) with the same
	// protocol assignment.
	Fleet *transport.Fleet
}

// Synthetic per-frontend latency band: deterministic per member so the
// EWMA/P2 routing decisions are replayable for a seed (wall-clock timing of
// in-process calls is pure noise), charged to the virtual clock so the
// serving layer's queueing delay is observable in campaign timings.
const (
	dohLatencyBase   = 2 * time.Millisecond
	dohLatencySpread = 18 * time.Millisecond
)

// NewCampaign builds the world and wires the scanner.
func NewCampaign(cfg CampaignConfig) (*Campaign, error) {
	if cfg.Size == 0 {
		cfg.Size = 20_000
	}
	if cfg.StepDays == 0 {
		cfg.StepDays = 1
	}
	if cfg.Start.IsZero() {
		cfg.Start = providers.StudyStart
	}
	if cfg.End.IsZero() {
		cfg.End = providers.StudyEnd
	}
	w, err := providers.BuildWorld(providers.WorldConfig{Size: cfg.Size, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("building world: %w", err)
	}
	sc := scanner.New(w.Net, w.GoogleAddr, w.CFResolverAddr, w.Whois)
	if cfg.Workload != nil && cfg.DoHFrontends <= 0 {
		return nil, fmt.Errorf("core: Workload requires DoHFrontends > 0 (the population needs a fleet to resolve through)")
	}
	c := &Campaign{Cfg: cfg, World: w, Scanner: sc, Store: dataset.NewStore()}
	if cfg.DoHFrontends > 0 {
		c.buildFleet(cfg.DoHFrontends, cfg.TransportMix)
	}
	return c, nil
}

// cacheConfig assembles the answer-cache lifecycle configuration from
// the campaign knobs (shared by the campaign fleet and per-day replicas).
func (c *Campaign) cacheConfig() transport.CacheConfig {
	return transport.CacheConfig{
		Shards:        c.Cfg.DoHShards,
		ShardCapacity: c.Cfg.DoHShardCap,
		StaleWindow:   c.Cfg.DoHStaleWindow,
		RefreshAhead:  c.Cfg.DoHRefreshAhead,
	}
}

// strategyConfig assembles the resolution-strategy selection from the
// campaign knobs (shared by the campaign fleet and per-day replicas, so
// both resolve with the identical policy).
func (c *Campaign) strategyConfig() transport.StrategyConfig {
	return transport.StrategyConfig{
		Kind:          c.Cfg.TransportStrategy,
		RaceStagger:   c.Cfg.RaceStagger,
		HedgeQuantile: c.Cfg.HedgeQuantile,
	}
}

// frontendRecursor returns frontend i's wrapped recursor and its org
// label — the fleet alternates Google/Cloudflare by index, like the
// paper's primary/backup split.
func frontendRecursor(g, cf simnet.DNSHandler, i int) (simnet.DNSHandler, string) {
	if i%2 == 1 {
		return cf, "cloudflare"
	}
	return g, "google"
}

// buildFleet stands up n encrypted-DNS frontends — protocols dealt by the
// campaign mix — over the two public recursors with a shared answer cache
// and routes the scanner through the pool. The campaign-level client
// charges its synthetic latency to the world clock, so serving-layer
// queueing delay is observable in single-day and hourly experiments.
func (c *Campaign) buildFleet(n int, mix transport.Mix) {
	w := c.World
	fl := transport.NewFleet(w.Net, w.Clock, transport.FleetConfig{
		Balance: c.Cfg.DoHBalance, Seed: c.Cfg.Seed,
		Strategy:        c.strategyConfig(),
		Cache:           c.cacheConfig(),
		FailureCooldown: c.Cfg.DoHFailureCooldown,
		Latency:         transport.SyntheticLatency(dohLatencyBase, dohLatencySpread),
		ChargeLatency:   true,
	})
	protos := mix.Assign(n)
	for i := 0; i < n; i++ {
		recursor, org := frontendRecursor(w.GoogleResolver, w.CFResolver, i)
		name := fmt.Sprintf("%s-%s-%d", protos[i], org, i)
		ap := netip.AddrPortFrom(w.Alloc.AllocV4("DoHFrontend"), protos[i].Port())
		fl.Add(protos[i], name, recursor, ap)
	}
	c.Fleet = fl
	c.Scanner.Transport = fl.Client
}

// connectivityProbeStart is when the §4.3.5 TLS probing experiment began.
var connectivityProbeStart = time.Date(2024, 1, 24, 0, 0, 0, 0, time.UTC)

// scanContext is one pipeline unit's isolated execution state — a scan
// day's or a scan hour's: a scanner over a private network view (own
// clock, own recursors, optionally an own transport fleet replica) and a
// prober pinned to the context's clock.
type scanContext struct {
	scanner *scanner.Scanner
	prober  scanner.Prober
	// clock is the context's virtual clock (the world clock for ScanDay's
	// shared context) — the clock the workload engine advances.
	clock *simnet.Clock
	// fleet is the serving layer the day's queries ride (a per-day
	// replica, or the campaign fleet for ScanDay); servingBase holds its
	// counters at context creation so the day records deltas, and
	// staleBase/negativeBase do the same for the stub-side counters.
	fleet        *transport.Fleet
	servingBase  transport.FrontendStats
	staleBase    uint64
	negativeBase uint64
	// sampler collects the day's telemetry series (stable metrics only)
	// when Cfg.TelemetryInterval is set; nil-safe when disabled. Context
	// clocks are frozen, so runDay forces a sample at each stage boundary
	// instead of relying on interval polling. Hour contexts skip the
	// sampler: RunHourlyECH snapshots each hour's registry directly.
	sampler *obs.Sampler
}

// dayProber evaluates the world's TLS reachability schedule at the day
// context's clock rather than the shared world clock.
type dayProber struct {
	w     *providers.World
	clock *simnet.Clock
}

func (p dayProber) ProbeTLS(apex string, addr netip.Addr) error {
	return p.w.ProbeTLSAt(apex, addr, p.clock.Now())
}

// newScanContext builds an isolated scan context pinned at the given
// time: a fresh clock, a network view carrying it, forked recursors with
// empty caches registered at the public resolver addresses, and — when
// the campaign runs an encrypted serving layer — a fleet replica (fresh
// sharded cache, fresh pool state seeded per context, identical protocol
// assignment) at the same frontend addresses. seed differentiates the
// replica's pool/routing randomness per context; withSampler attaches a
// telemetry sampler (day contexts only — hour contexts snapshot their
// registry directly).
//
// Replica clients keep the synthetic latency for pool routing but do NOT
// charge it to the context's clock: concurrent scan workers would
// interleave their clock charges nondeterministically, and a drifting
// clock can move time-sensitive answers (ECH configs rotate on a
// 76-minute period) — freezing the context's clock is what makes a
// mixed-protocol pipelined campaign byte-identical to the serial run.
func (c *Campaign) newScanContext(at time.Time, seed int64, withSampler bool) *scanContext {
	clock := simnet.NewClock(at)
	net := c.World.Net.WithClock(clock)
	g := c.World.GoogleResolver.Fork(net)
	cf := c.World.CFResolver.Fork(net)
	net.OverrideDNS(c.World.GoogleAddr, g)
	net.OverrideDNS(c.World.CFResolverAddr, cf)

	dc := &scanContext{prober: dayProber{w: c.World, clock: clock}, clock: clock}
	var t scanner.Transport
	if c.Fleet != nil {
		// The anomaly tier rides each replica: the tail tracer keeps
		// default-rate head sampling (the baseline ring is in-memory only —
		// nothing schedule-dependent is stored from it) and adds the
		// flagged-anomaly tail ring; the recorder collects typed events the
		// capture bundle counts.
		var tracer *obs.Tracer
		var recorder *obs.Recorder
		if c.Cfg.AnomalyCapture {
			tracer = obs.NewTracer(clock, obs.TraceConfig{
				Tail: &obs.TailConfig{Latency: c.Cfg.TailLatency, TopK: c.Cfg.TailTopK},
			})
			recorder = obs.NewRecorder(clock, c.Cfg.RecorderCapacity)
		}
		fl := transport.NewFleet(net, clock, transport.FleetConfig{
			Balance: c.Cfg.DoHBalance, Seed: seed,
			Strategy:        c.strategyConfig(),
			Cache:           c.cacheConfig(),
			FailureCooldown: c.Cfg.DoHFailureCooldown,
			Latency:         transport.SyntheticLatency(dohLatencyBase, dohLatencySpread),
			Override:        true,
			Tracer:          tracer,
			Recorder:        recorder,
		})
		protos := c.Cfg.TransportMix.Assign(len(c.Fleet.Addrs))
		for i, ap := range c.Fleet.Addrs {
			recursor, _ := frontendRecursor(g, cf, i)
			fl.Add(protos[i], c.Fleet.Frontends[i].Name, recursor, ap)
		}
		dc.fleet = fl
		t = fl.Client
		if withSampler && c.Cfg.TelemetryInterval > 0 {
			dc.sampler = obs.NewSampler(fl.Metrics, clock, c.Cfg.TelemetryInterval, true)
		}
	}
	dc.scanner = c.Scanner.Fork(net, t)
	return dc
}

// newDayContext builds the scan context for one day, clocked at the
// day's mid-day scan time.
func (c *Campaign) newDayContext(day time.Time) *scanContext {
	return c.newScanContext(day.Add(12*time.Hour), c.Cfg.Seed^day.Unix(), true)
}

// newHourContext builds the scan context for one hourly-ECH scan,
// clocked at the hour itself. The forked recursors start with empty
// caches — the per-hour flush the serial loop used to do on the shared
// resolvers — and the fleet replica starts with a cold answer cache.
func (c *Campaign) newHourContext(now time.Time) *scanContext {
	return c.newScanContext(now, c.Cfg.Seed^now.Unix(), false)
}

// servingSnapshot derives the day's serving-layer record (as a delta
// against the context's base, so ScanDay's reuse of the cumulative
// campaign fleet records per-day numbers too). The staleness and
// negative counters come from the stub client — one count per exchange
// winner — rather than the frontends: a racing or hedging strategy
// touches a schedule-dependent number of frontends per exchange, and
// per-attempt counters would break the serial/pipelined store equality
// the campaign guarantees. Prefetches stay frontend-side (armed at most
// once per cache-entry generation, so attempt count cannot inflate
// them), as do upstream failures (zero in a healthy world; chaos drills
// do not byte-compare stores).
func (c *Campaign) servingSnapshot(dc *scanContext, day time.Time) *dataset.ServingSnapshot {
	if dc.fleet == nil {
		return nil
	}
	now := dc.fleet.TotalStats()
	return &dataset.ServingSnapshot{
		Date:             day,
		StaleWindowSec:   int64(dc.fleet.Cache.Config().StaleWindow / time.Second),
		StaleServed:      dc.fleet.Client.StaleAnswers() - dc.staleBase,
		NegativeHits:     dc.fleet.Client.NegativeAnswers() - dc.negativeBase,
		Prefetches:       now.Prefetches - dc.servingBase.Prefetches,
		UpstreamFailures: now.UpstreamFailures - dc.servingBase.UpstreamFailures,
	}
}

// dayResult is one day's collected data, buffered until its in-order
// commit.
type dayResult struct {
	day            time.Time
	list           []string
	apexSnap       *dataset.Snapshot
	wwwSnap        *dataset.Snapshot
	nsSnap         *dataset.NSSnapshot
	serving        *dataset.ServingSnapshot
	workload       *dataset.WorkloadSnapshot
	workloadSeries *dataset.TelemetrySeries
	telemetry      *dataset.TelemetrySeries
	anomaly        *dataset.AnomalyCapture
	probes         []dataset.ProbeResult
}

// slo resolves the campaign's objective set (the zero config selects
// the obs defaults).
func (c *Campaign) slo() obs.SLO {
	if c.Cfg.SLO.Enabled() {
		return c.Cfg.SLO
	}
	return obs.DefaultSLO()
}

// stableTailFlags are the winner-side trace flags a stored anomaly
// projection may carry. Dial-shape flags (failover, race, hedge) depend
// on how scanner workers interleaved their pool updates, so they are
// masked out of the store — they remain visible on the in-memory ring.
const stableTailFlags = obs.FlagError | obs.FlagServFail | obs.FlagStale

// stableTailTraces projects the tail ring onto its stored form:
// winner-side flags only, deduplicated and sorted by (name, flags).
// Exact whenever the ring held every stable-flagged exchange; once the
// top-K bound evicts (cost-ranked, and virtual cost is
// schedule-dependent), the projection is a best-effort sample — which
// is why chaos drills, not byte-identity proofs, are where overflow
// occurs.
func stableTailTraces(t *obs.Tracer) []dataset.AnomalyTrace {
	seen := map[string]bool{}
	var out []dataset.AnomalyTrace
	for _, tr := range t.Tail() {
		fl := tr.Flags & stableTailFlags
		if fl == 0 {
			continue
		}
		key := tr.Name + "|" + fl.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, dataset.AnomalyTrace{Name: tr.Name, Flags: fl.Strings()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return strings.Join(out[i].Flags, ",") < strings.Join(out[j].Flags, ",")
	})
	return out
}

// anomalyCapture assembles the day's capture bundle when the anomaly
// trigger holds: any stable flight-recorder event fired, or an SLO
// objective was violated. The SLO verdict reads the replica's stable
// snapshot — no latency histogram there, so the p99 objective goes
// unevaluated (see obs.SLOStatsFrom) and Violations counts only the
// availability and staleness objectives; event counts come from the
// recorder's eviction-immune stable multiset.
func (c *Campaign) anomalyCapture(dc *scanContext, day time.Time) *dataset.AnomalyCapture {
	if dc.fleet == nil || dc.fleet.Recorder == nil {
		return nil
	}
	stats := obs.SLOStatsFrom(dc.fleet.Metrics.StableSnapshot())
	rep := c.slo().Eval(stats)
	events := dc.fleet.Recorder.StableCounts()
	traces := stableTailTraces(dc.fleet.Client.Tracer)
	if rep.Violations == 0 && len(events) == 0 && len(traces) == 0 {
		return nil
	}
	capt := &dataset.AnomalyCapture{
		Date:         day,
		Exchanges:    stats.Exchanges,
		Errors:       stats.Errors,
		ServFails:    stats.ServFails,
		StaleServed:  stats.Stale,
		Availability: rep.Availability,
		StaleRatio:   rep.StaleRatio,
		Violations:   rep.Violations,
		Traces:       traces,
	}
	for _, ec := range events {
		capt.Events = append(capt.Events, dataset.AnomalyEvent{Key: ec.Key(), Count: ec.Count})
	}
	return capt
}

// runDay performs one day's full scan sequence inside the given context.
// With telemetry enabled, a stable-metrics sample is forced at each stage
// boundary — per-day clocks are frozen, so interval ticks could never
// fire; stage boundaries are the natural deterministic sample points and
// work identically for ScanDay's live world clock.
func (c *Campaign) runDay(dc *scanContext, day time.Time) *dayResult {
	list := c.World.Tranco.ListFor(day)
	res := &dayResult{day: day, list: list}
	res.apexSnap = dc.scanner.ScanList(day, "apex", list)
	dc.sampler.Force("apex")
	res.wwwSnap = dc.scanner.ScanList(day, "www", list)
	dc.sampler.Force("www")
	if !day.Before(providers.NSScanStart) {
		res.nsSnap = dc.scanner.ScanNameServers(day, res.apexSnap, res.wwwSnap)
		dc.sampler.Force("ns")
	}
	if !day.Before(connectivityProbeStart) {
		res.probes = dc.scanner.ProbeMismatches(day, res.apexSnap, dc.prober)
		dc.sampler.Force("probes")
	}
	res.serving = c.servingSnapshot(dc, day)
	if c.Cfg.Workload != nil && dc.fleet != nil {
		res.workload, res.workloadSeries = c.runWorkload(dc, day, list)
		dc.sampler.Force("workload")
	}
	res.telemetry = telemetrySeries("daily", day, c.Cfg.TelemetryInterval, dc.sampler.Points())
	// The capture comes last so it sees the workload stage's events too.
	res.anomaly = c.anomalyCapture(dc, day)
	return res
}

// runWorkload drives the configured simulated-client population against
// the day's fleet on the day context's clock. It runs after the scan
// stages (and after the day's serving snapshot is taken, so scan-drill
// serving numbers stay comparable across campaigns with and without a
// workload): advancing a day replica's frozen clock is safe once no
// more scans will read it, and the engine advances it deterministically
// — the same Set sequence every run — so byte-identity across worker
// counts is preserved. The engine seed folds the campaign seed with the
// day, like the per-day fleet seeds, so each day's population draws a
// fresh deterministic stream.
func (c *Campaign) runWorkload(dc *scanContext, day time.Time, list []string) (*dataset.WorkloadSnapshot, *dataset.TelemetrySeries) {
	wcfg := *c.Cfg.Workload
	if len(wcfg.Domains) == 0 {
		wcfg.Domains = list
	}
	// Crowd markers land in the day's flight recorder (nil when the
	// anomaly tier is off — the engine's emission is nil-safe).
	wcfg.Recorder = dc.fleet.Recorder
	if wcfg.Seed == 0 {
		wcfg.Seed = c.Cfg.Seed ^ day.Unix() ^ 0x776f726b6c6f6164 // "workload"
	}
	if wcfg.Interval == 0 {
		wcfg.Interval = c.Cfg.TelemetryInterval
	}
	eng, err := workload.New(wcfg, dc.clock, dc.fleet.Client)
	if err != nil {
		// Config errors are campaign-config mistakes; surface loudly
		// rather than silently skipping the stage.
		panic(fmt.Sprintf("core: workload config: %v", err))
	}
	sum := eng.Run()
	snap := &dataset.WorkloadSnapshot{
		Date:           day,
		Clients:        sum.Clients,
		Model:          sum.Model.String(),
		Queries:        sum.Queries,
		StubHits:       sum.StubHits,
		FleetExchanges: sum.FleetExchanges,
		StaleServed:    sum.StaleServed,
		Errors:         sum.Errors,
		VirtualSec:     int64(sum.Virtual / time.Second),
		Digest:         fmt.Sprintf("%016x", sum.Digest),
	}
	return snap, telemetrySeries("workload", day, wcfg.Interval, eng.Points())
}

// telemetrySeries flattens sampler points into the dataset's series form;
// nil when no points were collected.
func telemetrySeries(scope string, day time.Time, interval time.Duration, points []obs.Point) *dataset.TelemetrySeries {
	if len(points) == 0 {
		return nil
	}
	series := &dataset.TelemetrySeries{
		Scope: scope, Date: day,
		IntervalSec: int64(interval / time.Second),
		Points:      make([]dataset.TelemetryPoint, 0, len(points)),
	}
	for _, p := range points {
		tp := dataset.TelemetryPoint{Label: p.Label, AtSec: p.At.Unix()}
		for _, m := range p.Snap.Metrics {
			if m.Kind == obs.KindHistogram.String() {
				tp.Values = append(tp.Values,
					dataset.TelemetryValue{Key: m.Key() + "_count", Value: float64(m.Count)},
					dataset.TelemetryValue{Key: m.Key() + "_sum", Value: m.Sum})
				continue
			}
			tp.Values = append(tp.Values, dataset.TelemetryValue{Key: m.Key(), Value: m.Value})
		}
		series.Points = append(series.Points, tp)
	}
	return series
}

// commitDay writes one day's results to the store and emits progress.
func (c *Campaign) commitDay(res *dayResult) {
	c.Store.AddTrancoList(res.day, res.list)
	c.Store.AddSnapshot(res.apexSnap)
	c.Store.AddSnapshot(res.wwwSnap)
	if res.nsSnap != nil {
		c.Store.AddNSSnapshot(res.nsSnap)
	}
	if res.serving != nil {
		c.Store.AddServing(res.serving)
	}
	if res.workload != nil {
		c.Store.AddWorkload(res.workload)
	}
	if res.workloadSeries != nil {
		c.Store.AddTelemetry(res.workloadSeries)
	}
	if res.telemetry != nil {
		c.Store.AddTelemetry(res.telemetry)
	}
	if res.anomaly != nil {
		c.Store.AddAnomaly(res.anomaly)
	}
	if len(res.probes) > 0 {
		c.Store.AddProbes(res.probes...)
	}
	if c.Cfg.Progress != nil {
		fmt.Fprintf(c.Cfg.Progress, "%s scanned: apex adopters %d/%d, www adopters %d/%d\n",
			res.day.Format("2006-01-02"), len(res.apexSnap.Obs), res.apexSnap.Total,
			len(res.wwwSnap.Obs), res.wwwSnap.Total)
	}
}

// RunDaily executes the daily scan schedule over the campaign window.
// Days are scanned by a bounded pool of Cfg.DayWorkers workers, each day in
// its own scan context; snapshots commit to the Store in day order, so the
// collected dataset is identical for any worker count.
func (c *Campaign) RunDaily() error {
	var days []time.Time
	for day := c.Cfg.Start; !day.After(c.Cfg.End); day = day.AddDate(0, 0, c.Cfg.StepDays) {
		days = append(days, day)
	}
	if len(days) == 0 {
		return nil
	}
	runOrdered(len(days), c.Cfg.DayWorkers,
		func(i int) *dayResult { return c.runDay(c.newDayContext(days[i]), days[i]) },
		func(_ int, res *dayResult) { c.commitDay(res) })
	// Leave the world clock where the serial walk used to: at the final
	// scan day, so follow-on one-shot experiments see the same time.
	c.World.Clock.Set(days[len(days)-1].Add(12 * time.Hour))
	return nil
}

// ScanDay performs one day's full scan sequence on the shared world clock
// (the campaign-level scanner, recursors, and fleet), for callers driving
// single days by hand.
//
// Clock semantics differ deliberately from RunDaily when a fleet is
// configured: the campaign-level client charges its synthetic serving
// latency to the world clock (queueing delay is observable, cooldowns
// expire under load — the live-drive behavior cmd/dohserve relies on),
// while RunDaily's per-day replicas freeze their clocks for bitwise
// reproducibility. A day scanned here is therefore not byte-comparable
// to the same day collected by RunDaily; within either entry point,
// results are deterministic.
func (c *Campaign) ScanDay(day time.Time) error {
	// Scans run mid-day so date-boundary schedules behave sharply.
	c.World.Clock.Set(day.Add(12 * time.Hour))
	dc := &scanContext{scanner: c.Scanner, prober: c.World, fleet: c.Fleet, clock: c.World.Clock}
	if c.Fleet != nil {
		// The campaign fleet's counters are cumulative across calls;
		// record this day as a delta.
		dc.servingBase = c.Fleet.TotalStats()
		dc.staleBase = c.Fleet.Client.StaleAnswers()
		dc.negativeBase = c.Fleet.Client.NegativeAnswers()
		if c.Cfg.TelemetryInterval > 0 {
			dc.sampler = obs.NewSampler(c.Fleet.Metrics, c.World.Clock, c.Cfg.TelemetryInterval, true)
		}
	}
	c.commitDay(c.runDay(dc, day))
	return nil
}

// RunHourlyECH reproduces the §4.4.2 experiment: hourly scans of
// ECH-publishing apex domains for the given number of days starting at
// start (the paper used July 21–27, 2023).
//
// Hours are pipelined like RunDaily's days: each hour scans inside its
// own scan context — fresh clock at the hour, forked recursors with
// empty caches (the per-hour flush the paper's 300s-TTL scanner implied),
// and a per-hour fleet replica with a cold answer cache — with up to
// Cfg.HourWorkers hours in flight and observations committed in strict
// hour order, so the stored dataset is byte-identical for any worker
// count. With telemetry enabled, each hour contributes its replica's
// stable snapshot; per day, the hourly snapshots fold cumulatively
// (obs.MergeSnapshots) into one hourly-ech series, mirroring the
// cumulative counters the old shared-fleet sampler reported within a day.
func (c *Campaign) RunHourlyECH(start time.Time, days int) {
	echDomains := c.discoverECHDomains(start)
	hours := days * 24
	if hours <= 0 {
		return
	}
	collectTelemetry := c.Fleet != nil && c.Cfg.TelemetryInterval > 0
	type hourResult struct {
		echObs []dataset.ECHObservation
		snap   *obs.Snapshot
	}
	var samples []obs.Point
	runOrdered(hours, c.Cfg.HourWorkers,
		func(h int) hourResult {
			now := start.Add(time.Duration(h) * time.Hour)
			hc := c.newHourContext(now)
			res := hourResult{echObs: hc.scanner.ECHScan(now, echDomains)}
			if collectTelemetry {
				// The hour clock is frozen at now, so the snapshot is
				// stamped at the hour boundary.
				res.snap = hc.fleet.Metrics.StableSnapshot()
			}
			return res
		},
		func(h int, res hourResult) {
			c.Store.AddECH(res.echObs...)
			if res.snap != nil {
				samples = append(samples, obs.Point{At: res.snap.At, Label: "hour", Snap: res.snap})
			}
		})
	// Leave the world clock where the serial walk used to: at the final
	// scanned hour.
	c.World.Clock.Set(start.Add(time.Duration(hours-1) * time.Hour))
	// Store one series per scan day so the timeline lines up with the rest
	// of the dataset's per-day records. Within a day, point h carries the
	// merge of hours 0..h — a cumulative curve, like a registry sampled
	// hourly would show — and the commit loop appended samples in hour
	// order, so the fold is deterministic.
	for day, points := range partitionByDay(samples) {
		cumulative := make([]obs.Point, len(points))
		var acc []*obs.Snapshot
		for i, p := range points {
			acc = append(acc, p.Snap)
			cumulative[i] = obs.Point{At: p.At, Label: p.Label, Snap: obs.MergeSnapshots(acc...)}
		}
		c.Store.AddTelemetry(telemetrySeries("hourly-ech", day, c.Cfg.TelemetryInterval, cumulative))
	}
}

// discoverECHDomains finds the ECH-publishing apex population for the
// hourly experiment, sorted for deterministic scan order. When the store
// already holds start's apex snapshot (RunDaily scanned that day), it is
// reused instead of re-scanning the full Tranco list — ECH presence is
// date-granular, so the stored snapshot names the same population the
// discovery scan would find.
func (c *Campaign) discoverECHDomains(start time.Time) []string {
	snap, ok := c.Store.SnapshotFor("apex", start)
	if !ok {
		// Discover the ECH population with a full scan on the world clock.
		c.World.Clock.Set(start)
		list := c.World.Tranco.ListFor(start)
		snap = c.Scanner.ScanList(start, "apex", list)
	}
	var echDomains []string
	for name, o := range snap.Obs {
		for _, rec := range o.HTTPS {
			if rec.HasECH {
				echDomains = append(echDomains, name)
				break
			}
		}
	}
	// snap.Obs is a map; sort so the hourly scan order (and with it the
	// stored observation order) is deterministic for a seed.
	sort.Strings(echDomains)
	return echDomains
}

// partitionByDay splits sampler points by the UTC day they were taken on.
func partitionByDay(points []obs.Point) map[time.Time][]obs.Point {
	out := map[time.Time][]obs.Point{}
	for _, p := range points {
		day := time.Date(p.At.Year(), p.At.Month(), p.At.Day(), 0, 0, 0, 0, time.UTC)
		out[day] = append(out[day], p)
	}
	return out
}

// RunValidationCensus reproduces the Table 9 one-shot census (the paper ran
// it on January 2nd, 2024): for every domain in that day's list, determine
// HTTPS presence, signing, Cloudflare NS use, and full-chain validation.
// Domains are censused concurrently on the scanner's worker bound; rows are
// stored in list order.
func (c *Campaign) RunValidationCensus(day time.Time) {
	c.World.Clock.Set(day.Add(12 * time.Hour))
	list := c.World.Tranco.ListFor(day)
	r := c.World.GoogleResolver
	now := c.World.Clock.Now()
	rows := make([]dataset.ValidationResult, len(list))
	scanner.ForEach(len(list), c.Scanner.Concurrency, func(i int) {
		rows[i] = c.censusRow(r, list[i], now)
	})
	c.Store.AddValidation(rows...)
}

// censusRow classifies one domain for the validation census.
func (c *Campaign) censusRow(r dnssec.ChainSource, name string, now time.Time) dataset.ValidationResult {
	apex := dnswire.CanonicalName(name)
	row := dataset.ValidationResult{Domain: apex}

	httpsRRs, _, httpsOK := r.FetchRRset(apex, dnswire.TypeHTTPS)
	row.HasHTTPS = httpsOK && len(httpsRRs) > 0

	_, keySigs, keyOK := r.FetchRRset(apex, dnswire.TypeDNSKEY)
	row.Signed = keyOK && len(keySigs) > 0

	if nsRRs, _, ok := r.FetchRRset(apex, dnswire.TypeNS); ok {
		for _, rr := range nsRRs {
			if ns, ok := rr.Data.(*dnswire.NSData); ok &&
				dnswire.IsSubdomain(ns.Host, c.World.Cloudflare.InfraDomain) {
				row.CFNS = true
			}
		}
	}
	if row.Signed {
		v := dnssec.NewValidator(r, c.World.Anchor, now)
		target := dnswire.TypeDNSKEY
		if row.HasHTTPS {
			target = dnswire.TypeHTTPS
		}
		res, _ := v.Validate(apex, target)
		row.Result = res.String()
	}
	return row
}

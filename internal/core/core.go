// Package core orchestrates end-to-end reproduction campaigns: it builds a
// simulated world, runs the paper's measurement schedules (daily snapshot
// scans, name-server scans, hourly ECH scans, connectivity probes, the
// DNSSEC validation census), and hands the collected dataset to the
// analysis package.
package core

import (
	"fmt"
	"io"
	"net/netip"
	"time"

	"repro/internal/dataset"
	"repro/internal/dnssec"
	"repro/internal/dnswire"
	"repro/internal/doh"
	"repro/internal/providers"
	"repro/internal/scanner"
)

// CampaignConfig controls a measurement campaign.
type CampaignConfig struct {
	// Size is the Tranco list size of the generated world.
	Size int
	// Seed drives world generation.
	Seed int64
	// Start and End bound the daily-scan period; zero values mean the
	// paper's full study period.
	Start, End time.Time
	// StepDays samples every Nth day (1 = daily like the paper; larger
	// steps trade trend resolution for speed).
	StepDays int
	// DoHFrontends, when positive, interposes the encrypted-DNS serving
	// layer: that many DoH frontends are registered over the public
	// recursors (alternating Google/Cloudflare), all sharing one sharded
	// answer cache, and the scanner queries through a load-balanced
	// upstream pool instead of bare stub queries.
	DoHFrontends int
	// DoHStrategy selects the pool's load-balancing strategy (the zero
	// value is power-of-two-choices).
	DoHStrategy doh.Strategy
	// DoHShards and DoHShardCap set the shared answer cache geometry;
	// zero values select the doh package defaults.
	DoHShards   int
	DoHShardCap int
	// Progress, when non-nil, receives one line per scanned day.
	Progress io.Writer
}

// Campaign is a running reproduction: a world, its scanner, and the
// collected data.
type Campaign struct {
	Cfg     CampaignConfig
	World   *providers.World
	Scanner *scanner.Scanner
	Store   *dataset.Store

	// The encrypted-DNS serving layer, populated when Cfg.DoHFrontends
	// is positive.
	DoHServers []*doh.Server
	DoHCache   *doh.Cache
	DoHPool    *doh.Pool
	DoHClient  *doh.Client
}

// NewCampaign builds the world and wires the scanner.
func NewCampaign(cfg CampaignConfig) (*Campaign, error) {
	if cfg.Size == 0 {
		cfg.Size = 20_000
	}
	if cfg.StepDays == 0 {
		cfg.StepDays = 1
	}
	if cfg.Start.IsZero() {
		cfg.Start = providers.StudyStart
	}
	if cfg.End.IsZero() {
		cfg.End = providers.StudyEnd
	}
	w, err := providers.BuildWorld(providers.WorldConfig{Size: cfg.Size, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("building world: %w", err)
	}
	sc := scanner.New(w.Net, w.GoogleAddr, w.CFResolverAddr, w.Whois)
	c := &Campaign{Cfg: cfg, World: w, Scanner: sc, Store: dataset.NewStore()}
	if cfg.DoHFrontends > 0 {
		c.buildDoHFleet(cfg.DoHFrontends, cfg.DoHStrategy)
	}
	return c, nil
}

// buildDoHFleet stands up n DoH frontends over the two public recursors
// with a shared answer cache and routes the scanner through the pool.
func (c *Campaign) buildDoHFleet(n int, strategy doh.Strategy) {
	w := c.World
	c.DoHCache = doh.NewCache(w.Clock, c.Cfg.DoHShards, c.Cfg.DoHShardCap)
	c.DoHPool = doh.NewPool(w.Clock, strategy, c.Cfg.Seed)
	for i := 0; i < n; i++ {
		recursor, org := w.GoogleResolver, "google"
		if i%2 == 1 {
			recursor, org = w.CFResolver, "cloudflare"
		}
		name := fmt.Sprintf("doh-%s-%d", org, i)
		srv := &doh.Server{Name: name, Handler: recursor, Cache: c.DoHCache}
		ap := netip.AddrPortFrom(w.Alloc.AllocV4("DoHFrontend"), 443)
		srv.Register(w.Net, ap)
		c.DoHPool.Add(name, ap)
		c.DoHServers = append(c.DoHServers, srv)
	}
	c.DoHClient = doh.NewClient(w.Net, c.DoHPool)
	// Deterministic per-member latency keeps EWMA/P2 routing replayable
	// for a seed (wall-clock timing of in-process calls is pure noise).
	c.DoHClient.Latency = doh.SyntheticLatency(2*time.Millisecond, 18*time.Millisecond)
	c.Scanner.Transport = c.DoHClient
}

// connectivityProbeStart is when the §4.3.5 TLS probing experiment began.
var connectivityProbeStart = time.Date(2024, 1, 24, 0, 0, 0, 0, time.UTC)

// RunDaily executes the daily scan schedule over the campaign window.
func (c *Campaign) RunDaily() error {
	for day := c.Cfg.Start; !day.After(c.Cfg.End); day = day.AddDate(0, 0, c.Cfg.StepDays) {
		if err := c.ScanDay(day); err != nil {
			return err
		}
	}
	return nil
}

// ScanDay performs one day's full scan sequence.
func (c *Campaign) ScanDay(day time.Time) error {
	// Scans run mid-day so date-boundary schedules behave sharply.
	c.World.Clock.Set(day.Add(12 * time.Hour))
	list := c.World.Tranco.ListFor(day)
	c.Store.AddTrancoList(day, list)

	apexSnap := c.Scanner.ScanList(day, "apex", list)
	c.Store.AddSnapshot(apexSnap)
	wwwSnap := c.Scanner.ScanList(day, "www", list)
	c.Store.AddSnapshot(wwwSnap)

	if !day.Before(providers.NSScanStart) {
		nsSnap := c.Scanner.ScanNameServers(day, apexSnap, wwwSnap)
		c.Store.AddNSSnapshot(nsSnap)
	}
	if !day.Before(connectivityProbeStart) {
		probes := c.Scanner.ProbeMismatches(day, apexSnap, c.World)
		c.Store.AddProbes(probes...)
	}
	if c.Cfg.Progress != nil {
		fmt.Fprintf(c.Cfg.Progress, "%s scanned: apex adopters %d/%d, www adopters %d/%d\n",
			day.Format("2006-01-02"), len(apexSnap.Obs), apexSnap.Total,
			len(wwwSnap.Obs), wwwSnap.Total)
	}
	return nil
}

// RunHourlyECH reproduces the §4.4.2 experiment: hourly scans of
// ECH-publishing apex domains for the given number of days starting at
// start (the paper used July 21–27, 2023).
func (c *Campaign) RunHourlyECH(start time.Time, days int) {
	// Discover the ECH population once.
	c.World.Clock.Set(start)
	list := c.World.Tranco.ListFor(start)
	snap := c.Scanner.ScanList(start, "apex", list)
	var echDomains []string
	for name, obs := range snap.Obs {
		for _, rec := range obs.HTTPS {
			if rec.HasECH {
				echDomains = append(echDomains, name)
				break
			}
		}
	}
	for h := 0; h < days*24; h++ {
		now := start.Add(time.Duration(h) * time.Hour)
		c.World.Clock.Set(now)
		// Fresh caches each hour, as the paper's scanner saw records
		// refreshed by the 300s TTL. Both recursors flush: with a DoH
		// fleet the pool spreads queries over frontends backed by either.
		c.World.GoogleResolver.FlushCache()
		c.World.CFResolver.FlushCache()
		if c.DoHCache != nil {
			c.DoHCache.Flush()
		}
		c.Store.AddECH(c.Scanner.ECHScan(now, echDomains)...)
	}
}

// RunValidationCensus reproduces the Table 9 one-shot census (the paper ran
// it on January 2nd, 2024): for every domain in that day's list, determine
// HTTPS presence, signing, Cloudflare NS use, and full-chain validation.
func (c *Campaign) RunValidationCensus(day time.Time) {
	c.World.Clock.Set(day.Add(12 * time.Hour))
	list := c.World.Tranco.ListFor(day)
	r := c.World.GoogleResolver
	for _, name := range list {
		apex := dnswire.CanonicalName(name)
		row := dataset.ValidationResult{Domain: apex}

		httpsRRs, _, httpsOK := r.FetchRRset(apex, dnswire.TypeHTTPS)
		row.HasHTTPS = httpsOK && len(httpsRRs) > 0

		_, keySigs, keyOK := r.FetchRRset(apex, dnswire.TypeDNSKEY)
		row.Signed = keyOK && len(keySigs) > 0

		if nsRRs, _, ok := r.FetchRRset(apex, dnswire.TypeNS); ok {
			for _, rr := range nsRRs {
				if ns, ok := rr.Data.(*dnswire.NSData); ok &&
					dnswire.IsSubdomain(ns.Host, c.World.Cloudflare.InfraDomain) {
					row.CFNS = true
				}
			}
		}
		if row.Signed {
			v := dnssec.NewValidator(r, c.World.Anchor, c.World.Clock.Now())
			target := dnswire.TypeDNSKEY
			if row.HasHTTPS {
				target = dnswire.TypeHTTPS
			}
			res, _ := v.Validate(apex, target)
			row.Result = res.String()
		}
		c.Store.AddValidation(row)
	}
}

package workload

import (
	"math"
	"testing"
	"time"
)

// TestZipfRankFrequencySlope checks the popularity model statistically:
// empirical draw frequencies over the top ranks must fall on a log-log
// line of slope ≈ −s, the rank-frequency signature of a Zipf law.
func TestZipfRankFrequencySlope(t *testing.T) {
	for _, s := range []float64{0.8, 1.0, 1.2} {
		const n, draws = 500, 400_000
		z := newZipfSampler(n, s)
		r := newRNG(17, 0)
		counts := make([]int, n)
		for i := 0; i < draws; i++ {
			counts[z.draw(&r)]++
		}
		// Least-squares slope of log(count) on log(rank+1) over the top
		// 50 ranks — the head carries enough mass per rank for the
		// counts to be statistically stable.
		var sx, sy, sxx, sxy float64
		const top = 50
		for rank := 0; rank < top; rank++ {
			if counts[rank] == 0 {
				t.Fatalf("s=%v: head rank %d never drawn in %d draws", s, rank, draws)
			}
			x, y := math.Log(float64(rank+1)), math.Log(float64(counts[rank]))
			sx += x
			sy += y
			sxx += x * x
			sxy += x * y
		}
		slope := (top*sxy - sx*sy) / (top*sxx - sx*sx)
		if math.Abs(slope+s) > 0.15 {
			t.Errorf("s=%v: rank-frequency slope %.3f, want ≈ %.3f ± 0.15", s, slope, -s)
		}
	}
}

// TestZipfDrawsCoverTail: the alias method must reach the whole
// universe, not just the head.
func TestZipfDrawsCoverTail(t *testing.T) {
	const n = 100
	z := newZipfSampler(n, 1.0)
	r := newRNG(23, 1)
	seen := make([]bool, n)
	distinct := 0
	for i := 0; i < 200_000 && distinct < n; i++ {
		d := z.draw(&r)
		if d >= n {
			t.Fatalf("draw %d outside universe of %d", d, n)
		}
		if !seen[d] {
			seen[d] = true
			distinct++
		}
	}
	if distinct != n {
		t.Fatalf("only %d/%d ranks ever drawn", distinct, n)
	}
}

// TestExponentialInterArrivalMean: the RNG's exponential draws must
// average to the configured mean — the inter-arrival law behind both
// arrival models.
func TestExponentialInterArrivalMean(t *testing.T) {
	r := newRNG(31, 2)
	const mean, draws = 4.0, 200_000
	var sum float64
	for i := 0; i < draws; i++ {
		sum += r.exp(mean)
	}
	got := sum / draws
	// Standard error is mean/sqrt(draws) ≈ 0.009; 3σ ≈ 0.027.
	if math.Abs(got-mean) > 0.05 {
		t.Fatalf("empirical mean %.4f, want %.1f ± 0.05", got, mean)
	}
}

// TestOpenLoopRateMatchesConfig: an open-loop run must issue close to
// Clients·OpenRate·Duration queries — the aggregate Poisson rate the
// model promises.
func TestOpenLoopRateMatchesConfig(t *testing.T) {
	cfg := Config{
		Clients: 1_000, Model: ModelOpen, Seed: 11,
		Domains: testDomains(100), Duration: 400 * time.Second,
		OpenRate: 0.05, StubTTL: time.Second,
	}
	eng, err := New(cfg, testClock(), &fakeTarget{})
	if err != nil {
		t.Fatal(err)
	}
	sum := eng.Run()
	want := float64(cfg.Clients) * cfg.OpenRate * cfg.Duration.Seconds() // 20 000
	got := float64(sum.Queries)
	// Poisson σ ≈ sqrt(20 000) ≈ 141; allow 5σ.
	if math.Abs(got-want) > 5*math.Sqrt(want) {
		t.Fatalf("open-loop run issued %.0f queries, want %.0f ± %.0f", got, want, 5*math.Sqrt(want))
	}
}

// TestClosedLoopThinkTime: a closed-loop run's per-client rate is
// 1/Think, so totals must land near Clients·Duration/Think.
func TestClosedLoopThinkTime(t *testing.T) {
	cfg := Config{
		Clients: 1_000, Model: ModelClosed, Seed: 13,
		Domains: testDomains(100), Duration: 400 * time.Second,
		Think: 20 * time.Second, StubTTL: time.Second,
	}
	eng, err := New(cfg, testClock(), &fakeTarget{})
	if err != nil {
		t.Fatal(err)
	}
	sum := eng.Run()
	want := float64(cfg.Clients) * cfg.Duration.Seconds() / cfg.Think.Seconds() // 20 000
	got := float64(sum.Queries)
	if math.Abs(got-want) > 5*math.Sqrt(want) {
		t.Fatalf("closed-loop run issued %.0f queries, want %.0f ± %.0f", got, want, 5*math.Sqrt(want))
	}
}

// TestDiurnalPeakLandsOnSchedule: with a strong diurnal curve peaking
// at 20h, the busiest telemetry tick of a 24 h run must sit in the
// scheduled evening, and the peak/trough ratio must reflect the
// configured amplitude.
func TestDiurnalPeakLandsOnSchedule(t *testing.T) {
	cfg := Config{
		Clients: 300, Model: ModelOpen, Seed: 19,
		Domains: testDomains(100), Duration: 24 * time.Hour,
		OpenRate: 0.01, StubTTL: time.Second,
		Diurnal:  Diurnal{Amplitude: 0.8, Peak: 20 * time.Hour},
		Interval: time.Hour,
	}
	// Clock starts at midnight UTC, so tick hour = hour of day.
	eng, err := New(cfg, testClock(), &fakeTarget{})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	var peakHour int
	var peakQPS, troughQPS float64
	troughQPS = math.Inf(1)
	ticks := 0
	for _, p := range eng.Points() {
		if p.Label != "tick" {
			continue
		}
		ticks++
		qps := p.Snap.Value("workload_qps")
		if qps > peakQPS {
			peakQPS = qps
			// The tick at hh:00 covers the preceding hour.
			peakHour = p.At.UTC().Hour()
			if peakHour == 0 {
				peakHour = 24
			}
		}
		if qps < troughQPS {
			troughQPS = qps
		}
	}
	if ticks < 23 {
		t.Fatalf("only %d hourly ticks over a 24 h run", ticks)
	}
	// The 20h peak should land in the 20:00 or 21:00 bucket; allow one
	// bucket of sampling noise either side.
	if peakHour < 19 || peakHour > 22 {
		t.Errorf("busiest hour bucket ends at %dh, want within [19h, 22h] around the 20h peak", peakHour)
	}
	// factor spans [1−A, 1+A] = [0.2, 1.8]: a 9× ideal ratio. Demand at
	// least 3× so a flat curve can't pass.
	if troughQPS <= 0 || peakQPS/troughQPS < 3 {
		t.Errorf("peak/trough qps ratio %.2f (%.1f/%.1f), want ≥ 3 for amplitude 0.8",
			peakQPS/troughQPS, peakQPS, troughQPS)
	}
}

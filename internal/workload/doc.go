// Package workload simulates a stub-resolver population — up to
// millions of clients — driving an encrypted-DNS serving layer on the
// virtual clock.
//
// # Client model
//
// Each client is ~40 bytes of flat-array state: a splitmix64 RNG stream
// (8 bytes, a pure function of engine seed and client ID), a protocol
// preference dealt by transport.Mix.Assign (the dnscrypt-proxy-style
// per-stub preference), and a direct-mapped stub cache of StubSlots
// (rank, expiry) pairs. Query domains are drawn from a Zipf(s)
// popularity law over the ranked domain list via a Walker alias table —
// O(1) per draw. Arrivals follow either a closed loop (exponential
// think time after each answer) or an open loop (per-client Poisson
// arrivals), with the instantaneous rate shaped by a diurnal cosine
// curve and scheduled flash crowds.
//
// # Event heap
//
// Pending arrivals — exactly one per client — live in a sharded binary
// min-heap keyed by (due time, client ID): shard = client & mask, pop =
// scan of the ≤64 shard heads. Sharding keeps each heap small enough to
// stay cache-resident and cuts sift depth, which is where the per-event
// time goes at 10^6 clients. The hot loop reuses one query message
// (QNAME and ID patched in place; the serving stack never retains the
// caller's message) and charges the virtual clock in chargeQuantum
// steps instead of per event.
//
// # Determinism contract
//
// The engine is a pure function of (Config, clock start time, target):
// single-goroutine by construction, total event order fixed by the
// (due, client) tie-break, per-client RNG streams independent of firing
// order, and stub-cache TTLs taken from Config.StubTTL rather than
// answer TTLs (answer TTLs depend on fleet-cache LRU residency, which
// is schedule-dependent under the concurrent scanner stages that may
// precede a workload run in the same scan context). Two runs with the
// same inputs replay byte-identically; Summary.Digest — an FNV-1a fold
// of every processed (client, due, rank, outcome) tuple — pins this in
// tests, and campaign integration inherits it: a workload-enabled
// pipelined campaign stores byte-identical datasets at any worker
// count.
package workload

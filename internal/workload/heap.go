package workload

// event is one pending client arrival: the virtual due time (unix
// nanoseconds) and the client that fires. Sixteen bytes, kept in flat
// per-shard slices so a million pending events cost ~16 MB and heap
// sift-downs stay inside a few cache lines.
type event struct {
	due    int64
	client uint32
}

// less orders events by (due, client): the client ID tie-break makes the
// pop sequence — and with it the whole engine — a total order, so two
// runs with the same seed replay byte-identically even when many clients
// share a due time.
func (e event) less(o event) bool {
	if e.due != o.due {
		return e.due < o.due
	}
	return e.client < o.client
}

// eventHeap schedules client arrivals sharded by client ID: each shard
// is an independent binary min-heap, and Pop scans the shard heads for
// the global minimum. Every client has exactly one pending event, so
// each push lands in the popped client's own shard — sharding cuts the
// per-push sift depth by log2(shards) and keeps each heap's backing
// array small enough to stay cache-resident, which is where the
// per-event time goes at 10^6 clients.
type eventHeap struct {
	shards [][]event
	mask   uint32
	size   int
}

// newEventHeap sizes the shard array for n clients: shard count is the
// largest power of two ≤ min(64, n), a pure function of n so the heap
// geometry — and the pop order — never depends on the host.
func newEventHeap(n int) *eventHeap {
	shards := 1
	for shards < 64 && shards*2 <= n {
		shards *= 2
	}
	h := &eventHeap{shards: make([][]event, shards), mask: uint32(shards - 1)}
	per := n/shards + 1
	for i := range h.shards {
		h.shards[i] = make([]event, 0, per)
	}
	return h
}

// Len returns the number of pending events.
func (h *eventHeap) Len() int { return h.size }

// Push schedules an event.
func (h *eventHeap) Push(e event) {
	s := h.shards[e.client&h.mask]
	s = append(s, e)
	// Sift up.
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s[i].less(s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
	h.shards[e.client&h.mask] = s
	h.size++
}

// Pop removes and returns the globally minimal event. The shard-head
// scan is O(shards) = O(64) straight-line comparisons — cheaper in
// practice than the deeper sift a single million-entry heap pays.
func (h *eventHeap) Pop() (event, bool) {
	if h.size == 0 {
		return event{}, false
	}
	best := -1
	for i, s := range h.shards {
		if len(s) == 0 {
			continue
		}
		if best < 0 || s[0].less(h.shards[best][0]) {
			best = i
		}
	}
	s := h.shards[best]
	e := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < last && s[l].less(s[min]) {
			min = l
		}
		if r < last && s[r].less(s[min]) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	h.shards[best] = s
	h.size--
	return e, true
}

package workload

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"repro/internal/dnswire"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// crowdRecursor is the upstream behind the test fleets: it answers
// HTTPS queries with a fixed-TTL record, counts how many queries make
// it past the fleet cache, and can be flapped dead mid-scenario.
type crowdRecursor struct {
	ttl     uint32
	queries int
	fail    bool
}

func (s *crowdRecursor) HandleDNS(q *dnswire.Message) *dnswire.Message {
	s.queries++
	if s.fail {
		return nil
	}
	resp := q.Reply()
	resp.RecursionAvailable = true
	resp.Answer = append(resp.Answer, dnswire.RR{
		Name: q.Question[0].Name, Type: dnswire.TypeHTTPS,
		Class: dnswire.ClassINET, TTL: s.ttl,
		Data: &dnswire.SVCBData{Priority: 1, Target: "."},
	})
	return resp
}

// newCrowdFleet stands up n DoH frontends over one recursor on a fresh
// virtual network — the exported-API equivalent of the transport
// package's internal test fleet.
func newCrowdFleet(t *testing.T, n int, cache transport.CacheConfig, cooldown time.Duration) (*transport.Fleet, *crowdRecursor, *simnet.Network, *simnet.Clock) {
	t.Helper()
	clock := simnet.NewClock(time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC))
	net := simnet.New(clock)
	rec := &crowdRecursor{ttl: 30}
	fl := transport.NewFleet(net, clock, transport.FleetConfig{
		Seed:            1,
		Cache:           cache,
		FailureCooldown: cooldown,
	})
	for i := 0; i < n; i++ {
		ap := netip.AddrPortFrom(netip.AddrFrom4([4]byte{203, 0, 113, byte(i + 1)}), 443)
		fl.Add(transport.ProtoDoH, fmt.Sprintf("fe%d", i), rec, ap)
	}
	return fl, rec, net, clock
}

// TestCrowdAtCacheEntryTTLExpiry schedules a thundering herd to land
// exactly when the fleet-cache entry it hammers expires: the herd must
// be absorbed by exactly one upstream refetch, never amplified into
// per-client recursor traffic.
func TestCrowdAtCacheEntryTTLExpiry(t *testing.T) {
	fl, rec, _, clock := newCrowdFleet(t, 1,
		transport.CacheConfig{Shards: 4, ShardCapacity: 64}, 0)

	// Warm the entry at t0: it expires exactly 30 s (the recursor TTL)
	// later.
	if _, err := fl.Client.Query("crowd.test", dnswire.TypeHTTPS, false); err != nil {
		t.Fatal(err)
	}
	if rec.queries != 1 {
		t.Fatalf("warm query: recursor saw %d, want 1", rec.queries)
	}

	eng, err := New(Config{
		Clients: 500, Model: ModelOpen, Seed: 7,
		Domains: []string{"crowd.test"}, Duration: 40 * time.Second,
		OpenRate: 0.2, StubTTL: 2 * time.Second,
		Crowds: []FlashCrowd{{
			At: 30 * time.Second, Duration: 5 * time.Second,
			Multiplier: 20, Domain: "crowd.test", Fraction: 1,
		}},
	}, clock, fl.Client)
	if err != nil {
		t.Fatal(err)
	}
	sum := eng.Run()
	if sum.Errors != 0 {
		t.Fatalf("%d errors during the crowd", sum.Errors)
	}
	if sum.FleetExchanges < 1_000 {
		t.Fatalf("only %d fleet exchanges — the crowd never reached the fleet", sum.FleetExchanges)
	}
	// One warm fetch plus exactly one refetch at the expiry boundary:
	// the cache, not the recursor, absorbs the herd.
	if rec.queries != 2 {
		t.Fatalf("recursor saw %d queries, want 2 (warm + one expiry refetch) — the herd leaked upstream", rec.queries)
	}
}

// TestCrowdDuringRecursorFlap drives a crowd into a fleet whose
// recursor has just died, past the entry's TTL: RFC 8767 serve-stale
// must carry the load with zero client-visible errors, and the
// engine's stale-serve accounting must match the client's counter.
func TestCrowdDuringRecursorFlap(t *testing.T) {
	fl, rec, _, clock := newCrowdFleet(t, 1,
		transport.CacheConfig{Shards: 4, ShardCapacity: 64, StaleWindow: time.Hour},
		5*time.Minute)

	if _, err := fl.Client.Query("crowd.test", dnswire.TypeHTTPS, false); err != nil {
		t.Fatal(err)
	}
	rec.fail = true // the recursor flaps before the entry's 30 s TTL runs out

	eng, err := New(Config{
		Clients: 400, Model: ModelOpen, Seed: 7,
		Domains: []string{"crowd.test"}, Duration: 45 * time.Second,
		OpenRate: 0.05, StubTTL: 2 * time.Second,
		Crowds: []FlashCrowd{{
			At: 32 * time.Second, Duration: 5 * time.Second,
			Multiplier: 20, Domain: "crowd.test", Fraction: 1,
		}},
	}, clock, fl.Client)
	if err != nil {
		t.Fatal(err)
	}
	sum := eng.Run()
	if sum.Errors != 0 {
		t.Fatalf("%d errors — serve-stale should have absorbed the flap", sum.Errors)
	}
	if sum.StaleServed == 0 {
		t.Fatal("no stale answers served during a crowd past TTL expiry with the recursor down")
	}
	if got := fl.Client.StaleAnswers(); got != sum.StaleServed {
		t.Fatalf("engine counted %d stale serves, client counted %d", sum.StaleServed, got)
	}
	stats := fl.Frontends[0].Stats()
	if stats.StaleServed == 0 || stats.UpstreamFailures == 0 {
		t.Fatalf("frontend stats missed the flap: %+v", stats)
	}
}

// TestCrowdFailoverPastDeadFrontends floods a pool whose capacity has
// collapsed — two of three frontends unreachable — with a crowd larger
// than the survivor would see in steady state: failover must route
// every query to the healthy member with zero errors.
func TestCrowdFailoverPastDeadFrontends(t *testing.T) {
	fl, rec, net, clock := newCrowdFleet(t, 3,
		transport.CacheConfig{Shards: 4, ShardCapacity: 256}, 0)
	rec.ttl = 300

	// Kill frontends 1 and 2 before any traffic flows.
	for i := 1; i <= 2; i++ {
		net.SetAddrDown(fl.Addrs[i].Addr(), true)
	}

	eng, err := New(Config{
		Clients: 1_000, Model: ModelOpen, Seed: 7,
		Domains: testDomains(50), Duration: 30 * time.Second,
		OpenRate: 0.05, StubTTL: 5 * time.Second,
		Crowds: []FlashCrowd{{
			At: 10 * time.Second, Duration: 5 * time.Second, Multiplier: 30,
		}},
	}, clock, fl.Client)
	if err != nil {
		t.Fatal(err)
	}
	sum := eng.Run()
	if sum.Errors != 0 {
		t.Fatalf("%d errors — failover should have reached the healthy frontend every time", sum.Errors)
	}
	if sum.FleetExchanges == 0 {
		t.Fatal("no fleet exchanges")
	}
	stats := fl.Stats()
	if stats[0].Served == 0 {
		t.Fatal("healthy frontend served nothing")
	}
	if stats[1].Served != 0 || stats[2].Served != 0 {
		t.Fatalf("dead frontends served traffic: %+v / %+v", stats[1], stats[2])
	}
	// The client must have benched the dead members: attempts above
	// exchanges early on, then the healthy member pinned.
	ss := fl.Client.StrategyStats()
	if ss.Attempts <= ss.Exchanges {
		t.Fatalf("no extra attempts recorded (%d attempts / %d exchanges) — failover never exercised",
			ss.Attempts, ss.Exchanges)
	}
}

package workload

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/dnswire"
	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// fakeTarget is a serving-layer double: it answers every query with a
// fixed HTTPS record and records the query-name sequence, so engine
// tests pin the engine's own event computation without fleet
// scheduling in the loop.
type fakeTarget struct {
	exchanges int
	names     []string
	fail      bool
}

func (f *fakeTarget) Exchange(q *dnswire.Message) (*dnswire.Message, error) {
	f.exchanges++
	if len(f.names) < 256 {
		f.names = append(f.names, q.Question[0].Name)
	}
	if f.fail {
		return nil, fmt.Errorf("fake target down")
	}
	resp := q.Reply()
	resp.Answer = append(resp.Answer, dnswire.RR{
		Name: q.Question[0].Name, Type: dnswire.TypeHTTPS,
		Class: dnswire.ClassINET, TTL: 300,
		Data: &dnswire.SVCBData{Priority: 1, Target: "."},
	})
	return resp, nil
}

func testDomains(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("site%04d.example", i)
	}
	return out
}

func testClock() *simnet.Clock {
	return simnet.NewClock(time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC))
}

// TestSameSeedIdenticalRuns is the engine's determinism contract: two
// runs of the same (seed, clock start, config) must replay the exact
// same event stream — same totals, same digest, same query-name
// sequence at the target.
func TestSameSeedIdenticalRuns(t *testing.T) {
	for _, model := range []Model{ModelClosed, ModelOpen} {
		cfg := Config{
			Clients: 2_000, Model: model, Seed: 41,
			Domains: testDomains(300), Duration: 5 * time.Minute,
			OpenRate: 0.1, Think: 10 * time.Second,
			StubTTL: 30 * time.Second, Interval: time.Minute,
			Diurnal: Diurnal{Amplitude: 0.5, Peak: 20 * time.Hour},
			Crowds: []FlashCrowd{{
				At: 2 * time.Minute, Duration: 30 * time.Second,
				Multiplier: 10, Domain: "site0007.example", Fraction: 0.9,
			}},
		}
		run := func() (Summary, *fakeTarget) {
			tgt := &fakeTarget{}
			eng, err := New(cfg, testClock(), tgt)
			if err != nil {
				t.Fatal(err)
			}
			return eng.Run(), tgt
		}
		a, ta := run()
		b, tb := run()
		if a != b {
			t.Fatalf("%v: same seed diverged:\n  %+v\n  %+v", model, a, b)
		}
		if a.Digest == 0 || a.Queries == 0 {
			t.Fatalf("%v: degenerate run: %+v", model, a)
		}
		if len(ta.names) != len(tb.names) {
			t.Fatalf("%v: query-name sequences differ in length", model)
		}
		for i := range ta.names {
			if ta.names[i] != tb.names[i] {
				t.Fatalf("%v: query %d name %q vs %q", model, i, ta.names[i], tb.names[i])
			}
		}
		if got := a.Queries - a.StubHits; got != a.FleetExchanges {
			t.Fatalf("%v: Queries-StubHits = %d, FleetExchanges = %d", model, got, a.FleetExchanges)
		}
	}
}

// TestDifferentSeedsDistinctDraws: distinct seeds must give every
// client a distinct RNG stream, so the Zipf draw sequences — and with
// them the digests — diverge.
func TestDifferentSeedsDistinctDraws(t *testing.T) {
	base := Config{
		Clients: 500, Model: ModelOpen, Domains: testDomains(200),
		Duration: 2 * time.Minute, OpenRate: 0.2,
	}
	digests := map[uint64]int64{}
	for _, seed := range []int64{1, 2, 3} {
		cfg := base
		cfg.Seed = seed
		eng, err := New(cfg, testClock(), &fakeTarget{})
		if err != nil {
			t.Fatal(err)
		}
		sum := eng.Run()
		if prev, dup := digests[sum.Digest]; dup {
			t.Fatalf("seeds %d and %d produced the same digest %016x", prev, seed, sum.Digest)
		}
		digests[sum.Digest] = seed
	}

	// Directly: the per-client rank streams under two seeds must not
	// coincide.
	z := newZipfSampler(1000, 1.0)
	r1, r2 := newRNG(1, 0), newRNG(2, 0)
	same := true
	for i := 0; i < 64; i++ {
		if z.draw(&r1) != z.draw(&r2) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 yield identical Zipf draw sequences")
	}
}

// TestRNGStreamsIndependentOfSiblings: a client's stream depends only
// on (seed, client id), never on how many clients exist — the property
// that keeps event replay stable however the heap interleaves pops.
func TestRNGStreamsIndependentOfSiblings(t *testing.T) {
	a := newRNG(99, 7)
	b := newRNG(99, 7)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatalf("draw %d diverged for identical (seed, id)", i)
		}
	}
	c, d := newRNG(99, 7), newRNG(99, 8)
	distinct := false
	for i := 0; i < 16; i++ {
		if c.next() != d.next() {
			distinct = true
			break
		}
	}
	if !distinct {
		t.Fatal("adjacent client ids share a stream")
	}
}

// TestEventHeapTotalOrder: pops must come out ordered by (due, client)
// whatever the push order, across every shard.
func TestEventHeapTotalOrder(t *testing.T) {
	h := newEventHeap(1000)
	r := newRNG(5, 0)
	const n = 5000
	for i := 0; i < n; i++ {
		h.Push(event{due: int64(r.intn(1 << 20)), client: uint32(r.intn(1000))})
	}
	if h.Len() != n {
		t.Fatalf("heap length %d, want %d", h.Len(), n)
	}
	var prev event
	for i := 0; i < n; i++ {
		ev, ok := h.Pop()
		if !ok {
			t.Fatalf("heap dry after %d pops, want %d", i, n)
		}
		if i > 0 && ev.less(prev) {
			t.Fatalf("pop %d out of order: %+v after %+v", i, ev, prev)
		}
		prev = ev
	}
	if _, ok := h.Pop(); ok {
		t.Fatal("pop succeeded on an empty heap")
	}
}

// TestStubCacheServesRepeats: with a long stub TTL and a tiny domain
// universe, repeat draws must be absorbed client-side.
func TestStubCacheServesRepeats(t *testing.T) {
	tgt := &fakeTarget{}
	eng, err := New(Config{
		Clients: 100, Model: ModelOpen, Seed: 3,
		Domains: testDomains(4), Duration: 5 * time.Minute,
		OpenRate: 0.5, StubTTL: time.Hour, StubSlots: 4,
	}, testClock(), tgt)
	if err != nil {
		t.Fatal(err)
	}
	sum := eng.Run()
	if sum.StubHits == 0 {
		t.Fatal("no stub-cache hits over a 4-domain universe")
	}
	if sum.StubHits <= sum.FleetExchanges {
		t.Fatalf("stub hits %d should dominate fleet exchanges %d with an hour-long stub TTL",
			sum.StubHits, sum.FleetExchanges)
	}
	if int(sum.FleetExchanges) != tgt.exchanges {
		t.Fatalf("summary counts %d fleet exchanges, target saw %d", sum.FleetExchanges, tgt.exchanges)
	}
}

// TestErrorsNotCached: failed exchanges must count as errors and leave
// the stub cache cold, so clients keep retrying the serving path.
func TestErrorsNotCached(t *testing.T) {
	tgt := &fakeTarget{fail: true}
	eng, err := New(Config{
		Clients: 50, Model: ModelOpen, Seed: 3,
		Domains: testDomains(2), Duration: 2 * time.Minute,
		OpenRate: 0.5, StubTTL: time.Hour,
	}, testClock(), tgt)
	if err != nil {
		t.Fatal(err)
	}
	sum := eng.Run()
	if sum.Errors != sum.Queries || sum.Errors == 0 {
		t.Fatalf("errors %d, queries %d: every query should fail and none cache", sum.Errors, sum.Queries)
	}
	if sum.StubHits != 0 {
		t.Fatalf("%d stub hits after nothing but failures", sum.StubHits)
	}
}

// TestMaxQueriesCapsRun: the budget knob must stop the run at exactly
// the cap with the virtual span covered so far.
func TestMaxQueriesCapsRun(t *testing.T) {
	eng, err := New(Config{
		Clients: 1000, Model: ModelOpen, Seed: 9,
		Domains: testDomains(50), MaxQueries: 2_500, OpenRate: 1,
	}, testClock(), &fakeTarget{})
	if err != nil {
		t.Fatal(err)
	}
	sum := eng.Run()
	if sum.Queries != 2_500 {
		t.Fatalf("ran %d queries, want exactly the 2500 cap", sum.Queries)
	}
	if sum.Virtual <= 0 {
		t.Fatalf("virtual span %v, want positive", sum.Virtual)
	}
}

// TestConfigValidation pins the constructor's error surface.
func TestConfigValidation(t *testing.T) {
	clock := testClock()
	ok := Config{Clients: 1, Domains: testDomains(1), Duration: time.Second}
	cases := []struct {
		name   string
		mutate func(*Config)
		target Exchanger
	}{
		{"zero clients", func(c *Config) { c.Clients = 0 }, &fakeTarget{}},
		{"no domains", func(c *Config) { c.Domains = nil }, &fakeTarget{}},
		{"no horizon", func(c *Config) { c.Duration = 0; c.MaxQueries = 0 }, &fakeTarget{}},
		{"amplitude", func(c *Config) { c.Diurnal.Amplitude = 0.99 }, &fakeTarget{}},
		{"crowd multiplier", func(c *Config) {
			c.Crowds = []FlashCrowd{{Multiplier: 0}}
		}, &fakeTarget{}},
		{"crowd fraction", func(c *Config) {
			c.Crowds = []FlashCrowd{{Multiplier: 2, Fraction: 1.5}}
		}, &fakeTarget{}},
		{"crowd domain outside universe", func(c *Config) {
			c.Crowds = []FlashCrowd{{Multiplier: 2, Domain: "absent.example"}}
		}, &fakeTarget{}},
		{"mix without preference support", func(c *Config) {
			c.Mix = transport.Mix{DoH: 1, DoT: 1}
		}, &fakeTarget{}},
	}
	for _, tc := range cases {
		cfg := ok
		tc.mutate(&cfg)
		if _, err := New(cfg, clock, tc.target); err == nil {
			t.Errorf("%s: constructor accepted an invalid config", tc.name)
		}
	}
	if _, err := New(ok, nil, &fakeTarget{}); err == nil {
		t.Error("nil clock accepted")
	}
	if _, err := New(ok, clock, nil); err == nil {
		t.Error("nil target accepted")
	}
	if _, err := New(ok, clock, &fakeTarget{}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestModelParseRoundTrip covers the flag-surface parser.
func TestModelParseRoundTrip(t *testing.T) {
	for _, m := range []Model{ModelClosed, ModelOpen} {
		got, err := ParseModel(m.String())
		if err != nil || got != m {
			t.Errorf("ParseModel(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseModel("thundering"); err == nil {
		t.Error("ParseModel accepted an unknown model")
	}
}

// TestCrowdRecorderMarkers pins the flight-recorder crowd markers: one
// start and one end event per configured crowd, stamped at the crowd's
// config-derived virtual boundaries, surviving the stable-event filter.
func TestCrowdRecorderMarkers(t *testing.T) {
	clock := testClock()
	start := clock.Now()
	rec := obs.NewRecorder(clock, 32)
	cfg := Config{
		Clients: 50, Model: ModelOpen, Seed: 7,
		Domains: testDomains(20), Duration: 10 * time.Minute,
		Crowds: []FlashCrowd{{
			At: 2 * time.Minute, Duration: 3 * time.Minute,
			Multiplier: 5, Domain: "site0001.example", Fraction: 0.5,
		}},
		Recorder: rec,
	}
	e, err := New(cfg, clock, &fakeTarget{})
	if err != nil {
		t.Fatal(err)
	}
	e.Run()

	stable := rec.StableEvents()
	var got []obs.Event
	for _, ev := range stable {
		if ev.Kind == "workload.crowd.start" || ev.Kind == "workload.crowd.end" {
			got = append(got, ev)
		}
	}
	if len(got) != 2 {
		t.Fatalf("crowd markers = %d, want start+end: %+v", len(got), got)
	}
	if got[0].Kind != "workload.crowd.start" || !got[0].At.Equal(start.Add(2*time.Minute)) {
		t.Fatalf("start marker = %+v, want at %v", got[0], start.Add(2*time.Minute))
	}
	if got[1].Kind != "workload.crowd.end" || !got[1].At.Equal(start.Add(5*time.Minute)) {
		t.Fatalf("end marker = %+v, want at %v", got[1], start.Add(5*time.Minute))
	}
	var domain string
	for _, l := range got[0].Labels {
		if l.Key == "domain" {
			domain = l.Value
		}
	}
	if domain != "site0001.example." {
		t.Fatalf("start marker domain = %q", domain)
	}
}
